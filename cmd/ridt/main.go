// Command ridt (Randomized Incremental, Depth and Totals) regenerates the
// evaluation artifacts of "Parallelism in Randomized Incremental
// Algorithms" (Blelloch, Gu, Shun, Sun; SPAA 2016): every row of Table 1
// and the quantitative theorem-level claims. See EXPERIMENTS.md for the
// mapping from paper claims to subcommands.
//
// Usage:
//
//	ridt table1 [-row sort|dt|lp|cp|seb|lelists|scc] [-seed N] [-max N]
//	ridt incircle  [-seed N] [-trials N]      Theorem 4.5 constant
//	ridt depth     [-alg sort|dt] [-n N] [-trials N]   Theorem 2.1 / 4.3
//	ridt special   [-seed N] [-trials N]      Theorem 2.2 (Type 2)
//	ridt deps      [-seed N] [-trials N]      Corollary 2.4 / Theorem 2.6
//	ridt sccsweep  [-seed N] [-n N]           SCC workload robustness
//	ridt shuffle   [-seed N]                  parallel shuffle depth
//	ridt all                                  everything above
//
// Every command accepts -timeout; a run cut short by the deadline or by an
// interrupt exits with code 3 after printing the tables that completed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func sizesUpTo(max int, start int) []int {
	var out []int
	for n := start; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable driver body: it parses args, dispatches the command,
// and writes all output to out/errOut. The exit code is returned instead
// of calling os.Exit, so smoke tests can invoke every mode in-process.
// sigs, when non-nil, replaces the process signal feed (tests inject
// interrupts through it); when nil, run subscribes to os.Interrupt.
//
// Exit codes: 0 success, 2 usage or flag errors, 3 run canceled by
// -timeout or an interrupt (the output is a prefix of the full run).
func run(args []string, out, errOut io.Writer, sigs <-chan os.Signal) int {
	if len(args) < 1 {
		usage(errOut)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(errOut)
	seed := fs.Uint64("seed", 1, "random seed (all experiments are deterministic given the seed)")
	procs := fs.Int("procs", 0, "worker count for the run (sets GOMAXPROCS; 0 keeps the environment's value)")
	row := fs.String("row", "", "table1 only: a single row (sort|dt|lp|cp|seb|lelists|scc)")
	alg := fs.String("alg", "sort", "depth only: algorithm (sort|dt)")
	n := fs.Int("n", 4096, "input size for single-size experiments")
	maxN := fs.Int("max", 1<<17, "largest n for scaling sweeps")
	trials := fs.Int("trials", 10, "trials per configuration")
	timeout := fs.Duration("timeout", 0, "cancel the run after this duration and exit 3 (0 = no deadline)")
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/--help is a successful exit, as under ExitOnError
		}
		return 2
	}
	if *procs > 0 {
		// The parallel pool sizes itself from GOMAXPROCS at submit time, so
		// setting it here bounds the workers every experiment loop uses;
		// sweeps can vary P per invocation without env fiddling.
		runtime.GOMAXPROCS(*procs)
	}

	// Cooperative shutdown: a deadline or an interrupt cancels the shared
	// token, and the dispatch below skips every experiment not yet started
	// — each completed table has already been printed, so a canceled run
	// leaves a well-formed prefix of the full artifact set.
	var canceler parallel.Canceler
	if *timeout > 0 {
		tm := time.AfterFunc(*timeout, canceler.Cancel)
		defer tm.Stop()
	}
	if sigs == nil {
		ch := make(chan os.Signal, 1)
		// SIGTERM (the service-manager stop signal) gets the same clean
		// prefix-shutdown as an interactive ^C.
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(ch)
		sigs = ch
	}
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-sigs:
			canceler.Cancel()
		case <-watcherDone:
		}
	}()

	fmt.Fprintf(out, "ridt: GOMAXPROCS=%d seed=%d\n\n", runtime.GOMAXPROCS(0), *seed)

	// print takes the table LAZILY (a thunk, not a value) so that a cancel
	// landing between tables skips the remaining experiments entirely.
	print := func(gen func() *experiments.Table) {
		if canceler.Canceled() {
			return
		}
		fmt.Fprintln(out, gen().String())
	}

	bad := false
	var table1 func(which string)
	table1 = func(which string) {
		geomSizes := sizesUpTo(*maxN, 1024)
		dtSizes := sizesUpTo(min(*maxN, 1<<15), 512)
		graphSizes := sizesUpTo(min(*maxN, 1<<14), 512)
		switch which {
		case "sort":
			print(func() *experiments.Table { return experiments.SortScaling(*seed, geomSizes) })
		case "dt":
			print(func() *experiments.Table { return experiments.DelaunayScaling(*seed, dtSizes) })
		case "lp":
			print(func() *experiments.Table { return experiments.LPScaling(*seed, geomSizes) })
		case "cp":
			print(func() *experiments.Table { return experiments.ClosestPairScaling(*seed, geomSizes) })
		case "seb":
			print(func() *experiments.Table { return experiments.SEBScaling(*seed, geomSizes) })
		case "lelists":
			print(func() *experiments.Table { return experiments.LEListsScaling(*seed, graphSizes, 8, true) })
			print(func() *experiments.Table { return experiments.LEListsScaling(*seed+1, graphSizes, 8, false) })
		case "scc":
			print(func() *experiments.Table { return experiments.SCCScaling(*seed, graphSizes, 4) })
		case "":
			for _, w := range []string{"sort", "dt", "lp", "cp", "seb", "lelists", "scc"} {
				table1(w)
			}
		default:
			fmt.Fprintf(errOut, "unknown table1 row %q\n", which)
			bad = true
		}
	}

	switch cmd {
	case "table1":
		table1(*row)
	case "incircle":
		print(func() *experiments.Table {
			return experiments.InCircleConstant(*seed, sizesUpTo(min(*maxN, 1<<14), 512), *trials)
		})
	case "depth":
		print(func() *experiments.Table { return experiments.DepthDistribution(*seed, *alg, *n, *trials) })
	case "special":
		print(func() *experiments.Table {
			return experiments.SpecialIterations(*seed, sizesUpTo(min(*maxN, 1<<15), 1024), *trials)
		})
	case "deps":
		print(func() *experiments.Table {
			return experiments.DependenceCounts(*seed, sizesUpTo(min(*maxN, 1<<15), 1024), *trials)
		})
		print(func() *experiments.Table {
			return experiments.IncomingDependences(*seed, sizesUpTo(min(*maxN, 1<<13), 512), 8)
		})
	case "sccsweep":
		print(func() *experiments.Table { return experiments.SCCWorkloads(*seed, *n) })
	case "gks":
		print(func() *experiments.Table {
			return experiments.GKSComparison(*seed, sizesUpTo(min(*maxN, 1<<14), 512))
		})
	case "shuffle":
		print(func() *experiments.Table { return experiments.ShuffleDepth(*seed, sizesUpTo(*maxN, 1024)) })
	case "all":
		table1("")
		print(func() *experiments.Table { return experiments.GKSComparison(*seed, sizesUpTo(1<<13, 512)) })
		print(func() *experiments.Table {
			return experiments.InCircleConstant(*seed, sizesUpTo(1<<13, 512), *trials)
		})
		print(func() *experiments.Table { return experiments.DepthDistribution(*seed, "sort", *n, *trials) })
		print(func() *experiments.Table {
			return experiments.DepthDistribution(*seed, "dt", min(*n, 4096), *trials)
		})
		print(func() *experiments.Table {
			return experiments.SpecialIterations(*seed, sizesUpTo(1<<14, 1024), *trials)
		})
		print(func() *experiments.Table {
			return experiments.DependenceCounts(*seed, sizesUpTo(1<<14, 1024), *trials)
		})
		print(func() *experiments.Table {
			return experiments.IncomingDependences(*seed, sizesUpTo(1<<12, 512), 8)
		})
		print(func() *experiments.Table { return experiments.SCCWorkloads(*seed, *n) })
		print(func() *experiments.Table { return experiments.ShuffleDepth(*seed, sizesUpTo(1<<16, 1024)) })
	case "-h", "--help", "help":
		usage(errOut)
	default:
		fmt.Fprintf(errOut, "unknown command %q\n\n", cmd)
		usage(errOut)
		return 2
	}
	if bad {
		return 2
	}
	if canceler.Canceled() {
		fmt.Fprintln(errOut, "ridt: run canceled (deadline or interrupt); the tables above are a prefix of the full run")
		return 3
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: ridt <command> [flags]

commands:
  table1     regenerate Table 1 (all rows, or -row sort|dt|lp|cp|seb|lelists|scc)
  incircle   Theorem 4.5: InCircle constant for 2D Delaunay
  depth      Theorem 2.1/4.3: dependence-depth concentration (-alg sort|dt)
  special    Theorem 2.2: special-iteration counts for the Type 2 algorithms
  deps       Corollary 2.4 and Theorem 2.6: dependence counts
  sccsweep   SCC robustness across graph families
  gks        Section 4: GKS vs Boissonnat–Teillaud comparison
  shuffle    parallel random-permutation depth
  all        run everything

flags (after the command): -seed -row -alg -n -max -trials -procs -timeout

exit codes:
  0  success
  2  usage or flag errors
  3  canceled (-timeout elapsed or interrupt received); printed tables
     are a prefix of the full run
`)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

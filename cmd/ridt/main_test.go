package main

// Smoke tests for the driver: flag parsing and one tiny in-process run per
// mode, so a broken experiment entry point fails `go test ./...` instead
// of surfacing only when someone regenerates the artifacts.

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut, nil)
	return out.String(), errOut.String(), code
}

// TestModesSmoke runs every experiment mode once at the smallest sizes the
// size schedules allow.
func TestModesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not -short")
	}
	cases := [][]string{
		{"table1", "-row", "sort", "-max", "1024"},
		{"table1", "-row", "dt", "-max", "512"},
		{"table1", "-row", "lp", "-max", "1024"},
		{"table1", "-row", "cp", "-max", "1024"},
		{"table1", "-row", "seb", "-max", "1024"},
		{"table1", "-row", "lelists", "-max", "512"},
		{"table1", "-row", "scc", "-max", "512"},
		{"incircle", "-max", "512", "-trials", "1"},
		{"depth", "-alg", "sort", "-n", "512", "-trials", "1"},
		{"depth", "-alg", "dt", "-n", "256", "-trials", "1"},
		{"special", "-max", "1024", "-trials", "1"},
		{"deps", "-max", "1024", "-trials", "1"},
		{"sccsweep", "-n", "256"},
		{"gks", "-max", "512"},
		{"shuffle", "-max", "1024"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			out, errOut, code := runCapture(t, args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut)
			}
			if !strings.Contains(out, "ridt: GOMAXPROCS=") {
				t.Fatalf("missing banner in output: %q", out)
			}
			// Every mode prints at least one table after the banner.
			if len(strings.TrimSpace(strings.SplitN(out, "\n", 2)[1])) == 0 {
				t.Fatalf("mode produced no table: %q", out)
			}
		})
	}
}

// TestFlagParsing covers the argument-handling paths that do not run
// experiments.
func TestFlagParsing(t *testing.T) {
	if _, errOut, code := runCapture(t); code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("no args: code=%d stderr=%q", code, errOut)
	}
	if _, errOut, code := runCapture(t, "bogus"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("unknown command: code=%d stderr=%q", code, errOut)
	}
	if _, errOut, code := runCapture(t, "table1", "-row", "bogus", "-max", "1024"); code != 2 ||
		!strings.Contains(errOut, "unknown table1 row") {
		t.Fatalf("unknown row: code=%d stderr=%q", code, errOut)
	}
	if _, _, code := runCapture(t, "table1", "-notaflag"); code != 2 {
		t.Fatalf("bad flag accepted: code=%d", code)
	}
	if _, errOut, code := runCapture(t, "help"); code != 0 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("help: code=%d stderr=%q", code, errOut)
	}
	// Per-subcommand -h prints the flag set's usage and exits 0, matching
	// the old ExitOnError behavior.
	if _, errOut, code := runCapture(t, "table1", "-h"); code != 0 || !strings.Contains(errOut, "-row") {
		t.Fatalf("table1 -h: code=%d stderr=%q", code, errOut)
	}
	// -procs is parsed and the banner reflects it (restore after: it sets
	// the process-wide GOMAXPROCS).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	out, _, code := runCapture(t, "shuffle", "-max", "1024", "-procs", "2")
	if code != 0 || !strings.Contains(out, "GOMAXPROCS=2") {
		t.Fatalf("-procs: code=%d out=%q", code, out)
	}
	if _, _, code := runCapture(t, "shuffle", "-timeout", "bogus"); code != 2 {
		t.Fatalf("bad -timeout accepted: code=%d", code)
	}
}

// TestTimeoutExitCode drives a multi-table run with an immediate deadline:
// the run must stop between tables and exit 3 with the cancellation notice.
func TestTimeoutExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not -short")
	}
	out, errOut, code := runCapture(t,
		"all", "-max", "2048", "-n", "512", "-trials", "1", "-timeout", "1ns")
	if code != 3 {
		t.Fatalf("code = %d, want 3; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "canceled") {
		t.Fatalf("missing cancellation notice: %q", errOut)
	}
	if !strings.Contains(out, "ridt: GOMAXPROCS=") {
		t.Fatalf("banner missing from truncated run: %q", out)
	}
}

// TestInterruptExitCode injects an interrupt through the test signal feed
// mid-run; the driver must drain the remaining tables and exit 3.
func TestInterruptExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not -short")
	}
	sigs := make(chan os.Signal, 1)
	sigs <- os.Interrupt
	var out, errOut bytes.Buffer
	code := run([]string{"all", "-max", "2048", "-n", "512", "-trials", "1"},
		&out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("code = %d, want 3; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "canceled") {
		t.Fatalf("missing cancellation notice: %q", errOut.String())
	}
}

// TestTimeoutZeroIsNoDeadline pins that the default keeps the old exit
// behavior: a complete run exits 0 even with -timeout given explicitly as 0.
func TestTimeoutZeroIsNoDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not -short")
	}
	_, errOut, code := runCapture(t, "shuffle", "-max", "1024", "-timeout", "0")
	if code != 0 {
		t.Fatalf("code = %d, want 0; stderr: %s", code, errOut)
	}
}

// TestSigtermExitCode: SIGTERM through the signal feed gets the same
// clean prefix-shutdown as an interrupt — the service-manager stop path.
func TestSigtermExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not -short")
	}
	sigs := make(chan os.Signal, 1)
	sigs <- syscall.SIGTERM
	var out, errOut bytes.Buffer
	code := run([]string{"all", "-max", "2048", "-n", "512", "-trials", "1"},
		&out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("code = %d, want 3; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "canceled") {
		t.Fatalf("missing cancellation notice: %q", errOut.String())
	}
}

// Command benchgate compares two `go test -bench` output files and fails
// (exit 1) when any benchmark present in both regressed beyond a
// threshold. CI runs it after benchstat: benchstat renders the human
// comparison, benchgate enforces the regression budget with no external
// dependencies.
//
// Usage:
//
//	benchgate [-threshold 0.15] [-match regexp] baseline.txt current.txt
//
// With -count > 1 runs, the minimum ns/op per benchmark is compared —
// the most noise-robust statistic for a regression gate on shared CI
// hosts. Benchmarks missing from either file are reported but do not
// fail the gate (new benchmarks have no baseline yet).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	threshold := fs.Float64("threshold", 0.15, "allowed fractional ns/op regression (0.15 = +15%)")
	match := fs.String("match", "", "only gate benchmarks whose name matches this regexp (default: all)")
	minNs := fs.Float64("minns", 0, "only gate benchmarks whose baseline is at least this many ns/op (micro-benchmarks under the floor are too noisy for a hard gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errOut, "usage: benchgate [-threshold f] [-match re] baseline.txt current.txt")
		return 2
	}
	var filter *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(errOut, "benchgate: bad -match: %v\n", err)
			return 2
		}
		filter = re
	}
	base, err := parseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: %v\n", err)
		return 2
	}
	cur, err := parseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	compared := 0
	for _, name := range names {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		if base[name] < *minNs {
			fmt.Fprintf(out, "benchgate: %-60s below %.0fns floor (not gated)\n", name, *minNs)
			continue
		}
		now, ok := cur[name]
		if !ok {
			fmt.Fprintf(out, "benchgate: %-60s missing from current run (not gated)\n", name)
			continue
		}
		compared++
		ratio := now/base[name] - 1
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSED"
			failed++
		}
		fmt.Fprintf(out, "benchgate: %-60s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, base[name], now, 100*ratio, status)
	}
	for name := range cur {
		if _, ok := base[name]; !ok && (filter == nil || filter.MatchString(name)) {
			fmt.Fprintf(out, "benchgate: %-60s new benchmark (no baseline)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(errOut, "benchgate: no benchmarks in common; check the -match filter and inputs")
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(errOut, "benchgate: %d of %d gated benchmarks regressed more than %.0f%%\n",
			failed, compared, 100**threshold)
		return 1
	}
	fmt.Fprintf(out, "benchgate: %d gated benchmarks within %.0f%%\n", compared, 100**threshold)
	return 0
}

// parseFile returns the minimum ns/op per benchmark name in a
// `go test -bench` output file. The -N GOMAXPROCS suffix is kept: runs at
// different parallelism are different benchmarks.
func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := best[name]; !seen || ns < prev {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return best, nil
}

// parseLine extracts (name, ns/op) from one benchmark result line, e.g.
//
//	BenchmarkType2SEB/n=65536-4   5   228123 ns/op   12 B/op ...
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return fields[0], ns, true
		}
	}
	return "", 0, false
}

// Command benchgate compares two `go test -bench` output files and fails
// (exit 1) when any benchmark present in both regressed beyond a
// threshold. CI runs it after benchstat: benchstat renders the human
// comparison, benchgate enforces the regression budget with no external
// dependencies.
//
// Usage:
//
//	benchgate [-threshold 0.15] [-allocthreshold f] [-match regexp] baseline.txt current.txt
//
// With -count > 1 runs, the minimum ns/op per benchmark is compared —
// the most noise-robust statistic for a regression gate on shared CI
// hosts. Benchmarks missing from either file are reported but do not
// fail the gate (new benchmarks have no baseline yet).
//
// When -allocthreshold is positive (it defaults to 0, gate disabled),
// allocs/op (present when the run used -benchmem) is gated the same way
// for benchmarks that report it in both files; allocation counts are
// deterministic, so this catches a steady-state allocation regression —
// the Delaunay round-engine budget — that ns/op noise could hide. A
// baseline of 0 allocs/op must stay 0. Because allocation counts carry
// no timing noise, the -minns floor exempts a benchmark only from the
// ns/op comparison, never from the allocation gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	threshold := fs.Float64("threshold", 0.15, "allowed fractional ns/op regression (0.15 = +15%)")
	allocThreshold := fs.Float64("allocthreshold", 0, "allowed fractional allocs/op regression for benchmarks reporting it in both files (0 disables the allocation gate)")
	match := fs.String("match", "", "only gate benchmarks whose name matches this regexp (default: all)")
	minNs := fs.Float64("minns", 0, "only gate benchmarks whose baseline is at least this many ns/op (micro-benchmarks under the floor are too noisy for a hard gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errOut, "usage: benchgate [-threshold f] [-match re] baseline.txt current.txt")
		return 2
	}
	var filter *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(errOut, "benchgate: bad -match: %v\n", err)
			return 2
		}
		filter = re
	}
	base, err := parseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: %v\n", err)
		return 2
	}
	cur, err := parseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	compared := 0
	for _, name := range names {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		now, ok := cur[name]
		if !ok {
			fmt.Fprintf(out, "benchgate: %-60s missing from current run (not gated)\n", name)
			continue
		}
		// The -minns floor exists for timing noise; allocation counts are
		// deterministic, so a benchmark under the floor is exempt from the
		// ns/op gate but still subject to the allocation gate.
		underFloor := base[name].ns < *minNs
		status := "ok"
		ratio := now.ns/base[name].ns - 1
		if !underFloor && ratio > *threshold {
			status = "REGRESSED"
		}
		allocNote := ""
		gateAllocs := *allocThreshold > 0 && base[name].hasAllocs && now.hasAllocs
		if *allocThreshold > 0 && base[name].hasAllocs != now.hasAllocs {
			// One side stopped reporting allocs (e.g. -benchmem dropped from
			// a CI bench line): say so loudly rather than silently un-gating
			// a gated property. Not a failure — the merge-base side
			// legitimately lacks allocs when a family gains -benchmem.
			allocNote = "  [allocs missing from one file: alloc gate skipped]"
		}
		if gateAllocs {
			ba, na := base[name].allocs, now.allocs
			bad := na > 0
			if ba > 0 {
				bad = na/ba-1 > *allocThreshold
			}
			allocNote = fmt.Sprintf("  allocs %.0f -> %.0f", ba, na)
			if bad {
				status = "REGRESSED(allocs)"
			}
		}
		if underFloor && !gateAllocs {
			fmt.Fprintf(out, "benchgate: %-60s below %.0fns floor (not gated)\n", name, *minNs)
			continue
		}
		compared++
		if status != "ok" {
			failed++
		}
		if underFloor {
			fmt.Fprintf(out, "benchgate: %-60s below %.0fns floor (ns not gated)%s  %s\n",
				name, *minNs, allocNote, status)
			continue
		}
		fmt.Fprintf(out, "benchgate: %-60s %12.0f -> %12.0f ns/op  %+6.1f%%%s  %s\n",
			name, base[name].ns, now.ns, 100*ratio, allocNote, status)
	}
	for name := range cur {
		if _, ok := base[name]; !ok && (filter == nil || filter.MatchString(name)) {
			fmt.Fprintf(out, "benchgate: %-60s new benchmark (no baseline)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(errOut, "benchgate: no benchmarks in common; check the -match filter and inputs")
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(errOut, "benchgate: %d of %d gated benchmarks regressed more than %.0f%%\n",
			failed, compared, 100**threshold)
		return 1
	}
	fmt.Fprintf(out, "benchgate: %d gated benchmarks within %.0f%%\n", compared, 100**threshold)
	return 0
}

// sample is the per-benchmark statistic the gate compares: minimum ns/op
// across all samples, and minimum allocs/op when the run reported it.
type sample struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// parseFile returns the minimum ns/op (and allocs/op, when present) per
// benchmark name in a `go test -bench` output file. The -N GOMAXPROCS
// suffix is kept: runs at different parallelism are different benchmarks.
func parseFile(path string) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := map[string]sample{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := best[name]
		if !seen {
			best[name] = s
			continue
		}
		if s.ns < prev.ns {
			prev.ns = s.ns
		}
		if s.hasAllocs && (!prev.hasAllocs || s.allocs < prev.allocs) {
			prev.allocs, prev.hasAllocs = s.allocs, true
		}
		best[name] = prev
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return best, nil
}

// parseLine extracts (name, ns/op [, allocs/op]) from one benchmark result
// line, e.g.
//
//	BenchmarkType2SEB/n=65536-4   5   228123 ns/op   12 B/op   3 allocs/op
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	var s sample
	found := false
	for i := 2; i+1 < len(fields); i++ {
		switch fields[i+1] {
		case "ns/op":
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", sample{}, false
			}
			s.ns = ns
			found = true
		case "allocs/op":
			if a, err := strconv.ParseFloat(fields[i], 64); err == nil {
				s.allocs = a
				s.hasAllocs = true
			}
		}
	}
	if !found {
		return "", sample{}, false
	}
	return fields[0], s, true
}

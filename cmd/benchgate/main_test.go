package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `goos: linux
BenchmarkForUniform/n=1024-4     	 1000	  1000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op	 12 B/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`

func gate(t *testing.T, current string, extra ...string) (string, string, int) {
	t.Helper()
	dir := t.TempDir()
	b := write(t, dir, "base.txt", baseline)
	c := write(t, dir, "cur.txt", current)
	var out, errOut bytes.Buffer
	code := run(append(extra, b, c), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestGatePasses(t *testing.T) {
	out, errOut, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	   950 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 52000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 60000 ns/op
`)
	if code != 0 {
		t.Fatalf("code=%d\nout=%s\nerr=%s", code, out, errOut)
	}
	// min(1000, 900) = 900 is the baseline for ForUniform: +5.6% is ok.
	if !strings.Contains(out, "3 gated benchmarks within 15%") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	out, errOut, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	  2000 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 51000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 71000 ns/op
`)
	if code != 1 {
		t.Fatalf("code=%d\nout=%s\nerr=%s", code, out, errOut)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(errOut, "1 of 3") {
		t.Fatalf("out=%s\nerr=%s", out, errOut)
	}
}

func TestGateThresholdAndMatch(t *testing.T) {
	// +30% on Type2 passes with -threshold 0.5.
	_, _, code := gate(t, `
BenchmarkType2SEB/n=65536-4      	    5	 65000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-threshold", "0.5")
	if code != 0 {
		t.Fatalf("threshold not honored: code=%d", code)
	}
	// The same +30% regression is invisible when -match excludes it.
	out, _, code := gate(t, `
BenchmarkType2SEB/n=65536-4      	    5	 65000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   910 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-match", "ForUniform|Hashtable")
	if code != 0 || !strings.Contains(out, "2 gated benchmarks") {
		t.Fatalf("match not honored: code=%d out=%s", code, out)
	}
}

func TestGateNewAndMissingBenchmarks(t *testing.T) {
	// Missing-from-current and new-in-current are reported, not failed.
	out, _, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op
BenchmarkBrandNew-4              	    5	   100 ns/op
`)
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "missing from current run") || !strings.Contains(out, "new benchmark") {
		t.Fatalf("reporting missing:\n%s", out)
	}
}

func TestGateBadInputs(t *testing.T) {
	dir := t.TempDir()
	empty := write(t, dir, "empty.txt", "no benchmarks here\n")
	good := write(t, dir, "good.txt", baseline)
	var out, errOut bytes.Buffer
	if code := run([]string{empty, good}, &out, &errOut); code != 2 {
		t.Fatalf("empty baseline accepted: %d", code)
	}
	if code := run([]string{"nonexistent.txt", good}, &out, &errOut); code != 2 {
		t.Fatalf("missing file accepted: %d", code)
	}
	if code := run([]string{good}, &out, &errOut); code != 2 {
		t.Fatalf("one arg accepted: %d", code)
	}
	// Disjoint name sets: nothing in common is a configuration error.
	other := write(t, dir, "other.txt", "BenchmarkOther-4 \t 5 \t 10 ns/op\n")
	if code := run([]string{good, other}, &out, &errOut); code != 2 {
		t.Fatalf("disjoint sets accepted: %d", code)
	}
}

func TestGateMinNsFloor(t *testing.T) {
	// A huge regression on a micro-benchmark under the floor is reported
	// but not gated.
	out, _, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	  9000 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-minns", "10000")
	if code != 0 {
		t.Fatalf("floor not honored: code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "below 10000ns floor") || !strings.Contains(out, "2 gated benchmarks") {
		t.Fatalf("floor reporting:\n%s", out)
	}
}

const allocBaseline = `goos: linux
BenchmarkDelaunayPar/n=4096-4   	 10	 37000000 ns/op	 10307390 B/op	 1317 allocs/op
BenchmarkDelaunayPar/n=4096-4   	 10	 38000000 ns/op	 10307390 B/op	 1400 allocs/op
BenchmarkNoAllocs-4             	 10	   300000 ns/op	        0 B/op	    0 allocs/op
`

func gateAllocs(t *testing.T, current string, extra ...string) (string, string, int) {
	t.Helper()
	dir := t.TempDir()
	b := write(t, dir, "base.txt", allocBaseline)
	c := write(t, dir, "cur.txt", current)
	var out, errOut bytes.Buffer
	code := run(append(extra, b, c), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestGateAllocsPass(t *testing.T) {
	// Min across samples (1317) is the baseline; +10% stays inside the
	// 15% allocation budget, and 0 -> 0 is fine.
	out, errOut, code := gateAllocs(t, `
BenchmarkDelaunayPar/n=4096-4   	 10	 37100000 ns/op	 10307390 B/op	 1448 allocs/op
BenchmarkNoAllocs-4             	 10	   300000 ns/op	        0 B/op	    0 allocs/op
`, "-allocthreshold", "0.15")
	if code != 0 {
		t.Fatalf("code=%d\nout=%s\nerr=%s", code, out, errOut)
	}
	if !strings.Contains(out, "allocs 1317 -> 1448") {
		t.Fatalf("alloc note missing:\n%s", out)
	}
}

func TestGateAllocsFail(t *testing.T) {
	out, _, code := gateAllocs(t, `
BenchmarkDelaunayPar/n=4096-4   	 10	 37100000 ns/op	 30307390 B/op	 101317 allocs/op
BenchmarkNoAllocs-4             	 10	   300000 ns/op	        0 B/op	    0 allocs/op
`, "-allocthreshold", "0.15")
	if code != 1 || !strings.Contains(out, "REGRESSED(allocs)") {
		t.Fatalf("alloc regression not caught: code=%d\n%s", code, out)
	}
}

func TestGateAllocsZeroBaseline(t *testing.T) {
	// A 0 allocs/op baseline must stay 0: any allocation is a regression.
	out, _, code := gateAllocs(t, `
BenchmarkDelaunayPar/n=4096-4   	 10	 37100000 ns/op	 10307390 B/op	 1317 allocs/op
BenchmarkNoAllocs-4             	 10	   300000 ns/op	       64 B/op	    2 allocs/op
`, "-allocthreshold", "0.15")
	if code != 1 || !strings.Contains(out, "REGRESSED(allocs)") {
		t.Fatalf("0->2 allocs not caught: code=%d\n%s", code, out)
	}
}

func TestGateAllocsDisabledByDefault(t *testing.T) {
	// Without -allocthreshold, an allocation explosion alone does not fail
	// the gate (only ns/op is gated), preserving the old behavior.
	_, _, code := gateAllocs(t, `
BenchmarkDelaunayPar/n=4096-4   	 10	 37100000 ns/op	 30307390 B/op	 901317 allocs/op
BenchmarkNoAllocs-4             	 10	   310000 ns/op	       64 B/op	  200 allocs/op
`)
	if code != 0 {
		t.Fatalf("alloc gate should be off by default: code=%d", code)
	}
}

func TestGateAllocsUnderNsFloor(t *testing.T) {
	// The -minns floor silences only the (noisy) ns/op comparison;
	// allocation counts are deterministic, so an alloc regression on a
	// micro-benchmark under the floor still fails when the alloc gate is
	// on.
	dir := t.TempDir()
	b := write(t, dir, "base.txt", "BenchmarkMicroArena-4 \t 10 \t 150000 ns/op \t 32 B/op \t 1 allocs/op\n")
	c := write(t, dir, "cur.txt", "BenchmarkMicroArena-4 \t 10 \t 151000 ns/op \t 339433 B/op \t 8192 allocs/op\n")
	var out, errOut bytes.Buffer
	code := run([]string{"-allocthreshold", "0.15", "-minns", "200000", b, c}, &out, &errOut)
	if code != 1 || !strings.Contains(out.String(), "REGRESSED(allocs)") {
		t.Fatalf("under-floor alloc regression not caught: code=%d\n%s", code, out.String())
	}
	// And a huge ns regression under the floor alone still passes.
	c2 := write(t, dir, "cur2.txt", "BenchmarkMicroArena-4 \t 10 \t 950000 ns/op \t 32 B/op \t 1 allocs/op\n")
	out.Reset()
	if code := run([]string{"-allocthreshold", "0.15", "-minns", "200000", b, c2}, &out, &errOut); code != 0 {
		t.Fatalf("ns floor not honored with alloc gate on: code=%d\n%s", code, out.String())
	}
}

func TestGateAllocsMissingOneSideWarns(t *testing.T) {
	// When the alloc gate is on but only one file reports allocs, the
	// output must say the gate was skipped rather than silently un-gating.
	dir := t.TempDir()
	b := write(t, dir, "base.txt", "BenchmarkX-4 \t 10 \t 500000 ns/op \t 32 B/op \t 1 allocs/op\n")
	c := write(t, dir, "cur.txt", "BenchmarkX-4 \t 10 \t 510000 ns/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{"-allocthreshold", "0.15", b, c}, &out, &errOut); code != 0 {
		t.Fatalf("code=%d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "alloc gate skipped") {
		t.Fatalf("missing skip warning:\n%s", out.String())
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `goos: linux
BenchmarkForUniform/n=1024-4     	 1000	  1000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op	 12 B/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`

func gate(t *testing.T, current string, extra ...string) (string, string, int) {
	t.Helper()
	dir := t.TempDir()
	b := write(t, dir, "base.txt", baseline)
	c := write(t, dir, "cur.txt", current)
	var out, errOut bytes.Buffer
	code := run(append(extra, b, c), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestGatePasses(t *testing.T) {
	out, errOut, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	   950 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 52000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 60000 ns/op
`)
	if code != 0 {
		t.Fatalf("code=%d\nout=%s\nerr=%s", code, out, errOut)
	}
	// min(1000, 900) = 900 is the baseline for ForUniform: +5.6% is ok.
	if !strings.Contains(out, "3 gated benchmarks within 15%") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	out, errOut, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	  2000 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 51000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 71000 ns/op
`)
	if code != 1 {
		t.Fatalf("code=%d\nout=%s\nerr=%s", code, out, errOut)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(errOut, "1 of 3") {
		t.Fatalf("out=%s\nerr=%s", out, errOut)
	}
}

func TestGateThresholdAndMatch(t *testing.T) {
	// +30% on Type2 passes with -threshold 0.5.
	_, _, code := gate(t, `
BenchmarkType2SEB/n=65536-4      	    5	 65000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-threshold", "0.5")
	if code != 0 {
		t.Fatalf("threshold not honored: code=%d", code)
	}
	// The same +30% regression is invisible when -match excludes it.
	out, _, code := gate(t, `
BenchmarkType2SEB/n=65536-4      	    5	 65000 ns/op
BenchmarkForUniform/n=1024-4     	 1000	   910 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-match", "ForUniform|Hashtable")
	if code != 0 || !strings.Contains(out, "2 gated benchmarks") {
		t.Fatalf("match not honored: code=%d out=%s", code, out)
	}
}

func TestGateNewAndMissingBenchmarks(t *testing.T) {
	// Missing-from-current and new-in-current are reported, not failed.
	out, _, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	   900 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op
BenchmarkBrandNew-4              	    5	   100 ns/op
`)
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "missing from current run") || !strings.Contains(out, "new benchmark") {
		t.Fatalf("reporting missing:\n%s", out)
	}
}

func TestGateBadInputs(t *testing.T) {
	dir := t.TempDir()
	empty := write(t, dir, "empty.txt", "no benchmarks here\n")
	good := write(t, dir, "good.txt", baseline)
	var out, errOut bytes.Buffer
	if code := run([]string{empty, good}, &out, &errOut); code != 2 {
		t.Fatalf("empty baseline accepted: %d", code)
	}
	if code := run([]string{"nonexistent.txt", good}, &out, &errOut); code != 2 {
		t.Fatalf("missing file accepted: %d", code)
	}
	if code := run([]string{good}, &out, &errOut); code != 2 {
		t.Fatalf("one arg accepted: %d", code)
	}
	// Disjoint name sets: nothing in common is a configuration error.
	other := write(t, dir, "other.txt", "BenchmarkOther-4 \t 5 \t 10 ns/op\n")
	if code := run([]string{good, other}, &out, &errOut); code != 2 {
		t.Fatalf("disjoint sets accepted: %d", code)
	}
}

func TestGateMinNsFloor(t *testing.T) {
	// A huge regression on a micro-benchmark under the floor is reported
	// but not gated.
	out, _, code := gate(t, `
BenchmarkForUniform/n=1024-4     	 1000	  9000 ns/op
BenchmarkType2SEB/n=65536-4      	    5	 50000 ns/op
BenchmarkHashtableInsert/impl=lockfree-4 	 3	 70000 ns/op
`, "-minns", "10000")
	if code != 0 {
		t.Fatalf("floor not honored: code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "below 10000ns floor") || !strings.Contains(out, "2 gated benchmarks") {
		t.Fatalf("floor reporting:\n%s", out)
	}
}

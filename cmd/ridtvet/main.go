// Command ridtvet runs the repository's concurrency-invariant analyzer
// suite (internal/analysis) over the module: atomicmix, atomicalign,
// purecombine, parclosure, and noalloc. CI runs it beside go vet; a
// finding that is intentional is suppressed in the source with
//
//	//ridtvet:ignore <analyzer> <justification>
//
// on the finding's line or the line above. See internal/analysis/DESIGN.md.
//
// Usage:
//
//	ridtvet [-dir d] [-notests] [-only name[,name]] [packages]
//
// packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage
// or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body, matching the cmd/ridt and
// cmd/benchgate pattern: it returns the exit code instead of calling
// os.Exit so the smoke tests can drive every mode in-process.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ridtvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("dir", ".", "directory of the module to analyze")
	notests := fs.Bool("notests", false, "skip _test.go files")
	only := fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: ridtvet [-dir d] [-notests] [-only name[,name]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(errOut, "ridtvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := analysis.Load(analysis.Config{
		Dir:      *dir,
		Patterns: fs.Args(),
		Tests:    !*notests,
	})
	if err != nil {
		fmt.Fprintf(errOut, "ridtvet: %v\n", err)
		return 2
	}
	diags := analysis.RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "ridtvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

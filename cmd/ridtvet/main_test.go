package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTree runs the suite over the repository itself: the CI gate's
// contract is that the tree stays finding-free (real problems fixed,
// intentional ones suppressed with a justification).
func TestCleanTree(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on the repository tree, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("diagnostics on a clean run:\n%s", out.String())
	}
}

// TestSeededViolation builds a throwaway module with a mixed-atomic bug
// and checks the findings exit path.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module seeded\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package seeded

import "sync/atomic"

var n int64

func Bump() int64 { return atomic.AddInt64(&n, 1) }

func Peek() int64 { return n }
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on a seeded violation, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[atomicmix]") || !strings.Contains(out.String(), `"n"`) {
		t.Fatalf("missing atomicmix finding:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Fatalf("missing summary line: %q", errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad pattern", []string{"-dir", "../..", "./does-not-exist/..."}},
		{"unknown analyzer", []string{"-only", "bogus"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("exit %d, want 2\n%s%s", code, out.String(), errOut.String())
			}
		})
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"atomicmix", "atomicalign", "purecombine", "parclosure", "noalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// Command ridtd is the long-lived serve-while-building daemon: it builds
// Delaunay triangulations round by round with the parallel engine while
// unbounded reader goroutines run point-location, containment, and
// edge-adjacency queries against the epoch-published snapshots
// (delaunay.Live views and face-map snapshots) the whole time.
//
// Usage:
//
//	ridtd [-n N] [-seed S] [-readers R] [-builds B] [-report D]
//	      [-procs P] [-timeout D]
//
// Each build triangulates a fresh n-point instance to completion; with
// -builds 0 the daemon rebuilds forever (a serving loop), until -timeout
// elapses or an interrupt arrives. Shutdown matches ridt's exit-code
// contract: 0 on a completed run, 2 on flag errors, 3 when canceled by
// the deadline or a signal (the stats printed are a prefix of the run).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// readerStats is one reader goroutine's query counters: written only by
// its reader, loaded atomically by progress lines mid-run and summed
// after the reader exits.
type readerStats struct {
	queries atomic.Int64 // Locate calls issued
	hits    atomic.Int64 // Locate calls that found a final triangle
	faceQs  atomic.Int64 // face-map Incident queries
	views   atomic.Int64 // distinct view epochs observed
	_       [24]byte     // pad to a cache line against false sharing
}

// run is the testable driver body, mirroring ridt's contract: output to
// out/errOut, returned exit code, injectable signal feed.
func run(args []string, out, errOut io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("ridtd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	n := fs.Int("n", 4096, "points per build")
	seed := fs.Uint64("seed", 1, "base random seed (build i uses seed+i)")
	readers := fs.Int("readers", 4, "concurrent reader goroutines")
	builds := fs.Int("builds", 1, "builds to run (0 = rebuild until canceled)")
	report := fs.Duration("report", time.Second, "progress-line interval (0 = none)")
	procs := fs.Int("procs", 0, "worker count (sets GOMAXPROCS; 0 keeps the environment's value)")
	timeout := fs.Duration("timeout", 0, "cancel the run after this duration and exit 3 (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "ridtd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *n < 0 || *readers < 0 || *builds < 0 {
		fmt.Fprintln(errOut, "ridtd: -n, -readers, and -builds must be non-negative")
		return 2
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	var canceler parallel.Canceler
	if *timeout > 0 {
		tm := time.AfterFunc(*timeout, canceler.Cancel)
		defer tm.Stop()
	}
	if sigs == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		defer signal.Stop(ch)
		sigs = ch
	}
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-sigs:
			canceler.Cancel()
		case <-watcherDone:
		}
	}()

	fmt.Fprintf(out, "ridtd: GOMAXPROCS=%d n=%d readers=%d builds=%d seed=%d\n",
		runtime.GOMAXPROCS(0), *n, *readers, *builds, *seed)

	var totQ, totHit, totFace, totViews, totRounds, totTris int64
	completed := 0
	for b := 0; *builds == 0 || b < *builds; b++ {
		if canceler.Canceled() {
			break
		}
		q, hit, faceQ, views, rounds, tris, done := serveBuild(out, *seed+uint64(b), b, *n, *readers, *report, &canceler)
		totQ += q
		totHit += hit
		totFace += faceQ
		totViews += views
		totRounds += rounds
		totTris += tris
		if !done {
			break
		}
		completed++
	}

	fmt.Fprintf(out, "ridtd: builds=%d rounds=%d tris=%d queries=%d hits=%d faceqs=%d views=%d\n",
		completed, totRounds, totTris, totQ, totHit, totFace, totViews)
	if canceler.Canceled() {
		fmt.Fprintln(errOut, "ridtd: run canceled (deadline or interrupt); stats above are a prefix of the full run")
		return 3
	}
	return 0
}

// serveBuild triangulates one instance to completion while readers
// hammer the published views, then reports per-build stats. done=false
// means the build was cut short by cancellation.
func serveBuild(out io.Writer, seed uint64, build, n, readers int, report time.Duration,
	c *parallel.Canceler) (q, hit, faceQ, views, rounds, tris int64, done bool) {
	pts := geom.Dedup(geom.UniformDisk(rng.New(seed), n))
	lv := delaunay.NewLive(pts)

	stats := make([]readerStats, readers)
	var wg sync.WaitGroup
	stop := &parallel.Canceler{} // readers drain on build completion OR external cancel
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(rs *readerStats, rseed uint64) {
			defer wg.Done()
			reader(lv, rs, rseed, stop)
		}(&stats[r], seed^(uint64(r)*0x9E3779B97F4A7C15+1))
	}

	var reportC <-chan time.Time
	if report > 0 {
		tk := time.NewTicker(report)
		defer tk.Stop()
		reportC = tk.C
	}

	done = true
	for {
		more, err := lv.Step(c)
		if err != nil {
			done = false // canceled: the engine rolled the round back
			break
		}
		select {
		case <-reportC:
			v := lv.View()
			var rq, rh int64
			for i := range stats {
				rq += stats[i].queries.Load()
				rh += stats[i].hits.Load()
			}
			fmt.Fprintf(out, "ridtd: build=%d round=%d tris=%d final=%d queries=%d hits=%d\n",
				build, v.Round(), v.NumTriangles(), v.NumFinal(), rq, rh)
		default:
		}
		if !more {
			break
		}
	}
	stop.Cancel()
	wg.Wait()

	v := lv.View()
	rounds, tris = int64(v.Round()), int64(v.NumTriangles())
	for i := range stats {
		q += stats[i].queries.Load()
		hit += stats[i].hits.Load()
		faceQ += stats[i].faceQs.Load()
		views += stats[i].views.Load()
	}
	fmt.Fprintf(out, "ridtd: build=%d done=%v rounds=%d tris=%d final=%d queries=%d hits=%d faceqs=%d views=%d\n",
		build, done, rounds, tris, v.NumFinal(), q, hit, faceQ, views)
	return q, hit, faceQ, views, rounds, tris, done
}

// reader is one query goroutine: it re-reads the latest published view
// each batch, locates random points in it, and probes each located
// triangle's first edge in a face-map snapshot taken alongside the view,
// until stopped. Both paths are the zero-alloc snapshot reads the
// benchmarks pin; the smoke tests run readers in-process.
func reader(lv *delaunay.Live, rs *readerStats, seed uint64, stop *parallel.Canceler) {
	r := rng.New(seed)
	var lastEpoch uint64
	for !stop.Canceled() {
		v, ep := lv.ViewEpoch()
		if ep != lastEpoch {
			rs.views.Add(1)
			lastEpoch = ep
		}
		fsnap := lv.Faces()
		for i := 0; i < 64 && !stop.Canceled(); i++ {
			// Queries over the slightly padded unit disk: most hit the
			// finalized region once it grows, some probe the frontier.
			x := 2.2*r.Float64() - 1.1
			y := 2.2*r.Float64() - 1.1
			id, ok := v.Locate(geom.Point{X: x, Y: y})
			rs.queries.Add(1)
			if ok {
				rs.hits.Add(1)
				cs := v.Corners(id)
				if _, _, ok := fsnap.Incident(cs[0], cs[1]); ok {
					rs.faceQs.Add(1)
				}
			}
		}
		fsnap.Close()
	}
}

// Command ridtd is the long-lived serve-while-building daemon: it builds
// Delaunay triangulations round by round with the parallel engine while
// unbounded reader goroutines run point-location, containment, and
// edge-adjacency queries against the epoch-published snapshots
// (delaunay.Live views and face-map snapshots) the whole time.
//
// Usage:
//
//	ridtd [-n N] [-seed S] [-readers R] [-builds B] [-report D]
//	      [-procs P] [-timeout D]
//	      [-checkpoint DIR] [-checkpoint-every N] [-checkpoint-chain K]
//	      [-restore] [-scrub] [-scrub-every D]
//
// Each build triangulates a fresh n-point instance to completion; with
// -builds 0 the daemon rebuilds forever (a serving loop), until -timeout
// elapses or an interrupt (SIGINT or SIGTERM) arrives. Shutdown matches
// ridt's exit-code contract: 0 on a completed run, 2 on flag errors, 3
// when canceled by the deadline or a signal (the stats printed are a
// prefix of the run).
//
// With -checkpoint the daemon commits a crash-safe checkpoint of the
// build every -checkpoint-every committed rounds, from the published
// snapshot, on a background goroutine — the build never stalls for
// durability. Checkpoints are INCREMENTAL by default: up to
// -checkpoint-chain delta generations (each holding only the log suffix
// past the previous generation plus the mutable remainder) are committed
// between full images; -checkpoint-chain 0 forces every generation to be
// a full image. After a crash (or SIGKILL), -restore resumes the
// interrupted build from the newest valid generation — resolving deltas
// through their base chain and falling back past any broken link; by the
// engine's determinism contract the resumed build finishes byte-identical
// to an uninterrupted one, which the per-build "digest=" line makes
// checkable across processes.
//
// -scrub-every D runs the self-healing scrubber in the background every
// D: each pass re-reads every generation with a full decode+validate,
// renames provably corrupt files to ckpt-<gen>.bad (quarantine, never
// silent deletion), promotes the newest restorable state to a fresh full
// image when the chain head was lost, and rewrites the advisory MANIFEST.
// -scrub runs exactly one such pass and exits (the CI/cron shape);
// outcomes are counted in the periodic report and the final summary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// readerStats is one reader goroutine's query counters: written only by
// its reader, loaded atomically by progress lines mid-run and summed
// after the reader exits.
type readerStats struct {
	queries atomic.Int64 // Locate calls issued
	hits    atomic.Int64 // Locate calls that found a final triangle
	faceQs  atomic.Int64 // face-map Incident queries
	views   atomic.Int64 // distinct view epochs observed
	_       [24]byte     // pad to a cache line against false sharing
}

// run is the testable driver body, mirroring ridt's contract: output to
// out/errOut, returned exit code, injectable signal feed.
func run(args []string, out, errOut io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("ridtd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	n := fs.Int("n", 4096, "points per build")
	seed := fs.Uint64("seed", 1, "base random seed (build i uses seed+i)")
	readers := fs.Int("readers", 4, "concurrent reader goroutines")
	builds := fs.Int("builds", 1, "builds to run (0 = rebuild until canceled)")
	report := fs.Duration("report", time.Second, "progress-line interval (0 = none)")
	procs := fs.Int("procs", 0, "worker count (sets GOMAXPROCS; 0 keeps the environment's value)")
	timeout := fs.Duration("timeout", 0, "cancel the run after this duration and exit 3 (0 = no deadline)")
	ckptDir := fs.String("checkpoint", "", "directory for crash-safe build checkpoints (empty = disabled)")
	ckptEvery := fs.Int("checkpoint-every", 16, "committed rounds between checkpoints")
	ckptChain := fs.Int("checkpoint-chain", checkpoint.DefaultMaxChain, "max delta generations between full checkpoint images (0 = full images only)")
	restore := fs.Bool("restore", false, "resume the interrupted build from the newest valid checkpoint in -checkpoint")
	scrubOnce := fs.Bool("scrub", false, "run one scrub pass over -checkpoint (verify, quarantine, repair) and exit")
	scrubEvery := fs.Duration("scrub-every", 0, "background scrub-pass interval (0 = no scrubbing)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "ridtd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *n < 0 || *readers < 0 || *builds < 0 {
		fmt.Fprintln(errOut, "ridtd: -n, -readers, and -builds must be non-negative")
		return 2
	}
	if *ckptEvery < 1 {
		fmt.Fprintln(errOut, "ridtd: -checkpoint-every must be at least 1")
		return 2
	}
	if *ckptChain < 0 {
		fmt.Fprintln(errOut, "ridtd: -checkpoint-chain must be non-negative")
		return 2
	}
	if *restore && *ckptDir == "" {
		fmt.Fprintln(errOut, "ridtd: -restore requires -checkpoint")
		return 2
	}
	if (*scrubOnce || *scrubEvery > 0) && *ckptDir == "" {
		fmt.Fprintln(errOut, "ridtd: -scrub and -scrub-every require -checkpoint")
		return 2
	}
	if *scrubEvery < 0 {
		fmt.Fprintln(errOut, "ridtd: -scrub-every must be non-negative")
		return 2
	}
	if *scrubOnce {
		// One-shot maintenance mode: scrub the directory and exit without
		// serving. Exit 0 even when files were quarantined — the PASS
		// succeeded; what it found is in the output for the caller.
		w, err := checkpoint.NewWriter(*ckptDir)
		if err != nil {
			fmt.Fprintf(errOut, "ridtd: %v\n", err)
			return 2
		}
		res, err := w.Scrub()
		if err != nil {
			fmt.Fprintf(errOut, "ridtd: scrub: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "ridtd: scrub %s\n", res)
		if res.NewestOK {
			fmt.Fprintf(out, "ridtd: scrub newest-restorable=%016x\n", res.Newest)
		}
		return 0
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	var canceler parallel.Canceler
	if *timeout > 0 {
		tm := time.AfterFunc(*timeout, canceler.Cancel)
		defer tm.Stop()
	}
	if sigs == nil {
		ch := make(chan os.Signal, 1)
		// SIGTERM is the standard service-manager stop signal; treating it
		// like an interrupt gives the daemon the same clean prefix-shutdown
		// under systemd/container stops as under a ^C.
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(ch)
		sigs = ch
	}
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-sigs:
			canceler.Cancel()
		case <-watcherDone:
		}
	}()

	var saver *ckptSaver
	var scr *scrubber
	if *ckptDir != "" {
		w, err := checkpoint.NewWriter(*ckptDir)
		if err != nil {
			fmt.Fprintf(errOut, "ridtd: %v\n", err)
			return 2
		}
		w.SetMaxChain(*ckptChain)
		saver = newCkptSaver(w, errOut)
		defer saver.close()
		if *scrubEvery > 0 {
			scr = startScrubber(w, *scrubEvery, out, errOut)
			defer scr.close()
		}
	}
	startBuild := 0
	var resumed *delaunay.Live
	if *restore {
		st, meta, err := checkpoint.Restore(*ckptDir)
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			fmt.Fprintln(out, "ridtd: no checkpoint to restore; starting fresh")
		case err != nil:
			fmt.Fprintf(errOut, "ridtd: restore: %v\n", err)
			return 2
		default:
			lv, err := delaunay.ResumeLive(st)
			if err != nil {
				fmt.Fprintf(errOut, "ridtd: restore: %v\n", err)
				return 2
			}
			resumed = lv
			startBuild = int(meta.Build)
			fmt.Fprintf(out, "ridtd: restored build=%d seed=%d round=%d tris=%d\n",
				meta.Build, meta.Seed, st.Round, len(st.Tris))
		}
	}

	fmt.Fprintf(out, "ridtd: GOMAXPROCS=%d n=%d readers=%d builds=%d seed=%d\n",
		runtime.GOMAXPROCS(0), *n, *readers, *builds, *seed)

	var totQ, totHit, totFace, totViews, totRounds, totTris int64
	completed := 0
	for b := startBuild; *builds == 0 || b < *builds+startBuild; b++ {
		if canceler.Canceled() {
			break
		}
		bseed := *seed + uint64(b)
		lv := resumed
		resumed = nil
		if lv == nil {
			lv = delaunay.NewLive(geom.Dedup(geom.UniformDisk(rng.New(bseed), *n)))
		}
		q, hit, faceQ, views, rounds, tris, done := serveBuild(out, lv, bseed, b, *readers, *report, *ckptEvery, saver, scr, &canceler)
		totQ += q
		totHit += hit
		totFace += faceQ
		totViews += views
		totRounds += rounds
		totTris += tris
		if !done {
			break
		}
		completed++
	}

	fmt.Fprintf(out, "ridtd: builds=%d rounds=%d tris=%d queries=%d hits=%d faceqs=%d views=%d\n",
		completed, totRounds, totTris, totQ, totHit, totFace, totViews)
	if saver != nil {
		fmt.Fprintf(out, "ridtd: ckpt saved=%d delta=%d dropped=%d failed=%d\n",
			saver.saved.Load(), saver.savedDelta.Load(), saver.dropped.Load(), saver.failed.Load())
	}
	if scr != nil {
		fmt.Fprintf(out, "ridtd: scrub passes=%d verified=%d skipped=%d quarantined=%d repaired=%d\n",
			scr.passes.Load(), scr.verified.Load(), scr.skipped.Load(), scr.quarantined.Load(), scr.repaired.Load())
	}
	if canceler.Canceled() {
		fmt.Fprintln(errOut, "ridtd: run canceled (deadline or interrupt); stats above are a prefix of the full run")
		return 3
	}
	return 0
}

// ckptSaver commits checkpoints on a dedicated goroutine so the build's
// publisher never blocks on disk. The feed has capacity 1 and offers
// drop rather than wait: a checkpoint is a sample of the monotone build
// state, so when the saver is still fsyncing the previous one, skipping
// a boundary costs only restore granularity, never correctness. Save
// errors (including injected ones) and panics are contained here and
// logged — durability is best-effort, the build is not.
type ckptSaver struct {
	ch         chan ckptReq
	done       chan struct{}
	errOut     io.Writer
	saved      atomic.Int64 // committed generations (full + delta)
	savedDelta atomic.Int64 // of those, incremental ones
	dropped    atomic.Int64 // captures skipped because the saver was busy
	failed     atomic.Int64 // save attempts that errored or panicked
}

type ckptReq struct {
	st   *delaunay.BuildState
	meta checkpoint.Meta
}

func newCkptSaver(w *checkpoint.Writer, errOut io.Writer) *ckptSaver {
	s := &ckptSaver{ch: make(chan ckptReq, 1), done: make(chan struct{}), errOut: errOut}
	go func() {
		defer close(s.done)
		for req := range s.ch {
			s.save(w, req)
		}
	}()
	return s
}

func (s *ckptSaver) save(w *checkpoint.Writer, req ckptReq) {
	defer func() {
		if r := recover(); r != nil {
			s.failed.Add(1)
			fmt.Fprintf(s.errOut, "ridtd: checkpoint save panicked: %v\n", r)
		}
	}()
	_, kind, err := w.SaveAuto(req.st, req.meta)
	if err != nil {
		s.failed.Add(1)
		fmt.Fprintf(s.errOut, "ridtd: checkpoint save failed: %v\n", err)
		return
	}
	s.saved.Add(1)
	if kind == checkpoint.KindDelta {
		s.savedDelta.Add(1)
	}
}

// offer hands a captured state to the saver without blocking.
func (s *ckptSaver) offer(st *delaunay.BuildState, meta checkpoint.Meta) {
	select {
	case s.ch <- ckptReq{st: st, meta: meta}:
	default:
		s.dropped.Add(1)
	}
}

func (s *ckptSaver) close() {
	close(s.ch)
	<-s.done
}

// scrubber runs periodic self-healing passes over the checkpoint
// directory on its own goroutine. It shares the Writer (and therefore
// the writer's lock) with the saver, so a pass never races a commit; a
// pass that errors or panics is logged and counted, never fatal — the
// scrubber is maintenance, the build is the product.
type scrubber struct {
	w      *checkpoint.Writer
	out    io.Writer
	errOut io.Writer
	stop   chan struct{}
	done   chan struct{}

	passes      atomic.Int64
	verified    atomic.Int64
	skipped     atomic.Int64
	quarantined atomic.Int64
	repaired    atomic.Int64
}

func startScrubber(w *checkpoint.Writer, every time.Duration, out, errOut io.Writer) *scrubber {
	s := &scrubber{w: w, out: out, errOut: errOut, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tk := time.NewTicker(every)
		defer tk.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tk.C:
				s.runPass()
			}
		}
	}()
	return s
}

func (s *scrubber) runPass() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(s.errOut, "ridtd: scrub pass panicked: %v\n", r)
		}
	}()
	s.passes.Add(1)
	res, err := s.w.Scrub()
	if err != nil {
		fmt.Fprintf(s.errOut, "ridtd: scrub pass failed: %v\n", err)
		return
	}
	s.verified.Add(int64(res.Verified))
	s.skipped.Add(int64(res.Skipped))
	s.quarantined.Add(int64(res.Quarantined))
	s.repaired.Add(int64(res.Repaired))
	// Quiet when healthy: a pass earns a log line only when it acted.
	if res.Quarantined > 0 || res.Repaired > 0 {
		fmt.Fprintf(s.out, "ridtd: scrub %s\n", res)
	}
}

func (s *scrubber) close() {
	close(s.stop)
	<-s.done
}

// serveBuild triangulates one instance to completion while readers
// hammer the published views, then reports per-build stats. done=false
// means the build was cut short by cancellation. A non-nil saver gets a
// state capture every ckptEvery committed rounds, taken at the quiesced
// boundary between Step calls (the same point the epoch advances).
func serveBuild(out io.Writer, lv *delaunay.Live, seed uint64, build, readers int, report time.Duration,
	ckptEvery int, saver *ckptSaver, scr *scrubber, c *parallel.Canceler) (q, hit, faceQ, views, rounds, tris int64, done bool) {
	stats := make([]readerStats, readers)
	var wg sync.WaitGroup
	stop := &parallel.Canceler{} // readers drain on build completion OR external cancel
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(rs *readerStats, rseed uint64) {
			defer wg.Done()
			reader(lv, rs, rseed, stop)
		}(&stats[r], seed^(uint64(r)*0x9E3779B97F4A7C15+1))
	}

	var reportC <-chan time.Time
	if report > 0 {
		tk := time.NewTicker(report)
		defer tk.Stop()
		reportC = tk.C
	}

	done = true
	lastCkpt := int32(-1)
	for {
		more, err := lv.Step(c)
		if err != nil {
			done = false // canceled: the engine rolled the round back
			break
		}
		if saver != nil {
			if r := lv.View().Round(); r != lastCkpt && int(r)%ckptEvery == 0 {
				lastCkpt = r
				saver.offer(lv.CaptureState(), checkpoint.Meta{Seed: seed, Build: uint64(build)})
			}
		}
		select {
		case <-reportC:
			v := lv.View()
			var rq, rh int64
			for i := range stats {
				rq += stats[i].queries.Load()
				rh += stats[i].hits.Load()
			}
			line := fmt.Sprintf("ridtd: build=%d round=%d tris=%d final=%d queries=%d hits=%d",
				build, v.Round(), v.NumTriangles(), v.NumFinal(), rq, rh)
			if saver != nil {
				line += fmt.Sprintf(" saved=%d dropped=%d", saver.saved.Load(), saver.dropped.Load())
			}
			if scr != nil {
				line += fmt.Sprintf(" scrubbed=%d", scr.verified.Load())
			}
			fmt.Fprintln(out, line)
		default:
		}
		if !more {
			break
		}
	}
	stop.Cancel()
	wg.Wait()

	v := lv.View()
	rounds, tris = int64(v.Round()), int64(v.NumTriangles())
	for i := range stats {
		q += stats[i].queries.Load()
		hit += stats[i].hits.Load()
		faceQ += stats[i].faceQs.Load()
		views += stats[i].views.Load()
	}
	fmt.Fprintf(out, "ridtd: build=%d done=%v rounds=%d tris=%d final=%d queries=%d hits=%d faceqs=%d views=%d\n",
		build, done, rounds, tris, v.NumFinal(), q, hit, faceQ, views)
	if done {
		// The digest commits this process to a specific triangle log: a
		// resumed-after-crash build must print the same value as the
		// uninterrupted reference run (the CI crash-recovery job diffs them).
		fmt.Fprintf(out, "ridtd: build=%d digest=%08x\n", build, checkpoint.DigestMesh(lv.Finish()))
	}
	return q, hit, faceQ, views, rounds, tris, done
}

// reader is one query goroutine: it re-reads the latest published view
// each batch, locates random points in it, and probes each located
// triangle's first edge in a face-map snapshot taken alongside the view,
// until stopped. Both paths are the zero-alloc snapshot reads the
// benchmarks pin; the smoke tests run readers in-process.
func reader(lv *delaunay.Live, rs *readerStats, seed uint64, stop *parallel.Canceler) {
	r := rng.New(seed)
	var lastEpoch uint64
	for !stop.Canceled() {
		v, ep := lv.ViewEpoch()
		if ep != lastEpoch {
			rs.views.Add(1)
			lastEpoch = ep
		}
		fsnap := lv.Faces()
		for i := 0; i < 64 && !stop.Canceled(); i++ {
			// Queries over the slightly padded unit disk: most hit the
			// finalized region once it grows, some probe the frontier.
			x := 2.2*r.Float64() - 1.1
			y := 2.2*r.Float64() - 1.1
			id, ok := v.Locate(geom.Point{X: x, Y: y})
			rs.queries.Add(1)
			if ok {
				rs.hits.Add(1)
				cs := v.Corners(id)
				if _, _, ok := fsnap.Incident(cs[0], cs[1]); ok {
					rs.faceQs.Add(1)
				}
			}
		}
		fsnap.Close()
	}
}

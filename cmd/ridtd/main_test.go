package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunCompletes drives a small serve-while-building run to completion
// and checks the exit code and the summary line.
func TestRunCompletes(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "300", "-builds", "2", "-readers", "2", "-seed", "7", "-report", "0"},
		&out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "ridtd: builds=2 ") {
		t.Fatalf("summary line missing or wrong build count:\n%s", s)
	}
	if !strings.Contains(s, "build=1 done=true") {
		t.Fatalf("second build did not complete:\n%s", s)
	}
	if errOut.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errOut.String())
	}
}

// TestRunNoReaders exercises the writer-only path (readers=0) and n=0
// (a build whose initial view is already final).
func TestRunNoReaders(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "0", "-builds", "1", "-readers", "0", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "queries=0") {
		t.Fatalf("expected zero queries with no readers:\n%s", out.String())
	}
}

// TestRunReportLines checks the periodic progress line fires on a run
// long enough to tick.
func TestRunReportLines(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "1", "-readers", "1", "-report", "1ms"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "round=") {
		t.Fatalf("no progress line in output:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "notanint"},
		{"-bogus"},
		{"positional"},
		{"-n", "-1"},
		{"-readers", "-2"},
		{"-builds", "-1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-timeout") {
		t.Fatalf("usage text missing flags:\n%s", errOut.String())
	}
}

// TestRunTimeout runs an endless serving loop (-builds 0) under a short
// deadline and expects the canceled exit code with a prefix note.
func TestRunTimeout(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "2", "-report", "0", "-timeout", "50ms"},
		&out, &errOut, nil)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "canceled") {
		t.Fatalf("missing cancellation note on stderr: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "ridtd: builds=") {
		t.Fatalf("summary line should still print on cancellation:\n%s", out.String())
	}
}

// TestRunSignal injects an interrupt through the testable signal feed.
func TestRunSignal(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		sigs <- syscall.SIGINT
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// TestRunProcs exercises the -procs path.
func TestRunProcs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "200", "-builds", "1", "-readers", "1", "-procs", "2", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "GOMAXPROCS=2") {
		t.Fatalf("-procs not reflected in banner:\n%s", out.String())
	}
}

// TestRunSigterm feeds SIGTERM through the signal channel: the
// service-manager stop signal must cancel as cleanly as an interrupt.
func TestRunSigterm(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		sigs <- syscall.SIGTERM
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// TestRunSigtermReal delivers a real SIGTERM to the process with run
// subscribed through the production signal.Notify path (sigs == nil),
// proving the registration itself — not just the channel plumbing —
// covers SIGTERM.
func TestRunSigtermReal(t *testing.T) {
	go func() {
		time.Sleep(50 * time.Millisecond)
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, nil)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// digestLines extracts the per-build "ridtd: build=B digest=XXXXXXXX"
// lines as a build->digest map.
func digestLines(t *testing.T, s string) map[int]string {
	t.Helper()
	out := map[int]string{}
	for _, line := range strings.Split(s, "\n") {
		var b int
		var d string
		if n, _ := fmt.Sscanf(line, "ridtd: build=%d digest=%s", &b, &d); n == 2 {
			out[b] = d
		}
	}
	return out
}

// TestRunCheckpointRestore is the crash-recovery loop in miniature,
// in-process: run a build with checkpointing, cut it short, restart with
// -restore, and require the resumed build's digest to equal the
// uninterrupted reference's — the determinism contract across a process
// boundary.
func TestRunCheckpointRestore(t *testing.T) {
	dir := t.TempDir()

	// Interrupted run: checkpoint every round, cancel partway via the
	// signal feed so at least one checkpoint lands before shutdown.
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		sigs <- os.Interrupt
	}()
	var out1, err1 bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "0", "-readers", "0", "-seed", "5", "-report", "0",
		"-checkpoint", dir, "-checkpoint-every", "1"}, &out1, &err1, sigs)
	if code != 3 {
		t.Fatalf("interrupted run: code %d, want 3; stderr %s", code, err1.String())
	}

	// Restart with -restore: whichever build K was interrupted must
	// resume and finish.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0", "-seed", "5", "-report", "0",
		"-checkpoint", dir, "-restore"}, &out2, &err2, nil); code != 0 {
		t.Fatalf("restore run: code %d, stderr %s", code, err2.String())
	}
	s2 := out2.String()
	idx := strings.Index(s2, "ridtd: restored build=")
	if idx < 0 {
		t.Fatalf("restore run did not report a restore (no checkpoint landed before the interrupt?):\n%s", s2)
	}
	restored := 0
	if n, _ := fmt.Sscanf(s2[idx:], "ridtd: restored build=%d", &restored); n != 1 {
		t.Fatalf("unparseable restore line:\n%s", s2)
	}
	got := digestLines(t, s2)
	if got[restored] == "" {
		t.Fatalf("restored run printed no digest for build %d:\n%s", restored, s2)
	}

	// Reference: build K of the original seed schedule is build 0 of a
	// fresh run with seed 5+K (the daemon seeds build i with seed+i), so
	// the uninterrupted reference digest is reproducible regardless of
	// which build the interrupt landed in.
	var refOut, refErr bytes.Buffer
	if code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0",
		"-seed", fmt.Sprint(5 + restored), "-report", "0"}, &refOut, &refErr, nil); code != 0 {
		t.Fatalf("reference run: code %d, stderr %s", code, refErr.String())
	}
	ref := digestLines(t, refOut.String())
	if ref[0] == "" {
		t.Fatalf("reference run printed no digest:\n%s", refOut.String())
	}
	if got[restored] != ref[0] {
		t.Fatalf("resumed digest %s, reference %s", got[restored], ref[0])
	}
}

// TestRunRestoreFlagErrors pins the flag-validation paths of the
// durability options.
func TestRunRestoreFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-restore"},
		{"-checkpoint", "x", "-checkpoint-every", "0"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

// TestRunRestoreEmptyDir: -restore over an empty directory starts fresh
// and still completes.
func TestRunRestoreEmptyDir(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "300", "-builds", "1", "-readers", "0", "-report", "0",
		"-checkpoint", t.TempDir(), "-restore"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no checkpoint to restore") {
		t.Fatalf("missing fresh-start notice:\n%s", out.String())
	}
}

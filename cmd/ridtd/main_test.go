package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunCompletes drives a small serve-while-building run to completion
// and checks the exit code and the summary line.
func TestRunCompletes(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "300", "-builds", "2", "-readers", "2", "-seed", "7", "-report", "0"},
		&out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "ridtd: builds=2 ") {
		t.Fatalf("summary line missing or wrong build count:\n%s", s)
	}
	if !strings.Contains(s, "build=1 done=true") {
		t.Fatalf("second build did not complete:\n%s", s)
	}
	if errOut.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errOut.String())
	}
}

// TestRunNoReaders exercises the writer-only path (readers=0) and n=0
// (a build whose initial view is already final).
func TestRunNoReaders(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "0", "-builds", "1", "-readers", "0", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "queries=0") {
		t.Fatalf("expected zero queries with no readers:\n%s", out.String())
	}
}

// TestRunReportLines checks the periodic progress line fires on a run
// long enough to tick.
func TestRunReportLines(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "1", "-readers", "1", "-report", "1ms"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "round=") {
		t.Fatalf("no progress line in output:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "notanint"},
		{"-bogus"},
		{"positional"},
		{"-n", "-1"},
		{"-readers", "-2"},
		{"-builds", "-1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-timeout") {
		t.Fatalf("usage text missing flags:\n%s", errOut.String())
	}
}

// TestRunTimeout runs an endless serving loop (-builds 0) under a short
// deadline and expects the canceled exit code with a prefix note.
func TestRunTimeout(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "2", "-report", "0", "-timeout", "50ms"},
		&out, &errOut, nil)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "canceled") {
		t.Fatalf("missing cancellation note on stderr: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "ridtd: builds=") {
		t.Fatalf("summary line should still print on cancellation:\n%s", out.String())
	}
}

// TestRunSignal injects an interrupt through the testable signal feed.
func TestRunSignal(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		sigs <- syscall.SIGINT
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// TestRunProcs exercises the -procs path.
func TestRunProcs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "200", "-builds", "1", "-readers", "1", "-procs", "2", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "GOMAXPROCS=2") {
		t.Fatalf("-procs not reflected in banner:\n%s", out.String())
	}
}

// TestRunSigterm feeds SIGTERM through the signal channel: the
// service-manager stop signal must cancel as cleanly as an interrupt.
func TestRunSigterm(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		sigs <- syscall.SIGTERM
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// TestRunSigtermReal delivers a real SIGTERM to the process with run
// subscribed through the production signal.Notify path (sigs == nil),
// proving the registration itself — not just the channel plumbing —
// covers SIGTERM.
func TestRunSigtermReal(t *testing.T) {
	go func() {
		time.Sleep(50 * time.Millisecond)
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, nil)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// digestLines extracts the per-build "ridtd: build=B digest=XXXXXXXX"
// lines as a build->digest map.
func digestLines(t *testing.T, s string) map[int]string {
	t.Helper()
	out := map[int]string{}
	for _, line := range strings.Split(s, "\n") {
		var b int
		var d string
		if n, _ := fmt.Sscanf(line, "ridtd: build=%d digest=%s", &b, &d); n == 2 {
			out[b] = d
		}
	}
	return out
}

// TestRunCheckpointRestore is the crash-recovery loop in miniature,
// in-process: run a build with checkpointing, cut it short, restart with
// -restore, and require the resumed build's digest to equal the
// uninterrupted reference's — the determinism contract across a process
// boundary.
func TestRunCheckpointRestore(t *testing.T) {
	dir := t.TempDir()

	// Interrupted run: checkpoint every round, cancel partway via the
	// signal feed so at least one checkpoint lands before shutdown.
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		sigs <- os.Interrupt
	}()
	var out1, err1 bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "0", "-readers", "0", "-seed", "5", "-report", "0",
		"-checkpoint", dir, "-checkpoint-every", "1"}, &out1, &err1, sigs)
	if code != 3 {
		t.Fatalf("interrupted run: code %d, want 3; stderr %s", code, err1.String())
	}

	// Restart with -restore: whichever build K was interrupted must
	// resume and finish.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0", "-seed", "5", "-report", "0",
		"-checkpoint", dir, "-restore"}, &out2, &err2, nil); code != 0 {
		t.Fatalf("restore run: code %d, stderr %s", code, err2.String())
	}
	s2 := out2.String()
	idx := strings.Index(s2, "ridtd: restored build=")
	if idx < 0 {
		t.Fatalf("restore run did not report a restore (no checkpoint landed before the interrupt?):\n%s", s2)
	}
	restored := 0
	if n, _ := fmt.Sscanf(s2[idx:], "ridtd: restored build=%d", &restored); n != 1 {
		t.Fatalf("unparseable restore line:\n%s", s2)
	}
	got := digestLines(t, s2)
	if got[restored] == "" {
		t.Fatalf("restored run printed no digest for build %d:\n%s", restored, s2)
	}

	// Reference: build K of the original seed schedule is build 0 of a
	// fresh run with seed 5+K (the daemon seeds build i with seed+i), so
	// the uninterrupted reference digest is reproducible regardless of
	// which build the interrupt landed in.
	var refOut, refErr bytes.Buffer
	if code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0",
		"-seed", fmt.Sprint(5 + restored), "-report", "0"}, &refOut, &refErr, nil); code != 0 {
		t.Fatalf("reference run: code %d, stderr %s", code, refErr.String())
	}
	ref := digestLines(t, refOut.String())
	if ref[0] == "" {
		t.Fatalf("reference run printed no digest:\n%s", refOut.String())
	}
	if got[restored] != ref[0] {
		t.Fatalf("resumed digest %s, reference %s", got[restored], ref[0])
	}
}

// TestRunRestoreFlagErrors pins the flag-validation paths of the
// durability options.
func TestRunRestoreFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-restore"},
		{"-checkpoint", "x", "-checkpoint-every", "0"},
		{"-scrub"},
		{"-scrub-every", "1s"},
		{"-checkpoint", "x", "-scrub-every", "-1s"},
		{"-checkpoint", "x", "-checkpoint-chain", "-1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

// TestRunRestoreEmptyDir: -restore over an empty directory starts fresh
// and still completes.
func TestRunRestoreEmptyDir(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "300", "-builds", "1", "-readers", "0", "-report", "0",
		"-checkpoint", t.TempDir(), "-restore"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no checkpoint to restore") {
		t.Fatalf("missing fresh-start notice:\n%s", out.String())
	}
}

// ckptFiles lists the generation files (ckpt-*, quarantine excluded) in
// a checkpoint directory, sorted by name — which, for the fixed-width
// hex generation names, is oldest-first.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ckpt-") && !strings.HasSuffix(e.Name(), ".bad") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	return files
}

// TestRunScrubOnce is the maintenance-mode contract end to end: a
// checkpointed run leaves generations behind; one of them is corrupted;
// `ridtd -scrub` must quarantine it (rename to .bad, never delete),
// repair the chain, and exit 0; and a -restore run over the scrubbed
// directory must still resume and reproduce the reference digest.
func TestRunScrubOnce(t *testing.T) {
	dir := t.TempDir()
	var out1, err1 bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0", "-seed", "11", "-report", "0",
		"-checkpoint", dir, "-checkpoint-every", "1"}, &out1, &err1, nil)
	if code != 0 {
		t.Fatalf("checkpointed run: code %d, stderr %s", code, err1.String())
	}
	if !strings.Contains(out1.String(), "ridtd: ckpt saved=") {
		t.Fatalf("summary missing checkpoint counters:\n%s", out1.String())
	}
	ref := digestLines(t, out1.String())
	if ref[0] == "" {
		t.Fatalf("no digest line in checkpointed run:\n%s", out1.String())
	}
	files := ckptFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("checkpointed run left no generations on disk")
	}

	// Corrupt the newest generation on disk.
	p := filepath.Join(dir, files[len(files)-1])
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out2, err2 bytes.Buffer
	if code := run([]string{"-checkpoint", dir, "-scrub"}, &out2, &err2, nil); code != 0 {
		t.Fatalf("scrub run: code %d, stderr %s", code, err2.String())
	}
	s := out2.String()
	var verified, skipped, quarantined, repaired int
	idx := strings.Index(s, "ridtd: scrub verified=")
	if idx < 0 {
		t.Fatalf("scrub printed no result line:\n%s", s)
	}
	if n, _ := fmt.Sscanf(s[idx:], "ridtd: scrub verified=%d skipped=%d quarantined=%d repaired=%d",
		&verified, &skipped, &quarantined, &repaired); n != 4 {
		t.Fatalf("unparseable scrub result line:\n%s", s)
	}
	if quarantined < 1 {
		t.Fatalf("scrub of a corrupted generation quarantined nothing:\n%s", s)
	}
	if !strings.Contains(s, "ridtd: scrub newest-restorable=") {
		t.Fatalf("scrub reported no restorable generation:\n%s", s)
	}
	badSeen := false
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".bad") {
			badSeen = true
		}
	}
	if !badSeen {
		t.Fatal("quarantine left no .bad file (corrupt evidence must be renamed, not deleted)")
	}

	// The scrubbed directory still restores, and the resumed build is
	// byte-identical to the uninterrupted reference.
	var out3, err3 bytes.Buffer
	if code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0", "-seed", "11", "-report", "0",
		"-checkpoint", dir, "-restore"}, &out3, &err3, nil); code != 0 {
		t.Fatalf("restore after scrub: code %d, stderr %s", code, err3.String())
	}
	if !strings.Contains(out3.String(), "ridtd: restored build=0") {
		t.Fatalf("restore after scrub did not resume:\n%s", out3.String())
	}
	got := digestLines(t, out3.String())
	if got[0] != ref[0] {
		t.Fatalf("post-scrub resumed digest %s, reference %s", got[0], ref[0])
	}
}

// TestRunScrubOnceEmptyDir: one-shot scrub of an empty directory is a
// clean no-op pass.
func TestRunScrubOnceEmptyDir(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checkpoint", t.TempDir(), "-scrub"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("code %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ridtd: scrub verified=0 skipped=0 quarantined=0 repaired=0") {
		t.Fatalf("empty-dir scrub output:\n%s", out.String())
	}
}

// TestRunScrubEverySmoke runs the background scrubber alongside a real
// checkpointed build and checks the pass counters reach the summary.
func TestRunScrubEverySmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "1", "-readers", "0", "-seed", "13", "-report", "0",
		"-checkpoint", t.TempDir(), "-checkpoint-every", "1", "-scrub-every", "1ms"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ridtd: scrub passes=") {
		t.Fatalf("summary missing scrub counters:\n%s", out.String())
	}
}

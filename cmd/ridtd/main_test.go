package main

import (
	"bytes"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunCompletes drives a small serve-while-building run to completion
// and checks the exit code and the summary line.
func TestRunCompletes(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "300", "-builds", "2", "-readers", "2", "-seed", "7", "-report", "0"},
		&out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "ridtd: builds=2 ") {
		t.Fatalf("summary line missing or wrong build count:\n%s", s)
	}
	if !strings.Contains(s, "build=1 done=true") {
		t.Fatalf("second build did not complete:\n%s", s)
	}
	if errOut.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errOut.String())
	}
}

// TestRunNoReaders exercises the writer-only path (readers=0) and n=0
// (a build whose initial view is already final).
func TestRunNoReaders(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "0", "-builds", "1", "-readers", "0", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "queries=0") {
		t.Fatalf("expected zero queries with no readers:\n%s", out.String())
	}
}

// TestRunReportLines checks the periodic progress line fires on a run
// long enough to tick.
func TestRunReportLines(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3000", "-builds", "1", "-readers", "1", "-report", "1ms"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "round=") {
		t.Fatalf("no progress line in output:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "notanint"},
		{"-bogus"},
		{"positional"},
		{"-n", "-1"},
		{"-readers", "-2"},
		{"-builds", "-1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-timeout") {
		t.Fatalf("usage text missing flags:\n%s", errOut.String())
	}
}

// TestRunTimeout runs an endless serving loop (-builds 0) under a short
// deadline and expects the canceled exit code with a prefix note.
func TestRunTimeout(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "2", "-report", "0", "-timeout", "50ms"},
		&out, &errOut, nil)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "canceled") {
		t.Fatalf("missing cancellation note on stderr: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "ridtd: builds=") {
		t.Fatalf("summary line should still print on cancellation:\n%s", out.String())
	}
}

// TestRunSignal injects an interrupt through the testable signal feed.
func TestRunSignal(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		sigs <- syscall.SIGINT
	}()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2000", "-builds", "0", "-readers", "1", "-report", "0"}, &out, &errOut, sigs)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stdout:\n%s", code, out.String())
	}
}

// TestRunProcs exercises the -procs path.
func TestRunProcs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "200", "-builds", "1", "-readers", "1", "-procs", "2", "-report", "0"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "GOMAXPROCS=2") {
		t.Fatalf("-procs not reflected in banner:\n%s", out.String())
	}
}

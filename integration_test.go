// Integration tests exercising several algorithm packages against each
// other on one geometric dataset: classic cross-invariants (the closest
// pair is a Delaunay edge; the triangulation graph is connected; LE-lists
// over the triangulation agree with direct shortest paths) catch mistakes
// no single-package test can.
package repro

import (
	"math"
	"sort"
	"testing"

	"repro/internal/bstsort"
	"repro/internal/closestpair"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lelists"
	"repro/internal/rng"
	"repro/internal/scc"
	"repro/internal/seb"
)

// dtGraph converts the interior of a Delaunay mesh into a weighted
// undirected graph on the input points (edge weight = Euclidean length).
func dtGraph(m *delaunay.Mesh) *graph.Graph {
	seen := map[[2]int32]bool{}
	var edges []graph.Edge
	for _, t := range m.InnerTriangles() {
		for e := 0; e < 3; e++ {
			a, b := t.V[e], t.V[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			if seen[[2]int32{a, b}] {
				continue
			}
			seen[[2]int32{a, b}] = true
			w := geom.Dist(m.Points[a], m.Points[b])
			edges = append(edges, graph.Edge{From: int(a), To: int(b), W: w})
		}
	}
	return graph.Symmetrize(m.N, edges, true)
}

func TestClosestPairIsDelaunayEdge(t *testing.T) {
	// Textbook fact: the closest pair of a point set is joined by a
	// Delaunay edge, and its distance is the minimum edge length.
	for _, seed := range []uint64{1, 2, 3} {
		pts := geom.Dedup(geom.UniformSquare(rng.New(seed), 800))
		pair, _ := closestpair.ParIncremental(pts)
		mesh := delaunay.ParTriangulate(pts)
		g := dtGraph(mesh)
		minEdge := math.Inf(1)
		var minA, minB int
		for u := 0; u < g.N; u++ {
			adj, ws := g.OutW(u)
			for k := range adj {
				if ws[k] < minEdge {
					minEdge = ws[k]
					minA, minB = u, int(adj[k])
				}
			}
		}
		if math.Abs(minEdge-pair.Dist) > 1e-12 {
			t.Fatalf("seed %d: min DT edge %g != closest pair %g", seed, minEdge, pair.Dist)
		}
		if minA > minB {
			minA, minB = minB, minA
		}
		if minA != pair.I || minB != pair.J {
			t.Fatalf("seed %d: DT min edge (%d,%d) != pair (%d,%d)", seed, minA, minB, pair.I, pair.J)
		}
	}
}

func TestDelaunayGraphIsConnectedSCC(t *testing.T) {
	// The (symmetrized) Delaunay graph of any point set is connected, so
	// the SCC decomposition must find exactly one component.
	pts := geom.Dedup(geom.UniformSquare(rng.New(7), 500))
	mesh := delaunay.ParTriangulate(pts)
	g := dtGraph(mesh)
	labels, _ := scc.Parallel(g)
	if got := scc.CountSCCs(labels); got != 1 {
		t.Fatalf("Delaunay graph has %d SCCs, want 1", got)
	}
}

func TestLEListsOverDelaunayGraph(t *testing.T) {
	// LE-lists on the triangulation graph: the closest first-landmark per
	// vertex must agree with a direct pruned-SSSP oracle, and parallel
	// must equal sequential on this organically-built weighted graph.
	pts := geom.Dedup(geom.UniformSquare(rng.New(9), 300))
	mesh := delaunay.ParTriangulate(pts)
	g := dtGraph(mesh)
	seq, _ := lelists.Sequential(g)
	par, _ := lelists.Parallel(g)
	if !lelists.Equal(seq, par) {
		t.Fatal("parallel LE-lists differ on Delaunay graph")
	}
	d0 := graph.FullSSSP(g, 0)
	for u := 0; u < g.N; u++ {
		if len(seq[u]) == 0 {
			t.Fatalf("vertex %d has empty list on a connected graph", u)
		}
		if first := seq[u][0]; first.V != 0 || math.Abs(first.Dist-d0[u]) > 1e-9 {
			t.Fatalf("vertex %d: first entry %+v, want source 0 at distance %g", u, first, d0[u])
		}
	}
}

func TestSEBContainsDelaunayMesh(t *testing.T) {
	// The smallest enclosing disk of the points contains every triangle
	// corner, and its radius is at least half the farthest-pair distance
	// (diameter lower bound) and at most the full diameter.
	pts := geom.Dedup(geom.UniformDisk(rng.New(11), 600))
	disk, _ := seb.ParIncremental(pts)
	diam := 0.0
	for i := 0; i < len(pts); i += 7 { // sampled farthest pair lower bound
		for j := i + 1; j < len(pts); j += 5 {
			if d := geom.Dist(pts[i], pts[j]); d > diam {
				diam = d
			}
		}
	}
	r := disk.Radius()
	if r < diam/2-1e-9 {
		t.Fatalf("radius %g smaller than half the (sampled) diameter %g", r, diam/2)
	}
	if r > diam+1e-9 {
		t.Fatalf("radius %g exceeds the diameter %g", r, diam)
	}
	for _, p := range pts {
		if !disk.Contains(p) {
			t.Fatal("disk misses a point")
		}
	}
}

func TestSortedCoordinatesMatchStdlib(t *testing.T) {
	pts := geom.UniformSquare(rng.New(13), 5000)
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
	}
	got := bstsort.Sort(xs)
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestFullPipelineDeterminism(t *testing.T) {
	// The entire pipeline is deterministic given the seed: repeat twice
	// and compare every output.
	run := func() (int, float64, float64, int) {
		r := rng.New(42)
		pts := geom.Dedup(geom.UniformSquare(r, 400))
		mesh := delaunay.ParTriangulate(pts)
		pair, _ := closestpair.ParIncremental(pts)
		disk, _ := seb.ParIncremental(pts)
		g := dtGraph(mesh)
		labels, _ := scc.Parallel(g)
		return len(mesh.Triangles), pair.Dist, disk.R2, scc.CountSCCs(labels)
	}
	t1, d1, r1, s1 := run()
	t2, d2, r2, s2 := run()
	if t1 != t2 || d1 != d2 || r1 != r2 || s1 != s2 {
		t.Fatalf("pipeline is not deterministic: (%d,%g,%g,%d) vs (%d,%g,%g,%d)",
			t1, d1, r1, s1, t2, d2, r2, s2)
	}
}

// Benchmarks regenerating the paper's evaluation artifacts, one family per
// Table 1 row plus theorem-level constants and design ablations. Run with
//
//	go test -bench=. -benchmem
//
// Absolute times are machine-dependent; the quantities to compare are the
// reported custom metrics (normalized work, depth) and the relative times
// of the sequential, parallel and baseline variants.
package repro

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/bstsort"
	"repro/internal/closestpair"
	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hashtable"
	"repro/internal/lelists"
	"repro/internal/lp"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/scc"
	"repro/internal/seb"
	"repro/internal/sortutil"
)

var benchSizes = []int{1 << 12, 1 << 14}

func randKeys(seed uint64, n int) []float64 {
	r := rng.New(seed)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = r.Float64()
	}
	return keys
}

// --- Table 1 row: comparison sorting -----------------------------------

func BenchmarkTable1SortSeq(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := randKeys(uint64(n), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := bstsort.SeqInsert(keys)
				if i == 0 {
					b.ReportMetric(float64(st.Comparisons)/(float64(n)*math.Log(float64(n))), "cmp/nlnn")
				}
			}
		})
	}
}

func BenchmarkTable1SortPar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := randKeys(uint64(n), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := bstsort.ParInsert(keys)
				if i == 0 {
					b.ReportMetric(float64(st.Rounds), "depth")
				}
			}
		})
	}
}

func BenchmarkTable1SortPrefix(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := randKeys(uint64(n), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bstsort.ParInsertPrefix(keys)
			}
		})
	}
}

func BenchmarkTable1SortBaselineSampleSort(b *testing.B) {
	// The repository's parallel merge sort as the non-incremental baseline.
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := randKeys(uint64(n), n)
			buf := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				sortutil.Sort(buf, func(a, c float64) bool { return a < c })
			}
		})
	}
}

// --- Table 1 row: Delaunay triangulation -------------------------------

func BenchmarkTable1DelaunaySeq(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := delaunay.Triangulate(pts)
				if i == 0 {
					b.ReportMetric(float64(m.Stats.InCircleTests)/(float64(n)*math.Log(float64(n))), "IC/nlnn")
				}
			}
		})
	}
}

func BenchmarkTable1DelaunayPar(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// allocs/op is a gated metric (benchgate -allocthreshold): the
			// round engine's arena + inline face map hold it near the round
			// count, and a regression back toward O(triangles) must fail CI.
			b.ReportAllocs()
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := delaunay.ParTriangulate(pts)
				if i == 0 {
					b.ReportMetric(float64(m.Stats.DepDepth), "depth")
				}
			}
		})
	}
}

func BenchmarkTable1DelaunayBaselineGKS(b *testing.B) {
	// The Guibas–Knuth–Sharir history-DAG algorithm: the standard
	// sequential incremental DT the paper contrasts with BT.
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := delaunay.GKSTriangulate(pts)
				if i == 0 {
					b.ReportMetric(float64(st.InCircleTests)/(float64(n)*math.Log(float64(n))), "IC/nlnn")
				}
			}
		})
	}
}

// BenchmarkThm45InCircle reports the Theorem 4.5 constant as a metric: the
// average of InCircle/(n ln n) must stay below 24.
func BenchmarkThm45InCircle(b *testing.B) {
	n := 1 << 12
	r := rng.New(7)
	var sum float64
	var count int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := geom.Dedup(geom.UniformSquare(r.Split(), n))
		m := delaunay.Triangulate(pts)
		sum += float64(m.Stats.InCircleTests) / (float64(n) * math.Log(float64(n)))
		count++
	}
	b.ReportMetric(sum/float64(count), "IC/nlnn")
	b.ReportMetric(24, "bound")
}

// --- Table 1 row: 2D linear programming --------------------------------

func BenchmarkTable1LPSeq(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(uint64(n))
			cons := lp.TangentConstraints(r, n)
			cx, cy := lp.RandomObjective(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := lp.Solve(cons, cx, cy)
				if i == 0 {
					b.ReportMetric(float64(st.SideTests+st.OneDimWork)/float64(n), "work/n")
				}
			}
		})
	}
}

func BenchmarkTable1LPPar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(uint64(n))
			cons := lp.TangentConstraints(r, n)
			cx, cy := lp.RandomObjective(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lp.ParSolve(cons, cx, cy)
			}
		})
	}
}

// --- Table 1 row: 2D closest pair ---------------------------------------

func BenchmarkTable1ClosestPairSeq(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := closestpair.Incremental(pts)
				if i == 0 {
					b.ReportMetric(float64(st.DistChecks+st.CellProbes)/float64(n), "work/n")
				}
			}
		})
	}
}

func BenchmarkTable1ClosestPairPar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				closestpair.ParIncremental(pts)
			}
		})
	}
}

func BenchmarkTable1ClosestPairBaselineDC(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				closestpair.DivideAndConquer(pts)
			}
		})
	}
}

// --- Table 1 row: smallest enclosing disk -------------------------------

func BenchmarkTable1SEBSeq(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.UniformDisk(rng.New(uint64(n)), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := seb.Incremental(pts)
				if i == 0 {
					b.ReportMetric(float64(st.InDiskTests)/float64(n), "tests/n")
				}
			}
		})
	}
}

func BenchmarkTable1SEBPar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.UniformDisk(rng.New(uint64(n)), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seb.ParIncremental(pts)
			}
		})
	}
}

// --- Table 1 row: LE-lists ----------------------------------------------

func BenchmarkTable1LEListsSeq(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GnmUndirected(rng.New(uint64(n)), n, 4*n, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := lelists.Sequential(g)
				if i == 0 {
					b.ReportMetric(float64(st.SearchWork)/(float64(g.M())*math.Log(float64(n))), "work/mlnn")
				}
			}
		})
	}
}

func BenchmarkTable1LEListsPar(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GnmUndirected(rng.New(uint64(n)), n, 4*n, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lelists.Parallel(g)
			}
		})
	}
}

// --- Table 1 row: SCC ----------------------------------------------------

func BenchmarkTable1SCCBaselineTarjan(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GnmDirected(rng.New(uint64(n)), n, 4*n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scc.Tarjan(g)
			}
		})
	}
}

func BenchmarkTable1SCCSeq(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GnmDirected(rng.New(uint64(n)), n, 4*n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := scc.Sequential(g)
				if i == 0 {
					b.ReportMetric(float64(st.ReachWork)/(float64(g.M())*math.Log(float64(n))), "work/mlnn")
				}
			}
		})
	}
}

func BenchmarkTable1SCCPar(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GnmDirected(rng.New(uint64(n)), n, 4*n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := scc.Parallel(g)
				if i == 0 {
					b.ReportMetric(float64(st.Rounds), "rounds")
				}
			}
		})
	}
}

// --- Type 2 runner: sequential reference vs reserve/commit batching ------
//
// The BenchmarkType2 family measures the framework change directly: the
// same algorithm, once through the sequential scan (the reference runner's
// serial probe order) and once through core.RunType2's batched
// reserve/commit schedule. On a multi-core run (GOMAXPROCS >= 4) the
// batched variants should show multi-core speedup on n >= 1e5 inputs. On a
// single-core run BenchmarkType2Runner ties (probes below the grain run
// inline) while the SEB/LP batched variants pay the parallel-hook tax —
// atomic counters and closure dispatch per probe — without the payoff.

var type2BenchSizes = []int{1 << 17}

func BenchmarkType2SEB(b *testing.B) {
	for _, n := range type2BenchSizes {
		pts := geom.UniformDisk(rng.New(uint64(n)), n)
		b.Run(fmt.Sprintf("runner=seq/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seb.Incremental(pts)
			}
		})
		b.Run(fmt.Sprintf("runner=batched/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st := seb.ParIncremental(pts)
				if i == 0 {
					b.ReportMetric(float64(st.InDiskTests)/float64(n), "tests/n")
					b.ReportMetric(float64(st.MaxProbe), "maxprobe")
				}
			}
		})
	}
}

func BenchmarkType2LP(b *testing.B) {
	for _, n := range type2BenchSizes {
		r := rng.New(uint64(n))
		cons := lp.TangentConstraints(r, n)
		cx, cy := lp.RandomObjective(r)
		b.Run(fmt.Sprintf("runner=seq/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lp.Solve(cons, cx, cy)
			}
		})
		b.Run(fmt.Sprintf("runner=batched/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st := lp.ParSolve(cons, cx, cy)
				if i == 0 {
					b.ReportMetric(float64(st.SideTests)/float64(n), "tests/n")
					b.ReportMetric(float64(st.MaxProbe), "maxprobe")
				}
			}
		})
	}
}

// BenchmarkType2Runner isolates the framework itself with O(1) hooks: the
// probe fan-out and reservation are the entire cost, so this is the purest
// view of the batched schedule's scaling. Specials arrive at the paper's
// ~c/k rate via a hash of the committed-special signature.
func BenchmarkType2Runner(b *testing.B) {
	mixb := func(x uint64) uint64 {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
	n := 1 << 20
	run := func(b *testing.B, runner func(int, core.Type2Hooks) core.Type2Stats, once bool) {
		var checks int64
		for i := 0; i < b.N; i++ {
			var sig atomic.Uint64
			sig.Store(mixb(12345))
			st := runner(n, core.Type2Hooks{
				SpecialOnce: once,
				RunFirst:    func() {},
				IsSpecial: func(k int) bool {
					return mixb(sig.Load()^mixb(uint64(k)+1))%uint64(k+1) < 2
				},
				RunRegular: func(lo, hi int) {},
				RunSpecial: func(k int) { sig.Store(mixb(sig.Load() ^ uint64(k))) },
			})
			checks = st.Checks
		}
		b.ReportMetric(float64(checks)/float64(n), "checks/n")
	}
	b.Run(fmt.Sprintf("runner=seq/n=%d", n), func(b *testing.B) { run(b, core.RunType2Seq, false) })
	b.Run(fmt.Sprintf("runner=batched/n=%d", n), func(b *testing.B) { run(b, core.RunType2, true) })
}

// --- Ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblationGrain sweeps the parallel-for grain: too small pays
// scheduling overhead, too large loses load balance.
func BenchmarkAblationGrain(b *testing.B) {
	n := 1 << 20
	xs := make([]float64, n)
	for _, grain := range []int{64, 512, 4096, 65536} {
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parallel.ForGrain(0, n, grain, func(j int) {
					xs[j] = float64(j) * 1.0000001
				})
			}
		})
	}
}

// BenchmarkAblationShards sweeps the concurrent hash map shard count under
// a write-heavy mixed workload.
func BenchmarkAblationShards(b *testing.B) {
	const ops = 1 << 16
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := hashtable.New[int, int](shards, ops, func(k int) uint64 {
					return hashtable.Mix64(uint64(k))
				})
				parallel.For(0, ops, func(j int) {
					m.Update(j%1024, func(old int, _ bool) int { return old + 1 })
				})
			}
		})
	}
}

// BenchmarkAblationPredicates compares the float fast path against the
// exact fallback rate on benign vs adversarial (near-cocircular) inputs.
func BenchmarkAblationPredicates(b *testing.B) {
	r := rng.New(11)
	benign := geom.UniformSquare(r, 4096)
	adversarial := geom.OnCircle(r, 4096, 1e-12)
	run := func(b *testing.B, pts []geom.Point) {
		var st geom.PredicateStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j+3 < len(pts); j += 4 {
				geom.InCircleStats(pts[j], pts[j+1], pts[j+2], pts[j+3], &st)
			}
		}
		if st.InCircleCalls > 0 {
			b.ReportMetric(float64(st.InCircleExact)/float64(st.InCircleCalls), "exact-rate")
		}
	}
	b.Run("benign", func(b *testing.B) { run(b, benign) })
	b.Run("cocircular", func(b *testing.B) { run(b, adversarial) })
}

// BenchmarkAblationSCCCombine quantifies the price of the eager round
// schedule: parallel reach work divided by sequential reach work (the
// paper: a constant factor in expectation).
func BenchmarkAblationSCCCombine(b *testing.B) {
	n := 1 << 12
	g := graph.GnmDirected(rng.New(3), n, 4*n, false)
	_, seqSt := scc.Sequential(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, parSt := scc.Parallel(g)
		if i == 0 {
			b.ReportMetric(float64(parSt.ReachWork)/float64(seqSt.ReachWork), "work-ratio")
		}
	}
}

// BenchmarkAblationSemisort compares the sharded semisort against a
// comparison sort for the group-by step of the Type 3 combines.
func BenchmarkAblationSemisort(b *testing.B) {
	n := 1 << 18
	r := rng.New(13)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(r.Intn(n / 8))
	}
	b.Run("semisort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortutil.Semisort(n, func(j int) uint64 { return keys[j] })
		}
	})
	b.Run("comparison-sort", func(b *testing.B) {
		idx := make([]int, n)
		for i := 0; i < b.N; i++ {
			for j := range idx {
				idx[j] = j
			}
			sortutil.Sort(idx, func(a, c int) bool { return keys[a] < keys[c] })
		}
	})
}

// BenchmarkHighDim exercises the d-dimensional extensions (Section 5's
// closing remarks): LP, closest pair, and smallest enclosing ball in R^3.
func BenchmarkHighDim(b *testing.B) {
	n := 1 << 12
	r := rng.New(19)
	b.Run("lp-d3", func(b *testing.B) {
		cons := lp.SphereTangentD(r, func() float64 { return 0.1 * r.Float64() }, n, 3)
		obj := []float64{0.3, -0.5, 0.81}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lp.SolveD(cons, obj)
		}
	})
	b.Run("closestpair-d3", func(b *testing.B) {
		pts := make([]closestpair.PointD, n)
		for i := range pts {
			pts[i] = closestpair.PointD{r.Float64(), r.Float64(), r.Float64()}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			closestpair.IncrementalD(pts)
		}
	})
	b.Run("seb-d3", func(b *testing.B) {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seb.IncrementalD(pts)
		}
	})
}

// BenchmarkShuffle compares the sequential and parallel random
// permutations (the framework's precursor algorithm).
func BenchmarkShuffle(b *testing.B) {
	n := 1 << 18
	h := rng.SwapTargets(rng.New(17), n)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng.SeqShuffleWithTargets(h)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng.ParShuffleWithTargets(h)
		}
	})
}

// Package repro is a from-scratch Go reproduction of "Parallelism in
// Randomized Incremental Algorithms" (Blelloch, Gu, Shun, Sun; SPAA 2016).
//
// The library lives under internal/: the framework (internal/core), the
// seven algorithms (bstsort, delaunay, lp, closestpair, seb, lelists, scc),
// their substrates (parallel, rng, geom, graph, hashtable, sortutil,
// depgraph), and the experiment harness (experiments). The cmd/ridt binary
// regenerates the paper's Table 1 and theorem-level claims; runnable
// examples are under examples/. The benchmarks in bench_test.go cover every
// table row plus the design ablations listed in DESIGN.md.
package repro

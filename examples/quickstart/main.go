// Quickstart: a sixty-second tour of the library. Sorts random keys with
// the parallel incremental BST, finds the closest pair of a random point
// set, and computes its smallest enclosing disk — each with the paper's
// parallel algorithm, cross-checked against the sequential one.
//
//	go run ./examples/quickstart [-n 100000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bstsort"
	"repro/internal/closestpair"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/seb"
)

func main() {
	n := flag.Int("n", 100000, "input size")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	run(*n, *seed, os.Stdout)
}

// run is the testable example body; the smoke test drives it with a tiny n.
// It panics if any parallel result disagrees with its sequential check.
func run(n int, seed uint64, w io.Writer) {
	r := rng.New(seed)

	fmt.Fprintf(w, "quickstart: n=%d seed=%d\n\n", n, seed)

	// 1. Sorting by parallel incremental BST insertion (Section 3).
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = r.Float64()
	}
	start := time.Now()
	tree, st := bstsort.ParInsert(keys)
	sorted := tree.InOrder()
	fmt.Fprintf(w, "sort:         %d keys in %v (dependence depth %d rounds, %d comparisons)\n",
		len(sorted), time.Since(start).Round(time.Microsecond), st.Rounds, st.Comparisons)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			panic("not sorted")
		}
	}

	// 2. Closest pair with the incremental grid (Section 5.2).
	pts := geom.Dedup(geom.UniformSquare(r, n))
	start = time.Now()
	cp, cpSt := closestpair.ParIncremental(pts)
	fmt.Fprintf(w, "closest pair: (%d, %d) at distance %.3g in %v (%d grid rebuilds)\n",
		cp.I, cp.J, cp.Dist, time.Since(start).Round(time.Microsecond), cpSt.Special)
	seqCP, _ := closestpair.Incremental(pts)
	if seqCP != cp {
		panic("parallel closest pair differs from sequential")
	}

	// 3. Smallest enclosing disk (Section 5.3).
	start = time.Now()
	disk, sebSt := seb.ParIncremental(pts)
	fmt.Fprintf(w, "enclosing disk: center (%.4f, %.4f) radius %.4f in %v (%d special iterations)\n",
		disk.Center.X, disk.Center.Y, disk.Radius(),
		time.Since(start).Round(time.Microsecond), sebSt.Special)
	for _, p := range pts {
		if !disk.Contains(p) {
			panic("disk does not contain all points")
		}
	}
	fmt.Fprintln(w, "\nall parallel results verified against sequential/bounds ✓")
}

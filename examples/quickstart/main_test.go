package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the example end to end at a tiny size; the internal
// cross-checks panic on any parallel/sequential disagreement.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	run(500, 1, &out)
	if !strings.Contains(out.String(), "all parallel results verified") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke triangulates both workloads at a tiny size.
func TestRunSmoke(t *testing.T) {
	for _, workload := range []string{"grid", "uniform"} {
		var out bytes.Buffer
		run(400, 1, workload, &out)
		s := out.String()
		if !strings.Contains(s, "final triangles:") || !strings.Contains(s, "worst angle:") {
			t.Fatalf("workload %s: incomplete output:\n%s", workload, s)
		}
	}
}

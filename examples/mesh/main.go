// Mesh generation with parallel incremental Delaunay triangulation — the
// application that motivates Section 4 of the paper (most practical
// parallel Delaunay implementations are incremental).
//
// Triangulates a jittered-grid point set (a typical meshing input) and a
// uniform point set, reports the triangle counts, dependence depth,
// InCircle statistics against the Theorem 4.5 bound, and a mesh-quality
// summary (minimum-angle histogram) for the interior triangles.
//
//	go run ./examples/mesh [-n 20000] [-seed 1] [-workload grid|uniform]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rng"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	seed := flag.Uint64("seed", 1, "random seed")
	workload := flag.String("workload", "grid", "point distribution: grid or uniform")
	flag.Parse()
	run(*n, *seed, *workload, os.Stdout)
}

// run is the testable example body; the smoke test drives both workloads
// at a tiny n.
func run(n int, seed uint64, workload string, w io.Writer) {
	r := rng.New(seed)

	var pts []geom.Point
	switch workload {
	case "grid":
		pts = geom.GridJitter(r, n, 0.6)
	case "uniform":
		pts = geom.UniformSquare(r, n)
	default:
		panic("unknown workload " + workload)
	}
	pts = geom.Dedup(pts)
	// Insertion order must be random for the probabilistic guarantees.
	perm := r.Perm(len(pts))
	shuffled := make([]geom.Point, len(pts))
	for i, p := range perm {
		shuffled[i] = pts[p]
	}

	fmt.Fprintf(w, "mesh: workload=%s n=%d seed=%d\n\n", workload, len(pts), seed)

	start := time.Now()
	mesh := delaunay.ParTriangulate(shuffled)
	elapsed := time.Since(start)
	inner := mesh.InnerTriangles()
	nlogn := float64(len(pts)) * math.Log(float64(len(pts)))

	fmt.Fprintf(w, "triangulated in %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  final triangles: %d (%d interior)\n", len(mesh.Triangles), len(inner))
	fmt.Fprintf(w, "  triangles created (incl. transient): %d\n", mesh.Stats.TrianglesCreated)
	fmt.Fprintf(w, "  InCircle tests: %d = %.1f n ln n   (Theorem 4.5 bound: 24 n ln n)\n",
		mesh.Stats.InCircleTests, float64(mesh.Stats.InCircleTests)/nlogn)
	fmt.Fprintf(w, "  dependence depth: %d rounds = %.1f log2(n)   (Theorem 4.3: O(log n))\n",
		mesh.Stats.DepDepth, float64(mesh.Stats.DepDepth)/math.Log2(float64(len(pts))))

	// Mesh quality: minimum angle per interior triangle.
	var hist [8]int // 0-7.5, ..., 52.5-60 degrees
	worst := 90.0
	for _, t := range inner {
		a := minAngle(mesh.Points[t.V[0]], mesh.Points[t.V[1]], mesh.Points[t.V[2]])
		if a < worst {
			worst = a
		}
		b := int(a / 7.5)
		if b > 7 {
			b = 7
		}
		hist[b]++
	}
	fmt.Fprintf(w, "\nmesh quality (min angle per interior triangle, degrees):\n")
	for b, c := range hist {
		fmt.Fprintf(w, "  %4.1f-%4.1f: %6d %s\n", float64(b)*7.5, float64(b+1)*7.5, c,
			bar(c, len(inner)))
	}
	fmt.Fprintf(w, "  worst angle: %.2f°\n", worst)
}

func minAngle(a, b, c geom.Point) float64 {
	ang := func(p, q, r geom.Point) float64 {
		v1 := q.Sub(p)
		v2 := r.Sub(p)
		cos := v1.Dot(v2) / math.Sqrt(v1.Dot(v1)*v2.Dot(v2))
		return math.Acos(math.Max(-1, math.Min(1, cos))) * 180 / math.Pi
	}
	return math.Min(ang(a, b, c), math.Min(ang(b, c, a), ang(c, a, b)))
}

func bar(c, total int) string {
	w := 50 * c / max(total, 1)
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Geometric optimization with the Type 2 algorithms — Section 5's linear
// programming and smallest enclosing disk on a facility-placement story:
// find the cheapest feasible operating point under random market
// constraints (2D LP), then site a service hub covering all customers with
// the smallest disk, and locate the two closest customers (closest pair).
//
//	go run ./examples/geometry [-n 50000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/closestpair"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/rng"
	"repro/internal/seb"
)

func main() {
	n := flag.Int("n", 50000, "constraints / customers")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	run(*n, *seed, os.Stdout)
}

// run is the testable example body; the smoke test drives it with a tiny n.
// It panics if any result fails its cross-check.
func run(n int, seed uint64, w io.Writer) {
	r := rng.New(seed)

	fmt.Fprintf(w, "geometry pipeline: n=%d seed=%d\n\n", n, seed)

	// --- 2D linear programming -------------------------------------------
	cons := lp.TangentConstraints(r, n)
	cx, cy := lp.RandomObjective(r)
	start := time.Now()
	res, st := lp.ParSolve(cons, cx, cy)
	fmt.Fprintf(w, "LP (%d constraints): ", n)
	if !res.Feasible {
		fmt.Fprintln(w, "infeasible")
	} else {
		fmt.Fprintf(w, "optimum (%.5f, %.5f) value %.5f\n", res.X, res.Y, res.Value)
	}
	fmt.Fprintf(w, "  %v, %d tight (special) constraints, %d sub-rounds, %d work units\n",
		time.Since(start).Round(time.Microsecond), st.Special, st.SubRounds,
		st.SideTests+st.OneDimWork)
	seqRes, _ := lp.Solve(cons, cx, cy)
	if seqRes.Feasible != res.Feasible {
		panic("parallel LP disagrees with sequential")
	}

	// An infeasible market for contrast.
	bad := lp.InfeasibleConstraints(r, n)
	if res2, _ := lp.ParSolve(bad, cx, cy); res2.Feasible {
		panic("infeasible program reported feasible")
	}
	fmt.Fprintf(w, "  infeasible variant correctly rejected\n\n")

	// --- Smallest enclosing disk ------------------------------------------
	customers := geom.Dedup(geom.GaussianCluster(r, n, 12, 0.05))
	start = time.Now()
	disk, sebSt := seb.ParIncremental(customers)
	fmt.Fprintf(w, "service hub for %d customers: center (%.4f, %.4f), radius %.4f\n",
		len(customers), disk.Center.X, disk.Center.Y, disk.Radius())
	fmt.Fprintf(w, "  %v, %d special iterations, %d in-disk tests (%.1f per customer)\n",
		time.Since(start).Round(time.Microsecond), sebSt.Special, sebSt.InDiskTests,
		float64(sebSt.InDiskTests)/float64(len(customers)))

	// --- Closest pair -------------------------------------------------------
	start = time.Now()
	pair, cpSt := closestpair.ParIncremental(customers)
	fmt.Fprintf(w, "closest customers: %d and %d at distance %.6f\n", pair.I, pair.J, pair.Dist)
	fmt.Fprintf(w, "  %v, %d grid rebuilds, %.1f distance checks per customer\n",
		time.Since(start).Round(time.Microsecond), cpSt.Special,
		float64(cpSt.DistChecks)/float64(len(customers)))

	if dc := closestpair.DivideAndConquer(customers); dc.Dist != pair.Dist {
		panic("closest pair disagrees with divide and conquer")
	}
	fmt.Fprintln(w, "\nall results cross-checked ✓")
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the geometry pipeline end to end at a tiny size; the
// internal cross-checks panic on any disagreement.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	run(500, 1, &out)
	if !strings.Contains(out.String(), "all results cross-checked") {
		t.Fatalf("missing cross-check line:\n%s", out.String())
	}
}

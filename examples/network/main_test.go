package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke builds LE-lists on a small grid and SCCs on a small web
// graph; run panics if the parallel SCC disagrees with Tarjan.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	run(8, 500, 1, &out)
	if !strings.Contains(out.String(), "parallel SCC verified against Tarjan") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
}

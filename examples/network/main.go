// Network analysis with the Type 3 graph algorithms — the applications that
// motivate Section 6 of the paper: LE-lists for distance sketches and
// neighborhood estimation (Cohen), and parallel SCC decomposition
// (Coppersmith et al., the algorithm behind most practical parallel SCC
// implementations).
//
// Builds a weighted road-like grid and an unweighted power-law digraph,
// then:
//
//   - constructs LE-lists over the grid and uses them as a landmark
//     distance sketch: "closest of the first k landmarks" queries are
//     answered from the O(log n)-size lists without touching the graph;
//
//   - decomposes the power-law graph into SCCs in O(log n) reachability
//     rounds and reports the component-size profile.
//
//     go run ./examples/network [-side 60] [-n 30000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/lelists"
	"repro/internal/rng"
	"repro/internal/scc"
)

func main() {
	side := flag.Int("side", 60, "grid side for the road network")
	n := flag.Int("n", 30000, "vertices of the power-law web graph")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	run(*side, *n, *seed, os.Stdout)
}

// run is the testable example body; the smoke test drives it with a tiny
// grid and web graph. It panics if the parallel SCC disagrees with Tarjan.
func run(side, n int, seed uint64, w io.Writer) {
	r := rng.New(seed)

	// --- LE-lists on a road-like weighted grid ---------------------------
	// Grid ids are row-major, which is not a random priority order; the
	// paper's bounds require one, so relabel with a random permutation.
	g, _ := graph.RandomRelabel(graph.Grid2D(side, side, true, r), r)
	nv := g.N
	fmt.Fprintf(w, "road network: %d vertices, %d edges (weighted grid, randomized priorities)\n", nv, g.M())

	start := time.Now()
	lists, st := lelists.Parallel(g)
	fmt.Fprintf(w, "LE-lists built in %v: %d rounds, %d search work, max %d visits/vertex (ln n = %.1f)\n",
		time.Since(start).Round(time.Millisecond), st.Rounds, st.SearchWork,
		st.MaxPerVert, math.Log(float64(nv)))

	totalLen := 0
	for _, l := range lists {
		totalLen += len(l)
	}
	fmt.Fprintf(w, "average list length: %.2f (theory: ~ln n whp)\n\n", float64(totalLen)/float64(nv))

	// Landmark sketch queries: after the random relabeling, the first k
	// vertices are a uniform random landmark set. L(u) answers "which of
	// the first k landmarks is closest to u, and how far?" by scanning the
	// O(log n) list instead of the graph.
	fmt.Fprintln(w, "landmark queries from the sketch (vertex -> closest of first k landmarks):")
	for _, k := range []int{1, 16, 256, nv} {
		u := nv / 2
		lm, dist := closestLandmark(lists[u], k)
		fmt.Fprintf(w, "  u=%d k=%-6d -> landmark %-6d dist %.2f\n", u, k, lm, dist)
	}

	// --- SCC on a power-law web graph ------------------------------------
	web := graph.PowerLawDirected(r, n, 4)
	fmt.Fprintf(w, "\nweb graph: %d vertices, %d edges (power law)\n", web.N, web.M())
	start = time.Now()
	labels, sccSt := scc.Parallel(web)
	fmt.Fprintf(w, "SCC decomposition in %v: %d components, %d reachability rounds, %d edge scans\n",
		time.Since(start).Round(time.Millisecond), scc.CountSCCs(labels), sccSt.Rounds, sccSt.ReachWork)

	if want := scc.Tarjan(web); !scc.SamePartition(labels, want) {
		panic("parallel SCC disagrees with Tarjan")
	}
	sizes := map[int32]int{}
	for _, c := range labels {
		sizes[c]++
	}
	var sorted []int
	for _, s := range sizes {
		sorted = append(sorted, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	fmt.Fprintf(w, "largest components: ")
	for i := 0; i < len(sorted) && i < 5; i++ {
		fmt.Fprintf(w, "%d ", sorted[i])
	}
	singletons := 0
	for _, s := range sorted {
		if s == 1 {
			singletons++
		}
	}
	fmt.Fprintf(w, "...  (%d singletons)\n", singletons)
	fmt.Fprintln(w, "\nparallel SCC verified against Tarjan ✓")
}

// closestLandmark answers a sketch query: among vertices 0..k-1, the one
// closest to the list's owner, using only the LE-list. Entries are in
// increasing source order with strictly decreasing distances, so the answer
// is the last entry with source < k.
func closestLandmark(l []lelists.Entry, k int) (int32, float64) {
	best, dist := int32(-1), math.Inf(1)
	for _, e := range l {
		if int(e.V) >= k {
			break
		}
		best, dist = e.V, e.Dist
	}
	return best, dist
}

// Package closestpair implements Section 5.2 of the paper: the randomized
// incremental grid algorithm for the planar closest pair, its Type 2
// parallelization, and two non-incremental baselines (brute force and
// divide-and-conquer) for cross-checking and benchmarking.
//
// The incremental algorithm maintains a uniform grid with cell side r, the
// closest-pair distance among the inserted prefix. Inserting a point checks
// its 3x3 cell neighborhood (any point within distance < r lives there);
// if the minimum drops below r the iteration is special: r shrinks and the
// grid is rebuilt over the whole prefix. By backwards analysis the i-th
// iteration is special with probability at most 2/i, giving O(n) expected
// work and O(log n) dependence depth.
package closestpair

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Result identifies the closest pair and its distance.
type Result struct {
	I, J int // indices into the input, I < J
	Dist float64
}

// Stats reports the counters of an incremental run.
type Stats struct {
	Special    int   // grid rebuilds (special iterations)
	DistChecks int64 // point-to-point distance evaluations
	CellProbes int64 // grid cell lookups and insertions (the O(1)-per-point work term)
	Rounds     int   // prefix rounds of the parallel schedule
	SubRounds  int
}

func cellKey(qx, qy int64) uint64 {
	return uint64(uint32(int32(qx)))<<32 | uint64(uint32(int32(qy)))
}

func quantize(p geom.Point, r float64) (int64, int64) {
	return int64(math.Floor(p.X / r)), int64(math.Floor(p.Y / r))
}

// seqGrid is the single-threaded grid used by Incremental.
type seqGrid struct {
	r     float64
	cells map[uint64][]int32
}

func newSeqGrid(r float64, capacity int) *seqGrid {
	return &seqGrid{r: r, cells: make(map[uint64][]int32, capacity)}
}

func (g *seqGrid) insert(pts []geom.Point, i int32) {
	qx, qy := quantize(pts[i], g.r)
	k := cellKey(qx, qy)
	g.cells[k] = append(g.cells[k], i)
}

// nearest returns the minimum distance from pts[i] to earlier points in the
// 3x3 neighborhood, and the index achieving it (-1 when the neighborhood is
// empty). checks counts distance evaluations.
func (g *seqGrid) nearest(pts []geom.Point, i int32, checks *int64) (float64, int32) {
	qx, qy := quantize(pts[i], g.r)
	best, bestJ := math.Inf(1), int32(-1)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, j := range g.cells[cellKey(qx+dx, qy+dy)] {
				*checks++
				if d := geom.Dist(pts[i], pts[j]); d < best {
					best, bestJ = d, j
				}
			}
		}
	}
	return best, bestJ
}

// Incremental runs the sequential incremental algorithm over the points in
// slice order (pre-shuffled by the caller for the probabilistic bounds).
// It requires n >= 2 and distinct points.
func Incremental(pts []geom.Point) (Result, Stats) {
	var st Stats
	n := len(pts)
	if n < 2 {
		panic("closestpair: need at least two points")
	}
	res := Result{I: 0, J: 1, Dist: geom.Dist(pts[0], pts[1])}
	st.DistChecks++
	st.Special++ // iteration 1 defines r
	g := newSeqGrid(res.Dist, n)
	g.insert(pts, 0)
	g.insert(pts, 1)
	st.CellProbes += 2
	for i := 2; i < n; i++ {
		d, j := g.nearest(pts, int32(i), &st.DistChecks)
		st.CellProbes += 9
		if d < res.Dist {
			// Special iteration: r shrinks; rebuild the grid over [0, i].
			st.Special++
			res = Result{I: int(j), J: i, Dist: d}
			g = newSeqGrid(d, n)
			for k := 0; k <= i; k++ {
				g.insert(pts, int32(k))
			}
			st.CellProbes += int64(i + 1)
			continue
		}
		g.insert(pts, int32(i))
		st.CellProbes++
	}
	if res.I > res.J {
		res.I, res.J = res.J, res.I
	}
	return res, st
}

// BruteForce computes the closest pair in O(n^2). Test oracle.
func BruteForce(pts []geom.Point) Result {
	res := Result{I: -1, J: -1, Dist: math.Inf(1)}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := geom.Dist(pts[i], pts[j]); d < res.Dist {
				res = Result{I: i, J: j, Dist: d}
			}
		}
	}
	return res
}

// DivideAndConquer computes the closest pair with the classic O(n log n)
// strip algorithm: the deterministic baseline for the benchmarks.
func DivideAndConquer(pts []geom.Point) Result {
	n := len(pts)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	// A genuine comparison sort, not a dedup/group-by: the strip algorithm
	// needs total x-order, so neither sortutil.Dedup nor the Delaunay
	// round-stamp scheme applies here (and this is the sequential baseline
	// on purpose). The incremental paths use the grid hash and never sort.
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].X < pts[idx[b]].X })
	buf := make([]int32, n)
	res := Result{Dist: math.Inf(1)}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 3 {
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					if d := geom.Dist(pts[idx[i]], pts[idx[j]]); d < res.Dist {
						res = Result{I: int(idx[i]), J: int(idx[j]), Dist: d}
					}
				}
			}
			sort.Slice(idx[lo:hi], func(a, b int) bool {
				return pts[idx[lo+a]].Y < pts[idx[lo+b]].Y
			})
			return
		}
		mid := (lo + hi) / 2
		midX := pts[idx[mid]].X
		rec(lo, mid)
		rec(mid, hi)
		// Merge by y into buf.
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if pts[idx[i]].Y <= pts[idx[j]].Y {
				buf[k] = idx[i]
				i++
			} else {
				buf[k] = idx[j]
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = idx[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = idx[j]
			j++
			k++
		}
		copy(idx[lo:hi], buf[lo:hi])
		// Strip check.
		strip := buf[:0]
		for k := lo; k < hi; k++ {
			if math.Abs(pts[idx[k]].X-midX) < res.Dist {
				strip = append(strip, idx[k])
			}
		}
		for a := 0; a < len(strip); a++ {
			for b := a + 1; b < len(strip) && pts[strip[b]].Y-pts[strip[a]].Y < res.Dist; b++ {
				if d := geom.Dist(pts[strip[a]], pts[strip[b]]); d < res.Dist {
					res = Result{I: int(strip[a]), J: int(strip[b]), Dist: d}
				}
			}
		}
	}
	rec(0, n)
	if res.I > res.J {
		res.I, res.J = res.J, res.I
	}
	return res
}

package closestpair

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func uniqPoints(seed uint64, n int) []geom.Point {
	return geom.Dedup(geom.UniformSquare(rng.New(seed), n))
}

func TestIncrementalMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		pts := uniqPoints(uint64(trial)+1, 2+trial*7)
		want := BruteForce(pts)
		got, _ := Incremental(pts)
		if math.Abs(got.Dist-want.Dist) > 1e-12 {
			t.Fatalf("trial %d: dist %g want %g", trial, got.Dist, want.Dist)
		}
		if got.I != want.I || got.J != want.J {
			t.Fatalf("trial %d: pair (%d,%d) want (%d,%d)", trial, got.I, got.J, want.I, want.J)
		}
	}
}

func TestParIncrementalMatchesSequential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		pts := uniqPoints(uint64(trial)*31+7, 2+trial*29)
		seq, seqSt := Incremental(pts)
		par, parSt := ParIncremental(pts)
		if seq.I != par.I || seq.J != par.J || math.Abs(seq.Dist-par.Dist) > 1e-15 {
			t.Fatalf("trial %d: seq (%d,%d,%g) par (%d,%d,%g)",
				trial, seq.I, seq.J, seq.Dist, par.I, par.J, par.Dist)
		}
		if seqSt.Special != parSt.Special {
			t.Fatalf("trial %d: special seq=%d par=%d", trial, seqSt.Special, parSt.Special)
		}
	}
}

func TestDivideAndConquerMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		pts := uniqPoints(uint64(trial)*13+3, 2+trial*11)
		want := BruteForce(pts)
		got := DivideAndConquer(pts)
		if math.Abs(got.Dist-want.Dist) > 1e-12 {
			t.Fatalf("trial %d: dist %g want %g", trial, got.Dist, want.Dist)
		}
	}
}

func TestClusteredWorkload(t *testing.T) {
	r := rng.New(99)
	pts := geom.Dedup(geom.GaussianCluster(r, 2000, 10, 0.01))
	seq, _ := Incremental(pts)
	par, _ := ParIncremental(pts)
	dc := DivideAndConquer(pts)
	if seq.Dist != par.Dist || math.Abs(seq.Dist-dc.Dist) > 1e-12 {
		t.Fatalf("clustered: seq=%g par=%g dc=%g", seq.Dist, par.Dist, dc.Dist)
	}
}

func TestTwoPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}
	res, _ := ParIncremental(pts)
	if res.Dist != 5 || res.I != 0 || res.J != 1 {
		t.Fatalf("got %+v", res)
	}
}

func TestLinearWork(t *testing.T) {
	// Theorem 5.2: O(n) expected work. Distance checks should stay a small
	// multiple of n (each insertion checks at most a constant number of
	// points: grid cells hold <= 4 points each).
	for _, n := range []int{1000, 8000, 32000} {
		pts := uniqPoints(uint64(n), n)
		_, st := Incremental(pts)
		if st.DistChecks > int64(40*n) {
			t.Fatalf("n=%d: %d distance checks is superlinear", n, st.DistChecks)
		}
	}
}

func TestSpecialLogarithmic(t *testing.T) {
	n := 8192
	trials := 10
	total := 0
	for trial := 0; trial < trials; trial++ {
		pts := uniqPoints(uint64(trial)*1009+5, n)
		_, st := Incremental(pts)
		total += st.Special
	}
	avg := float64(total) / float64(trials)
	if bound := 2*math.Log(float64(n)) + 4; avg > bound {
		t.Fatalf("avg rebuilds %.2f exceeds 2 ln n + 4 = %.2f", avg, bound)
	}
}

func TestQuickAgainstBruteForce(t *testing.T) {
	// Property: for any small point set (from quick's generator), the
	// incremental result equals brute force.
	f := func(raw []struct{ X, Y int16 }) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]geom.Point, 0, len(raw))
		for _, q := range raw {
			pts = append(pts, geom.Point{X: float64(q.X), Y: float64(q.Y)})
		}
		pts = geom.Dedup(pts)
		if len(pts) < 2 {
			return true
		}
		got, _ := Incremental(pts)
		want := BruteForce(pts)
		return math.Abs(got.Dist-want.Dist) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridCellOccupancy(t *testing.T) {
	// Invariant: every grid cell holds at most 4 points (pairwise distances
	// within the inserted prefix are >= r, the cell side).
	pts := uniqPoints(123, 5000)
	res, _ := Incremental(pts)
	g := newSeqGrid(res.Dist, len(pts))
	var checks int64
	_ = checks
	for i := range pts {
		g.insert(pts, int32(i))
	}
	for _, cell := range g.cells {
		if len(cell) > 4 {
			t.Fatalf("cell with %d points violates the occupancy invariant", len(cell))
		}
	}
}

package closestpair

import (
	"math"

	"repro/internal/hashtable"
	"repro/internal/parallel"
)

// This file implements the d-dimensional extension the paper notes for
// Section 5.2: the incremental grid algorithm generalizes to R^d with
// O(c_d n) expected work (c_d from the 3^d neighborhood) and the same
// O(log n) special-iteration structure.

// PointD is a point in R^d.
type PointD []float64

// DistD returns the Euclidean distance between p and q.
func DistD(p, q PointD) float64 {
	s := 0.0
	for i := range p {
		diff := p[i] - q[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// cellKeyD hashes the quantized coordinates of p at cell side r.
func cellKeyD(p PointD, r float64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, x := range p {
		q := uint64(int64(math.Floor(x / r)))
		h = hashtable.Mix64(h ^ q)
	}
	return h
}

// neighborKeysD returns the hashes of the 3^d neighborhood cells of p.
func neighborKeysD(p PointD, r float64, buf []uint64) []uint64 {
	d := len(p)
	buf = buf[:0]
	offs := make([]int, d)
	for i := range offs {
		offs[i] = -1
	}
	q := make(PointD, d)
	for {
		for i := range q {
			q[i] = p[i] + float64(offs[i])*r
		}
		buf = append(buf, cellKeyD(q, r))
		// Increment the mixed-radix counter over {-1,0,1}^d.
		i := 0
		for ; i < d; i++ {
			offs[i]++
			if offs[i] <= 1 {
				break
			}
			offs[i] = -1
		}
		if i == d {
			return buf
		}
	}
}

// gridD is the d-dimensional concurrent grid. Hash collisions between
// distinct cells are tolerated: a colliding cell only adds candidates to
// scan, never hides one, because the owning cell of any point within
// distance < r is among the 3^d neighbors and hashing is deterministic.
type gridD struct {
	r     float64
	cells *hashtable.LockFree[uint64, []int32]
}

func newGridD(r float64, capacity int) *gridD {
	// cellKeyD is already FNV-mixed, and the lock-free table applies its
	// own finalizing mix, so the identity hasher is safe here.
	return &gridD{r: r, cells: hashtable.NewLockFree[uint64, []int32](capacity,
		func(k uint64) uint64 { return k })}
}

func (g *gridD) insert(pts []PointD, i int32) {
	// Copy-on-write append, as the lock-free Update contract requires.
	g.cells.Update(cellKeyD(pts[i], g.r), func(old []int32, _ bool) []int32 {
		return appendCell(old, i)
	})
}

func (g *gridD) nearestBefore(pts []PointD, i int32, buf []uint64, checks *int64) (float64, int32, []uint64) {
	buf = neighborKeysD(pts[i], g.r, buf)
	best, bestJ := math.Inf(1), int32(-1)
	for _, k := range buf {
		cell, _ := g.cells.Load(k)
		for _, j := range cell {
			if j >= i {
				continue
			}
			*checks++
			if d := DistD(pts[i], pts[j]); d < best {
				best, bestJ = d, j
			}
		}
	}
	return best, bestJ, buf
}

// IncrementalD runs the sequential incremental algorithm in R^d over
// pre-shuffled, distinct points (n >= 2, uniform dimension).
func IncrementalD(pts []PointD) (Result, Stats) {
	n := len(pts)
	if n < 2 {
		panic("closestpair: need at least two points")
	}
	var st Stats
	res := Result{I: 0, J: 1, Dist: DistD(pts[0], pts[1])}
	st.DistChecks++
	st.Special++
	g := newGridD(res.Dist, n)
	g.insert(pts, 0)
	g.insert(pts, 1)
	var buf []uint64
	for i := 2; i < n; i++ {
		var d float64
		var j int32
		d, j, buf = g.nearestBefore(pts, int32(i), buf, &st.DistChecks)
		if d < res.Dist {
			st.Special++
			res = Result{I: int(j), J: i, Dist: d}
			g = newGridD(d, n)
			for k := 0; k <= i; k++ {
				g.insert(pts, int32(k))
			}
			continue
		}
		g.insert(pts, int32(i))
	}
	if res.I > res.J {
		res.I, res.J = res.J, res.I
	}
	return res, st
}

// ParIncrementalD is the Type 2 parallel version in R^d, structured exactly
// like ParIncremental: bulk-insert the prefix, check every point against
// smaller-indexed neighbors, carve at the earliest special iteration.
func ParIncrementalD(pts []PointD) (Result, Stats) {
	n := len(pts)
	if n < 2 {
		panic("closestpair: need at least two points")
	}
	var st Stats
	res := Result{I: 0, J: 1, Dist: DistD(pts[0], pts[1])}
	st.DistChecks++
	st.Special++
	g := newGridD(res.Dist, n)
	g.insert(pts, 0)
	g.insert(pts, 1)

	rebuild := func(upto int) {
		g = newGridD(res.Dist, n)
		// Inserts are cheap and uniform: grain 128 (see parallel.go — claim
		// traffic is lane-local on the stealing pool).
		parallel.ForGrain(0, upto+1, 128, func(k int) { g.insert(pts, int32(k)) })
	}

	j := 2
	for hi := 4; j < n; hi *= 2 {
		if hi > n {
			hi = n
		}
		st.Rounds++
		for j < hi {
			st.SubRounds++
			parallel.ForGrain(j, hi, 128, func(k int) { g.insert(pts, int32(k)) })
			dist := make([]float64, hi-j)
			arg := make([]int32, hi-j)
			checks := make([]int64, hi-j)
			// Probe counts are skewed by local density (see parallel.go).
			parallel.ForGrain(j, hi, 32, func(k int) {
				d, a, _ := g.nearestBefore(pts, int32(k), nil, &checks[k-j])
				dist[k-j], arg[k-j] = d, a
			})
			st.DistChecks += parallel.Sum(checks)
			l, ok := parallel.ReduceMinIndex(j, hi, 0,
				func(k int) bool { return dist[k-j] < res.Dist })
			if !ok {
				j = hi
				break
			}
			st.Special++
			res = Result{I: int(arg[l-j]), J: l, Dist: dist[l-j]}
			rebuild(l)
			j = l + 1
		}
	}
	if res.I > res.J {
		res.I, res.J = res.J, res.I
	}
	return res, st
}

// BruteForceD computes the closest pair in R^d in O(n²·d). Test oracle.
func BruteForceD(pts []PointD) Result {
	res := Result{I: -1, J: -1, Dist: math.Inf(1)}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := DistD(pts[i], pts[j]); d < res.Dist {
				res = Result{I: i, J: j, Dist: d}
			}
		}
	}
	return res
}

package closestpair

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randPointsD(seed uint64, n, d int) []PointD {
	r := rng.New(seed)
	pts := make([]PointD, n)
	for i := range pts {
		p := make(PointD, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestIncrementalDMatchesBruteForce(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		for trial := 0; trial < 8; trial++ {
			n := 2 + trial*40
			pts := randPointsD(uint64(d*100+trial), n, d)
			want := BruteForceD(pts)
			got, _ := IncrementalD(pts)
			if math.Abs(got.Dist-want.Dist) > 1e-12 {
				t.Fatalf("d=%d trial=%d: dist %g want %g", d, trial, got.Dist, want.Dist)
			}
			if got.I != want.I || got.J != want.J {
				t.Fatalf("d=%d trial=%d: pair (%d,%d) want (%d,%d)",
					d, trial, got.I, got.J, want.I, want.J)
			}
		}
	}
}

func TestParIncrementalDMatchesSequential(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		for trial := 0; trial < 6; trial++ {
			n := 2 + trial*150
			pts := randPointsD(uint64(d*1000+trial), n, d)
			seq, seqSt := IncrementalD(pts)
			par, parSt := ParIncrementalD(pts)
			if seq != par {
				t.Fatalf("d=%d trial=%d: seq %+v par %+v", d, trial, seq, par)
			}
			if seqSt.Special != parSt.Special {
				t.Fatalf("d=%d trial=%d: special seq=%d par=%d", d, trial, seqSt.Special, parSt.Special)
			}
		}
	}
}

func TestIncrementalDMatches2D(t *testing.T) {
	// The d-dimensional implementation at d=2 must agree with the planar
	// specialization on identical inputs.
	pts2 := uniqPoints(77, 500)
	ptsD := make([]PointD, len(pts2))
	for i, p := range pts2 {
		ptsD[i] = PointD{p.X, p.Y}
	}
	want, _ := Incremental(pts2)
	got, _ := IncrementalD(ptsD)
	if math.Abs(got.Dist-want.Dist) > 1e-15 || got.I != want.I || got.J != want.J {
		t.Fatalf("2D cross-check: %+v vs %+v", got, want)
	}
}

func TestIncrementalDWorkGrowsWithDimension(t *testing.T) {
	// Work is O(c_d n) with c_d growing in d but still linear in n.
	n := 4000
	for _, d := range []int{2, 3, 4} {
		pts := randPointsD(uint64(d), n, d)
		_, st := IncrementalD(pts)
		limit := int64(n) * int64(40*(1<<d)) // generous c_d envelope
		if st.DistChecks > limit {
			t.Fatalf("d=%d: %d checks exceed linear envelope %d", d, st.DistChecks, limit)
		}
	}
}

func TestHighDimDegenerateLine(t *testing.T) {
	// Points on a line embedded in R^3.
	n := 200
	pts := make([]PointD, n)
	r := rng.New(5)
	for i := range pts {
		x := r.Float64() * 100
		pts[i] = PointD{x, 2 * x, -x}
	}
	want := BruteForceD(pts)
	got, _ := ParIncrementalD(pts)
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("line in R^3: %g want %g", got.Dist, want.Dist)
	}
}

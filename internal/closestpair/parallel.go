package closestpair

import (
	"math"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/hashtable"
	"repro/internal/parallel"
)

// parGrid is the concurrent grid used by ParIncremental: cells live in a
// lock-free hash table so whole prefixes can be inserted in parallel and
// checked concurrently.
type parGrid struct {
	r     float64
	cells *hashtable.LockFree[uint64, []int32]
}

func newParGrid(r float64, capacity int) *parGrid {
	// Identity hasher: the lock-free table applies its own finalizing
	// Mix64 to spread the packed cell coordinates.
	return &parGrid{
		r: r,
		cells: hashtable.NewLockFree[uint64, []int32](capacity,
			func(k uint64) uint64 { return k }),
	}
}

func (g *parGrid) insert(pts []geom.Point, i int32) {
	qx, qy := quantize(pts[i], g.r)
	// Copy-on-write append: the lock-free Update retries on CAS races, so
	// the function must not mutate the old slice in place (appendCell).
	g.cells.Update(cellKey(qx, qy), func(old []int32, _ bool) []int32 {
		return appendCell(old, i)
	})
}

// appendCell returns a fresh slice with i appended, leaving old untouched.
// Cells hold O(1) points in expectation, so the copy is constant work.
func appendCell(old []int32, i int32) []int32 {
	ns := make([]int32, len(old)+1)
	copy(ns, old)
	ns[len(old)] = i
	return ns
}

// nearestBefore returns the minimum distance from pts[i] to 3x3-neighborhood
// points with index strictly less than i, and the argmin (-1 if none).
func (g *parGrid) nearestBefore(pts []geom.Point, i int32, checks *int64) (float64, int32) {
	qx, qy := quantize(pts[i], g.r)
	best, bestJ := math.Inf(1), int32(-1)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			cell, _ := g.cells.Load(cellKey(qx+dx, qy+dy))
			for _, j := range cell {
				if j >= i {
					continue
				}
				*checks++
				if d := geom.Dist(pts[i], pts[j]); d < best {
					best, bestJ = d, j
				}
			}
		}
	}
	return best, bestJ
}

// ParIncremental runs the Type 2 parallel algorithm (Theorem 5.2).
//
// Iterations are processed in doubling prefixes. Unlike linear programming,
// where an iteration's special check depends only on the current optimum,
// the closest-pair check for point k depends on all points before k, so the
// sub-round (a) bulk-inserts the whole remaining prefix into the concurrent
// grid in parallel, (b) checks every prefix point against its 3x3
// neighborhood restricted to smaller indices — exactly the sequential
// check — and (c) takes the earliest special iteration with a parallel min
// reduction, shrinks r, and rebuilds the grid. The result and the sequence
// of special iterations are identical to the sequential algorithm's.
func ParIncremental(pts []geom.Point) (Result, Stats) {
	n := len(pts)
	if n < 2 {
		panic("closestpair: need at least two points")
	}
	var st Stats
	var checks atomic.Int64
	res := Result{I: 0, J: 1, Dist: geom.Dist(pts[0], pts[1])}
	checks.Add(1)
	st.Special++ // iteration 1 defines r, as in the sequential count
	g := newParGrid(res.Dist, n)
	g.insert(pts, 0)
	g.insert(pts, 1)

	st.CellProbes += 2
	rebuild := func(upto int) {
		g = newParGrid(res.Dist, n)
		// Inserts are cheap and uniform: grain 128 — claim traffic is
		// lane-local on the stealing pool, so half the old 256 grain buys
		// rebalance headroom for hot grid cells at no shared-counter cost.
		parallel.ForGrain(0, upto+1, 128, func(k int) { g.insert(pts, int32(k)) })
		st.CellProbes += int64(upto + 1)
	}

	j := 2
	for hi := 4; j < n; hi *= 2 {
		if hi > n {
			hi = n
		}
		st.Rounds++
		for j < hi {
			st.SubRounds++
			// (a) Insert the remaining prefix in parallel.
			parallel.ForGrain(j, hi, 128, func(k int) { g.insert(pts, int32(k)) })
			st.CellProbes += int64(hi-j) * 10 // insert + 3x3 check per point
			// (b)+(c) Earliest iteration whose true nearest-earlier
			// distance beats r.
			dist := make([]float64, hi-j)
			arg := make([]int32, hi-j)
			blockChecks := make([]int64, hi-j)
			// Grid-probe counts are skewed by local density: grain 32 lets
			// thieves split the crowded cells' ranges finer.
			parallel.ForGrain(j, hi, 32, func(k int) {
				d, a := g.nearestBefore(pts, int32(k), &blockChecks[k-j])
				dist[k-j], arg[k-j] = d, a
			})
			checks.Add(parallel.Sum(blockChecks))
			// Reserve-style earliest-true search: the distances are already
			// materialized, so the predicate is a cheap array read and
			// pruning skips comparisons that cannot win.
			l, ok := parallel.ReduceMinIndex(j, hi, 0,
				func(k int) bool { return dist[k-j] < res.Dist })
			if !ok {
				j = hi
				break
			}
			st.Special++
			res = Result{I: int(arg[l-j]), J: l, Dist: dist[l-j]}
			rebuild(l)
			j = l + 1
		}
	}
	st.DistChecks = checks.Load()
	if res.I > res.J {
		res.I, res.J = res.J, res.I
	}
	return res, st
}

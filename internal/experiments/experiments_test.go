package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// col extracts column named h from the table as floats.
func col(t *testing.T, tab *Table, h string) []float64 {
	t.Helper()
	idx := -1
	for i, name := range tab.Headers {
		if name == h {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("table %q has no column %q (has %v)", tab.Title, h, tab.Headers)
	}
	out := make([]float64, 0, len(tab.Rows))
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			t.Fatalf("column %q value %q not numeric: %v", h, row[idx], err)
		}
		out = append(out, v)
	}
	return out
}

var smallSizes = []int{512, 1024, 2048}

func TestSortScalingBounds(t *testing.T) {
	tab := SortScaling(1, smallSizes)
	for _, v := range col(t, tab, "cmp/(n ln n)") {
		if v > 2 {
			t.Fatalf("comparison constant %v exceeds Corollary 2.4's 2", v)
		}
	}
	for _, v := range col(t, tab, "depth/H_n") {
		if v > 14.8 {
			t.Fatalf("depth ratio %v exceeds Theorem 2.1's σ=2e²", v)
		}
	}
}

func TestDelaunayScalingBounds(t *testing.T) {
	tab := DelaunayScaling(1, []int{256, 512})
	for _, v := range col(t, tab, "IC/(n ln n)") {
		if v > 24 {
			t.Fatalf("InCircle constant %v exceeds Theorem 4.5's 24", v)
		}
	}
	for _, v := range col(t, tab, "depth/log2 n") {
		if v > 12 {
			t.Fatalf("DT depth ratio %v not logarithmic", v)
		}
	}
}

func TestLPScalingBounds(t *testing.T) {
	tab := LPScaling(1, smallSizes)
	for _, v := range col(t, tab, "work/n") {
		if v > 25 {
			t.Fatalf("LP work/n = %v not linear", v)
		}
	}
}

func TestClosestPairScalingBounds(t *testing.T) {
	tab := ClosestPairScaling(1, smallSizes)
	for _, v := range col(t, tab, "work/n") {
		if v > 60 {
			t.Fatalf("CP work/n = %v not linear", v)
		}
	}
}

func TestSEBScalingBounds(t *testing.T) {
	tab := SEBScaling(1, smallSizes)
	for _, v := range col(t, tab, "tests/n") {
		if v > 60 {
			t.Fatalf("SEB tests/n = %v not linear", v)
		}
	}
}

func TestLEListsScalingBounds(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		tab := LEListsScaling(1, []int{256, 512}, 6, weighted)
		for _, v := range col(t, tab, "par/seq") {
			if v > 5 {
				t.Fatalf("weighted=%v: eager-round overhead %v not constant", weighted, v)
			}
		}
		for _, v := range col(t, tab, "mv/ln n") {
			if v > 8 {
				t.Fatalf("weighted=%v: max visits ratio %v not logarithmic", weighted, v)
			}
		}
	}
}

func TestSCCScalingBounds(t *testing.T) {
	tab := SCCScaling(1, []int{256, 512, 1024}, 4)
	for _, v := range col(t, tab, "par/seq") {
		if v > 6 {
			t.Fatalf("SCC work overhead %v not constant", v)
		}
	}
}

func TestInCircleConstantUnder24(t *testing.T) {
	tab := InCircleConstant(1, []int{512, 1024}, 3)
	for _, v := range col(t, tab, "avg/(n ln n)") {
		if v > 24 {
			t.Fatalf("Theorem 4.5 constant %v exceeds 24", v)
		}
	}
}

func TestDepthDistributionUnderSigma(t *testing.T) {
	for _, alg := range []string{"sort", "dt"} {
		tab := DepthDistribution(1, alg, 1024, 5)
		maxs := col(t, tab, "max D/Hn")
		sigmas := col(t, tab, "σ")
		for i := range maxs {
			if maxs[i] >= sigmas[i] {
				t.Fatalf("%s: max depth ratio %v reaches σ=%v", alg, maxs[i], sigmas[i])
			}
		}
	}
}

func TestSpecialIterationsTable(t *testing.T) {
	tab := SpecialIterations(1, []int{512, 1024}, 4)
	for _, h := range []string{"LP/(2 ln n)", "CP/(2 ln n)", "SEB/(3 ln n)"} {
		for _, v := range col(t, tab, h) {
			if v > 1.8 {
				t.Fatalf("%s ratio %v exceeds the backwards-analysis bound", h, v)
			}
		}
	}
}

func TestDependenceCountsTable(t *testing.T) {
	tab := DependenceCounts(1, []int{1024, 2048}, 4)
	for _, v := range col(t, tab, "avg/(n ln n)") {
		if v > 2 {
			t.Fatalf("dependence constant %v exceeds Corollary 2.4's 2", v)
		}
	}
}

func TestIncomingDependencesTable(t *testing.T) {
	tab := IncomingDependences(1, []int{512, 1024}, 6)
	for _, v := range col(t, tab, "mean/ln n") {
		if v < 0.5 || v > 2 {
			t.Fatalf("mean list length ratio %v far from Cohen's ~1", v)
		}
	}
}

func TestSCCWorkloadsTable(t *testing.T) {
	tab := SCCWorkloads(1, 512)
	if len(tab.Rows) != 7 {
		t.Fatalf("expected 7 workloads, got %d", len(tab.Rows))
	}
	for _, v := range col(t, tab, "par/seq") {
		if v > 8 {
			t.Fatalf("workload overhead %v not constant", v)
		}
	}
}

func TestShuffleDepthTable(t *testing.T) {
	tab := ShuffleDepth(1, []int{1024, 4096})
	for _, v := range col(t, tab, "rounds/log2 n") {
		if v > 8 {
			t.Fatalf("shuffle depth ratio %v not logarithmic", v)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "a note", "333"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

package experiments

import (
	"math"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rng"
)

// GKSComparison contrasts the two incremental Delaunay algorithms of
// Section 4: the Guibas–Knuth–Sharir history-DAG algorithm (standard,
// inherently sequential) and the Boissonnat–Teillaud variant the paper
// parallelizes. Both are Θ(n log n) work; the point of the table is that
// their outputs are identical (unique DT) while only BT admits the
// O(d log n) dependence depth of Theorem 4.3.
func GKSComparison(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Section 4: GKS (history DAG + flips) vs Boissonnat–Teillaud",
		Note: "identical triangulations; BT's InCircle constant obeys Thm 4.5's 24;\n" +
			"GKS locate depth is O(log n) but its rip cascade has no depth bound.",
		Headers: []string{"n", "BT IC/(n ln n)", "GKS IC/(n ln n)", "GKS flips", "GKS max locate", "BT dep depth", "bt ms", "gks ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		pts := geom.Dedup(geom.UniformSquare(r, n))
		var bt *delaunay.Mesh
		var gksSt delaunay.GKSStats
		btT := timed(func() { bt = delaunay.Triangulate(pts) })
		gksT := timed(func() { _, gksSt = delaunay.GKSTriangulate(pts) })
		nlogn := float64(n) * math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			it(n),
			f2(float64(bt.Stats.InCircleTests) / nlogn),
			f2(float64(gksSt.InCircleTests) / nlogn),
			i64(gksSt.Flips), it(gksSt.MaxLocateDepth), it(bt.Stats.DepDepth),
			ms(btT), ms(gksT),
		})
	}
	return t
}

package experiments

import (
	"math"

	"repro/internal/graph"
	"repro/internal/lelists"
	"repro/internal/rng"
	"repro/internal/scc"
)

// LEListsScaling reproduces Table 1 row "least-element lists":
// O(W_SP(n,m) log n) work and O(D_SP(n,m) log n) depth. The work column
// normalizes total search work (edge relaxations) by m ln n; the paper's
// bound says the ratio is O(1). The parallel column shows the eager-round
// overhead, which Theorem 2.6 bounds by a constant factor.
func LEListsScaling(seed uint64, sizes []int, avgDeg int, weighted bool) *Table {
	kind := "unweighted (BFS)"
	if weighted {
		kind = "weighted (Dijkstra)"
	}
	t := &Table{
		Title: "Table 1 / LE-lists (Type 3), " + kind + ": O(W_SP log n) work, O(D_SP log n) depth",
		Note: "work/(m ln n) flat (Thm 6.2); par/seq work <= small constant (Thm 2.6);\n" +
			"max list length and max visits per vertex are O(log n) whp.",
		Headers: []string{"n", "m", "seq work", "work/(m ln n)", "par work", "par/seq", "rounds", "max visits", "mv/ln n", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		g := graph.GnmUndirected(r, n, avgDeg*n/2, weighted)
		var seqSt, parSt lelists.Stats
		seqT := timed(func() { _, seqSt = lelists.Sequential(g) })
		parT := timed(func() { _, parSt = lelists.Parallel(g) })
		mlogn := float64(g.M()) * math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			it(n), it(g.M()),
			i64(seqSt.SearchWork), f3(float64(seqSt.SearchWork) / mlogn),
			i64(parSt.SearchWork), f2(float64(parSt.SearchWork) / float64(seqSt.SearchWork)),
			it(parSt.Rounds),
			it(parSt.MaxPerVert), f2(float64(parSt.MaxPerVert) / math.Log(float64(n))),
			ms(seqT), ms(parT),
		})
	}
	return t
}

// SCCScaling reproduces Table 1 row "strongly connected components":
// O(W_R(n,m) log n) work and O(D_R(n,m) log n) depth. Graphs are random
// digraphs near the giant-SCC density, the regime where the
// divide-and-conquer recursion is deepest.
func SCCScaling(seed uint64, sizes []int, avgDeg int) *Table {
	t := &Table{
		Title: "Table 1 / SCC (Type 3): O(W_R log n) work, O(D_R log n) depth",
		Note: "work/(m ln n) flat; par/seq work <= small constant (the paper's\n" +
			"relaxed dependences cost only a constant factor); rounds = ceil(log2 n).",
		Headers: []string{"n", "m", "#SCC", "seq work", "work/(m ln n)", "par work", "par/seq", "rounds", "tarjan ms", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		g := graph.GnmDirected(r, n, avgDeg*n, false)
		var seqSt, parSt scc.Stats
		var labels scc.Labels
		tarT := timed(func() { labels = scc.Tarjan(g) })
		seqT := timed(func() { _, seqSt = scc.Sequential(g) })
		parT := timed(func() { _, parSt = scc.Parallel(g) })
		mlogn := float64(g.M()) * math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			it(n), it(g.M()), it(scc.CountSCCs(labels)),
			i64(seqSt.ReachWork), f3(float64(seqSt.ReachWork) / mlogn),
			i64(parSt.ReachWork), f2(float64(parSt.ReachWork) / float64(max64(seqSt.ReachWork, 1))),
			it(parSt.Rounds),
			ms(tarT), ms(seqT), ms(parT),
		})
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SCCWorkloads runs the parallel SCC over the qualitatively different graph
// families (random, power-law, planted, chain DAG, big cycle), reporting
// rounds and work overhead on each — the robustness sweep behind the
// Table 1 row.
func SCCWorkloads(seed uint64, n int) *Table {
	t := &Table{
		Title:   "SCC workload sweep (Type 3 robustness)",
		Note:    "par/seq reach work stays a small constant across graph families.",
		Headers: []string{"workload", "n", "m", "#SCC", "seq work", "par work", "par/seq", "rounds"},
	}
	r := rng.New(seed)
	type wl struct {
		name string
		g    *graph.Graph
	}
	gPlanted, _ := graph.PlantedSCC(r, n, n/64+1, 4*n)
	chainRandom, _ := graph.RandomRelabel(graph.ChainDAG(n), r)
	workloads := []wl{
		{"gnm-sparse", graph.GnmDirected(r, n, 2*n, false)},
		{"gnm-dense", graph.GnmDirected(r, n, 8*n, false)},
		{"power-law", graph.PowerLawDirected(r, n, 4)},
		{"planted", gPlanted},
		// The chain DAG in id order violates the random-priority
		// assumption and exhibits the sequential algorithm's Θ(n²)
		// worst case; the relabeled copy restores O(n log n) — the
		// paper's randomness assumption made visible.
		{"chain-dag-idorder", graph.ChainDAG(n)},
		{"chain-dag-random", chainRandom},
		{"cycle-chords", graph.CycleChords(r, n, n/2)},
	}
	for _, w := range workloads {
		_, seqSt := scc.Sequential(w.g)
		labels, parSt := scc.Parallel(w.g)
		t.Rows = append(t.Rows, []string{
			w.name, it(w.g.N), it(w.g.M()), it(scc.CountSCCs(labels)),
			i64(seqSt.ReachWork), i64(parSt.ReachWork),
			f2(float64(parSt.ReachWork) / float64(max64(seqSt.ReachWork, 1))),
			it(parSt.Rounds),
		})
	}
	return t
}

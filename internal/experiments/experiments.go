// Package experiments contains the measurement harness that regenerates the
// paper's evaluation artifacts: Table 1 (work and depth for the seven
// problems) and the quantitative theorem-level claims (Theorem 4.5's
// InCircle constant, Theorem 2.1/2.2/2.6 depth and dependence bounds).
//
// Each experiment returns a Table whose rows report, per input size, the
// measured operation counts and dependence depths normalized by the
// paper's bound — the normalized columns should be flat (or bounded by the
// stated constant) as n grows when the reproduction holds. Wall-clock
// comparisons between the sequential and parallel implementations are in
// bench_test.go at the repository root; the tables here are about the
// quantities the paper actually proves.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment: a title, column headers, and rows.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// ms formats a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func i64(x int64) string  { return fmt.Sprintf("%d", x) }
func it(x int) string     { return fmt.Sprintf("%d", x) }

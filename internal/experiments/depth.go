package experiments

import (
	"math"
	"sort"

	"repro/internal/bstsort"
	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rng"
)

// DepthDistribution reproduces the Theorem 2.1 concentration claim for the
// two Type 1 algorithms: over many random orders, the iteration dependence
// depth D(G) divided by H_n concentrates well below the theorem's σ
// threshold (2e² for sorting with k=2; 2(d+1)e² for Delaunay with
// 2(d+1)-bounded nested dependences).
func DepthDistribution(seed uint64, alg string, n, trials int) *Table {
	var sigma float64
	var title string
	switch alg {
	case "sort":
		sigma = core.Type1Sigma(2)
		title = "Theorem 2.1 depth concentration / BST sort (k=2, σ=2e²≈14.8)"
	case "dt":
		sigma = core.Type1Sigma(6)
		title = "Theorem 2.1 depth concentration / Delaunay d=2 (k=2(d+1)=6, σ=6e²≈44.3)"
	default:
		panic("experiments: unknown algorithm " + alg)
	}
	t := &Table{
		Title: title,
		Note: "per-trial dependence depth normalized by H_n; the whp bound says\n" +
			"Pr[D(G) >= σ H_n] is polynomially small — max should sit far below σ.",
		Headers: []string{"n", "trials", "min D/Hn", "median D/Hn", "p90 D/Hn", "max D/Hn", "σ"},
	}
	r := rng.New(seed)
	hn := core.Hn(n)
	ratios := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		sub := r.Split()
		var depth int
		switch alg {
		case "sort":
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = sub.Float64()
			}
			_, st := bstsort.ParInsert(keys)
			depth = st.Rounds
		case "dt":
			pts := geom.Dedup(geom.UniformSquare(sub, n))
			m := delaunay.ParTriangulate(pts)
			depth = m.Stats.DepDepth
		}
		ratios = append(ratios, float64(depth)/hn)
	}
	sort.Float64s(ratios)
	q := func(p float64) float64 { return ratios[int(p*float64(len(ratios)-1))] }
	t.Rows = append(t.Rows, []string{
		it(n), it(trials),
		f2(ratios[0]), f2(q(0.5)), f2(q(0.9)), f2(ratios[len(ratios)-1]), f2(sigma),
	})
	return t
}

// ShuffleDepth measures the parallel random permutation's sub-round count
// (the framework's precursor algorithm, used by all workload generators):
// O(log n) prefixes with O(1) expected sub-rounds each.
func ShuffleDepth(seed uint64, sizes []int) *Table {
	t := &Table{
		Title:   "Parallel Knuth shuffle sub-rounds (reservation algorithm)",
		Note:    "sub-rounds / log2 n should be a small constant.",
		Headers: []string{"n", "sub-rounds", "rounds/log2 n"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		h := rng.SwapTargets(r.Split(), n)
		_, rounds := rng.ParShuffleWithTargets(h)
		t.Rows = append(t.Rows, []string{
			it(n), it(rounds), f2(float64(rounds) / math.Log2(float64(n))),
		})
	}
	return t
}

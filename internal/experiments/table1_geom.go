package experiments

import (
	"math"

	"repro/internal/bstsort"
	"repro/internal/closestpair"
	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/rng"
	"repro/internal/seb"
)

// SortScaling reproduces Table 1 row "comparison sorting": O(n log n) work
// and O(log n) depth whp. Columns: measured comparisons normalized by
// n ln n (Corollary 2.4 bounds the constant by 2) and parallel rounds
// (= tree height = dependence depth) normalized by H_n, with the
// Theorem 2.1 threshold 2e² ≈ 14.8 as the whp ceiling.
func SortScaling(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Table 1 / sorting (Type 1): O(n log n) work, O(log n) depth",
		Note: "cmp/(n ln n) should stay <= 2 (Cor 2.4); depth/H_n should stay well\n" +
			"under 2e^2 = 14.8 (Thm 2.1 with k=2); seq and par are wall-clock.",
		Headers: []string{"n", "comparisons", "cmp/(n ln n)", "depth", "depth/H_n", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = r.Float64()
		}
		var seqSt, parSt bstsort.Stats
		seqT := timed(func() { _, seqSt = bstsort.SeqInsert(keys) })
		parT := timed(func() { _, parSt = bstsort.ParInsert(keys) })
		nlogn := float64(n) * math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			it(n), i64(seqSt.Comparisons), f3(float64(seqSt.Comparisons) / nlogn),
			it(parSt.Rounds), f2(float64(parSt.Rounds) / core.Hn(n)),
			ms(seqT), ms(parT),
		})
	}
	return t
}

// DelaunayScaling reproduces Table 1 row "Delaunay triangulation" for d=2:
// O(n log n) work and polylogarithmic depth.
func DelaunayScaling(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Table 1 / Delaunay triangulation d=2 (Type 1): O(n log n) work, O(d log n log* n) depth",
		Note: "InCircle/(n ln n) should stay <= 24 (Thm 4.5); depth/log2(n) flat\n" +
			"(Thm 4.3); parallel and sequential do identical ReplaceBoundary calls.",
		Headers: []string{"n", "InCircle", "IC/(n ln n)", "triangles", "depth", "depth/log2 n", "rounds", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		pts := geom.Dedup(geom.UniformSquare(r, n))
		var seqM, parM *delaunay.Mesh
		seqT := timed(func() { seqM = delaunay.Triangulate(pts) })
		parT := timed(func() { parM = delaunay.ParTriangulate(pts) })
		nlogn := float64(n) * math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			it(n), i64(seqM.Stats.InCircleTests),
			f2(float64(seqM.Stats.InCircleTests) / nlogn),
			i64(seqM.Stats.TrianglesCreated),
			it(parM.Stats.DepDepth), f2(float64(parM.Stats.DepDepth) / math.Log2(float64(n))),
			it(parM.Stats.Rounds),
			ms(seqT), ms(parT),
		})
	}
	return t
}

// LPScaling reproduces Table 1 row "2D linear programming": O(n) work,
// O(log n) depth.
func LPScaling(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Table 1 / 2D linear programming (Type 2): O(n) work, O(log n) depth",
		Note: "work/n should be flat (Thm 5.1); special/(2 ln n) <= ~1 (backwards\n" +
			"analysis: optimum defined by <= 2 constraints); max probe is the\n" +
			"widest batched reservation the schedule issued.",
		Headers: []string{"n", "work", "work/n", "special", "spec/(2 ln n)", "sub-rounds", "max probe", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		cons := lp.TangentConstraints(r, n)
		cx, cy := lp.RandomObjective(r)
		var seqSt, parSt lp.Stats
		seqT := timed(func() { _, seqSt = lp.Solve(cons, cx, cy) })
		parT := timed(func() { _, parSt = lp.ParSolve(cons, cx, cy) })
		work := seqSt.SideTests + seqSt.OneDimWork
		t.Rows = append(t.Rows, []string{
			it(n), i64(work), f3(float64(work) / float64(n)),
			it(seqSt.Special), f2(float64(seqSt.Special) / (2 * math.Log(float64(n)))),
			it(parSt.SubRounds), it(parSt.MaxProbe),
			ms(seqT), ms(parT),
		})
	}
	return t
}

// ClosestPairScaling reproduces Table 1 row "2D closest pair": O(n) work,
// O(log n log* n) depth.
func ClosestPairScaling(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Table 1 / 2D closest pair (Type 2): O(n) work, O(log n log* n) depth",
		Note: "work/n flat (Thm 5.2); rebuilds/(2 ln n) <= ~1; d&c is the\n" +
			"deterministic O(n log n) divide-and-conquer baseline.",
		Headers: []string{"n", "work", "work/n", "rebuilds", "rb/(2 ln n)", "sub-rounds", "seq ms", "par ms", "d&c ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		pts := geom.Dedup(geom.UniformSquare(r, n))
		var seqSt, parSt closestpair.Stats
		seqT := timed(func() { _, seqSt = closestpair.Incremental(pts) })
		parT := timed(func() { _, parSt = closestpair.ParIncremental(pts) })
		dcT := timed(func() { closestpair.DivideAndConquer(pts) })
		work := seqSt.DistChecks + seqSt.CellProbes
		t.Rows = append(t.Rows, []string{
			it(len(pts)), i64(work), f3(float64(work) / float64(n)),
			it(seqSt.Special), f2(float64(seqSt.Special) / (2 * math.Log(float64(n)))),
			it(parSt.SubRounds),
			ms(seqT), ms(parT), ms(dcT),
		})
	}
	return t
}

// SEBScaling reproduces Table 1 row "smallest enclosing disk": O(n) work,
// O(log² n) depth.
func SEBScaling(seed uint64, sizes []int) *Table {
	t := &Table{
		Title: "Table 1 / smallest enclosing disk (Type 2): O(n) work, O(log^2 n) depth",
		Note: "tests/n flat (Thm 5.3); special/(3 ln n) <= ~1 (the boundary is\n" +
			"defined by <= 3 points); max probe is the widest batched\n" +
			"reservation the schedule issued.",
		Headers: []string{"n", "in-disk tests", "tests/n", "special", "spec/(3 ln n)", "update2", "sub-rounds", "max probe", "seq ms", "par ms"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		pts := geom.UniformDisk(r, n)
		var seqSt, parSt seb.Stats
		seqT := timed(func() { _, seqSt = seb.Incremental(pts) })
		parT := timed(func() { _, parSt = seb.ParIncremental(pts) })
		t.Rows = append(t.Rows, []string{
			it(n), i64(seqSt.InDiskTests), f3(float64(seqSt.InDiskTests) / float64(n)),
			it(seqSt.Special), f2(float64(seqSt.Special) / (3 * math.Log(float64(n)))),
			i64(seqSt.Update2Calls), it(parSt.SubRounds), it(parSt.MaxProbe),
			ms(seqT), ms(parT),
		})
	}
	return t
}

// InCircleConstant reproduces Theorem 4.5 in isolation: the expected number
// of InCircle tests for 2D incremental Delaunay is at most 24 n ln n + O(n).
// Several trials per n give the empirical constant.
func InCircleConstant(seed uint64, sizes []int, trials int) *Table {
	t := &Table{
		Title:   "Theorem 4.5: InCircle tests <= 24 n ln n + O(n) in expectation (d=2)",
		Note:    "the empirical constant (avg IC / (n ln n)) must stay below 24.",
		Headers: []string{"n", "trials", "avg InCircle", "avg/(n ln n)", "max/(n ln n)"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		var sum int64
		maxRatio := 0.0
		for trial := 0; trial < trials; trial++ {
			pts := geom.Dedup(geom.UniformSquare(r.Split(), n))
			m := delaunay.Triangulate(pts)
			sum += m.Stats.InCircleTests
			ratio := float64(m.Stats.InCircleTests) / (float64(n) * math.Log(float64(n)))
			if ratio > maxRatio {
				maxRatio = ratio
			}
		}
		avg := float64(sum) / float64(trials)
		t.Rows = append(t.Rows, []string{
			it(n), it(trials), f2(avg),
			f2(avg / (float64(n) * math.Log(float64(n)))), f2(maxRatio),
		})
	}
	return t
}

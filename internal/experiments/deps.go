package experiments

import (
	"math"

	"repro/internal/bstsort"
	"repro/internal/closestpair"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lelists"
	"repro/internal/lp"
	"repro/internal/rng"
	"repro/internal/seb"
)

// DependenceCounts reproduces Corollary 2.4: a randomized incremental
// algorithm with separating dependences has O(n log n) dependences in
// expectation — concretely, BST-sort comparisons are bounded by 2 n ln n.
func DependenceCounts(seed uint64, sizes []int, trials int) *Table {
	t := &Table{
		Title:   "Corollary 2.4: expected #dependences <= 2 n ln n (BST sort comparisons)",
		Note:    "avg/(n ln n) must stay below 2.",
		Headers: []string{"n", "trials", "avg comparisons", "avg/(n ln n)"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		var sum int64
		for trial := 0; trial < trials; trial++ {
			sub := r.Split()
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = sub.Float64()
			}
			_, st := bstsort.SeqInsert(keys)
			sum += st.Comparisons
		}
		avg := float64(sum) / float64(trials)
		t.Rows = append(t.Rows, []string{
			it(n), it(trials), f2(avg), f3(avg / (float64(n) * math.Log(float64(n)))),
		})
	}
	return t
}

// IncomingDependences reproduces Lemma 2.5 / Theorem 2.6 for LE-lists: the
// number of incoming dependences per iteration (kept visits per vertex)
// under the round schedule is O(log n) whp with geometric per-round tails.
// The table shows the distribution of per-vertex LE-list lengths.
func IncomingDependences(seed uint64, sizes []int, avgDeg int) *Table {
	t := &Table{
		Title: "Lemma 2.5 / Theorem 2.6: per-vertex dependences are O(log n) whp (LE-lists)",
		Note: "mean list length ~ ln n (Cohen); max/ln n bounded; total kept\n" +
			"dependences / (n ln n) bounded.",
		Headers: []string{"n", "m", "mean len", "mean/ln n", "max len", "max/ln n", "total/(n ln n)"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		g := graph.GnmUndirected(r, n, avgDeg*n/2, true)
		lists, _ := lelists.Parallel(g)
		total, maxLen := 0, 0
		for _, l := range lists {
			total += len(l)
			if len(l) > maxLen {
				maxLen = len(l)
			}
		}
		logn := math.Log(float64(n))
		mean := float64(total) / float64(n)
		t.Rows = append(t.Rows, []string{
			it(n), it(g.M()), f2(mean), f2(mean / logn),
			it(maxLen), f2(float64(maxLen) / logn),
			f3(float64(total) / (float64(n) * logn)),
		})
	}
	return t
}

// SpecialIterations reproduces Theorem 2.2's premise across the three Type 2
// algorithms: the number of special iterations is O(log n) (expected
// Σ c/j = c ln n with c = 2, 2, 3 respectively).
func SpecialIterations(seed uint64, sizes []int, trials int) *Table {
	t := &Table{
		Title:   "Theorem 2.2: special iterations are O(log n) (Type 2 algorithms)",
		Note:    "each column is avg special count / (c ln n) with the algorithm's c.",
		Headers: []string{"n", "LP avg", "LP/(2 ln n)", "CP avg", "CP/(2 ln n)", "SEB avg", "SEB/(3 ln n)"},
	}
	r := rng.New(seed)
	for _, n := range sizes {
		var lpSum, cpSum, sebSum int
		for trial := 0; trial < trials; trial++ {
			sub := r.Split()
			cons := lp.TangentConstraints(sub, n)
			cx, cy := lp.RandomObjective(sub)
			_, lpSt := lp.Solve(cons, cx, cy)
			lpSum += lpSt.Special

			pts := geom.Dedup(geom.UniformSquare(sub, n))
			_, cpSt := closestpair.Incremental(pts)
			cpSum += cpSt.Special

			dpts := geom.UniformDisk(sub, n)
			_, sebSt := seb.Incremental(dpts)
			sebSum += sebSt.Special
		}
		logn := math.Log(float64(n))
		lpAvg := float64(lpSum) / float64(trials)
		cpAvg := float64(cpSum) / float64(trials)
		sebAvg := float64(sebSum) / float64(trials)
		t.Rows = append(t.Rows, []string{
			it(n),
			f2(lpAvg), f2(lpAvg / (2 * logn)),
			f2(cpAvg), f2(cpAvg / (2 * logn)),
			f2(sebAvg), f2(sebAvg / (3 * logn)),
		})
	}
	return t
}

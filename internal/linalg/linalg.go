// Package linalg provides the tiny dense linear solver shared by the
// d-dimensional geometric primitives (LP vertex enumeration, circumballs
// for the smallest enclosing ball).
package linalg

import "math"

// Solve solves m·x = rhs by Gauss–Jordan elimination with partial
// pivoting, returning nil when the system is (numerically) singular.
// m and rhs are clobbered.
func Solve(m [][]float64, rhs []float64) []float64 {
	d := len(rhs)
	for col := 0; col < d; col++ {
		piv, best := -1, 1e-9
		for r := col; r < d; r++ {
			if a := math.Abs(m[r][col]); a > best {
				best = a
				piv = r
			}
		}
		if piv < 0 {
			return nil
		}
		m[col], m[piv] = m[piv], m[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, d)
	for i := 0; i < d; i++ {
		x[i] = rhs[i] / m[i][i]
	}
	return x
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSolveKnownSystem(t *testing.T) {
	m := [][]float64{{2, 1}, {1, 3}}
	rhs := []float64{5, 10}
	x := Solve(m, rhs)
	if x == nil || math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x=%v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	if Solve([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}) != nil {
		t.Fatal("singular system must return nil")
	}
	if Solve([][]float64{{0}}, []float64{1}) != nil {
		t.Fatal("zero system must return nil")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	// Property: for random well-conditioned systems, m·Solve(m, rhs) = rhs.
	r := rng.New(1)
	f := func(seed uint64) bool {
		sub := rng.New(seed)
		d := 1 + int(seed%5)
		m := make([][]float64, d)
		orig := make([][]float64, d)
		for i := range m {
			m[i] = make([]float64, d)
			orig[i] = make([]float64, d)
			for j := range m[i] {
				m[i][j] = sub.Float64() - 0.5
				orig[i][j] = m[i][j]
			}
			m[i][i] += 2 // diagonally dominant: well-conditioned
			orig[i][i] = m[i][i]
		}
		rhs := make([]float64, d)
		origRhs := make([]float64, d)
		for i := range rhs {
			rhs[i] = sub.Float64()
			origRhs[i] = rhs[i]
		}
		x := Solve(m, rhs)
		if x == nil {
			return false
		}
		for i := 0; i < d; i++ {
			if math.Abs(Dot(orig[i], x)-origRhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndDist2(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot")
	}
	if Dist2([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("dist2")
	}
}

// Package bstsort implements Section 3 of the paper: comparison sorting by
// incremental insertion into an unbalanced binary search tree.
//
// Three implementations are provided:
//
//   - SeqInsert: the sequential incremental algorithm (Algorithm 3 run
//     iteration by iteration).
//   - ParInsert: the Type 1 parallel version (Algorithm 3 with the for loop
//     parallel and line 7 a priority-write). All keys descend in lockstep,
//     one tree level per round; contended empty slots are won by the
//     earliest iteration, so the tree equals the sequential one
//     (Theorem 3.2) and the number of rounds equals the iteration
//     dependence depth, O(log n) whp (Lemma 3.1).
//   - ParInsertPrefix: the Type 3 variant sketched in Section 2.3 —
//     prefix-doubling rounds; each round's keys search the current tree in
//     parallel, keys colliding on the same empty slot are resolved in
//     iteration order.
//
// All versions produce the identical tree for the same key order.
package bstsort

import (
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/sortutil"
)

// Tree is a binary search tree over the inserted keys; node i holds Keys[i]
// (the key of iteration i). Left/Right are node indices or -1.
type Tree struct {
	Keys  []float64
	Left  []int32
	Right []int32
	Root  int32 // -1 when empty
}

// Stats reports the work and depth counters of an insertion run.
type Stats struct {
	// Comparisons is the number of key comparisons, which is exactly the
	// number of iteration dependences (Corollary 2.4 bounds its expectation
	// by 2 n ln n).
	Comparisons int64
	// Rounds is the number of synchronous parallel rounds, the empirical
	// iteration dependence depth (0 for the sequential algorithm).
	Rounds int
	// Height is the final tree height in nodes (max root-to-leaf path).
	Height int
}

func newTree(keys []float64) *Tree {
	n := len(keys)
	t := &Tree{
		Keys:  keys,
		Left:  make([]int32, n),
		Right: make([]int32, n),
		Root:  -1,
	}
	for i := range t.Left {
		t.Left[i] = -1
		t.Right[i] = -1
	}
	return t
}

// SeqInsert inserts keys in index order into an initially empty BST and
// returns the tree with comparison counts.
func SeqInsert(keys []float64) (*Tree, Stats) {
	t := newTree(keys)
	var st Stats
	for i, k := range keys {
		if t.Root < 0 {
			t.Root = int32(i)
			continue
		}
		cur := t.Root
		for {
			st.Comparisons++
			if k < t.Keys[cur] {
				if t.Left[cur] < 0 {
					t.Left[cur] = int32(i)
					break
				}
				cur = t.Left[cur]
			} else {
				if t.Right[cur] < 0 {
					t.Right[cur] = int32(i)
					break
				}
				cur = t.Right[cur]
			}
		}
	}
	st.Height = t.Height()
	return t, st
}

// ParInsert runs the parallel Algorithm 3: every key starts at the root
// slot; in each synchronous round each live key priority-writes its
// iteration index into its current slot, the minimum index wins and is
// installed, and losers descend one level by comparing against the winner.
func ParInsert(keys []float64) (*Tree, Stats) {
	n := len(keys)
	t := newTree(keys)
	var st Stats
	if n == 0 {
		return t, st
	}
	// Slot s: 0 is the root pointer; node i owns slots 1+2i (left child)
	// and 2+2i (right child).
	slots := make([]parallel.PriorityCell, 2*n+1)
	leftSlot := func(i int32) int { return 1 + 2*int(i) }
	rightSlot := func(i int32) int { return 2 + 2*int(i) }

	at := make([]int, n) // current slot of key i
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	var comparisons int64
	for len(live) > 0 {
		st.Rounds++
		// Write phase: all live keys offer their index at their slot.
		// Cheap uniform body (one priority write): chunks cost lane-local
		// claims on the stealing pool, so grain 32 is affordable and keeps
		// late rounds (few live keys) parallel.
		parallel.ForGrain(0, len(live), 32, func(k int) {
			i := live[k]
			slots[at[i]].Write(int64(i))
		})
		// Resolve phase: winners install; losers compare and descend.
		won := make([]bool, len(live))
		var roundCmps atomic.Int64
		parallel.Blocks(0, len(live), 32, func(lo, hi int) {
			var local int64
			for k := lo; k < hi; k++ {
				i := live[k]
				w, _ := slots[at[i]].Load()
				if w == int64(i) {
					won[k] = true
					continue
				}
				local++
				if keys[i] < keys[w] {
					at[i] = leftSlot(int32(w))
				} else {
					at[i] = rightSlot(int32(w))
				}
			}
			roundCmps.Add(local)
		})
		comparisons += roundCmps.Load()
		live = parallel.Pack(live, func(k int) bool { return !won[k] })
	}
	st.Comparisons = comparisons
	// Extract the tree from the slots.
	if w, ok := slots[0].Load(); ok {
		t.Root = int32(w)
	}
	parallel.For(0, n, func(i int) {
		if w, ok := slots[leftSlot(int32(i))].Load(); ok {
			t.Left[i] = int32(w)
		}
		if w, ok := slots[rightSlot(int32(i))].Load(); ok {
			t.Right[i] = int32(w)
		}
	})
	st.Height = t.Height()
	return t, st
}

// ParInsertPrefix is the Type 3 prefix-doubling BST insertion of Section
// 2.3: on round r the tree holds the first 2^{r-1} keys; the next 2^{r-1}
// keys all search it in parallel to find the empty slot they fall into;
// conflicts (several keys in one slot) are resolved by inserting that
// slot's keys sequentially in iteration order. The resulting tree equals
// the sequential tree.
func ParInsertPrefix(keys []float64) (*Tree, Stats) {
	n := len(keys)
	t := newTree(keys)
	var st Stats
	if n == 0 {
		return t, st
	}
	t.Root = 0
	var comparisons int64
	for lo := 1; lo < n; lo *= 2 {
		hi := lo * 2
		if hi > n {
			hi = n
		}
		st.Rounds++
		// Phase 1: all keys in [lo, hi) search the frozen tree.
		slot := make([]int64, hi-lo) // encoded slot: node*2 + side
		cmpCount := make([]int64, hi-lo)
		// Tree-search depth varies per key; grain 16 lets thieves split
		// off and even out runs of deep descents (claims are lane-local,
		// so the finer grain costs no shared-counter traffic).
		parallel.ForGrain(0, hi-lo, 16, func(k int) {
			i := lo + k
			cur := t.Root
			var c int64
			for {
				c++
				if keys[i] < t.Keys[cur] {
					if t.Left[cur] < 0 {
						slot[k] = int64(cur)*2 + 0
						break
					}
					cur = t.Left[cur]
				} else {
					if t.Right[cur] < 0 {
						slot[k] = int64(cur)*2 + 1
						break
					}
					cur = t.Right[cur]
				}
			}
			cmpCount[k] = c
		})
		comparisons += parallel.Sum(cmpCount)
		// Phase 2: group by slot; per slot, insert in iteration order.
		groups := sortutil.Semisort(hi-lo, func(k int) uint64 { return uint64(slot[k]) })
		extra := make([]int64, len(groups))
		// Grain 1: group sizes are power-law skewed; one group per claim.
		parallel.ForGrain(0, len(groups), 1, func(gi int) {
			g := groups[gi]
			node := int32(g.Key / 2)
			side0 := g.Key % 2
			var c int64
			for _, k := range g.Indices { // increasing iteration order
				i := int32(lo + k)
				cur, side := node, side0
				// Descend within the subtree grown at the group's slot
				// (empty for the first key) until an empty child is found.
				for {
					var childp *int32
					if side == 0 {
						childp = &t.Left[cur]
					} else {
						childp = &t.Right[cur]
					}
					if *childp < 0 {
						*childp = i
						break
					}
					cur = *childp
					c++
					if keys[i] < t.Keys[cur] {
						side = 0
					} else {
						side = 1
					}
				}
			}
			extra[gi] = c
		})
		comparisons += parallel.Sum(extra)
	}
	st.Comparisons = comparisons
	st.Height = t.Height()
	return t, st
}

// Height returns the height of the tree in nodes (empty tree: 0).
func (t *Tree) Height() int {
	if t.Root < 0 {
		return 0
	}
	// Iterative post-order depth computation to avoid recursion limits.
	type frame struct {
		node  int32
		state int8
	}
	depth := make([]int32, len(t.Keys))
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		switch f.state {
		case 0:
			f.state = 1
			if t.Left[f.node] >= 0 {
				stack = append(stack, frame{t.Left[f.node], 0})
			}
		case 1:
			f.state = 2
			if t.Right[f.node] >= 0 {
				stack = append(stack, frame{t.Right[f.node], 0})
			}
		default:
			var l, r int32
			if c := t.Left[f.node]; c >= 0 {
				l = depth[c]
			}
			if c := t.Right[f.node]; c >= 0 {
				r = depth[c]
			}
			if l > r {
				depth[f.node] = l + 1
			} else {
				depth[f.node] = r + 1
			}
			stack = stack[:len(stack)-1]
		}
	}
	return int(depth[t.Root])
}

// InOrder returns the keys in sorted order by in-order traversal.
func (t *Tree) InOrder() []float64 {
	out := make([]float64, 0, len(t.Keys))
	if t.Root < 0 {
		return out
	}
	stack := make([]int32, 0, 64)
	cur := t.Root
	for cur >= 0 || len(stack) > 0 {
		for cur >= 0 {
			stack = append(stack, cur)
			cur = t.Left[cur]
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, t.Keys[cur])
		cur = t.Right[cur]
	}
	return out
}

// Equal reports whether two trees have identical structure and keys.
func (t *Tree) Equal(o *Tree) bool {
	if len(t.Keys) != len(o.Keys) || t.Root != o.Root {
		return false
	}
	for i := range t.Keys {
		if t.Keys[i] != o.Keys[i] || t.Left[i] != o.Left[i] || t.Right[i] != o.Right[i] {
			return false
		}
	}
	return true
}

// Sort returns the keys in sorted order using the parallel incremental BST;
// the input is not modified. This is the package's headline public entry.
func Sort(keys []float64) []float64 {
	cp := make([]float64, len(keys))
	copy(cp, keys)
	t, _ := ParInsert(cp)
	return t.InOrder()
}

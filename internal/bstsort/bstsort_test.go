package bstsort

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randKeys(seed uint64, n int) []float64 {
	r := rng.New(seed)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = r.Float64()
	}
	return keys
}

func TestSeqInsertSorts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 1000} {
		keys := randKeys(uint64(n)+1, n)
		tree, _ := SeqInsert(keys)
		got := tree.InOrder()
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		if len(got) != n {
			t.Fatalf("n=%d: in-order has %d keys", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: position %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestParInsertSameTree(t *testing.T) {
	// Theorem 3.2: the parallel version generates the same tree.
	for _, n := range []int{1, 2, 3, 17, 256, 5000} {
		keys := randKeys(uint64(n)*3+1, n)
		seqTree, _ := SeqInsert(keys)
		parTree, _ := ParInsert(keys)
		if !seqTree.Equal(parTree) {
			t.Fatalf("n=%d: parallel tree differs from sequential", n)
		}
	}
}

func TestParInsertPrefixSameTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 256, 5000} {
		keys := randKeys(uint64(n)*7+5, n)
		seqTree, _ := SeqInsert(keys)
		prefTree, _ := ParInsertPrefix(keys)
		if !seqTree.Equal(prefTree) {
			t.Fatalf("n=%d: prefix-doubling tree differs from sequential", n)
		}
	}
}

func TestRoundsEqualTreeHeight(t *testing.T) {
	// Each ParInsert round advances every live key one level, so the round
	// count is exactly the tree height (the iteration dependence depth).
	for _, n := range []int{10, 100, 2000} {
		keys := randKeys(uint64(n)+13, n)
		tree, st := ParInsert(keys)
		if st.Rounds != tree.Height() {
			t.Fatalf("n=%d: rounds=%d height=%d", n, st.Rounds, tree.Height())
		}
		if st.Height != tree.Height() {
			t.Fatalf("stats height mismatch")
		}
	}
}

func TestDepthLogarithmic(t *testing.T) {
	// Lemma 3.1: dependence depth O(log n) whp. Random BSTs have expected
	// height ~4.31 log2 n; test a generous 8x bound.
	for _, n := range []int{1 << 10, 1 << 14} {
		keys := randKeys(uint64(n), n)
		_, st := ParInsert(keys)
		if limit := int(8 * math.Log2(float64(n))); st.Rounds > limit {
			t.Fatalf("n=%d: rounds %d exceed %d", n, st.Rounds, limit)
		}
	}
}

func TestComparisonsMatchSequential(t *testing.T) {
	// The parallel lockstep descent performs exactly the sequential
	// comparison count (each key walks its final search path once).
	for _, n := range []int{10, 500, 4000} {
		keys := randKeys(uint64(n)*11+3, n)
		_, seqSt := SeqInsert(keys)
		_, parSt := ParInsert(keys)
		if seqSt.Comparisons != parSt.Comparisons {
			t.Fatalf("n=%d: comparisons seq=%d par=%d", n, seqSt.Comparisons, parSt.Comparisons)
		}
	}
}

func TestComparisonsWithinCorollary24(t *testing.T) {
	// Corollary 2.4: expected #dependences (comparisons) <= 2 n ln n.
	n := 1 << 14
	trials := 5
	var total int64
	for trial := 0; trial < trials; trial++ {
		keys := randKeys(uint64(trial)*101+7, n)
		_, st := SeqInsert(keys)
		total += st.Comparisons
	}
	avg := float64(total) / float64(trials)
	bound := 2 * float64(n) * math.Log(float64(n))
	if avg > bound {
		t.Fatalf("avg comparisons %.0f exceed 2 n ln n = %.0f", avg, bound)
	}
}

func TestSortedInputWorstCase(t *testing.T) {
	// Sorted insertion order: the tree is a path; depth is n. This checks
	// the implementations handle the degenerate case (no randomness).
	n := 300
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	seqTree, seqSt := SeqInsert(keys)
	parTree, parSt := ParInsert(keys)
	if !seqTree.Equal(parTree) {
		t.Fatal("sorted input: trees differ")
	}
	if parSt.Rounds != n {
		t.Fatalf("sorted input should need n rounds, got %d", parSt.Rounds)
	}
	if seqSt.Comparisons != int64(n)*int64(n-1)/2 {
		t.Fatalf("sorted input comparisons=%d", seqSt.Comparisons)
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := []float64{2, 1, 2, 3, 2, 1}
	seqTree, _ := SeqInsert(keys)
	parTree, _ := ParInsert(keys)
	prefTree, _ := ParInsertPrefix(keys)
	if !seqTree.Equal(parTree) || !seqTree.Equal(prefTree) {
		t.Fatal("duplicate keys: trees differ")
	}
	got := seqTree.InOrder()
	want := append([]float64(nil), keys...)
	sort.Float64s(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("duplicates not sorted: %v", got)
		}
	}
}

func TestSortPublicAPI(t *testing.T) {
	keys := randKeys(77, 1234)
	orig := append([]float64(nil), keys...)
	got := Sort(keys)
	if !sort.Float64sAreSorted(got) {
		t.Fatal("Sort output not sorted")
	}
	for i := range keys {
		if keys[i] != orig[i] {
			t.Fatal("Sort must not modify its input")
		}
	}
}

func TestQuickSortsAnything(t *testing.T) {
	f := func(raw []float32) bool {
		keys := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(float64(x)) {
				return true // NaN keys are out of contract
			}
			keys[i] = float64(x)
		}
		got := Sort(keys)
		return sort.Float64sAreSorted(got) && len(got) == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightEmptyAndOne(t *testing.T) {
	tEmpty, _ := SeqInsert(nil)
	if tEmpty.Height() != 0 {
		t.Fatal("empty height")
	}
	tOne, _ := SeqInsert([]float64{5})
	if tOne.Height() != 1 {
		t.Fatal("single height")
	}
}

package bstsort

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/rng"
)

// TestDependenceDAGDepthEqualsRounds captures the BST's iteration
// dependence graph explicitly (Definition 1: each key depends on its tree
// parent, the last iteration on its search path) and checks that its depth
// equals the parallel round count — the identity the paper's Type 1
// analysis rests on.
func TestDependenceDAGDepthEqualsRounds(t *testing.T) {
	for _, n := range []int{10, 200, 3000} {
		keys := make([]float64, n)
		r := rng.New(uint64(n) + 5)
		for i := range keys {
			keys[i] = r.Float64()
		}
		tree, st := ParInsert(keys)

		dag := depgraph.New(n)
		for i := 0; i < n; i++ {
			dag.AddNode()
		}
		// A tree parent is always inserted before its child, so edges go
		// forward in iteration order (depgraph panics otherwise — itself
		// a structural check).
		for p := 0; p < n; p++ {
			if c := tree.Left[p]; c >= 0 {
				dag.AddEdge(p, int(c))
			}
			if c := tree.Right[p]; c >= 0 {
				dag.AddEdge(p, int(c))
			}
		}
		if dag.Depth() != st.Rounds {
			t.Fatalf("n=%d: DAG depth %d != parallel rounds %d", n, dag.Depth(), st.Rounds)
		}
		// The transitive reduction of the dependence graph is the BST
		// itself (Section 3): n-1 edges for n nodes.
		if dag.Edges() != n-1 {
			t.Fatalf("n=%d: %d dependence edges, want %d", n, dag.Edges(), n-1)
		}
		// Every non-root node depends on exactly one parent.
		hist := dag.InDegreeHistogram()
		if hist[0] != 1 || (len(hist) > 1 && hist[1] != n-1) {
			t.Fatalf("n=%d: in-degree histogram %v", n, hist)
		}
	}
}

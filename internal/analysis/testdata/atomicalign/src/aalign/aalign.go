// Package aalign exercises atomicalign: the 64-bit operands that land at
// a non-8-multiple offset under GOARCH=386 layout must be flagged, and
// the padded / wrapper-typed / 8-stride shapes are the near-miss
// negatives.
package aalign

import "sync/atomic"

type misplaced struct {
	gen uint32
	n   uint64 // offset 4 under 32-bit layout
}

type padded struct {
	n   uint64 // first word: guaranteed aligned
	gen uint32
}

type wrapped struct {
	gen uint32
	n   atomic.Uint64 // align64-marked by the compiler since Go 1.19
}

func bumpMisplaced(m *misplaced) uint64 {
	return atomic.AddUint64(&m.n, 1) // want `offset 4 in aalign.misplaced`
}

func bumpPadded(p *padded) uint64 {
	return atomic.AddUint64(&p.n, 1) // negative: offset 0
}

func bumpWrapped(w *wrapped) uint64 {
	return w.n.Add(1) // negative: wrapper fields are 8-aligned everywhere
}

type pairOdd struct {
	n   uint64
	tag uint32 // 12-byte elements under 32-bit layout: odd indices misalign n
}

func bumpElem(s []uint64, i int) uint64 {
	return atomic.AddUint64(&s[i], 1) // negative: 8-byte stride
}

func bumpOddElem(s []pairOdd, i int) uint64 {
	return atomic.AddUint64(&s[i].n, 1) // want `element size is not a multiple of 8`
}

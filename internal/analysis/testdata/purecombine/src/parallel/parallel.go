// Package parallel is a stand-in with the real reduction signatures so
// the golden files typecheck without importing the module itself; the
// analyzers match it by package name.
package parallel

func Reduce[T any](lo, hi int, identity T, f func(i int) T, op func(a, b T) T) T {
	return identity
}

func ScanExclusive[T any](xs []T, identity T, op func(a, b T) T) T {
	return identity
}

func ReduceMinIndex(lo, hi, grain int, pred func(i int) bool) (int, bool) {
	return 0, false
}

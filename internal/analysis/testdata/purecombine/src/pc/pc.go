// Package pc exercises purecombine on the Reduce/ScanExclusive/
// ReduceMinIndex operand positions.
package pc

import (
	"math/rand"
	"time"

	"parallel"
)

func sum(xs []int64) int64 {
	return parallel.Reduce(0, len(xs), 0,
		func(i int) int64 { return xs[i] },
		func(a, b int64) int64 { return a + b }) // negative: pure combine
}

func jittered(xs []int64) int64 {
	return parallel.Reduce(0, len(xs), 0,
		func(i int) int64 { return xs[i] + rand.Int63() }, // want `calls rand.Int63`
		func(a, b int64) int64 { return a + b })
}

func timed(xs []int64) int64 {
	var spent int64
	return parallel.Reduce(0, len(xs), 0,
		func(i int) int64 { return xs[i] },
		func(a, b int64) int64 {
			spent++         // want `writes captured variable "spent"`
			t := time.Now() // want `calls time.Now`
			_ = t
			return a + b
		})
}

func keyed(m map[int]int64, xs []int64) int64 {
	return parallel.ScanExclusive(xs, 0, func(a, b int64) int64 {
		for _, v := range m { // want `ranges over a map`
			a += v
		}
		return a + b
	})
}

func seeded(xs []int64) int64 {
	start := rand.Intn(2) // negative: nondeterminism outside the operands
	return parallel.Reduce(start, len(xs), 0,
		func(i int) int64 { return xs[i] },
		func(a, b int64) int64 { return a + b })
}

func firstSpecial(flags []bool) int {
	count := 0
	idx, _ := parallel.ReduceMinIndex(0, len(flags), 64, func(i int) bool {
		count++ // want `writes captured variable "count"`
		return flags[i]
	})
	_ = count
	return idx
}

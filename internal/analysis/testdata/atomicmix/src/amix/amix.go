// Package amix exercises atomicmix: hits and published acquire atomic
// sites, so their plain accesses must be flagged; cold never does, so its
// plain access is the near-miss negative.
package amix

import "sync/atomic"

type counterMix struct {
	hits int64
	cold int64
}

func (c *counterMix) bump() int64 {
	return atomic.AddInt64(&c.hits, 1)
}

func (c *counterMix) peek() int64 {
	return c.hits // want `plain access to "hits"`
}

func (c *counterMix) peekCold() int64 {
	return c.cold // negative: cold has no atomic access site
}

var published int64

func publish() { atomic.StoreInt64(&published, 1) }

func sniff() int64 {
	return published // want `plain access to "published"`
}

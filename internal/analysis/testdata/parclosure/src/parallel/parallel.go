// Package parallel is a stand-in with the real loop-primitive signatures
// so the golden files typecheck without importing the module itself; the
// analyzers match it by package name.
package parallel

func For(lo, hi int, body func(i int)) {}

func ForGrain(lo, hi, grain int, body func(i int)) {}

func Blocks(lo, hi, grain int, body func(lo, hi int)) {}

func BlocksIndexed(lo, hi, grain int, body func(b, lo, hi int)) {}

func BlocksN(lo, hi, nb int, body func(b, lo, hi int)) {}

func PackInto[T any](dst []T, xs []T, keep func(i int) bool, counts []int) ([]T, []int) {
	return dst, counts
}

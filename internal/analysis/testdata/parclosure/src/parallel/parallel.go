// Package parallel is a stand-in with the real loop-primitive signatures
// so the golden files typecheck without importing the module itself; the
// analyzers match it by package name.
package parallel

func For(lo, hi int, body func(i int)) {}

func ForGrain(lo, hi, grain int, body func(i int)) {}

func Blocks(lo, hi, grain int, body func(lo, hi int)) {}

func BlocksIndexed(lo, hi, grain int, body func(b, lo, hi int)) {}

func BlocksN(lo, hi, nb int, body func(b, lo, hi int)) {}

// Canceler and Context stand in for the real cancellation token and
// context.Context; parclosure matches callee names only, so the types
// need not match — the closures' positions must.
type Canceler struct{}

type Context interface{}

func ForCancel(lo, hi int, c *Canceler, body func(i int)) error { return nil }

func ForGrainCancel(lo, hi, grain int, c *Canceler, body func(i int)) error { return nil }

func BlocksCancel(lo, hi, grain int, c *Canceler, body func(lo, hi int)) error { return nil }

func BlocksNCancel(lo, hi, nb int, c *Canceler, body func(b, lo, hi int)) error { return nil }

func ForCtx(ctx Context, lo, hi int, body func(i int)) error { return nil }

func ForGrainCtx(ctx Context, lo, hi, grain int, body func(i int)) error { return nil }

func BlocksCtx(ctx Context, lo, hi, grain int, body func(lo, hi int)) error { return nil }

func PackInto[T any](dst []T, xs []T, keep func(i int) bool, counts []int) ([]T, []int) {
	return dst, counts
}

// Package core is a stand-in carrying the Type2Hooks shape so the golden
// files typecheck without importing the module itself.
package core

type Type2Hooks struct {
	RunFirst   func()
	IsSpecial  func(k int) bool
	RunRegular func(lo, hi int)
	RunSpecial func(k int)
}

// Package pcl exercises parclosure on the loop primitives and the
// Type2Hooks contract.
package pcl

import (
	"core"
	"parallel"
)

func fill(dst []int64) {
	parallel.Blocks(0, len(dst), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = int64(i) // negative: index is range-derived
		}
	})
}

func total(xs []int64) int64 {
	var sum int64
	parallel.Blocks(0, len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured "sum" from concurrent blocks`
		}
	})
	return sum
}

func histo(counts map[int]int, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		counts[xs[i]]++ // want `writes captured map "counts"`
	})
}

func broadcast(slot []int64) {
	parallel.ForGrain(0, 100, 16, func(i int) {
		slot[0] = int64(i) // want `index that does not depend on the block range`
	})
}

func pack(dst, xs []int64, counts []int) ([]int64, []int) {
	kept := 0
	out, cnt := parallel.PackInto(dst, xs, func(i int) bool {
		kept++ // want `writes captured "kept" from concurrent blocks`
		return xs[i] > 0
	}, counts)
	_ = kept
	return out, cnt
}

func cancelTotal(xs []int64, c *parallel.Canceler) int64 {
	var sum int64
	parallel.BlocksCancel(0, len(xs), 64, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured "sum" from concurrent blocks`
		}
	})
	return sum
}

func cancelFill(dst []int64, c *parallel.Canceler) {
	parallel.ForGrainCancel(0, len(dst), 16, c, func(i int) {
		dst[i] = int64(i) // negative: index is range-derived
	})
}

func cancelBlocks(nexts [][]int64, c *parallel.Canceler) {
	parallel.BlocksNCancel(0, 100, len(nexts), c, func(b, lo, hi int) {
		nexts[b] = append(nexts[b], int64(lo)) // negative: block-derived index
	})
}

func cancelBroadcast(slot []int64, c *parallel.Canceler) {
	parallel.ForCancel(0, 100, c, func(i int) {
		slot[0] = int64(i) // want `index that does not depend on the block range`
	})
}

func ctxBroadcast(ctx parallel.Context, slot []int64) {
	parallel.ForCtx(ctx, 0, 100, func(i int) {
		slot[0] = int64(i) // want `index that does not depend on the block range`
	})
}

func ctxTotal(ctx parallel.Context, xs []int64) int64 {
	var sum int64
	parallel.BlocksCtx(ctx, 0, len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured "sum" from concurrent blocks`
		}
	})
	return sum
}

func ctxFill(ctx parallel.Context, dst []int64) {
	parallel.ForGrainCtx(ctx, 0, len(dst), 16, func(i int) {
		dst[i] = int64(i) // negative: range-derived index
	})
}

func hooks(executed []bool, specials []bool) core.Type2Hooks {
	seen := 0
	return core.Type2Hooks{
		IsSpecial: func(k int) bool {
			seen++ // want `IsSpecial is called concurrently and must not mutate shared state`
			return specials[k]
		},
		RunRegular: func(lo, hi int) {
			for k := lo; k < hi; k++ {
				executed[k] = true // negative: range-derived index
			}
		},
	}
}

func lateBind(h *core.Type2Hooks) {
	n := 0
	h.RunRegular = func(lo, hi int) {
		n += hi - lo // want `writes captured "n" from concurrent blocks`
	}
	_ = n
}

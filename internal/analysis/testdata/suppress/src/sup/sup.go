// Package sup exercises the //ridtvet:ignore suppression machinery: the
// line-above and same-line forms, the comma-separated analyzer list, the
// mandatory justification, and the unused-directive report.
package sup

//ridt:noalloc
func grow(xs []int64) []int64 {
	//ridtvet:ignore noalloc,parclosure the caller pre-reserves capacity
	return append(xs, 1)
}

//ridt:noalloc
func growInline(xs []int64) []int64 {
	return append(xs, 2) //ridtvet:ignore noalloc same-line form; the caller pre-reserves capacity
}

//ridt:noalloc
func stale(x int64) int64 {
	//ridtvet:ignore noalloc nothing allocates on this line
	return x + 1
}

//ridt:noalloc
func bad(xs []int64) []int64 {
	//ridtvet:ignore noalloc
	return append(xs, 3)
}

// Package na exercises noalloc on //ridt:noalloc-annotated functions.
package na

type ring struct {
	buf  []int64
	head int
}

//ridt:noalloc
func (r *ring) push(v int64) bool { // negative body: indexed writes only
	if r.head == len(r.buf) {
		return false
	}
	r.buf[r.head] = v
	r.head++
	return true
}

//ridt:noalloc
func (r *ring) grow(n int) {
	r.buf = append(r.buf, make([]int64, n)...) // want `calls append` `calls make`
}

//ridt:noalloc
func box(v int64) any {
	return v // want `implicitly boxes int64 into any`
}

//ridt:noalloc
func capture(xs []int64) func() int64 {
	i := 0
	return func() int64 { // want `creates a capturing closure`
		i++
		return xs[i-1]
	}
}

//ridt:noalloc
func fixed() func() int64 {
	return func() int64 { return 42 } // negative: no captures, static closure
}

//ridt:noalloc
func label(a, b string) string {
	return a + b // want `concatenates strings`
}

func work() {}

//ridt:noalloc
func spawn() {
	go work() // want `starts a goroutine`
}

//ridt:noalloc
func sliceLit() []int {
	return []int{1} // want `builds a slice literal`
}

type pt struct{ x, y int64 }

//ridt:noalloc
func mk() pt {
	return pt{1, 2} // negative: value composite literal, no allocation
}

func alloc(n int) []int64 {
	return make([]int64, n) // negative: not annotated
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named analysis over a loaded Program. Run receives
// the whole program (analyses like atomicmix need the module-wide view of
// a field's access sites) and reports findings through report; the driver
// owns suppression, deduplication, and ordering.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report ReportFunc)
}

// ReportFunc records one finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Diagnostic is one reported finding, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Atomicmix, Atomicalign, Purecombine, Parclosure, Noalloc}
}

// ignorePrefix is the suppression directive. It suppresses matching
// diagnostics on its own line and on the line directly below:
//
//	//ridtvet:ignore <analyzer>[,<analyzer>...] <justification>
//
// The justification is mandatory; a directive without one is itself a
// finding. A directive that suppresses nothing is reported as unused, so
// stale suppressions cannot silently accumulate.
const ignorePrefix = "//ridtvet:ignore"

type directive struct {
	pos       token.Position
	analyzers []string
	used      bool
}

func (d *directive) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// RunAnalyzers runs the given analyzers over prog's Module packages and
// returns the surviving diagnostics: suppressed findings are dropped,
// malformed and unused suppression directives are added (as analyzer
// "ridtvet"), duplicates from test-variant double loads are merged, and
// the result is sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		a.Run(prog, func(pos token.Pos, format string, args ...any) {
			raw = append(raw, Diagnostic{
				Analyzer: name,
				Pos:      prog.Fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}

	directives, malformed := collectDirectives(prog)
	var out []Diagnostic
	seen := map[string]bool{}
	for _, d := range raw {
		if dir := lookupDirective(directives, d.Pos.Filename, d.Pos.Line, d.Analyzer); dir != nil {
			dir.used = true
			continue
		}
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	out = append(out, malformed...)
	for _, file := range sortedKeys(directives) {
		for _, dir := range directives[file] {
			if !dir.used {
				out = append(out, Diagnostic{
					Analyzer: "ridtvet",
					Pos:      dir.pos,
					Message: fmt.Sprintf("unused suppression for %s: nothing to suppress here",
						strings.Join(dir.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func sortedKeys(m map[string][]*directive) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectDirectives scans every module file's comments for suppression
// directives. Files shared between a package and its test variant are
// scanned once.
func collectDirectives(prog *Program) (map[string][]*directive, []Diagnostic) {
	byFile := map[string][]*directive{}
	var malformed []Diagnostic
	seenFile := map[string]bool{}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			pos := prog.Fset.Position(file.Pos())
			if seenFile[pos.Filename] {
				continue
			}
			seenFile[pos.Filename] = true
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					cpos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 || !strings.HasPrefix(rest, " ") {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ridtvet",
							Pos:      cpos,
							Message:  "malformed suppression: want \"//ridtvet:ignore <analyzer>[,<analyzer>] <justification>\"",
						})
						continue
					}
					byFile[cpos.Filename] = append(byFile[cpos.Filename], &directive{
						pos:       cpos,
						analyzers: strings.Split(fields[0], ","),
					})
				}
			}
		}
	}
	return byFile, malformed
}

// lookupDirective finds a directive covering a diagnostic of analyzer at
// file:line: on the same line (end-of-line directive) or the line above.
func lookupDirective(directives map[string][]*directive, file string, line int, analyzer string) *directive {
	for _, dir := range directives[file] {
		if (dir.pos.Line == line || dir.pos.Line == line-1) && dir.matches(analyzer) {
			return dir
		}
	}
	return nil
}

// --- shared analyzer helpers -------------------------------------------

// calleeFunc resolves the function a call expression invokes, looking
// through parentheses and generic instantiation. It returns nil for
// builtins, type conversions, and dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the declaring package path of obj with any test-
// variant suffix stripped, or "" for objects without a package.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return stripVariant(obj.Pkg().Path())
}

// isPkgNamed reports whether path names a package whose import path is
// name or ends in "/name". The analyzers match the module's own packages
// this way so the golden testdata trees can provide small stand-in
// packages ("parallel", "core") with the real call signatures.
func isPkgNamed(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// rootIdent peels selectors, indexing, dereferences, and parentheses off
// an assignable expression and returns the base identifier, or nil (e.g.
// for writes through a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf returns the object an identifier denotes, in either role.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// capturedVar returns the variable obj an identifier writes through if it
// is captured by (declared outside) lit: a free variable of the closure.
// Struct fields report as captured only through their receiver, so callers
// pass the root identifier of the assigned expression.
func capturedVar(info *types.Info, lit *ast.FuncLit, id *ast.Ident) *types.Var {
	v, ok := objOf(info, id).(*types.Var)
	if !ok || v.IsField() || declaredWithin(v, lit) {
		return nil
	}
	return v
}

// eachWrite calls fn for every syntactic write inside body: assignment
// LHSs (including :=, which fn can recognize via define) and ++/--
// operands. Writes hidden behind called functions or range statements are
// not visited.
func eachWrite(body ast.Node, fn func(target ast.Expr, define bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				fn(lhs, st.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			fn(st.X, false)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				if st.Key != nil {
					fn(st.Key, false)
				}
				if st.Value != nil {
					fn(st.Value, false)
				}
			}
		}
		return true
	})
}

// isInterface reports whether t is an interface type (but not a type
// parameter, whose dynamic representation is the instantiated concrete
// type).
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// shortPath trims a file path to its last two elements for messages.
func shortPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// deref unwraps one pointer level.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

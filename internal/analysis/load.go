// Package analysis implements ridtvet, the repository's concurrency-
// invariant analyzer suite: a set of static analyses over the module's
// source that machine-check the structural properties the runtime suites
// (-race, the hashtable fuzz oracles, the allocation-pin benchmarks) can
// only check dynamically. See DESIGN.md in this directory for the
// per-analyzer invariants and their known limits.
//
// The package is built on the standard library alone: package metadata
// comes from `go list -deps -test -json`, syntax from go/parser, and
// semantics from go/types with a hand-rolled importer that typechecks the
// whole dependency closure (standard library included) from source. The
// module has no external dependencies and the analyzers keep it that way.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one typechecked package of a loaded Program.
type Package struct {
	Path     string // import path as listed, e.g. "repro/internal/parallel [repro/internal/parallel.test]"
	BasePath string // Path with any test-variant suffix stripped
	Name     string
	Dir      string
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	InModule bool   // package belongs to the module under analysis
	ForTest  string // non-empty for a test variant: the base package it recompiles
	Errs     []error
}

// Program is a load of the module plus its full dependency closure.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package          // every typechecked package, dependencies first
	ByPath   map[string]*Package // keyed by Package.Path
	Module   []*Package          // the analysis targets (module packages, test variants included)

	// moduleFiles is the set of file names belonging to Module packages;
	// analyzers use it to restrict findings to code owned by this module.
	moduleFiles map[string]bool
}

// InModuleFile reports whether pos lies in a file of a Module package.
func (p *Program) InModuleFile(pos token.Pos) bool {
	return p.moduleFiles[p.Fset.Position(pos).Filename]
}

// Config controls Load.
type Config struct {
	// Dir is the directory to run `go list` in (the module root, or any
	// directory inside it).
	Dir string
	// Patterns are the `go list` package patterns; default ["./..."].
	Patterns []string
	// Tests includes test variants of matched packages (go list -test),
	// so _test.go files are typechecked and analyzed too.
	Tests bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
	Error   *struct{ Err string }
	DepOnly bool
}

// Load lists patterns (plus their full dependency closure) with the go
// tool and typechecks every package from source in dependency order. It
// returns an error if the go tool fails or if any package needed for the
// analysis does not typecheck.
func Load(cfg Config) (*Program, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// GoFiles is the complete compiled file list for every entry go list
	// emits — for a test variant "p [p.test]" it already includes the
	// package's _test.go files, and an external test package "p_test
	// [p.test]" is its own entry.
	args := []string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,Standard,ForTest,GoFiles,ImportMap,Module,Error,DepOnly"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	// CGO_ENABLED=0 keeps the file lists pure Go (cgo packages resolve to
	// their fallback implementations, which go/types can check from
	// source); GOWORK=off pins the load to the module at cfg.Dir.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, p)
	}

	prog := &Program{
		Fset:        token.NewFileSet(),
		ByPath:      map[string]*Package{},
		moduleFiles: map[string]bool{},
	}
	parsed := map[string]*ast.File{} // file name -> parsed file, shared across variants
	var loadErrs []string

	for _, lp := range listed {
		switch {
		case lp.ImportPath == "unsafe":
			prog.ByPath["unsafe"] = &Package{Path: "unsafe", BasePath: "unsafe", Types: types.Unsafe}
			continue
		case strings.HasSuffix(lp.ImportPath, ".test"):
			// The synthesized test main; its sole file is generated at
			// build time and nothing we keep imports it.
			continue
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
			continue
		}
		pkg := &Package{
			Path:     lp.ImportPath,
			BasePath: stripVariant(lp.ImportPath),
			Name:     lp.Name,
			Dir:      lp.Dir,
			ForTest:  lp.ForTest,
			InModule: lp.Module != nil && lp.Module.Main,
		}
		names := lp.GoFiles
		for _, name := range names {
			fn := name
			if !filepath.IsAbs(fn) {
				fn = filepath.Join(lp.Dir, name)
			}
			file, ok := parsed[fn]
			if !ok {
				file, err = parser.ParseFile(prog.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", lp.ImportPath, err))
					file = nil
				}
				parsed[fn] = file
			}
			if file != nil {
				pkg.Files = append(pkg.Files, file)
				if pkg.InModule {
					prog.moduleFiles[fn] = true
				}
			}
		}
		typecheck(prog, pkg, lp.ImportMap)
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkg.Path] = pkg
		for _, e := range pkg.Errs {
			loadErrs = append(loadErrs, e.Error())
		}
	}
	if len(loadErrs) > 0 {
		sort.Strings(loadErrs)
		return nil, fmt.Errorf("load failed:\n  %s", strings.Join(loadErrs, "\n  "))
	}

	// The analysis targets: module packages, with a plain package dropped
	// when its test variant (a superset of the same files) is present.
	superseded := map[string]bool{}
	for _, pkg := range prog.Packages {
		if pkg.ForTest != "" {
			superseded[pkg.ForTest] = true
		}
	}
	for _, pkg := range prog.Packages {
		if pkg.InModule && !superseded[pkg.Path] {
			prog.Module = append(prog.Module, pkg)
		}
	}
	return prog, nil
}

// typecheck type-checks pkg against the packages already in prog.
func typecheck(prog *Program, pkg *Package, importMap map[string]string) {
	conf := types.Config{
		Importer:    &resolver{prog: prog, importMap: importMap},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	if conf.Sizes == nil {
		conf.Sizes = types.SizesFor("gc", "amd64")
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	// Check reports every error through conf.Error; its return value
	// duplicates the first one.
	pkg.Types, _ = conf.Check(pkg.Path, prog.Fset, pkg.Files, pkg.Info)
}

// resolver resolves one package's imports against the already-typechecked
// set, applying the go list ImportMap (test-variant redirections).
type resolver struct {
	prog      *Program
	importMap map[string]string
}

func (r *resolver) Import(path string) (*types.Package, error) {
	return r.ImportFrom(path, "", 0)
}

func (r *resolver) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if p, ok := r.prog.ByPath[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded (dependency order)", path)
}

// stripVariant removes a test-variant suffix: "p [p.test]" -> "p".
func stripVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// LoadTree parses and typechecks a self-contained testdata package tree
// rooted at root: every directory root/src/<path> holding .go files
// becomes a package with import path <path>. Imports resolve first within
// the tree, then against base's packages (the standard library closure a
// prior Load pulled in). The returned Program's Module set is exactly the
// tree's packages, so RunAnalyzers on it analyzes only the testdata.
func LoadTree(base *Program, root string) (*Program, error) {
	src := filepath.Join(root, "src")
	var dirs []string
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("loadtree %s: %v", root, err)
	}

	prog := &Program{
		Fset:        base.Fset,
		ByPath:      map[string]*Package{},
		moduleFiles: map[string]bool{},
	}
	for path, pkg := range base.ByPath {
		prog.ByPath[path] = pkg
	}
	prog.Packages = append(prog.Packages, base.Packages...)

	treeDirs := map[string]string{} // import path -> dir
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		hasGo := false
		for _, ent := range ents {
			if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			continue
		}
		rel, err := filepath.Rel(src, dir)
		if err != nil {
			return nil, err
		}
		treeDirs[filepath.ToSlash(rel)] = dir
	}

	loading := map[string]bool{}
	var ensure func(path string) error
	ensure = func(path string) error {
		if p, ok := prog.ByPath[path]; ok && p.Types != nil {
			return nil
		}
		dir, ok := treeDirs[path]
		if !ok {
			return fmt.Errorf("import %q: not in tree and not in the base load", path)
		}
		if loading[path] {
			return fmt.Errorf("import cycle through %q", path)
		}
		loading[path] = true
		defer delete(loading, path)

		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		pkg := &Package{Path: path, BasePath: path, Dir: dir, InModule: true}
		for _, ent := range ents {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
				continue
			}
			fn := filepath.Join(dir, ent.Name())
			file, err := parser.ParseFile(prog.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			pkg.Files = append(pkg.Files, file)
			prog.moduleFiles[fn] = true
		}
		for _, file := range pkg.Files {
			pkg.Name = file.Name.Name
			for _, imp := range file.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if err := ensure(p); err != nil {
					return err
				}
			}
		}
		typecheck(prog, pkg, nil)
		if len(pkg.Errs) > 0 {
			return fmt.Errorf("testdata package %s: %v", path, pkg.Errs[0])
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[path] = pkg
		prog.Module = append(prog.Module, pkg)
		return nil
	}

	paths := make([]string, 0, len(treeDirs))
	for path := range treeDirs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := ensure(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix flags mixed atomic/plain access: once any site in the module
// accesses a struct field (or package-level variable) through a raw
// sync/atomic function, every other access to that field anywhere in the
// module must be atomic too. This is the invariant the seqlock and
// claim-word protocols depend on and that -race only checks for the
// schedules it happens to see: a single plain read of a claim word is a
// data race on every weakly-ordered target even when the test schedule
// never trips it.
//
// Fields of the sync/atomic wrapper types (atomic.Int64, atomic.Uint64,
// atomic.Pointer, ...) are safe by construction — their plain words are
// unexported — so the analyzer tracks only addresses passed to the raw
// functions (atomic.AddInt64(&s.f, ...) and friends). Known limits: an
// address smuggled through a helper (p := &s.f; atomic.AddInt64(p, 1)) is
// tracked at the smuggling site only, and initialization through a keyed
// composite literal is not flagged (a literal builds a private, not yet
// published value).
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "every access to a sync/atomic-accessed field must be atomic",
	Run:  runAtomicmix,
}

// atomicTarget resolves the variable an atomic call operates on when arg
// has the form &expr with expr naming a struct field or package-level
// variable, along with the operand expression node.
func atomicTarget(info *types.Info, arg ast.Expr) (*types.Var, ast.Expr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	operand := ast.Unparen(un.X)
	switch x := operand.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var), operand
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v, operand
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, operand
		}
	}
	return nil, nil
}

// trackable reports whether v is a variable atomicmix reasons about: a
// struct field, or a package-level variable, declared in module source.
func trackable(prog *Program, v *types.Var) bool {
	if v == nil || !prog.InModuleFile(v.Pos()) {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

func runAtomicmix(prog *Program, report ReportFunc) {
	type site struct {
		pos token.Position
	}
	atomicSites := map[string]site{} // decl position of var -> first atomic site
	operandNodes := map[ast.Expr]bool{}

	// Pass 1: collect every &field operand of a raw sync/atomic call.
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || pkgPathOf(fn) != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					v, operand := atomicTarget(info, arg)
					if operand != nil {
						operandNodes[operand] = true
					}
					if trackable(prog, v) {
						key := prog.Fset.Position(v.Pos()).String()
						if _, ok := atomicSites[key]; !ok {
							atomicSites[key] = site{pos: prog.Fset.Position(call.Pos())}
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicSites) == 0 {
		return
	}

	// Pass 2: every other appearance of a tracked variable is a plain
	// access and gets flagged.
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			consumed := map[*ast.Ident]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				var v *types.Var
				var at ast.Expr
				switch x := n.(type) {
				case *ast.SelectorExpr:
					consumed[x.Sel] = true
					if operandNodes[x] {
						return true
					}
					if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
						v, at = sel.Obj().(*types.Var), x
					} else if u, ok := info.Uses[x.Sel].(*types.Var); ok {
						v, at = u, x
					}
				case *ast.Ident:
					if consumed[x] || operandNodes[ast.Expr(x)] {
						return true
					}
					if u, ok := info.Uses[x].(*types.Var); ok {
						v, at = u, x
					}
				default:
					return true
				}
				if v == nil || !trackable(prog, v) {
					return true
				}
				key := prog.Fset.Position(v.Pos()).String()
				if s, ok := atomicSites[key]; ok {
					report(at.Pos(), "plain access to %q, which is accessed atomically (e.g. at %s:%d); every access must use sync/atomic",
						v.Name(), shortPath(s.pos.Filename), s.pos.Line)
				}
				return true
			})
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Purecombine checks the determinism contract of the parallel reduction
// primitives. parallel.Reduce and parallel.ScanExclusive combine partial
// results over a fixed pairwise tree, and parallel.ReduceMinIndex prunes
// predicate evaluations by reservation order — the bit-identical output
// guarantee holds only if the element function, combine operator, and
// predicate are deterministic and side-effect free. A combine that ranges
// over a map, consults math/rand or the clock, or writes a captured
// variable produces schedule-dependent results that no test rerun will
// reproduce.
//
// The analyzer inspects function literals passed in those operand
// positions and flags: map iteration, calls into math/rand, math/rand/v2,
// or time, and writes to variables declared outside the literal. Known
// limits: operands passed as named functions or through variables are not
// traced, and writes through captured pointers (p := &x outside, *p = ...
// routed via a call) are visible only at the direct-assignment shapes
// eachWrite sees.
var Purecombine = &Analyzer{
	Name: "purecombine",
	Doc:  "combine/reduce operands of the parallel primitives must be deterministic and pure",
	Run:  runPurecombine,
}

// combineOperands maps parallel-package functions to the argument indices
// holding determinism-sensitive operands.
var combineOperands = map[string][]int{
	"Reduce":         {3, 4}, // f, op
	"ScanExclusive":  {2},    // op
	"ReduceMinIndex": {3},    // pred
}

// nondetPkgs are packages whose use inside a combine makes the result
// schedule- or time-dependent.
var nondetPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"time":         true,
}

func runPurecombine(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !isPkgNamed(pkgPathOf(fn), "parallel") {
					return true
				}
				idxs, ok := combineOperands[fn.Name()]
				if !ok {
					return true
				}
				for _, i := range idxs {
					if i >= len(call.Args) {
						continue
					}
					if lit, ok := ast.Unparen(call.Args[i]).(*ast.FuncLit); ok {
						checkCombinePurity(info, fn.Name(), lit, report)
					}
				}
				return true
			})
		}
	}
}

func checkCombinePurity(info *types.Info, callee string, lit *ast.FuncLit, report ReportFunc) {
	// Map iteration: order is randomized per run.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(x.Pos(), "operand of parallel.%s ranges over a map; iteration order is nondeterministic", callee)
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && nondetPkgs[pkgPathOf(fn)] {
				report(x.Pos(), "operand of parallel.%s calls %s.%s; combines must be deterministic across schedules and reruns",
					callee, fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
	// Captured writes: a combine may run any number of times, concurrently,
	// in schedule order — writing anything it closes over is both a race
	// and a determinism leak.
	eachWrite(lit.Body, func(target ast.Expr, define bool) {
		if define {
			return
		}
		root := rootIdent(target)
		if root == nil {
			return
		}
		if v := capturedVar(info, lit, root); v != nil {
			report(target.Pos(), "operand of parallel.%s writes captured variable %q; combines must be pure", callee, v.Name())
		}
	})
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Parclosure flags the data-race shapes in closures handed to the
// parallel loop primitives — the bugs -race catches only when the
// schedule cooperates. A body passed to parallel.Blocks/BlocksIndexed/
// BlocksN/For/ForGrain or a PackInto predicate runs concurrently across
// block ranges, so it may write captured state only at slice indices
// derived from its own range: a write to a captured scalar, a captured
// map, or a slice index that does not mention any range-local variable is
// executed by every block at once.
//
// The core.Type2Hooks contract is checked the same way: a RunRegular
// closure is invoked in parallel over disjoint [lo, hi) blocks (so its
// writes must be range-derived), and IsSpecial is documented as "called
// concurrently ... it must not mutate shared state", so any captured
// write there is flagged. sync/atomic and parallel.PriorityCell updates
// are method/function calls, not assignments, and pass the check by
// construction. Known limits: bodies passed as named functions are not
// traced, and whether a range-derived index is actually disjoint across
// blocks is the caller's arithmetic, not the analyzer's.
var Parclosure = &Analyzer{
	Name: "parclosure",
	Doc:  "parallel loop bodies may write captured state only at range-derived indices",
	Run:  runParclosure,
}

// parBodyArgs maps parallel-package functions to the argument index of
// their concurrently-invoked closure.
var parBodyArgs = map[string]int{
	"For":           2,
	"ForGrain":      3,
	"Blocks":        3,
	"BlocksIndexed": 3,
	"BlocksN":       3,
	"PackInto":      2,
	// Cancelable and context-driven variants: same bodies, one extra
	// token/context argument before the closure.
	"ForCancel":      3,
	"ForGrainCancel": 4,
	"BlocksCancel":   4,
	"BlocksNCancel":  4,
	"ForCtx":         3,
	"ForGrainCtx":    4,
	"BlocksCtx":      4,
}

// hookFields are the core.Type2Hooks fields whose closures run
// concurrently; the value says whether any captured write is banned
// (IsSpecial) or only non-range-derived ones (RunRegular).
var hookFields = map[string]bool{
	"RunRegular": false,
	"IsSpecial":  true,
}

func runParclosure(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					fn := calleeFunc(info, x)
					if fn == nil || !isPkgNamed(pkgPathOf(fn), "parallel") {
						return true
					}
					idx, ok := parBodyArgs[fn.Name()]
					if !ok || idx >= len(x.Args) {
						return true
					}
					if lit, ok := ast.Unparen(x.Args[idx]).(*ast.FuncLit); ok {
						checkParBody(info, "parallel."+fn.Name()+" body", lit, false, report)
					}
				case *ast.CompositeLit:
					if !isType2Hooks(info, x) {
						return true
					}
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						banAll, hook := hookFields[key.Name]
						if !hook {
							continue
						}
						if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
							checkParBody(info, "Type2Hooks."+key.Name, lit, banAll, report)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok || i >= len(x.Rhs) {
							continue
						}
						banAll, hook := hookFields[sel.Sel.Name]
						if !hook {
							continue
						}
						if tv, ok := info.Types[sel.X]; !ok || !isType2HooksType(tv.Type) {
							continue
						}
						if lit, ok := ast.Unparen(x.Rhs[i]).(*ast.FuncLit); ok {
							checkParBody(info, "Type2Hooks."+sel.Sel.Name, lit, banAll, report)
						}
					}
				}
				return true
			})
		}
	}
}

func isType2Hooks(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	return ok && isType2HooksType(tv.Type)
}

func isType2HooksType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Type2Hooks" && isPkgNamed(pkgPathOf(obj), "core")
}

// checkParBody flags concurrent-write hazards in a parallel closure body.
// With banAll set, every captured write is flagged (the IsSpecial
// contract); otherwise writes are allowed through captured slices at
// indices that mention at least one variable local to the closure.
func checkParBody(info *types.Info, what string, lit *ast.FuncLit, banAll bool, report ReportFunc) {
	eachWrite(lit.Body, func(target ast.Expr, define bool) {
		if define {
			return
		}
		root := rootIdent(target)
		if root == nil {
			return
		}
		v := capturedVar(info, lit, root)
		if v == nil {
			return
		}
		if banAll {
			report(target.Pos(), "%s writes captured %q, but IsSpecial is called concurrently and must not mutate shared state", what, v.Name())
			return
		}
		// Scan the access path: a write is range-disjoint if some indexing
		// step on the way down mentions a closure-local variable.
		hasIndex, indexLocal, mapWrite := false, false, false
		for e := ast.Unparen(target); e != nil; {
			switch t := e.(type) {
			case *ast.IndexExpr:
				hasIndex = true
				if tv, ok := info.Types[t.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						mapWrite = true
					}
				}
				if mentionsLocal(info, lit, t.Index) {
					indexLocal = true
				}
				e = t.X
			case *ast.SelectorExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			case *ast.ParenExpr:
				e = t.X
			default:
				e = nil
			}
		}
		switch {
		case mapWrite:
			report(target.Pos(), "%s writes captured map %q concurrently; maps are not safe for parallel writes", what, v.Name())
		case hasIndex && !indexLocal:
			report(target.Pos(), "%s writes captured %q at an index that does not depend on the block range; concurrent blocks write the same element", what, v.Name())
		case !hasIndex:
			report(target.Pos(), "%s writes captured %q from concurrent blocks; use a per-block slot or an atomic", what, v.Name())
		}
	})
}

// mentionsLocal reports whether expr references any variable declared
// inside lit (a parameter or body local — the range-derived seeds).
func mentionsLocal(info *types.Info, lit *ast.FuncLit, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if v, ok := objOf(info, id).(*types.Var); ok && !v.IsField() && declaredWithin(v, lit) {
			found = true
		}
		return !found
	})
	return found
}

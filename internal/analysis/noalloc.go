package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function whose body must contain no allocating
// construct. It turns the allocation-pin benchmarks of the hot paths
// (seqlock slot writes, steal-loop claims, round-engine leaves) into a
// compile-time contract: the pins prove a path allocated nothing on the
// schedules measured, the directive keeps allocating constructs from
// being written into it at all.
const noallocDirective = "//ridt:noalloc"

// Noalloc checks functions annotated //ridt:noalloc for allocating
// constructs: make/new/append, slice/map/addressed composite literals,
// capturing closures, implicit interface boxing (call arguments,
// assignments, returns, conversions), string concatenation and
// string<->[]byte/[]rune conversions, map writes, and goroutine starts.
//
// The check is shallow by design: a call into another function is not
// traced (annotate the callee if it is part of the contract), escape
// analysis is not modeled (a flagged construct the compiler provably
// keeps on the stack can be suppressed with a justification), and
// allocations inside the runtime (map growth during reads, interface
// method dispatch) are out of scope.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //ridt:noalloc must contain no allocating constructs",
	Run:  runNoalloc,
}

func hasNoallocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

func runNoalloc(prog *Program, report ReportFunc) {
	seenFile := map[string]bool{}
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			fn := prog.Fset.Position(file.Pos()).Filename
			if seenFile[fn] {
				continue
			}
			seenFile[fn] = true
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasNoallocDirective(fd.Doc) {
					continue
				}
				sig, _ := info.Defs[fd.Name].(*types.Func)
				if sig == nil {
					continue
				}
				checkNoalloc(info, fd, sig.Type().(*types.Signature), report)
			}
		}
	}
}

// checkNoalloc walks one annotated function body.
func checkNoalloc(info *types.Info, fd *ast.FuncDecl, sig *types.Signature, report ReportFunc) {
	name := fd.Name.Name
	// results tracks the result tuple of the function owning each visited
	// return statement (nested literals have their own).
	var walk func(n ast.Node, results *types.Tuple)
	walk = func(n ast.Node, results *types.Tuple) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if capturesOutside(info, x) {
					report(x.Pos(), "%s is //ridt:noalloc but creates a capturing closure (heap-allocated if it escapes)", name)
				}
				var res *types.Tuple
				if s, ok := typeOf(info, x).(*types.Signature); ok {
					res = s.Results()
				}
				walk(x.Body, res)
				return false
			case *ast.CallExpr:
				checkCallNoalloc(info, name, x, report)
			case *ast.CompositeLit:
				switch deref(typeOf(info, x)).Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "%s is //ridt:noalloc but builds a slice literal", name)
				case *types.Map:
					report(x.Pos(), "%s is //ridt:noalloc but builds a map literal", name)
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
						report(x.Pos(), "%s is //ridt:noalloc but takes the address of a composite literal (heap-allocated if it escapes)", name)
					}
				}
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(typeOf(info, x)) {
					report(x.Pos(), "%s is //ridt:noalloc but concatenates strings", name)
				}
			case *ast.GoStmt:
				report(x.Pos(), "%s is //ridt:noalloc but starts a goroutine", name)
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if _, isMap := typeOf(info, idx.X).Underlying().(*types.Map); isMap {
							report(lhs.Pos(), "%s is //ridt:noalloc but writes a map entry (may allocate on growth)", name)
						}
					}
					if x.Tok == token.ASSIGN && i < len(x.Rhs) {
						checkBoxing(info, name, typeOf(info, lhs), x.Rhs[i], report)
					}
				}
			case *ast.ReturnStmt:
				if results != nil && len(x.Results) == results.Len() {
					for i, res := range x.Results {
						checkBoxing(info, name, results.At(i).Type(), res, report)
					}
				}
			case *ast.ValueSpec:
				if x.Type != nil {
					dst := typeOf(info, x.Type)
					for _, val := range x.Values {
						checkBoxing(info, name, dst, val, report)
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, sig.Results())
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesOutside reports whether lit references a variable declared
// outside itself; a closure with no free variables compiles to a static
// function value and does not allocate.
func capturesOutside(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() &&
			!declaredWithin(v, lit) && !isPackageLevel(v) {
			captured = true
		}
		return true
	})
	return captured
}

func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// checkCallNoalloc flags allocation at a call site: the allocating
// builtins, allocation-implying conversions, and implicit boxing of
// concrete arguments into interface parameters.
func checkCallNoalloc(info *types.Info, name string, call *ast.CallExpr, report ReportFunc) {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "%s is //ridt:noalloc but calls make", name)
			case "new":
				report(call.Pos(), "%s is //ridt:noalloc but calls new", name)
			case "append":
				report(call.Pos(), "%s is //ridt:noalloc but calls append (grows the backing array when capacity runs out)", name)
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, typeOf(info, call.Args[0])
		switch {
		case isInterface(dst) && !isInterface(src) && !isUntypedNil(info, call.Args[0]):
			report(call.Pos(), "%s is //ridt:noalloc but converts %s to interface %s (boxes the value)", name, src, dst)
		case isStringType(dst) && isByteOrRuneSlice(src):
			report(call.Pos(), "%s is //ridt:noalloc but converts a byte/rune slice to string (copies)", name)
		case isByteOrRuneSlice(dst) && isStringType(src):
			report(call.Pos(), "%s is //ridt:noalloc but converts a string to a byte/rune slice (copies)", name)
		}
		return
	}
	// Implicit boxing of arguments into interface parameters.
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			checkBoxing(info, name, pt, arg, report)
		}
	}
}

// checkBoxing reports an implicit concrete-to-interface conversion of
// expr into target type dst.
func checkBoxing(info *types.Info, name string, dst types.Type, expr ast.Expr, report ReportFunc) {
	if dst == nil || !isInterface(dst) {
		return
	}
	src := typeOf(info, expr)
	if isInterface(src) || isUntypedNil(info, expr) || src == types.Typ[types.Invalid] {
		return
	}
	if _, isTP := src.(*types.TypeParam); isTP {
		return // instantiation-dependent; the instantiated site decides
	}
	report(expr.Pos(), "%s is //ridt:noalloc but implicitly boxes %s into %s", name, src, dst)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, isBasic := tv.Type.(*types.Basic)
	return tv.IsNil() || (isBasic && b.Kind() == types.UntypedNil)
}

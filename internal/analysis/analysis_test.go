package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The stdlib base load is shared across the golden tests: one typecheck of
// the sync/atomic + math/rand + time closures covers every import the
// testdata trees make.
var (
	baseOnce sync.Once
	baseProg *Program
	baseErr  error
)

func stdlibBase(t *testing.T) *Program {
	t.Helper()
	baseOnce.Do(func() {
		baseProg, baseErr = Load(Config{
			Dir:      ".",
			Patterns: []string{"sync/atomic", "math/rand", "time"},
		})
	})
	if baseErr != nil {
		t.Fatalf("loading stdlib base: %v", baseErr)
	}
	return baseProg
}

// expectation is one `// want` comment in a golden file: the diagnostic
// the analyzer must produce on that line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRe extracts the backquoted patterns of a want comment:
//
//	code // want `pattern` `another`
var wantRe = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, found := strings.Cut(sc.Text(), "// want ")
			if !found {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(after, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &expectation{file: path, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no // want expectations under %s", root)
	}
	return wants
}

// runGolden loads testdata/<tree> on top of the stdlib base, runs exactly
// one analyzer, and diffs the diagnostics against the tree's `// want`
// comments both ways: every diagnostic must be expected, every
// expectation must fire.
func runGolden(t *testing.T, a *Analyzer, tree string) {
	t.Helper()
	prog, err := LoadTree(stdlibBase(t), filepath.Join("testdata", tree))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{a})
	wants := collectWants(t, filepath.Join("testdata", tree, "src"))
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestAtomicmixGolden(t *testing.T)   { runGolden(t, Atomicmix, "atomicmix") }
func TestAtomicalignGolden(t *testing.T) { runGolden(t, Atomicalign, "atomicalign") }
func TestPurecombineGolden(t *testing.T) { runGolden(t, Purecombine, "purecombine") }
func TestParclosureGolden(t *testing.T)  { runGolden(t, Parclosure, "parclosure") }
func TestNoallocGolden(t *testing.T)     { runGolden(t, Noalloc, "noalloc") }

// TestSuppression drives the testdata/suppress tree, which seeds one
// noalloc finding per function: grow and growInline carry valid
// directives (line-above with an analyzer list, and same-line), stale
// carries a directive with nothing under it, and bad carries one without
// a justification. Expected surviving diagnostics: the unused directive,
// the malformed directive, and bad's unsuppressed append.
func TestSuppression(t *testing.T) {
	prog, err := LoadTree(stdlibBase(t), filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{Noalloc})
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(diags), strings.Join(got, "\n"))
	}
	expect := []string{
		`\[ridtvet\] unused suppression for noalloc`,
		`\[ridtvet\] malformed suppression`,
		`\[noalloc\] bad is //ridt:noalloc but calls append`,
	}
	for _, pat := range expect {
		re := regexp.MustCompile(pat)
		found := false
		for _, g := range got {
			if re.MatchString(g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%s", pat, strings.Join(got, "\n"))
		}
	}
	// The count pin above doubles as the suppression check: if grow's or
	// growInline's append had survived, there would be five diagnostics.
}

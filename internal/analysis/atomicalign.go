package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Atomicalign checks the sync/atomic 64-bit alignment contract for 32-bit
// targets (the "Bugs" note in sync/atomic): on 386 and arm, a 64-bit
// atomic operand must be 64-bit aligned, and the compiler only guarantees
// that for the first word of an allocated struct, slice element, global,
// or local variable. The analyzer recomputes every &struct-field operand's
// offset with 32-bit (GOARCH=386) sizes — int32 metadata next to a uint64
// word moves the word to offset 4 — and flags any 64-bit operand whose
// offset is not a multiple of 8, plus slice/array elements whose element
// size is not a multiple of 8 (element i inherits misalignment for odd i).
//
// Fields of type atomic.Int64/atomic.Uint64 are exempt: since Go 1.19 the
// compiler 8-aligns them everywhere. Known limit: the module is
// typechecked once for the host GOARCH, so structs whose shape differs
// under 386 build tags are checked in their host shape.
var Atomicalign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operands must be 8-byte aligned on 32-bit targets",
	Run:  runAtomicalign,
}

// sizes32 are the gc layout rules for the stricter 32-bit targets.
var sizes32 = types.SizesFor("gc", "386")

func is64BitAtomic(name string) bool {
	return strings.Contains(name, "Int64") || strings.Contains(name, "Uint64")
}

// align32 walks an addressable expression and computes the operand's byte
// offset from its nearest guaranteed-8-aligned base under 32-bit layout.
// ok is false when the offset is indeterminate in a way that cannot be
// proven aligned (a slice/array element whose size is not a multiple of
// 8). The desc return names the outermost struct for the message.
func align32(info *types.Info, e ast.Expr) (off int64, desc string, ok bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, isSel := info.Selections[x]
		if !isSel || sel.Kind() != types.FieldVal {
			return 0, "", true // qualified package var: globals are 8-aligned
		}
		// Fold the promoted-field chain: pointer hops reset the base to a
		// fresh allocation (8-aligned); value hops accumulate offsets.
		t := sel.Recv()
		baseOff, baseDesc, baseOK := int64(0), "", true
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			baseOff, baseDesc, baseOK = align32(info, x.X)
		}
		off = baseOff
		for _, idx := range sel.Index() {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = deref(t)
				off = 0
				baseDesc = ""
				baseOK = true
			}
			st, isStruct := t.Underlying().(*types.Struct)
			if !isStruct {
				return 0, "", true
			}
			fields := make([]*types.Var, st.NumFields())
			for i := range fields {
				fields[i] = st.Field(i)
			}
			off += sizes32.Offsetsof(fields)[idx]
			if baseDesc == "" {
				baseDesc = types.TypeString(t, func(p *types.Package) string { return p.Name() })
			}
			t = st.Field(idx).Type()
		}
		return off, baseDesc, baseOK
	case *ast.IndexExpr:
		tv, okT := info.Types[x.X]
		if !okT {
			return 0, "", true
		}
		var elem types.Type
		switch seq := tv.Type.Underlying().(type) {
		case *types.Slice:
			elem = seq.Elem()
		case *types.Array:
			elem = seq.Elem()
		case *types.Pointer: // *[N]T indexing
			if arr, isArr := seq.Elem().Underlying().(*types.Array); isArr {
				elem = arr.Elem()
			}
		}
		if elem == nil {
			return 0, "", true
		}
		if sizes32.Sizeof(elem)%8 != 0 {
			return 0, fmt.Sprintf("[]%s", types.TypeString(elem, func(p *types.Package) string { return p.Name() })), false
		}
		return 0, "", true // 8-aligned backing array + 8-multiple stride
	case *ast.StarExpr:
		return 0, "", true // fresh allocation base
	default:
		return 0, "", true // plain variable: first word guarantee applies
	}
}

// safeAlign32 guards align32 against layout queries go/types cannot
// answer (e.g. fields of uninstantiated type-parameter structs); an
// unanswerable operand is treated as aligned.
func safeAlign32(info *types.Info, e ast.Expr) (off int64, desc string, ok bool) {
	defer func() {
		if recover() != nil {
			off, desc, ok = 0, "", true
		}
	}()
	return align32(info, e)
}

func runAtomicalign(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Module {
		info := pkg.Info
		for _, file := range pkg.Files {
			if !prog.InModuleFile(file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || pkgPathOf(fn) != "sync/atomic" || !is64BitAtomic(fn.Name()) {
					return true
				}
				for _, arg := range call.Args {
					_, operand := atomicTarget(info, arg)
					if operand == nil {
						continue
					}
					off, desc, aligned := safeAlign32(info, operand)
					switch {
					case !aligned:
						report(arg.Pos(), "64-bit atomic operand indexes %s, whose 32-bit element size is not a multiple of 8; odd elements are misaligned on 386/arm", desc)
					case off%8 != 0:
						report(arg.Pos(), "64-bit atomic operand sits at offset %d in %s under 32-bit layout; move it first or pad so the offset is a multiple of 8 (sync/atomic alignment bug note)", off, desc)
					}
				}
				return true
			})
		}
	}
}

package geom

import "math"

// Disk is a closed disk in the plane.
type Disk struct {
	Center Point
	R2     float64 // squared radius; negative means the empty disk
}

// EmptyDisk is the disk containing no points.
var EmptyDisk = Disk{R2: -1}

// Contains reports whether p lies in the closed disk, with a small relative
// tolerance to absorb floating-point construction error.
func (d Disk) Contains(p Point) bool {
	if d.R2 < 0 {
		return false
	}
	return Dist2(d.Center, p) <= d.R2*(1+1e-12)+1e-300
}

// StrictlyOutside reports whether p lies strictly outside the disk by more
// than the construction tolerance. The smallest-enclosing-disk algorithm
// uses this as its "violates current disk" test.
func (d Disk) StrictlyOutside(p Point) bool { return !d.Contains(p) }

// Radius returns the radius of d (0 for the empty disk).
func (d Disk) Radius() float64 {
	if d.R2 < 0 {
		return 0
	}
	return math.Sqrt(d.R2)
}

// DiskFrom2 returns the smallest disk with p and q on its boundary
// (the disk with diameter pq).
func DiskFrom2(p, q Point) Disk {
	c := Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
	return Disk{Center: c, R2: Dist2(c, p)}
}

// DiskFrom3 returns the disk through the three points. If they are
// collinear it falls back to the smallest disk containing them.
func DiskFrom3(a, b, c Point) Disk {
	if Orient2D(a, b, c) == 0 {
		// Collinear: the farthest pair's diametral disk covers all three.
		d1, d2, d3 := DiskFrom2(a, b), DiskFrom2(a, c), DiskFrom2(b, c)
		best := d1
		if d2.R2 > best.R2 {
			best = d2
		}
		if d3.R2 > best.R2 {
			best = d3
		}
		return best
	}
	ctr := Circumcenter(a, b, c)
	return Disk{Center: ctr, R2: Dist2(ctr, a)}
}

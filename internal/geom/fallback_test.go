package geom

import (
	"testing"

	"repro/internal/rng"
)

// TestExactFallbackRates pins the two-stage predicate design: benign random
// inputs must almost never leave the float fast path, while exactly
// cocircular inputs must always reach the exact path (and get the right
// answer there).
func TestExactFallbackRates(t *testing.T) {
	r := rng.New(1)
	var st PredicateStats
	pts := UniformSquare(r, 4000)
	for i := 0; i+3 < len(pts); i += 4 {
		InCircleStats(pts[i], pts[i+1], pts[i+2], pts[i+3], &st)
	}
	if st.InCircleCalls == 0 {
		t.Fatal("no calls recorded")
	}
	if rate := float64(st.InCircleExact) / float64(st.InCircleCalls); rate > 0.01 {
		t.Fatalf("benign exact-fallback rate %.4f too high", rate)
	}

	// Exactly cocircular quadruples: axis points of a circle centered at a
	// float-exact center with float-exact radius.
	var co PredicateStats
	for i := 0; i < 100; i++ {
		cx, cy := float64(i), float64(2*i)
		rad := float64(i + 1)
		a := Point{cx + rad, cy}
		b := Point{cx, cy + rad}
		c := Point{cx - rad, cy}
		d := Point{cx, cy - rad}
		if got := InCircleStats(a, b, c, d, &co); got != 0 {
			t.Fatalf("cocircular quadruple %d reported %d", i, got)
		}
	}
	if co.InCircleExact != co.InCircleCalls {
		t.Fatalf("cocircular inputs must always take the exact path: %+v", co)
	}
}

// TestOrientFallbackOnTinyPerturbations verifies the fast-path error bound
// is conservative: over many near-degenerate triples the filtered result
// always agrees with exact evaluation (Orient2DStats falls back whenever
// uncertain, so a disagreement would mean the bound is wrong).
func TestOrientFallbackOnTinyPerturbations(t *testing.T) {
	r := rng.New(2)
	var st PredicateStats
	for i := 0; i < 5000; i++ {
		a := Point{r.Float64(), r.Float64()}
		b := Point{a.X + (r.Float64()-0.5)*1e-3, a.Y + (r.Float64()-0.5)*1e-3}
		// c on segment ab plus a perturbation at the edge of precision.
		tt := r.Float64()
		c := Point{
			a.X + tt*(b.X-a.X) + (r.Float64()-0.5)*1e-18,
			a.Y + tt*(b.Y-a.Y) + (r.Float64()-0.5)*1e-18,
		}
		got := Orient2DStats(a, b, c, &st)
		want := orient2DExact(a, b, c)
		if got != want {
			t.Fatalf("filtered orient %d != exact %d at %v %v %v", got, want, a, b, c)
		}
	}
	if st.Orient2DExact == 0 {
		t.Fatal("expected some exact fallbacks on near-degenerate inputs")
	}
}

// Package geom provides the planar geometric types and robust predicates
// used by the Delaunay triangulation, closest pair, linear programming and
// smallest-enclosing-disk algorithms.
//
// The two predicates the paper's algorithms rely on — Orient2D (line-side
// test) and InCircle (encroachment test, Algorithm 4's InCircle) — are
// evaluated with a float64 fast path guarded by a forward error bound; when
// the bound cannot certify the sign, the determinant is recomputed exactly
// with math/big rational arithmetic. This two-stage scheme gives exact
// results at floating-point speed on non-degenerate inputs.
package geom

import (
	"math"
	"math/big"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector (represented as a Point).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Sqrt(Dist2(p, q)) }

// Machine epsilon for float64 (2^-53) and the static error-bound
// coefficients from Shewchuk's "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates" (1997).
const (
	epsilon        = 1.0 / (1 << 53)
	ccwErrBoundA   = (3 + 16*epsilon) * epsilon
	inCircleBoundA = (10 + 96*epsilon) * epsilon
)

// PredicateStats counts predicate evaluations; the exact-fallback rate is a
// design ablation in DESIGN.md. Counters are not atomic: use one instance
// per goroutine or accept approximate totals. A nil *PredicateStats is
// valid and records nothing.
type PredicateStats struct {
	Orient2DCalls int64
	Orient2DExact int64
	InCircleCalls int64
	InCircleExact int64
}

func (s *PredicateStats) addOrient(exact bool) {
	if s == nil {
		return
	}
	s.Orient2DCalls++
	if exact {
		s.Orient2DExact++
	}
}

func (s *PredicateStats) addInCircle(exact bool) {
	if s == nil {
		return
	}
	s.InCircleCalls++
	if exact {
		s.InCircleExact++
	}
}

// Merge adds other's counts into s.
func (s *PredicateStats) Merge(other PredicateStats) {
	s.Orient2DCalls += other.Orient2DCalls
	s.Orient2DExact += other.Orient2DExact
	s.InCircleCalls += other.InCircleCalls
	s.InCircleExact += other.InCircleExact
}

// Orient2D returns +1 if a, b, c are in counterclockwise order, -1 if
// clockwise, and 0 if collinear. Exact.
func Orient2D(a, b, c Point) int {
	return Orient2DStats(a, b, c, nil)
}

// Orient2DStats is Orient2D with optional instrumentation.
func Orient2DStats(a, b, c Point, st *PredicateStats) int {
	detL := (a.X - c.X) * (b.Y - c.Y)
	detR := (a.Y - c.Y) * (b.X - c.X)
	det := detL - detR
	var detSum float64
	switch {
	case detL > 0:
		if detR <= 0 {
			st.addOrient(false)
			return sign(det)
		}
		detSum = detL + detR
	case detL < 0:
		if detR >= 0 {
			st.addOrient(false)
			return sign(det)
		}
		detSum = -detL - detR
	default:
		st.addOrient(false)
		return sign(det)
	}
	errBound := ccwErrBoundA * detSum
	if det >= errBound || -det >= errBound {
		st.addOrient(false)
		return sign(det)
	}
	st.addOrient(true)
	return orient2DExact(a, b, c)
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func rat(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }

func orient2DExact(a, b, c Point) int {
	acx := new(big.Rat).Sub(rat(a.X), rat(c.X))
	bcy := new(big.Rat).Sub(rat(b.Y), rat(c.Y))
	acy := new(big.Rat).Sub(rat(a.Y), rat(c.Y))
	bcx := new(big.Rat).Sub(rat(b.X), rat(c.X))
	l := new(big.Rat).Mul(acx, bcy)
	r := new(big.Rat).Mul(acy, bcx)
	return l.Cmp(r)
}

// InCircle returns +1 if d lies strictly inside the circumcircle of the
// counterclockwise triangle (a, b, c), -1 if strictly outside, and 0 if on
// the circle. If (a, b, c) is clockwise the sign is flipped by the caller's
// orientation convention; Delaunay code always passes CCW triangles. Exact.
func InCircle(a, b, c, d Point) int {
	return InCircleStats(a, b, c, d, nil)
}

// InCircleStats is InCircle with optional instrumentation.
func InCircleStats(a, b, c, d Point, st *PredicateStats) int {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := inCircleBoundA * permanent
	if det > errBound || -det > errBound {
		st.addInCircle(false)
		return sign(det)
	}
	st.addInCircle(true)
	return inCircleExact(a, b, c, d)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func inCircleExact(a, b, c, d Point) int {
	adx := new(big.Rat).Sub(rat(a.X), rat(d.X))
	ady := new(big.Rat).Sub(rat(a.Y), rat(d.Y))
	bdx := new(big.Rat).Sub(rat(b.X), rat(d.X))
	bdy := new(big.Rat).Sub(rat(b.Y), rat(d.Y))
	cdx := new(big.Rat).Sub(rat(c.X), rat(d.X))
	cdy := new(big.Rat).Sub(rat(c.Y), rat(d.Y))

	lift := func(x, y *big.Rat) *big.Rat {
		xx := new(big.Rat).Mul(x, x)
		yy := new(big.Rat).Mul(y, y)
		return xx.Add(xx, yy)
	}
	minor := func(x1, y1, x2, y2 *big.Rat) *big.Rat {
		l := new(big.Rat).Mul(x1, y2)
		r := new(big.Rat).Mul(x2, y1)
		return l.Sub(l, r)
	}

	det := new(big.Rat)
	term := new(big.Rat).Mul(lift(adx, ady), minor(bdx, bdy, cdx, cdy))
	det.Add(det, term)
	term = new(big.Rat).Mul(lift(bdx, bdy), minor(cdx, cdy, adx, ady))
	det.Add(det, term)
	term = new(big.Rat).Mul(lift(cdx, cdy), minor(adx, ady, bdx, bdy))
	det.Add(det, term)
	return det.Sign()
}

// Circumcenter returns the center of the circle through a, b, c. The
// triangle must not be degenerate.
func Circumcenter(a, b, c Point) Point {
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	ux := (cy*(bx*bx+by*by) - by*(cx*cx+cy*cy)) / d
	uy := (bx*(cx*cx+cy*cy) - cx*(bx*bx+by*by)) / d
	return Point{a.X + ux, a.Y + uy}
}

// CircumradiusSq returns the squared circumradius of triangle (a, b, c).
func CircumradiusSq(a, b, c Point) float64 {
	return Dist2(Circumcenter(a, b, c), a)
}

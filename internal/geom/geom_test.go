package geom

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOrient2DBasics(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient2D(a, b, Point{0, 1}) != 1 {
		t.Fatal("ccw expected")
	}
	if Orient2D(a, b, Point{0, -1}) != -1 {
		t.Fatal("cw expected")
	}
	if Orient2D(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear expected")
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return Orient2D(a, b, c) == -Orient2D(b, a, c)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOrient2DRotationInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		s := Orient2D(a, b, c)
		return s == Orient2D(b, c, a) && s == Orient2D(c, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points nearly collinear: the float fast path cannot certify the
	// sign; the exact fallback must. Build exactly-collinear points with
	// a one-ulp perturbation.
	a := Point{0, 0}
	b := Point{1, 1}
	c := Point{0.5, 0.5} // exactly on the line
	if Orient2D(a, b, c) != 0 {
		t.Fatal("exactly collinear must give 0")
	}
	cUp := Point{0.5, math.Nextafter(0.5, 1)}
	if Orient2D(a, b, cUp) != 1 {
		t.Fatal("one ulp above the line must be CCW")
	}
	cDn := Point{0.5, math.Nextafter(0.5, 0)}
	if Orient2D(a, b, cDn) != -1 {
		t.Fatal("one ulp below the line must be CW")
	}
}

func TestOrient2DMatchesExact(t *testing.T) {
	// The fast path (with fallback) must agree with pure big.Rat
	// evaluation on random and on adversarially-scaled inputs.
	r := rng.New(1)
	check := func(a, b, c Point) {
		want := orientBig(a, b, c)
		if got := Orient2D(a, b, c); got != want {
			t.Fatalf("Orient2D(%v,%v,%v)=%d want %d", a, b, c, got, want)
		}
	}
	for i := 0; i < 2000; i++ {
		base := Point{r.Float64(), r.Float64()}
		d := Point{r.Float64() - 0.5, r.Float64() - 0.5}
		s1, s2 := r.Float64()*2, r.Float64()*2
		a := base
		b := Point{base.X + d.X*s1, base.Y + d.Y*s1}
		c := Point{base.X + d.X*s2 + (r.Float64()-0.5)*1e-15, base.Y + d.Y*s2}
		check(a, b, c)
	}
}

func orientBig(a, b, c Point) int {
	ax, ay := new(big.Rat).SetFloat64(a.X), new(big.Rat).SetFloat64(a.Y)
	bx, by := new(big.Rat).SetFloat64(b.X), new(big.Rat).SetFloat64(b.Y)
	cx, cy := new(big.Rat).SetFloat64(c.X), new(big.Rat).SetFloat64(c.Y)
	l := new(big.Rat).Mul(new(big.Rat).Sub(ax, cx), new(big.Rat).Sub(by, cy))
	r := new(big.Rat).Mul(new(big.Rat).Sub(ay, cy), new(big.Rat).Sub(bx, cx))
	return l.Cmp(r)
}

func TestInCircleBasics(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0); CCW order.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if InCircle(a, b, c, Point{0, 0}) != 1 {
		t.Fatal("center must be inside")
	}
	if InCircle(a, b, c, Point{2, 2}) != -1 {
		t.Fatal("far point must be outside")
	}
	if InCircle(a, b, c, Point{0, -1}) != 0 {
		t.Fatal("fourth cocircular point must be on the circle")
	}
}

func TestInCircleNearBoundary(t *testing.T) {
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	in := Point{0, math.Nextafter(-1, 0)}
	if InCircle(a, b, c, in) != 1 {
		t.Fatal("one ulp inside must report inside")
	}
	out := Point{0, math.Nextafter(-1, -2)}
	if InCircle(a, b, c, out) != -1 {
		t.Fatal("one ulp outside must report outside")
	}
}

func TestInCircleSymmetry(t *testing.T) {
	// Swapping two triangle corners flips orientation and hence the sign.
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		a, b, c := Point{r.Float64(), r.Float64()}, Point{r.Float64(), r.Float64()}, Point{r.Float64(), r.Float64()}
		d := Point{r.Float64(), r.Float64()}
		if InCircle(a, b, c, d) != -InCircle(b, a, c, d) {
			t.Fatal("InCircle must be antisymmetric under corner swap")
		}
	}
}

func TestInCircleVsCircumcircle(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		a, b, c := Point{r.Float64(), r.Float64()}, Point{r.Float64(), r.Float64()}, Point{r.Float64(), r.Float64()}
		if Orient2D(a, b, c) <= 0 {
			a, b = b, a
		}
		if Orient2D(a, b, c) <= 0 {
			continue
		}
		d := Point{r.Float64(), r.Float64()}
		ctr := Circumcenter(a, b, c)
		r2 := Dist2(ctr, a)
		geoIn := Dist2(ctr, d) < r2*(1-1e-9)
		geoOut := Dist2(ctr, d) > r2*(1+1e-9)
		pred := InCircle(a, b, c, d)
		if geoIn && pred != 1 {
			t.Fatalf("point clearly inside but InCircle=%d", pred)
		}
		if geoOut && pred != -1 {
			t.Fatalf("point clearly outside but InCircle=%d", pred)
		}
	}
}

func TestPredicateStats(t *testing.T) {
	var st PredicateStats
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	Orient2DStats(a, b, c, &st)
	InCircleStats(a, b, c, Point{0, 0}, &st)
	InCircleStats(a, b, c, Point{0, -1}, &st) // exact fallback (cocircular)
	if st.Orient2DCalls != 1 || st.InCircleCalls != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.InCircleExact != 1 {
		t.Fatalf("cocircular case should hit the exact path: %+v", st)
	}
	var merged PredicateStats
	merged.Merge(st)
	if merged.InCircleCalls != 2 {
		t.Fatal("merge failed")
	}
}

func TestDiskFrom2(t *testing.T) {
	d := DiskFrom2(Point{0, 0}, Point{2, 0})
	if d.Center.X != 1 || d.Center.Y != 0 || math.Abs(d.R2-1) > 1e-15 {
		t.Fatalf("disk %+v", d)
	}
	if !d.Contains(Point{1, 1}) || d.Contains(Point{1, 1.001}) {
		t.Fatal("containment wrong")
	}
}

func TestDiskFrom3(t *testing.T) {
	d := DiskFrom3(Point{1, 0}, Point{0, 1}, Point{-1, 0})
	if math.Abs(d.Center.X) > 1e-12 || math.Abs(d.Center.Y) > 1e-12 || math.Abs(d.R2-1) > 1e-12 {
		t.Fatalf("circumdisk %+v", d)
	}
	// Collinear fallback: diametral disk of the farthest pair.
	d = DiskFrom3(Point{0, 0}, Point{1, 0}, Point{3, 0})
	if math.Abs(d.R2-2.25) > 1e-12 {
		t.Fatalf("collinear disk %+v", d)
	}
}

func TestEmptyDisk(t *testing.T) {
	if EmptyDisk.Contains(Point{0, 0}) {
		t.Fatal("empty disk contains nothing")
	}
	if EmptyDisk.Radius() != 0 {
		t.Fatal("empty disk radius is 0")
	}
}

func TestBoundingTriangleContains(t *testing.T) {
	r := rng.New(4)
	pts := UniformSquare(r, 500)
	a, b, c := BoundingTriangle(pts)
	if Orient2D(a, b, c) <= 0 {
		t.Fatal("bounding triangle must be CCW")
	}
	for _, p := range pts {
		if Orient2D(a, b, p) <= 0 || Orient2D(b, c, p) <= 0 || Orient2D(c, a, p) <= 0 {
			t.Fatalf("point %v outside bounding triangle", p)
		}
	}
}

func TestBoundingTriangleDegenerate(t *testing.T) {
	// All points identical and the empty set must still give a valid
	// nondegenerate triangle.
	for _, pts := range [][]Point{nil, {{X: 3, Y: 3}}, {{X: 1, Y: 1}, {X: 1, Y: 1}}} {
		a, b, c := BoundingTriangle(pts)
		if Orient2D(a, b, c) == 0 {
			t.Fatal("degenerate bounding triangle")
		}
	}
}

func TestDedup(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {1, 1}, {3, 3}, {2, 2}}
	got := Dedup(pts)
	if len(got) != 3 || got[0] != (Point{1, 1}) || got[1] != (Point{2, 2}) || got[2] != (Point{3, 3}) {
		t.Fatalf("dedup got %v", got)
	}
}

func TestWorkloadSizes(t *testing.T) {
	r := rng.New(5)
	if len(UniformSquare(r, 100)) != 100 {
		t.Fatal("UniformSquare size")
	}
	if len(UniformDisk(r, 50)) != 50 {
		t.Fatal("UniformDisk size")
	}
	if len(OnCircle(r, 30, 0.1)) != 30 {
		t.Fatal("OnCircle size")
	}
	if len(GridJitter(r, 77, 0.5)) != 77 {
		t.Fatal("GridJitter size")
	}
	if len(GaussianCluster(r, 64, 4, 0.1)) != 64 {
		t.Fatal("GaussianCluster size")
	}
}

func TestUniformDiskInDisk(t *testing.T) {
	r := rng.New(6)
	for _, p := range UniformDisk(r, 1000) {
		if p.X*p.X+p.Y*p.Y > 1+1e-12 {
			t.Fatalf("point %v outside unit disk", p)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Point{3, 4}, Point{1, 2}
	if p.Sub(q) != (Point{2, 2}) {
		t.Fatal("Sub")
	}
	if p.Dot(q) != 11 {
		t.Fatal("Dot")
	}
	if p.Cross(q) != 2 {
		t.Fatal("Cross")
	}
	if Dist(p, q) != math.Sqrt(8) {
		t.Fatal("Dist")
	}
}

package geom

import (
	"math"

	"repro/internal/rng"
)

// UniformSquare returns n points drawn uniformly from the unit square.
func UniformSquare(r *rng.RNG, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	return pts
}

// UniformDisk returns n points drawn uniformly from the unit disk.
func UniformDisk(r *rng.RNG, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		theta := 2 * math.Pi * r.Float64()
		rad := math.Sqrt(r.Float64())
		pts[i] = Point{rad * math.Cos(theta), rad * math.Sin(theta)}
	}
	return pts
}

// OnCircle returns n points on the unit circle with small radial jitter;
// with jitter = 0 the configuration is adversarial for incircle precision
// (all points nearly cocircular), exercising the exact-arithmetic fallback.
func OnCircle(r *rng.RNG, n int, jitter float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		theta := 2 * math.Pi * r.Float64()
		rad := 1 + jitter*(r.Float64()-0.5)
		pts[i] = Point{rad * math.Cos(theta), rad * math.Sin(theta)}
	}
	return pts
}

// GridJitter returns roughly n points on a jittered sqrt(n) x sqrt(n) grid,
// the "mesh-like" workload for Delaunay experiments.
func GridJitter(r *rng.RNG, n int, jitter float64) []Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]Point, 0, side*side)
	step := 1.0 / float64(side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if len(pts) == n {
				return pts
			}
			pts = append(pts, Point{
				X: (float64(i) + 0.5 + jitter*(r.Float64()-0.5)) * step,
				Y: (float64(j) + 0.5 + jitter*(r.Float64()-0.5)) * step,
			})
		}
	}
	return pts
}

// GaussianCluster returns n points from k Gaussian clusters in the unit
// square, a clustered workload for closest-pair experiments.
func GaussianCluster(r *rng.RNG, n, k int, sigma float64) []Point {
	centers := UniformSquare(r, k)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[r.Intn(k)]
		pts[i] = Point{c.X + sigma*r.NormFloat64(), c.Y + sigma*r.NormFloat64()}
	}
	return pts
}

// BoundingTriangle returns a triangle that contains all points with a
// comfortable margin, used as the initial triangle t_b of Algorithm 4.
// Its corners are far enough away that every input circumcircle test
// against them behaves as if the corners were at infinity.
func BoundingTriangle(pts []Point) (a, b, c Point) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if len(pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	w := math.Max(maxX-minX, maxY-minY)
	if w == 0 {
		w = 1
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	// A triangle at distance ~50w comfortably contains the circumcircles of
	// all triangles formed by input points.
	const m = 50
	a = Point{cx - m*w, cy - m*w}
	b = Point{cx + m*w, cy - m*w}
	c = Point{cx, cy + m*w}
	return a, b, c
}

// Dedup returns pts with exact duplicates removed (order preserved).
// The incremental algorithms assume distinct points.
func Dedup(pts []Point) []Point {
	seen := make(map[Point]struct{}, len(pts))
	out := pts[:0:0]
	for _, p := range pts {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

package embed

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBuildOnGrid(t *testing.T) {
	g := graph.Grid2D(12, 12, true, rng.New(1))
	tr, err := Build(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != g.N || tr.L < 1 || tr.Beta < 1 || tr.Beta >= 2 {
		t.Fatalf("tree shape: %+v", tr)
	}
	// Everyone shares the top-level cluster.
	top := tr.Seq[0][tr.L]
	for v := 1; v < tr.N; v++ {
		if tr.Seq[v][tr.L] != top {
			t.Fatalf("vertex %d not in the top cluster", v)
		}
	}
}

func TestDominance(t *testing.T) {
	// The embedding must dominate: d_T(u,v) >= d_G(u,v) for all pairs.
	// This is an exact invariant of the construction, not probabilistic.
	for _, seed := range []uint64{1, 2, 3, 4} {
		g := graph.Grid2D(8, 8, true, rng.New(seed))
		tr, err := Build(g, seed*31)
		if err != nil {
			t.Fatal(err)
		}
		_, _, dominated := AvgStretch(g, tr, seed, 8)
		if !dominated {
			t.Fatalf("seed %d: tree distance below graph distance", seed)
		}
	}
}

func TestExpectedStretchLogarithmic(t *testing.T) {
	// FRT guarantee: expected stretch O(log n). Average the empirical
	// stretch over several independent trees; it should sit well below a
	// generous c·log n.
	g := graph.Grid2D(10, 10, true, rng.New(9))
	n := float64(g.N)
	var total float64
	trees := 5
	for s := 0; s < trees; s++ {
		tr, err := Build(g, uint64(s)*97+13)
		if err != nil {
			t.Fatal(err)
		}
		avg, _, _ := AvgStretch(g, tr, uint64(s), 6)
		total += avg
	}
	mean := total / float64(trees)
	if bound := 8 * math.Log(n); mean > bound {
		t.Fatalf("mean stretch %.1f exceeds 8 ln n = %.1f", mean, bound)
	}
	if mean < 1 {
		t.Fatalf("mean stretch %.2f below 1 contradicts dominance", mean)
	}
}

func TestSelfDistanceZero(t *testing.T) {
	g := graph.Grid2D(5, 5, true, rng.New(2))
	tr, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		if tr.Dist(v, v) != 0 {
			t.Fatal("self distance must be zero")
		}
	}
}

func TestTreeMetricProperties(t *testing.T) {
	// Symmetry and triangle inequality on sampled triples (tree metrics
	// are ultrametric-like; the triangle inequality must hold exactly).
	g := graph.GnmUndirected(rng.New(4), 60, 240, true)
	tr, err := Build(g, 5)
	if err != nil {
		t.Skip("sampled graph disconnected; acceptable for this generator")
	}
	r := rng.New(6)
	for trial := 0; trial < 500; trial++ {
		a, b, c := r.Intn(60), r.Intn(60), r.Intn(60)
		if tr.Dist(a, b) != tr.Dist(b, a) {
			t.Fatal("asymmetric tree distance")
		}
		if tr.Dist(a, c) > tr.Dist(a, b)+tr.Dist(b, c)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestDisconnectedRejected(t *testing.T) {
	edges := []graph.Edge{{From: 0, To: 1, W: 1}, {From: 2, To: 3, W: 1}}
	g := graph.Symmetrize(4, edges, true)
	if _, err := Build(g, 1); err == nil {
		t.Fatal("disconnected graph must be rejected")
	}
}

// Package embed builds probabilistic tree embeddings (FRT-style) from
// LE-lists — the application of Section 6.1 the paper highlights via its
// references [8, 10]: a hierarchical random decomposition whose tree
// distances dominate graph distances and approximate them within O(log n)
// in expectation.
//
// The construction follows the LE-list formulation: draw a uniformly random
// vertex priority order π (realized by randomly relabeling the graph) and a
// random scale β ∈ [1, 2); the level-i center of vertex v is the
// lowest-priority vertex within distance β·2^i of v, which is exactly the
// first entry of v's LE-list at distance ≤ β·2^i. One parallel LE-list
// construction therefore yields every level of the decomposition at once —
// the reason the paper's parallel LE-lists matter for tree embeddings.
package embed

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/lelists"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Tree is a hierarchical decomposition of a connected graph. Vertices are
// leaves; the cluster of v at level i is identified by the suffix
// Seq[v][i:] (two vertices are in the same level-i cluster iff their
// center sequences agree from level i upward).
type Tree struct {
	N     int
	L     int       // top level; all vertices share the level-L cluster
	Beta  float64   // random scale in [1, 2)
	Radii []float64 // Radii[i] = Beta * 2^i
	// Seq[v][i] is the center (lowest-priority vertex, in relabeled ids)
	// of v's level-i cluster.
	Seq [][]int32
}

// Build constructs a random tree embedding of the connected graph g.
// Randomness (the priority permutation and β) derives from seed.
func Build(g *graph.Graph, seed uint64) (*Tree, error) {
	r := rng.New(seed)
	h, perm := graph.RandomRelabel(g, r) // perm[original] = relabeled id
	lists, _ := lelists.Parallel(h)
	n := g.N
	// Eccentricity bound: every list's first entry is the distance to the
	// highest-priority vertex; diam <= 2 * max of those.
	maxD := 0.0
	for v := 0; v < n; v++ {
		// On a connected graph, every list's first entry is the
		// highest-priority vertex (relabeled id 0), whose search reaches
		// everything; any other first entry means v is unreachable from it.
		if len(lists[v]) == 0 || lists[v][0].V != 0 {
			return nil, errors.New("embed: graph must be connected")
		}
		if d := lists[v][0].Dist; d > maxD {
			maxD = d
		}
	}
	beta := 1 + r.Float64()
	diam := 2 * maxD
	if diam == 0 {
		diam = 1
	}
	top := 0
	for beta*math.Pow(2, float64(top)) < diam {
		top++
	}
	radii := make([]float64, top+1)
	for i := range radii {
		radii[i] = beta * math.Pow(2, float64(i))
	}
	// Seq is indexed by ORIGINAL vertex id; the lists live in relabeled id
	// space, so look up through perm. Center ids stay in relabeled space —
	// they are only ever compared for equality, which is id-agnostic.
	seq := make([][]int32, n)
	parallel.ForGrain(0, n, 64, func(v int) {
		l := lists[perm[v]]
		s := make([]int32, top+1)
		// Entries are in priority order with decreasing distances; the
		// center at radius r is the first entry with Dist <= r.
		for i := 0; i <= top; i++ {
			s[i] = centerWithin(l, radii[i])
		}
		seq[v] = s
	})
	return &Tree{N: n, L: top, Beta: beta, Radii: radii, Seq: seq}, nil
}

// centerWithin returns the lowest-priority vertex within distance r of the
// list's owner: the first entry (priority order) with Dist <= r.
func centerWithin(l []lelists.Entry, r float64) int32 {
	for _, e := range l {
		if e.Dist <= r {
			return e.V
		}
	}
	return l[len(l)-1].V // the owner itself (distance 0)
}

// Dist returns the tree distance between u and v: twice the sum of radii
// up to their lowest common cluster level.
func (t *Tree) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	su, sv := t.Seq[u], t.Seq[v]
	// Lowest level at which the suffixes agree.
	common := t.L + 1
	for i := t.L; i >= 0; i-- {
		if su[i] != sv[i] {
			break
		}
		common = i
	}
	if common > t.L {
		// Disagree even at the top (cannot happen on connected graphs).
		common = t.L
	}
	d := 0.0
	for i := 0; i <= common; i++ {
		d += t.Radii[i]
	}
	return 2 * d
}

// AvgStretch computes the average of Dist(u,v)/d_G(u,v) over sampled pairs,
// the empirical counterpart of the O(log n) expected-stretch guarantee.
// sources limits the number of SSSP calls.
func AvgStretch(g *graph.Graph, t *Tree, seed uint64, sources int) (avg, worst float64, dominated bool) {
	r := rng.New(seed)
	dominated = true
	count := 0
	sum := 0.0
	for s := 0; s < sources; s++ {
		u := r.Intn(g.N)
		dist := graph.FullSSSP(g, u)
		for v := 0; v < g.N; v++ {
			if v == u || math.IsInf(dist[v], 1) || dist[v] == 0 {
				continue
			}
			dt := t.Dist(u, v)
			if dt < dist[v]*(1-1e-9) {
				dominated = false
			}
			stretch := dt / dist[v]
			sum += stretch
			count++
			if stretch > worst {
				worst = stretch
			}
		}
	}
	if count == 0 {
		return 0, 0, dominated
	}
	return sum / float64(count), worst, dominated
}

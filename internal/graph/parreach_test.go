package graph

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func sortedCopy(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestParReachMatchesSequential(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(500)
		g := GnmDirected(r, n, 3*n, false)
		src := r.Intn(n)
		for _, forward := range []bool{true, false} {
			var seq []int32
			ReachFrom(g, src, forward, func(int) bool { return true }, func(u int) {
				seq = append(seq, int32(u))
			})
			par, _ := ParReachFrom(g, src, forward, func(int) bool { return true })
			a, b := sortedCopy(seq), sortedCopy(par)
			if len(a) != len(b) {
				t.Fatalf("trial %d fwd=%v: seq reached %d, par %d", trial, forward, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d fwd=%v: reach sets differ at %d", trial, forward, i)
				}
			}
		}
	}
}

func TestParReachRestriction(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}}, false)
	vis, _ := ParReachFrom(g, 0, true, func(u int) bool { return u != 2 })
	if len(vis) != 2 { // 0 and 1; 2 blocks the rest
		t.Fatalf("restricted reach = %v", vis)
	}
	vis, _ = ParReachFrom(g, 0, true, func(u int) bool { return false })
	if vis != nil {
		t.Fatal("excluded source must yield nil")
	}
}

func TestParReachExactlyOnce(t *testing.T) {
	// Dense graph with many parallel discovery paths: every vertex must
	// appear exactly once.
	r := rng.New(2)
	g := GnmDirected(r, 300, 6000, false)
	vis, _ := ParReachFrom(g, 0, true, func(int) bool { return true })
	seen := map[int32]bool{}
	for _, v := range vis {
		if seen[v] {
			t.Fatalf("vertex %d visited twice", v)
		}
		seen[v] = true
	}
}

func TestParReachEdgeCount(t *testing.T) {
	// On a simple path, exactly n-1 edges are scanned.
	g := ChainDAG(50)
	_, edges := ParReachFrom(g, 0, true, func(int) bool { return true })
	if edges != 49 {
		t.Fatalf("edges scanned = %d, want 49", edges)
	}
}

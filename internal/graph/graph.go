// Package graph provides the graph substrate for the Type 3 algorithms:
// a compressed-sparse-row representation, synthetic generators, and the
// single-source shortest path and reachability subroutines that the paper
// treats as black boxes with cost W_SP/D_SP and W_R/D_R.
package graph

import "fmt"

// Edge is a directed, optionally weighted edge.
type Edge struct {
	From, To int
	W        float64
}

// Graph is a directed graph in CSR form. For the undirected algorithms
// (LE-lists on symmetric inputs) both edge directions are present.
// Weights are per out-edge and non-negative; an unweighted graph has
// Weights == nil and every edge has implicit weight 1.
type Graph struct {
	N       int
	Off     []int32 // len N+1; out-neighbors of u are Adj[Off[u]:Off[u+1]]
	Adj     []int32
	Weights []float64 // nil for unweighted; else parallel to Adj

	// Reverse adjacency (in-neighbors), built on demand by Reverse.
	rOff []int32
	rAdj []int32
}

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.Adj) }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int) int { return int(g.Off[u+1] - g.Off[u]) }

// Out returns the out-neighbor slice of u. The caller must not modify it.
func (g *Graph) Out(u int) []int32 { return g.Adj[g.Off[u]:g.Off[u+1]] }

// OutW returns u's out-neighbors and their weights. Weights is nil for
// unweighted graphs.
func (g *Graph) OutW(u int) ([]int32, []float64) {
	lo, hi := g.Off[u], g.Off[u+1]
	if g.Weights == nil {
		return g.Adj[lo:hi], nil
	}
	return g.Adj[lo:hi], g.Weights[lo:hi]
}

// FromEdges builds a CSR graph with n vertices from the given directed
// edges. Duplicate edges and self-loops are kept as given. Weighted
// indicates whether the edges' W fields are meaningful.
func FromEdges(n int, edges []Edge, weighted bool) *Graph {
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.From, e.To, n))
		}
	}
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.From+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]int32, len(edges))
	var w []float64
	if weighted {
		w = make([]float64, len(edges))
	}
	pos := make([]int32, n)
	copy(pos, off[:n])
	for _, e := range edges {
		p := pos[e.From]
		adj[p] = int32(e.To)
		if weighted {
			w[p] = e.W
		}
		pos[e.From]++
	}
	return &Graph{N: n, Off: off, Adj: adj, Weights: w}
}

// Symmetrize returns a graph with both directions of every edge (weights
// duplicated), making the input effectively undirected.
func Symmetrize(n int, edges []Edge, weighted bool) *Graph {
	sym := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		sym = append(sym, e, Edge{From: e.To, To: e.From, W: e.W})
	}
	return FromEdges(n, sym, weighted)
}

// Reverse returns the in-neighbor slice of u, building the reverse CSR on
// first use. Not safe for concurrent first call; call EnsureReverse once
// before parallel use.
func (g *Graph) Reverse(u int) []int32 {
	g.EnsureReverse()
	return g.rAdj[g.rOff[u]:g.rOff[u+1]]
}

// EnsureReverse builds the reverse adjacency structure if absent.
func (g *Graph) EnsureReverse() {
	if g.rOff != nil {
		return
	}
	n := g.N
	rOff := make([]int32, n+1)
	for _, v := range g.Adj {
		rOff[v+1]++
	}
	for i := 0; i < n; i++ {
		rOff[i+1] += rOff[i]
	}
	rAdj := make([]int32, len(g.Adj))
	pos := make([]int32, n)
	copy(pos, rOff[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			rAdj[pos[v]] = int32(u)
			pos[v]++
		}
	}
	g.rOff, g.rAdj = rOff, rAdj
}

// Neighbors returns out- or in-neighbors of u depending on dir.
func (g *Graph) Neighbors(u int, forward bool) []int32 {
	if forward {
		return g.Out(u)
	}
	return g.Reverse(u)
}

package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFromEdgesCSR(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {0, 2, 2}, {1, 2, 3}, {2, 0, 4}}
	g := FromEdges(3, edges, true)
	if g.M() != 4 {
		t.Fatalf("m=%d", g.M())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 1 {
		t.Fatal("degrees wrong")
	}
	adj, w := g.OutW(0)
	if len(adj) != 2 || w[0]+w[1] != 3 {
		t.Fatal("out edges of 0 wrong")
	}
	if !g.Weighted() {
		t.Fatal("should be weighted")
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromEdges(2, []Edge{{0, 5, 1}}, false)
}

func TestReverse(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {2, 1, 1}, {3, 1, 1}, {1, 0, 1}}, false)
	in := g.Reverse(1)
	if len(in) != 3 {
		t.Fatalf("in-degree of 1 = %d", len(in))
	}
	seen := map[int32]bool{}
	for _, u := range in {
		seen[u] = true
	}
	if !seen[0] || !seen[2] || !seen[3] {
		t.Fatalf("in-neighbors wrong: %v", in)
	}
	if len(g.Reverse(3)) != 0 {
		t.Fatal("vertex 3 has no in-edges")
	}
}

func TestSymmetrize(t *testing.T) {
	g := Symmetrize(3, []Edge{{0, 1, 5}}, true)
	if g.M() != 2 || g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Fatal("symmetrize failed")
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 (undirected).
	g := Symmetrize(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}, false)
	d := FullSSSP(g, 0)
	for i, want := range []float64{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("d[%d]=%v want %v", i, d[i], want)
		}
	}
}

func TestDijkstraDistances(t *testing.T) {
	// Weighted triangle where the two-hop path is shorter.
	edges := []Edge{{0, 1, 10}, {0, 2, 3}, {2, 1, 3}}
	g := FromEdges(3, edges, true)
	d := FullSSSP(g, 0)
	if d[1] != 6 || d[2] != 3 {
		t.Fatalf("d=%v", d)
	}
}

func TestDijkstraVsBFSOnUnitWeights(t *testing.T) {
	r := rng.New(1)
	edges := make([]Edge, 0, 600)
	for len(edges) < 600 {
		u, v := r.Intn(100), r.Intn(100)
		if u != v {
			edges = append(edges, Edge{From: u, To: v, W: 1})
		}
	}
	gu := FromEdges(100, edges, false)
	gw := FromEdges(100, edges, true)
	du, dw := FullSSSP(gu, 0), FullSSSP(gw, 0)
	for i := range du {
		if du[i] != dw[i] {
			t.Fatalf("vertex %d: BFS %v vs Dijkstra %v", i, du[i], dw[i])
		}
	}
}

func TestPrunedSearchBound(t *testing.T) {
	// With bound 2.5 only vertices at distance < 2.5 are visited.
	g := Symmetrize(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}}, false)
	visits, _ := PrunedBFS(g, 0, func(u int) float64 { return 2.5 })
	if len(visits) != 3 { // 0, 1, 2
		t.Fatalf("visits=%v", visits)
	}
	// Bound 0 at the source: nothing visited.
	visits, _ = PrunedBFS(g, 0, func(u int) float64 { return 0 })
	if len(visits) != 0 {
		t.Fatal("source with bound 0 must not be visited")
	}
}

func TestPrunedDijkstraHeterogeneousBound(t *testing.T) {
	// A pruned vertex must not relax its out-edges even when it would give
	// a shorter path: bounds block vertex 1, so 2 is reached the long way.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}}
	g := FromEdges(3, edges, true)
	bound := func(u int) float64 {
		if u == 1 {
			return 0.5 // vertex 1 blocked
		}
		return math.Inf(1)
	}
	visits, _ := PrunedDijkstra(g, 0, bound)
	var d2 float64 = -1
	for _, v := range visits {
		if v.Target == 1 {
			t.Fatal("vertex 1 should be pruned")
		}
		if v.Target == 2 {
			d2 = v.Dist
		}
	}
	if d2 != 5 {
		t.Fatalf("d(2)=%v want 5 (the unpruned path)", d2)
	}
}

func TestReachFrom(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}, false)
	var got []int
	n, _ := ReachFrom(g, 0, true, func(int) bool { return true }, func(u int) { got = append(got, u) })
	if n != 3 {
		t.Fatalf("forward reach = %d, want 3", n)
	}
	got = nil
	n, _ = ReachFrom(g, 2, false, func(int) bool { return true }, func(u int) { got = append(got, u) })
	if n != 3 {
		t.Fatalf("backward reach = %d, want 3", n)
	}
	// Restriction test: exclude vertex 1 — forward reach from 0 is just 0.
	n, _ = ReachFrom(g, 0, true, func(u int) bool { return u != 1 }, func(int) {})
	if n != 1 {
		t.Fatalf("restricted reach = %d, want 1", n)
	}
	// Source excluded.
	n, _ = ReachFrom(g, 0, true, func(u int) bool { return false }, func(int) {})
	if n != 0 {
		t.Fatal("excluded source must not be visited")
	}
}

func TestGenerators(t *testing.T) {
	r := rng.New(2)
	if g := GnmDirected(r, 50, 200, true); g.N != 50 || g.M() != 200 || !g.Weighted() {
		t.Fatal("GnmDirected shape")
	}
	if g := GnmUndirected(r, 50, 200, false); g.M() != 400 {
		t.Fatal("GnmUndirected should have both directions")
	}
	if g := Grid2D(5, 7, false, nil); g.N != 35 || g.M() != 2*(4*7+5*6) {
		t.Fatalf("grid m=%d", Grid2D(5, 7, false, nil).M())
	}
	if g := ChainDAG(10); g.M() != 9 {
		t.Fatal("chain")
	}
	if g := CycleChords(r, 20, 5); g.N != 20 || g.M() < 20 {
		t.Fatal("cycle chords")
	}
	if g := PowerLawDirected(r, 100, 3); g.N != 100 || g.M() != 300 {
		t.Fatal("power law")
	}
}

func TestPlantedSCCGroundTruth(t *testing.T) {
	r := rng.New(3)
	g, truth := PlantedSCC(r, 100, 7, 300)
	if g.N != 100 || len(truth) != 100 {
		t.Fatal("planted shape")
	}
	comps := map[int]bool{}
	for _, c := range truth {
		comps[c] = true
	}
	if len(comps) != 7 {
		t.Fatalf("planted %d components, want 7", len(comps))
	}
	// Every pair within a component must be mutually reachable.
	members := map[int][]int{}
	for v, c := range truth {
		members[c] = append(members[c], v)
	}
	for _, ms := range members {
		src := ms[0]
		reached := map[int]bool{}
		ReachFrom(g, src, true, func(int) bool { return true }, func(u int) { reached[u] = true })
		for _, v := range ms {
			if !reached[v] {
				t.Fatalf("vertex %d not forward-reachable within its planted component", v)
			}
		}
	}
}

func TestGrid2DWeighted(t *testing.T) {
	g := Grid2D(3, 3, true, rng.New(4))
	if !g.Weighted() {
		t.Fatal("weighted grid should carry weights")
	}
	for _, w := range g.Weights {
		if w < 1 || w >= 2 {
			t.Fatalf("weight %v out of [1,2)", w)
		}
	}
}

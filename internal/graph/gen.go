package graph

import (
	"repro/internal/rng"
)

// GnmDirected returns a uniform random directed multigraph with n vertices
// and m edges (self-loops excluded). Weighted edges get uniform weights in
// [1, 2) to keep SSSP well-conditioned.
func GnmDirected(r *rng.RNG, n, m int, weighted bool) *Graph {
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, W: 1 + r.Float64()})
	}
	return FromEdges(n, edges, weighted)
}

// GnmUndirected returns a uniform random undirected graph (both edge
// directions present) with n vertices and m undirected edges.
func GnmUndirected(r *rng.RNG, n, m int, weighted bool) *Graph {
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, W: 1 + r.Float64()})
	}
	return Symmetrize(n, edges, weighted)
}

// Grid2D returns the rows x cols undirected grid graph (4-neighborhood),
// the "road-network-like" workload: high diameter, constant degree.
func Grid2D(rows, cols int, weighted bool, r *rng.RNG) *Graph {
	id := func(i, j int) int { return i*cols + j }
	var edges []Edge
	w := func() float64 {
		if r == nil {
			return 1
		}
		return 1 + r.Float64()
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i+1 < rows {
				edges = append(edges, Edge{From: id(i, j), To: id(i+1, j), W: w()})
			}
			if j+1 < cols {
				edges = append(edges, Edge{From: id(i, j), To: id(i, j+1), W: w()})
			}
		}
	}
	return Symmetrize(rows*cols, edges, weighted)
}

// PowerLawDirected returns a directed graph with a skewed out-degree
// distribution (preferential-attachment-like targets), the "web/social"
// workload for SCC: one giant SCC plus many small ones.
func PowerLawDirected(r *rng.RNG, n, avgDeg int) *Graph {
	m := n * avgDeg
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := r.Intn(n)
		// Preferential-ish target: square the uniform to skew low ids hot.
		f := r.Float64()
		v := int(f * f * float64(n))
		if v >= n {
			v = n - 1
		}
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, W: 1})
	}
	return FromEdges(n, edges, false)
}

// CycleChords returns a directed n-cycle plus k random chord edges: a graph
// that is one big SCC with internal structure, stressing reachability depth.
func CycleChords(r *rng.RNG, n, k int) *Graph {
	edges := make([]Edge, 0, n+k)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{From: i, To: (i + 1) % n, W: 1})
	}
	for j := 0; j < k; j++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, Edge{From: u, To: v, W: 1})
		}
	}
	return FromEdges(n, edges, false)
}

// PlantedSCC returns a directed graph with `comps` planted strongly
// connected components (directed cycles through each component's vertices)
// joined by a random DAG of cross edges, so the true SCC decomposition is
// known by construction. Returns the graph and the ground-truth component
// id per vertex.
func PlantedSCC(r *rng.RNG, n, comps, crossEdges int) (*Graph, []int) {
	if comps < 1 {
		comps = 1
	}
	if comps > n {
		comps = n
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = r.Intn(comps)
	}
	// Ensure every component is non-empty by seeding one vertex each.
	perm := rng.New(r.Uint64()).Perm(n)
	for c := 0; c < comps; c++ {
		owner[perm[c]] = c
	}
	members := make([][]int, comps)
	for v, c := range owner {
		members[c] = append(members[c], v)
	}
	var edges []Edge
	for _, ms := range members {
		if len(ms) <= 1 {
			continue
		}
		rng.ShuffleSlice(r, ms)
		for i := range ms {
			edges = append(edges, Edge{From: ms[i], To: ms[(i+1)%len(ms)], W: 1})
		}
	}
	// Cross edges only from lower component id to higher: a DAG between
	// components, so components are exactly the SCCs.
	for j := 0; j < crossEdges; j++ {
		u, v := r.Intn(n), r.Intn(n)
		if owner[u] < owner[v] {
			edges = append(edges, Edge{From: u, To: v, W: 1})
		} else if owner[v] < owner[u] {
			edges = append(edges, Edge{From: v, To: u, W: 1})
		}
	}
	return FromEdges(n, edges, false), owner
}

// ChainDAG returns a path DAG v0 -> v1 -> ... -> v_{n-1}: every SCC is a
// singleton and reachability searches are maximally unbalanced. This is the
// adversarial input for naive parallel SCC depth.
func ChainDAG(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{From: i, To: i + 1, W: 1})
	}
	return FromEdges(n, edges, false)
}

package graph

import (
	"errors"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

func TestParReachFromCancelNilMatchesPlain(t *testing.T) {
	r := rng.New(41)
	g := GnmDirected(r, 500, 2000, false)
	all := func(int) bool { return true }
	wantV, wantE := ParReachFrom(g, 0, true, all)
	gotV, gotE, err := ParReachFromCancel(g, 0, true, all, nil)
	if err != nil {
		t.Fatalf("nil-token err = %v", err)
	}
	if gotE != wantE || len(gotV) != len(wantV) {
		t.Fatalf("nil token diverges: %d visits/%d edges vs %d/%d",
			len(gotV), gotE, len(wantV), wantE)
	}
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("visit order diverges at %d: %d vs %d", i, gotV[i], wantV[i])
		}
	}
}

// TestParReachFromCancelPrefix cancels from inside the membership predicate
// after a fixed number of probes: the search must stop with ErrCanceled,
// and whatever it returns must be a set of genuinely reachable vertices
// discovered in frontier-round order (src first).
func TestParReachFromCancelPrefix(t *testing.T) {
	g := ChainDAG(1 << 12) // one vertex per frontier round: many boundaries
	var c parallel.Canceler
	probes := 0
	in := func(int) bool {
		probes++
		if probes == 100 {
			c.Cancel()
		}
		return true
	}
	v, _, err := ParReachFromCancel(g, 0, true, in, &c)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(v) == 0 || v[0] != 0 {
		t.Fatalf("canceled search lost its source: %v", v[:min(len(v), 5)])
	}
	if len(v) >= 1<<12 {
		t.Fatalf("canceled search visited everything (%d vertices)", len(v))
	}
	for i, u := range v {
		if int(u) != i {
			t.Fatalf("chain visit %d is vertex %d; rounds are not prefix-ordered", i, u)
		}
	}
}

func TestParReachFromCancelPreCanceled(t *testing.T) {
	g := ChainDAG(64)
	var c parallel.Canceler
	c.Cancel()
	v, e, err := ParReachFromCancel(g, 0, true, func(int) bool { return true }, &c)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(v) > 1 || e != 0 {
		t.Fatalf("pre-canceled search expanded rounds: %d visits, %d edges", len(v), e)
	}
}

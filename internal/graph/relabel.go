package graph

import "repro/internal/rng"

// Relabel returns a copy of g with vertices renamed by perm: vertex v
// becomes perm[v]. The incremental graph algorithms process vertices in
// index order, so relabeling with a random permutation realizes the
// uniformly random priority order their analyses assume — required for
// structured inputs (grids, meshes) whose natural ids are not random.
func Relabel(g *Graph, perm []int) *Graph {
	if len(perm) != g.N {
		panic("graph: permutation length mismatch")
	}
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		adj, ws := g.OutW(u)
		for k, v := range adj {
			e := Edge{From: perm[u], To: perm[int(v)]}
			if ws != nil {
				e.W = ws[k]
			}
			edges = append(edges, e)
		}
	}
	return FromEdges(g.N, edges, g.Weighted())
}

// RandomRelabel relabels g with a uniformly random permutation drawn from r
// and returns the relabeled graph together with the permutation used
// (perm[old] = new).
func RandomRelabel(g *Graph, r *rng.RNG) (*Graph, []int) {
	perm := r.Perm(g.N)
	return Relabel(g, perm), perm
}

package graph

import (
	"container/heap"
	"math"
)

// Visit is one source-target-distance triple produced by a pruned search,
// the output format the paper's LE-list combine step consumes.
type Visit struct {
	Target int
	Dist   float64
}

// PrunedBFS runs a breadth-first search from src on the unweighted graph,
// visiting a vertex u only if the discovered distance is strictly less than
// bound(u). It returns the visits (including src if 0 < bound(src)) and the
// number of edges scanned (the work counter W_SP).
//
// This is Line 3 of the paper's Algorithm 6 with the tentative-distance
// initialization dropped: the search is pruned by the δ values from earlier
// iterations, so it only explores S and its out-edges.
func PrunedBFS(g *Graph, src int, bound func(u int) float64) (visits []Visit, edgesScanned int64) {
	if !(0 < bound(src)) {
		return nil, 0
	}
	dist := map[int]int{src: 0}
	frontier := []int{src}
	visits = append(visits, Visit{Target: src, Dist: 0})
	d := 0
	for len(frontier) > 0 {
		d++
		var next []int
		for _, u := range frontier {
			for _, vi := range g.Out(u) {
				edgesScanned++
				v := int(vi)
				if _, seen := dist[v]; seen {
					continue
				}
				if float64(d) < bound(v) {
					dist[v] = d
					next = append(next, v)
					visits = append(visits, Visit{Target: v, Dist: float64(d)})
				}
			}
		}
		frontier = next
	}
	return visits, edgesScanned
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v int
	d float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// PrunedDijkstra runs Dijkstra from src on the weighted graph, visiting a
// vertex u only while its tentative distance is strictly below bound(u).
// Returns visits in non-decreasing distance order and the relaxation count.
func PrunedDijkstra(g *Graph, src int, bound func(u int) float64) (visits []Visit, relaxations int64) {
	if !(0 < bound(src)) {
		return nil, 0
	}
	dist := map[int]float64{src: 0}
	settled := map[int]bool{}
	q := &pq{{v: src, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u, du := it.v, it.d
		if settled[u] || du > dist[u] {
			continue
		}
		settled[u] = true
		visits = append(visits, Visit{Target: u, Dist: du})
		adj, ws := g.OutW(u)
		for k, vi := range adj {
			relaxations++
			v := int(vi)
			w := 1.0
			if ws != nil {
				w = ws[k]
			}
			nd := du + w
			if nd >= bound(v) {
				continue
			}
			if old, ok := dist[v]; ok && old <= nd {
				continue
			}
			dist[v] = nd
			heap.Push(q, pqItem{v: v, d: nd})
		}
	}
	return visits, relaxations
}

// PrunedSearch dispatches to PrunedBFS or PrunedDijkstra based on whether g
// is weighted; it is the SSSP black box of Section 6.1.
func PrunedSearch(g *Graph, src int, bound func(u int) float64) ([]Visit, int64) {
	if g.Weighted() {
		return PrunedDijkstra(g, src, bound)
	}
	return PrunedBFS(g, src, bound)
}

// FullSSSP returns the distance array from src with no pruning (+Inf when
// unreachable). Used as a test oracle.
func FullSSSP(g *Graph, src int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	visits, _ := PrunedSearch(g, src, func(int) float64 { return math.Inf(1) })
	for _, v := range visits {
		dist[v.Target] = v.Dist
	}
	return dist
}

// ReachFrom performs a reachability search from src restricted to vertices
// for which in(u) is true, in the forward or backward direction. It calls
// visit(u) for every reached vertex (including src when in(src)) and
// returns the number of vertices reached and edges scanned. visit is called
// exactly once per reached vertex; the caller may use it to mark state.
func ReachFrom(g *Graph, src int, forward bool, in func(u int) bool, visit func(u int)) (reached int, edgesScanned int64) {
	if !in(src) {
		return 0, 0
	}
	if !forward {
		g.EnsureReverse()
	}
	seen := map[int]bool{src: true}
	stack := []int{src}
	visit(src)
	reached = 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, vi := range g.Neighbors(u, forward) {
			edgesScanned++
			v := int(vi)
			if seen[v] || !in(v) {
				continue
			}
			seen[v] = true
			visit(v)
			reached++
			stack = append(stack, v)
		}
	}
	return reached, edgesScanned
}

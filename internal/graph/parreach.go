package graph

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// ParReachFrom is the parallel counterpart of ReachFrom: a
// frontier-synchronous reachability search (parallel BFS) from src,
// restricted to vertices with in(u) true, in the forward or backward
// direction. It returns the reached vertices (src first, then in discovery
// rounds) and the number of edges scanned.
//
// This realizes the paper's reachability black box with depth
// D_R = O(diameter) instead of the sequential search's O(reached): the
// early rounds of the Type 3 SCC algorithm have few concurrent pivots, so
// without intra-search parallelism the first round would be fully
// sequential.
func ParReachFrom(g *Graph, src int, forward bool, in func(u int) bool) (visited []int32, edgesScanned int64) {
	visited, edgesScanned, _ = ParReachFromCancel(g, src, forward, in, nil)
	return visited, edgesScanned
}

// ParReachFromCancel is ParReachFrom with cooperative cancellation: the
// token is observed at every frontier-round boundary (and, through
// BlocksNCancel, at chunk boundaries inside a round's expansion). On
// cancellation it returns parallel.ErrCanceled together with the visited
// prefix discovered by the completed frontier rounds — callers that need
// an all-or-nothing answer must discard it. A nil token is the plain
// search.
func ParReachFromCancel(g *Graph, src int, forward bool, in func(u int) bool, c *parallel.Canceler) (visited []int32, edgesScanned int64, err error) {
	if !in(src) {
		return nil, 0, canceledErr(c)
	}
	if !forward {
		g.EnsureReverse()
	}
	claimed := make([]atomic.Bool, g.N)
	claimed[src].Store(true)
	frontier := []int32{int32(src)}
	visited = append(visited, int32(src))
	var edges atomic.Int64
	for len(frontier) > 0 {
		// Expand every frontier vertex in parallel; claim new vertices
		// with a CAS so each is visited exactly once. Grain 8 keeps
		// chunks small because per-vertex cost is the (skewed) degree;
		// thieves split the ranges holding the heavy vertices, and the
		// finer grain costs only lane-local claims on the stealing pool.
		// Writing through the block index keeps the next frontier in
		// deterministic block order.
		nb := parallel.NumBlocks(len(frontier), 8)
		nexts := make([][]int32, nb)
		if err := parallel.BlocksNCancel(0, len(frontier), nb, c, func(bi, lo, hi int) {
			var local []int32
			var scanned int64
			for k := lo; k < hi; k++ {
				u := int(frontier[k])
				for _, vi := range g.Neighbors(u, forward) {
					scanned++
					v := int(vi)
					if claimed[v].Load() || !in(v) {
						continue
					}
					if claimed[v].CompareAndSwap(false, true) {
						local = append(local, vi)
					}
				}
			}
			nexts[bi] = local
			edges.Add(scanned)
		}); err != nil {
			// The round expanded an arbitrary subset of its blocks; the
			// visited prefix still holds only fully discovered rounds.
			return visited, edges.Load(), err
		}
		frontier = frontier[:0]
		for _, l := range nexts {
			frontier = append(frontier, l...)
		}
		visited = append(visited, frontier...)
	}
	return visited, edges.Load(), canceledErr(c)
}

// canceledErr mirrors the parallel package's exit contract.
func canceledErr(c *parallel.Canceler) error {
	if c.Canceled() {
		return parallel.ErrCanceled
	}
	return nil
}

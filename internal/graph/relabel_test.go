package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestRelabelPreservesStructure(t *testing.T) {
	r := rng.New(1)
	g := GnmDirected(r, 40, 160, true)
	perm := r.Perm(40)
	h := Relabel(g, perm)
	if h.N != g.N || h.M() != g.M() {
		t.Fatal("relabel changed size")
	}
	// Distances must be preserved under the relabeling.
	for src := 0; src < 5; src++ {
		dg := FullSSSP(g, src)
		dh := FullSSSP(h, perm[src])
		for v := 0; v < g.N; v++ {
			if dg[v] != dh[perm[v]] {
				t.Fatalf("distance (%d,%d) changed: %v vs %v", src, v, dg[v], dh[perm[v]])
			}
		}
	}
}

func TestRelabelPanicsOnBadPerm(t *testing.T) {
	g := ChainDAG(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Relabel(g, []int{0, 1})
}

func TestRandomRelabelIsPermutation(t *testing.T) {
	g := Grid2D(6, 6, false, nil)
	h, perm := RandomRelabel(g, rng.New(2))
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
	if h.M() != g.M() {
		t.Fatal("edge count changed")
	}
}

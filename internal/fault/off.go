//go:build !ridtfault

package fault

import "errors"

// Enabled is false in the default build: every injection site is written
// as `if fault.Enabled { ... }`, so the guard and the call are dead code
// the compiler removes — hot paths keep their //ridt:noalloc pins and
// benchgate allocation budgets untouched.
const Enabled = false

// ErrNotBuilt is returned by Enable when injection is compiled out.
var ErrNotBuilt = errors.New("fault: injection not compiled in (build with -tags ridtfault)")

// Enable reports ErrNotBuilt: the default build cannot inject faults.
func Enable(Config) error { return ErrNotBuilt }

// Disable is a no-op in the default build.
func Disable() {}

// Active reports whether a plan is live; never in the default build.
func Active() bool { return false }

// Inject is a no-op in the default build (and unreachable behind the
// constant-false Enabled guard at every site).
func Inject(Site) {}

// InjectErr never fails in the default build (and is unreachable behind
// the constant-false Enabled guard at every site).
func InjectErr(Site) error { return nil }

// SkipClaim never diverts a claim in the default build.
func SkipClaim(Site) bool { return false }

// Events returns the fired-injection log; always empty here.
func Events() []Event { return nil }

// PanicsFired reports injected panics since Enable; always 0 here.
func PanicsFired() int { return 0 }

// ErrsFired reports injected errors since Enable; always 0 here.
func ErrsFired() int { return 0 }

// Hits reports how often a site was reached since Enable; always 0 here.
func Hits(Site) uint64 { return 0 }

// Package fault is the repository's deterministic fault-injection harness.
//
// The robustness suites need to ask "does the scheduler, the round engine,
// or a hash-table migration stay consistent when a participant is delayed,
// diverted, or dies at this exact point?" — and they need the answer to be
// replayable. This package provides named injection points compiled into
// the scheduler claim/steal path, the hash-table migration loop, and the
// engine round/phase boundaries, driven by a seeded, deterministic
// schedule.
//
// The package has two builds:
//
//   - Default (no build tag): Enabled is the constant false and every
//     entry point is an empty function. Injection sites are written as
//     `if fault.Enabled { fault.Inject(...) }`, so the compiler removes
//     them entirely — the hot paths of the default build are bit-for-bit
//     the uninstrumented ones, which is what lets the //ridt:noalloc pins
//     and the benchgate allocation gates keep their meaning.
//
//   - `-tags ridtfault`: Enabled is true and Inject/SkipClaim consult the
//     active plan (see Enable). Decisions are a pure function of
//     (seed, site, per-site hit counter), so a failing stress run is
//     replayed by re-running with the same seed; the fired-event log
//     (Events) records what actually happened for the failure report.
//
// See DESIGN.md in this directory for the injection-point catalog, the
// seed/replay protocol, and the build-tag story.
package fault

// Site names one injection point. Sites are a closed catalog (see the
// constants below) so plans can be expressed as bitmasks and decisions
// stay a pure function of (seed, site, hit).
type Site uint8

// The injection-point catalog. Each site sits at a quiescent boundary of
// its subsystem: a fault injected there models a participant being
// descheduled, diverted, or killed *between* protocol steps, never inside
// one — so every post-fault state is one the cooperative protocols are
// specified to handle (see DESIGN.md for why each site is placed where it
// is, and which actions it supports).
const (
	// SchedClaim fires each time a pool participant is about to claim a
	// batch from its own lane (internal/parallel.participate). Supports
	// Delay and Skip (a skipped claim diverts the participant to the
	// steal path: the forced-steal schedule). Panics are not injected
	// here: a panic outside a loop body would escape the chunk recovery
	// and kill a pool worker, which the scheduler (by design) does not
	// survive — loop-body death is injected at the engine sites instead.
	SchedClaim Site = iota
	// SchedSteal fires before a steal sweep over the other lanes.
	// Supports Delay.
	SchedSteal
	// TableMigrate fires at the top of each cooperative-migration chunk
	// claim (internal/hashtable helpMigrate), before the chunk counter is
	// advanced. Supports Delay and Panic: a panic here models an operation
	// dying mid-growth; because it fires before the claim, no chunk is
	// ever stranded claimed-but-unmigrated, and the surviving threads (or
	// a later Flatten) finish the migration.
	TableMigrate
	// DelaunayPhase fires between the phases of a Delaunay engine round
	// (activation, A, B, emission). Supports Delay and Panic; a panic here
	// exercises the engine's round rollback.
	DelaunayPhase
	// Type2SubRound fires at the top of each RunType2 sub-round. Supports
	// Delay and Panic.
	Type2SubRound
	// Type3Round fires at the top of each RunType3 round. Supports Delay
	// and Panic.
	Type3Round
	// EpochPublish fires between a committed round and the publication of
	// its snapshot view (delaunay.Live.Step, hashtable AdvanceEpoch).
	// Supports Delay and Panic: a panic models the publisher dying after
	// the round committed but before readers could see it — the round's
	// effects are durable, and the next successful publication covers the
	// orphaned round, so readers observe a gap in epochs but never an
	// inconsistent view.
	EpochPublish
	// CheckpointFrame fires before each frame write of a checkpoint save
	// (internal/checkpoint.Writer.Save). Supports Delay, Panic, and Err:
	// a panic models the process dying with a partial temp file on disk
	// (the atomic-rename commit has not happened, so the previous
	// generation is untouched); an injected error models a failed disk
	// write the saver must surface and abandon the attempt on.
	CheckpointFrame
	// CheckpointCommit fires at each step of a checkpoint's commit
	// sequence (fsync file, rename into place, fsync directory, manifest
	// update). Supports Delay, Panic, and Err: a death or error at any
	// commit step leaves either the previous generation or a fully valid
	// new one — never a torn file under the committed name.
	CheckpointCommit
	// DeltaFrame fires before each frame write of a DELTA checkpoint save
	// (internal/checkpoint.Writer.SaveDelta): the incremental-generation
	// twin of CheckpointFrame, kept separate so the harnesses can walk the
	// delta format's frame sequence independently of the full image's.
	// Supports Delay, Panic, and Err with the same semantics as
	// CheckpointFrame — the atomic-rename commit has not happened, so a
	// death or error here costs the delta, never its base chain.
	DeltaFrame
	// ScrubVerify fires before the scrubber verifies each on-disk
	// generation (internal/checkpoint.Writer.Scrub). Supports Delay,
	// Panic, and Err: an injected error models a transient read failure —
	// the scrubber must SKIP the file this pass (an unreadable file is
	// unverifiable, not provably corrupt, so quarantining it would destroy
	// healthy durability); a panic models the scrubber dying mid-pass,
	// after which the directory must still restore to a committed prefix.
	ScrubVerify

	// NumSites is the number of catalogued sites (not itself a site).
	NumSites
)

var siteNames = [NumSites]string{
	SchedClaim:       "sched-claim",
	SchedSteal:       "sched-steal",
	TableMigrate:     "table-migrate",
	DelaunayPhase:    "delaunay-phase",
	Type2SubRound:    "type2-subround",
	Type3Round:       "type3-round",
	EpochPublish:     "epoch-publish",
	CheckpointFrame:  "checkpoint-frame",
	CheckpointCommit: "checkpoint-commit",
	DeltaFrame:       "delta-frame",
	ScrubVerify:      "scrub-verify",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "fault-site-?"
}

// panicCapable reports whether a site may receive an injected panic; at
// the remaining sites a scheduled panic is downgraded to a delay (see the
// catalog above for why).
func panicCapable(s Site) bool {
	switch s {
	case TableMigrate, DelaunayPhase, Type2SubRound, Type3Round, EpochPublish,
		CheckpointFrame, CheckpointCommit, DeltaFrame, ScrubVerify:
		return true
	}
	return false
}

// Action is what the schedule decided for one hit of a site.
type Action uint8

const (
	ActNone  Action = iota
	ActDelay        // runtime.Gosched: the participant loses its turn
	ActPanic        // panic(Injected{...}): the participant dies here
	ActSkip         // claim declined: the participant is diverted to stealing
	ActErr          // InjectErr returns InjectedError: a failed I/O the caller must handle
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActDelay:
		return "delay"
	case ActPanic:
		return "panic"
	case ActSkip:
		return "skip"
	case ActErr:
		return "err"
	}
	return "action-?"
}

// Event records one fired (non-none) injection for the replay report.
type Event struct {
	Site   Site
	Hit    uint64 // which hit of the site fired (0-based, per counter)
	Action Action
}

// Injected is the value of an injected panic. Harnesses recognize
// injected deaths by type-asserting the recovered value.
type Injected struct {
	Site Site
	Hit  uint64
}

func (p Injected) Error() string {
	return "fault: injected panic at " + p.Site.String()
}

// InjectedError is the typed error InjectErr returns on a scheduled
// ActErr: a deterministic stand-in for a failed I/O operation (a write
// that returned an error rather than killing the process). Callers
// recognize injected failures with errors.As, exactly as harnesses
// recognize Injected panics.
type InjectedError struct {
	Site Site
	Hit  uint64
}

func (e InjectedError) Error() string {
	return "fault: injected error at " + e.Site.String()
}

// Config parameterizes an injection plan. Rates are per-hit probabilities
// in [0, 1], evaluated deterministically from (Seed, site, hit).
type Config struct {
	Seed      uint64  // schedule seed; the whole plan is a pure function of it
	PanicRate float64 // probability a hit panics (panic-capable sites only)
	ErrRate   float64 // probability an InjectErr hit fails (error-returning sites)
	DelayRate float64 // probability a hit yields the scheduler
	SkipRate  float64 // probability a claim hit is declined (SkipClaim sites)
	// MaxPanics bounds the injected panics per Enable; once spent, further
	// scheduled panics downgrade to delays. 0 means 1 (the common
	// one-death-per-trial harness shape); negative means unlimited.
	MaxPanics int
	// MaxErrs bounds the injected errors per Enable, mirroring MaxPanics:
	// 0 means 1, negative means unlimited; past the budget a scheduled
	// error downgrades to a delay.
	MaxErrs int
	// FirstHit arms the Inject/InjectErr schedules only from that hit of
	// each site onward: hits below it draw nothing (the counters still
	// advance). With a unit rate and a budget of 1 this targets a fault at
	// exactly one chosen hit — the enumerate-every-injection-point harness
	// shape. The claim-skip schedule is independent and not gated.
	FirstHit uint64
	// SiteMask selects sites (bit i enables Site(i)); 0 enables all.
	SiteMask uint32
}

// enabledSite reports whether the config covers s.
func (c *Config) enabledSite(s Site) bool {
	return c.SiteMask == 0 || c.SiteMask&(1<<s) != 0
}

// MaskOf builds a SiteMask covering exactly the given sites.
func MaskOf(sites ...Site) uint32 {
	var m uint32
	for _, s := range sites {
		m |= 1 << s
	}
	return m
}

// splitmix64 is the SplitMix64 mixer; decisions are drawn from it so the
// schedule is a pure, platform-independent function of (seed, site, hit).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitFloat maps a draw to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// decide is the pure decision function: the action scheduled for hit n of
// site s under seed. Both builds compile it so the off build's tests can
// still assert schedule determinism. One uniform draw is carved into
// [panic | err | delay | none] bands, in that order, so a plan with
// ErrRate 0 draws the identical schedule the pre-ActErr harness did —
// every seed baked into the existing stress suites replays unchanged.
func decide(seed uint64, s Site, n uint64, panicRate, errRate, delayRate float64) Action {
	u := unitFloat(splitmix64(splitmix64(seed^(uint64(s)+1)*0xA24BAED4963EE407) + n))
	if u < panicRate {
		return ActPanic
	}
	if u < panicRate+errRate {
		return ActErr
	}
	if u < panicRate+errRate+delayRate {
		return ActDelay
	}
	return ActNone
}

// decideSkip is decide for the claim-skip schedule (an independent draw so
// skip and delay schedules do not alias).
func decideSkip(seed uint64, s Site, n uint64, skipRate float64) bool {
	u := unitFloat(splitmix64(splitmix64(seed^0x5851F42D4C957F2D^(uint64(s)+1)) + n))
	return u < skipRate
}

//go:build ridtfault

package fault

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Enabled is true under the ridtfault build tag: injection sites are
// compiled in and consult the active plan. With no plan enabled the fast
// path is a single atomic pointer load.
const Enabled = true

// plan is one Enable's immutable configuration plus its mutable counters.
// Counters are per-site atomics; the decision for hit n of a site is a
// pure function of (cfg.Seed, site, n), so the *schedule* is deterministic
// even though which goroutine draws which hit depends on the interleaving
// (see DESIGN.md: determinism is per (site, hit), not per goroutine).
type plan struct {
	cfg      Config
	maxPanic int64
	maxErr   int64
	hits     [NumSites]padCounter
	skips    [NumSites]padCounter
	panics   atomic.Int64
	errs     atomic.Int64

	mu     sync.Mutex
	events []Event
}

// padCounter keeps each site's hit counter on its own cache line so
// instrumented hot loops do not serialize on a shared counter word.
type padCounter struct {
	n atomic.Uint64
	_ [56]byte
}

var active atomic.Pointer[plan]

// Enable installs an injection plan. It replaces any previous plan and
// resets all counters and the event log. Returns nil under ridtfault.
func Enable(cfg Config) error {
	p := &plan{cfg: cfg}
	p.maxPanic = budgetOf(cfg.MaxPanics)
	p.maxErr = budgetOf(cfg.MaxErrs)
	active.Store(p)
	return nil
}

// budgetOf maps a Config budget field to its effective bound: 0 means 1
// (the one-fault-per-trial harness shape), negative means unlimited.
func budgetOf(n int) int64 {
	switch {
	case n == 0:
		return 1
	case n < 0:
		return int64(^uint64(0) >> 1)
	}
	return int64(n)
}

// Disable removes the active plan; sites return to no-ops.
func Disable() { active.Store(nil) }

// Active reports whether a plan is live.
func Active() bool { return active.Load() != nil }

// record appends a fired event to the replay log (capped so a pathological
// plan cannot grow without bound).
func (p *plan) record(e Event) {
	p.mu.Lock()
	if len(p.events) < 1<<12 {
		p.events = append(p.events, e)
	}
	p.mu.Unlock()
}

// Inject consults the plan at site s and applies the scheduled action:
// nothing, a delay (runtime.Gosched), or — at panic-capable sites, while
// the panic budget lasts — panic(Injected{s, hit}). Scheduled panics at
// non-capable sites or past the budget downgrade to delays, as do
// scheduled errors (Inject has no way to return one; error-aware call
// sites use InjectErr, which shares this schedule hit for hit).
func Inject(s Site) {
	p := active.Load()
	if p == nil || !p.cfg.enabledSite(s) {
		return
	}
	n := p.hits[s].n.Add(1) - 1
	if n < p.cfg.FirstHit {
		return
	}
	a := decide(p.cfg.Seed, s, n, p.cfg.PanicRate, p.cfg.ErrRate, p.cfg.DelayRate)
	if a == ActNone {
		return
	}
	if a == ActErr || (a == ActPanic && (!panicCapable(s) || p.panics.Add(1) > p.maxPanic)) {
		a = ActDelay
	}
	p.record(Event{Site: s, Hit: n, Action: a})
	if a == ActPanic {
		panic(Injected{Site: s, Hit: n})
	}
	runtime.Gosched()
}

// InjectErr is Inject for sites whose callers can surface a failure as an
// error instead of a death: a scheduled ActErr returns InjectedError (and
// the caller abandons the guarded operation the way it would a failed
// write); panics and delays behave exactly as in Inject. Scheduled errors
// past the error budget downgrade to delays.
func InjectErr(s Site) error {
	p := active.Load()
	if p == nil || !p.cfg.enabledSite(s) {
		return nil
	}
	n := p.hits[s].n.Add(1) - 1
	if n < p.cfg.FirstHit {
		return nil
	}
	a := decide(p.cfg.Seed, s, n, p.cfg.PanicRate, p.cfg.ErrRate, p.cfg.DelayRate)
	if a == ActNone {
		return nil
	}
	if a == ActPanic && (!panicCapable(s) || p.panics.Add(1) > p.maxPanic) {
		a = ActDelay
	}
	if a == ActErr && p.errs.Add(1) > p.maxErr {
		a = ActDelay
	}
	p.record(Event{Site: s, Hit: n, Action: a})
	switch a {
	case ActPanic:
		panic(Injected{Site: s, Hit: n})
	case ActErr:
		return InjectedError{Site: s, Hit: n}
	}
	runtime.Gosched()
	return nil
}

// SkipClaim consults the claim-skip schedule at site s: true tells the
// caller to decline this claim (the forced-steal diversion). Independent
// of Inject's schedule and counters.
func SkipClaim(s Site) bool {
	p := active.Load()
	if p == nil || p.cfg.SkipRate <= 0 || !p.cfg.enabledSite(s) {
		return false
	}
	n := p.skips[s].n.Add(1) - 1
	if !decideSkip(p.cfg.Seed, s, n, p.cfg.SkipRate) {
		return false
	}
	p.record(Event{Site: s, Hit: n, Action: ActSkip})
	return true
}

// Events returns a copy of the fired-injection log of the active plan
// (empty when no plan is active). Ordering within the log follows record
// time; per-(site, hit) identity is what replays.
func Events() []Event {
	p := active.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	p.mu.Unlock()
	return out
}

// PanicsFired reports injected panics since Enable.
func PanicsFired() int {
	p := active.Load()
	if p == nil {
		return 0
	}
	n := int(p.panics.Load())
	if m := int(p.maxPanic); n > m {
		n = m // draws past the budget were downgraded, not fired
	}
	return n
}

// ErrsFired reports injected errors since Enable.
func ErrsFired() int {
	p := active.Load()
	if p == nil {
		return 0
	}
	n := int(p.errs.Load())
	if m := int(p.maxErr); n > m {
		n = m // draws past the budget were downgraded, not fired
	}
	return n
}

// Hits reports how often site s was reached since Enable.
func Hits(s Site) uint64 {
	p := active.Load()
	if p == nil || s >= NumSites {
		return 0
	}
	return p.hits[s].n.Load()
}

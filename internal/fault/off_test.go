//go:build !ridtfault

package fault

import (
	"errors"
	"testing"
)

// The default build's stubs must be inert: no plan, no events, no panics,
// and Enable must say so rather than silently do nothing.

func TestOffBuildInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the ridtfault tag")
	}
	if err := Enable(Config{Seed: 1, PanicRate: 1}); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Enable = %v, want ErrNotBuilt", err)
	}
	if Active() {
		t.Fatal("Active must be false in the off build")
	}
	for s := Site(0); s < NumSites; s++ {
		Inject(s) // must be a no-op, not a panic
		if SkipClaim(s) {
			t.Fatalf("SkipClaim(%v) diverted in the off build", s)
		}
		if Hits(s) != 0 {
			t.Fatalf("Hits(%v) = %d in the off build", s, Hits(s))
		}
	}
	if ev := Events(); len(ev) != 0 {
		t.Fatalf("Events = %v in the off build", ev)
	}
	if PanicsFired() != 0 {
		t.Fatal("PanicsFired != 0 in the off build")
	}
	Disable()
}

package fault

import "testing"

// These tests compile in both builds: the decision functions are shared
// source, so the schedule's determinism and distribution are checked even
// when injection itself is compiled out.

func TestDecideDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for s := Site(0); s < NumSites; s++ {
			for n := uint64(0); n < 200; n++ {
				a1 := decide(seed, s, n, 0.05, 0.2)
				a2 := decide(seed, s, n, 0.05, 0.2)
				if a1 != a2 {
					t.Fatalf("decide(%d, %v, %d) unstable: %v vs %v", seed, s, n, a1, a2)
				}
			}
		}
	}
}

func TestDecideRates(t *testing.T) {
	const trials = 20000
	var panics, delays int
	for n := uint64(0); n < trials; n++ {
		switch decide(7, TableMigrate, n, 0.1, 0.3) {
		case ActPanic:
			panics++
		case ActDelay:
			delays++
		}
	}
	if f := float64(panics) / trials; f < 0.07 || f > 0.13 {
		t.Fatalf("panic rate %.3f, want ~0.1", f)
	}
	if f := float64(delays) / trials; f < 0.25 || f > 0.35 {
		t.Fatalf("delay rate %.3f, want ~0.3", f)
	}
	for n := uint64(0); n < 1000; n++ {
		if decide(7, SchedClaim, n, 0, 0) != ActNone {
			t.Fatalf("zero rates still fired at hit %d", n)
		}
		if decideSkip(7, SchedClaim, n, 0) {
			t.Fatalf("zero skip rate still skipped at hit %d", n)
		}
		if !decideSkip(7, SchedClaim, n, 1) {
			t.Fatalf("unit skip rate declined at hit %d", n)
		}
	}
}

func TestDecideSeedsDiffer(t *testing.T) {
	// Different seeds must produce different schedules (else "seeded" is a
	// lie); compare the first divergence over a modest horizon.
	same := 0
	for n := uint64(0); n < 1000; n++ {
		if decide(1, DelaunayPhase, n, 0.2, 0.3) == decide(2, DelaunayPhase, n, 0.2, 0.3) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 yield identical schedules")
	}
}

func TestMaskOf(t *testing.T) {
	c := Config{SiteMask: MaskOf(SchedClaim, TableMigrate)}
	if !c.enabledSite(SchedClaim) || !c.enabledSite(TableMigrate) {
		t.Fatal("masked-in site reported disabled")
	}
	if c.enabledSite(DelaunayPhase) {
		t.Fatal("masked-out site reported enabled")
	}
	all := Config{}
	for s := Site(0); s < NumSites; s++ {
		if !all.enabledSite(s) {
			t.Fatalf("zero mask must enable all sites; %v disabled", s)
		}
	}
}

func TestSiteStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Site(0); s < NumSites; s++ {
		n := s.String()
		if n == "" || n == "fault-site-?" || seen[n] {
			t.Fatalf("site %d has bad or duplicate name %q", s, n)
		}
		seen[n] = true
	}
	if (Injected{Site: TableMigrate, Hit: 3}).Error() == "" {
		t.Fatal("Injected must describe itself")
	}
}

package fault

import "testing"

// These tests compile in both builds: the decision functions are shared
// source, so the schedule's determinism and distribution are checked even
// when injection itself is compiled out.

func TestDecideDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for s := Site(0); s < NumSites; s++ {
			for n := uint64(0); n < 200; n++ {
				a1 := decide(seed, s, n, 0.05, 0.05, 0.2)
				a2 := decide(seed, s, n, 0.05, 0.05, 0.2)
				if a1 != a2 {
					t.Fatalf("decide(%d, %v, %d) unstable: %v vs %v", seed, s, n, a1, a2)
				}
			}
		}
	}
}

func TestDecideRates(t *testing.T) {
	const trials = 20000
	var panics, errs, delays int
	for n := uint64(0); n < trials; n++ {
		switch decide(7, TableMigrate, n, 0.1, 0.1, 0.3) {
		case ActPanic:
			panics++
		case ActErr:
			errs++
		case ActDelay:
			delays++
		}
	}
	if f := float64(panics) / trials; f < 0.07 || f > 0.13 {
		t.Fatalf("panic rate %.3f, want ~0.1", f)
	}
	if f := float64(errs) / trials; f < 0.07 || f > 0.13 {
		t.Fatalf("err rate %.3f, want ~0.1", f)
	}
	if f := float64(delays) / trials; f < 0.25 || f > 0.35 {
		t.Fatalf("delay rate %.3f, want ~0.3", f)
	}
	for n := uint64(0); n < 1000; n++ {
		if decide(7, SchedClaim, n, 0, 0, 0) != ActNone {
			t.Fatalf("zero rates still fired at hit %d", n)
		}
		if decideSkip(7, SchedClaim, n, 0) {
			t.Fatalf("zero skip rate still skipped at hit %d", n)
		}
		if !decideSkip(7, SchedClaim, n, 1) {
			t.Fatalf("unit skip rate declined at hit %d", n)
		}
	}
}

// TestDecideGolden pins exact schedule outputs for fixed (seed, site,
// hit) tuples — including the ActErr band — so a replay seed reported by
// a CI failure reproduces the identical fault schedule on any platform
// and any future commit. The decision functions are pure integer/float
// arithmetic on SplitMix64 draws with no platform-dependent operations;
// if this test ever fails, the schedule function changed and every seed
// baked into the stress suites (and recorded in old failure reports) has
// silently stopped replaying — treat that as a breaking change, not a
// test to update.
func TestDecideGolden(t *testing.T) {
	// All rows drawn at PanicRate 0.1, ErrRate 0.15, DelayRate 0.25.
	for _, g := range []struct {
		seed uint64
		s    Site
		n    uint64
		want Action
	}{
		{1, SchedClaim, 0, ActErr},
		{1, SchedClaim, 1, ActDelay},
		{1, SchedClaim, 2, ActNone},
		{1, SchedClaim, 3, ActNone},
		{1, SchedClaim, 17, ActErr},
		{42, DelaunayPhase, 0, ActNone},
		{42, DelaunayPhase, 5, ActNone},
		{42, DelaunayPhase, 9, ActErr},
		{42, CheckpointFrame, 0, ActDelay},
		{42, CheckpointFrame, 1, ActNone},
		{42, CheckpointFrame, 5, ActErr},
		{42, CheckpointFrame, 6, ActErr},
		{42, CheckpointFrame, 7, ActNone},
		{42, CheckpointFrame, 11, ActDelay},
		{977, CheckpointCommit, 0, ActNone},
		{977, CheckpointCommit, 1, ActPanic},
		{977, CheckpointCommit, 3, ActNone},
		{977, CheckpointCommit, 4, ActErr},
		{977, CheckpointCommit, 23, ActPanic},
		{977, EpochPublish, 2, ActDelay},
		{977, EpochPublish, 6, ActNone},
	} {
		if got := decide(g.seed, g.s, g.n, 0.1, 0.15, 0.25); got != g.want {
			t.Errorf("decide(%d, %v, %d) = %v, want %v", g.seed, g.s, g.n, got, g.want)
		}
	}
	// With ErrRate 0 the [panic | delay] bands must sit exactly where the
	// pre-ActErr harness put them: the err band has zero width, so every
	// historical seed replays unchanged.
	for _, g := range []struct {
		seed uint64
		s    Site
		n    uint64
	}{{7, TableMigrate, 0}, {7, TableMigrate, 1}, {31, DelaunayPhase, 4}, {31, Type2SubRound, 9}} {
		with := decide(g.seed, g.s, g.n, 0.1, 0, 0.3)
		legacy := decide(g.seed, g.s, g.n, 0.1, 1e-18, 0.3) // sub-resolution band
		if with != legacy {
			t.Errorf("zero-width err band moved decide(%d, %v, %d): %v vs %v",
				g.seed, g.s, g.n, with, legacy)
		}
	}
	// Claim-skip schedule pins at SkipRate 0.3 (an independent draw — a
	// skip golden moving without the action goldens moving, or vice versa,
	// identifies which schedule broke).
	for _, g := range []struct {
		seed uint64
		s    Site
		n    uint64
		want bool
	}{
		{1, SchedClaim, 0, false},
		{1, SchedClaim, 1, true},
		{1, SchedClaim, 5, true},
		{7, SchedClaim, 0, false},
		{7, SchedSteal, 3, false},
	} {
		if got := decideSkip(g.seed, g.s, g.n, 0.3); got != g.want {
			t.Errorf("decideSkip(%d, %v, %d) = %v, want %v", g.seed, g.s, g.n, got, g.want)
		}
	}
}

func TestDecideSeedsDiffer(t *testing.T) {
	// Different seeds must produce different schedules (else "seeded" is a
	// lie); compare the first divergence over a modest horizon.
	same := 0
	for n := uint64(0); n < 1000; n++ {
		if decide(1, DelaunayPhase, n, 0.2, 0.1, 0.3) == decide(2, DelaunayPhase, n, 0.2, 0.1, 0.3) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 yield identical schedules")
	}
}

func TestMaskOf(t *testing.T) {
	c := Config{SiteMask: MaskOf(SchedClaim, TableMigrate)}
	if !c.enabledSite(SchedClaim) || !c.enabledSite(TableMigrate) {
		t.Fatal("masked-in site reported disabled")
	}
	if c.enabledSite(DelaunayPhase) {
		t.Fatal("masked-out site reported enabled")
	}
	all := Config{}
	for s := Site(0); s < NumSites; s++ {
		if !all.enabledSite(s) {
			t.Fatalf("zero mask must enable all sites; %v disabled", s)
		}
	}
}

func TestSiteStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Site(0); s < NumSites; s++ {
		n := s.String()
		if n == "" || n == "fault-site-?" || seen[n] {
			t.Fatalf("site %d has bad or duplicate name %q", s, n)
		}
		seen[n] = true
	}
	if (Injected{Site: TableMigrate, Hit: 3}).Error() == "" {
		t.Fatal("Injected must describe itself")
	}
}

//go:build ridtfault

package fault

import (
	"testing"
)

func TestEnableDisable(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under ridtfault")
	}
	if err := Enable(Config{Seed: 3, DelayRate: 1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	if !Active() {
		t.Fatal("Active must be true after Enable")
	}
	Inject(SchedSteal)
	if Hits(SchedSteal) != 1 {
		t.Fatalf("Hits = %d after one Inject", Hits(SchedSteal))
	}
	ev := Events()
	if len(ev) != 1 || ev[0] != (Event{Site: SchedSteal, Hit: 0, Action: ActDelay}) {
		t.Fatalf("Events = %v, want one delay at sched-steal hit 0", ev)
	}
	Disable()
	if Active() {
		t.Fatal("Active after Disable")
	}
	Inject(SchedSteal) // no plan: no-op
	if Hits(SchedSteal) != 0 {
		t.Fatal("counters survived Disable")
	}
}

// TestReplaySameSeed is the replay protocol in miniature: two runs with
// the same seed and the same per-site hit sequence fire the same events.
func TestReplaySameSeed(t *testing.T) {
	run := func() []Event {
		if err := Enable(Config{Seed: 42, DelayRate: 0.25, SkipRate: 0.25}); err != nil {
			t.Fatalf("Enable: %v", err)
		}
		defer Disable()
		for n := 0; n < 500; n++ {
			Inject(SchedClaim)
			SkipClaim(SchedClaim)
		}
		return Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events fired at 25% rates over 500 hits")
	}
	if len(a) != len(b) {
		t.Fatalf("replay length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPanicBudget(t *testing.T) {
	if err := Enable(Config{Seed: 9, PanicRate: 1, MaxPanics: 2}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	fired := 0
	for n := 0; n < 10; n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					inj, ok := r.(Injected)
					if !ok {
						t.Fatalf("recovered %v, want fault.Injected", r)
					}
					if inj.Site != Type2SubRound {
						t.Fatalf("injected at %v, want type2-subround", inj.Site)
					}
					fired++
				}
			}()
			Inject(Type2SubRound)
		}()
	}
	if fired != 2 {
		t.Fatalf("fired %d panics, want MaxPanics=2", fired)
	}
	if PanicsFired() != 2 {
		t.Fatalf("PanicsFired = %d, want 2", PanicsFired())
	}
}

func TestPanicIncapableSiteDowngrades(t *testing.T) {
	if err := Enable(Config{Seed: 5, PanicRate: 1, MaxPanics: -1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	// SchedClaim is not panic-capable: a certain-panic plan must only
	// delay there.
	for n := 0; n < 50; n++ {
		Inject(SchedClaim)
	}
	for _, e := range Events() {
		if e.Action == ActPanic {
			t.Fatalf("panic fired at non-capable site: %v", e)
		}
	}
	if PanicsFired() != 0 {
		t.Fatalf("PanicsFired = %d at a non-capable site", PanicsFired())
	}
}

// TestInjectErrBudget: a certain-error plan fires exactly MaxErrs typed
// errors, then downgrades to delays; Inject (no error return path) never
// surfaces ActErr at all.
func TestInjectErrBudget(t *testing.T) {
	if err := Enable(Config{Seed: 3, ErrRate: 1, MaxErrs: 2}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	fired := 0
	for n := 0; n < 10; n++ {
		if err := InjectErr(CheckpointFrame); err != nil {
			var ie InjectedError
			if !errorsAs(err, &ie) {
				t.Fatalf("InjectErr returned %v, want fault.InjectedError", err)
			}
			if ie.Site != CheckpointFrame {
				t.Fatalf("injected at %v, want checkpoint-frame", ie.Site)
			}
			fired++
		}
	}
	if fired != 2 || ErrsFired() != 2 {
		t.Fatalf("fired %d errors (ErrsFired %d), want MaxErrs=2", fired, ErrsFired())
	}
	// The same schedule through Inject must downgrade every ActErr draw.
	if err := Enable(Config{Seed: 3, ErrRate: 1, MaxErrs: -1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	for n := 0; n < 10; n++ {
		Inject(CheckpointFrame)
	}
	for _, e := range Events() {
		if e.Action == ActErr {
			t.Fatalf("Inject surfaced ActErr: %v", e)
		}
	}
}

// errorsAs avoids importing errors just for the assertion above.
func errorsAs(err error, target *InjectedError) bool {
	ie, ok := err.(InjectedError)
	if ok {
		*target = ie
	}
	return ok
}

// TestFirstHitTargets: FirstHit + unit rate + budget 1 injects at exactly
// one chosen hit — the enumerate-every-injection-point harness shape the
// checkpoint suites rely on.
func TestFirstHitTargets(t *testing.T) {
	for _, target := range []uint64{0, 1, 5, 9} {
		if err := Enable(Config{Seed: 8, ErrRate: 1, MaxErrs: 1, FirstHit: target}); err != nil {
			t.Fatalf("Enable: %v", err)
		}
		var hits []uint64
		for n := 0; n < 12; n++ {
			if err := InjectErr(CheckpointCommit); err != nil {
				hits = append(hits, uint64(n))
			}
		}
		Disable()
		if len(hits) != 1 || hits[0] != target {
			t.Fatalf("FirstHit=%d fired at hits %v, want exactly [%d]", target, hits, target)
		}
	}
}

func TestSiteMaskScopes(t *testing.T) {
	if err := Enable(Config{Seed: 11, DelayRate: 1, SiteMask: MaskOf(TableMigrate)}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	Inject(SchedClaim)
	Inject(TableMigrate)
	ev := Events()
	if len(ev) != 1 || ev[0].Site != TableMigrate {
		t.Fatalf("Events = %v, want exactly one table-migrate delay", ev)
	}
	if Hits(SchedClaim) != 0 {
		t.Fatal("masked-out site still counted a hit")
	}
}

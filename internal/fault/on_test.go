//go:build ridtfault

package fault

import (
	"testing"
)

func TestEnableDisable(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under ridtfault")
	}
	if err := Enable(Config{Seed: 3, DelayRate: 1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	if !Active() {
		t.Fatal("Active must be true after Enable")
	}
	Inject(SchedSteal)
	if Hits(SchedSteal) != 1 {
		t.Fatalf("Hits = %d after one Inject", Hits(SchedSteal))
	}
	ev := Events()
	if len(ev) != 1 || ev[0] != (Event{Site: SchedSteal, Hit: 0, Action: ActDelay}) {
		t.Fatalf("Events = %v, want one delay at sched-steal hit 0", ev)
	}
	Disable()
	if Active() {
		t.Fatal("Active after Disable")
	}
	Inject(SchedSteal) // no plan: no-op
	if Hits(SchedSteal) != 0 {
		t.Fatal("counters survived Disable")
	}
}

// TestReplaySameSeed is the replay protocol in miniature: two runs with
// the same seed and the same per-site hit sequence fire the same events.
func TestReplaySameSeed(t *testing.T) {
	run := func() []Event {
		if err := Enable(Config{Seed: 42, DelayRate: 0.25, SkipRate: 0.25}); err != nil {
			t.Fatalf("Enable: %v", err)
		}
		defer Disable()
		for n := 0; n < 500; n++ {
			Inject(SchedClaim)
			SkipClaim(SchedClaim)
		}
		return Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events fired at 25% rates over 500 hits")
	}
	if len(a) != len(b) {
		t.Fatalf("replay length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPanicBudget(t *testing.T) {
	if err := Enable(Config{Seed: 9, PanicRate: 1, MaxPanics: 2}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	fired := 0
	for n := 0; n < 10; n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					inj, ok := r.(Injected)
					if !ok {
						t.Fatalf("recovered %v, want fault.Injected", r)
					}
					if inj.Site != Type2SubRound {
						t.Fatalf("injected at %v, want type2-subround", inj.Site)
					}
					fired++
				}
			}()
			Inject(Type2SubRound)
		}()
	}
	if fired != 2 {
		t.Fatalf("fired %d panics, want MaxPanics=2", fired)
	}
	if PanicsFired() != 2 {
		t.Fatalf("PanicsFired = %d, want 2", PanicsFired())
	}
}

func TestPanicIncapableSiteDowngrades(t *testing.T) {
	if err := Enable(Config{Seed: 5, PanicRate: 1, MaxPanics: -1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	// SchedClaim is not panic-capable: a certain-panic plan must only
	// delay there.
	for n := 0; n < 50; n++ {
		Inject(SchedClaim)
	}
	for _, e := range Events() {
		if e.Action == ActPanic {
			t.Fatalf("panic fired at non-capable site: %v", e)
		}
	}
	if PanicsFired() != 0 {
		t.Fatalf("PanicsFired = %d at a non-capable site", PanicsFired())
	}
}

func TestSiteMaskScopes(t *testing.T) {
	if err := Enable(Config{Seed: 11, DelayRate: 1, SiteMask: MaskOf(TableMigrate)}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer Disable()
	Inject(SchedClaim)
	Inject(TableMigrate)
	ev := Events()
	if len(ev) != 1 || ev[0].Site != TableMigrate {
		t.Fatalf("Events = %v, want exactly one table-migrate delay", ev)
	}
	if Hits(SchedClaim) != 0 {
		t.Fatal("masked-out site still counted a hit")
	}
}

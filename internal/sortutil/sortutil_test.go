package sortutil

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSortSmall(t *testing.T) {
	for _, xs := range [][]int{nil, {1}, {2, 1}, {3, 1, 2}, {5, 5, 5}} {
		cp := append([]int(nil), xs...)
		SortInts(cp)
		if !sort.IntsAreSorted(cp) {
			t.Fatalf("not sorted: %v", cp)
		}
	}
}

func TestSortLargeRandom(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{4095, 4096, 4097, 100000, 1 << 18} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(1000)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		SortInts(xs)
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: position %d: %d vs %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	n := 50000
	asc := make([]int, n)
	desc := make([]int, n)
	for i := range asc {
		asc[i] = i
		desc[i] = n - i
	}
	SortInts(asc)
	SortInts(desc)
	if !sort.IntsAreSorted(asc) || !sort.IntsAreSorted(desc) {
		t.Fatal("sorted/reversed inputs mishandled")
	}
}

func TestSortCustomLess(t *testing.T) {
	type kv struct{ k, v int }
	n := 20000
	r := rng.New(2)
	xs := make([]kv, n)
	for i := range xs {
		xs[i] = kv{k: r.Intn(100), v: i}
	}
	Sort(xs, func(a, b kv) bool { return a.k > b.k }) // descending by k
	for i := 1; i < n; i++ {
		if xs[i].k > xs[i-1].k {
			t.Fatal("descending order violated")
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(xs []int16) bool {
		a := make([]int, len(xs))
		for i, x := range xs {
			a[i] = int(x)
		}
		b := append([]int(nil), a...)
		SortInts(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}, func(a, b int) bool { return a < b }) {
		t.Fatal("sorted reported unsorted")
	}
	if IsSorted([]int{2, 1}, func(a, b int) bool { return a < b }) {
		t.Fatal("unsorted reported sorted")
	}
}

func TestSemisortGroups(t *testing.T) {
	n := 10000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % 37)
	}
	groups := Semisort(n, func(i int) uint64 { return keys[i] })
	if len(groups) != 37 {
		t.Fatalf("groups=%d want 37", len(groups))
	}
	seen := 0
	for _, g := range groups {
		seen += len(g.Indices)
		for k, idx := range g.Indices {
			if keys[idx] != g.Key {
				t.Fatalf("index %d in wrong group %d", idx, g.Key)
			}
			if k > 0 && g.Indices[k] <= g.Indices[k-1] {
				t.Fatal("group indices must be increasing")
			}
		}
	}
	if seen != n {
		t.Fatalf("semisort covered %d of %d records", seen, n)
	}
}

func TestSemisortSingletonAndEmpty(t *testing.T) {
	if g := Semisort(0, func(int) uint64 { return 0 }); g != nil {
		t.Fatal("empty semisort should be nil")
	}
	g := Semisort(1, func(int) uint64 { return 99 })
	if len(g) != 1 || g[0].Key != 99 || len(g[0].Indices) != 1 {
		t.Fatalf("singleton semisort: %+v", g)
	}
}

func TestSemisortAllDistinctKeys(t *testing.T) {
	n := 5000
	groups := Semisort(n, func(i int) uint64 { return uint64(i) * 2654435761 })
	if len(groups) != n {
		t.Fatalf("distinct keys: groups=%d want %d", len(groups), n)
	}
}

func TestSemisortQuick(t *testing.T) {
	f := func(keys []uint8) bool {
		groups := Semisort(len(keys), func(i int) uint64 { return uint64(keys[i]) })
		count := map[uint64]int{}
		for _, g := range groups {
			if _, dup := count[g.Key]; dup {
				return false // duplicate group key
			}
			count[g.Key] = len(g.Indices)
		}
		want := map[uint64]int{}
		for _, k := range keys {
			want[uint64(k)]++
		}
		if len(count) != len(want) {
			return false
		}
		for k, c := range want {
			if count[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	f := func(keys []uint16) bool {
		xs := make([]uint64, len(keys))
		for i, k := range keys {
			xs[i] = uint64(k % 64) // force collisions
		}
		got := Dedup(xs)
		want := map[uint64]bool{}
		for _, x := range xs {
			want[x] = true
		}
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Fatalf("Dedup(nil) = %v", got)
	}
}

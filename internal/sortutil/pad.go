package sortutil

import "sync"

// padMutex is a sync.Mutex padded to its own cache line so that the shard
// lock array in Semisort does not false-share under contention.
type padMutex struct {
	sync.Mutex
	_ [56]byte
}

// Package sortutil provides parallel sorting and semisorting (group-by)
// built on the primitives in internal/parallel.
//
// The paper's combine steps (LE-lists, SCC) call for a parallel semisort
// [41] to gather contributions per target vertex, followed by a small sort
// per group. Semisort here is a sharded group-by; Sort is a block
// merge sort with parallel block sorting and pairwise merging.
package sortutil

import (
	"sort"

	"repro/internal/parallel"
)

// Sort sorts xs in place using less, in parallel for large inputs.
// The sort is not stable.
func Sort[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	const seqCutoff = 4096
	if n <= seqCutoff || parallel.MaxProcs() == 1 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	// Choose a power-of-two number of blocks ~4x procs; the pool's
	// dynamic chunk claiming assigns them to workers as they free up, so
	// uneven block sort times don't tail-stall the round.
	nb := 1
	for nb < 4*parallel.MaxProcs() {
		nb *= 2
	}
	for n/nb < seqCutoff/4 && nb > 1 {
		nb /= 2
	}
	bounds := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		bounds[i] = i * n / nb
	}
	parallel.ForGrain(0, nb, 1, func(b int) {
		blk := xs[bounds[b]:bounds[b+1]]
		sort.Slice(blk, func(i, j int) bool { return less(blk[i], blk[j]) })
	})
	// Pairwise merge rounds.
	buf := make([]T, n)
	src, dst := xs, buf
	for width := 1; width < nb; width *= 2 {
		pairs := make([][2]int, 0, nb/(2*width)+1)
		for lo := 0; lo < nb; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > nb {
				mid = nb
			}
			if hi > nb {
				hi = nb
			}
			pairs = append(pairs, [2]int{lo, hi})
			_ = mid
		}
		w := width
		parallel.ForGrain(0, len(pairs), 1, func(k int) {
			lo, hi := pairs[k][0], pairs[k][1]
			mid := lo + w
			if mid > hi {
				mid = hi
			}
			mergeInto(dst[bounds[lo]:bounds[hi]],
				src[bounds[lo]:bounds[mid]], src[bounds[mid]:bounds[hi]], less)
		})
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

func mergeInto[T any](out, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// SortInts sorts an int slice ascending in parallel.
func SortInts(xs []int) { Sort(xs, func(a, b int) bool { return a < b }) }

// IsSorted reports whether xs is non-decreasing under less.
func IsSorted[T any](xs []T, less func(a, b T) bool) bool {
	for i := 1; i < len(xs); i++ {
		if less(xs[i], xs[i-1]) {
			return false
		}
	}
	return true
}

// Group is one semisort bucket: all record indices sharing a key.
type Group struct {
	Key     uint64
	Indices []int
}

// Semisort groups the records 0..n-1 by key(i). Groups come back in
// arbitrary key order but each group's Indices preserve increasing index
// order. Work is O(n) expected; this is the combine-step primitive for the
// Type 3 algorithms.
func Semisort(n int, key func(i int) uint64) []Group {
	if n == 0 {
		return nil
	}
	nb := 1
	for nb < 2*parallel.MaxProcs() {
		nb *= 2
	}
	mask := uint64(nb - 1)
	// Phase 1: per-worker sharded accumulation.
	type kv struct {
		key uint64
		idx int
	}
	shards := make([][]kv, nb)
	var mu = make([]chSpin, nb)
	parallel.Blocks(0, n, 0, func(lo, hi int) {
		local := make([][]kv, nb)
		for i := lo; i < hi; i++ {
			k := key(i)
			s := mix(k) & mask
			local[s] = append(local[s], kv{k, i})
		}
		for s := range local {
			if len(local[s]) == 0 {
				continue
			}
			mu[s].lock()
			shards[s] = append(shards[s], local[s]...)
			mu[s].unlock()
		}
	})
	// Phase 2: per-shard grouping with a map; shards are independent.
	results := make([][]Group, nb)
	parallel.ForGrain(0, nb, 1, func(s int) {
		if len(shards[s]) == 0 {
			return
		}
		m := make(map[uint64][]int, len(shards[s])/2+1)
		for _, e := range shards[s] {
			m[e.key] = append(m[e.key], e.idx)
		}
		gs := make([]Group, 0, len(m))
		for k, idxs := range m {
			sort.Ints(idxs)
			gs = append(gs, Group{Key: k, Indices: idxs})
		}
		results[s] = gs
	})
	var out []Group
	for _, gs := range results {
		out = append(out, gs...)
	}
	return out
}

// Dedup returns the distinct values among xs, in unspecified order, via
// the sharded semisort — expected O(n) work instead of the O(n log n)
// sort-then-uniq it replaces. It is the generic bulk-dedup primitive;
// consumers that can piggyback a claim on a shared-memory write they
// already perform — the Delaunay round engine's per-face round stamp —
// skip even this pass (see internal/delaunay/DESIGN.md and its
// BenchmarkDelaunayRoundDedup ablation). SCC's combine needs grouping
// with per-group contents, not dedup, and keeps Semisort directly.
func Dedup(xs []uint64) []uint64 {
	gs := Semisort(len(xs), func(i int) uint64 { return xs[i] })
	out := make([]uint64, len(gs))
	for i, g := range gs {
		out[i] = g.Key
	}
	return out
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chSpin is a tiny mutex used for shard appends (cheaper than sync.Mutex is
// not worth chasing here; it wraps one). Kept as a named type so the shard
// array pads nicely.
type chSpin struct {
	mu padMutex
}

func (c *chSpin) lock()   { c.mu.Lock() }
func (c *chSpin) unlock() { c.mu.Unlock() }

package hashtable

// Tests specific to the seqlock inline-slot table: torn-read stress (the
// seqlock's whole job is multi-word consistency), allocation pins for the
// write paths (the reason the table exists), and a phase-stress run with
// exact final contents, mirroring stress_test.go. The oracle and fuzz
// suites also replay every stream through LockFreeInline (oracle_test.go,
// fuzz_test.go).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// pairVal is a two-word POD whose halves must always be observed
// together: b is derived from a, so any torn read is detectable.
type pairVal struct {
	a, b uint64
}

const pairMagic = 0x9e3779b97f4a7c15

func encPair(v pairVal) (uint64, uint64) { return v.a, v.b }
func decPair(a, b uint64) pairVal        { return pairVal{a, b} }

func newInlinePair(capacity int) *LockFreeInline[int, pairVal] {
	return NewLockFreeInline[int, pairVal](capacity,
		func(k int) uint64 { return Mix64(uint64(k)) }, encPair, decPair)
}

func newInlineInt(capacity int) *LockFreeInline[int, int] {
	return NewLockFreeInline[int, int](capacity,
		func(k int) uint64 { return Mix64(uint64(k)) }, EncInt, DecInt)
}

// TestInlineTornReadStress hammers a small key space with two-word writes
// whose halves are linked (b = a*magic), while readers assert every
// snapshot is internally consistent. Concurrent inserts of fresh keys
// force cooperative migrations under the readers' feet, so frozen slots
// and installs are read through the same seqlock path. Run under -race by
// the CI race job.
func TestInlineTornReadStress(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	writes, growKeys := 20000, 4000
	if testing.Short() {
		writes, growKeys = 4000, 800
	}
	m := newInlinePair(2) // tiny: every run crosses several migrations
	const hotKeys = 16
	var stop atomic.Bool
	var torn atomic.Int64
	var writers, readers sync.WaitGroup

	// Writers: each write keeps the invariant b == a*pairMagic.
	for g := 0; g < p; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < writes; i++ {
				a := uint64(g)<<32 | uint64(i)
				m.Store(i%hotKeys, pairVal{a, a * pairMagic})
				m.Update((i+g)%hotKeys, func(old pairVal, ok bool) pairVal {
					if ok && old.b != old.a*pairMagic {
						torn.Add(1)
					}
					na := old.a + 1
					return pairVal{na, na * pairMagic}
				})
			}
		}(g)
	}
	// Growers: insert fresh keys so migrations run concurrently with the
	// hot-key traffic above.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < growKeys; i++ {
			a := uint64(1_000_000 + i)
			m.Store(1000+i, pairVal{a, a * pairMagic})
		}
	}()
	// Readers: every observed value must satisfy the invariant.
	for g := 0; g < p; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				for k := 0; k < hotKeys; k++ {
					if v, ok := m.Load(k); ok && v.b != v.a*pairMagic {
						torn.Add(1)
					}
				}
			}
		}()
	}

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("observed %d torn reads", n)
	}
	// Post-quiescence: grown keys all present and consistent.
	for i := 0; i < growKeys; i++ {
		v, ok := m.Load(1000 + i)
		if !ok || v.b != v.a*pairMagic {
			t.Fatalf("grown key %d = (%+v,%v), want consistent pair", 1000+i, v, ok)
		}
	}
}

// TestInlineWriteNoAlloc pins the point of the inline table: Store,
// winning Update, UpdateIf (both paths), Delete and Load allocate nothing
// once the table is at capacity.
func TestInlineWriteNoAlloc(t *testing.T) {
	m := newInlinePair(1024)
	for i := 0; i < 256; i++ {
		a := uint64(i)
		m.Store(i, pairVal{a, a * pairMagic})
	}
	checks := []struct {
		name string
		op   func()
	}{
		{"store", func() {
			a := uint64(42)
			m.Store(7, pairVal{a, a * pairMagic})
		}},
		{"update", func() {
			m.Update(9, func(old pairVal, ok bool) pairVal {
				na := old.a + 1
				return pairVal{na, na * pairMagic}
			})
		}},
		{"updateif-write", func() {
			m.UpdateIf(11, func(old pairVal, ok bool) (pairVal, bool) {
				na := old.a + 1
				return pairVal{na, na * pairMagic}, true
			})
		}},
		{"updateif-noop", func() {
			m.UpdateIf(13, func(old pairVal, ok bool) (pairVal, bool) {
				return old, false
			})
		}},
		{"load", func() { m.Load(15) }},
		{"delete-absent", func() { m.Delete(1 << 20) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// TestInlineGrowth fills a tiny table far past several growths and checks
// every key, including interleaved deletes (tombstones must not resurrect
// across migrations).
func TestInlineGrowth(t *testing.T) {
	m := newInlineInt(2)
	const n = 5000
	for i := 0; i < n; i++ {
		m.Store(i, i*3)
		if i%7 == 0 {
			m.Delete(i / 2)
		}
	}
	// A delete of k/2 at step i only sticks if k/2 was not re-stored later;
	// replay sequentially for the expected state.
	want := map[int]int{}
	for i := 0; i < n; i++ {
		want[i] = i * 3
		if i%7 == 0 {
			delete(want, i/2)
		}
	}
	if got := m.Len(); got != len(want) {
		t.Fatalf("Len=%d want %d", got, len(want))
	}
	for k, w := range want {
		if v, ok := m.Load(k); !ok || v != w {
			t.Fatalf("key %d = (%d,%v), want %d", k, v, ok, w)
		}
	}
}

// TestInlineStressPhases is stress_test.go's exact-contents phase stress
// run against the inline table.
func TestInlineStressPhases(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	perG, incs, shared := 2000, 500, 97
	if testing.Short() {
		perG, incs = 400, 100
	}
	m := newInlineInt(2)
	bar := newBarrier(p)
	var wg sync.WaitGroup
	errs := make(chan string, p)
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := g*perG + i
				m.Store(k, k+1)
			}
			for i := 0; i < incs; i++ {
				m.Update(1_000_000+i%shared, func(old int, ok bool) int { return old + 1 })
			}
			bar.await()
			for i := 0; i < perG; i++ {
				k := ((g+1)%p)*perG + i
				if v, ok := m.Load(k); !ok || v != k+1 {
					errs <- "phase2 missing or wrong key"
					break
				}
			}
			bar.await()
			for i := 0; i < perG; i++ {
				k := g*perG + i
				if k%2 == 1 {
					m.Delete(k)
				} else {
					m.Update(k, func(old int, ok bool) int { return old * 2 })
				}
			}
			bar.await()
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	n := p * perG
	wantLen := n/2 + shared
	if got := m.Len(); got != wantLen {
		t.Fatalf("Len=%d want %d", got, wantLen)
	}
	for k := 0; k < n; k++ {
		v, ok := m.Load(k)
		if k%2 == 1 {
			if ok {
				t.Fatalf("deleted key %d still present (=%d)", k, v)
			}
			continue
		}
		if !ok || v != (k+1)*2 {
			t.Fatalf("key %d = (%d,%v), want %d", k, v, ok, (k+1)*2)
		}
	}
	total := 0
	for i := 0; i < shared; i++ {
		v, ok := m.Load(1_000_000 + i)
		if !ok {
			t.Fatalf("shared counter %d missing", i)
		}
		total += v
	}
	if total != p*incs {
		t.Fatalf("shared counters lost increments: total=%d want %d", total, p*incs)
	}
}

package hashtable

// Oracle equivalence tests: randomized operation streams are replayed
// against a plain Go map (the oracle), the sharded Map, and the LockFree
// table, asserting identical observable behavior op by op — the testing
// discipline of the RunType2Seq equivalence suite applied to the table.
// Table capacities are chosen tiny so the lock-free replays cross several
// forced resizes.

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// oracleOp codes for the replay streams (shared with the fuzz target).
const (
	opStore = iota
	opLoad
	opDelete
	opUpdate
	opLoadOrStore
	opUpdateIf  // conditional write: min-write discipline with no-op path
	opGrowBurst // bulk insert to force a resize mid-stream
	numOps
)

// replayStep applies one op to a Table and to the map oracle and fails the
// test on any observable divergence.
func replayStep(t *testing.T, impl string, step int, tab Table[int, int], oracle map[int]int, op, key, val int) {
	t.Helper()
	switch op {
	case opStore:
		tab.Store(key, val)
		oracle[key] = val
	case opLoad:
		got, ok := tab.Load(key)
		want, wok := oracle[key]
		if ok != wok || (ok && got != want) {
			t.Fatalf("%s step %d: Load(%d) = (%d,%v), oracle (%d,%v)", impl, step, key, got, ok, want, wok)
		}
	case opDelete:
		tab.Delete(key)
		delete(oracle, key)
	case opUpdate:
		// Update semantics: absent -> val, present -> old+val. Pure, as the
		// lock-free contract requires.
		tab.Update(key, func(old int, ok bool) int {
			if !ok {
				return val
			}
			return old + val
		})
		if old, ok := oracle[key]; ok {
			oracle[key] = old + val
		} else {
			oracle[key] = val
		}
	case opLoadOrStore:
		got, loaded := tab.LoadOrStore(key, val)
		want, wok := oracle[key]
		if loaded != wok {
			t.Fatalf("%s step %d: LoadOrStore(%d) loaded=%v, oracle present=%v", impl, step, key, loaded, wok)
		}
		if loaded && got != want {
			t.Fatalf("%s step %d: LoadOrStore(%d) = %d, oracle %d", impl, step, key, got, want)
		}
		if !loaded {
			if got != val {
				t.Fatalf("%s step %d: LoadOrStore(%d) stored %d, want %d", impl, step, key, got, val)
			}
			oracle[key] = val
		}
	case opUpdateIf:
		// Min-write discipline: write val only if the key is absent or val
		// is strictly smaller — the canonicalizePar idiom, whose no-op path
		// must leave the table untouched.
		tab.UpdateIf(key, func(old int, ok bool) (int, bool) {
			if ok && old <= val {
				return old, false
			}
			return val, true
		})
		if old, ok := oracle[key]; !ok || val < old {
			oracle[key] = val
		}
	case opGrowBurst:
		for i := 0; i < 64; i++ {
			k := key + i
			tab.Store(k, k^val)
			oracle[k] = k ^ val
		}
	}
}

// checkContents asserts a Table's full contents match the oracle, via both
// Range and Len and per-key Loads.
func checkContents(t *testing.T, impl string, tab Table[int, int], oracle map[int]int) {
	t.Helper()
	if got := tab.Len(); got != len(oracle) {
		t.Fatalf("%s: Len=%d oracle=%d", impl, got, len(oracle))
	}
	seen := map[int]int{}
	tab.Range(func(k, v int) bool {
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s: Range yielded key %d twice (%d, %d)", impl, k, prev, v)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(oracle) {
		t.Fatalf("%s: Range yielded %d entries, oracle %d", impl, len(seen), len(oracle))
	}
	for k, want := range oracle {
		if got, ok := seen[k]; !ok || got != want {
			t.Fatalf("%s: Range[%d] = (%d,%v), oracle %d", impl, k, got, ok, want)
		}
		if got, ok := tab.Load(k); !ok || got != want {
			t.Fatalf("%s: Load(%d) = (%d,%v), oracle %d", impl, k, got, ok, want)
		}
	}
}

// TestOracleEquivalence replays randomized streams over several key-space
// widths and initial capacities. Small key spaces stress Update/Delete
// interleavings; wide ones with grow bursts stress resize.
func TestOracleEquivalence(t *testing.T) {
	impls := func() map[string]Table[int, int] {
		hash := func(k int) uint64 { return Mix64(uint64(k)) }
		return map[string]Table[int, int]{
			"sharded":  New[int, int](8, 16, hash),
			"lockfree": NewLockFree[int, int](2, hash), // tiny: forces resizes
			"inline":   NewLockFreeInline[int, int](2, hash, EncInt, DecInt),
		}
	}
	for _, cfg := range []struct {
		keys, steps int
		seed        uint64
	}{
		{keys: 8, steps: 4000, seed: 1},
		{keys: 64, steps: 4000, seed: 2},
		{keys: 1024, steps: 8000, seed: 3},
		{keys: 1 << 16, steps: 8000, seed: 4}, // many grow bursts land
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("keys=%d/seed=%d", cfg.keys, cfg.seed), func(t *testing.T) {
			for impl, tab := range impls() {
				r := rng.New(cfg.seed) // same stream for every implementation
				oracle := map[int]int{}
				for step := 0; step < cfg.steps; step++ {
					op := int(r.Uint64() % numOps)
					key := int(r.Uint64() % uint64(cfg.keys))
					val := int(r.Uint64() % 1000)
					replayStep(t, impl, step, tab, oracle, op, key, val)
				}
				checkContents(t, impl, tab, oracle)
			}
		})
	}
}

// TestOracleSliceValues replays the face-map/grid value shape (slices under
// Update-append) against the oracle, with copy-on-write appends as the
// lock-free contract requires.
func TestOracleSliceValues(t *testing.T) {
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	impls := map[string]Table[int, []int32]{
		"sharded":  New[int, []int32](8, 16, hash),
		"lockfree": NewLockFree[int, []int32](2, hash),
	}
	for impl, tab := range impls {
		r := rng.New(7)
		oracle := map[int][]int32{}
		const keys, steps = 97, 6000
		for step := 0; step < steps; step++ {
			key := int(r.Uint64() % keys)
			switch r.Uint64() % 4 {
			case 0, 1, 2: // append-heavy, like grid inserts
				v := int32(step)
				tab.Update(key, func(old []int32, _ bool) []int32 {
					ns := make([]int32, len(old)+1)
					copy(ns, old)
					ns[len(old)] = v
					return ns
				})
				oracle[key] = append(oracle[key], v)
			case 3:
				tab.Delete(key)
				delete(oracle, key)
			}
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("%s: Len=%d oracle=%d", impl, tab.Len(), len(oracle))
		}
		for k, want := range oracle {
			got, ok := tab.Load(k)
			if !ok || len(got) != len(want) {
				t.Fatalf("%s: Load(%d) len=%d ok=%v, oracle len=%d", impl, k, len(got), ok, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: key %d element %d = %d, oracle %d", impl, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOracleImplsAgree replays one stream through all three
// implementations side by side and asserts they agree with each other
// (not just the oracle) on every returned value — the sharded map is the
// reference implementation for both lock-free tables.
func TestOracleImplsAgree(t *testing.T) {
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	a := New[int, int](4, 8, hash)
	others := map[string]Table[int, int]{
		"lockfree": NewLockFree[int, int](2, hash),
		"inline":   NewLockFreeInline[int, int](2, hash, EncInt, DecInt),
	}
	r := rng.New(11)
	const keys, steps = 512, 20000
	for step := 0; step < steps; step++ {
		op := int(r.Uint64() % numOps)
		key := int(r.Uint64() % keys)
		val := int(r.Uint64() % 1000)
		switch op {
		case opStore:
			a.Store(key, val)
			for _, b := range others {
				b.Store(key, val)
			}
		case opLoad:
			av, aok := a.Load(key)
			for impl, b := range others {
				bv, bok := b.Load(key)
				if av != bv || aok != bok {
					t.Fatalf("step %d: Load(%d) sharded (%d,%v) %s (%d,%v)", step, key, av, aok, impl, bv, bok)
				}
			}
		case opDelete:
			a.Delete(key)
			for _, b := range others {
				b.Delete(key)
			}
		case opUpdate:
			f := func(old int, ok bool) int {
				if !ok {
					return val
				}
				return old*3 + val
			}
			av := a.UpdateAndGet(key, f)
			for impl, b := range others {
				bv := b.UpdateAndGet(key, f)
				if av != bv {
					t.Fatalf("step %d: UpdateAndGet(%d) sharded %d %s %d", step, key, av, impl, bv)
				}
			}
		case opLoadOrStore:
			av, al := a.LoadOrStore(key, val)
			for impl, b := range others {
				bv, bl := b.LoadOrStore(key, val)
				if av != bv || al != bl {
					t.Fatalf("step %d: LoadOrStore(%d) sharded (%d,%v) %s (%d,%v)", step, key, av, al, impl, bv, bl)
				}
			}
		case opGrowBurst:
			for i := 0; i < 64; i++ {
				a.Store(key+i, i)
				for _, b := range others {
					b.Store(key+i, i)
				}
			}
		}
	}
	for impl, b := range others {
		if a.Len() != b.Len() {
			t.Fatalf("final Len: sharded %d %s %d", a.Len(), impl, b.Len())
		}
		a.Range(func(k, v int) bool {
			if bv, ok := b.Load(k); !ok || bv != v {
				t.Fatalf("key %d: sharded %d, %s (%d,%v)", k, v, impl, bv, ok)
			}
			return true
		})
	}
}

package hashtable

// Tests for the epoch/snapshot layer (epoch.go): snapshot semantics
// across all three implementations against the frozen mapSnap oracle,
// the regular-read guarantee, deferred reclamation of superseded slot
// arrays, the round-prefix completeness of boundary snapshots, the
// torn-read pins for the seqlock-validated Range/Len/snapshot paths
// (satellite bugfix of this PR), and the ridtdebug phase-violation
// detector. The storm tests are run under -race by the CI race job.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

// snapImpls builds one table per implementation for the shared tests.
func snapImpls() map[string]func() Table[int, int] {
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	return map[string]func() Table[int, int]{
		"map":      func() Table[int, int] { return New[int, int](8, 64, hash) },
		"lockfree": func() Table[int, int] { return NewLockFree[int, int](4, hash) },
		"inline":   func() Table[int, int] { return NewLockFreeInline[int, int](4, hash, EncInt, DecInt) },
	}
}

// TestSnapshotQuiesced: a snapshot taken at a quiesced epoch boundary
// holds exactly the committed contents — Load, Len, and Range all agree
// with the oracle, for every implementation. The insert count is chosen
// to force several migrations first, so the pinned root is a flattened
// table that absorbed forwarding.
func TestSnapshotQuiesced(t *testing.T) {
	const n = 3000
	for name, mk := range snapImpls() {
		t.Run(name, func(t *testing.T) {
			h := mk()
			for i := 0; i < n; i++ {
				h.Store(i, i*3)
			}
			h.Delete(17)
			h.Delete(n - 1)
			if e := h.AdvanceEpoch(); e != 1 {
				t.Fatalf("AdvanceEpoch = %d, want 1", e)
			}
			s := h.Snapshot()
			defer s.Close()
			if s.Epoch() != 1 {
				t.Fatalf("snapshot epoch = %d, want 1", s.Epoch())
			}
			if got := s.Len(); got != n-2 {
				t.Fatalf("snapshot Len = %d, want %d", got, n-2)
			}
			seen := make(map[int]int, n)
			s.Range(func(k, v int) bool {
				if _, dup := seen[k]; dup {
					t.Fatalf("Range emitted key %d twice", k)
				}
				seen[k] = v
				return true
			})
			if len(seen) != n-2 {
				t.Fatalf("Range emitted %d keys, want %d", len(seen), n-2)
			}
			for i := 0; i < n; i++ {
				want := i != 17 && i != n-1
				v, ok := s.Load(i)
				if ok != want || (ok && v != i*3) {
					t.Fatalf("snapshot Load(%d) = (%d,%v), want present=%v val=%d", i, v, ok, want, i*3)
				}
				if rv, rok := seen[i], want; (rok && rv != i*3) || (rok != want) {
					t.Fatalf("Range disagrees at key %d", i)
				}
			}
			// Early-exit Range.
			calls := 0
			s.Range(func(k, v int) bool { calls++; return false })
			if calls != 1 {
				t.Fatalf("Range ignored early exit: %d calls", calls)
			}
			s.Close() // second Close below via defer: must be idempotent
		})
	}
}

// TestSnapshotRegularReads pins the write-visibility contract: after a
// snapshot, in-place overwrites MAY be visible through the lock-free
// snapshots (the snapshot pins the array, not the values) but MUST be
// one of the two committed values — while the Map snapshot, a frozen
// copy, never sees them. Keys inserted after the snapshot into a grown
// successor table are invisible to the pinned root.
func TestSnapshotRegularReads(t *testing.T) {
	for name, mk := range snapImpls() {
		t.Run(name, func(t *testing.T) {
			h := mk()
			const n = 100
			for i := 0; i < n; i++ {
				h.Store(i, 1)
			}
			h.AdvanceEpoch()
			s := h.Snapshot()
			defer s.Close()
			for i := 0; i < n; i++ {
				h.Store(i, 2)
			}
			frozen := name == "map"
			for i := 0; i < n; i++ {
				v, ok := s.Load(i)
				if !ok {
					t.Fatalf("Load(%d) lost a pre-snapshot key", i)
				}
				if frozen && v != 1 {
					t.Fatalf("frozen map snapshot saw post-snapshot write: Load(%d)=%d", i, v)
				}
				if v != 1 && v != 2 {
					t.Fatalf("Load(%d)=%d is neither committed value", i, v)
				}
			}
		})
	}
}

// TestSnapshotTornReadStorm is the serve-side half of the satellite
// torn-read fix: snapshot Load/Range/Len on the inline table go through
// the validated seqlock read, so a reader storming alongside two-word
// writers never observes a half-written value — including reads through
// frozen (moved) slots while migrations run underneath. -race covered.
func TestSnapshotTornReadStorm(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	writes, growKeys := 20000, 4000
	if testing.Short() {
		writes, growKeys = 4000, 800
	}
	m := newInlinePair(2) // tiny: the run crosses several migrations
	const hotKeys = 16
	var stop atomic.Bool
	var torn atomic.Int64
	var writers, readers sync.WaitGroup

	for g := 0; g < p; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			r := rng.New(seed)
			for i := 0; i < writes; i++ {
				a := r.Uint64() | 1
				m.Store(int(r.Uint64()%hotKeys), pairVal{a, a * pairMagic})
			}
		}(uint64(g)*77 + 1)
	}
	writers.Add(1)
	go func() { // migration pressure: fresh keys grow the table
		defer writers.Done()
		for i := 0; i < growKeys; i++ {
			m.Store(hotKeys+i, pairVal{uint64(i) | 1, (uint64(i) | 1) * pairMagic})
		}
	}()
	check := func(v pairVal) {
		if v.b != v.a*pairMagic {
			torn.Add(1)
		}
	}
	for g := 0; g < p; g++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			r := rng.New(seed)
			for !stop.Load() {
				s := m.Snapshot()
				for i := 0; i < 64; i++ {
					if v, ok := s.Load(int(r.Uint64() % hotKeys)); ok {
						check(v)
					}
				}
				s.Range(func(_ int, v pairVal) bool { check(v); return true })
				_ = s.Len()
				s.Close()
			}
		}(uint64(g)*991 + 5)
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("observed %d torn snapshot reads", n)
	}
}

// TestInlineRangeLenTornFree pins the satellite bugfix directly: the
// table-level Range and Len used to load the two value words raw; they
// now go through the validated seqlock read, so even when the phase
// contract is (incorrectly) violated by running them against a writer
// storm, every value they observe is a committed pair — the results are
// merely unordered, never torn. The test deliberately commits that
// violation, so it is skipped under the ridtdebug detector.
func TestInlineRangeLenTornFree(t *testing.T) {
	if debugPhase {
		t.Skip("deliberately violates the phase contract to pin torn-free reads; detector build would panic")
	}
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		p = 2
	}
	writes := 30000
	if testing.Short() {
		writes = 6000
	}
	const hotKeys = 16
	m := newInlinePair(64) // room for the hot set: no migration, pure in-place overwrites
	for k := 0; k < hotKeys; k++ {
		m.Store(k, pairVal{1, pairMagic})
	}
	var stop atomic.Bool
	var torn atomic.Int64
	var writers, readers sync.WaitGroup
	for g := 0; g < p; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			r := rng.New(seed)
			for i := 0; i < writes; i++ {
				a := r.Uint64() | 1
				m.Store(int(r.Uint64()%hotKeys), pairVal{a, a * pairMagic})
			}
		}(uint64(g)*13 + 3)
	}
	for g := 0; g < p; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				m.Range(func(_ int, v pairVal) bool {
					if v.b != v.a*pairMagic {
						torn.Add(1)
					}
					return true
				})
				if n := m.Len(); n < 0 || n > hotKeys {
					torn.Add(1)
				}
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("observed %d torn Range/Len reads", n)
	}
}

// TestSnapshotRoundPrefix is the table half of the linearizable-snapshot
// stress: a writer runs insert-only rounds, stamping each value with its
// round number and calling AdvanceEpoch at each boundary, while readers
// snapshot concurrently and assert the prefix property — a snapshot at
// epoch e contains EVERY key of rounds <= e (boundary flatten makes the
// pinned root complete) with exactly its stamped value (insert-only, so
// in-place visibility cannot alter it), and any keys of rounds > e it
// happens to expose are ignored by stamp filtering.
func TestSnapshotRoundPrefix(t *testing.T) {
	rounds, perRound := 40, 100
	if testing.Short() {
		rounds, perRound = 15, 60
	}
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	impls := map[string]Table[int, int]{
		"lockfree": NewLockFree[int, int](4, hash),
		"inline":   NewLockFreeInline[int, int](4, hash, EncInt, DecInt),
	}
	for name, h := range impls {
		t.Run(name, func(t *testing.T) {
			var stop atomic.Bool
			var wg sync.WaitGroup
			fail := make(chan string, 1)
			report := func(msg string) {
				select {
				case fail <- msg:
				default:
				}
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						s := h.Snapshot()
						e := s.Epoch()
						// Completeness + exactness over the committed prefix.
						for r := uint64(1); r <= e; r++ {
							base := (int(r) - 1) * perRound
							for i := 0; i < perRound; i += 7 {
								v, ok := s.Load(base + i)
								if !ok || uint64(v) != r {
									report("snapshot missed committed key")
									s.Close()
									return
								}
							}
						}
						n := 0
						s.Range(func(k, v int) bool {
							if uint64(v) <= e {
								n++
							}
							return true
						})
						if n != int(e)*perRound {
							report("prefix count mismatch in Range")
						}
						s.Close()
					}
				}()
			}
			for r := 1; r <= rounds; r++ {
				base := (r - 1) * perRound
				for i := 0; i < perRound; i++ {
					h.Store(base+i, r)
				}
				if got := h.AdvanceEpoch(); got != uint64(r) {
					t.Fatalf("AdvanceEpoch = %d, want %d", got, r)
				}
			}
			stop.Store(true)
			wg.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// TestDeferredReclamation observes the registry directly: a superseded
// root stays parked while a snapshot from its era is open, and is
// dropped once the snapshot closes and the epoch passes it.
func TestDeferredReclamation(t *testing.T) {
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	for name, h := range map[string]interface {
		Table[int, int]
		retiredCount() int
	}{
		"lockfree": NewLockFree[int, int](2, hash),
		"inline":   NewLockFreeInline[int, int](2, hash, EncInt, DecInt),
	} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 16; i++ {
				h.Store(i, i)
			}
			h.AdvanceEpoch()
			s := h.Snapshot()
			for i := 16; i < 2000; i++ { // force growth past the pinned root
				h.Store(i, i)
			}
			h.Flatten()
			if h.retiredCount() == 0 {
				t.Fatal("growth under an open snapshot retired nothing")
			}
			// The pinned view still serves its era's keys.
			for i := 0; i < 16; i++ {
				if v, ok := s.Load(i); !ok || v != i {
					t.Fatalf("pinned snapshot lost key %d", i)
				}
			}
			h.AdvanceEpoch() // boundary passes the retire epoch; snapshot still pins
			if h.retiredCount() == 0 {
				t.Fatal("retired table reclaimed while its snapshot was open")
			}
			s.Close()
			h.AdvanceEpoch()
			if n := h.retiredCount(); n != 0 {
				t.Fatalf("retiredCount = %d after close+advance, want 0", n)
			}
			// Clear also retires, and reclaims on the next boundary.
			h.Clear()
			if h.retiredCount() == 0 {
				t.Fatal("Clear did not retire the old root")
			}
			h.AdvanceEpoch()
			if n := h.retiredCount(); n != 0 {
				t.Fatalf("retiredCount = %d after Clear+advance, want 0", n)
			}
		})
	}
}

// TestSnapshotLoadAllocs pins the zero-alloc serve path: snapshot Load
// must not allocate on any implementation (ridtvet checks the same
// functions statically via //ridt:noalloc).
func TestSnapshotLoadAllocs(t *testing.T) {
	for name, mk := range snapImpls() {
		t.Run(name, func(t *testing.T) {
			h := mk()
			for i := 0; i < 500; i++ {
				h.Store(i, i)
			}
			h.AdvanceEpoch()
			s := h.Snapshot()
			defer s.Close()
			k := 0
			if avg := testing.AllocsPerRun(200, func() {
				_, _ = s.Load(k)
				k = (k + 17) % 700 // mix of hits and misses
			}); avg != 0 {
				t.Fatalf("snapshot Load allocates %.1f per op, want 0", avg)
			}
		})
	}
}

// TestPhaseViolationDetector asserts the ridtdebug detector fires: with
// a mutator registered as in flight, any phase operation must panic. In
// default builds the detector is compiled out and the test skips.
func TestPhaseViolationDetector(t *testing.T) {
	if !debugPhase {
		t.Skip("phase detector compiled out; run with -tags ridtdebug")
	}
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	lf := NewLockFree[int, int](4, hash)
	in := NewLockFreeInline[int, int](4, hash, EncInt, DecInt)
	for name, tc := range map[string]struct {
		h   Table[int, int]
		mut *phaseDebug
	}{
		"lockfree": {lf, &lf.phaseDebug},
		"inline":   {in, &in.phaseDebug},
	} {
		t.Run(name, func(t *testing.T) {
			h, mut := tc.h, tc.mut
			h.Store(1, 1)
			mut.muts.Add(1) // simulate a mutator parked mid-flight
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Len with a mutator in flight did not panic")
					}
				}()
				h.Len()
			}()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("AdvanceEpoch with a mutator in flight did not panic")
					}
				}()
				h.AdvanceEpoch()
			}()
			mut.muts.Add(-1)
			if h.Len() != 1 { // quiesced again: phase ops run fine
				t.Error("Len wrong after quiesce")
			}
		})
	}
}

//go:build ridtfault

package hashtable

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/parallel"
)

// Migration fault stress (ridtfault build): a seeded panic at the
// TableMigrate site kills one writer mid-growth. The site fires BEFORE the
// chunk claim, so no migration chunk is ever stranded claimed-but-unmoved;
// the surviving writers (or a final Flatten) complete the migration and
// the table must end exactly consistent with the writes that returned.

func runMigratePanicStress(t *testing.T, mk func() Table[int, int]) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	defer fault.Disable()
	const n = 1 << 14
	for _, seed := range []uint64{3, 17, 88} {
		if err := fault.Enable(fault.Config{
			Seed:      seed,
			PanicRate: 0.02,
			DelayRate: 0.1,
			MaxPanics: 1,
			SiteMask:  fault.MaskOf(fault.TableMigrate),
		}); err != nil {
			t.Fatal(err)
		}
		h := mk()
		done := make([]atomic.Bool, n)
		died := func() (died bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(fault.Injected); !ok {
						panic(r)
					}
					died = true
				}
			}()
			parallel.ForGrain(0, n, 32, func(i int) {
				h.Store(i, i*7+int(seed))
				done[i].Store(true)
			})
			return false
		}()
		if fault.Hits(fault.TableMigrate) == 0 {
			t.Fatalf("seed %d: migration site never reached — seed capacity too large?", seed)
		}
		// The dying writer's in-flight Store may or may not have landed;
		// everything flagged done MUST have, with its exact value, and any
		// stray entry must carry a value some write actually produced.
		h.Flatten()
		completed := 0
		for i := 0; i < n; i++ {
			v, ok := h.Load(i)
			if done[i].Load() {
				completed++
				if !ok || v != i*7+int(seed) {
					t.Fatalf("seed %d (died=%v): completed write %d missing or wrong (%d, %v)",
						seed, died, i, v, ok)
				}
			} else if ok && v != i*7+int(seed) {
				t.Fatalf("seed %d: stray entry %d has impossible value %d", seed, i, v)
			}
		}
		if died && completed == n {
			t.Fatalf("seed %d: a writer died yet all writes completed", seed)
		}
		// The abandoned table stays fully usable: finish the workload with
		// injection off and verify exact final contents.
		fault.Disable()
		parallel.ForGrain(0, n, 32, func(i int) { h.Store(i, i*7+int(seed)) })
		if h.Len() != n {
			t.Fatalf("seed %d: refilled table Len=%d, want %d", seed, h.Len(), n)
		}
		count := 0
		h.Range(func(k, v int) bool {
			if v != k*7+int(seed) {
				t.Errorf("seed %d: key %d has value %d after refill", seed, k, v)
			}
			count++
			return true
		})
		if t.Failed() {
			t.FailNow()
		}
		if count != n {
			t.Fatalf("seed %d: Range saw %d entries, want %d", seed, count, n)
		}
	}
}

func TestLockFreeMigratePanic(t *testing.T) {
	runMigratePanicStress(t, func() Table[int, int] {
		return NewLockFree[int, int](16, intHasher)
	})
}

func TestLockFreeInlineMigratePanic(t *testing.T) {
	runMigratePanicStress(t, func() Table[int, int] {
		return NewLockFreeInline[int, int](16, intHasher,
			func(v int) (uint64, uint64) { return uint64(v), 0 },
			func(a, _ uint64) int { return int(a) })
	})
}

// TestMigrateDelayStorm floods the migration site with delays only: every
// writer repeatedly loses its turn mid-help, which reorders cooperative
// migration arbitrarily without killing anyone. Contents must be exact.
func TestMigrateDelayStorm(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	defer fault.Disable()
	if err := fault.Enable(fault.Config{
		Seed:      5,
		DelayRate: 0.5,
		SiteMask:  fault.MaskOf(fault.TableMigrate),
	}); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 14
	h := NewLockFree[int, int](16, intHasher)
	parallel.ForGrain(0, n, 32, func(i int) { h.Store(i, i) })
	if h.Len() != n {
		t.Fatalf("Len=%d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := h.Load(i); !ok || v != i {
			t.Fatalf("key %d: (%d, %v)", i, v, ok)
		}
	}
}

package hashtable

import (
	"runtime"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/parallel"
)

// This file implements the seqlock inline-slot variant of the lock-free
// table (the ROADMAP "seqlock inline value slots for small PODs" item).
// The box-based LockFree table allocates an immutable value box per
// effective write; for small plain-old-data values (the Delaunay
// faceEntry, the SCC int32 minima) that box is the entire single-core
// write cost. LockFreeInline stores the value inline in the slot instead:
// two 64-bit words guarded by a per-slot seqlock, so winning
// Store/Update/UpdateIf writes allocate nothing at all.
//
// The table protocol — CAS-claimed linear-probing slots, value-level
// tombstones, cooperative chunk-claimed migration with poisoned empty
// slots and ghost freezing — is a faithful port of lockfree.go with the
// box pointer replaced by the seqlock cell; see DESIGN.md for the shared
// protocol and the differences.
//
// Seqlock cell. Each full slot carries a 32-bit meta word and two value
// words (w0, w1; the codec maps V to and from them):
//
//   - Readers load meta, then the words, then meta again; a stable,
//     unlocked meta means the words are a consistent snapshot.
//   - Writers claim the slot's write lock with one CAS on meta (the low
//     bit), mutate the words, and release by storing meta with the
//     sequence bumped — readers that overlapped retry. Writers on the
//     same slot exclude each other (a per-slot spinlock), which is what
//     lets an update callback run exactly once, after the migration
//     check, with no CAS-retry purity hazards; readers never block
//     writers and spin only while a write is in flight (the same bounded
//     window as the slotBusy spin in the box table). All word accesses
//     are atomic loads/stores, so the seqlock is race-detector clean.
//
// The sequence field wraps after 2^27 writes to one slot; a reader would
// have to sleep across exactly that many writes to be fooled (the
// standard seqlock caveat, irrelevant at these lifetimes).
const (
	imLock  uint32 = 1 << 0 // writer (or freezer) holds the slot
	imHas   uint32 = 1 << 1 // a value or tombstone has been published
	imDel   uint32 = 1 << 2 // tombstone: key present in chain, mapping absent
	imMoved uint32 = 1 << 3 // frozen by migration; words never change again
	imGhost uint32 = 1 << 4 // frozen with no published value (see lockfree.go)
	imFlags uint32 = imLock | imHas | imDel | imMoved | imGhost
	imSeq   uint32 = 1 << 5 // lowest sequence bit; bumped on every publish
)

type inSlot[K comparable] struct {
	state  atomic.Uint32 // slotEmpty/slotBusy/slotFull/slotMoved, as in lockfree.go
	meta   atomic.Uint32 // seqlock word: sequence | flags
	key    K
	w0, w1 atomic.Uint64 // encoded value, valid per the meta protocol
}

// read returns a consistent (meta, w0, w1) snapshot of the slot.
//
//ridt:noalloc
func (sl *inSlot[K]) read() (m uint32, a, b uint64) {
	for {
		m = sl.meta.Load()
		if m&imLock != 0 {
			runtime.Gosched() // write in flight; tiny window
			continue
		}
		if m&imHas == 0 {
			return m, 0, 0 // no published words to read
		}
		a, b = sl.w0.Load(), sl.w1.Load()
		if sl.meta.Load() == m {
			return m, a, b
		}
	}
}

// lock claims the slot's write lock and returns the pre-lock meta.
//
//ridt:noalloc
func (sl *inSlot[K]) lock() uint32 {
	for {
		m := sl.meta.Load()
		if m&imLock != 0 {
			runtime.Gosched()
			continue
		}
		if sl.meta.CompareAndSwap(m, m|imLock) {
			return m
		}
	}
}

// unlock releases the write lock with the slot unchanged (no publish, no
// sequence bump: nothing was written, so overlapping readers stay valid).
//
//ridt:noalloc
func (sl *inSlot[K]) unlock(m uint32) { sl.meta.Store(m) }

// publish releases the write lock with new flags and a bumped sequence.
// Words must have been stored before the call.
//
//ridt:noalloc
func (sl *inSlot[K]) publish(m, flags uint32) {
	sl.meta.Store(((m &^ imFlags) + imSeq) | flags)
}

type inTable[K comparable] struct {
	slots  []inSlot[K]
	mask   uint64
	limit  int64
	claims atomic.Int64

	next     atomic.Pointer[inTable[K]]
	migClaim atomic.Int64
	migDone  atomic.Int64
	nchunks  int64
}

func newInTable[K comparable](capacity int) *inTable[K] {
	n := 8
	for n < capacity {
		n *= 2
	}
	return &inTable[K]{
		slots:   make([]inSlot[K], n),
		mask:    uint64(n - 1),
		limit:   int64(n) * 3 / 4,
		nchunks: int64((n + migrateChunk - 1) / migrateChunk),
	}
}

// LockFreeInline is the inline-slot variant of LockFree for values that
// encode into two 64-bit words (small PODs). Same concurrency contract as
// LockFree: any mix of per-key operations from any number of goroutines,
// including across a growth; Len/Range/Clear/Reserve are phase operations.
// Update-style callbacks run exactly once per call, under the slot's write
// lock, but must still be pure (they may be re-invoked when a migration
// forces the operation to restart in the next table before the callback's
// effect was published).
//
// The zero value is not usable; construct with NewLockFreeInline.
type LockFreeInline[K comparable, V any] struct {
	epochCore
	phaseDebug
	hash Hasher[K]
	enc  func(V) (uint64, uint64)
	dec  func(uint64, uint64) V
	cur  atomic.Pointer[inTable[K]]
}

// NewLockFreeInline returns an inline-slot table pre-sized for capacity
// entries. enc/dec are the value codec; they must be pure inverses
// (dec(enc(v)) == v for every stored v).
func NewLockFreeInline[K comparable, V any](capacity int, hash Hasher[K],
	enc func(V) (uint64, uint64), dec func(uint64, uint64) V) *LockFreeInline[K, V] {
	h := &LockFreeInline[K, V]{hash: hash, enc: enc, dec: dec}
	h.cur.Store(newInTable[K](capacity*4/3 + 1))
	return h
}

func (h *LockFreeInline[K, V]) hashOf(k K) uint64 { return Mix64(h.hash(k)) }

// inFindRead probes t for k without claiming; same contract as findRead.
//
//ridt:noalloc
func inFindRead[K comparable](t *inTable[K], k K, hv uint64) (s *inSlot[K], descend bool) {
	for i, n := hv&t.mask, uint64(0); n <= t.mask; i, n = (i+1)&t.mask, n+1 {
		sl := &t.slots[i]
		for {
			switch sl.state.Load() {
			case slotEmpty:
				return nil, false
			case slotBusy:
				runtime.Gosched()
				continue
			case slotMoved:
				return nil, true
			case slotFull:
				if sl.key == k {
					return sl, false
				}
			}
			break
		}
	}
	return nil, false
}

// findClaim probes t for k, claiming the first empty slot if k is absent;
// same contract as the box table's findClaim.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) findClaim(t *inTable[K], k K, hv uint64) (s *inSlot[K], descend, ok bool) {
	for i, n := hv&t.mask, uint64(0); n <= t.mask; i, n = (i+1)&t.mask, n+1 {
		sl := &t.slots[i]
		for {
			switch sl.state.Load() {
			case slotEmpty:
				if !sl.state.CompareAndSwap(slotEmpty, slotBusy) {
					continue
				}
				sl.key = k
				sl.state.Store(slotFull)
				if c := t.claims.Add(1); c >= t.limit {
					h.grow(t, 0)
				}
				return sl, false, true
			case slotBusy:
				runtime.Gosched()
				continue
			case slotMoved:
				return nil, true, false
			case slotFull:
				if sl.key == k {
					return sl, false, true
				}
			}
			break
		}
	}
	return nil, false, false
}

func (h *LockFreeInline[K, V]) grow(t *inTable[K], minCap int) {
	if t.next.Load() == nil {
		factor := 4
		if len(t.slots) >= 1<<16 {
			factor = 2
		}
		want := factor * len(t.slots)
		if want < minCap {
			want = minCap
		}
		t.next.CompareAndSwap(nil, newInTable[K](want))
	}
	h.helpMigrate(t, 2)
}

func (h *LockFreeInline[K, V]) helpMigrate(t *inTable[K], maxChunks int) {
	h.helpMigrateCtl(t, maxChunks, true)
}

// helpMigrateCtl is helpMigrate with the fault site controllable; the
// nested help from installFrozen passes inject=false because its caller
// may hold a claimed-but-unfinished chunk of the outer table, and an
// injected death there would strand that chunk (the fault model only
// kills participants *between* protocol steps).
func (h *LockFreeInline[K, V]) helpMigrateCtl(t *inTable[K], maxChunks int, inject bool) {
	nt := t.next.Load()
	if nt == nil {
		return
	}
	for done := 0; maxChunks <= 0 || done < maxChunks; done++ {
		// Pre-claim fault site, as in LockFree.helpMigrate: a panic after
		// the claim would strand the chunk and hang flatten; before it, the
		// protocol is untouched.
		if inject && fault.Enabled {
			fault.Inject(fault.TableMigrate)
		}
		c := t.migClaim.Add(1) - 1
		if c >= t.nchunks {
			break
		}
		lo := int(c) * migrateChunk
		hi := lo + migrateChunk
		if hi > len(t.slots) {
			hi = len(t.slots)
		}
		for i := lo; i < hi; i++ {
			h.migrateSlot(&t.slots[i], nt)
		}
		if t.migDone.Add(1) == t.nchunks {
			h.advanceRoot()
		}
	}
}

// migrateSlot freezes one slot and installs its live value into nt. The
// freeze happens under the slot's write lock, so it cannot interleave with
// a half-finished write; once imMoved is published the words never change.
func (h *LockFreeInline[K, V]) migrateSlot(sl *inSlot[K], nt *inTable[K]) {
	for {
		switch sl.state.Load() {
		case slotEmpty:
			if sl.state.CompareAndSwap(slotEmpty, slotMoved) {
				return
			}
			continue
		case slotBusy:
			runtime.Gosched()
			continue
		case slotMoved:
			return
		}
		m := sl.lock()
		if m&imMoved != 0 {
			sl.unlock(m)
			return // already frozen (and installed) by a racing operation
		}
		if m&imHas == 0 {
			// Claimed but no value published yet: freeze as a ghost. The
			// pending publisher will take the lock, see the ghost, and redo
			// its write in the next table.
			sl.publish(m, imMoved|imGhost)
			return
		}
		sl.publish(m, (m&(imHas|imDel))|imMoved)
		if m&imDel == 0 {
			h.installFrozen(nt, sl.key, sl.w0.Load(), sl.w1.Load())
		}
		return
	}
}

// installFrozen writes a frozen value for k into nt, only if k has no
// published state there yet; the exactly-once discipline of the box
// table's installFrozen, with "no box" spelled "imHas clear".
func (h *LockFreeInline[K, V]) installFrozen(nt *inTable[K], k K, a, b uint64) {
	hv := h.hashOf(k)
	for {
		sl, descend, ok := h.findClaim(nt, k, hv)
		if ok {
			m := sl.lock()
			switch {
			case m&imGhost != 0:
				// nt's own migration ghost-froze our claimed slot before the
				// value landed: the key is still absent there, so the install
				// carries on to nt's next table.
				sl.unlock(m)
				nt = nt.next.Load()
				continue
			case m&(imHas|imMoved) != 0:
				// A newer write (or its frozen copy, or a genuine tombstone)
				// superseded the migrating value: drop it.
				sl.unlock(m)
				return
			}
			sl.w0.Store(a)
			sl.w1.Store(b)
			sl.publish(m, imHas)
			return
		}
		if descend {
			h.helpMigrateCtl(nt, 1, false)
			nt = nt.next.Load()
			continue
		}
		h.grow(nt, 0)
		h.helpMigrateCtl(nt, 1, false)
		nt = nt.next.Load()
	}
}

// completeMigration finishes k's migration out of a frozen slot (meta m,
// words a/b read under the slot lock) into t's successor.
func (h *LockFreeInline[K, V]) completeMigration(t *inTable[K], k K, m uint32, a, b uint64) {
	if m&imGhost == 0 && m&imDel == 0 {
		h.installFrozen(t.next.Load(), k, a, b)
	}
}

// Load returns the value for k, if present.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) Load(k K) (V, bool) {
	return h.loadFrom(h.cur.Load(), k)
}

// loadFrom is Load starting from a caller-pinned root table; snapshots
// read through it (see Snapshot). Every value read goes through the
// validated seqlock read, so a snapshot reader racing a writer storm can
// spin but never observe torn words.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) loadFrom(t *inTable[K], k K) (V, bool) {
	var zero V
	hv := h.hashOf(k)
	for t != nil {
		sl, descend := inFindRead(t, k, hv)
		if sl == nil {
			if !descend {
				return zero, false
			}
			t = t.next.Load()
			continue
		}
		m, a, b := sl.read()
		if m&imMoved != 0 {
			if nv, st := h.loadAfterFreeze(t.next.Load(), k, hv); st != loadMiss {
				if st == loadDeleted {
					return zero, false
				}
				return nv, true
			}
			// Not installed in next yet: the frozen state is current.
			if m&imHas == 0 || m&imDel != 0 {
				return zero, false
			}
			return h.dec(a, b), true
		}
		if m&imHas == 0 || m&imDel != 0 {
			// Claimed with no published value (linearize before the store),
			// or tombstoned.
			return zero, false
		}
		return h.dec(a, b), true
	}
	return zero, false
}

// loadAfterFreeze mirrors the box table's loadAfterFreeze: it
// distinguishes "not migrated yet" from "present" and "deleted since",
// chasing nested migrations.
func (h *LockFreeInline[K, V]) loadAfterFreeze(t *inTable[K], k K, hv uint64) (V, loadStatus) {
	var zero V
	for t != nil {
		sl, descend := inFindRead(t, k, hv)
		if sl == nil {
			if !descend {
				return zero, loadMiss
			}
			t = t.next.Load()
			continue
		}
		m, a, b := sl.read()
		if m&imHas == 0 && m&imMoved == 0 {
			return zero, loadMiss // claim without a value yet: not installed
		}
		if m&imMoved != 0 {
			if nv, st := h.loadAfterFreeze(t.next.Load(), k, hv); st != loadMiss {
				return nv, st
			}
			if m&imGhost != 0 {
				return zero, loadMiss // key never had a value here
			}
			if m&imDel != 0 {
				return zero, loadDeleted
			}
			return h.dec(a, b), loadHit
		}
		if m&imDel != 0 {
			return zero, loadDeleted
		}
		return h.dec(a, b), loadHit
	}
	return zero, loadMiss
}

// apply is the shared write path behind Store/Update/Delete/LoadOrStore.
// f maps the current state to (new value, write?); returning write=false
// leaves the slot as is. f runs exactly once, under the slot's write lock,
// after the migration check — but may be re-invoked if the operation must
// restart in the next table, so it must still be pure.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) apply(k K, f func(old V, present bool) (V, bool)) {
	if debugPhase {
		h.muts.Add(1)
		defer h.muts.Add(-1)
	}
	var zero V
	t := h.cur.Load()
	hv := h.hashOf(k)
	for {
		sl, descend, ok := h.findClaim(t, k, hv)
		if !ok {
			if descend {
				t = t.next.Load()
				continue
			}
			h.grow(t, 0)
			h.helpMigrate(t, 1)
			t = t.next.Load()
			continue
		}
		m := sl.lock()
		if m&imMoved != 0 {
			// Complete this key's migration before continuing in next, so no
			// window exists in which the frozen value could be lost.
			a, b := sl.w0.Load(), sl.w1.Load()
			sl.unlock(m)
			h.completeMigration(t, k, m, a, b)
			t = t.next.Load()
			continue
		}
		old, present := zero, false
		if m&imHas != 0 && m&imDel == 0 {
			old, present = h.dec(sl.w0.Load(), sl.w1.Load()), true
		}
		nv, write := f(old, present)
		if !write {
			if m&imHas == 0 {
				// A slot findClaim just claimed must not stay valueless:
				// "absent" is spelled tombstone; migration drops it.
				sl.publish(m, imHas|imDel)
			} else {
				sl.unlock(m)
			}
			return
		}
		a, b := h.enc(nv)
		sl.w0.Store(a)
		sl.w1.Store(b)
		sl.publish(m, imHas)
		return
	}
}

// Store sets the value for k. The write is allocation-free.
func (h *LockFreeInline[K, V]) Store(k K, v V) {
	h.apply(k, func(V, bool) (V, bool) { return v, true })
}

// Delete removes k (value-level tombstone, dropped at the next migration).
// Deleting an absent key claims nothing: the probe is read-only.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) Delete(k K) {
	if debugPhase {
		h.muts.Add(1)
		defer h.muts.Add(-1)
	}
	t := h.cur.Load()
	hv := h.hashOf(k)
	for t != nil {
		sl, descend := inFindRead(t, k, hv)
		if sl == nil {
			if !descend {
				return
			}
			t = t.next.Load()
			continue
		}
		m := sl.lock()
		if m&imMoved != 0 {
			a, b := sl.w0.Load(), sl.w1.Load()
			sl.unlock(m)
			h.completeMigration(t, k, m, a, b)
			t = t.next.Load()
			continue
		}
		if m&imHas == 0 || m&imDel != 0 {
			sl.unlock(m)
			return
		}
		sl.publish(m, imHas|imDel)
		return
	}
}

// Update applies f to the current value for k and stores the result.
// Winning writes allocate nothing (no value box). Same purity contract as
// the box table's Update.
func (h *LockFreeInline[K, V]) Update(k K, f func(old V, ok bool) V) {
	h.apply(k, func(old V, present bool) (V, bool) {
		return f(old, present), true
	})
}

// UpdateIf is Update with a leave-as-is escape hatch; both the no-op path
// (a plain read) and the write path are allocation-free.
//
//ridt:noalloc
func (h *LockFreeInline[K, V]) UpdateIf(k K, f func(old V, ok bool) (V, bool)) {
	old, ok := h.Load(k)
	if _, write := f(old, ok); !write {
		return
	}
	h.apply(k, f)
}

// UpdateAndGet is Update returning the stored value.
func (h *LockFreeInline[K, V]) UpdateAndGet(k K, f func(old V, ok bool) V) V {
	var res V
	h.apply(k, func(old V, present bool) (V, bool) {
		res = f(old, present)
		return res, true
	})
	return res
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v.
func (h *LockFreeInline[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	h.apply(k, func(old V, present bool) (V, bool) {
		if present {
			actual, loaded = old, true
			return old, false
		}
		actual, loaded = v, false
		return v, true
	})
	return actual, loaded
}

// Flatten drives any in-flight migration to completion. Phase operation:
// callers must quiesce mutators first. Exported for the same reason as
// LockFree.Flatten: after an abandoned or faulted round, it proves the
// table is migration-free and fully usable.
func (h *LockFreeInline[K, V]) Flatten() {
	h.assertQuiesced("Flatten")
	h.flatten()
}

// flatten is Flatten returning the flat root for internal bulk callers.
func (h *LockFreeInline[K, V]) flatten() *inTable[K] {
	for {
		t := h.cur.Load()
		if t.next.Load() == nil {
			return t
		}
		parallel.ForGrain(0, int(t.nchunks), 1, func(int) {
			h.helpMigrate(t, 1)
		})
		for t.migDone.Load() < t.nchunks {
			runtime.Gosched()
		}
		h.advanceRoot()
	}
}

// advanceRoot moves cur past fully migrated tables, retiring each
// drained table to the epoch registry: an open snapshot may still be
// reading its slot array (see epoch.go).
func (h *LockFreeInline[K, V]) advanceRoot() {
	for {
		t := h.cur.Load()
		nt := t.next.Load()
		if nt == nil || t.migDone.Load() < t.nchunks {
			return
		}
		if h.cur.CompareAndSwap(t, nt) {
			h.retire(t)
		}
	}
}

// Len returns the number of live entries. Phase operation.
//
// Meta and value words go through the validated seqlock read even though
// the phase contract says no writer can be in flight: Len shares its
// sweep discipline with the Snapshot path, which has no such contract,
// and the quiesced-case cost of sl.read() is the same two meta loads a
// racing reader would pay (the bug this fixes was a raw meta load that
// silently relied on the contract — a torn count the moment it was
// violated).
func (h *LockFreeInline[K, V]) Len() int {
	h.assertQuiesced("Len")
	t := h.flatten()
	nb := parallel.NumBlocks(len(t.slots), 4*migrateChunk)
	counts := make([]int64, nb)
	parallel.BlocksN(0, len(t.slots), nb, func(b, lo, hi int) {
		var n int64
		for i := lo; i < hi; i++ {
			sl := &t.slots[i]
			if sl.state.Load() != slotFull {
				continue
			}
			if m, _, _ := sl.read(); m&imHas != 0 && m&imDel == 0 {
				n++
			}
		}
		counts[b] = n
	})
	return int(parallel.Sum(counts))
}

// Range calls f for every entry until f returns false. Phase operation.
// Reads are seqlock-validated, as in Len: a racing writer can no longer
// hand f a value spliced from two different writes.
func (h *LockFreeInline[K, V]) Range(f func(k K, v V) bool) {
	h.assertQuiesced("Range")
	t := h.flatten()
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.state.Load() != slotFull {
			continue
		}
		m, a, b := sl.read()
		if m&imHas == 0 || m&imDel != 0 {
			continue
		}
		if !f(sl.key, h.dec(a, b)) {
			return
		}
	}
}

// Clear removes all entries by installing a fresh minimum-size table.
// The displaced root is retired, not dropped: open snapshots keep
// reading the old contents. Phase operation.
func (h *LockFreeInline[K, V]) Clear() {
	h.assertQuiesced("Clear")
	old := h.flatten()
	h.cur.Store(newInTable[K](0))
	h.retire(old)
}

// Reserve grows the table so at least capacity entries fit without a
// migration. Phase operation.
func (h *LockFreeInline[K, V]) Reserve(capacity int) {
	h.assertQuiesced("Reserve")
	t := h.flatten()
	need := capacity*4/3 + 1
	if len(t.slots) >= need {
		return
	}
	h.grow(t, need)
	h.flatten()
}

// AdvanceEpoch flattens the table (phase operation) and bumps the epoch,
// reclaiming retired slot arrays no open snapshot can reference; see
// LockFree.AdvanceEpoch. The Delaunay round engine calls it on the face
// map at each committed round boundary.
func (h *LockFreeInline[K, V]) AdvanceEpoch() uint64 {
	h.assertQuiesced("AdvanceEpoch")
	if fault.Enabled {
		fault.Inject(fault.EpochPublish)
	}
	h.flatten()
	return h.advance()
}

// inSnap is LockFreeInline's snapshot: an O(1) pin of the root table plus
// an epoch registration keeping retired slot arrays alive (see epoch.go).
// All reads go through the validated seqlock read, so snapshot readers
// racing a writer storm spin through in-flight writes but never observe
// torn words.
type inSnap[K comparable, V any] struct {
	snapRef
	h    *LockFreeInline[K, V]
	root *inTable[K]
}

// Snapshot opens a read-only view of the table. O(1): registers the
// current epoch (before pinning the root — see epochCore.register) and
// pins the root pointer.
func (h *LockFreeInline[K, V]) Snapshot() Snap[K, V] {
	s := &inSnap[K, V]{h: h}
	s.ec, s.epoch = &h.epochCore, h.register()
	s.root = h.cur.Load()
	return s
}

//ridt:noalloc
func (s *inSnap[K, V]) Load(k K) (V, bool) {
	return s.h.loadFrom(s.root, k)
}

// visit calls f for every entry visible from the pinned root until f
// returns false; moved slots resolve forward through the chain (same
// contract as lfSnap.visit).
func (s *inSnap[K, V]) visit(f func(k K, v V) bool) {
	t := s.root
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.state.Load() != slotFull {
			continue
		}
		m, a, b := sl.read()
		if m&imMoved != 0 {
			hv := s.h.hashOf(sl.key)
			if v, st := s.h.loadAfterFreeze(t.next.Load(), sl.key, hv); st != loadMiss {
				if st == loadDeleted {
					continue
				}
				if !f(sl.key, v) {
					return
				}
				continue
			}
			if m&imGhost != 0 || m&imHas == 0 || m&imDel != 0 {
				continue
			}
			if !f(sl.key, s.h.dec(a, b)) {
				return
			}
			continue
		}
		if m&imHas == 0 || m&imDel != 0 {
			continue
		}
		if !f(sl.key, s.h.dec(a, b)) {
			return
		}
	}
}

func (s *inSnap[K, V]) Len() int {
	n := 0
	s.visit(func(K, V) bool { n++; return true })
	return n
}

func (s *inSnap[K, V]) Range(f func(k K, v V) bool) {
	s.visit(f)
}

// Codecs for the common small-POD value shapes.

// EncInt32/DecInt32 encode an int32 value (the SCC canonicalize minima).
func EncInt32(v int32) (uint64, uint64) { return uint64(uint32(v)), 0 }
func DecInt32(a, _ uint64) int32        { return int32(uint32(a)) }

// EncInt/DecInt encode an int value (used by the oracle/fuzz suites).
func EncInt(v int) (uint64, uint64) { return uint64(v), 0 }
func DecInt(a, _ uint64) int        { return int(a) }

package hashtable

// BenchmarkHashtable compares the sharded mutex map against the lock-free
// table under the op mixes the consumers generate: bulk insert (grid
// build), read-mostly lookup (face-map activation), pure update (face
// attachment / cell append), and a mixed stream. Results are recorded in
// BENCH_hashtable.json; the CI bench job gates them against
// BENCH_baseline.txt.

import (
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

const benchN = 1 << 16

func benchTables(capacity int) map[string]func() Table[uint64, int64] {
	hash := func(k uint64) uint64 { return Mix64(k) }
	return map[string]func() Table[uint64, int64]{
		"sharded": func() Table[uint64, int64] {
			return New[uint64, int64](4*parallel.MaxProcs(), capacity, hash)
		},
		"lockfree": func() Table[uint64, int64] {
			return NewLockFree[uint64, int64](capacity, hash)
		},
		// The seqlock inline-slot table: same protocol, no value box on
		// writes. This is the ROADMAP single-core write-gap ablation arm.
		"inline": func() Table[uint64, int64] {
			return NewLockFreeInline[uint64, int64](capacity, hash,
				func(v int64) (uint64, uint64) { return uint64(v), 0 },
				func(a, _ uint64) int64 { return int64(a) })
		},
	}
}

// BenchmarkHashtableInsert bulk-inserts distinct keys in parallel, presized
// (the grid-build pattern).
func BenchmarkHashtableInsert(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mk()
				parallel.ForGrain(0, benchN, 256, func(k int) {
					m.Store(uint64(k), int64(k))
				})
			}
		})
	}
}

// BenchmarkHashtableInsertGrow is the same insert load but starting from a
// tiny table, so the lock-free path pays its cooperative migrations and the
// sharded path pays Go map rehashes.
func BenchmarkHashtableInsertGrow(b *testing.B) {
	for name, mk := range benchTables(8) {
		b.Run("impl="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mk()
				parallel.ForGrain(0, benchN, 256, func(k int) {
					m.Store(uint64(k), int64(k))
				})
			}
		})
	}
}

// BenchmarkHashtableLookup is a read-only parallel probe of a populated
// table (the face-map activation pattern): 90% hits, 10% misses.
func BenchmarkHashtableLookup(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			b.ResetTimer()
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				var local atomic.Int64
				parallel.ForGrain(0, benchN, 256, func(k int) {
					probe := uint64(k)
					if k%10 == 9 {
						probe += benchN // miss
					}
					if v, ok := m.Load(probe); ok {
						local.Add(v)
					}
				})
				sink.Store(local.Load())
			}
		})
	}
}

// BenchmarkHashtableUpdate hammers read-modify-writes over a small hot key
// space (the face-attachment pattern: ~8 writers per key).
func BenchmarkHashtableUpdate(b *testing.B) {
	const keys = benchN / 8
	for name, mk := range benchTables(keys) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parallel.ForGrain(0, benchN, 256, func(k int) {
					m.Update(uint64(k%keys), func(old int64, ok bool) int64 { return old + 1 })
				})
			}
		})
	}
}

// BenchmarkHashtableMixed interleaves the three op kinds 2:1:1 over one
// table (steady-state incremental rounds).
func BenchmarkHashtableMixed(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k += 2 {
				m.Store(uint64(k), int64(k))
			}
			b.ResetTimer()
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				var local atomic.Int64
				parallel.ForGrain(0, benchN, 256, func(k int) {
					switch k % 4 {
					case 0, 1:
						if v, ok := m.Load(uint64(k)); ok {
							local.Add(v)
						}
					case 2:
						m.Store(uint64(k), int64(k))
					case 3:
						m.Update(uint64(k), func(old int64, ok bool) int64 { return old + 1 })
					}
				})
				sink.Store(local.Load())
			}
		})
	}
}

// BenchmarkHashtableRange sweeps a populated table (the bulk-phase shape):
// sequential Range on both, plus the pool-parallel RangePar on lockfree.
func BenchmarkHashtableRange(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var total int64
				m.Range(func(k uint64, v int64) bool { total += v; return true })
				if total == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
	b.Run("impl=lockfree-par", func(b *testing.B) {
		m := NewLockFree[uint64, int64](benchN, func(k uint64) uint64 { return Mix64(k) })
		for k := 0; k < benchN; k++ {
			m.Store(uint64(k), int64(k))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var total atomic.Int64
			m.RangePar(func(k uint64, v int64) { total.Add(v) })
			if total.Load() == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
}

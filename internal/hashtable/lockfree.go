package hashtable

import (
	"runtime"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/parallel"
)

// This file implements the lock-free growable table. See DESIGN.md for the
// full protocol and the ablation against the sharded Map.
//
// Layout: open addressing with linear probing. A slot is claimed for a key
// with a CAS on its state word (empty -> busy -> full); once full, a slot's
// key never changes and the slot is never freed, so probe chains only grow
// and a probe that reaches an empty slot has proven absence. The value
// lives in an atomic pointer to an immutable box; Store/Update/Delete are
// CAS loops that swap whole boxes (deletion is a value-level tombstone that
// keeps the probe chain intact).
//
// Growth: when the claim count passes the load limit, a double-size table
// is linked via next and every thread that touches the table helps migrate:
// migration chunks are claimed with an atomic counter (the same dynamic
// self-scheduling as the parallel pool), empty slots are poisoned
// (empty -> moved) so late inserts cannot land behind the sweep, and full
// slots have their box swapped for a frozen moved copy whose value is then
// installed into the next table if the key is not already there. Any
// operation that encounters a moved box first completes that key's
// migration itself, so no update can be lost between freeze and install.
// When the last chunk finishes, the root pointer advances.

// Slot states. Transitions: empty -> busy -> full (claim), and
// empty -> moved (migration poisoning). full slots stay full; their
// migration status lives in the value box.
const (
	slotEmpty uint32 = iota
	slotBusy         // key being published by a claimer
	slotFull         // key readable; value box holds the rest of the state
	slotMoved        // poisoned empty slot: key absent here, look in next
)

// lfBox is an immutable value cell. del marks a tombstone (key present in
// the probe chain, mapping absent). moved freezes the box during
// migration: v (unless del) is the value as of the freeze and all later
// operations on the key happen in the next table. ghost marks the freeze
// of a claimed slot whose value had not been published yet: unlike a
// frozen tombstone (del, !ghost), a ghost says the key was never present
// in this table, so a pending install for it must carry on to the next
// table rather than be dropped.
type lfBox[V any] struct {
	v     V
	del   bool
	moved bool
	ghost bool
}

type lfSlot[K comparable, V any] struct {
	state atomic.Uint32
	key   K
	val   atomic.Pointer[lfBox[V]]
}

// migrateChunk is the number of slots one migration claim covers; small
// enough that per-operation helpers finish a chunk quickly, large enough to
// amortize the claim.
const migrateChunk = 256

type lfTable[K comparable, V any] struct {
	slots  []lfSlot[K, V]
	mask   uint64
	limit  int64        // claim count that triggers growth (3/4 of capacity)
	claims atomic.Int64 // slots ever claimed (live + tombstoned keys)

	next     atomic.Pointer[lfTable[K, V]]
	migClaim atomic.Int64 // next unclaimed migration chunk
	migDone  atomic.Int64 // chunks fully migrated
	nchunks  int64
}

func newLFTable[K comparable, V any](capacity int) *lfTable[K, V] {
	n := 8
	for n < capacity {
		n *= 2
	}
	return &lfTable[K, V]{
		slots:   make([]lfSlot[K, V], n),
		mask:    uint64(n - 1),
		limit:   int64(n) * 3 / 4,
		nchunks: int64((n + migrateChunk - 1) / migrateChunk),
	}
}

// LockFree is a lock-free, growable, phase-concurrent hash table. Any mix
// of Load/Store/Delete/Update/UpdateAndGet/LoadOrStore may run from any
// number of goroutines, including across a growth; the bulk operations
// (Len, Range, Clear) are phase operations that must not run concurrently
// with mutators.
//
// Unlike Map, update functions passed to Update/UpdateAndGet/LoadOrStore
// run outside any lock and may be retried: f must be pure — it must not
// mutate old in place (append-style values must copy) and must not have
// side effects that cannot be repeated.
//
// The zero value is not usable; construct with NewLockFree.
type LockFree[K comparable, V any] struct {
	epochCore
	phaseDebug
	hash Hasher[K]
	cur  atomic.Pointer[lfTable[K, V]]
}

// NewLockFree returns a lock-free table pre-sized for capacity entries
// (rounded up so the load limit is not hit before then).
func NewLockFree[K comparable, V any](capacity int, hash Hasher[K]) *LockFree[K, V] {
	h := &LockFree[K, V]{hash: hash}
	h.cur.Store(newLFTable[K, V](capacity*4/3 + 1))
	return h
}

// hashOf applies a final mix so weak hashers (identity on already-spread
// keys) still probe well in the low bits.
func (h *LockFree[K, V]) hashOf(k K) uint64 { return Mix64(h.hash(k)) }

// findRead probes t for k without claiming. It returns the slot holding k,
// or nil with descend=false when k is provably absent from t, or nil with
// descend=true when the probe hit a poisoned slot (k's state lives in
// t.next).
//
//ridt:noalloc
func findRead[K comparable, V any](t *lfTable[K, V], k K, hv uint64) (s *lfSlot[K, V], descend bool) {
	for i, n := hv&t.mask, uint64(0); n <= t.mask; i, n = (i+1)&t.mask, n+1 {
		sl := &t.slots[i]
		for {
			switch sl.state.Load() {
			case slotEmpty:
				return nil, false
			case slotBusy:
				runtime.Gosched() // claimer is publishing the key; tiny window
				continue
			case slotMoved:
				return nil, true
			case slotFull:
				if sl.key == k {
					return sl, false
				}
			}
			break
		}
	}
	// Probed every slot without an empty: treat as a full table (can only
	// happen transiently at extreme load); the key is not here.
	return nil, false
}

// findClaim probes t for k, claiming the first empty slot if k is absent.
// ok=false with descend=true means the probe hit a poisoned slot; ok=false
// with descend=false means the table is over-full and must grow.
func (h *LockFree[K, V]) findClaim(t *lfTable[K, V], k K, hv uint64) (s *lfSlot[K, V], descend, ok bool) {
	for i, n := hv&t.mask, uint64(0); n <= t.mask; i, n = (i+1)&t.mask, n+1 {
		sl := &t.slots[i]
		for {
			switch sl.state.Load() {
			case slotEmpty:
				if !sl.state.CompareAndSwap(slotEmpty, slotBusy) {
					continue // lost the race; re-read the new state
				}
				sl.key = k
				sl.state.Store(slotFull)
				if c := t.claims.Add(1); c >= t.limit {
					h.grow(t, 0)
				}
				return sl, false, true
			case slotBusy:
				runtime.Gosched()
				continue
			case slotMoved:
				return nil, true, false
			case slotFull:
				if sl.key == k {
					return sl, false, true
				}
			}
			break
		}
	}
	return nil, false, false
}

// grow links a next table of at least minCap (0 means double) under t and
// helps migrate a little. Idempotent under races: only one next wins.
func (h *LockFree[K, V]) grow(t *lfTable[K, V], minCap int) {
	if t.next.Load() == nil {
		// Small tables quadruple so a from-scratch fill pays O(log n)
		// migration rounds over few slots; big ones double to bound the
		// memory spike of a live migration.
		factor := 4
		if len(t.slots) >= 1<<16 {
			factor = 2
		}
		want := factor * len(t.slots)
		if want < minCap {
			want = minCap
		}
		t.next.CompareAndSwap(nil, newLFTable[K, V](want))
	}
	h.helpMigrate(t, 2) // bounded help keeps per-op cost O(chunk)
}

// helpMigrate claims and migrates up to maxChunks chunks of t (all of them
// when maxChunks <= 0) and advances the root when t is drained.
func (h *LockFree[K, V]) helpMigrate(t *lfTable[K, V], maxChunks int) {
	h.helpMigrateCtl(t, maxChunks, true)
}

// helpMigrateCtl is helpMigrate with the fault site controllable: the
// nested help from installFrozen passes inject=false, because its caller
// is mid-chunk — it holds a claimed-but-unfinished chunk of the outer
// table, and an injected death there would strand that chunk (the fault
// model only kills participants *between* protocol steps).
func (h *LockFree[K, V]) helpMigrateCtl(t *lfTable[K, V], maxChunks int, inject bool) {
	nt := t.next.Load()
	if nt == nil {
		return
	}
	for done := 0; maxChunks <= 0 || done < maxChunks; done++ {
		// The fault site fires BEFORE the chunk claim: an injected panic
		// after migClaim.Add but before migDone.Add would strand a claimed
		// chunk no other helper can re-claim, freezing flatten forever.
		// Before the claim, a panicking helper leaves the protocol exactly
		// where it was — any other helper finishes the migration.
		if inject && fault.Enabled {
			fault.Inject(fault.TableMigrate)
		}
		c := t.migClaim.Add(1) - 1
		if c >= t.nchunks {
			break
		}
		lo := int(c) * migrateChunk
		hi := lo + migrateChunk
		if hi > len(t.slots) {
			hi = len(t.slots)
		}
		for i := lo; i < hi; i++ {
			h.migrateSlot(t, &t.slots[i], nt)
		}
		if t.migDone.Add(1) == t.nchunks {
			h.advanceRoot()
		}
	}
}

// migrateSlot freezes one slot of t and installs its value into nt.
func (h *LockFree[K, V]) migrateSlot(t *lfTable[K, V], sl *lfSlot[K, V], nt *lfTable[K, V]) {
	for {
		switch sl.state.Load() {
		case slotEmpty:
			if sl.state.CompareAndSwap(slotEmpty, slotMoved) {
				return
			}
			continue
		case slotBusy:
			runtime.Gosched()
			continue
		case slotMoved:
			return
		}
		// slotFull: freeze the box, then install the frozen value.
		b := sl.val.Load()
		if b == nil {
			// Claimed but no value published yet: freeze as a ghost. The
			// pending publisher's CAS will fail, see the ghost, and redo
			// its write in the next table.
			if sl.val.CompareAndSwap(nil, &lfBox[V]{del: true, moved: true, ghost: true}) {
				return
			}
			continue
		}
		if b.moved {
			// A concurrent operation already froze it; it (or its helpers)
			// completed the install before proceeding.
			return
		}
		frozen := &lfBox[V]{v: b.v, del: b.del, moved: true}
		if sl.val.CompareAndSwap(b, frozen) {
			h.installFrozen(nt, sl.key, frozen)
			return
		}
	}
}

// installFrozen writes a frozen box's value for k into nt, only if k has no
// box there yet. Every operation that meets a moved box calls this before
// continuing in nt, so the frozen value is installed exactly once no matter
// who wins the race.
func (h *LockFree[K, V]) installFrozen(nt *lfTable[K, V], k K, frozen *lfBox[V]) {
	if frozen.del {
		return // tombstones are not carried forward
	}
	hv := h.hashOf(k)
	for {
		sl, descend, ok := h.findClaim(nt, k, hv)
		if ok {
			if sl.val.CompareAndSwap(nil, &lfBox[V]{v: frozen.v}) {
				return
			}
			if b := sl.val.Load(); b != nil && b.ghost {
				// Our claimed slot was ghost-frozen by nt's own migration
				// before the value landed: the key is still absent, so the
				// install carries on to nt's next table.
				nt = nt.next.Load()
				continue
			}
			// Any other box means a newer write (or its frozen copy, or a
			// genuine tombstone) superseded the migrating value: drop it.
			return
		}
		if descend {
			// nt is itself migrating past k's chain: if k never made it
			// into nt, its frozen value belongs in nt's next table.
			h.helpMigrateCtl(nt, 1, false)
			nt = nt.next.Load()
			continue
		}
		h.grow(nt, 0)
		h.helpMigrateCtl(nt, 1, false)
		nt = nt.next.Load()
	}
}

// Load returns the value for k, if present.
//
//ridt:noalloc
func (h *LockFree[K, V]) Load(k K) (V, bool) {
	return h.loadFrom(h.cur.Load(), k)
}

// loadFrom is Load starting from a caller-pinned root table; snapshots
// read through it so a pinned (possibly superseded) root resolves moved
// entries forward through the chain exactly like a live Load.
//
//ridt:noalloc
func (h *LockFree[K, V]) loadFrom(t *lfTable[K, V], k K) (V, bool) {
	var zero V
	hv := h.hashOf(k)
	for t != nil {
		sl, descend := findRead(t, k, hv)
		if sl == nil {
			if !descend {
				return zero, false
			}
			t = t.next.Load()
			continue
		}
		b := sl.val.Load()
		if b == nil {
			// Claimed, value not yet published: linearize before the store.
			return zero, false
		}
		if b.moved {
			if nv, st := h.loadAfterFreeze(t.next.Load(), k, hv); st != loadMiss {
				if st == loadDeleted {
					return zero, false
				}
				return nv, true
			}
			// Not installed in next yet: the frozen value is current.
			if b.del {
				return zero, false
			}
			return b.v, true
		}
		if b.del {
			return zero, false
		}
		return b.v, true
	}
	return zero, false
}

type loadStatus int

const (
	loadMiss    loadStatus = iota // no box anywhere: key never reached these tables
	loadHit                       // live value found
	loadDeleted                   // tombstone found: key definitively absent
)

// loadAfterFreeze distinguishes "not migrated yet" (miss) from "present"
// and "deleted since migration", chasing nested migrations.
func (h *LockFree[K, V]) loadAfterFreeze(t *lfTable[K, V], k K, hv uint64) (V, loadStatus) {
	var zero V
	for t != nil {
		sl, descend := findRead(t, k, hv)
		if sl == nil {
			if !descend {
				return zero, loadMiss
			}
			t = t.next.Load()
			continue
		}
		b := sl.val.Load()
		if b == nil {
			return zero, loadMiss // claim without a value yet: not installed
		}
		if b.moved {
			if nv, st := h.loadAfterFreeze(t.next.Load(), k, hv); st != loadMiss {
				return nv, st
			}
			if b.ghost {
				// A ghost says the key never had a value here: whatever
				// frozen value is in limbo upstream is still current.
				return zero, loadMiss
			}
			if b.del {
				return zero, loadDeleted
			}
			return b.v, loadHit
		}
		if b.del {
			return zero, loadDeleted
		}
		return b.v, loadHit
	}
	return zero, loadMiss
}

// apply is the shared CAS loop behind Store/Update/Delete/LoadOrStore.
// f maps the current state (old, present) to the next box; returning nil
// means "leave as is". apply returns the box it installed (or found, when
// f returned nil).
func (h *LockFree[K, V]) apply(k K, f func(old V, present bool) *lfBox[V]) *lfBox[V] {
	if debugPhase {
		h.muts.Add(1)
		defer h.muts.Add(-1)
	}
	var zero V
	t := h.cur.Load()
	hv := h.hashOf(k)
	for {
		sl, descend, ok := h.findClaim(t, k, hv)
		if !ok {
			if descend {
				t = t.next.Load()
				continue
			}
			h.grow(t, 0)
			h.helpMigrate(t, 1)
			t = t.next.Load()
			continue
		}
		for {
			b := sl.val.Load()
			if b == nil {
				nb := f(zero, false)
				if nb == nil {
					return nil
				}
				if sl.val.CompareAndSwap(nil, nb) {
					return nb
				}
				continue
			}
			if b.moved {
				h.installFrozen(t.next.Load(), k, b)
				t = t.next.Load()
				break // continue in the next table
			}
			old, present := b.v, !b.del
			nb := f(old, present)
			if nb == nil {
				return b
			}
			if sl.val.CompareAndSwap(b, nb) {
				return nb
			}
		}
	}
}

// Store sets the value for k.
func (h *LockFree[K, V]) Store(k K, v V) {
	h.apply(k, func(V, bool) *lfBox[V] { return &lfBox[V]{v: v} })
}

// Delete removes k. The slot stays in the probe chain as a tombstone until
// the next growth migration drops it. Deleting an absent key claims
// nothing: the probe is read-only.
func (h *LockFree[K, V]) Delete(k K) {
	if debugPhase {
		h.muts.Add(1)
		defer h.muts.Add(-1)
	}
	t := h.cur.Load()
	hv := h.hashOf(k)
	for t != nil {
		sl, descend := findRead(t, k, hv)
		if sl == nil {
			if !descend {
				return
			}
			t = t.next.Load()
			continue
		}
		for {
			b := sl.val.Load()
			if b == nil {
				return // claim without a published value: linearize first
			}
			if b.moved {
				h.installFrozen(t.next.Load(), k, b)
				t = t.next.Load()
				break
			}
			if b.del {
				return
			}
			if sl.val.CompareAndSwap(b, &lfBox[V]{del: true}) {
				return
			}
		}
	}
}

// Update applies f to the current value for k (zero value and ok=false if
// absent) and stores the result. f must be pure: it runs outside any lock
// and is retried when it loses a CAS race, so it must not mutate old in
// place (copy append-style values) nor rely on being called once.
func (h *LockFree[K, V]) Update(k K, f func(old V, ok bool) V) {
	h.apply(k, func(old V, present bool) *lfBox[V] {
		return &lfBox[V]{v: f(old, present)}
	})
}

// UpdateIf is Update with a leave-as-is escape hatch: f returns the value
// to store and whether to store it. When f reports false the table is left
// untouched, and the no-op path is a plain read — no slot claim for absent
// keys, no CAS, and no allocation at all (neither a value box nor the
// apply closure). A declined op linearizes at that read; a write re-reads
// the current state inside the CAS loop and may still land on the
// leave-as-is path there if a racing writer got ahead. In the one racy
// shape where that inner decline follows a fresh slot claim — the fast
// path saw the key present, a concurrent Delete (plus migration dropping
// the tombstone) made it absent, and f declines for absent keys — a
// tombstone is published rather than leaving a claimed slot valueless
// forever; migration drops it like any other tombstone. The same purity
// contract as Update applies to f — it runs outside any lock and may be
// called more than once, so it must be pure.
//
//ridt:noalloc
func (h *LockFree[K, V]) UpdateIf(k K, f func(old V, ok bool) (V, bool)) {
	old, ok := h.Load(k)
	if _, write := f(old, ok); !write {
		return
	}
	//ridtvet:ignore noalloc write path: the no-op path (the contract) returned above; this closure is only built for a committed write
	h.apply(k, func(old V, present bool) *lfBox[V] {
		v, write := f(old, present)
		if !write {
			if !present {
				// May be a slot findClaim just claimed for us: it must not
				// stay valueless, and "absent" is spelled tombstone.
				//ridtvet:ignore noalloc write path: boxing the tombstone happens only after a committed write raced with a delete
				return &lfBox[V]{del: true}
			}
			return nil
		}
		//ridtvet:ignore noalloc write path: the value box is the one allocation a committed write pays
		return &lfBox[V]{v: v}
	})
}

// UpdateAndGet is Update returning the stored value. The same purity
// contract as Update applies to f.
func (h *LockFree[K, V]) UpdateAndGet(k K, f func(old V, ok bool) V) V {
	b := h.apply(k, func(old V, present bool) *lfBox[V] {
		return &lfBox[V]{v: f(old, present)}
	})
	return b.v
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v. loaded is true if the value was already present.
// This is the priority-write used for face attachment: the first writer
// wins and every racer observes the winner's value.
func (h *LockFree[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	b := h.apply(k, func(old V, present bool) *lfBox[V] {
		if present {
			loaded = true
			return nil
		}
		loaded = false
		return &lfBox[V]{v: v}
	})
	return b.v, loaded
}

// Flatten drives any in-flight migration to completion, so the root table
// is a plain flat array. Phase operation: callers must quiesce mutators
// first. Bulk operations (Len, Range, Clear, ...) call it implicitly;
// it is exported so cancellation and crash-recovery paths can prove a
// table is migration-free — and hence fully usable by per-key and bulk
// operations alike — after a round is abandoned mid-growth.
func (h *LockFree[K, V]) Flatten() {
	h.assertQuiesced("Flatten")
	h.flatten()
}

// flatten is Flatten returning the flat root for internal bulk callers.
func (h *LockFree[K, V]) flatten() *lfTable[K, V] {
	for {
		t := h.cur.Load()
		if t.next.Load() == nil {
			return t
		}
		// Chunk claims are atomic, so pool workers compose with any
		// straggling per-op helpers; extra iterations no-op on an empty
		// claim counter.
		parallel.ForGrain(0, int(t.nchunks), 1, func(int) {
			h.helpMigrate(t, 1)
		})
		// Wait for chunks claimed by outside helpers to drain.
		for t.migDone.Load() < t.nchunks {
			runtime.Gosched()
		}
		h.advanceRoot()
	}
}

// advanceRoot moves cur past fully migrated tables. A drained table is
// retired to the epoch registry, not dropped: an open snapshot may still
// be reading its slot array (see epoch.go).
func (h *LockFree[K, V]) advanceRoot() {
	for {
		t := h.cur.Load()
		nt := t.next.Load()
		if nt == nil || t.migDone.Load() < t.nchunks {
			return
		}
		if h.cur.CompareAndSwap(t, nt) {
			h.retire(t)
		}
	}
}

// Len returns the number of live entries. Phase operation: callers must
// quiesce mutators first. The count runs on the parallel pool.
func (h *LockFree[K, V]) Len() int {
	h.assertQuiesced("Len")
	t := h.flatten()
	nb := parallel.NumBlocks(len(t.slots), 4*migrateChunk)
	counts := make([]int64, nb)
	parallel.BlocksN(0, len(t.slots), nb, func(b, lo, hi int) {
		var n int64
		for i := lo; i < hi; i++ {
			sl := &t.slots[i]
			if sl.state.Load() != slotFull {
				continue
			}
			if bx := sl.val.Load(); bx != nil && !bx.del {
				n++
			}
		}
		counts[b] = n
	})
	return int(parallel.Sum(counts))
}

// Range calls f for every entry until f returns false. Phase operation:
// the iteration itself is sequential so early stop is exact; use RangePar
// for a parallel sweep.
func (h *LockFree[K, V]) Range(f func(k K, v V) bool) {
	h.assertQuiesced("Range")
	t := h.flatten()
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.state.Load() != slotFull {
			continue
		}
		b := sl.val.Load()
		if b == nil || b.del {
			continue
		}
		if !f(sl.key, b.v) {
			return
		}
	}
}

// RangePar calls f for every entry from pool workers, in no particular
// order and with no early stop. Phase operation. f must be safe to call
// concurrently with itself.
func (h *LockFree[K, V]) RangePar(f func(k K, v V)) {
	h.assertQuiesced("RangePar")
	t := h.flatten()
	parallel.Blocks(0, len(t.slots), 4*migrateChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sl := &t.slots[i]
			if sl.state.Load() != slotFull {
				continue
			}
			if b := sl.val.Load(); b != nil && !b.del {
				f(sl.key, b.v)
			}
		}
	})
}

// Clear removes all entries by installing a fresh minimum-size table.
// The displaced root is retired, not dropped: open snapshots keep
// reading the old contents. Phase operation.
func (h *LockFree[K, V]) Clear() {
	h.assertQuiesced("Clear")
	old := h.flatten()
	h.cur.Store(newLFTable[K, V](0))
	h.retire(old)
}

// Reserve grows the table so that at least capacity entries fit without a
// migration, finishing any in-flight one on the pool. Phase operation.
func (h *LockFree[K, V]) Reserve(capacity int) {
	h.assertQuiesced("Reserve")
	t := h.flatten()
	need := capacity*4/3 + 1
	if len(t.slots) >= need {
		return
	}
	h.grow(t, need)
	h.flatten()
}

// AdvanceEpoch flattens the table (phase operation) and bumps the epoch,
// reclaiming retired slot arrays no open snapshot can reference. The
// round engine calls it at each committed round boundary, which is what
// makes a snapshot taken after it complete: a flattened root holds every
// key committed so far, so a post-boundary Snap.Range misses nothing.
func (h *LockFree[K, V]) AdvanceEpoch() uint64 {
	h.assertQuiesced("AdvanceEpoch")
	if fault.Enabled {
		fault.Inject(fault.EpochPublish)
	}
	h.flatten()
	return h.advance()
}

// lfSnap is LockFree's snapshot: an O(1) pin of the root table plus an
// epoch registration keeping retired arrays alive (see epoch.go for the
// guarantees). Box pointers are immutable, so every read through the pin
// is torn-free by construction; moved entries resolve forward through the
// chain like a live Load.
type lfSnap[K comparable, V any] struct {
	snapRef
	h    *LockFree[K, V]
	root *lfTable[K, V]
}

// Snapshot opens a read-only view of the table. O(1): registers the
// current epoch (before pinning the root — see epochCore.register) and
// pins the root pointer.
func (h *LockFree[K, V]) Snapshot() Snap[K, V] {
	s := &lfSnap[K, V]{h: h}
	s.ec, s.epoch = &h.epochCore, h.register()
	s.root = h.cur.Load()
	return s
}

//ridt:noalloc
func (s *lfSnap[K, V]) Load(k K) (V, bool) {
	return s.h.loadFrom(s.root, k)
}

// visit calls f for every entry visible from the pinned root until f
// returns false. A moved slot's key is resolved forward through the
// chain; keys that never existed in the pinned root (inserted into a
// successor after the pin) are not visited — which is exactly the keys
// newer than the snapshot when the pin was taken at a flattened epoch
// boundary.
func (s *lfSnap[K, V]) visit(f func(k K, v V) bool) {
	t := s.root
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.state.Load() != slotFull {
			continue
		}
		b := sl.val.Load()
		if b == nil {
			continue // claimed, value not yet published
		}
		if b.moved {
			hv := s.h.hashOf(sl.key)
			if v, st := s.h.loadAfterFreeze(t.next.Load(), sl.key, hv); st != loadMiss {
				if st == loadDeleted {
					continue
				}
				if !f(sl.key, v) {
					return
				}
				continue
			}
			if b.ghost || b.del {
				continue
			}
			if !f(sl.key, b.v) {
				return
			}
			continue
		}
		if b.del {
			continue
		}
		if !f(sl.key, b.v) {
			return
		}
	}
}

func (s *lfSnap[K, V]) Len() int {
	n := 0
	s.visit(func(K, V) bool { n++; return true })
	return n
}

func (s *lfSnap[K, V]) Range(f func(k K, v V) bool) {
	s.visit(f)
}

// Package hashtable provides the concurrent hash tables behind the
// Delaunay face map, the closest-pair grids, and the SCC combine.
//
// The paper's parallel algorithms assume a work-efficient parallel hash
// table (Gil, Matias & Vishkin). Three implementations of the shared Table
// interface are provided: LockFree, a growable phase-concurrent
// open-addressing table (CAS-claimed linear-probing slots, cooperative
// migration) for arbitrary value types; LockFreeInline, the same protocol
// with seqlock inline value slots for small POD values (no value-box
// allocation on writes — the Delaunay face map and SCC minima use it); and
// Map, a sharded mutex map kept as the reference implementation and
// equivalence-test oracle. DESIGN.md in this directory has the full
// protocol and the ablations.
package hashtable

import "sync"

// Table is the operation set the consumers program against; Map and
// LockFree both implement it. Update-style callbacks must be pure for
// LockFree (they may be retried; see LockFree's doc comment), and the bulk
// operations Len/Range/Clear are phase operations on LockFree.
type Table[K comparable, V any] interface {
	Load(k K) (V, bool)
	Store(k K, v V)
	Delete(k K)
	Update(k K, f func(old V, ok bool) V)
	UpdateIf(k K, f func(old V, ok bool) (V, bool))
	UpdateAndGet(k K, f func(old V, ok bool) V) V
	LoadOrStore(k K, v V) (actual V, loaded bool)
	Len() int
	Range(f func(k K, v V) bool)
	Clear()
	// Flatten drives any in-flight cooperative migration to completion
	// (phase operation: quiesce mutators first). Cancellation paths call
	// it after abandoning a round mid-growth to prove the table is
	// migration-free before reuse; a no-op on tables that never migrate.
	Flatten()
	// Epoch returns the table's current publication epoch (see epoch.go).
	Epoch() uint64
	// AdvanceEpoch flattens the table and bumps its epoch, reclaiming
	// superseded slot arrays no open snapshot can reference. Phase
	// operation; the round engine calls it at each committed boundary.
	AdvanceEpoch() uint64
	// Snapshot opens a read-only view that stays torn-free and valid
	// while mutators keep running; see Snap for the exact guarantees.
	// O(1) on the lock-free tables, a frozen copy on Map.
	Snapshot() Snap[K, V]
}

var (
	_ Table[int, int] = (*Map[int, int])(nil)
	_ Table[int, int] = (*LockFree[int, int])(nil)
	_ Table[int, int] = (*LockFreeInline[int, int])(nil)
)

// Hasher maps a key to a 64-bit hash. Implementations must be deterministic
// and spread keys well across the low bits.
type Hasher[K comparable] func(K) uint64

// Map is a concurrent hash map sharded by key hash. The zero value is not
// usable; construct with New.
type Map[K comparable, V any] struct {
	epochCore
	shards []shard[K, V]
	mask   uint64
	hash   Hasher[K]
}

type shard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
	_  [40]byte // pad to reduce false sharing between adjacent shards
}

// New returns a map with the given number of shards (rounded up to a power
// of two, minimum 1) and an expected total capacity hint.
func New[K comparable, V any](shardCount, capacity int, hash Hasher[K]) *Map[K, V] {
	sc := 1
	for sc < shardCount {
		sc *= 2
	}
	m := &Map[K, V]{
		shards: make([]shard[K, V], sc),
		mask:   uint64(sc - 1),
		hash:   hash,
	}
	per := capacity / sc
	if per < 8 {
		per = 8
	}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V, per)
	}
	return m
}

func (m *Map[K, V]) shardFor(k K) *shard[K, V] {
	h := m.hash(k)
	// Mix the high bits down so weak hashers still spread across shards.
	h ^= h >> 32
	return &m.shards[h&m.mask]
}

// Load returns the value for k, if present.
func (m *Map[K, V]) Load(k K) (V, bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Store sets the value for k.
func (m *Map[K, V]) Store(k K, v V) {
	s := m.shardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	s := m.shardFor(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Update applies f to the current value for k (zero value and ok=false if
// absent) while holding the shard lock, and stores the result. It is the
// atomic read-modify-write used to attach the two triangles of a face.
func (m *Map[K, V]) Update(k K, f func(old V, ok bool) V) {
	s := m.shardFor(k)
	s.mu.Lock()
	old, ok := s.m[k]
	s.m[k] = f(old, ok)
	s.mu.Unlock()
}

// UpdateIf is Update with a leave-as-is escape hatch: f returns the value
// to store and whether to store it. When f reports false the table is left
// untouched — no write, and no insert for an absent key. It is the op to
// use for pruned min/max-writes and other read-mostly read-modify-writes:
// on the no-op path the lock-free implementation stays read-only and
// allocates no value box.
func (m *Map[K, V]) UpdateIf(k K, f func(old V, ok bool) (V, bool)) {
	s := m.shardFor(k)
	s.mu.Lock()
	old, ok := s.m[k]
	if v, write := f(old, ok); write {
		s.m[k] = v
	}
	s.mu.Unlock()
}

// UpdateAndGet is Update returning the stored value.
func (m *Map[K, V]) UpdateAndGet(k K, f func(old V, ok bool) V) V {
	s := m.shardFor(k)
	s.mu.Lock()
	old, ok := s.m[k]
	v := f(old, ok)
	s.m[k] = v
	s.mu.Unlock()
	return v
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v. loaded is true if the value was already present.
func (m *Map[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.mu.Unlock()
		return old, true
	}
	s.m[k] = v
	s.mu.Unlock()
	return v, false
}

// Len returns the total number of entries (taking each shard lock briefly).
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Concurrent mutation
// of other shards during iteration is allowed; the snapshot is per-shard.
func (m *Map[K, V]) Range(f func(k K, v V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		keys := make([]K, 0, len(s.m))
		vals := make([]V, 0, len(s.m))
		for k, v := range s.m {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		s.mu.Unlock()
		for j := range keys {
			if !f(keys[j], vals[j]) {
				return
			}
		}
	}
}

// Flatten is a no-op: the sharded map has no migration to complete.
func (m *Map[K, V]) Flatten() {}

// Clear removes all entries, retaining shard maps.
func (m *Map[K, V]) Clear() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
}

// Mix64 is a convenience 64-bit mixer (SplitMix64 finalizer) for building
// Hashers from integer keys.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

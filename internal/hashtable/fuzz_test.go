package hashtable

// Native Go fuzz target for the lock-free table: byte strings decode into
// operation streams over a small key space (so ops collide and interact),
// replayed against a plain map oracle. The seed corpus covers each op and
// a growth burst; `go test -run=Fuzz` replays the corpus in CI, and
// `go test -fuzz=FuzzLockFree ./internal/hashtable` explores from it.

import (
	"testing"
)

// FuzzLockFree decodes data as a stream of 3-byte (op, key, val) records
// over a 32-key space and checks the lock-free table against a map oracle
// after every op. The table starts at capacity 2 so streams longer than a
// few inserts force resizes.
func FuzzLockFree(f *testing.F) {
	// Seeds: each single op, a delete-heavy mix, and an insert run long
	// enough to cross two growths.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 42})
	f.Add([]byte{1, 1, 0})
	f.Add([]byte{2, 1, 0})
	f.Add([]byte{3, 5, 7, 3, 5, 7, 1, 5, 0})
	f.Add([]byte{4, 9, 1, 4, 9, 2, 2, 9, 0, 4, 9, 3})
	grow := make([]byte, 0, 3*96)
	for i := 0; i < 96; i++ {
		grow = append(grow, 0, byte(i), byte(i*3))
	}
	f.Add(grow)
	f.Add(append(grow, 2, 5, 0, 3, 5, 9, 6, 0, 0))
	// UpdateIf min-writes: insert, no-op (larger val), overwrite (smaller),
	// then delete + re-insert through the absent path.
	f.Add([]byte{5, 3, 9, 5, 3, 200, 5, 3, 1, 2, 3, 0, 5, 3, 50})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay the same stream through the box table and the seqlock
		// inline-slot table; both must match the oracle op by op.
		hash := func(k int) uint64 { return Mix64(uint64(k)) }
		tabs := map[string]Table[int, int]{
			"lockfree": NewLockFree[int, int](2, hash),
			"inline":   NewLockFreeInline[int, int](2, hash, EncInt, DecInt),
		}
		for name, tab := range tabs {
			oracle := map[int]int{}
			fuzzReplay(t, name, tab, oracle, data)
		}
	})
}

func fuzzReplay(t *testing.T, name string, tab Table[int, int], oracle map[int]int, data []byte) {
	for i := 0; i+2 < len(data); i += 3 {
		op := int(data[i]) % numOps
		key := int(data[i+1]) % 32
		val := int(data[i+2])
		switch op {
		case opStore:
			tab.Store(key, val)
			oracle[key] = val
		case opLoad:
			got, ok := tab.Load(key)
			want, wok := oracle[key]
			if ok != wok || got != want {
				t.Fatalf("op %d: Load(%d) = (%d,%v), oracle (%d,%v)", i/3, key, got, ok, want, wok)
			}
		case opDelete:
			tab.Delete(key)
			delete(oracle, key)
		case opUpdate:
			got := tab.UpdateAndGet(key, func(old int, ok bool) int {
				if !ok {
					return val
				}
				return old*2 + val
			})
			want := val
			if old, ok := oracle[key]; ok {
				want = old*2 + val
			}
			oracle[key] = want
			if got != want {
				t.Fatalf("op %d: UpdateAndGet(%d) = %d, oracle %d", i/3, key, got, want)
			}
		case opLoadOrStore:
			got, loaded := tab.LoadOrStore(key, val)
			want, wok := oracle[key]
			if loaded != wok {
				t.Fatalf("op %d: LoadOrStore(%d) loaded=%v, oracle present=%v", i/3, key, loaded, wok)
			}
			if !loaded {
				oracle[key] = val
				want = val
			}
			if got != want {
				t.Fatalf("op %d: LoadOrStore(%d) = %d, oracle %d", i/3, key, got, want)
			}
		case opUpdateIf:
			tab.UpdateIf(key, func(old int, ok bool) (int, bool) {
				if ok && old <= val {
					return old, false
				}
				return val, true
			})
			if old, ok := oracle[key]; !ok || val < old {
				oracle[key] = val
			}
			got, ok := tab.Load(key)
			want, wok := oracle[key]
			if ok != wok || got != want {
				t.Fatalf("op %d: after UpdateIf(%d) Load = (%d,%v), oracle (%d,%v)", i/3, key, got, ok, want, wok)
			}
		case opGrowBurst:
			// Bulk insert outside the 32-key space to force a resize
			// while the small keys stay live.
			for j := 0; j < 64; j++ {
				k := 1000 + key*64 + j
				tab.Store(k, val+j)
				oracle[k] = val + j
			}
		}
	}
	if tab.Len() != len(oracle) {
		t.Fatalf("%s: final Len=%d oracle=%d", name, tab.Len(), len(oracle))
	}
	tab.Range(func(k, v int) bool {
		if want, ok := oracle[k]; !ok || v != want {
			t.Fatalf("%s: Range key %d = %d, oracle (%d,%v)", name, k, v, want, ok)
		}
		return true
	})
}

package hashtable

// Deterministic -race stress test: GOMAXPROCS goroutines hammer one
// lock-free table through a phase barrier. Each phase's workload is chosen
// so the final contents are computable in closed form regardless of
// interleaving, so the test asserts exact state, not just absence of
// crashes. Run with -race (the CI race job does).

import (
	"runtime"
	"sync"
	"testing"
)

// barrier is a reusable all-arrive phase barrier for p participants.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	phase int
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all p participants have arrived, then releases them
// together into the next phase.
func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

func TestStressPhases(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4 // concurrency even on single-core CI hosts
	}
	perG, incs, shared := 2000, 500, 97
	if testing.Short() {
		perG, incs = 400, 100
	}
	// Start tiny so phase 1 forces several cooperative migrations under
	// full contention.
	m := NewLockFree[int, int](2, func(k int) uint64 { return Mix64(uint64(k)) })
	bar := newBarrier(p)
	var wg sync.WaitGroup
	errs := make(chan string, p)
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Phase 1: disjoint inserts (goroutine g owns keys g*perG..).
			// All goroutines also increment a small shared counter space,
			// so growth migrations race with both claims and updates.
			for i := 0; i < perG; i++ {
				k := g*perG + i
				m.Store(k, k+1)
			}
			for i := 0; i < incs; i++ {
				m.Update(1_000_000+i%shared, func(old int, ok bool) int { return old + 1 })
			}
			bar.await()
			// Phase 2: pure reads of phase 1's state, concurrent across
			// all goroutines; any torn or lost write is visible here.
			for i := 0; i < perG; i++ {
				k := ((g+1)%p)*perG + i // read a neighbor's keys
				if v, ok := m.Load(k); !ok || v != k+1 {
					errs <- "phase2 missing or wrong key"
					break
				}
			}
			bar.await()
			// Phase 3: each goroutine deletes the odd keys it owns and
			// doubles its even keys.
			for i := 0; i < perG; i++ {
				k := g*perG + i
				if k%2 == 1 {
					m.Delete(k)
				} else {
					m.Update(k, func(old int, ok bool) int { return old * 2 })
				}
			}
			bar.await()
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Exact final contents: even keys doubled, odd keys gone, shared
	// counters at p*incs/shared increments each.
	n := p * perG
	wantLen := n/2 + shared
	if got := m.Len(); got != wantLen {
		t.Fatalf("Len=%d want %d", got, wantLen)
	}
	for k := 0; k < n; k++ {
		v, ok := m.Load(k)
		if k%2 == 1 {
			if ok {
				t.Fatalf("deleted key %d still present (=%d)", k, v)
			}
			continue
		}
		if !ok || v != (k+1)*2 {
			t.Fatalf("key %d = (%d,%v), want %d", k, v, ok, (k+1)*2)
		}
	}
	total := 0
	for i := 0; i < shared; i++ {
		v, ok := m.Load(1_000_000 + i)
		if !ok {
			t.Fatalf("shared counter %d missing", i)
		}
		total += v
	}
	if total != p*incs {
		t.Fatalf("shared counters lost increments: total=%d want %d", total, p*incs)
	}
}

package hashtable

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

// Cancellation stress for the growable tables: a cancel-aware parallel
// insert loop is cut short while cooperative migration is in flight, the
// abandoned table is flattened, and its surviving contents are checked
// for exact equivalence against an oracle of the writes that actually
// executed. This is the contract the round engines rely on when a round
// is canceled mid-growth: every write that ran is present with its final
// value, no write is duplicated, lost, or corrupted, and the table stays
// fully usable afterwards.

func intHasher(k int) uint64 { return uint64(k) }

func runCancelGrowthStress(t *testing.T, mk func() Table[int, int]) {
	const (
		n       = 1 << 15
		seedCap = 16 // tiny start: inserts force repeated migrations
		trials  = 8
	)
	for trial := 0; trial < trials; trial++ {
		h := mk()
		var c parallel.Canceler
		var executed sync.Map // oracle: key -> value, recorded by the writes that ran
		var count atomic.Int64
		cutoff := int64(n / 4)

		err := parallel.ForGrainCancel(0, n, 64, &c, func(i int) {
			k := i
			v := i*3 + trial
			// Record-then-write: the oracle holds a superset of completed
			// writes... but a write that landed must match the oracle. To
			// keep oracle and table atomic w.r.t. cancellation, write the
			// table first and record after — then the oracle is a subset
			// and every oracle entry must be in the table.
			h.Store(k, v)
			executed.Store(k, v)
			if count.Add(1) == cutoff {
				c.Cancel()
			}
		})
		if err == nil {
			t.Fatalf("trial %d: cancel never observed", trial)
		}

		// The loop has returned: no mutators remain. Flatten must complete
		// any abandoned migration and leave a plain table.
		h.Flatten()

		// Every write that provably completed is present with its value.
		missing := 0
		executed.Range(func(k, v any) bool {
			got, ok := h.Load(k.(int))
			if !ok {
				missing++
				return false
			}
			if got != v.(int) {
				t.Fatalf("trial %d: key %v = %v, oracle says %v", trial, k, got, v)
			}
			return true
		})
		if missing > 0 {
			t.Fatalf("trial %d: %d completed writes missing after cancel+flatten", trial, missing)
		}
		// And nothing is present that was never written: every surviving
		// key decodes to the value this trial's writes would have given it.
		h.Range(func(k, v int) bool {
			if want := k*3 + trial; v != want {
				t.Fatalf("trial %d: stray entry %d=%d (want %d)", trial, k, v, want)
			}
			return true
		})

		// The table remains fully usable: finish the workload and verify.
		for i := 0; i < n; i++ {
			h.Store(i, i*3+trial)
		}
		if got := h.Len(); got != n {
			t.Fatalf("trial %d: post-cancel refill Len = %d, want %d", trial, got, n)
		}
	}
}

func TestLockFreeCancelDuringGrowth(t *testing.T) {
	runCancelGrowthStress(t, func() Table[int, int] {
		return NewLockFree[int, int](16, intHasher)
	})
}

func TestLockFreeInlineCancelDuringGrowth(t *testing.T) {
	runCancelGrowthStress(t, func() Table[int, int] {
		return NewLockFreeInline[int, int](16, intHasher,
			func(v int) (uint64, uint64) { return uint64(v), 0 },
			func(a, _ uint64) int { return int(a) })
	})
}

func TestMapCancelDuringGrowth(t *testing.T) {
	runCancelGrowthStress(t, func() Table[int, int] {
		return New[int, int](8, 16, intHasher)
	})
}

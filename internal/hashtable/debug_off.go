//go:build !ridtdebug

package hashtable

// debugPhase gates the phase-violation detector (see phaseDebug in
// epoch.go). In the default build it is the constant false: every
// `if debugPhase { ... }` hook is removed by the compiler, so the
// mutator hot paths are bit-for-bit the uninstrumented ones and the
// //ridt:noalloc pins keep their meaning — the same two-build story as
// internal/fault.
const debugPhase = false

package hashtable

import (
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

func intMap(shards int) *Map[int, int] {
	return New[int, int](shards, 64, func(k int) uint64 { return Mix64(uint64(k)) })
}

func TestBasicOps(t *testing.T) {
	m := intMap(8)
	if _, ok := m.Load(1); ok {
		t.Fatal("empty map should miss")
	}
	m.Store(1, 10)
	m.Store(2, 20)
	if v, ok := m.Load(1); !ok || v != 10 {
		t.Fatalf("load 1 = (%d,%v)", v, ok)
	}
	m.Store(1, 11)
	if v, _ := m.Load(1); v != 11 {
		t.Fatal("store should overwrite")
	}
	if m.Len() != 2 {
		t.Fatalf("len=%d", m.Len())
	}
	m.Delete(1)
	if _, ok := m.Load(1); ok {
		t.Fatal("delete failed")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestShardRounding(t *testing.T) {
	// Shard counts round up to powers of two, minimum 1.
	for _, sc := range []int{0, 1, 3, 5, 16} {
		m := New[int, int](sc, 0, func(k int) uint64 { return uint64(k) })
		m.Store(7, 7)
		if v, ok := m.Load(7); !ok || v != 7 {
			t.Fatalf("shards=%d broken", sc)
		}
	}
}

func TestUpdate(t *testing.T) {
	m := intMap(4)
	m.Update(5, func(old int, ok bool) int {
		if ok {
			t.Fatal("should be absent")
		}
		return 1
	})
	m.Update(5, func(old int, ok bool) int {
		if !ok || old != 1 {
			t.Fatal("should see previous value")
		}
		return old + 1
	})
	if v, _ := m.Load(5); v != 2 {
		t.Fatalf("v=%d", v)
	}
	if got := m.UpdateAndGet(5, func(old int, ok bool) int { return old * 10 }); got != 20 {
		t.Fatalf("UpdateAndGet=%d", got)
	}
}

func TestLoadOrStore(t *testing.T) {
	m := intMap(4)
	if v, loaded := m.LoadOrStore(1, 100); loaded || v != 100 {
		t.Fatalf("(%d,%v)", v, loaded)
	}
	if v, loaded := m.LoadOrStore(1, 200); !loaded || v != 100 {
		t.Fatalf("(%d,%v)", v, loaded)
	}
}

func TestRange(t *testing.T) {
	m := intMap(8)
	for i := 0; i < 100; i++ {
		m.Store(i, i*i)
	}
	seen := map[int]int{}
	m.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("range saw %d entries", len(seen))
	}
	for k, v := range seen {
		if v != k*k {
			t.Fatalf("entry %d=%d", k, v)
		}
	}
	// Early stop.
	count := 0
	m.Range(func(k, v int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop: %d", count)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	// Concurrent counter increments across a small key space must not lose
	// any updates.
	m := intMap(16)
	const n, keys = 100000, 13
	parallel.For(0, n, func(i int) {
		m.Update(i%keys, func(old int, ok bool) int { return old + 1 })
	})
	total := 0
	m.Range(func(k, v int) bool {
		total += v
		return true
	})
	if total != n {
		t.Fatalf("lost updates: total=%d want %d", total, n)
	}
}

func TestConcurrentAppendSlices(t *testing.T) {
	// The DT face-map pattern: concurrent appends to per-key slices.
	m := New[int, []int32](16, 64, func(k int) uint64 { return Mix64(uint64(k)) })
	const n = 50000
	parallel.For(0, n, func(i int) {
		m.Update(i%7, func(old []int32, _ bool) []int32 { return append(old, int32(i)) })
	})
	var total atomic.Int64
	m.Range(func(k int, v []int32) bool {
		total.Add(int64(len(v)))
		return true
	})
	if total.Load() != n {
		t.Fatalf("lost appends: %d want %d", total.Load(), n)
	}
}

func TestMix64Spreads(t *testing.T) {
	// Sequential keys must not collide in the low bits after mixing.
	const shards = 64
	var count [shards]int
	for i := 0; i < shards*100; i++ {
		count[Mix64(uint64(i))%shards]++
	}
	for s, c := range count {
		if c == 0 {
			t.Fatalf("shard %d never hit: weak mixing", s)
		}
	}
}

package hashtable

// BenchmarkSnapshotRead* measures the serve-while-building read side:
// snapshot probes and sweeps against a populated table, with and without
// a concurrent writer storming it (the ridtd steady state). Results are
// recorded in BENCH_serve.json and gated by the CI bench job like the
// other families. Run with -benchmem: the snapshot read path is a gated
// zero-allocation property, not just a number.

import (
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

// BenchmarkSnapshotReadLoad probes a snapshot of a populated table
// (90% hits / 10% misses), quiesced: pure read-path cost.
func BenchmarkSnapshotReadLoad(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			m.AdvanceEpoch()
			s := m.Snapshot()
			defer s.Close()
			b.ResetTimer()
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				var local atomic.Int64
				parallel.ForGrain(0, benchN, 256, func(k int) {
					probe := uint64(k)
					if k%10 == 9 {
						probe += benchN // miss
					}
					if v, ok := s.Load(probe); ok {
						local.Add(v)
					}
				})
				sink.Store(local.Load())
			}
		})
	}
}

// BenchmarkSnapshotReadUnderWrites is the same probe with a writer
// goroutine overwriting the hot keys throughout: what a ridtd reader
// pays while the builder commits a round into the same slots. Sharded is
// excluded — its snapshot is a frozen copy, so writers cost it nothing
// by construction (and the copy itself is priced by SnapshotOpen below).
func BenchmarkSnapshotReadUnderWrites(b *testing.B) {
	for _, name := range []string{"lockfree", "inline"} {
		mk := benchTables(benchN)[name]
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			m.AdvanceEpoch()
			s := m.Snapshot()
			defer s.Close()
			var stop atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				for k := uint64(0); !stop.Load(); k++ {
					m.Store(k%benchN, int64(k))
				}
			}()
			b.ResetTimer()
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				var local atomic.Int64
				parallel.ForGrain(0, benchN, 256, func(k int) {
					if v, ok := s.Load(uint64(k)); ok {
						local.Add(v)
					}
				})
				sink.Store(local.Load())
			}
			b.StopTimer()
			stop.Store(true)
			<-done
		})
	}
}

// BenchmarkSnapshotReadRange sweeps every entry visible to a snapshot:
// the bulk-export path (and the seqlock-validated visit loop's cost).
func BenchmarkSnapshotReadRange(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			m.AdvanceEpoch()
			s := m.Snapshot()
			defer s.Close()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				var sum int64
				s.Range(func(_ uint64, v int64) bool { sum += v; return true })
				sink = sum
			}
			_ = sink
		})
	}
}

// BenchmarkSnapshotOpen prices Snapshot+Close itself: O(1) pin/unpin on
// the lock-free tables, an O(n) frozen copy on the sharded map (the
// honest cost of its oracle-grade semantics).
func BenchmarkSnapshotOpen(b *testing.B) {
	for name, mk := range benchTables(benchN) {
		b.Run("impl="+name, func(b *testing.B) {
			m := mk()
			for k := 0; k < benchN; k++ {
				m.Store(uint64(k), int64(k))
			}
			m.AdvanceEpoch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Snapshot().Close()
			}
		})
	}
}

package hashtable

import (
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

// implementations returns both Table implementations over int keys/values,
// constructed small so the lock-free table must grow under the tests.
func implementations() map[string]func() Table[int, int] {
	hash := func(k int) uint64 { return Mix64(uint64(k)) }
	return map[string]func() Table[int, int]{
		"sharded":  func() Table[int, int] { return New[int, int](8, 64, hash) },
		"lockfree": func() Table[int, int] { return NewLockFree[int, int](4, hash) },
	}
}

// TestLockFreeUpdateIfNoAlloc pins the property UpdateIf exists for (the
// ROADMAP value-box item): the leave-as-is path is allocation-free — no
// value box, no slot claim for absent keys, not even the apply closure.
func TestLockFreeUpdateIfNoAlloc(t *testing.T) {
	m := NewLockFree[int32, int32](64, func(k int32) uint64 { return Mix64(uint64(uint32(k))) })
	m.Store(7, 1)
	decline := func(old int32, ok bool) (int32, bool) { return old, false }
	if allocs := testing.AllocsPerRun(200, func() { m.UpdateIf(7, decline) }); allocs != 0 {
		t.Errorf("present-key no-op path allocated %.1f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { m.UpdateIf(1234, decline) }); allocs != 0 {
		t.Errorf("absent-key no-op path allocated %.1f objects per op, want 0", allocs)
	}
}

// TestTableSuite runs the semantics shared by both implementations.
func TestTableSuite(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			t.Run("basic", func(t *testing.T) {
				m := mk()
				if _, ok := m.Load(1); ok {
					t.Fatal("empty table should miss")
				}
				m.Store(1, 10)
				m.Store(2, 20)
				if v, ok := m.Load(1); !ok || v != 10 {
					t.Fatalf("load 1 = (%d,%v)", v, ok)
				}
				m.Store(1, 11)
				if v, _ := m.Load(1); v != 11 {
					t.Fatal("store should overwrite")
				}
				if m.Len() != 2 {
					t.Fatalf("len=%d", m.Len())
				}
				m.Delete(1)
				if _, ok := m.Load(1); ok {
					t.Fatal("delete failed")
				}
				m.Delete(99) // deleting an absent key is a no-op
				if m.Len() != 1 {
					t.Fatalf("len=%d after deletes", m.Len())
				}
				m.Clear()
				if m.Len() != 0 {
					t.Fatal("clear failed")
				}
				m.Store(3, 30) // usable after Clear
				if v, _ := m.Load(3); v != 30 {
					t.Fatal("store after clear")
				}
			})

			t.Run("update", func(t *testing.T) {
				m := mk()
				m.Update(5, func(old int, ok bool) int {
					if ok {
						t.Fatal("should be absent")
					}
					return 1
				})
				m.Update(5, func(old int, ok bool) int {
					if !ok || old != 1 {
						t.Fatal("should see previous value")
					}
					return old + 1
				})
				if v, _ := m.Load(5); v != 2 {
					t.Fatalf("v=%d", v)
				}
				if got := m.UpdateAndGet(5, func(old int, ok bool) int { return old * 10 }); got != 20 {
					t.Fatalf("UpdateAndGet=%d", got)
				}
				// Update after delete sees absent.
				m.Delete(5)
				m.Update(5, func(old int, ok bool) int {
					if ok {
						t.Fatal("deleted key should be absent in Update")
					}
					return 7
				})
				if v, _ := m.Load(5); v != 7 {
					t.Fatalf("v=%d", v)
				}
			})

			t.Run("updateif", func(t *testing.T) {
				m := mk()
				// Absent + decline: no insert.
				m.UpdateIf(9, func(old int, ok bool) (int, bool) {
					if ok {
						t.Fatal("should be absent")
					}
					return 0, false
				})
				if _, ok := m.Load(9); ok || m.Len() != 0 {
					t.Fatal("declined UpdateIf on absent key must not insert")
				}
				// Absent + write inserts.
				minWrite := func(v int) func(int, bool) (int, bool) {
					return func(old int, ok bool) (int, bool) {
						if ok && old <= v {
							return old, false
						}
						return v, true
					}
				}
				m.UpdateIf(9, minWrite(40))
				if v, ok := m.Load(9); !ok || v != 40 {
					t.Fatalf("after insert: (%d,%v)", v, ok)
				}
				// Present + decline leaves the value.
				m.UpdateIf(9, minWrite(50))
				if v, _ := m.Load(9); v != 40 {
					t.Fatalf("declined overwrite changed value to %d", v)
				}
				// Present + write overwrites.
				m.UpdateIf(9, minWrite(12))
				if v, _ := m.Load(9); v != 12 {
					t.Fatalf("min-write kept %d, want 12", v)
				}
				// Deleted key is absent again.
				m.Delete(9)
				m.UpdateIf(9, minWrite(99))
				if v, _ := m.Load(9); v != 99 {
					t.Fatalf("after delete+insert: %d", v)
				}
			})

			t.Run("loadorstore", func(t *testing.T) {
				m := mk()
				if v, loaded := m.LoadOrStore(1, 100); loaded || v != 100 {
					t.Fatalf("(%d,%v)", v, loaded)
				}
				if v, loaded := m.LoadOrStore(1, 200); !loaded || v != 100 {
					t.Fatalf("(%d,%v)", v, loaded)
				}
				m.Delete(1)
				if v, loaded := m.LoadOrStore(1, 300); loaded || v != 300 {
					t.Fatalf("after delete: (%d,%v)", v, loaded)
				}
			})

			t.Run("range", func(t *testing.T) {
				m := mk()
				for i := 0; i < 300; i++ { // forces several growths at cap 4
					m.Store(i, i*i)
				}
				seen := map[int]int{}
				m.Range(func(k, v int) bool {
					seen[k] = v
					return true
				})
				if len(seen) != 300 {
					t.Fatalf("range saw %d entries", len(seen))
				}
				for k, v := range seen {
					if v != k*k {
						t.Fatalf("entry %d=%d", k, v)
					}
				}
				count := 0
				m.Range(func(k, v int) bool {
					count++
					return count < 5
				})
				if count != 5 {
					t.Fatalf("early stop: %d", count)
				}
			})

			t.Run("concurrent-updates", func(t *testing.T) {
				// Counter increments across a small key space must not lose
				// updates, including across growth (keys > initial capacity).
				m := mk()
				const n, keys = 100000, 13
				parallel.For(0, n, func(i int) {
					m.Update(i%keys, func(old int, ok bool) int { return old + 1 })
				})
				total := 0
				m.Range(func(k, v int) bool {
					total += v
					return true
				})
				if total != n {
					t.Fatalf("lost updates: total=%d want %d", total, n)
				}
			})
		})
	}
}

func TestLockFreeGrowth(t *testing.T) {
	// Insert far past the initial capacity from many goroutines; every key
	// must survive the migrations.
	m := NewLockFree[int, int](1, func(k int) uint64 { return Mix64(uint64(k)) })
	const n = 50000
	parallel.For(0, n, func(i int) { m.Store(i, i+1) })
	if m.Len() != n {
		t.Fatalf("len=%d want %d", m.Len(), n)
	}
	parallel.For(0, n, func(i int) {
		if v, ok := m.Load(i); !ok || v != i+1 {
			t.Errorf("key %d = (%d,%v)", i, v, ok)
		}
	})
}

func TestLockFreeAppendCOW(t *testing.T) {
	// The face-map / grid pattern on the lock-free table: concurrent
	// appends must copy (pure update functions), and no element may be
	// lost.
	m := NewLockFree[int, []int32](16, func(k int) uint64 { return Mix64(uint64(k)) })
	const n = 50000
	parallel.For(0, n, func(i int) {
		m.Update(i%7, func(old []int32, _ bool) []int32 {
			ns := make([]int32, len(old)+1)
			copy(ns, old)
			ns[len(old)] = int32(i)
			return ns
		})
	})
	var total atomic.Int64
	m.RangePar(func(k int, v []int32) { total.Add(int64(len(v))) })
	if total.Load() != n {
		t.Fatalf("lost appends: %d want %d", total.Load(), n)
	}
}

func TestLockFreePriorityWrite(t *testing.T) {
	// LoadOrStore is a priority write: exactly one writer per key wins and
	// everyone observes the winner.
	m := NewLockFree[int, int](8, func(k int) uint64 { return Mix64(uint64(k)) })
	const n, keys = 20000, 64
	won := make([]atomic.Int64, keys)
	observed := make([]int64, n)
	parallel.For(0, n, func(i int) {
		k := i % keys
		v, loaded := m.LoadOrStore(k, i)
		if !loaded {
			won[k].Add(1)
		}
		observed[i] = int64(v)
	})
	for k := range won {
		if w := won[k].Load(); w != 1 {
			t.Fatalf("key %d won %d times", k, w)
		}
	}
	for i := 0; i < n; i++ {
		k := i % keys
		v, _ := m.Load(k)
		if observed[i] != int64(v) {
			t.Fatalf("op %d observed %d, final %d", i, observed[i], v)
		}
	}
}

func TestLockFreeReserve(t *testing.T) {
	m := NewLockFree[int, int](1, func(k int) uint64 { return Mix64(uint64(k)) })
	for i := 0; i < 10; i++ {
		m.Store(i, i)
	}
	m.Reserve(10000)
	for i := 10; i < 10000; i++ {
		m.Store(i, i)
	}
	if m.Len() != 10000 {
		t.Fatalf("len=%d", m.Len())
	}
	for i := 0; i < 10000; i += 997 {
		if v, ok := m.Load(i); !ok || v != i {
			t.Fatalf("key %d = (%d,%v)", i, v, ok)
		}
	}
}

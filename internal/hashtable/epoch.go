package hashtable

import (
	"sync"
	"sync/atomic"
)

// Epoch-published snapshots (the serve-while-building read side).
//
// A Snap is a read-only handle over a table that stays valid while
// mutators keep running: the round engine batch-updates the table, and at
// each committed round boundary calls AdvanceEpoch — a phase operation
// that drives any in-flight migration to completion (so the root is a
// flat array) and bumps the table's epoch counter. Reader goroutines take
// snapshots at any time; for the lock-free tables a snapshot is O(1) — it
// pins the current root table and registers its epoch with the table's
// reclamation registry.
//
// What a snapshot guarantees, precisely:
//
//   - Every read is torn-free. Snap.Load/Range on the inline table go
//     through the validated seqlock read (load meta, words, meta again),
//     and on the box table through immutable box pointers, so a reader
//     can never observe half of a two-word write — even while writers
//     storm the same slots.
//   - Reads are *regular*: a Load returns the value of some committed
//     write no older than the snapshot point (never an older one, never a
//     torn one). Writes that land after the snapshot MAY be visible —
//     slots mutate in place, the snapshot pins the array, not the values.
//     Exact committed-round-prefix semantics are built one layer up, by
//     stamping values with the round that wrote them (the Delaunay face
//     map does exactly this) or by quiescing writers across the epoch
//     boundary, and are what the linearizable-snapshot stress asserts.
//   - The pinned slot array is never reclaimed while the snapshot is
//     open. Superseded root tables are retired to the registry instead of
//     being dropped when the root pointer advances past them; retired
//     tables are reclaimed only once every snapshot registered at or
//     before the retire epoch has been closed. Go's GC would keep the
//     array reachable through the pinned pointer anyway — the registry
//     makes the lifetime argument explicit, testable (reclamation is
//     observable), and portable to arena- or mmap-backed slot storage
//     (the out-of-core ROADMAP item), where a freed array really is gone.
//
// Close a snapshot when done with it; a leaked snapshot pins every table
// retired since it was taken, for the life of the table.
type Snap[K comparable, V any] interface {
	// Epoch is the table epoch the snapshot was taken at.
	Epoch() uint64
	// Load returns the value for k per the regular-read guarantee above.
	Load(k K) (V, bool)
	// Len counts the live entries visible to the snapshot.
	Len() int
	// Range calls f for every visible entry until f returns false.
	Range(f func(k K, v V) bool)
	// Close releases the snapshot's pin on retired tables. Idempotent.
	Close()
}

// epochCore is the per-table epoch counter plus the deferred-reclamation
// registry for superseded slot arrays. It is embedded in all three Table
// implementations; the zero value is ready to use.
type epochCore struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	live    map[uint64]int // open snapshots per epoch
	retired []retiredTable
}

// retiredTable is a superseded root table held until no snapshot taken at
// or before its retire epoch remains open.
type retiredTable struct {
	epoch uint64
	tab   any
}

// Epoch returns the table's current epoch. Epochs start at 0 and advance
// only via AdvanceEpoch, so the value identifies the round boundary the
// table last published.
func (ec *epochCore) Epoch() uint64 { return ec.epoch.Load() }

// advance bumps the epoch and reclaims any retired tables no open
// snapshot can reference.
func (ec *epochCore) advance() uint64 {
	ec.mu.Lock()
	e := ec.epoch.Add(1)
	ec.reclaimLocked()
	ec.mu.Unlock()
	return e
}

// register opens a snapshot at the current epoch and returns it. Must be
// called BEFORE pinning the root pointer: a root retired between the two
// steps then carries a retire epoch >= the registered epoch and stays
// pinned.
func (ec *epochCore) register() uint64 {
	ec.mu.Lock()
	if ec.live == nil {
		ec.live = make(map[uint64]int)
	}
	e := ec.epoch.Load()
	ec.live[e]++
	ec.mu.Unlock()
	return e
}

// release closes a snapshot opened at epoch e and reclaims anything it
// was the last pin for.
func (ec *epochCore) release(e uint64) {
	ec.mu.Lock()
	if n := ec.live[e]; n <= 1 {
		delete(ec.live, e)
	} else {
		ec.live[e] = n - 1
	}
	ec.reclaimLocked()
	ec.mu.Unlock()
}

// retire parks a superseded root table in the registry at the current
// epoch. Called by advanceRoot (the migration winner moving cur past a
// drained table) and Clear (installing a fresh table over the old root).
func (ec *epochCore) retire(tab any) {
	ec.mu.Lock()
	ec.retired = append(ec.retired, retiredTable{epoch: ec.epoch.Load(), tab: tab})
	ec.mu.Unlock()
}

// reclaimLocked drops every retired table strictly older than the oldest
// open snapshot (all of them when no snapshot is open). Caller holds mu.
func (ec *epochCore) reclaimLocked() {
	min := ec.epoch.Load()
	for e := range ec.live {
		if e < min {
			min = e
		}
	}
	keep := ec.retired[:0]
	for _, r := range ec.retired {
		if r.epoch >= min {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(ec.retired); i++ {
		ec.retired[i] = retiredTable{} // release for GC
	}
	ec.retired = keep
}

// retiredCount reports how many superseded tables the registry is
// holding; the reclamation tests observe it.
func (ec *epochCore) retiredCount() int {
	ec.mu.Lock()
	n := len(ec.retired)
	ec.mu.Unlock()
	return n
}

// snapRef is the shared open/close state of a snapshot handle.
type snapRef struct {
	ec     *epochCore
	epoch  uint64
	closed atomic.Bool
}

func (s *snapRef) Epoch() uint64 { return s.epoch }

func (s *snapRef) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.ec.release(s.epoch)
	}
}

// phaseDebug is the ridtdebug-tag phase-violation detector. The lock-free
// tables' bulk operations (Len, Range, RangePar, Clear, Reserve, Flatten,
// AdvanceEpoch) are phase operations: running one concurrently with a
// mutator corrupts silently (torn sweeps, lost writes behind a Clear).
// Under `-tags ridtdebug` every mutator entry/exit maintains an atomic
// in-flight count and every phase operation asserts it is zero; in the
// default build debugPhase is a false constant and the hooks compile
// away, exactly like internal/fault's sites.
type phaseDebug struct {
	muts atomic.Int64
}

// assertQuiesced panics if any mutator is in flight (ridtdebug builds
// only). Called on entry to every phase operation.
func (d *phaseDebug) assertQuiesced(op string) {
	if debugPhase && d.muts.Load() != 0 {
		panic("hashtable: phase operation " + op +
			" ran concurrently with a mutator (phase-concurrency violation)")
	}
}

// mapSnap is Map's snapshot: a materialized copy taken shard by shard
// under the shard locks. The sharded map mutates values in place with no
// versioning, so pinning is impossible — the copy is the point: it makes
// Map the semantics oracle for the snapshot tests (its snapshots are
// trivially frozen). Copying is O(n); take Map snapshots at quiesced
// boundaries, as with any Map-wide sweep.
type mapSnap[K comparable, V any] struct {
	snapRef
	m map[K]V
}

// Snapshot returns a frozen copy of the map's contents. Each shard is
// copied under its lock; for a cross-shard-consistent snapshot call it
// from a quiesced boundary (the round protocol does).
func (m *Map[K, V]) Snapshot() Snap[K, V] {
	s := &mapSnap[K, V]{m: make(map[K]V, m.Len())}
	s.ec, s.epoch = &m.epochCore, m.epochCore.register()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			s.m[k] = v
		}
		sh.mu.Unlock()
	}
	return s
}

//ridt:noalloc
func (s *mapSnap[K, V]) Load(k K) (V, bool) {
	v, ok := s.m[k]
	return v, ok
}

func (s *mapSnap[K, V]) Len() int { return len(s.m) }

func (s *mapSnap[K, V]) Range(f func(k K, v V) bool) {
	for k, v := range s.m {
		if !f(k, v) {
			return
		}
	}
}

// AdvanceEpoch bumps the map's epoch (no migration to flatten) and
// reclaims unreferenced snapshots' pins.
func (m *Map[K, V]) AdvanceEpoch() uint64 { return m.epochCore.advance() }

//go:build ridtdebug

package hashtable

// debugPhase enables the phase-violation detector (see phaseDebug in
// epoch.go): mutators count themselves in and out atomically, and every
// phase operation (Len, Range, RangePar, Clear, Reserve, Flatten,
// AdvanceEpoch) panics if it observes an in-flight mutator. CI runs the
// test suite with this tag so any caller violating the phase contract
// fails loudly instead of corrupting silently.
const debugPhase = true

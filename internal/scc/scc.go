// Package scc implements Section 6.2 of the paper: strongly connected
// components via the incremental view of Coppersmith, Fleischer,
// Hendrickson and Pinar's divide-and-conquer algorithm, its Type 3
// parallelization, and Tarjan's linear-time algorithm as the sequential
// baseline.
//
// The incremental formulation (Algorithm 7) processes vertices in a random
// priority order. Iteration i takes the subgraph S currently containing
// vertex i, runs forward and backward reachability from i inside S, outputs
// the intersection as i's SCC, and splits S into the three remaining parts.
// Lemma 6.3 shows the dependences (search visits) are separating, so the
// doubling-round schedule of Algorithm 2 applies with O(log n) rounds and a
// constant-factor work overhead.
package scc

import (
	"repro/internal/graph"
)

// Labels assigns every vertex its component: vertices with equal values are
// in the same SCC. Values are arbitrary ids (the parallel and sequential
// algorithms use the lowest-priority pivot that discovered the component).
type Labels []int32

// Stats reports the counters of a run.
type Stats struct {
	ReachWork   int64 // edges scanned across all reachability searches
	Visits      int64 // vertex visits across all searches (dependences)
	Searches    int   // reachability searches performed (2 per live pivot)
	Rounds      int   // doubling rounds of the parallel schedule
	NumSCCs     int
	CombineWork int64
}

// Tarjan computes SCCs with Tarjan's algorithm (iterative). The returned
// labels are canonicalized so that each component is labeled by its
// smallest vertex. Baseline and test oracle.
func Tarjan(g *graph.Graph) Labels {
	n := g.N
	const undef = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make(Labels, n)
	for i := range index {
		index[i] = undef
		comp[i] = undef
	}
	var stack []int32
	var next int32

	type frame struct {
		v  int32
		ei int32 // next out-edge offset to consider
	}
	var call []frame
	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		call = append(call[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			adv := false
			out := g.Out(int(v))
			for int(f.ei) < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] == undef {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					adv = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if adv {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = v
					if w == v {
						break
					}
				}
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return Canonicalize(comp)
}

// Canonicalize relabels so each component's label is its smallest member.
func Canonicalize(l Labels) Labels {
	minOf := make(map[int32]int32, len(l))
	for v, c := range l {
		if m, ok := minOf[c]; !ok || int32(v) < m {
			minOf[c] = int32(v)
		}
	}
	out := make(Labels, len(l))
	for v, c := range l {
		out[v] = minOf[c]
	}
	return out
}

// SamePartition reports whether two labelings induce the same partition.
func SamePartition(a, b Labels) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := Canonicalize(a), Canonicalize(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// CountSCCs returns the number of distinct components in l.
func CountSCCs(l Labels) int {
	seen := make(map[int32]struct{}, len(l))
	for _, c := range l {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// Sequential runs the incremental Algorithm 7 with vertices in index
// (priority) order: vertex 0 is the first pivot.
func Sequential(g *graph.Graph) (Labels, Stats) {
	n := g.N
	var st Stats
	g.EnsureReverse()
	part := make([]int32, n) // current partition id of each live vertex
	scc := make(Labels, n)   // final SCC id, -1 until assigned
	for i := range scc {
		scc[i] = -1
	}
	nextPart := int32(1)

	fwd := make([]bool, n)
	bwd := make([]bool, n)
	var fwdList, bwdList []int32

	for i := 0; i < n; i++ {
		if scc[i] >= 0 {
			continue // S = ∅: already carved into an SCC
		}
		p := part[i]
		in := func(u int) bool { return scc[u] < 0 && part[u] == p }
		fwdList = fwdList[:0]
		bwdList = bwdList[:0]
		r1, w1 := graph.ReachFrom(g, i, true, in, func(u int) {
			fwd[u] = true
			fwdList = append(fwdList, int32(u))
		})
		r2, w2 := graph.ReachFrom(g, i, false, in, func(u int) {
			bwd[u] = true
			bwdList = append(bwdList, int32(u))
		})
		st.ReachWork += w1 + w2
		st.Visits += int64(r1 + r2)
		st.Searches += 2
		// SCC = fwd ∩ bwd; split the rest into fwd-only, bwd-only, neither.
		fwdOnly, bwdOnly := nextPart, nextPart+1
		nextPart += 2
		for _, u := range fwdList {
			if bwd[u] {
				scc[u] = int32(i)
			} else {
				part[u] = fwdOnly
			}
		}
		for _, u := range bwdList {
			if !fwd[u] {
				part[u] = bwdOnly
			}
		}
		// The "neither" part keeps partition id p: p was unique to S and
		// every other member of S was just relabeled or carved out.
		for _, u := range fwdList {
			fwd[u] = false
		}
		for _, u := range bwdList {
			bwd[u] = false
		}
	}
	st.NumSCCs = CountSCCs(scc)
	return Canonicalize(scc), st
}

package scc

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func TestParallelCancelNilMatchesPlain(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(300)
		g := graph.GnmDirected(r, n, 3*n, false)
		want, wantSt := Parallel(g)
		got, gotSt, err := ParallelCancel(g, nil)
		if err != nil {
			t.Fatalf("trial %d: nil-token err = %v", trial, err)
		}
		if gotSt != wantSt {
			t.Fatalf("trial %d: stats diverge: %+v vs %+v", trial, gotSt, wantSt)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: label of %d diverges", trial, v)
			}
		}
	}
}

func TestParallelCancelPreCanceled(t *testing.T) {
	g := graph.GnmDirected(rng.New(52), 100, 300, false)
	var c parallel.Canceler
	c.Cancel()
	l, st, err := ParallelCancel(g, &c)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if l != nil {
		t.Fatalf("pre-canceled run returned labels")
	}
	if st.Searches != 0 {
		t.Fatalf("pre-canceled run performed %d searches", st.Searches)
	}
}

// TestParallelCancelRace cancels at staggered points of real runs. Whatever
// round the token lands in must be discarded whole — a partial visit set
// that leaked into a carve or refine would either label a vertex wrongly
// or split a partition inside an SCC, and the re-run on the same graph
// would then disagree with Tarjan. The re-run also proves the cancellation
// left no shared state behind (the algorithm is pure per call).
func TestParallelCancelRace(t *testing.T) {
	r := rng.New(53)
	for trial := 0; trial < 12; trial++ {
		n := 500 + r.Intn(500)
		g := graph.GnmDirected(r, n, 4*n, false)
		want := Tarjan(g)
		var c parallel.Canceler
		done := make(chan struct{})
		go func(d time.Duration) {
			time.Sleep(d)
			c.Cancel()
			close(done)
		}(time.Duration(trial*40) * time.Microsecond)
		l, _, err := ParallelCancel(g, &c)
		<-done
		if err != nil {
			if !errors.Is(err, parallel.ErrCanceled) {
				t.Fatalf("trial %d: err = %v", trial, err)
			}
			if l != nil {
				t.Fatalf("trial %d: canceled run returned labels", trial)
			}
		} else if !SamePartition(l, want) {
			t.Fatalf("trial %d: run that beat the cancel disagrees with Tarjan", trial)
		}
		got, _, err := ParallelCancel(g, nil)
		if err != nil {
			t.Fatalf("trial %d: re-run err = %v", trial, err)
		}
		if !SamePartition(got, want) {
			t.Fatalf("trial %d: re-run after cancel disagrees with Tarjan", trial)
		}
	}
}

// TestParallelCancelGiantSCC aims the cancel at the hardest round shape:
// one giant SCC, so the first round is a single pivot running the
// intra-search parallel reachability over the whole graph (the
// ParReachFromCancel path). The cancel lands inside that search at most
// timings; whatever happens, the round discards whole and a re-run
// matches Tarjan.
func TestParallelCancelGiantSCC(t *testing.T) {
	g := graph.CycleChords(rng.New(54), 4000, 2)
	want := Tarjan(g)
	for trial := 0; trial < 6; trial++ {
		var c parallel.Canceler
		go func(d time.Duration) {
			time.Sleep(d)
			c.Cancel()
		}(time.Duration(trial*25) * time.Microsecond)
		l, _, err := ParallelCancel(g, &c)
		if err != nil {
			if !errors.Is(err, parallel.ErrCanceled) {
				t.Fatalf("trial %d: err = %v", trial, err)
			}
			if l != nil {
				t.Fatalf("trial %d: canceled run returned labels", trial)
			}
		} else if !SamePartition(l, want) {
			t.Fatalf("trial %d: completed run disagrees with Tarjan", trial)
		}
	}
	got, _, err := ParallelCancel(g, nil)
	if err != nil || !SamePartition(got, want) {
		t.Fatalf("re-run after cancels disagrees with Tarjan (err=%v)", err)
	}
}

package scc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTarjanPlanted(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(200)
		comps := 1 + r.Intn(10)
		g, truth := graph.PlantedSCC(r, n, comps, 3*n)
		got := Tarjan(g)
		want := make(Labels, n)
		for v, c := range truth {
			want[v] = int32(c)
		}
		if !SamePartition(got, want) {
			t.Fatalf("trial %d: Tarjan disagrees with planted components", trial)
		}
		if CountSCCs(got) != comps {
			t.Fatalf("trial %d: %d components, want %d", trial, CountSCCs(got), comps)
		}
	}
}

func TestSequentialMatchesTarjan(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(300)
		g := graph.GnmDirected(r, n, 2*n, false)
		seq, _ := Sequential(g)
		want := Tarjan(g)
		if !SamePartition(seq, want) {
			t.Fatalf("trial %d n=%d: incremental SCC differs from Tarjan", trial, n)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(400)
		m := n * (1 + r.Intn(4))
		g := graph.GnmDirected(r, n, m, false)
		want := Tarjan(g)
		par, _ := Parallel(g)
		if !SamePartition(par, want) {
			t.Fatalf("trial %d n=%d m=%d: parallel SCC differs from Tarjan", trial, n, m)
		}
	}
}

func TestParallelAtDensityTransition(t *testing.T) {
	// m ≈ n ln n is where the giant SCC emerges; the hardest regime.
	r := rng.New(4)
	for _, n := range []int{64, 256, 1024} {
		m := int(float64(n) * 6)
		g := graph.GnmDirected(r, n, m, false)
		want := Tarjan(g)
		par, parSt := Parallel(g)
		if !SamePartition(par, want) {
			t.Fatalf("n=%d: wrong components", n)
		}
		if parSt.NumSCCs != CountSCCs(want) {
			t.Fatalf("n=%d: NumSCCs=%d want %d", n, parSt.NumSCCs, CountSCCs(want))
		}
	}
}

func TestChainDAG(t *testing.T) {
	// All-singleton SCCs; adversarial for reachability balance.
	g := graph.ChainDAG(300)
	par, _ := Parallel(g)
	if CountSCCs(par) != 300 {
		t.Fatalf("chain DAG: %d components, want 300", CountSCCs(par))
	}
	seq, _ := Sequential(g)
	if !SamePartition(par, seq) {
		t.Fatal("chain DAG: parallel differs from sequential")
	}
}

func TestCycle(t *testing.T) {
	// One big SCC.
	g := graph.CycleChords(rng.New(5), 500, 100)
	par, _ := Parallel(g)
	if CountSCCs(par) != 1 {
		t.Fatalf("cycle: %d components, want 1", CountSCCs(par))
	}
}

func TestEmptyEdges(t *testing.T) {
	g := graph.FromEdges(10, nil, false)
	for _, labels := range []Labels{Tarjan(g), mustSeq(g), mustPar(g)} {
		if CountSCCs(labels) != 10 {
			t.Fatalf("edgeless graph: %d components, want 10", CountSCCs(labels))
		}
	}
}

func mustSeq(g *graph.Graph) Labels { l, _ := Sequential(g); return l }
func mustPar(g *graph.Graph) Labels { l, _ := Parallel(g); return l }

func TestSingleVertex(t *testing.T) {
	g := graph.FromEdges(1, nil, false)
	if l, _ := Parallel(g); len(l) != 1 || CountSCCs(l) != 1 {
		t.Fatal("single vertex should be its own SCC")
	}
}

func TestSelfLoops(t *testing.T) {
	edges := []graph.Edge{{From: 0, To: 0}, {From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 1}}
	g := graph.FromEdges(3, edges, false)
	want := Tarjan(g)
	par, _ := Parallel(g)
	if !SamePartition(par, want) {
		t.Fatal("self loops mishandled")
	}
	if CountSCCs(par) != 2 {
		t.Fatalf("want 2 components, got %d", CountSCCs(par))
	}
}

func TestPowerLawGraph(t *testing.T) {
	r := rng.New(6)
	g := graph.PowerLawDirected(r, 2000, 4)
	want := Tarjan(g)
	par, _ := Parallel(g)
	if !SamePartition(par, want) {
		t.Fatal("power-law graph: wrong components")
	}
}

func TestParallelExtraWorkConstantFactor(t *testing.T) {
	// The paper: relaxing dependences increases work by a constant factor
	// in expectation.
	r := rng.New(7)
	n := 4096
	g := graph.GnmDirected(r, n, 4*n, false)
	_, seqSt := Sequential(g)
	_, parSt := Parallel(g)
	ratio := float64(parSt.ReachWork) / float64(seqSt.ReachWork+1)
	if ratio > 6 {
		t.Fatalf("parallel reach work is %.2fx sequential; want a small constant", ratio)
	}
}

func TestSeparatingDependenceOrdering(t *testing.T) {
	// Reproduces Figure 2 / Lemma 6.3 as a checked invariant: take the
	// sequential run's visit sets; for a <_c b <_c c in c's ordering
	// (b reachability-between a and c), c must not be visited by a's
	// search unless a ran before b. We verify the contrapositive on
	// observed visits: if pivot a's search visited vertex c, then no
	// earlier pivot b separated them — i.e., at a's iteration, b and c
	// were not already split into different partitions from a.
	// Operationally (what Algorithm 7 guarantees): every visited vertex
	// shares the pivot's partition at visit time. We re-run the sequential
	// algorithm and assert the 'in' predicate enforced that.
	r := rng.New(8)
	n := 200
	g := graph.GnmDirected(r, n, 3*n, false)
	// Sequential already restricts searches by partition; a violation
	// would produce wrong SCCs. Cross-check against Tarjan is therefore
	// the behavioral test of Lemma 6.3's consequence.
	seq, _ := Sequential(g)
	if !SamePartition(seq, Tarjan(g)) {
		t.Fatal("separating-dependence invariant violated: wrong SCCs")
	}
}

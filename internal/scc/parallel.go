package scc

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashtable"
	"repro/internal/parallel"
	"repro/internal/sortutil"
)

// Parallel runs the Type 3 parallel SCC algorithm (Theorem 6.4): the pivots
// of each doubling round run forward and backward reachability searches
// concurrently inside their partitions as frozen at the end of the previous
// round; the combine step then
//
//  1. carves out components — a vertex joins the SCC of the
//     smallest-priority pivot whose searches reached it in both directions
//     (mutual reachability inside a partition implies same SCC, since
//     partitions are unions of SCCs); every live pivot reaches itself both
//     ways, so each round finishes all of its own pivots; and
//  2. refines the remaining partitions by the full per-search reachability
//     outcome — the paper's "cut any edge between a reached and an
//     unreached vertex", realized by hashing each vertex's (forward set,
//     backward set) of discovering pivots into its partition id. This is
//     more aggressive than the sequential splits, which the paper notes
//     only helps; reachability-based cuts never split an SCC.
//
// The combine is a semisort over this round's visit triples, exactly like
// the LE-list combine, and is deterministic.
func Parallel(g *graph.Graph) (Labels, Stats) {
	l, st, _ := ParallelCancel(g, nil)
	return l, st
}

// ParallelCancel is Parallel with cooperative cancellation, observed
// between doubling rounds, between pivots inside a round, and at the
// frontier rounds of the intra-search parallel reachability. Rounds are
// atomic: a round whose searches were cut short discards ALL of its visits
// before the combine, because carving or hash-refining on partial
// reachability could place two vertices of one SCC in different partitions
// — a split no later round could undo. On cancellation it returns nil
// labels (the committed rounds' carvings are internally consistent but a
// partial labeling is not a meaningful output), the partial-progress
// stats, and parallel.ErrCanceled; a nil token is exactly Parallel.
func ParallelCancel(g *graph.Graph, c *parallel.Canceler) (Labels, Stats, error) {
	n := g.N
	var st Stats
	g.EnsureReverse()
	part := make([]uint64, n) // current partition id (hash-refined)
	scc := make(Labels, n)
	for i := range scc {
		scc[i] = -1
	}

	// visit is one (target, pivot, direction) observation of a round.
	type visit struct {
		target int32
		pivot  int32
		fwd    bool
	}
	var roundVisits [][]visit // per pivot slot, filled in parallel
	discarded := false        // this round was cut short: combine must no-op

	runRound := func(lo, hi int) {
		roundVisits = make([][]visit, hi-lo)
		discarded = c.Canceled()
		if discarded {
			return
		}
		works := make([]int64, hi-lo)
		counts := make([]int64, hi-lo)
		searched := make([]int, hi-lo)
		// With fewer live pivots than cores (the early rounds), use the
		// frontier-parallel reachability so a single huge search is not a
		// sequential bottleneck; with many pivots, run sequential searches
		// concurrently across pivots (the paper's schedule).
		useParSearch := hi-lo < parallel.MaxProcs()
		runPivot := func(k int) {
			if scc[k] >= 0 {
				return // pivot already carved out in an earlier round
			}
			p := part[k]
			in := func(u int) bool { return scc[u] < 0 && part[u] == p }
			var local []visit
			var r1, r2 int
			var w1, w2 int64
			if useParSearch {
				var vf, vb []int32
				var err error
				vf, w1, err = graph.ParReachFromCancel(g, k, true, in, c)
				if err != nil {
					discarded = true
					return
				}
				vb, w2, err = graph.ParReachFromCancel(g, k, false, in, c)
				if err != nil {
					discarded = true
					return
				}
				r1, r2 = len(vf), len(vb)
				for _, u := range vf {
					local = append(local, visit{target: u, pivot: int32(k), fwd: true})
				}
				for _, u := range vb {
					local = append(local, visit{target: u, pivot: int32(k), fwd: false})
				}
			} else {
				r1, w1 = graph.ReachFrom(g, k, true, in, func(u int) {
					local = append(local, visit{target: int32(u), pivot: int32(k), fwd: true})
				})
				r2, w2 = graph.ReachFrom(g, k, false, in, func(u int) {
					local = append(local, visit{target: int32(u), pivot: int32(k), fwd: false})
				})
			}
			roundVisits[k-lo] = local
			works[k-lo] = w1 + w2
			counts[k-lo] = int64(r1 + r2)
			searched[k-lo] = 2
		}
		if useParSearch {
			for k := lo; k < hi && !discarded; k++ {
				runPivot(k)
			}
		} else {
			// Grain 1: each pivot runs a whole reachability search, the
			// most skewed body in the repo; steal-based rebalancing is
			// essential so one giant search never pins a lane's queue.
			// Cancellation here skips whole pivots (a started search runs
			// to completion); the skipped slots stay nil and the round is
			// discarded below.
			if parallel.ForGrainCancel(lo, hi, 1, c, runPivot) != nil {
				discarded = true
			}
		}
		st.ReachWork += parallel.Sum(works)
		st.Visits += parallel.Sum(counts)
		for _, s := range searched {
			st.Searches += s
		}
	}

	combine := func(lo, hi int) {
		if discarded {
			// Round-atomic discard: the visit set is a truncated sample of
			// the round's reachability, so neither carving nor refining is
			// sound on it. Dropping it wholesale leaves the state exactly
			// at the previous round's boundary; the caller sees ErrCanceled
			// at the next round top.
			roundVisits = nil
			return
		}
		total := 0
		for _, vs := range roundVisits {
			total += len(vs)
		}
		if total == 0 {
			roundVisits = nil
			return
		}
		st.CombineWork += int64(total)
		flat := make([]visit, 0, total)
		for _, vs := range roundVisits {
			flat = append(flat, vs...)
		}
		groups := sortutil.Semisort(len(flat), func(i int) uint64 {
			return uint64(flat[i].target)
		})
		// Group sizes are skewed; claims are lane-local on the stealing
		// pool, so grain 2 buys balance on the big groups for almost no
		// claim traffic.
		parallel.ForGrain(0, len(groups), 2, func(gi int) {
			grp := groups[gi]
			u := flat[grp.Indices[0]].target
			// Collect this vertex's discoverers per direction. Both lists
			// are ascending by construction — flat concatenates the pivot
			// slots in increasing pivot order and Semisort returns indices
			// in increasing order — so no sort is needed here (the engine's
			// dedup discipline: derive order, don't re-establish it). The
			// carve min-scan and the order-sensitive refine hash below rely
			// on exactly this order, matching what the removed sorts
			// produced.
			var fwd, bwd []int32
			for _, ix := range grp.Indices {
				v := flat[ix]
				if v.fwd {
					fwd = append(fwd, v.pivot)
				} else {
					bwd = append(bwd, v.pivot)
				}
			}
			// Carve: smallest pivot present in both directions.
			for i, j := 0, 0; i < len(fwd) && j < len(bwd); {
				switch {
				case fwd[i] < bwd[j]:
					i++
				case fwd[i] > bwd[j]:
					j++
				default:
					scc[u] = fwd[i]
					return
				}
			}
			// Refine: hash the exact reachability outcome into the
			// partition id. A hash collision can only merge partitions,
			// which affects work but never correctness (carving relies on
			// mutual reachability alone, and every vertex is eventually
			// its own pivot).
			h := part[u]
			for _, s := range fwd {
				h = hashtable.Mix64(h ^ hashtable.Mix64(uint64(s)*2+1))
			}
			for _, s := range bwd {
				h = hashtable.Mix64(h ^ hashtable.Mix64(uint64(s)*2))
			}
			part[u] = h
		})
		roundVisits = nil
	}

	hooks := core.Type3Hooks{
		RunFirst: func() {
			runRound(0, 1)
			combine(0, 1)
		},
		RunRound: runRound,
		Combine:  combine,
	}
	t3, err := core.RunType3Cancel(n, hooks, c)
	st.Rounds = t3.Rounds
	if err != nil {
		return nil, st, err
	}
	labels, num := canonicalizePar(scc)
	st.NumSCCs = num
	return labels, st, nil
}

// canonicalizePar is Canonicalize + CountSCCs fused for the parallel path:
// a lock-free table keyed by raw component id accumulates the minimum
// member per component with a pure min-write Update (retried CAS, the
// priority-write idiom), then every vertex is relabeled in parallel. The
// result is identical to Canonicalize (min is order-independent) and the
// component count falls out of the table for free.
func canonicalizePar(l Labels) (Labels, int) {
	// Presized for the worst case of half the vertices being their own
	// component; shattered graphs beyond that pay one cooperative growth.
	// int32 minima live in the seqlock inline-slot table: the winning
	// min-writes allocate no value box (the remaining write cost UpdateIf
	// could not prune away).
	minOf := hashtable.NewLockFreeInline[int32, int32](len(l)/2+16,
		func(k int32) uint64 { return hashtable.Mix64(uint64(uint32(k))) },
		hashtable.EncInt32, hashtable.DecInt32)
	parallel.ForGrain(0, len(l), 0, func(v int) {
		// Pruned priority write (the ReduceMinIndex discipline): a cheap
		// read skips the table op once the component's minimum has settled
		// below v, which is the common case; races that slip past the read
		// take UpdateIf's leave-as-is path, which performs no CAS and
		// allocates no value box.
		if cur, ok := minOf.Load(l[v]); ok && cur < int32(v) {
			return
		}
		minOf.UpdateIf(l[v], func(old int32, ok bool) (int32, bool) {
			if ok && old <= int32(v) {
				return old, false
			}
			return int32(v), true
		})
	})
	out := make(Labels, len(l))
	parallel.ForGrain(0, len(l), 0, func(v int) {
		m, _ := minOf.Load(l[v])
		out[v] = m
	})
	return out, minOf.Len()
}

package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestCancelerNilSafe(t *testing.T) {
	var c *Canceler
	c.Cancel() // must not panic
	if c.Canceled() {
		t.Fatal("nil canceler reports canceled")
	}
	if err := ForCancel(0, 100, nil, func(int) {}); err != nil {
		t.Fatalf("nil-token ForCancel = %v", err)
	}
}

func TestForCancelCompletesWhenNotCanceled(t *testing.T) {
	var c Canceler
	var ran atomic.Int64
	if err := ForCancel(0, 10000, &c, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("uncanceled loop = %v", err)
	}
	if ran.Load() != 10000 {
		t.Fatalf("ran %d of 10000", ran.Load())
	}
}

func TestForCancelAlreadyCanceled(t *testing.T) {
	var c Canceler
	c.Cancel()
	var ran atomic.Int64
	err := ForCancel(0, 10000, &c, func(int) { ran.Add(1) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled loop ran %d iterations", ran.Load())
	}
}

// TestCancelBound is the contract the engines rely on: after Cancel
// returns, at most MaxProcs() participants each finish at most one
// grain-sized run, so post-cancel executions are bounded by P*grain.
func TestCancelBound(t *testing.T) {
	const n, grain = 1 << 20, 64
	for trial := 0; trial < 20; trial++ {
		var c Canceler
		var ran, postCancel atomic.Int64
		err := ForGrainCancel(0, n, grain, &c, func(i int) {
			if ran.Add(1) == 1000 {
				c.Cancel()
			}
			if c.Canceled() {
				postCancel.Add(1)
			}
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if ran.Load() == int64(n) {
			t.Fatalf("trial %d: cancellation never cut the loop short", trial)
		}
		// Every iteration counted in postCancel ran on a participant that
		// had started its current grain run before observing the token;
		// each participant contributes at most one grain run.
		if limit := int64(MaxProcs() * grain); postCancel.Load() > limit {
			t.Fatalf("trial %d: %d iterations after cancel, bound %d",
				trial, postCancel.Load(), limit)
		}
	}
}

func TestCancelErrIffCanceledAtExit(t *testing.T) {
	// Cancellation racing completion: the loop may finish every iteration
	// and still report ErrCanceled; it must never report nil after cancel.
	var c Canceler
	var ran atomic.Int64
	err := ForGrainCancel(0, 4096, 1, &c, func(i int) {
		ran.Add(1)
		if i == 4095 {
			c.Cancel() // cancel on (possibly) the last iteration
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v after in-body cancel, want ErrCanceled", err)
	}
}

func TestPoolReusableAfterCancel(t *testing.T) {
	var c Canceler
	ForCancel(0, 1<<20, &c, func(i int) {
		if i == 0 {
			c.Cancel()
		}
	})
	// The pool must be fully functional for the next, unrelated loop.
	var ran atomic.Int64
	For(0, 100000, func(int) { ran.Add(1) })
	if ran.Load() != 100000 {
		t.Fatalf("post-cancel loop ran %d of 100000", ran.Load())
	}
}

func TestCancelNestedLoops(t *testing.T) {
	// Cancel an outer loop whose body runs inner (plain) loops: the inner
	// loops complete normally — cancellation applies to loops observing
	// the token, not to everything on the pool.
	var c Canceler
	var inner atomic.Int64
	err := BlocksNCancel(0, 64, 64, &c, func(b, lo, hi int) {
		For(0, 1000, func(int) { inner.Add(1) })
		if b == 0 {
			c.Cancel()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := inner.Load(); got%1000 != 0 || got == 0 {
		t.Fatalf("inner loops ran %d iterations, want a positive multiple of 1000", got)
	}
}

func TestCancelPanicStillPropagates(t *testing.T) {
	var c Canceler
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the body's panic value", r)
		}
		// And the pool survives, as with plain-loop panics.
		var ran atomic.Int64
		For(0, 1000, func(int) { ran.Add(1) })
		if ran.Load() != 1000 {
			t.Fatalf("post-panic loop ran %d of 1000", ran.Load())
		}
	}()
	ForGrainCancel(0, 1<<16, 1, &c, func(i int) {
		if i == 100 {
			c.Cancel()
			panic("boom")
		}
	})
	t.Fatal("loop returned without panicking")
}

func TestBlocksCancelPartial(t *testing.T) {
	var c Canceler
	c.Cancel()
	var called atomic.Bool
	err := BlocksCancel(0, 1<<16, 64, &c, func(lo, hi int) { called.Store(true) })
	if !errors.Is(err, ErrCanceled) || called.Load() {
		t.Fatalf("pre-canceled BlocksCancel: err=%v called=%v", err, called.Load())
	}
}

func TestBlocksNCancelPinnedPartition(t *testing.T) {
	// Blocks that do run must cover the same ranges BlocksN would give
	// them: cancellation changes how many blocks run, never which indices
	// a block owns.
	const n, nb = 10000, 16
	want := make([][2]int, nb)
	BlocksN(0, n, nb, func(b, lo, hi int) { want[b] = [2]int{lo, hi} })
	var c Canceler
	var mu atomic.Int64
	got := make([][2]int, nb)
	seen := make([]atomic.Bool, nb)
	BlocksNCancel(0, n, nb, &c, func(b, lo, hi int) {
		got[b] = [2]int{lo, hi}
		seen[b].Store(true)
		if mu.Add(1) == 3 {
			c.Cancel()
		}
	})
	for b := 0; b < nb; b++ {
		if seen[b].Load() && got[b] != want[b] {
			t.Fatalf("block %d ran over %v, BlocksN gives %v", b, got[b], want[b])
		}
	}
}

func TestForCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := ForCtx(ctx, 0, 10000, func(int) { ran.Add(1) }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("done-context ForCtx = %v, want ErrCanceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("done-context loop ran %d iterations", ran.Load())
	}
	if err := ForCtx(context.Background(), 0, 10000, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("live-context ForCtx = %v", err)
	}
	if ran.Load() != 10000 {
		t.Fatalf("live-context loop ran %d of 10000", ran.Load())
	}
}

func TestForGrainCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := ForGrainCtx(ctx, 0, 1<<30, 1, func(int) {
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("deadline loop = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline loop ran %v, cancellation did not bite", elapsed)
	}
}

func TestBlocksCtx(t *testing.T) {
	var ran atomic.Int64
	if err := BlocksCtx(context.Background(), 0, 5000, 64, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatalf("BlocksCtx = %v", err)
	}
	if ran.Load() != 5000 {
		t.Fatalf("BlocksCtx covered %d of 5000", ran.Load())
	}
}

// Package parallel provides the shared-memory parallel primitives that the
// rest of the repository builds on: grained parallel loops, reductions,
// prefix sums, compaction (pack/filter), and priority-write cells.
//
// The primitives mirror the CRCW PRAM operations assumed by Blelloch, Gu,
// Shun and Sun ("Parallelism in Randomized Incremental Algorithms", SPAA
// 2016): a W-work D-depth PRAM algorithm runs here in O(W/P + D') time on P
// cores, where D' inflates the paper's O(1) or O(log* n) sub-steps to
// O(log n) tree reductions. The quantities the paper actually bounds —
// dependence depth, operation counts — are measured by explicit counters in
// the algorithm packages and are unaffected by this substitution.
//
// All loops are deterministic in their results (though not in execution
// order) and safe for nested use; nesting simply shares GOMAXPROCS.
package parallel

import (
	"runtime"
	"sync"
)

// MaxProcs returns the degree of parallelism used by the primitives in this
// package. It is GOMAXPROCS at call time, floored at 1.
func MaxProcs() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// DefaultGrain is the minimum number of loop iterations assigned to a task
// when the caller does not specify a grain. It balances scheduling overhead
// against load balance for loop bodies in the 10ns–1µs range.
const DefaultGrain = 512

// grainFor picks a grain so that each worker receives a handful of chunks,
// bounded below by the provided minimum (or DefaultGrain if min <= 0).
func grainFor(n, min int) int {
	if min <= 0 {
		min = DefaultGrain
	}
	p := MaxProcs()
	// Aim for ~8 chunks per worker to allow load balancing without
	// excessive scheduling overhead.
	g := n / (8 * p)
	if g < min {
		g = min
	}
	return g
}

// For runs body(i) for every i in [lo, hi) with automatic grain selection.
// It blocks until all iterations complete. Iterations must be independent.
func For(lo, hi int, body func(i int)) {
	ForGrain(lo, hi, 0, body)
}

// ForGrain is For with an explicit minimum grain: consecutive runs of at
// least `grain` iterations are executed by one goroutine. grain <= 0 selects
// DefaultGrain. Use a grain of 1 only for very heavy loop bodies.
func ForGrain(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	g := grainFor(n, grain)
	if n <= g || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for start := lo; start < hi; start += g {
		end := start + g
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
}

// Blocks runs body(lo', hi') over a partition of [lo, hi) into contiguous
// blocks of at least `grain` iterations. It is the bulk form of ForGrain for
// bodies that want to amortize per-chunk setup (local buffers, counters).
func Blocks(lo, hi, grain int, body func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	g := grainFor(n, grain)
	if n <= g || MaxProcs() == 1 {
		body(lo, hi)
		return
	}
	var wg sync.WaitGroup
	for start := lo; start < hi; start += g {
		end := start + g
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
// It is the fork-join "par" combinator.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// NumBlocks reports how many blocks Blocks would create for n items with the
// given grain. Exposed for preallocating per-block result slices.
func NumBlocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	g := grainFor(n, grain)
	return (n + g - 1) / g
}

// Package parallel provides the shared-memory parallel primitives that the
// rest of the repository builds on: grained parallel loops, reductions,
// prefix sums, compaction (pack/filter), and priority-write cells.
//
// The primitives mirror the CRCW PRAM operations assumed by Blelloch, Gu,
// Shun and Sun ("Parallelism in Randomized Incremental Algorithms", SPAA
// 2016): a W-work D-depth PRAM algorithm runs here in O(W/P + D') time on P
// cores, where D' inflates the paper's O(1) or O(log* n) sub-steps to
// O(log n) tree reductions. The quantities the paper actually bounds —
// dependence depth, operation counts — are measured by explicit counters in
// the algorithm packages and are unaffected by this substitution.
//
// All loops run on a persistent pool of at most GOMAXPROCS worker
// goroutines (see pool.go and DESIGN.md) with work-stealing range
// splitting: each participant owns a contiguous per-lane claim range,
// consumes it from the front in geometrically shrinking batches, and
// steals the back half of another lane's range when its own runs dry — so
// uniform loops cost a handful of lane-local atomics per worker, skewed
// bodies load-balance by stealing, and no goroutines are spawned per call.
// All loops are deterministic in their results (though not in execution
// order) and safe for nested use; an inner loop on a busy worker is
// drained by that worker itself and helped by any idle ones, so nesting
// cannot deadlock. A panic in a loop body is re-raised, with its original
// value, on the goroutine that invoked the loop.
package parallel

import "runtime"

// MaxProcs returns the degree of parallelism used by the primitives in this
// package. It is GOMAXPROCS at call time, floored at 1.
func MaxProcs() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// DefaultGrain is the grain used when the caller does not specify one: no
// loop splits into more than ceil(n/DefaultGrain) chunks, so chunks hold at
// least ~DefaultGrain/2 iterations (the even split may undershoot the grain
// by up to half). It balances claim overhead against load balance for loop
// bodies in the 10ns–1µs range.
const DefaultGrain = 512

// chunksFor picks the number of chunks for an n-iteration loop whose chunks
// must hold at least min iterations (DefaultGrain if min <= 0):
//
//	min(chunksPerWorker·P, ceil(n/min))
//
// Small loops get ceil(n/min) chunks — so n just above the grain still
// splits in two instead of silently serializing as the old grain-based
// formula did — and large loops are capped at chunksPerWorker chunks per
// worker, which the stealing scheduler rebalances by splitting ranges at
// claim time.
func chunksFor(n, min int) int {
	if n <= 0 {
		return 0
	}
	if min <= 0 {
		min = DefaultGrain
	}
	nb := (n + min - 1) / min
	if limit := chunksPerWorker * MaxProcs(); nb > limit {
		nb = limit
	}
	return nb
}

// chunkBounds returns the half-open index range of chunk b when [lo, hi) is
// split into nb near-equal contiguous chunks (sizes differ by at most one).
func chunkBounds(lo, hi, b, nb int) (int, int) {
	n := int64(hi - lo)
	s := lo + int(int64(b)*n/int64(nb))
	e := lo + int(int64(b+1)*n/int64(nb))
	return s, e
}

// For runs body(i) for every i in [lo, hi) with automatic grain selection.
// It blocks until all iterations complete. Iterations must be independent.
func For(lo, hi int, body func(i int)) {
	ForGrain(lo, hi, 0, body)
}

// ForGrain is For with an explicit grain: the loop splits into at most
// ceil((hi-lo)/grain) chunks of near-equal size, so each chunk holds at
// least ~grain/2 consecutive iterations (the even split may undershoot the
// grain by up to half). grain <= 0 selects DefaultGrain. A grain of 1 is
// fine for heavy loop bodies: chunks are claimed from the pool, not
// spawned, so the per-chunk cost is an atomic increment rather than a
// goroutine.
func ForGrain(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	nb := chunksFor(n, grain)
	if nb <= 1 || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	runLoop(nb, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		for i := s; i < e; i++ {
			body(i)
		}
	})
}

// Blocks runs body(lo', hi') over a partition of [lo, hi) into at most
// ceil((hi-lo)/grain) contiguous near-equal blocks (each at least ~grain/2
// iterations). It is the bulk form of ForGrain for bodies that want to
// amortize per-chunk setup (local buffers, counters). The body is invoked
// exactly NumBlocks(hi-lo, grain) times, even on a single-core run; when
// per-block results are allocated from NumBlocks up front, prefer BlocksN
// with that count so the partition cannot shift under a concurrent
// GOMAXPROCS change.
func Blocks(lo, hi, grain int, body func(lo, hi int)) {
	BlocksIndexed(lo, hi, grain, func(_, s, e int) { body(s, e) })
}

// BlocksIndexed is Blocks with the block number passed to the body:
// body(b, lo', hi') with b in [0, NumBlocks(hi-lo, grain)). The index lets
// per-block outputs be written to out[b] directly instead of threading an
// atomic block counter through the body.
func BlocksIndexed(lo, hi, grain int, body func(b, lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	runBlocks(lo, hi, chunksFor(n, grain), body)
}

// BlocksN runs body(b, lo', hi') over [lo, hi) split into exactly nb
// near-equal blocks, b in [0, nb); nb is clamped to [1, hi-lo]. Use it with
// a count captured from NumBlocks when per-block outputs are allocated
// before the loop: unlike Blocks/BlocksIndexed, the partition is pinned by
// the caller, so it cannot shift if GOMAXPROCS changes between the
// allocation and the loop.
func BlocksN(lo, hi, nb int, body func(b, lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	runBlocks(lo, hi, nb, body)
}

func runBlocks(lo, hi, nb int, body func(b, lo, hi int)) {
	if nb == 1 || MaxProcs() == 1 {
		for b := 0; b < nb; b++ {
			s, e := chunkBounds(lo, hi, b, nb)
			body(b, s, e)
		}
		return
	}
	runLoop(nb, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		body(b, s, e)
	})
}

// Do runs the given functions concurrently and waits for all of them.
// It is the fork-join "par" combinator. The caller participates, so Do is
// safe at any nesting depth; the first panic among the functions is
// re-raised on the caller.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	runLoop(len(fns), func(c int) { fns[c]() })
}

// NumBlocks reports how many blocks Blocks (and BlocksIndexed) create for n
// items with the given grain. Exposed for preallocating per-block result
// slices.
func NumBlocks(n, grain int) int {
	return chunksFor(n, grain)
}

package parallel

import (
	"math"
	"sync/atomic"
)

// A PriorityCell is a CRCW "priority-write" memory cell: concurrent writers
// each present a priority (an iteration index in the paper's algorithms) and
// the smallest priority wins. It emulates the priority-write CRCW PRAM used
// by Theorem 3.2 and the SCC combine step with a compare-and-swap loop; the
// expected number of retries per write is O(1) under random arrival order.
// The winner is a pure minimum, independent of write order, which is what
// keeps reservation results deterministic under the stealing scheduler's
// arbitrary chunk interleavings.
//
// The zero value is empty (no write yet). Priorities must be non-negative.
type PriorityCell struct {
	v atomic.Int64 // stored as priority+1 so that 0 means "empty"
}

// Write offers pri to the cell and reports whether it became (or already
// was) the winning value. Lower priorities win.
func (c *PriorityCell) Write(pri int64) bool {
	n := pri + 1
	for {
		cur := c.v.Load()
		if cur != 0 && cur <= n {
			return cur == n
		}
		if c.v.CompareAndSwap(cur, n) {
			return true
		}
	}
}

// Load returns the winning priority and whether any write has occurred.
func (c *PriorityCell) Load() (pri int64, ok bool) {
	cur := c.v.Load()
	if cur == 0 {
		return 0, false
	}
	return cur - 1, true
}

// Reset empties the cell.
func (c *PriorityCell) Reset() { c.v.Store(0) }

// MinInt64 atomically lowers *addr to x if x is smaller. It is the
// arbitrary-CRCW "write-min" used for combining distances in LE-lists.
func MinInt64(addr *atomic.Int64, x int64) {
	for {
		cur := addr.Load()
		if cur <= x {
			return
		}
		if addr.CompareAndSwap(cur, x) {
			return
		}
	}
}

// MinFloat64Bits atomically lowers a float64 stored as ordered uint64 bits.
// Values must be non-negative (the transform used is order-preserving only
// for non-negative floats, which suffices for distances).
func MinFloat64Bits(addr *atomic.Uint64, x float64) {
	bits := math.Float64bits(x)
	for {
		cur := addr.Load()
		if math.Float64frombits(cur) <= x {
			return
		}
		if addr.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// InfBits is the bit pattern of +Inf, the identity for MinFloat64Bits.
var InfBits = math.Float64bits(math.Inf(1))

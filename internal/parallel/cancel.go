package parallel

import (
	"context"
	"errors"
	"sync/atomic"
)

// Cooperative cancellation for the loop primitives.
//
// A Canceler is a level-triggered token: once Cancel is called, every
// *Cancel loop variant observing it stops claiming new work, drains the
// unclaimed remainder, and returns ErrCanceled. Cancellation is
// cooperative and bounded — each participant finishes at most the grain's
// worth of iterations it had already started, so at most
// MaxProcs()*grain iterations execute after Cancel returns (plus the
// chunks other participants had claimed but not begun, each of which is
// abandoned at its next grain boundary). Results of iterations that did
// run are exactly what the sequential loop would have produced for those
// indices: cancellation never perturbs which iteration maps to which
// chunk, only how many chunks run.
//
// The token is a single atomic word. Checking it is a nil-safe atomic
// load, Cancel is an atomic store; both are safe from any goroutine,
// including loop bodies and signal handlers. A nil *Canceler is a valid
// "never canceled" token: the *Cancel variants degrade to their plain
// counterparts at zero cost.
//
// Panic propagation is unchanged by cancellation: if a body panics, the
// first panic value is re-raised on the caller even if the token was also
// canceled — a panic is an answer, cancellation is the lack of one.

// ErrCanceled is returned by the *Cancel and *Ctx loop variants when the
// loop's token was canceled by the time the loop returned. The loop may
// still have completed every iteration (cancellation racing completion);
// callers treating ErrCanceled as "results are partial" are always safe.
var ErrCanceled = errors.New("parallel: loop canceled")

// Canceler is a cooperative cancellation token shared by a loop's
// participants. The zero value is ready to use. A Canceler may be reused
// across loops (cancel applies to all loops observing it) but not reset:
// cancellation is one-way. See ContextCanceler to derive one from a
// context deadline.
type Canceler struct {
	flag atomic.Uint32
}

// Cancel marks the token canceled. Idempotent, safe from any goroutine,
// and safe on a nil receiver (no-op).
func (c *Canceler) Cancel() {
	if c != nil {
		c.flag.Store(1)
	}
}

// Canceled reports whether Cancel has been called. Safe on a nil
// receiver, where it reports false forever.
//
//ridt:noalloc
func (c *Canceler) Canceled() bool {
	return c != nil && c.flag.Load() != 0
}

// ContextCanceler returns a Canceler that cancels when ctx does, and a
// stop function releasing the link (call it when the loops sharing the
// token are done; it does not un-cancel). If ctx is already done the
// token comes back canceled.
func ContextCanceler(ctx context.Context) (*Canceler, func()) {
	c := &Canceler{}
	if ctx.Err() != nil {
		// AfterFunc on a done context fires asynchronously; cancel
		// synchronously so a loop started right after sees the token down
		// before claiming anything.
		c.Cancel()
		return c, func() {}
	}
	stop := context.AfterFunc(ctx, c.Cancel)
	return c, func() { stop() }
}

// errIfCanceled implements the exit contract shared by every *Cancel
// variant: ErrCanceled iff the token is canceled when the loop returns.
func errIfCanceled(c *Canceler) error {
	if c.Canceled() {
		return ErrCanceled
	}
	return nil
}

// ForCancel is For with a cancellation token: body(i) runs for i in
// [lo, hi) unless c is canceled first, in which case the loop stops
// claiming work, drains, and returns ErrCanceled. A nil token makes it
// exactly For.
func ForCancel(lo, hi int, c *Canceler, body func(i int)) error {
	return ForGrainCancel(lo, hi, 0, c, body)
}

// ForGrainCancel is ForGrain with a cancellation token. The token is
// checked between grain-sized runs of iterations inside each chunk, so a
// participant executes at most ~grain iterations past observing
// cancellation regardless of chunk size. grain <= 0 selects DefaultGrain.
func ForGrainCancel(lo, hi, grain int, c *Canceler, body func(i int)) error {
	if c == nil {
		ForGrain(lo, hi, grain, body)
		return nil
	}
	n := hi - lo
	if n <= 0 {
		return errIfCanceled(c)
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	nb := chunksFor(n, grain)
	if nb <= 1 || MaxProcs() == 1 {
		runSpanCancel(lo, hi, grain, c, body)
		return errIfCanceled(c)
	}
	runLoopCancel(nb, c, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		runSpanCancel(s, e, grain, c, body)
	})
	return errIfCanceled(c)
}

// runSpanCancel runs body over [lo, hi) in grain-sized runs, re-checking
// the token before each run. It is the sub-chunk check loop that turns
// per-chunk cancellation into per-grain cancellation.
func runSpanCancel(lo, hi, grain int, c *Canceler, body func(i int)) {
	for s := lo; s < hi; {
		if c.Canceled() {
			return
		}
		e := s + grain
		if e > hi {
			e = hi
		}
		for i := s; i < e; i++ {
			body(i)
		}
		s = e
	}
}

// BlocksCancel is Blocks with a cancellation token, checked before each
// block. Blocks are opaque to the scheduler, so cancellation granularity
// is one block: a body that runs long past the grain should poll
// c.Canceled itself.
func BlocksCancel(lo, hi, grain int, c *Canceler, body func(lo, hi int)) error {
	if c == nil {
		Blocks(lo, hi, grain, body)
		return nil
	}
	n := hi - lo
	if n <= 0 {
		return errIfCanceled(c)
	}
	runBlocksCancel(lo, hi, chunksFor(n, grain), c, func(_, s, e int) { body(s, e) })
	return errIfCanceled(c)
}

// BlocksNCancel is BlocksN with a cancellation token, checked before each
// block. The partition is pinned by the caller exactly as in BlocksN:
// block b, when it runs, covers the same index range cancellation or not.
func BlocksNCancel(lo, hi, nb int, c *Canceler, body func(b, lo, hi int)) error {
	if c == nil {
		BlocksN(lo, hi, nb, body)
		return nil
	}
	n := hi - lo
	if n <= 0 {
		return errIfCanceled(c)
	}
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	runBlocksCancel(lo, hi, nb, c, body)
	return errIfCanceled(c)
}

func runBlocksCancel(lo, hi, nb int, c *Canceler, body func(b, lo, hi int)) {
	if nb == 1 || MaxProcs() == 1 {
		for b := 0; b < nb; b++ {
			if c.Canceled() {
				return
			}
			s, e := chunkBounds(lo, hi, b, nb)
			body(b, s, e)
		}
		return
	}
	runLoopCancel(nb, c, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		body(b, s, e)
	})
}

// ForCtx is ForCancel driven by a context: the loop stops early when ctx
// is done and reports ErrCanceled. The context link is released before
// returning.
func ForCtx(ctx context.Context, lo, hi int, body func(i int)) error {
	return ForGrainCtx(ctx, lo, hi, 0, body)
}

// ForGrainCtx is ForGrainCancel driven by a context.
func ForGrainCtx(ctx context.Context, lo, hi, grain int, body func(i int)) error {
	c, stop := ContextCanceler(ctx)
	defer stop()
	return ForGrainCancel(lo, hi, grain, c, body)
}

// BlocksCtx is BlocksCancel driven by a context.
func BlocksCtx(ctx context.Context, lo, hi, grain int, body func(lo, hi int)) error {
	c, stop := ContextCanceler(ctx)
	defer stop()
	return BlocksCancel(lo, hi, grain, c, body)
}

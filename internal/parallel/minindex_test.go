package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func serialMinIndex(lo, hi int, pred func(i int) bool) (int, bool) {
	for i := lo; i < hi; i++ {
		if pred(i) {
			return i, true
		}
	}
	return 0, false
}

func TestReduceMinIndexMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(5000)
		lo := r.Intn(100)
		hi := lo + n
		// Random sparse true-set, density swept from empty to dense.
		density := r.Intn(64)
		truth := make([]bool, hi)
		for i := lo; i < hi; i++ {
			truth[i] = density > 0 && r.Intn(64) < density
		}
		pred := func(i int) bool { return truth[i] }
		wantIdx, wantOK := serialMinIndex(lo, hi, pred)
		gotIdx, gotOK := ReduceMinIndex(lo, hi, 1+r.Intn(600), pred)
		if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
			t.Fatalf("trial %d [%d,%d): got (%d,%v) want (%d,%v)",
				trial, lo, hi, gotIdx, gotOK, wantIdx, wantOK)
		}
	}
}

func TestReduceMinIndexEmptyAndNone(t *testing.T) {
	if _, ok := ReduceMinIndex(5, 5, 0, func(int) bool { return true }); ok {
		t.Fatal("empty range must report ok=false")
	}
	if _, ok := ReduceMinIndex(3, 1, 0, func(int) bool { return true }); ok {
		t.Fatal("inverted range must report ok=false")
	}
	if _, ok := ReduceMinIndex(0, 100000, 16, func(int) bool { return false }); ok {
		t.Fatal("all-false range must report ok=false")
	}
}

func TestReduceMinIndexFirstAndLast(t *testing.T) {
	n := 100000
	if idx, ok := ReduceMinIndex(0, n, 16, func(i int) bool { return true }); !ok || idx != 0 {
		t.Fatalf("all-true: got (%d,%v)", idx, ok)
	}
	if idx, ok := ReduceMinIndex(0, n, 16, func(i int) bool { return i == n-1 }); !ok || idx != n-1 {
		t.Fatalf("last-only: got (%d,%v)", idx, ok)
	}
}

// TestReduceMinIndexPrunes checks the reservation actually prunes: with an
// early winner, far fewer predicates run than the range holds. The count is
// nondeterministic, so the bound is loose; the point is that it is not ~n.
func TestReduceMinIndexPrunes(t *testing.T) {
	if MaxProcs() == 1 {
		t.Skip("single-proc run evaluates serially with early exit")
	}
	n := 1 << 20
	var calls atomic.Int64
	idx, ok := ReduceMinIndex(0, n, 0, func(i int) bool {
		calls.Add(1)
		return i >= 10
	})
	if !ok || idx != 10 {
		t.Fatalf("got (%d,%v)", idx, ok)
	}
	if c := calls.Load(); c > int64(n/2) {
		t.Fatalf("%d of %d predicates evaluated; pruning ineffective", c, n)
	}
}

// TestScanMinIndexWindows checks the doubling-window scan against the
// serial oracle and its deterministic full-window charge accounting.
func TestScanMinIndexWindows(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(3000)
		lo := r.Intn(50)
		hi := lo + n
		truth := make([]bool, hi)
		for i := lo; i < hi; i++ {
			truth[i] = r.Intn(200) == 0
		}
		var charged int64
		gotIdx, gotOK := ScanMinIndexWindows(lo, hi, 4,
			func(width int) { charged += int64(width) },
			func(i int) bool { return truth[i] })
		wantIdx, wantOK := serialMinIndex(lo, hi, func(i int) bool { return truth[i] })
		if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
			t.Fatalf("trial %d: got (%d,%v) want (%d,%v)", trial, gotIdx, gotOK, wantIdx, wantOK)
		}
		// Windows are disjoint and clipped: no winner charges exactly the
		// range; a winner at l charges at most min(hi-lo, 2(l-lo)+4).
		if !wantOK {
			if charged != int64(n) {
				t.Fatalf("trial %d: charged %d for an exhausted scan of %d", trial, charged, n)
			}
		} else if lim := int64(2*(wantIdx-lo) + 4); charged > lim || charged > int64(n) {
			t.Fatalf("trial %d: charged %d, limit min(%d,%d)", trial, charged, lim, n)
		}
	}
}

// TestReduceMinIndexConcurrentPred exercises the concurrent-pred contract
// under the race detector: the predicate reads shared state published
// before the call.
func TestReduceMinIndexConcurrentPred(t *testing.T) {
	n := 1 << 16
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i % 977)
	}
	for want := 0; want < 5; want++ {
		target := data[n-1-want*7]
		idx, ok := ReduceMinIndex(0, n, 32, func(i int) bool { return data[i] == target })
		if !ok {
			t.Fatalf("target %d not found", target)
		}
		if data[idx] != target {
			t.Fatalf("index %d holds %d, want %d", idx, data[idx], target)
		}
		if si, _ := serialMinIndex(0, n, func(i int) bool { return data[i] == target }); si != idx {
			t.Fatalf("got %d want %d", idx, si)
		}
	}
}

package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		hit := make([]int32, n)
		For(0, n, func(i int) { atomic.AddInt32(&hit[i], 1) })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForNegativeAndEmptyRange(t *testing.T) {
	called := false
	//ridtvet:ignore parclosure the range is empty, so the body never runs
	For(5, 5, func(i int) { called = true })
	//ridtvet:ignore parclosure the range is inverted, so the body never runs
	For(7, 3, func(i int) { called = true })
	if called {
		t.Fatal("body called on empty range")
	}
}

func TestForGrainOffsetRange(t *testing.T) {
	var sum atomic.Int64
	ForGrain(10, 20, 3, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 145 { // 10+...+19
		t.Fatalf("sum = %d, want 145", sum.Load())
	}
}

func TestBlocksPartition(t *testing.T) {
	n := 100000
	var total atomic.Int64
	Blocks(0, n, 0, func(lo, hi int) {
		if lo >= hi {
			panic("empty block")
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("blocks cover %d items, want %d", total.Load(), n)
	}
}

func TestDo(t *testing.T) {
	var a, b, c int
	Do(func() { a = 1 }, func() { b = 2 }, func() { c = 3 })
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do results: %d %d %d", a, b, c)
	}
	Do() // no-op
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single-fn Do did not run")
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 100000} {
		got := SumFunc(0, n, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("n=%d: sum=%d want %d", n, got, want)
		}
	}
}

func TestReduceOrderSensitive(t *testing.T) {
	// String concatenation is associative but not commutative; Reduce must
	// combine blocks in index order.
	n := 5000
	got := Reduce(0, n, "", func(i int) string {
		return string(rune('a' + i%26))
	}, func(a, b string) string { return a + b })
	want := make([]byte, n)
	for i := range want {
		want[i] = byte('a' + i%26)
	}
	if got != string(want) {
		t.Fatal("Reduce is not preserving index order")
	}
}

func TestMinIndexFunc(t *testing.T) {
	xs := []int{5, 3, 9, 3, 7}
	idx, ok := MinIndexFunc(0, len(xs), func(i int) bool { return true }, func(i int) int { return xs[i] })
	if !ok || idx != 1 {
		t.Fatalf("idx=%d ok=%v, want 1 true (ties break left)", idx, ok)
	}
	idx, ok = MinIndexFunc(0, len(xs), func(i int) bool { return xs[i] > 100 }, func(i int) int { return xs[i] })
	if ok {
		t.Fatalf("expected no match, got idx=%d", idx)
	}
}

func TestFirstIndex(t *testing.T) {
	n := 100000
	if got := FirstIndex(0, n, func(i int) bool { return i >= 54321 }); got != 54321 {
		t.Fatalf("FirstIndex = %d, want 54321", got)
	}
	if got := FirstIndex(0, n, func(i int) bool { return false }); got != n {
		t.Fatalf("FirstIndex no-match = %d, want %d", got, n)
	}
}

func TestMinMaxCountAnyAll(t *testing.T) {
	xs := []int{4, -2, 7, 0}
	if m := MinFunc(0, len(xs), func(i int) int { return xs[i] }); m != -2 {
		t.Fatalf("min=%d", m)
	}
	if m := MaxFunc(0, len(xs), func(i int) int { return xs[i] }); m != 7 {
		t.Fatalf("max=%d", m)
	}
	if c := Count(0, len(xs), func(i int) bool { return xs[i] > 0 }); c != 2 {
		t.Fatalf("count=%d", c)
	}
	if !Any(0, len(xs), func(i int) bool { return xs[i] == 7 }) {
		t.Fatal("Any failed")
	}
	if All(0, len(xs), func(i int) bool { return xs[i] > 0 }) {
		t.Fatal("All should be false")
	}
}

func TestScanExclusive(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000, 65536} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i + 1
		}
		total := PrefixSums(xs)
		if want := n * (n + 1) / 2; total != want {
			t.Fatalf("n=%d: total=%d want %d", n, total, want)
		}
		acc := 0
		for i := 0; i < n; i++ {
			if xs[i] != acc {
				t.Fatalf("n=%d: xs[%d]=%d want %d", n, i, xs[i], acc)
			}
			acc += i + 1
		}
	}
}

func TestScanQuickMatchesSequential(t *testing.T) {
	f := func(xs []int32) bool {
		a := make([]int64, len(xs))
		b := make([]int64, len(xs))
		for i, x := range xs {
			a[i] = int64(x)
			b[i] = int64(x)
		}
		tot := PrefixSums(a)
		acc := int64(0)
		for i := range b {
			v := b[i]
			b[i] = acc
			acc += v
		}
		if tot != acc {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPack(t *testing.T) {
	n := 10000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	evens := Pack(xs, func(i int) bool { return xs[i]%2 == 0 })
	if len(evens) != n/2 {
		t.Fatalf("len=%d want %d", len(evens), n/2)
	}
	for k, v := range evens {
		if v != 2*k {
			t.Fatalf("evens[%d]=%d want %d", k, v, 2*k)
		}
	}
	if got := Pack(xs, func(int) bool { return false }); len(got) != 0 {
		t.Fatal("pack of nothing should be empty")
	}
}

func TestPackInto(t *testing.T) {
	// Equivalence with Pack across sizes, including reuse of dst and
	// counts round over round.
	var dst []uint64
	var counts []int
	for _, n := range []int{0, 1, 5, 100, 4096, 100000} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(i * 7)
		}
		keep := func(i int) bool { return xs[i]%3 == 0 }
		want := Pack(xs, keep)
		dst, counts = PackInto(dst, xs, keep, counts)
		if len(dst) != len(want) {
			t.Fatalf("n=%d: len=%d want %d", n, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d]=%d want %d", n, i, dst[i], want[i])
			}
		}
	}
}

func TestPackIntoSteadyStateAllocs(t *testing.T) {
	// Once dst and counts have plateaued, PackInto itself allocates
	// nothing; on a multi-worker run each inner loop costs the scheduler's
	// O(1) task state, which is still independent of n.
	n := 1 << 14
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64(i)
	}
	keep := func(i int) bool { return xs[i]%2 == 0 }
	dst := make([]uint64, 0, n)
	counts := make([]int, 0, 1024)
	allocs := testing.AllocsPerRun(50, func() {
		dst, counts = PackInto(dst, xs, keep, counts)
	})
	// The block-pass closures escape into the scheduler's task state: a
	// small constant per call (two loop bodies, plus loopTask state on
	// multi-worker runs), never O(n).
	if allocs > 16 {
		t.Fatalf("PackInto allocs/op = %v, want O(1) <= 16 (GOMAXPROCS=%d)", allocs, MaxProcs())
	}
}

func TestPackIndexAndFilter(t *testing.T) {
	idx := PackIndex(10, func(i int) bool { return i%3 == 0 })
	want := []int{0, 3, 6, 9}
	if len(idx) != len(want) {
		t.Fatalf("got %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("got %v want %v", idx, want)
		}
	}
	fs := Filter([]string{"a", "bb", "c", "ddd"}, func(s string) bool { return len(s) == 1 })
	if len(fs) != 2 || fs[0] != "a" || fs[1] != "c" {
		t.Fatalf("filter got %v", fs)
	}
}

func TestMap(t *testing.T) {
	sq := Map(6, func(i int) int { return i * i })
	for i, v := range sq {
		if v != i*i {
			t.Fatalf("map[%d]=%d", i, v)
		}
	}
}

func TestPriorityCell(t *testing.T) {
	var c PriorityCell
	if _, ok := c.Load(); ok {
		t.Fatal("zero cell should be empty")
	}
	if !c.Write(5) {
		t.Fatal("first write should win")
	}
	if c.Write(9) {
		t.Fatal("larger priority should lose")
	}
	if !c.Write(5) {
		t.Fatal("equal priority reports winning")
	}
	if !c.Write(2) {
		t.Fatal("smaller priority should win")
	}
	if p, ok := c.Load(); !ok || p != 2 {
		t.Fatalf("load=(%d,%v) want (2,true)", p, ok)
	}
	c.Reset()
	if _, ok := c.Load(); ok {
		t.Fatal("reset cell should be empty")
	}
}

func TestPriorityCellConcurrent(t *testing.T) {
	// Hammer one cell from many goroutines; the minimum must win.
	var c PriorityCell
	n := 1000
	For(0, n, func(i int) {
		c.Write(int64(n - i))
	})
	if p, ok := c.Load(); !ok || p != 1 {
		t.Fatalf("winner=%d want 1", p)
	}
}

func TestPriorityCellZeroPriority(t *testing.T) {
	var c PriorityCell
	if !c.Write(0) {
		t.Fatal("priority 0 must be writable")
	}
	if p, ok := c.Load(); !ok || p != 0 {
		t.Fatalf("load=(%d,%v) want (0,true)", p, ok)
	}
}

func TestMinInt64(t *testing.T) {
	var a atomic.Int64
	a.Store(100)
	For(0, 1000, func(i int) { MinInt64(&a, int64(1000-i)) })
	if a.Load() != 1 {
		t.Fatalf("atomic min = %d, want 1", a.Load())
	}
}

func TestMinFloat64Bits(t *testing.T) {
	var a atomic.Uint64
	a.Store(InfBits)
	For(0, 100, func(i int) { MinFloat64Bits(&a, float64(i)+0.5) })
	got := math.Float64frombits(a.Load())
	if got != 0.5 {
		t.Fatalf("atomic float min = %v, want 0.5", got)
	}
}

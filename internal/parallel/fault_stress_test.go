//go:build ridtfault

package parallel

import (
	"sync/atomic"
	"testing"

	"repro/internal/fault"
)

// Scheduler fault stress (ridtfault build): seeded delays and forced-steal
// diversions at the claim/steal sites must never change WHAT a loop
// executes — only the interleaving. Every index runs exactly once, with
// and without cancellation in flight.

func TestSchedulerExactlyOnceUnderFaults(t *testing.T) {
	withProcs(t, 4)
	defer fault.Disable()
	const n = 1 << 16
	for _, seed := range []uint64{1, 42, 9001} {
		if err := fault.Enable(fault.Config{
			Seed:      seed,
			DelayRate: 0.2,
			SkipRate:  0.3,
			SiteMask:  fault.MaskOf(fault.SchedClaim, fault.SchedSteal),
		}); err != nil {
			t.Fatal(err)
		}
		counts := make([]atomic.Int32, n)
		ForGrain(0, n, 1, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("seed %d: index %d ran %d times", seed, i, got)
			}
		}
		if fault.Hits(fault.SchedClaim) == 0 {
			t.Fatalf("seed %d: claim site never reached — instrumentation is dead", seed)
		}
	}
}

// TestForcedStealsPreserveCombines runs the tree-combined reduction under
// heavy claim diversion: stolen ranges re-enter through install, and the
// combine tree must still see every element exactly once.
func TestForcedStealsPreserveCombines(t *testing.T) {
	withProcs(t, 4)
	defer fault.Disable()
	if err := fault.Enable(fault.Config{
		Seed:     7,
		SkipRate: 0.5,
		SiteMask: fault.MaskOf(fault.SchedClaim),
	}); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 15
	xs := make([]int64, n)
	var want int64
	for i := range xs {
		xs[i] = int64(i%97) - 48
		want += xs[i]
	}
	for trial := 0; trial < 4; trial++ {
		if got := SumFunc(0, n, func(i int) int64 { return xs[i] }); got != want {
			t.Fatalf("trial %d: sum %d, want %d", trial, got, want)
		}
	}
}

// TestCancelUnderFaults: the cancellation observation bound and the
// exactly-once guarantee both survive injected delays and diversions —
// a diverted participant must not re-run a chunk another worker drained.
func TestCancelUnderFaults(t *testing.T) {
	withProcs(t, 4)
	defer fault.Disable()
	if err := fault.Enable(fault.Config{
		Seed:      11,
		DelayRate: 0.1,
		SkipRate:  0.3,
		SiteMask:  fault.MaskOf(fault.SchedClaim, fault.SchedSteal),
	}); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 18
	for trial := 0; trial < 8; trial++ {
		var c Canceler
		counts := make([]atomic.Int32, n)
		var ran atomic.Int64
		ForGrainCancel(0, n, 64, &c, func(i int) {
			if counts[i].Add(1) != 1 {
				t.Errorf("trial %d: index %d ran twice", trial, i)
			}
			if ran.Add(1) == int64(trial*500+100) {
				c.Cancel()
			}
		})
		if t.Failed() {
			t.FailNow()
		}
	}
}

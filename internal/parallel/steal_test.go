package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Tests for the range-splitting/stealing paths specifically: loops smaller
// than one lane, range-word protocol invariants, panics inside stolen
// batches, nested loops stealing from each other, and a mixed-shape stress
// loop meant to run under -race and the CI -cpu matrix.

func TestRangeSlotProtocol(t *testing.T) {
	// takeFront claims the front ceil-half; stealBack takes the back
	// ceil-half (so a one-chunk remnant is stolen whole, never stranded).
	var s rangeSlot
	s.bounds.Store(packRange(0, 8))
	if lo, hi, ok := s.takeFront(); !ok || lo != 0 || hi != 4 {
		t.Fatalf("takeFront on [0,8) = [%d,%d) ok=%v, want [0,4)", lo, hi, ok)
	}
	if lo, hi, ok := s.stealBack(); !ok || lo != 6 || hi != 8 {
		t.Fatalf("stealBack on [4,8) = [%d,%d) ok=%v, want [6,8)", lo, hi, ok)
	}
	if lo, hi, ok := s.takeFront(); !ok || lo != 4 || hi != 5 {
		t.Fatalf("takeFront on [4,6) = [%d,%d) ok=%v, want [4,5)", lo, hi, ok)
	}
	if lo, hi, ok := s.stealBack(); !ok || lo != 5 || hi != 6 {
		t.Fatalf("stealBack on one-chunk [5,6) = [%d,%d) ok=%v, want the whole remnant [5,6)", lo, hi, ok)
	}
	if _, _, ok := s.takeFront(); ok {
		t.Fatal("takeFront on empty slot succeeded")
	}
	// Full-width range: ceil-half of 2^31-1 chunks must not overflow int32
	// (the maxRangeChunks segments in runLoop are exactly this wide).
	s.bounds.Store(packRange(0, maxRangeChunks))
	if lo, hi, ok := s.takeFront(); !ok || lo != 0 || hi != maxClaim {
		t.Fatalf("takeFront on [0,2^31-1) = [%d,%d) ok=%v, want [0,%d)", lo, hi, ok, maxClaim)
	}
	s.bounds.Store(packRange(0, 0))
	if _, _, ok := s.stealBack(); ok {
		t.Fatal("stealBack on empty slot succeeded")
	}
	// install re-publishes only into an empty lane.
	if !s.install(10, 20) {
		t.Fatal("install into empty lane failed")
	}
	if s.install(30, 40) {
		t.Fatal("install into occupied lane succeeded")
	}
	if got := s.drainAll(); got != 10 {
		t.Fatalf("drainAll removed %d chunks, want 10", got)
	}
}

func TestSmallerThanOneLane(t *testing.T) {
	withProcs(t, 4)
	// Every nchunks below (and a bit above) the lane count: most lanes
	// start empty and immediately steal; every index must still run
	// exactly once.
	for n := 1; n <= 3*MaxProcs(); n++ {
		hits := make([]atomic.Int32, n)
		ForGrain(0, n, 1, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times, want 1", n, i, c)
			}
		}
	}
	// Do with fewer functions than lanes.
	for k := 2; k <= 3; k++ {
		var ran atomic.Int32
		fns := make([]func(), k)
		for i := range fns {
			fns[i] = func() { ran.Add(1) }
		}
		Do(fns...)
		if int(ran.Load()) != k {
			t.Fatalf("Do with %d fns ran %d", k, ran.Load())
		}
	}
}

func TestPanicInStolenChunk(t *testing.T) {
	withProcs(t, 4)
	// Force a panic in a chunk the caller cannot have run itself: the
	// caller claims at most maxClaim chunks off the front and parks inside
	// the first one, so the last chunk is necessarily stolen and run by a
	// pool worker, and it panics. The panic must still surface, with its
	// original value, on the calling goroutine.
	const nb = 64
	var fired atomic.Bool
	defer func() {
		if r := recover(); r != "boom-stolen" {
			t.Errorf("recovered %v, want boom-stolen", r)
		}
	}()
	BlocksN(0, nb, nb, func(b, lo, hi int) {
		switch b {
		case 0:
			for !fired.Load() {
				runtime.Gosched()
			}
		case nb - 1:
			fired.Store(true)
			panic("boom-stolen")
		}
	})
	t.Error("returned without panicking")
}

func TestGoexitInStolenChunkDoesNotHangCaller(t *testing.T) {
	withProcs(t, 4)
	// A body that terminates its goroutine (t.FailNow in a test helper,
	// say) instead of panicking must not hang the loop's caller: batch
	// accounting is deferred, so the dying worker's batch still lands and
	// the loop completes (minus that one worker). Same parking trick as
	// the stolen-panic test pins the Goexit onto a pool worker.
	const nb = 64
	var fired atomic.Bool
	var ran atomic.Int64
	BlocksN(0, nb, nb, func(b, lo, hi int) {
		ran.Add(1)
		switch b {
		case 0:
			for !fired.Load() {
				runtime.Gosched()
			}
		case nb - 1:
			fired.Store(true)
			runtime.Goexit()
		}
	})
	// Returning at all is the regression assertion (a broken scheduler
	// blocks forever on the unaccounted batch and times the test out).
	if got := ran.Load(); got != nb {
		t.Fatalf("ran %d chunks, want %d", got, nb)
	}
	// The pool must still schedule correctly after losing a worker.
	var sum atomic.Int64
	ForGrain(0, 100000, 16, func(i int) { sum.Add(1) })
	if sum.Load() != 100000 {
		t.Fatalf("loop after Goexit covered %d/100000 iterations", sum.Load())
	}
}

func TestNestedLoopsStealEachOther(t *testing.T) {
	withProcs(t, 4)
	// Concurrent branches each drive an inner skewed loop; inner chunks are
	// claimable by any participant, so branches steal from each other's
	// inner loops. Verify values, not just coverage.
	n := 20000
	out := make([]int64, 4*n)
	branch := func(k int) func() {
		return func() {
			base := k * n
			ForGrain(0, n, 8, func(i int) {
				// Triangular ramp: later iterations cost more, so the
				// tail of every lane range is worth stealing.
				s := int64(0)
				for j := 0; j < i%257; j++ {
					s += int64(j)
				}
				benchSink.Store(s)
				out[base+i] = int64(base+i) * 2
			})
		}
	}
	Do(branch(0), branch(1), branch(2), branch(3))
	for i, v := range out {
		if v != int64(i)*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, int64(i)*2)
		}
	}
}

func TestStressMixedShapes(t *testing.T) {
	withProcs(t, 4)
	rounds := 60
	if testing.Short() {
		rounds = 10
	}
	// Alternating shapes keep the pool's lanes in every state transition:
	// uniform (pure front-claiming), skewed (back-half steals), tiny
	// (empty lanes from the start), nested (inner tasks published while
	// outer batches are live), and the deterministic primitives whose
	// results must stay bit-identical to sequential oracles throughout.
	xs := make([]int64, 5000)
	for round := 0; round < rounds; round++ {
		// Uniform.
		var sum atomic.Int64
		ForGrain(0, 10000, 16, func(i int) { sum.Add(int64(i)) })
		if want := int64(10000) * 9999 / 2; sum.Load() != want {
			t.Fatalf("round %d: uniform sum %d, want %d", round, sum.Load(), want)
		}
		// Skewed with per-index output.
		m := 3000
		out := make([]int64, m)
		ForGrain(0, m, 4, func(i int) {
			s := int64(0)
			for j := 0; j < i%129; j++ {
				s++
			}
			benchSink.Store(s)
			out[i] = int64(i)
		})
		for i := range out {
			if out[i] != int64(i) {
				t.Fatalf("round %d: skewed out[%d] = %d", round, i, out[i])
			}
		}
		// Tiny loops (lanes mostly empty).
		for n := 1; n <= 5; n++ {
			var c atomic.Int64
			ForGrain(0, n, 1, func(int) { c.Add(1) })
			if int(c.Load()) != n {
				t.Fatalf("round %d: tiny n=%d covered %d", round, n, c.Load())
			}
		}
		// Nested.
		var tot atomic.Int64
		Do(
			func() { Blocks(0, 1000, 8, func(lo, hi int) { For(lo, hi, func(int) { tot.Add(1) }) }) },
			func() { Blocks(0, 1000, 8, func(lo, hi int) { For(lo, hi, func(int) { tot.Add(1) }) }) },
		)
		if tot.Load() != 2000 {
			t.Fatalf("round %d: nested covered %d, want 2000", round, tot.Load())
		}
		// Deterministic primitives vs sequential oracles.
		for i := range xs {
			xs[i] = int64(i%7) + 1
		}
		want := make([]int64, len(xs))
		acc := int64(0)
		for i, x := range xs {
			want[i] = acc
			acc += x
		}
		total := PrefixSums(xs)
		if total != acc {
			t.Fatalf("round %d: scan total %d, want %d", round, total, acc)
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("round %d: scan[%d] = %d, want %d", round, i, xs[i], want[i])
			}
		}
		target := (round * 977) % 4000
		idx, ok := ReduceMinIndex(0, 5000, 16, func(i int) bool { return i >= target })
		if !ok || idx != target {
			t.Fatalf("round %d: ReduceMinIndex = %d ok=%v, want %d", round, idx, ok, target)
		}
	}
}

package parallel

// scanSeqThreshold is the length at or below which the block-sum combine
// runs sequentially. Above it the combine recurses (pairwise tree), which
// matters now that chunksPerWorker·P block counts can reach the hundreds.
const scanSeqThreshold = 32

// combinePairs reduces adjacent pairs of src into a fresh ceil(len/2)
// array (an odd last element is carried through). It is the shared upsweep
// level of the tree combines in scanSums and reduceSums: combining only
// in-order neighbours is what lets both promise bit-identical results to a
// sequential left fold with nothing but associativity.
func combinePairs[T any](src []T, op func(a, b T) T) []T {
	half := len(src) / 2
	pair := make([]T, (len(src)+1)/2)
	ForGrain(0, half, scanSeqThreshold/2, func(i int) {
		pair[i] = op(src[2*i], src[2*i+1])
	})
	if len(src)%2 == 1 {
		pair[half] = src[len(src)-1]
	}
	return pair
}

// scanSums replaces sums with its exclusive prefix sums under op and
// returns the total, recursing with a pairwise upsweep/downsweep when the
// array is long: adjacent pairs are combined into a half-length array, that
// array is scanned recursively, and the pair prefixes are expanded back.
// Only associativity is used — elements are always combined with their
// in-order neighbours — so the result is bit-identical to the sequential
// scan for any op. Work O(len), depth O(log² len).
func scanSums[T any](sums []T, identity T, op func(a, b T) T) T {
	n := len(sums)
	if n <= scanSeqThreshold {
		acc := identity
		for i := 0; i < n; i++ {
			s := sums[i]
			sums[i] = acc
			acc = op(acc, s)
		}
		return acc
	}
	half := n / 2
	pair := combinePairs(sums, op)
	total := scanSums(pair, identity, op)
	// pair[i] now holds the sum of all elements before pair i, i.e. before
	// sums[2i]: seed each pair's in-place exclusive scan with it.
	ForGrain(0, half, scanSeqThreshold/2, func(i int) {
		lo := pair[i]
		first := sums[2*i]
		sums[2*i] = lo
		sums[2*i+1] = op(lo, first)
	})
	if n%2 == 1 {
		sums[n-1] = pair[half]
	}
	return total
}

// ScanExclusive replaces xs with its exclusive prefix sums under op and
// returns the grand total: out[i] = identity ⊕ xs[0] ⊕ ... ⊕ xs[i-1].
// op must be associative. The scan is the classic two-pass block algorithm:
// per-block sums, a tree-combined scan over the block sums, then per-block
// local scans. Both block passes run on the worker pool with identical
// block boundaries, so the result is deterministic on the stealing
// scheduler: block b always covers the same indices and always receives
// the same in-order prefix, whichever lane runs it. Work O(n), depth
// O(n/P + log² #blocks).
func ScanExclusive[T any](xs []T, identity T, op func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		return identity
	}
	nb := chunksFor(n, 0)
	if nb <= 1 || MaxProcs() == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			x := xs[i]
			xs[i] = acc
			acc = op(acc, x)
		}
		return acc
	}
	sums := make([]T, nb)
	// Pass 1: block sums.
	runLoop(nb, func(b int) {
		s, e := chunkBounds(0, n, b, nb)
		acc := identity
		for i := s; i < e; i++ {
			acc = op(acc, xs[i])
		}
		sums[b] = acc
	})
	total := scanSums(sums, identity, op)
	// Pass 2: local scans seeded with the block offset.
	runLoop(nb, func(b int) {
		s, e := chunkBounds(0, n, b, nb)
		acc := sums[b]
		for i := s; i < e; i++ {
			x := xs[i]
			xs[i] = acc
			acc = op(acc, x)
		}
	})
	return total
}

// PrefixSums computes the exclusive prefix sums of counts in place and
// returns the total. It is ScanExclusive specialized to addition.
func PrefixSums[T Number](counts []T) T {
	var zero T
	return ScanExclusive(counts, zero, func(a, b T) T { return a + b })
}

// Pack copies the elements of xs whose flag is true into a fresh slice,
// preserving order. It implements the PRAM compaction step used throughout
// the paper's parallel algorithms (processor allocation and compaction).
func Pack[T any](xs []T, flag func(i int) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	nb := NumBlocks(n, 0)
	counts := make([]int, nb)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSums(counts)
	out := make([]T, total)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		pos := counts[b]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[pos] = xs[i]
				pos++
			}
		}
	})
	return out
}

// PackInto is Pack for steady-state callers: it compacts the elements of
// xs for which keep(i) reports true into dst, reusing dst's capacity, and
// uses counts as the per-block scratch (grown only when too small). It
// returns the packed slice and the scratch so the caller can thread both
// through repeated rounds; once capacities have plateaued, a call
// allocates nothing beyond the scheduler's own O(1) per-loop state. keep
// is evaluated twice per index (count pass, then write pass), so it must
// be cheap and deterministic — precompute a flag array for expensive
// predicates. Output order is the input order regardless of how blocks
// are scheduled.
func PackInto[T any](dst []T, xs []T, keep func(i int) bool, counts []int) ([]T, []int) {
	n := len(xs)
	if n == 0 {
		return dst[:0], counts
	}
	nb := NumBlocks(n, 0)
	if cap(counts) < nb {
		counts = make([]int, nb)
	}
	counts = counts[:nb]
	BlocksN(0, n, nb, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[b] = c
	})
	// The block-count scan is tiny (at most chunksPerWorker·P entries);
	// a sequential fold avoids the parallel scan's setup and allocations.
	total := 0
	for b := range counts {
		c := counts[b]
		counts[b] = total
		total += c
	}
	if cap(dst) < total {
		dst = make([]T, total)
	}
	dst = dst[:total]
	BlocksN(0, n, nb, func(b, lo, hi int) {
		pos := counts[b]
		for i := lo; i < hi; i++ {
			if keep(i) {
				dst[pos] = xs[i]
				pos++
			}
		}
	})
	return dst, counts
}

// PackIndex returns, in order, the indices i in [0, n) with flag(i) true.
func PackIndex(n int, flag func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	nb := NumBlocks(n, 0)
	counts := make([]int, nb)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSums(counts)
	out := make([]int, total)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		pos := counts[b]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[pos] = i
				pos++
			}
		}
	})
	return out
}

// Filter returns the elements of xs satisfying pred, in order.
func Filter[T any](xs []T, pred func(x T) bool) []T {
	return Pack(xs, func(i int) bool { return pred(xs[i]) })
}

// FlattenCounts turns a per-producer count slice into offsets (exclusive
// prefix sums) and returns the total, a common pattern when parallel
// producers each emit a variable number of results into a shared output.
func FlattenCounts(counts []int) int {
	return PrefixSums(counts)
}

// Map applies f to each element index of a fresh slice of length n.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(0, n, func(i int) { out[i] = f(i) })
	return out
}

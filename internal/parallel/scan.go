package parallel

// ScanExclusive replaces xs with its exclusive prefix sums under op and
// returns the grand total: out[i] = identity ⊕ xs[0] ⊕ ... ⊕ xs[i-1].
// op must be associative. The scan is the classic two-pass block algorithm:
// per-block sums, a sequential scan over block sums, then per-block local
// scans. Both passes run on the worker pool with identical block boundaries.
// Work O(n), depth O(n/P + #blocks).
func ScanExclusive[T any](xs []T, identity T, op func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		return identity
	}
	nb := chunksFor(n, 0)
	if nb <= 1 || MaxProcs() == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			x := xs[i]
			xs[i] = acc
			acc = op(acc, x)
		}
		return acc
	}
	sums := make([]T, nb)
	// Pass 1: block sums.
	runLoop(nb, func(b int) {
		s, e := chunkBounds(0, n, b, nb)
		acc := identity
		for i := s; i < e; i++ {
			acc = op(acc, xs[i])
		}
		sums[b] = acc
	})
	// Sequential exclusive scan over the (few) block sums.
	acc := identity
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = acc
		acc = op(acc, s)
	}
	total := acc
	// Pass 2: local scans seeded with the block offset.
	runLoop(nb, func(b int) {
		s, e := chunkBounds(0, n, b, nb)
		acc := sums[b]
		for i := s; i < e; i++ {
			x := xs[i]
			xs[i] = acc
			acc = op(acc, x)
		}
	})
	return total
}

// PrefixSums computes the exclusive prefix sums of counts in place and
// returns the total. It is ScanExclusive specialized to addition.
func PrefixSums[T Number](counts []T) T {
	var zero T
	return ScanExclusive(counts, zero, func(a, b T) T { return a + b })
}

// Pack copies the elements of xs whose flag is true into a fresh slice,
// preserving order. It implements the PRAM compaction step used throughout
// the paper's parallel algorithms (processor allocation and compaction).
func Pack[T any](xs []T, flag func(i int) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	nb := NumBlocks(n, 0)
	counts := make([]int, nb)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSums(counts)
	out := make([]T, total)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		pos := counts[b]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[pos] = xs[i]
				pos++
			}
		}
	})
	return out
}

// PackIndex returns, in order, the indices i in [0, n) with flag(i) true.
func PackIndex(n int, flag func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	nb := NumBlocks(n, 0)
	counts := make([]int, nb)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSums(counts)
	out := make([]int, total)
	BlocksN(0, n, nb, func(b, lo, hi int) {
		pos := counts[b]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[pos] = i
				pos++
			}
		}
	})
	return out
}

// Filter returns the elements of xs satisfying pred, in order.
func Filter[T any](xs []T, pred func(x T) bool) []T {
	return Pack(xs, func(i int) bool { return pred(xs[i]) })
}

// FlattenCounts turns a per-producer count slice into offsets (exclusive
// prefix sums) and returns the total, a common pattern when parallel
// producers each emit a variable number of results into a shared output.
func FlattenCounts(counts []int) int {
	return PrefixSums(counts)
}

// Map applies f to each element index of a fresh slice of length n.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(0, n, func(i int) { out[i] = f(i) })
	return out
}

package parallel

// Number is the constraint for the arithmetic reductions in this package.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// reduceSums folds partial in index order with op, collapsing adjacent
// pairs level by level (combinePairs, in parallel) while the array is long
// and finishing sequentially. Only associativity is used — every combine
// is of in-order neighbours — so the result is bit-identical to a
// sequential left fold.
func reduceSums[T any](partial []T, identity T, op func(a, b T) T) T {
	for len(partial) > scanSeqThreshold {
		partial = combinePairs(partial, op)
	}
	acc := identity
	for _, p := range partial {
		acc = op(acc, p)
	}
	return acc
}

// Reduce combines f(i) for i in [lo, hi) with the associative operation op,
// starting from identity. op must be associative; commutativity is not
// required because blocks are combined in index order (tree-wise for large
// block counts). The per-block reductions run on the worker pool.
func Reduce[T any](lo, hi int, identity T, f func(i int) T, op func(a, b T) T) T {
	n := hi - lo
	if n <= 0 {
		return identity
	}
	nb := chunksFor(n, 0)
	if nb <= 1 || MaxProcs() == 1 {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	partial := make([]T, nb)
	runLoop(nb, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		acc := identity
		for i := s; i < e; i++ {
			acc = op(acc, f(i))
		}
		partial[b] = acc
	})
	return reduceSums(partial, identity, op)
}

// SumFunc returns the sum of f(i) for i in [lo, hi).
func SumFunc[T Number](lo, hi int, f func(i int) T) T {
	var zero T
	return Reduce(lo, hi, zero, f, func(a, b T) T { return a + b })
}

// Sum returns the sum of the elements of xs.
func Sum[T Number](xs []T) T {
	return SumFunc(0, len(xs), func(i int) T { return xs[i] })
}

// MinIndexFunc returns the smallest index i in [lo, hi) for which
// keep(i) is true and key(i) is minimal, breaking ties toward the smaller
// index. ok is false when no index satisfies keep.
//
// This is the "find first special iteration" primitive of the paper's Type 2
// runner (Algorithm 1, line 7) and the min(E(t)) selection of Algorithm 5.
func MinIndexFunc[K Number](lo, hi int, keep func(i int) bool, key func(i int) K) (idx int, ok bool) {
	type cand struct {
		idx int
		ok  bool
	}
	res := Reduce(lo, hi, cand{-1, false},
		func(i int) cand { return cand{i, keep(i)} },
		func(a, b cand) cand {
			if !a.ok {
				return b
			}
			if !b.ok {
				return a
			}
			ka, kb := key(a.idx), key(b.idx)
			if ka < kb || (ka == kb && a.idx < b.idx) {
				return a
			}
			return b
		})
	return res.idx, res.ok
}

// FirstIndex returns the smallest i in [lo, hi) with pred(i) true, or hi
// if none. It delegates to ReduceMinIndex (indices must be non-negative),
// so predicates that cannot win the reservation may be skipped; pred must
// be safe for concurrent use and must not mutate shared state.
func FirstIndex(lo, hi int, pred func(i int) bool) int {
	idx, ok := ReduceMinIndex(lo, hi, 0, pred)
	if !ok {
		return hi
	}
	return idx
}

// MaxFunc returns the maximum of f over [lo, hi); zero value if empty.
func MaxFunc[T Number](lo, hi int, f func(i int) T) T {
	if hi <= lo {
		var zero T
		return zero
	}
	first := f(lo)
	return Reduce(lo+1, hi, first, f, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// MinFunc returns the minimum of f over [lo, hi); zero value if empty.
func MinFunc[T Number](lo, hi int, f func(i int) T) T {
	if hi <= lo {
		var zero T
		return zero
	}
	first := f(lo)
	return Reduce(lo+1, hi, first, f, func(a, b T) T {
		if a < b {
			return a
		}
		return b
	})
}

// Count returns the number of i in [lo, hi) with pred(i) true.
func Count(lo, hi int, pred func(i int) bool) int {
	return SumFunc(lo, hi, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Any reports whether pred holds for any i in [lo, hi).
func Any(lo, hi int, pred func(i int) bool) bool {
	return Count(lo, hi, pred) > 0
}

// All reports whether pred holds for every i in [lo, hi).
func All(lo, hi int, pred func(i int) bool) bool {
	return Count(lo, hi, pred) == hi-lo
}

package parallel

import (
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker-pool scheduler that the loop
// primitives (For, ForGrain, Blocks, Do, Reduce, ScanExclusive, ...) run on.
//
// Design, following the GBBS/Homemade-scheduler lineage (Dhulipala, Blelloch,
// Shun, SPAA'18):
//
//   - A fixed set of worker goroutines is started lazily on first use and
//     kept for the life of the process. The pool grows up to GOMAXPROCS
//     workers (re-checked on every submit, so raising GOMAXPROCS later adds
//     workers); it never shrinks. No goroutines are spawned per loop, so the
//     goroutine count during any loop is O(GOMAXPROCS), not O(n/grain).
//
//   - Each parallel loop is a loopTask: a body over nchunks chunk indices and
//     an atomic "next unclaimed chunk" counter. Workers and the caller claim
//     chunks one at a time with an atomic fetch-add (dynamic self-scheduling),
//     so skewed loop bodies load-balance instead of tail-stalling on a static
//     partition.
//
//   - The caller always participates: it publishes the task, then claims
//     chunks itself until the counter is exhausted, then blocks until every
//     claimed chunk has finished. Nested parallelism is therefore
//     deadlock-free by construction — an inner loop issued from a worker is
//     drained by that worker itself even if every other worker is busy, and
//     idle workers join in when they can.
//
//   - Panics in loop bodies are recovered in whichever goroutine ran the
//     chunk, the first panic value is recorded, the remaining unclaimed
//     chunks are cancelled, and the panic is re-raised (original value) on
//     the caller's goroutine once the loop has drained. A panicking loop
//     does not kill pool workers; the pool stays usable.

// chunksPerWorker is the target number of chunks per worker for a large
// loop: more chunks give the dynamic scheduler finer balancing at the cost
// of more claim traffic.
const chunksPerWorker = 8

// loopTask is one parallel loop in flight on the pool.
type loopTask struct {
	body     func(chunk int)
	nchunks  int64
	next     atomic.Int64 // next unclaimed chunk index
	pending  atomic.Int64 // claimed-or-unclaimed chunks not yet finished
	done     chan struct{}
	panicked atomic.Bool
	panicVal any
}

// claim reserves the next chunk, reporting false when the loop is exhausted
// (or cancelled by a panic).
func (t *loopTask) claim() (int, bool) {
	c := t.next.Add(1) - 1
	if c >= t.nchunks {
		return 0, false
	}
	return int(c), true
}

// runChunk executes one claimed chunk, recovering panics and signalling
// completion when the last chunk finishes.
func (t *loopTask) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			t.recordPanic(r)
		}
		if t.pending.Add(-1) == 0 {
			close(t.done)
		}
	}()
	t.body(c)
}

// recordPanic stores the first panic value and cancels all unclaimed chunks
// so the loop drains quickly. Later panics (from chunks already in flight)
// are dropped; the first one wins, mirroring sequential semantics where the
// first panicking iteration is the only one reached.
func (t *loopTask) recordPanic(r any) {
	if !t.panicked.CompareAndSwap(false, true) {
		return
	}
	t.panicVal = r
	claimed := t.next.Swap(t.nchunks)
	if claimed > t.nchunks {
		claimed = t.nchunks // failed claims may have overshot the counter
	}
	if unclaimed := t.nchunks - claimed; unclaimed > 0 {
		// The panicking chunk has not decremented pending yet, so this
		// cannot reach zero here; the close happens in its runChunk defer.
		t.pending.Add(-unclaimed)
	}
}

// drain claims and runs chunks until none remain.
func (t *loopTask) drain() {
	for {
		c, ok := t.claim()
		if !ok {
			return
		}
		t.runChunk(c)
	}
}

// pool is the process-wide scheduler state.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	loops   []*loopTask // active loops that may still have unclaimed chunks
	workers int         // worker goroutines started so far
}

var sched = newPool()

func newPool() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// submit publishes t so idle workers can help, growing the pool up to
// MaxProcs() persistent workers.
func (p *pool) submit(t *loopTask) {
	want := MaxProcs()
	p.mu.Lock()
	p.loops = append(p.loops, t)
	for p.workers < want {
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// remove unpublishes t. Safe to call multiple times and from any goroutine.
func (p *pool) remove(t *loopTask) {
	p.mu.Lock()
	for i, l := range p.loops {
		if l == t {
			last := len(p.loops) - 1
			p.loops[i] = p.loops[last]
			p.loops[last] = nil
			p.loops = p.loops[:last]
			break
		}
	}
	p.mu.Unlock()
}

// worker is the persistent loop each pool goroutine runs: sleep until a loop
// is published, then claim chunks from the oldest active loop until it is
// exhausted. Workers never exit; an idle pool costs GOMAXPROCS parked
// goroutines and nothing else.
func (p *pool) worker() {
	for {
		p.mu.Lock()
		for len(p.loops) == 0 {
			p.cond.Wait()
		}
		t := p.loops[0]
		p.mu.Unlock()
		for {
			c, ok := t.claim()
			if !ok {
				break
			}
			t.runChunk(c)
		}
		// Exhausted (or cancelled): unpublish so we don't pick it again.
		p.remove(t)
	}
}

// runLoop executes body(0..nchunks-1) on the pool with the caller
// participating, propagating the first panic to the caller. nchunks must
// already be bounded (callers derive it from chunksFor or len(fns)).
func runLoop(nchunks int, body func(chunk int)) {
	if nchunks <= 0 {
		return
	}
	if nchunks == 1 || MaxProcs() == 1 {
		for c := 0; c < nchunks; c++ {
			body(c)
		}
		return
	}
	t := &loopTask{body: body, nchunks: int64(nchunks), done: make(chan struct{})}
	t.pending.Store(int64(nchunks))
	sched.submit(t)
	t.drain()
	sched.remove(t)
	<-t.done
	if t.panicked.Load() {
		panic(t.panicVal)
	}
}

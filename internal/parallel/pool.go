package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// This file implements the persistent work-stealing scheduler that the loop
// primitives (For, ForGrain, Blocks, Do, Reduce, ScanExclusive, ...) run on.
//
// Design, following the GBBS/Homemade-scheduler lineage (Dhulipala, Blelloch,
// Shun, SPAA'18) with lazy range splitting instead of a shared chunk counter:
//
//   - A fixed set of worker goroutines is started lazily on first use and
//     kept for the life of the process. The pool grows up to GOMAXPROCS
//     workers (re-checked on every submit, so raising GOMAXPROCS later adds
//     workers); it never shrinks. No goroutines are spawned per loop, so the
//     goroutine count during any loop is O(GOMAXPROCS), not O(n/grain).
//
//   - Each parallel loop is a loopTask: a body over nchunks chunk indices
//     held in per-participant claim ranges (lanes), one lane per worker
//     plus the caller. Every chunk starts in the caller's lane and spreads
//     lazily: each range is a single packed 64-bit word (head, tail)
//     mutated only by CAS, the lane's owner takes small batches off the
//     front with one CAS each and runs them with no further
//     synchronization, and an idle participant steals the back half of a
//     non-empty lane with one CAS and installs it as its own range. P
//     participants therefore spread a loop in O(log P) steal rounds, a
//     uniform loop costs O(chunks/maxClaim) lane-local atomics in place of
//     one shared-counter CAS per chunk, and a skewed or nested loop
//     rebalances because any idle participant can keep halving the largest
//     remnant. Completion is tracked by a single shared counter
//     decremented once per claimed batch, not once per chunk.
//
//   - The caller always participates: it publishes the task, consumes lane
//     0, steals when its lane runs dry, and blocks only when no chunk is
//     claimable anywhere. Nested parallelism is therefore deadlock-free by
//     construction — every claimed batch is being actively run by exactly
//     one goroutine, an inner loop issued from a worker is drained by that
//     worker itself even if every other worker is busy, and idle workers
//     join in when they can.
//
//   - Panics in loop bodies are recovered in whichever goroutine ran the
//     chunk, the first panic value is recorded, every not-yet-claimed range
//     is swept empty so the loop drains quickly, and the panic is re-raised
//     (original value) on the caller's goroutine once the loop has drained.
//     A panicking loop does not kill pool workers; the pool stays usable.

// chunksPerWorker is the target number of chunks per worker for a large
// loop: more chunks give the stealing scheduler finer rebalancing. Raised
// from 8 when the shared claim counter was replaced by per-lane ranges —
// extra chunks now cost lane-local CASes (logarithmically many per lane,
// thanks to half-range claiming), not shared-counter traffic.
const chunksPerWorker = 16

// maxRangeChunks bounds the chunk indices a packed range word can hold.
// Loops beyond it (only reachable through BlocksN with a caller-pinned
// block count in the billions) are run as sequential segments of this size,
// each segment internally parallel.
const maxRangeChunks = 1<<31 - 1

// rangeSlot is one participant lane's claim range over chunk indices,
// packed (head<<32 | tail) so owner claims and thief splits are single-word
// CASes. The padding keeps each lane's word on its own cache line; lane
// claims then stay core-local until a steal actually happens.
type rangeSlot struct {
	bounds atomic.Uint64 // head in the high 32 bits, tail in the low 32
	_      [56]byte
}

func packRange(h, t int32) uint64 {
	return uint64(uint32(h))<<32 | uint64(uint32(t))
}

func unpackRange(v uint64) (h, t int32) {
	return int32(uint32(v >> 32)), int32(uint32(v))
}

// maxClaim caps how many chunks one takeFront claims. The cap is what
// keeps lazy distribution fair: chunks all start in the submitter's lane,
// so if the submitter could claim an uncapped half, late-arriving thieves
// would find only a quarter of the loop stealable and a descheduled
// claimer would strand a huge batch (claimed batches cannot be stolen).
// Capping bounds the stranded work per participant at maxClaim chunks and
// keeps nearly everything unclaimed — hence stealable — until it is about
// to run, at k/maxClaim lane-local atomics per k-chunk lane, still far
// below the shared counter's one contended CAS per chunk.
const maxClaim = 4

// takeFront claims the front half (rounded up, so at least one chunk,
// capped at maxClaim) of the lane's remaining range. Owners call this
// repeatedly; the unclaimed back stays exposed to thieves throughout.
//
//ridt:noalloc
func (s *rangeSlot) takeFront() (lo, hi int, ok bool) {
	for {
		b := s.bounds.Load()
		h, t := unpackRange(b)
		if h >= t {
			return 0, 0, false
		}
		d := t - h
		k := d/2 + d%2 // ceil(d/2) without overflowing int32 at d = 2^31-1
		if k > maxClaim {
			k = maxClaim
		}
		if s.bounds.CompareAndSwap(b, packRange(h+k, t)) {
			return int(h), int(h + k), true
		}
	}
}

// stealBack splits off the back half (rounded up, so a one-chunk remnant is
// stolen whole rather than stranded behind a stuck owner) of the range.
//
//ridt:noalloc
func (s *rangeSlot) stealBack() (lo, hi int, ok bool) {
	for {
		b := s.bounds.Load()
		h, t := unpackRange(b)
		if h >= t {
			return 0, 0, false
		}
		m := h + (t-h)/2
		if s.bounds.CompareAndSwap(b, packRange(h, m)) {
			return int(m), int(t), true
		}
	}
}

// install publishes [lo, hi) as the lane's range if the lane is currently
// empty, re-exposing a stolen batch to further stealing (lazy splitting).
// It reports false — and writes nothing — when the lane holds live chunks,
// which can happen when more participants than lanes share the task.
//
//ridt:noalloc
func (s *rangeSlot) install(lo, hi int) bool {
	for {
		b := s.bounds.Load()
		if h, t := unpackRange(b); h < t {
			return false
		}
		if s.bounds.CompareAndSwap(b, packRange(int32(lo), int32(hi))) {
			return true
		}
	}
}

// drainAll empties the lane and returns how many chunks it removed. Used by
// panic cancellation to account for everything not yet claimed.
//
//ridt:noalloc
func (s *rangeSlot) drainAll() int64 {
	for {
		b := s.bounds.Load()
		h, t := unpackRange(b)
		if h >= t {
			return 0
		}
		if s.bounds.CompareAndSwap(b, packRange(t, t)) {
			return int64(t - h)
		}
	}
}

// loopTask is one parallel loop in flight on the pool.
type loopTask struct {
	body     func(chunk int)
	cancel   *Canceler // nil for plain loops: Canceled() is then false forever
	slots    []rangeSlot
	nextLane atomic.Int64 // lane assignment for arriving helpers
	pending  atomic.Int64 // chunks distributed but not yet run-or-cancelled
	done     chan struct{}
	panicked atomic.Bool
	panicVal any
}

func newLoopTask(nchunks int, body func(chunk int)) *loopTask {
	t := &loopTask{
		body:  body,
		slots: make([]rangeSlot, MaxProcs()),
		done:  make(chan struct{}),
	}
	t.pending.Store(int64(nchunks))
	// All chunks start in the submitter's lane: work distributes by
	// stealing, on demand, rather than by eager pre-partitioning. Thieves
	// halve what remains, so P participants spread a loop in O(log P)
	// steal rounds — while a submitter that never gets company (workers
	// busy or the host oversubscribed) consumes the whole range with
	// lane-local claims and no handoff to a goroutine that may not be
	// scheduled for a while.
	t.slots[0].bounds.Store(packRange(0, int32(nchunks)))
	return t
}

// finish accounts n consumed (run or cancelled) chunks and closes done when
// the last one lands. Exactly one accounting happens per chunk — by whoever
// removed it from a lane, or by the panic sweep — so the close fires once.
func (t *loopTask) finish(n int64) {
	if t.pending.Add(-n) == 0 {
		close(t.done)
	}
}

// runChunk executes one claimed chunk, recovering a panic into the task.
func (t *loopTask) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			t.recordPanic(r)
		}
	}()
	t.body(c)
}

// runRange executes a claimed batch and accounts it in one decrement. The
// accounting is deferred so the batch is counted even if a body terminates
// the goroutine with runtime.Goexit (t.FailNow inside a loop body, say) —
// the loop still completes for its caller, it just loses this worker,
// matching the per-chunk deferred accounting of the old scheduler. After a
// panic anywhere in the loop the remaining chunks of the batch are skipped
// (but still accounted): sequential semantics never reach iterations after
// the first panicking one.
//
//ridt:noalloc
func (t *loopTask) runRange(lo, hi int) {
	defer t.finish(int64(hi - lo))
	for c := lo; c < hi; c++ {
		if t.panicked.Load() || t.cancel.Canceled() {
			return
		}
		t.runChunk(c)
	}
}

// recordPanic stores the first panic value and sweeps every lane empty so
// the loop drains quickly. Later panics (from chunks already in flight) are
// dropped; the first one wins, mirroring sequential semantics. The sweep
// cannot close done: the batch holding the panicking chunk is accounted
// only after runRange returns, so pending stays positive here.
func (t *loopTask) recordPanic(r any) {
	if !t.panicked.CompareAndSwap(false, true) {
		return
	}
	t.panicVal = r
	var removed int64
	for i := range t.slots {
		removed += t.slots[i].drainAll()
	}
	if removed > 0 {
		t.finish(removed)
	}
}

// cancelDrain sweeps every lane empty on behalf of a participant that has
// observed cancellation. It is deliberately re-runnable by EVERY observer
// (unlike the panic path's once-only record): a thief may have stolen a
// batch before one observer's sweep and install it back after, so a
// single sweep can miss re-exposed chunks — if installers then returned
// without draining, those chunks would strand and done would never close.
// With every observer draining all lanes before returning, the last
// participant to touch the task always sees (and drains) whatever was
// re-exposed; drainAll's CAS removes each chunk exactly once across all
// concurrent sweepers, so accounting stays exact.
//
//ridt:noalloc
func (t *loopTask) cancelDrain() {
	var removed int64
	for i := range t.slots {
		removed += t.slots[i].drainAll()
	}
	if removed > 0 {
		t.finish(removed)
	}
}

// steal scans the other lanes in ring order starting after the thief's own
// lane — thieves spread across victims instead of convoying on lane 0 —
// and splits the back half off the first non-empty range found.
//
//ridt:noalloc
func (t *loopTask) steal(lane int) (lo, hi int, ok bool) {
	n := len(t.slots)
	for i := 1; i < n; i++ {
		if lo, hi, ok = t.slots[(lane+i)%n].stealBack(); ok {
			return lo, hi, true
		}
	}
	return 0, 0, false
}

// participate consumes the given lane, stealing when it runs dry, until no
// chunk is claimable anywhere. Ranges only ever shrink except through
// install, and an installed range is owned by a live participant, so a full
// scan that finds every lane empty proves this participant cannot help
// further (work may still be in flight in other goroutines' claimed
// batches; completion is tracked by pending, not by this scan).
//
//ridt:noalloc
func (t *loopTask) participate(lane int) {
	for {
		// A canceled task is drained, not claimed from. Every observer
		// drains (see cancelDrain) — returning without draining could
		// strand chunks a concurrent thief re-exposed after another
		// observer's sweep.
		if t.cancel.Canceled() {
			t.cancelDrain()
			return
		}
		if fault.Enabled {
			fault.Inject(fault.SchedClaim)
			if fault.SkipClaim(fault.SchedClaim) {
				// Forced-steal diversion: exercise the thief path even when
				// our own lane has work. Falls through to the normal claim
				// when nothing is stealable, so a diverted participant can
				// never return while its own lane holds chunks.
				if lo, hi, ok := t.steal(lane); ok {
					if t.slots[lane].install(lo, hi) {
						continue
					}
					t.runRange(lo, hi)
					continue
				}
			}
		}
		lo, hi, ok := t.slots[lane].takeFront()
		if !ok {
			if fault.Enabled {
				fault.Inject(fault.SchedSteal)
			}
			if lo, hi, ok = t.steal(lane); !ok {
				return
			}
			// Re-expose the stolen batch on our own lane so other thieves
			// can keep splitting it; if the lane is shared and busy, just
			// run the batch directly.
			if t.slots[lane].install(lo, hi) {
				continue
			}
		}
		t.runRange(lo, hi)
	}
}

// pool is the process-wide scheduler state.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	loops   []*loopTask // active loops that may still have claimable chunks
	workers int         // worker goroutines started so far
}

var sched = newPool()

func newPool() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// submit publishes t so idle workers can help, growing the pool up to
// MaxProcs() persistent workers. It wakes a single worker; helpers then
// recruit each other (see worker), so a loop that parallelizes ramps its
// helper count exponentially while a loop the caller finishes alone costs
// one wakeup instead of a GOMAXPROCS-wide broadcast storm.
func (p *pool) submit(t *loopTask) {
	want := MaxProcs()
	p.mu.Lock()
	p.loops = append(p.loops, t)
	for p.workers < want {
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// remove unpublishes t. Safe to call multiple times and from any goroutine.
func (p *pool) remove(t *loopTask) {
	p.mu.Lock()
	for i, l := range p.loops {
		if l == t {
			last := len(p.loops) - 1
			p.loops[i] = p.loops[last]
			p.loops[last] = nil
			p.loops = p.loops[:last]
			break
		}
	}
	p.mu.Unlock()
}

// worker is the persistent loop each pool goroutine runs: sleep until a
// loop is published, join the oldest active loop on the next helper lane,
// and participate (consume + steal) until nothing is claimable. Workers
// never exit; an idle pool costs GOMAXPROCS parked goroutines and nothing
// else.
func (p *pool) worker() {
	for {
		p.mu.Lock()
		for len(p.loops) == 0 {
			p.cond.Wait()
		}
		t := p.loops[0]
		p.mu.Unlock()
		// Recruit the next helper before joining: a worker only reaches
		// here when a published loop exists, so as long as work remains
		// claimable the wake chain keeps growing — one wakeup per joining
		// worker — and it dies out as soon as loops drain.
		p.cond.Signal()
		lane := int(t.nextLane.Add(1)) % len(t.slots)
		t.participate(lane)
		// Nothing claimable (in-flight batches are owned by live
		// participants): unpublish so we don't pick it again.
		p.remove(t)
	}
}

// runLoop executes body(0..nchunks-1) on the pool with the caller
// participating on lane 0, propagating the first panic to the caller.
// nchunks must already be bounded (callers derive it from chunksFor or
// len(fns)).
func runLoop(nchunks int, body func(chunk int)) {
	if nchunks <= 0 {
		return
	}
	if nchunks == 1 || MaxProcs() == 1 {
		for c := 0; c < nchunks; c++ {
			body(c)
		}
		return
	}
	for nchunks > maxRangeChunks {
		runLoop(maxRangeChunks, body)
		off := maxRangeChunks
		rest := body
		body = func(c int) { rest(off + c) }
		nchunks -= maxRangeChunks
	}
	t := newLoopTask(nchunks, body)
	runTask(t)
}

// runLoopCancel is runLoop with a cancellation token threaded into the
// task: participants stop claiming and drain once c cancels. The caller's
// contract (partial progress, ErrCanceled at exit) lives in the public
// wrappers; here cancellation only affects how much of the loop runs.
// Panics still propagate with their original value even when canceled.
func runLoopCancel(nchunks int, c *Canceler, body func(chunk int)) {
	if nchunks <= 0 || c.Canceled() {
		return
	}
	if nchunks == 1 || MaxProcs() == 1 {
		for ch := 0; ch < nchunks; ch++ {
			if c.Canceled() {
				return
			}
			body(ch)
		}
		return
	}
	for nchunks > maxRangeChunks {
		runLoopCancel(maxRangeChunks, c, body)
		if c.Canceled() {
			return
		}
		off := maxRangeChunks
		rest := body
		body = func(ch int) { rest(off + ch) }
		nchunks -= maxRangeChunks
	}
	t := newLoopTask(nchunks, body)
	t.cancel = c
	runTask(t)
}

// runTask publishes t, participates until nothing is claimable, and waits
// for the last in-flight batch, re-raising the loop's first panic on the
// caller.
func runTask(t *loopTask) {
	sched.submit(t)
	t.participate(0)
	sched.remove(t)
	// Briefly yield-and-rejoin before sleeping on done: the tail of the
	// loop is usually a few chunks claimed by a descheduled worker (common
	// when GOMAXPROCS exceeds the hardware threads), and yielding lets it
	// finish — or re-expose stealable work — without paying a futex
	// sleep/wake round trip on the critical path of every loop.
	for i := 0; i < 32 && t.pending.Load() != 0; i++ {
		runtime.Gosched()
		t.participate(0)
	}
	<-t.done
	if t.panicked.Load() {
		panic(t.panicVal)
	}
}

package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs raises GOMAXPROCS to at least p for the duration of the test so
// the pool path is exercised even on single-core machines, restoring the
// previous value afterwards.
func withProcs(t *testing.T, p int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < p {
		runtime.GOMAXPROCS(p)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

func TestChunkCounts(t *testing.T) {
	withProcs(t, 4)
	// Small-n cases below the chunksPerWorker*P cap hold for any P >= 1:
	// the count is ceil(n/grain), so n just above the grain splits in two
	// instead of serializing (the old grain-based formula ran n <= grain
	// loops sequentially and gave n = grain+1 a pathological 1-item tail).
	cases := []struct{ n, grain, want int }{
		{0, 0, 0},
		{1, 0, 1},
		{DefaultGrain, 0, 1},
		{DefaultGrain + 1, 0, 2},
		{4 * DefaultGrain, 0, 4},
		{8 * DefaultGrain, 0, 8},
		{100, 50, 2},
		{101, 50, 3},
		{7, 2, 4},
	}
	for _, c := range cases {
		if got := NumBlocks(c.n, c.grain); got != c.want {
			t.Errorf("NumBlocks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
	// Large n is capped at chunksPerWorker chunks per worker.
	if got, want := NumBlocks(1<<30, 0), chunksPerWorker*MaxProcs(); got != want {
		t.Errorf("NumBlocks(1<<30, 0) = %d, want cap %d", got, want)
	}
	// Blocks must invoke its body exactly NumBlocks times with near-equal
	// block sizes (difference at most one).
	for _, c := range []struct{ n, grain int }{{1025, 0}, {100000, 16}, {7, 2}} {
		var calls atomic.Int64
		minSz, maxSz := 1<<62, 0
		var mu chSpinLike
		Blocks(0, c.n, c.grain, func(lo, hi int) {
			calls.Add(1)
			mu.lock()
			if hi-lo < minSz {
				minSz = hi - lo //ridtvet:ignore parclosure serialized by mu, held across the update
			}
			if hi-lo > maxSz {
				maxSz = hi - lo //ridtvet:ignore parclosure serialized by mu, held across the update
			}
			mu.unlock()
		})
		if int(calls.Load()) != NumBlocks(c.n, c.grain) {
			t.Errorf("n=%d grain=%d: %d calls, want %d", c.n, c.grain, calls.Load(), NumBlocks(c.n, c.grain))
		}
		if maxSz-minSz > 1 {
			t.Errorf("n=%d grain=%d: block sizes range [%d, %d], want near-equal", c.n, c.grain, minSz, maxSz)
		}
	}
}

// chSpinLike is a tiny test-local mutex so the block-size bookkeeping above
// does not need sync imported just for one lock.
type chSpinLike struct{ v atomic.Bool }

func (m *chSpinLike) lock() {
	for !m.v.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
}
func (m *chSpinLike) unlock() { m.v.Store(false) }

func TestBlocksIndexed(t *testing.T) {
	withProcs(t, 4)
	n := 100000
	nb := NumBlocks(n, 16)
	seen := make([]int64, nb)
	var covered atomic.Int64
	BlocksIndexed(0, n, 16, func(b, lo, hi int) {
		atomic.AddInt64(&seen[b], 1)
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != int64(n) {
		t.Fatalf("covered %d items, want %d", covered.Load(), n)
	}
	for b, c := range seen {
		if c != 1 {
			t.Fatalf("block %d invoked %d times", b, c)
		}
	}
}

func TestBlocksN(t *testing.T) {
	withProcs(t, 4)
	// BlocksN pins the partition to the caller's count regardless of
	// GOMAXPROCS, clamping nb into [1, n].
	for _, c := range []struct{ n, nb, want int }{
		{100, 7, 7}, {100, 1, 1}, {5, 100, 5}, {100, 0, 1}, {0, 4, 0},
	} {
		var calls atomic.Int64
		var covered atomic.Int64
		BlocksN(0, c.n, c.nb, func(b, lo, hi int) {
			calls.Add(1)
			covered.Add(int64(hi - lo))
			if b < 0 || b >= c.want {
				t.Errorf("n=%d nb=%d: block index %d out of range", c.n, c.nb, b)
			}
		})
		if int(calls.Load()) != c.want {
			t.Errorf("BlocksN(0, %d, %d): %d calls, want %d", c.n, c.nb, calls.Load(), c.want)
		}
		if int(covered.Load()) != c.n {
			t.Errorf("BlocksN(0, %d, %d): covered %d, want %d", c.n, c.nb, covered.Load(), c.n)
		}
	}
}

func mustPanicWith(t *testing.T, name string, want any, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != want {
			t.Errorf("%s: recovered %v, want %v", name, r, want)
		}
	}()
	fn()
	t.Errorf("%s: returned without panicking", name)
}

func TestPanicPropagation(t *testing.T) {
	withProcs(t, 4)
	// A panic in any worker-run chunk must surface, with its original
	// value, on the goroutine that invoked the loop — not crash the
	// process from inside a pool worker.
	mustPanicWith(t, "ForGrain", "boom-for", func() {
		ForGrain(0, 100000, 16, func(i int) {
			if i == 54321 {
				panic("boom-for")
			}
		})
	})
	mustPanicWith(t, "Blocks", "boom-blocks", func() {
		Blocks(0, 100000, 16, func(lo, hi int) {
			if lo <= 77777 && 77777 < hi {
				panic("boom-blocks")
			}
		})
	})
	mustPanicWith(t, "Do", "boom-do", func() {
		Do(func() {}, func() { panic("boom-do") }, func() {})
	})
	mustPanicWith(t, "Reduce", "boom-reduce", func() {
		SumFunc(0, 100000, func(i int) int {
			if i == 12345 {
				panic("boom-reduce")
			}
			return i
		})
	})
	// Nested: a panic two levels down still reaches the outermost caller.
	mustPanicWith(t, "nested", "boom-nested", func() {
		Do(func() {
			Blocks(0, 10000, 16, func(lo, hi int) {
				For(lo, hi, func(i int) {
					if i == 9999 {
						panic("boom-nested")
					}
				})
			})
		})
	})
}

func TestPanicFirstValueWins(t *testing.T) {
	withProcs(t, 4)
	// When many chunks panic, exactly one original value is re-raised.
	defer func() {
		r := recover()
		i, ok := r.(int)
		if !ok || i < 0 || i >= 100000 {
			t.Errorf("recovered %v, want an iteration index", r)
		}
	}()
	ForGrain(0, 100000, 16, func(i int) { panic(i) })
	t.Error("returned without panicking")
}

func TestPoolSurvivesPanics(t *testing.T) {
	withProcs(t, 4)
	for round := 0; round < 3; round++ {
		func() {
			defer func() { recover() }()
			ForGrain(0, 100000, 16, func(i int) { panic("die") })
		}()
		// The pool must still schedule correctly after a cancelled loop.
		var sum atomic.Int64
		ForGrain(0, 100000, 16, func(i int) { sum.Add(1) })
		if sum.Load() != 100000 {
			t.Fatalf("round %d: loop after panic covered %d/100000 iterations", round, sum.Load())
		}
	}
}

func TestNestedParallelismBoundedGoroutines(t *testing.T) {
	withProcs(t, 4)
	// Prime the pool so the worker goroutines are counted in the baseline.
	For(0, 100000, func(int) {})
	base := runtime.NumGoroutine()
	// Bound: the scheduler itself may add at most the pool workers (already
	// running) — nesting must NOT spawn per-chunk goroutines. Everything on
	// top of base is test overhead slack.
	limit := base + 2*MaxProcs() + 4

	var maxSeen atomic.Int64
	var total atomic.Int64
	outer := func(mult int64) func() {
		return func() {
			Blocks(0, 3000, 10, func(lo, hi int) {
				For(lo, hi, func(i int) {
					total.Add(mult)
					if i%64 == 0 {
						g := int64(runtime.NumGoroutine())
						for {
							cur := maxSeen.Load()
							if g <= cur || maxSeen.CompareAndSwap(cur, g) {
								break
							}
						}
					}
				})
			})
		}
	}
	Do(outer(1), outer(10), outer(100))
	if got, want := total.Load(), int64(3000*(1+10+100)); got != want {
		t.Fatalf("nested loops computed %d, want %d", got, want)
	}
	if int(maxSeen.Load()) > limit {
		t.Fatalf("goroutine count reached %d during nested loop, want <= %d (O(GOMAXPROCS), not O(n/grain))", maxSeen.Load(), limit)
	}
}

func TestGoroutineCountFlatLoop(t *testing.T) {
	withProcs(t, 4)
	For(0, 1000, func(int) {}) // start the pool
	base := runtime.NumGoroutine()
	limit := base + 2*MaxProcs() + 4
	var maxSeen atomic.Int64
	// 1<<20 iterations at grain 16 would be 65536 goroutines under
	// per-call spawning; the pool must stay flat.
	ForGrain(0, 1<<20, 16, func(i int) {
		if i%4096 == 0 {
			g := int64(runtime.NumGoroutine())
			for {
				cur := maxSeen.Load()
				if g <= cur || maxSeen.CompareAndSwap(cur, g) {
					break
				}
			}
		}
	})
	if int(maxSeen.Load()) > limit {
		t.Fatalf("goroutine count reached %d during flat loop, want <= %d", maxSeen.Load(), limit)
	}
}

func TestNestedResultsCorrect(t *testing.T) {
	withProcs(t, 4)
	// Nest For inside Blocks inside Do and check the computed values, not
	// just coverage: out[i] = i*i via an inner loop per block.
	n := 50000
	out := make([]int64, n)
	Do(
		func() {
			Blocks(0, n/2, 8, func(lo, hi int) {
				For(lo, hi, func(i int) { out[i] = int64(i) * int64(i) })
			})
		},
		func() {
			Blocks(n/2, n, 8, func(lo, hi int) {
				For(lo, hi, func(i int) { out[i] = int64(i) * int64(i) })
			})
		},
	)
	for i := range out {
		if out[i] != int64(i)*int64(i) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], int64(i)*int64(i))
		}
	}
}

func TestGrowsWithGOMAXPROCS(t *testing.T) {
	// The pool starts lazily sized to GOMAXPROCS at first use but must pick
	// up later increases: submit re-checks the target on every loop.
	withProcs(t, 6)
	var sum atomic.Int64
	ForGrain(0, 100000, 16, func(i int) { sum.Add(int64(i)) })
	if want := int64(100000) * 99999 / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// Epoch is a single-writer publication cell: the epoch tick hook of the
// serve-while-building story. A builder publishes an immutable value at
// each committed round boundary; any number of reader goroutines observe
// the latest published value wait-free (Current is one atomic load) or
// block for the next one (Await). The values themselves must be
// immutable after publication — the cell hands out shared pointers, it
// does not copy.
//
// Epoch numbers start at 1 and increase by exactly 1 per Publish, so a
// reader that saw epoch e and later sees e' observed exactly e'-e
// publications in between: the gap is an honest staleness measure.
//
// Publish is intended for one publisher goroutine at a time (the round
// engine's commit point); it is nevertheless safe under concurrent
// publishers — the mutex serializes them — so misuse degrades to an
// arbitrary publication order rather than a data race.
type Epoch[T any] struct {
	cur atomic.Pointer[epochEntry[T]]

	mu   sync.Mutex
	tick chan struct{} // closed and replaced on every Publish
}

type epochEntry[T any] struct {
	v     *T
	epoch uint64
}

// awaitPoll bounds how long a blocked Await goes without re-checking its
// cancellation token. Wakeups on publication are immediate (the tick
// channel closes); the poll only bounds cancellation latency.
const awaitPoll = 5 * time.Millisecond

// Publish installs v as the current value and returns its epoch number.
// v must not be mutated after the call.
func (e *Epoch[T]) Publish(v *T) uint64 {
	e.mu.Lock()
	var ep uint64 = 1
	if old := e.cur.Load(); old != nil {
		ep = old.epoch + 1
	}
	e.cur.Store(&epochEntry[T]{v: v, epoch: ep})
	if e.tick != nil {
		close(e.tick)
	}
	e.tick = make(chan struct{})
	e.mu.Unlock()
	return ep
}

// PublishAt installs v at a caller-chosen epoch number, provided it moves
// the cell forward; an epoch at or below the current one is clamped to
// current+1, preserving the monotone +1-or-more contract (readers may
// then observe a gap, never a repeat). It exists for restore paths: a
// process resuming from a crash-safe checkpoint republishes the restored
// value at the epoch numbering the pre-crash cell had reached (the
// committed round maps to it), so Await(after) tokens that outlive the
// restart — reader loops re-attached to a rebuilt cell — keep their
// meaning instead of seeing the history restart at 1.
func (e *Epoch[T]) PublishAt(v *T, epoch uint64) uint64 {
	e.mu.Lock()
	if old := e.cur.Load(); old != nil && epoch <= old.epoch {
		epoch = old.epoch + 1
	}
	if epoch == 0 {
		epoch = 1
	}
	e.cur.Store(&epochEntry[T]{v: v, epoch: epoch})
	if e.tick != nil {
		close(e.tick)
	}
	e.tick = make(chan struct{})
	e.mu.Unlock()
	return epoch
}

// Current returns the most recently published value and its epoch, or
// (nil, 0) if nothing has been published yet. Wait-free: one atomic load,
// no allocation.
//
//ridt:noalloc
func (e *Epoch[T]) Current() (*T, uint64) {
	ent := e.cur.Load()
	if ent == nil {
		return nil, 0
	}
	return ent.v, ent.epoch
}

// Await blocks until a value with epoch > after is published, and returns
// it. A nil Canceler never cancels; a canceled token makes Await return
// ErrCanceled within awaitPoll. Await(0, nil) returns as soon as anything
// has ever been published.
func (e *Epoch[T]) Await(after uint64, c *Canceler) (*T, uint64, error) {
	for {
		if ent := e.cur.Load(); ent != nil && ent.epoch > after {
			return ent.v, ent.epoch, nil
		}
		if c.Canceled() {
			return nil, 0, ErrCanceled
		}
		e.mu.Lock()
		if e.tick == nil {
			e.tick = make(chan struct{})
		}
		tick := e.tick
		e.mu.Unlock()
		// Re-check after capturing the tick channel: a Publish between the
		// load above and the capture would otherwise be missed until the
		// next publication (or poll).
		if ent := e.cur.Load(); ent != nil && ent.epoch > after {
			return ent.v, ent.epoch, nil
		}
		select {
		case <-tick:
		case <-time.After(awaitPoll):
		}
	}
}

package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Benchmarks for the stealing pool scheduler against two baselines:
//
//   - spawn*: the seed implementation (one goroutine per chunk per call),
//     kept verbatim — measures what persistent workers buy at all.
//   - counter*: the single-atomic-chunk-counter persistent pool this PR
//     replaced, kept verbatim as a bench-local scheduler — the A/B for the
//     range-splitting/stealing substrate itself, over the steal shapes
//     (uniform, triangular ramp, nested, single heavy chunk).
//
// Run with: go test ./internal/parallel -bench . -benchmem

// --- per-call-spawn baseline (the seed implementation, kept verbatim) ---

func spawnGrainFor(n, min int) int {
	if min <= 0 {
		min = DefaultGrain
	}
	p := MaxProcs()
	g := n / (8 * p)
	if g < min {
		g = min
	}
	return g
}

func spawnForGrain(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	g := spawnGrainFor(n, grain)
	if n <= g || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for start := lo; start < hi; start += g {
		end := start + g
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
}

func spawnDo(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// --- harness ---

// benchProcs raises GOMAXPROCS so both schedulers take their parallel paths
// even on single-core CI machines; restored when the benchmark ends.
func benchProcs(b *testing.B, p int) {
	b.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < p {
		runtime.GOMAXPROCS(p)
		b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

var benchSink atomic.Int64

func spinWork(k int) int64 {
	s := int64(0)
	for j := 0; j < k; j++ {
		s += int64(j)
	}
	return s
}

func BenchmarkForUniform(b *testing.B) {
	const n = 1 << 16
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1) // keep the closure from being optimized away
		}
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			ForGrain(0, n, 0, body)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			spawnForGrain(0, n, 0, body)
		}
	})
}

func BenchmarkForSkewed(b *testing.B) {
	// Triangular cost ramp: the last chunk of a static partition holds a
	// large constant fraction of the total work.
	const n = 1 << 13
	body := func(i int) {
		benchSink.Store(spinWork(i >> 3))
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			ForGrain(0, n, 16, body)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			spawnForGrain(0, n, 16, body)
		}
	})
}

func BenchmarkNested(b *testing.B) {
	// Four concurrent branches each running an inner grained loop: the
	// spawn baseline creates goroutines at both levels on every call.
	const inner = 1 << 12
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1)
		}
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		branch := func() { ForGrain(0, inner, 64, body) }
		for i := 0; i < b.N; i++ {
			Do(branch, branch, branch, branch)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		branch := func() { spawnForGrain(0, inner, 64, body) }
		for i := 0; i < b.N; i++ {
			spawnDo(branch, branch, branch, branch)
		}
	})
}

func BenchmarkReduceSum(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 18
	for i := 0; i < b.N; i++ {
		benchSink.Store(SumFunc(0, n, func(i int) int64 { return int64(i) }))
	}
}

func BenchmarkScan(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 18
	xs := make([]int64, n)
	for i := 0; i < b.N; i++ {
		for j := range xs {
			xs[j] = 1
		}
		benchSink.Store(PrefixSums(xs))
	}
}

// --- single-counter persistent pool (the scheduler this PR replaced) ---
//
// A verbatim-behavior copy of the previous pool: persistent workers, one
// atomic "next chunk" counter per loop, caller participates. It shares
// chunksFor with the live scheduler so the A/B isolates the claim protocol
// (shared counter vs per-lane ranges with stealing), not the partitioning.

type counterTask struct {
	body    func(chunk int)
	nchunks int64
	next    atomic.Int64
	pending atomic.Int64
	done    chan struct{}
}

func (t *counterTask) drain() {
	for {
		c := t.next.Add(1) - 1
		if c >= t.nchunks {
			return
		}
		t.body(int(c))
		if t.pending.Add(-1) == 0 {
			close(t.done)
		}
	}
}

type counterPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	loops   []*counterTask
	workers int
}

var counterSched = func() *counterPool {
	p := &counterPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}()

func (p *counterPool) worker() {
	for {
		p.mu.Lock()
		for len(p.loops) == 0 {
			p.cond.Wait()
		}
		t := p.loops[0]
		p.mu.Unlock()
		t.drain()
		p.remove(t)
	}
}

func (p *counterPool) remove(t *counterTask) {
	p.mu.Lock()
	for i, l := range p.loops {
		if l == t {
			last := len(p.loops) - 1
			p.loops[i] = p.loops[last]
			p.loops[last] = nil
			p.loops = p.loops[:last]
			break
		}
	}
	p.mu.Unlock()
}

func counterRunLoop(nchunks int, body func(chunk int)) {
	if nchunks <= 0 {
		return
	}
	if nchunks == 1 || MaxProcs() == 1 {
		for c := 0; c < nchunks; c++ {
			body(c)
		}
		return
	}
	t := &counterTask{body: body, nchunks: int64(nchunks), done: make(chan struct{})}
	t.pending.Store(int64(nchunks))
	p := counterSched
	want := MaxProcs()
	p.mu.Lock()
	p.loops = append(p.loops, t)
	for p.workers < want {
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	t.drain()
	p.remove(t)
	<-t.done
}

func counterForGrain(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	nb := chunksFor(n, grain)
	if nb <= 1 || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	counterRunLoop(nb, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		for i := s; i < e; i++ {
			body(i)
		}
	})
}

func counterDo(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	counterRunLoop(len(fns), func(c int) { fns[c]() })
}

// --- steal-shape family: stealing pool vs single-counter pool ---
//
// These are the shapes cmd/benchgate gates (BenchmarkSteal.*): uniform
// measures claim overhead when no steal ever fires, triangular and
// heavy-chunk measure rebalancing when one lane's range holds most of the
// work, and nested measures claim traffic with concurrent inner loops.

func stealShape(b *testing.B, run func(loop func(lo, hi, grain int, body func(i int)), do func(...func()))) {
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			run(ForGrain, Do)
		}
	})
	b.Run("counter", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			run(counterForGrain, counterDo)
		}
	})
}

func BenchmarkStealUniform(b *testing.B) {
	const n = 1 << 16
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1)
		}
	}
	stealShape(b, func(loop func(int, int, int, func(int)), _ func(...func())) {
		loop(0, n, 0, body)
	})
}

func BenchmarkStealTriangular(b *testing.B) {
	// Cost ramps linearly with the index: the back ranges hold most of the
	// total work, so thieves must keep splitting them.
	const n = 1 << 13
	body := func(i int) {
		benchSink.Store(spinWork(i >> 3))
	}
	stealShape(b, func(loop func(int, int, int, func(int)), _ func(...func())) {
		loop(0, n, 16, body)
	})
}

func BenchmarkStealHeavyChunk(b *testing.B) {
	// All the work in a single iteration: every other participant goes
	// idle immediately and the schedulers race to strand as little as
	// possible behind the stuck lane.
	const n = 1 << 12
	body := func(i int) {
		if i == n/2 {
			benchSink.Store(spinWork(1 << 16))
		}
	}
	stealShape(b, func(loop func(int, int, int, func(int)), _ func(...func())) {
		loop(0, n, 16, body)
	})
}

func BenchmarkStealSmallLoop(b *testing.B) {
	// One small loop per op: isolates the per-loop fixed cost (task
	// allocation, publish, wakeup, final wait) that the nested shape pays
	// five times per op.
	const n = 1 << 12
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1)
		}
	}
	stealShape(b, func(loop func(int, int, int, func(int)), _ func(...func())) {
		loop(0, n, 64, body)
	})
}

func BenchmarkStealNested(b *testing.B) {
	const inner = 1 << 12
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1)
		}
	}
	stealShape(b, func(loop func(int, int, int, func(int)), do func(...func())) {
		branch := func() { loop(0, inner, 64, body) }
		do(branch, branch, branch, branch)
	})
}

func BenchmarkPack(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 17
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	for i := 0; i < b.N; i++ {
		out := Pack(xs, func(i int) bool { return xs[i]%3 == 0 })
		benchSink.Store(int64(len(out)))
	}
}

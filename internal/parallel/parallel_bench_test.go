package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Benchmarks for the pool scheduler against the per-call-goroutine-spawn
// baseline it replaced, over the three loop shapes that matter:
//
//   - uniform: cheap identical iterations — measures pure scheduling
//     overhead (the spawn baseline pays one goroutine per chunk per call).
//   - skewed: iteration cost ramps with the index — measures load balance
//     (static partitions tail-stall on the heavy chunks).
//   - nested: an outer Do over inner loops — measures goroutine pressure
//     (spawning multiplies per level; the pool reuses its workers).
//
// Run with: go test ./internal/parallel -bench . -benchmem

// --- per-call-spawn baseline (the seed implementation, kept verbatim) ---

func spawnGrainFor(n, min int) int {
	if min <= 0 {
		min = DefaultGrain
	}
	p := MaxProcs()
	g := n / (8 * p)
	if g < min {
		g = min
	}
	return g
}

func spawnForGrain(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	g := spawnGrainFor(n, grain)
	if n <= g || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for start := lo; start < hi; start += g {
		end := start + g
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
}

func spawnDo(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// --- harness ---

// benchProcs raises GOMAXPROCS so both schedulers take their parallel paths
// even on single-core CI machines; restored when the benchmark ends.
func benchProcs(b *testing.B, p int) {
	b.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < p {
		runtime.GOMAXPROCS(p)
		b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

var benchSink atomic.Int64

func spinWork(k int) int64 {
	s := int64(0)
	for j := 0; j < k; j++ {
		s += int64(j)
	}
	return s
}

func BenchmarkForUniform(b *testing.B) {
	const n = 1 << 16
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1) // keep the closure from being optimized away
		}
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			ForGrain(0, n, 0, body)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			spawnForGrain(0, n, 0, body)
		}
	})
}

func BenchmarkForSkewed(b *testing.B) {
	// Triangular cost ramp: the last chunk of a static partition holds a
	// large constant fraction of the total work.
	const n = 1 << 13
	body := func(i int) {
		benchSink.Store(spinWork(i >> 3))
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			ForGrain(0, n, 16, body)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		for i := 0; i < b.N; i++ {
			spawnForGrain(0, n, 16, body)
		}
	})
}

func BenchmarkNested(b *testing.B) {
	// Four concurrent branches each running an inner grained loop: the
	// spawn baseline creates goroutines at both levels on every call.
	const inner = 1 << 12
	body := func(i int) {
		if i == -1 {
			benchSink.Add(1)
		}
	}
	b.Run("pool", func(b *testing.B) {
		benchProcs(b, 4)
		branch := func() { ForGrain(0, inner, 64, body) }
		for i := 0; i < b.N; i++ {
			Do(branch, branch, branch, branch)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		benchProcs(b, 4)
		branch := func() { spawnForGrain(0, inner, 64, body) }
		for i := 0; i < b.N; i++ {
			spawnDo(branch, branch, branch, branch)
		}
	})
}

func BenchmarkReduceSum(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 18
	for i := 0; i < b.N; i++ {
		benchSink.Store(SumFunc(0, n, func(i int) int64 { return int64(i) }))
	}
}

func BenchmarkScan(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 18
	xs := make([]int64, n)
	for i := 0; i < b.N; i++ {
		for j := range xs {
			xs[j] = 1
		}
		benchSink.Store(PrefixSums(xs))
	}
}

func BenchmarkPack(b *testing.B) {
	benchProcs(b, 4)
	const n = 1 << 17
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	for i := 0; i < b.N; i++ {
		out := Pack(xs, func(i int) bool { return xs[i]%3 == 0 })
		benchSink.Store(int64(len(out)))
	}
}

package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEpochPublishCurrent(t *testing.T) {
	var e Epoch[int]
	if v, ep := e.Current(); v != nil || ep != 0 {
		t.Fatalf("empty cell Current = (%v,%d), want (nil,0)", v, ep)
	}
	a, b := 10, 20
	if ep := e.Publish(&a); ep != 1 {
		t.Fatalf("first Publish epoch = %d, want 1", ep)
	}
	if v, ep := e.Current(); v != &a || ep != 1 {
		t.Fatalf("Current = (%v,%d), want (&a,1)", v, ep)
	}
	if ep := e.Publish(&b); ep != 2 {
		t.Fatalf("second Publish epoch = %d, want 2", ep)
	}
	if v, ep := e.Current(); v != &b || ep != 2 {
		t.Fatalf("Current = (%v,%d), want (&b,2)", v, ep)
	}
}

func TestEpochCurrentAllocs(t *testing.T) {
	var e Epoch[int]
	v := 7
	e.Publish(&v)
	if avg := testing.AllocsPerRun(100, func() { e.Current() }); avg != 0 {
		t.Fatalf("Current allocates %.1f per op, want 0", avg)
	}
}

// TestEpochAwait: Await returns already-published values immediately and
// wakes promptly on the next Publish.
func TestEpochAwait(t *testing.T) {
	var e Epoch[int]
	a := 1
	e.Publish(&a)
	if v, ep, err := e.Await(0, nil); err != nil || v != &a || ep != 1 {
		t.Fatalf("Await(0) = (%v,%d,%v), want immediate (&a,1,nil)", v, ep, err)
	}
	done := make(chan struct{})
	var got atomic.Uint64
	go func() {
		defer close(done)
		_, ep, err := e.Await(1, nil)
		if err != nil {
			t.Errorf("Await(1) err = %v", err)
		}
		got.Store(ep)
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	b := 2
	e.Publish(&b)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Await did not wake on Publish")
	}
	if got.Load() != 2 {
		t.Fatalf("Await woke at epoch %d, want 2", got.Load())
	}
}

// TestEpochAwaitCancel: a canceled token unblocks Await with ErrCanceled
// within the poll interval.
func TestEpochAwaitCancel(t *testing.T) {
	var e Epoch[int]
	var c Canceler
	done := make(chan error, 1)
	go func() {
		_, _, err := e.Await(0, &c)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Await err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Await did not observe cancellation")
	}
}

// TestEpochManyWaiters: every concurrent waiter sees every epoch in
// order — the close-and-replace tick broadcast reaches them all, and the
// +1-per-Publish numbering means a reader chaining Await(after=last)
// observes the full sequence.
func TestEpochManyWaiters(t *testing.T) {
	const waiters, pubs = 8, 50
	var e Epoch[uint64]
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for last < pubs {
				v, ep, err := e.Await(last, nil)
				if err != nil {
					t.Errorf("Await: %v", err)
					return
				}
				if ep <= last {
					t.Errorf("Await went backwards: %d after %d", ep, last)
					return
				}
				if *v != ep {
					t.Errorf("epoch %d carries value %d", ep, *v)
					return
				}
				last = ep
			}
		}()
	}
	for i := uint64(1); i <= pubs; i++ {
		v := i
		if ep := e.Publish(&v); ep != i {
			t.Fatalf("Publish %d got epoch %d", i, ep)
		}
	}
	wg.Wait()
}

// TestEpochPublishAt covers the restore path: seeding a fresh cell at a
// checkpointed epoch, clamping of non-monotone requests, and Await
// waking across a PublishAt exactly as across a Publish.
func TestEpochPublishAt(t *testing.T) {
	var e Epoch[int]
	v1 := 100
	if ep := e.PublishAt(&v1, 7); ep != 7 {
		t.Fatalf("PublishAt(7) on fresh cell = %d, want 7", ep)
	}
	if v, ep := e.Current(); *v != 100 || ep != 7 {
		t.Fatalf("Current = (%d, %d), want (100, 7)", *v, ep)
	}
	// Plain Publish continues the numbering.
	v2 := 200
	if ep := e.Publish(&v2); ep != 8 {
		t.Fatalf("Publish after PublishAt(7) = %d, want 8", ep)
	}
	// A stale or zero epoch clamps forward, never repeats or rewinds.
	v3 := 300
	if ep := e.PublishAt(&v3, 3); ep != 9 {
		t.Fatalf("PublishAt(3) after epoch 8 = %d, want clamp to 9", ep)
	}
	v4 := 400
	if ep := e.PublishAt(&v4, 9); ep != 10 {
		t.Fatalf("PublishAt(9) at epoch 9 = %d, want clamp to 10", ep)
	}
	// Await(after) tokens from "before the crash" resolve against the
	// restored numbering: a reader waiting past epoch 10 wakes on the
	// next PublishAt.
	done := make(chan uint64, 1)
	go func() {
		_, ep, err := e.Await(10, nil)
		if err != nil {
			t.Errorf("Await: %v", err)
		}
		done <- ep
	}()
	time.Sleep(2 * time.Millisecond)
	v5 := 500
	e.PublishAt(&v5, 42)
	if ep := <-done; ep != 42 {
		t.Fatalf("Await woke at epoch %d, want 42", ep)
	}
	// Fresh cell, zero epoch request: still starts at 1.
	var z Epoch[int]
	if ep := z.PublishAt(&v1, 0); ep != 1 {
		t.Fatalf("PublishAt(0) on fresh cell = %d, want 1", ep)
	}
}

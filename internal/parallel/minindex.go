package parallel

// minIndexPollStride is how many iterations a ReduceMinIndex chunk scans
// between polls of the shared winner cell. Polling is a single atomic load
// of a mostly-read cache line, but for very cheap predicates even that is
// worth amortizing.
const minIndexPollStride = 64

// ReduceMinIndex returns the smallest index i in [lo, hi) with pred(i)
// true; ok is false when no index qualifies. Indices must be non-negative.
//
// It is the reservation step of a deterministic reserve/commit round
// (GBBS-style): every index in the range races to reserve a shared
// priority-write cell (PriorityCell) with its own index as the priority,
// and the smallest reservation wins. Unlike MinIndexFunc — a tree
// reduction that evaluates every predicate — chunks consult the cell
// before and during their scan and abandon work that can no longer win, so
// the expected number of predicate evaluations is proportional to the
// winning index's position, not the range width, while the result stays
// deterministic (always the minimum). Determinism survives the stealing
// scheduler because it never depends on which lane runs a chunk or in what
// order: the cell keeps the minimum over every reservation that fired, and
// pruning only skips indices strictly above an already-reserved one, which
// can never be the final winner (see DESIGN.md).
//
// pred is called concurrently from pool workers and may be skipped for
// indices above the winner; it must be safe for concurrent use and must
// not mutate shared state. grain bounds the chunk size as in ForGrain
// (grain <= 0 selects DefaultGrain); ranges below one grain run inline on
// the caller with a serial early-exit scan.
func ReduceMinIndex(lo, hi, grain int, pred func(i int) bool) (idx int, ok bool) {
	n := hi - lo
	if n <= 0 {
		return 0, false
	}
	nb := chunksFor(n, grain)
	if nb <= 1 || MaxProcs() == 1 {
		for i := lo; i < hi; i++ {
			if pred(i) {
				return i, true
			}
		}
		return 0, false
	}
	var winner PriorityCell
	runLoop(nb, func(b int) {
		s, e := chunkBounds(lo, hi, b, nb)
		if w, reserved := winner.Load(); reserved && w < int64(s) {
			return // an earlier chunk already holds a smaller reservation
		}
		for i := s; i < e; i++ {
			if (i-s)%minIndexPollStride == 0 {
				if w, reserved := winner.Load(); reserved && w < int64(i) {
					return
				}
			}
			if pred(i) {
				winner.Write(int64(i))
				return
			}
		}
	})
	if w, reserved := winner.Load(); reserved {
		return int(w), true
	}
	return 0, false
}

// ScanMinIndexWindows is ReduceMinIndex over doubling windows: [lo, hi) is
// probed in disjoint windows of width w0, 2·w0, 4·w0, ... (the last one
// clipped to hi), stopping at the first window that holds a reserved
// index. The expected number of predicate evaluations is proportional to
// the winning index's distance from lo rather than the range width, while
// the result stays the deterministic minimum. onWindow, if non-nil, is
// called with each probed window's width before it is scanned — the
// deterministic full-window charge callers use for PRAM work accounting,
// independent of how many predicates the reservation actually evaluates.
func ScanMinIndexWindows(lo, hi, w0 int, onWindow func(width int), pred func(i int) bool) (idx int, ok bool) {
	if w0 < 1 {
		w0 = 1
	}
	w := w0
	for s := lo; s < hi; {
		e := s + w
		if e > hi {
			e = hi
		}
		if onWindow != nil {
			onWindow(e - s)
		}
		if idx, ok := ReduceMinIndex(s, e, 0, pred); ok {
			return idx, true
		}
		s = e
		w *= 2
	}
	return 0, false
}

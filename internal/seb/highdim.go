package seb

import (
	"math"

	"repro/internal/linalg"
)

// This file implements the d-dimensional extension the paper notes for
// Section 5.3: Welzl's algorithm generalizes with up to d+1 nested update
// levels (support points on the ball boundary), O(c_d n) expected work and
// O(d! log^d n) depth using the same random order for all sub-problems.

// BallD is a closed ball in R^d.
type BallD struct {
	Center []float64
	R2     float64
}

// ContainsD reports whether p is in the closed ball with construction
// tolerance.
func (b BallD) ContainsD(p []float64) bool {
	if b.Center == nil {
		return false
	}
	return linalg.Dist2(b.Center, p) <= b.R2*(1+1e-10)+1e-300
}

// circumBall returns the smallest ball whose boundary passes through all
// support points (their circumball within the affine hull): center
// c = s0 + Σ λ_j (s_j - s0) with 2(s_j-s0)·(c-s0) = |s_j-s0|².
func circumBall(support [][]float64) BallD {
	k := len(support)
	if k == 0 {
		return BallD{}
	}
	d := len(support[0])
	s0 := support[0]
	if k == 1 {
		return BallD{Center: append([]float64(nil), s0...), R2: 0}
	}
	m := make([][]float64, k-1)
	rhs := make([]float64, k-1)
	diffs := make([][]float64, k-1)
	for j := 1; j < k; j++ {
		dj := make([]float64, d)
		for c := 0; c < d; c++ {
			dj[c] = support[j][c] - s0[c]
		}
		diffs[j-1] = dj
	}
	for r := 0; r < k-1; r++ {
		m[r] = make([]float64, k-1)
		for c := 0; c < k-1; c++ {
			m[r][c] = 2 * linalg.Dot(diffs[r], diffs[c])
		}
		rhs[r] = linalg.Dot(diffs[r], diffs[r])
	}
	lambda := linalg.Solve(m, rhs)
	if lambda == nil {
		// Affinely dependent support (degenerate input): fall back to the
		// diametral ball of the farthest pair among the support points.
		best := BallD{}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b := diametral(support[i], support[j])
				if b.R2 > best.R2 {
					best = b
				}
			}
		}
		if best.Center == nil {
			return BallD{Center: append([]float64(nil), s0...), R2: 0}
		}
		return best
	}
	center := append([]float64(nil), s0...)
	for j := 0; j < k-1; j++ {
		for c := 0; c < d; c++ {
			center[c] += lambda[j] * diffs[j][c]
		}
	}
	return BallD{Center: center, R2: linalg.Dist2(center, s0)}
}

func diametral(p, q []float64) BallD {
	c := make([]float64, len(p))
	for i := range c {
		c[i] = (p[i] + q[i]) / 2
	}
	return BallD{Center: c, R2: linalg.Dist2(c, p)}
}

// IncrementalD computes the smallest enclosing ball of the points in slice
// order (pre-shuffled), with the iterative Welzl structure generalized to d
// dimensions: level-k updates fix k support points and rescan the prefix.
func IncrementalD(pts [][]float64) (BallD, Stats) {
	var st Stats
	n := len(pts)
	if n < 2 {
		panic("seb: need at least two points")
	}
	d := len(pts[0])
	b := diametral(pts[0], pts[1])
	for i := 2; i < n; i++ {
		st.InDiskTests++
		if b.ContainsD(pts[i]) {
			continue
		}
		st.Special++
		b = updateD(pts, i, [][]float64{pts[i]}, d, &st)
	}
	return b, st
}

// updateD returns the smallest ball containing pts[0:upTo] with the given
// support points on its boundary.
func updateD(pts [][]float64, upTo int, support [][]float64, d int, st *Stats) BallD {
	if len(support) == d+1 {
		return circumBall(support)
	}
	var b BallD
	if len(support) == 1 {
		// Seed with the first prefix point, mirroring the 2D Update1.
		b = diametral(pts[0], support[0])
	} else {
		b = circumBall(support)
	}
	start := 0
	if len(support) == 1 {
		start = 1
	}
	for k := start; k < upTo; k++ {
		st.InDiskTests++
		if b.ContainsD(pts[k]) {
			continue
		}
		st.Update2Calls++
		b = updateD(pts, k, append(append([][]float64{}, support...), pts[k]), d, st)
	}
	return b
}

// BruteForceD computes the smallest enclosing ball by enumerating all
// support subsets of size 2..d+1; exponential, test oracle for small n.
func BruteForceD(pts [][]float64) BallD {
	d := len(pts[0])
	best := BallD{R2: math.Inf(1)}
	containsAll := func(b BallD) bool {
		for _, p := range pts {
			if !b.ContainsD(p) {
				return false
			}
		}
		return true
	}
	var subset [][]float64
	var rec func(start, need int)
	consider := func() {
		b := circumBall(subset)
		if b.Center != nil && b.R2 < best.R2 && containsAll(b) {
			best = b
		}
	}
	rec = func(start, need int) {
		if need == 0 {
			consider()
			return
		}
		for i := start; i <= len(pts)-need; i++ {
			subset = append(subset, pts[i])
			rec(i+1, need-1)
			subset = subset[:len(subset)-1]
		}
	}
	for size := 2; size <= d+1 && size <= len(pts); size++ {
		rec(0, size)
	}
	return best
}

package seb

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// earliestViolator finds the smallest k in [lo, hi) with pts[k] outside d,
// scanning doubling windows so the expected work is proportional to the
// position of the violator rather than the whole range. Returns -1 if
// none. Each probed window is charged in full to tests (the PRAM work),
// so the count is deterministic even though the pooled reservation may
// prune containment calls that cannot win.
func earliestViolator(pts []geom.Point, d geom.Disk, lo, hi int, tests *atomic.Int64) int {
	idx, ok := parallel.ScanMinIndexWindows(lo, hi, 4,
		func(width int) { tests.Add(int64(width)) },
		func(k int) bool { return !d.Contains(pts[k]) })
	if !ok {
		return -1
	}
	return idx
}

// parUpdate1 is update1 with both scan levels replaced by parallel
// earliest-violator searches; it performs exactly the same sequence of disk
// updates as the sequential version, so the resulting disk is bitwise
// identical.
func parUpdate1(pts []geom.Point, i int, tests *atomic.Int64, update2Calls *int64) geom.Disk {
	d := geom.DiskFrom2(pts[0], pts[i])
	j := 1
	for j < i {
		v := earliestViolator(pts, d, j, i, tests)
		if v < 0 {
			break
		}
		*update2Calls++
		d = parUpdate2(pts, i, v, tests)
		j = v + 1
	}
	return d
}

func parUpdate2(pts []geom.Point, i, j int, tests *atomic.Int64) geom.Disk {
	d := geom.DiskFrom2(pts[i], pts[j])
	k := 0
	for k < j {
		v := earliestViolator(pts, d, k, j, tests)
		if v < 0 {
			break
		}
		d = geom.DiskFrom3(pts[i], pts[j], pts[v])
		k = v + 1
	}
	return d
}

// ParIncremental runs the Type 2 parallel algorithm (Theorem 5.3): the
// special check depends only on the current disk, so the Algorithm 1
// reserve/commit schedule applies directly; special iterations run the
// parallel Update1. The disk is written only by RunFirst and RunSpecial —
// regular commits are no-ops — so the hooks declare SpecialOnce and the
// runner probes the live prefix in batched doubling windows. The returned
// disk is identical to the sequential one.
func ParIncremental(pts []geom.Point) (geom.Disk, Stats) {
	n := len(pts)
	if n < 2 {
		panic("seb: need at least two points")
	}
	var st Stats
	var tests atomic.Int64
	var update2Calls int64
	var d geom.Disk

	hooks := core.Type2Hooks{
		SpecialOnce: true,
		RunFirst: func() {
			// Iterations are points; by the time iteration 1 is reached the
			// disk of the first two points must exist. Treat iteration 0 as
			// initialization and iteration 1 as always-regular (it is on the
			// initial disk's boundary by construction).
			d = geom.DiskFrom2(pts[0], pts[1])
		},
		IsSpecial: func(k int) bool {
			if k < 2 {
				return false
			}
			return !d.Contains(pts[k])
		},
		RunRegular: func(lo, hi int) {
			// Points inside the disk require no state change.
		},
		RunSpecial: func(k int) {
			d = parUpdate1(pts, k, &tests, &update2Calls)
		},
	}
	t2 := core.RunType2(n, hooks)
	st.Special = t2.Special - 1 // discount the RunFirst pseudo-special
	st.Rounds = t2.Rounds
	st.SubRounds = t2.SubRounds
	st.MaxProbe = t2.MaxProbe
	st.MaxRegular = t2.MaxRegular
	// Probe work is charged from the schedule's deterministic window
	// accounting, not per containment call: the pooled reservation may
	// prune calls that cannot win, and a scheduling-dependent counter
	// would break the experiments' given-the-seed determinism.
	st.InDiskTests = tests.Load() + t2.Checks
	st.Update2Calls = update2Calls
	return d, st
}

// Package seb implements Section 5.3 of the paper: Welzl's randomized
// incremental algorithm for the smallest enclosing disk, and its Type 2
// parallelization.
//
// The sequential structure follows the paper's presentation: the disk D is
// maintained over a random insertion order; when point i falls outside D
// the iteration is special and calls Update1(i) — the smallest disk with i
// on the boundary — which scans earlier points and calls Update2(i, j)
// whenever point j falls outside the working disk; Update2 scans again for
// the third boundary point. Each level's violation probability is O(1/j)
// by backwards analysis, so total work is O(n) expected and the dependence
// depth O(log n) whp; the parallel version replaces each scan with
// doubling-window earliest-violator searches (depth O(log² n) whp,
// Theorem 5.3).
package seb

import (
	"repro/internal/geom"
)

// Stats reports the counters of a run.
type Stats struct {
	Special      int   // iterations whose point fell outside the disk
	Update2Calls int64 // second-level rebuild calls
	InDiskTests  int64 // point-in-disk evaluations (the work measure)
	Rounds       int   // prefix rounds of the parallel schedule
	SubRounds    int
	MaxProbe     int // widest parallel in-disk probe batch (parallel schedule)
	MaxRegular   int // largest regular block committed in one batch
}

// Incremental computes the smallest enclosing disk of the points in slice
// order (pre-shuffled by the caller). It requires n >= 2 and assumes no
// four points are cocircular.
func Incremental(pts []geom.Point) (geom.Disk, Stats) {
	var st Stats
	n := len(pts)
	if n < 2 {
		panic("seb: need at least two points")
	}
	d := geom.DiskFrom2(pts[0], pts[1])
	for i := 2; i < n; i++ {
		st.InDiskTests++
		if d.Contains(pts[i]) {
			continue
		}
		st.Special++
		d = update1(pts, i, &st)
	}
	return d, st
}

// update1 returns the smallest disk containing pts[0:i+1] with pts[i] on
// its boundary (sequential scan version).
func update1(pts []geom.Point, i int, st *Stats) geom.Disk {
	d := geom.DiskFrom2(pts[0], pts[i])
	for j := 1; j < i; j++ {
		st.InDiskTests++
		if d.Contains(pts[j]) {
			continue
		}
		st.Update2Calls++
		d = update2(pts, i, j, st)
	}
	return d
}

// update2 returns the smallest disk containing pts[0:j+1] with pts[i] and
// pts[j] on its boundary.
func update2(pts []geom.Point, i, j int, st *Stats) geom.Disk {
	d := geom.DiskFrom2(pts[i], pts[j])
	for k := 0; k < j; k++ {
		st.InDiskTests++
		if d.Contains(pts[k]) {
			continue
		}
		d = geom.DiskFrom3(pts[i], pts[j], pts[k])
	}
	return d
}

// BruteForce computes the smallest enclosing disk by trying every pair's
// diametral disk and every triple's circumdisk; O(n^4). Test oracle.
func BruteForce(pts []geom.Point) geom.Disk {
	best := geom.Disk{R2: -1}
	containsAll := func(d geom.Disk) bool {
		for _, p := range pts {
			if !d.Contains(p) {
				return false
			}
		}
		return true
	}
	consider := func(d geom.Disk) {
		if (best.R2 < 0 || d.R2 < best.R2) && containsAll(d) {
			best = d
		}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			consider(geom.DiskFrom2(pts[i], pts[j]))
			for k := j + 1; k < len(pts); k++ {
				if geom.Orient2D(pts[i], pts[j], pts[k]) != 0 {
					consider(geom.DiskFrom3(pts[i], pts[j], pts[k]))
				}
			}
		}
	}
	return best
}

package seb

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/rng"
)

func randPtsD(seed uint64, n, d int) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestCircumBall(t *testing.T) {
	// Circumball of a 3-4-5-ish right triangle in R^2: hypotenuse is the
	// diameter.
	support := [][]float64{{0, 0}, {4, 0}, {0, 3}}
	b := circumBall(support)
	if math.Abs(b.Center[0]-2) > 1e-9 || math.Abs(b.Center[1]-1.5) > 1e-9 {
		t.Fatalf("center %v", b.Center)
	}
	if math.Abs(math.Sqrt(b.R2)-2.5) > 1e-9 {
		t.Fatalf("radius %v", math.Sqrt(b.R2))
	}
	// Regular tetrahedron corner set in R^3: all vertices equidistant from
	// the centroid.
	tet := [][]float64{{1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1}}
	b = circumBall(tet)
	for _, p := range tet {
		if math.Abs(linalg.Dist2(b.Center, p)-b.R2) > 1e-9 {
			t.Fatal("tetrahedron support not on boundary")
		}
	}
}

func TestIncrementalDMatchesBruteForce(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 8; trial++ {
			n := 4 + trial*4
			pts := randPtsD(uint64(d*100+trial), n, d)
			got, _ := IncrementalD(pts)
			want := BruteForceD(pts)
			if math.Abs(got.R2-want.R2) > 1e-7*(1+want.R2) {
				t.Fatalf("d=%d trial=%d n=%d: R2=%.10f want %.10f", d, trial, n, got.R2, want.R2)
			}
			for _, p := range pts {
				if !got.ContainsD(p) {
					t.Fatalf("d=%d trial=%d: point outside ball", d, trial)
				}
			}
		}
	}
}

func TestIncrementalDMatches2D(t *testing.T) {
	r := rng.New(3)
	pts2 := make([][]float64, 300)
	geoPts := make([]geom.Point, 300)
	for i := range pts2 {
		x, y := r.Float64(), r.Float64()
		pts2[i] = []float64{x, y}
		geoPts[i] = geom.Point{X: x, Y: y}
	}
	bd, _ := IncrementalD(pts2)
	d2, _ := Incremental(geoPts)
	if math.Abs(bd.R2-d2.R2) > 1e-9*(1+d2.R2) {
		t.Fatalf("d-dim R2=%.12f planar R2=%.12f", bd.R2, d2.R2)
	}
	if math.Abs(bd.Center[0]-d2.Center.X) > 1e-6 || math.Abs(bd.Center[1]-d2.Center.Y) > 1e-6 {
		t.Fatalf("centers differ: %v vs %+v", bd.Center, d2.Center)
	}
}

func TestIncrementalDLinearWork(t *testing.T) {
	d := 3
	for _, n := range []int{2000, 8000} {
		pts := randPtsD(uint64(n), n, d)
		_, st := IncrementalD(pts)
		if st.InDiskTests > int64(200*n) {
			t.Fatalf("d=3 n=%d: %d tests superlinear", n, st.InDiskTests)
		}
	}
}

func TestIncrementalDSphereSurface(t *testing.T) {
	// Points on a sphere in R^3: the ball must be (nearly) the unit ball.
	r := rng.New(5)
	pts := make([][]float64, 300)
	for i := range pts {
		p := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		norm := math.Sqrt(linalg.Dot(p, p))
		for j := range p {
			p[j] /= norm
		}
		pts[i] = p
	}
	b, _ := IncrementalD(pts)
	if math.Abs(math.Sqrt(b.R2)-1) > 0.02 {
		t.Fatalf("radius %.4f, want ~1", math.Sqrt(b.R2))
	}
}

func TestDegenerateCollinearD(t *testing.T) {
	// Collinear points in R^3 exercise the singular-system fallback.
	pts := [][]float64{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {0.5, 0.5, 0.5}}
	b, _ := IncrementalD(pts)
	want := linalg.Dist2([]float64{1.5, 1.5, 1.5}, []float64{0, 0, 0})
	if math.Abs(b.R2-want) > 1e-9 {
		t.Fatalf("collinear R2=%v want %v", b.R2, want)
	}
}

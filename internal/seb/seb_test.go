package seb

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestIncrementalMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		pts := geom.Dedup(geom.UniformDisk(r, n))
		if len(pts) < 2 {
			continue
		}
		got, _ := Incremental(pts)
		want := BruteForce(pts)
		if math.Abs(got.R2-want.R2) > 1e-9*(1+want.R2) {
			t.Fatalf("trial %d n=%d: R2=%.12f want %.12f", trial, n, got.R2, want.R2)
		}
		for _, p := range pts {
			if !got.Contains(p) {
				t.Fatalf("trial %d: point %v outside result disk", trial, p)
			}
		}
	}
}

func TestParIncrementalMatchesSequential(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(500)
		pts := geom.Dedup(geom.UniformSquare(r, n))
		if len(pts) < 2 {
			continue
		}
		seq, seqSt := Incremental(pts)
		par, parSt := ParIncremental(pts)
		if seq != par {
			t.Fatalf("trial %d n=%d: disks differ: %+v vs %+v", trial, n, seq, par)
		}
		if seqSt.Special != parSt.Special {
			t.Fatalf("trial %d: special seq=%d par=%d", trial, seqSt.Special, parSt.Special)
		}
		if seqSt.Update2Calls != parSt.Update2Calls {
			t.Fatalf("trial %d: update2 seq=%d par=%d", trial, seqSt.Update2Calls, parSt.Update2Calls)
		}
	}
}

func TestPointsOnCircle(t *testing.T) {
	// Adversarial: all points essentially on one circle; the disk must be
	// (nearly) the unit disk.
	r := rng.New(3)
	pts := geom.Dedup(geom.OnCircle(r, 100, 1e-6))
	d, _ := ParIncremental(pts)
	if math.Abs(d.Radius()-1) > 1e-3 {
		t.Fatalf("radius %.6f, want about 1", d.Radius())
	}
}

func TestCollinearPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 0.5, Y: 0}}
	seq, _ := Incremental(pts)
	par, _ := ParIncremental(pts)
	if seq != par {
		t.Fatalf("collinear: seq %+v par %+v", seq, par)
	}
	want := geom.DiskFrom2(geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 0})
	if math.Abs(seq.R2-want.R2) > 1e-12 {
		t.Fatalf("collinear disk R2=%v want %v", seq.R2, want.R2)
	}
}

func TestTwoPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}}
	d, _ := ParIncremental(pts)
	if d.Center.X != 1 || d.Center.Y != 0 || math.Abs(d.Radius()-1) > 1e-12 {
		t.Fatalf("got %+v", d)
	}
}

// TestParIncrementalBatchedRace drives the batched reserve/commit schedule
// with an input large enough that the prefix probes fan out on the worker
// pool; under -race this exercises the publication ordering between
// RunSpecial's disk writes on the committing goroutine and the concurrent
// IsSpecial probes on pool workers. The result must still be bitwise equal
// to the sequential run.
func TestParIncrementalBatchedRace(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 20000
	}
	pts := geom.UniformDisk(rng.New(42), n)
	seq, seqSt := Incremental(pts)
	par, parSt := ParIncremental(pts)
	if seq != par {
		t.Fatalf("disks differ: seq %+v par %+v", seq, par)
	}
	if seqSt.Special != parSt.Special {
		t.Fatalf("special seq=%d par=%d", seqSt.Special, parSt.Special)
	}
	if parSt.SubRounds == 0 || parSt.MaxRegular == 0 || parSt.MaxProbe == 0 {
		t.Fatalf("batched schedule recorded no batches: %+v", parSt)
	}
	// The windowed probe may skip tests the sequential scan performs, but
	// the work must stay linear either way.
	if parSt.InDiskTests > int64(60*n) {
		t.Fatalf("parallel in-disk tests %d superlinear for n=%d", parSt.InDiskTests, n)
	}
}

func TestLinearWork(t *testing.T) {
	// Expected O(n) in-disk tests for the sequential algorithm.
	r := rng.New(5)
	for _, n := range []int{1000, 8000, 32000} {
		pts := geom.UniformDisk(r, n)
		_, st := Incremental(pts)
		if st.InDiskTests > int64(60*n) {
			t.Fatalf("n=%d: %d in-disk tests is superlinear", n, st.InDiskTests)
		}
	}
}

func TestSpecialLogarithmic(t *testing.T) {
	r := rng.New(6)
	n := 8192
	trials := 10
	total := 0
	for trial := 0; trial < trials; trial++ {
		pts := geom.UniformDisk(r.Split(), n)
		_, st := Incremental(pts)
		total += st.Special
	}
	avg := float64(total) / float64(trials)
	if bound := 3*math.Log(float64(n)) + 4; avg > bound {
		t.Fatalf("avg special %.2f exceeds 3 ln n + 4 = %.2f", avg, bound)
	}
}

func TestQuickValidity(t *testing.T) {
	// Property: the result disk contains every input point and touches at
	// least two of them (a smaller disk would exist otherwise).
	f := func(raw []struct{ X, Y int8 }) bool {
		pts := make([]geom.Point, 0, len(raw))
		for _, q := range raw {
			pts = append(pts, geom.Point{X: float64(q.X), Y: float64(q.Y)})
		}
		pts = geom.Dedup(pts)
		if len(pts) < 2 {
			return true
		}
		d, _ := ParIncremental(pts)
		onBoundary := 0
		for _, p := range pts {
			if !d.Contains(p) {
				return false
			}
			if math.Abs(geom.Dist2(d.Center, p)-d.R2) < 1e-6*(1+d.R2) {
				onBoundary++
			}
		}
		return onBoundary >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

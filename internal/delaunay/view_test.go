package delaunay

// Tests for the serve-while-building layer (view.go): published views
// against the finished mesh, Locate against brute force, the monotone
// final-set argument, the linearizable-snapshot stress (every view a
// concurrent reader observes equals a committed-round prefix of a
// deterministic reference run), the face-map serving snapshot, and the
// zero-alloc query pins. The stress tests run under -race in CI.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// viewRow is one committed round of a reference run: what every
// concurrently observed view of the same input must match exactly.
type viewRow struct {
	tris   int    // committed triangle-log length
	nFinal int    // final-set watermark
	sum    uint64 // order-sensitive checksum of the final ids
}

func finalSum(v *MeshView) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < v.NumFinal(); i++ {
		h = (h ^ uint64(uint32(v.FinalID(i)))) * 1099511628211
	}
	return h
}

// referenceRun drives a Live sequentially and records every committed
// round. The engine is deterministic (log order included — the
// cancellation suite compares meshes index by index), so these rows are
// THE committed-prefix sequence for this input.
func referenceRun(t *testing.T, pts []geom.Point) map[int32]viewRow {
	t.Helper()
	lv := NewLive(pts)
	rows := make(map[int32]viewRow)
	record := func() {
		v := lv.View()
		rows[v.Round()] = viewRow{tris: v.NumTriangles(), nFinal: v.NumFinal(), sum: finalSum(v)}
	}
	record()
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("reference Step: %v", err)
		}
		record()
		if !more {
			return rows
		}
	}
}

// TestLiveRunMatchesParTriangulate: serving changes nothing about the
// result — Live.Run publishes every round and still produces the exact
// deterministic mesh, and the last view's final set is that mesh.
func TestLiveRunMatchesParTriangulate(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(99), 1500))
	want := ParTriangulate(pts)
	lv := NewLive(pts)
	got, err := lv.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	meshEqual(t, "live run", got, want)
	v := lv.View()
	if !v.Done() {
		t.Fatal("last view not Done after Run")
	}
	if v.NumFinal() != len(want.Triangles) {
		t.Fatalf("last view has %d final triangles, mesh has %d", v.NumFinal(), len(want.Triangles))
	}
	for i := 0; i < v.NumFinal(); i++ {
		if v.Corners(v.FinalID(i)) != want.Triangles[i].V {
			t.Fatalf("final triangle %d corners diverge from finish()", i)
		}
	}
	fin := lv.Finish()
	meshEqual(t, "Finish after Run", fin, want)
}

// TestLiveViewsMonotone pins the growth argument stepwise: round, log
// length, and final count never decrease; every earlier view's final
// prefix survives verbatim in every later view; Done exactly once at
// the end.
func TestLiveViewsMonotone(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(5), 1000))
	lv := NewLive(pts)
	prev := lv.View()
	var prevEpoch uint64
	if _, e := lv.ViewEpoch(); e != 1 {
		t.Fatalf("initial publication epoch = %d, want 1", e)
	}
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		v, ep := lv.ViewEpoch()
		if ep <= prevEpoch && prevEpoch != 0 {
			t.Fatalf("epoch went %d -> %d", prevEpoch, ep)
		}
		prevEpoch = ep
		// Each committed round bumps the counter; the final step — an
		// empty activation that only flips Done — republishes at the
		// same round.
		if v.Round() != prev.Round()+1 && !(v.Round() == prev.Round() && !more) {
			t.Fatalf("round went %d -> %d (more=%v)", prev.Round(), v.Round(), more)
		}
		if v.NumTriangles() < prev.NumTriangles() || v.NumFinal() < prev.NumFinal() {
			t.Fatal("view shrank")
		}
		for i := 0; i < prev.NumFinal(); i++ {
			if v.FinalID(i) != prev.FinalID(i) {
				t.Fatalf("final id %d changed across rounds: %d -> %d", i, prev.FinalID(i), v.FinalID(i))
			}
		}
		if v.Done() != !more {
			t.Fatalf("Done = %v with more = %v", v.Done(), more)
		}
		prev = v
		if !more {
			return
		}
	}
}

// TestViewLocateBruteForce cross-checks the location grid against a
// linear scan of the final set, on mid-build views and the completed
// one: Locate finds a containing final triangle exactly when one exists,
// and the triangle it returns does contain the query.
func TestViewLocateBruteForce(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(12), 900))
	lv := NewLive(pts)
	r := rng.New(77)
	check := func(v *MeshView) {
		t.Helper()
		for q := 0; q < 300; q++ {
			p := geom.Point{X: r.Float64()*1.2 - 0.1, Y: r.Float64()*1.2 - 0.1}
			id, ok := v.Locate(p)
			if ok && !v.triContains(id, p) {
				t.Fatalf("round %d: Locate(%v) returned triangle %d not containing it", v.Round(), p, id)
			}
			brute := false
			for i := 0; i < v.NumFinal() && !brute; i++ {
				brute = v.triContains(v.FinalID(i), p)
			}
			if ok != brute {
				t.Fatalf("round %d: Locate(%v) = %v, brute force = %v", v.Round(), p, ok, brute)
			}
		}
	}
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if v := lv.View(); v.Round()%7 == 0 || !more {
			check(v)
		}
		if !more {
			break
		}
	}
	// Completed view: every input point must locate (it is a corner of
	// some final triangle), and far-outside points must not.
	v := lv.View()
	for i := 0; i < v.NumPoints(); i += 13 {
		if !v.Contains(v.Point(int32(i))) {
			t.Fatalf("input point %d not contained in completed view", i)
		}
	}
	if v.Contains(geom.Point{X: 1e6, Y: 1e6}) {
		t.Fatal("point far outside the hull located in a final triangle")
	}
}

// TestLiveConcurrentReaders is the mesh half of the linearizable-
// snapshot stress: readers hammer views (and face-map snapshots) while
// the publisher builds, asserting every observed view is byte-for-byte
// one of the reference run's committed-round prefixes and that epochs
// and rounds only move forward per reader. Run under -race in CI.
func TestLiveConcurrentReaders(t *testing.T) {
	n := 2500
	if testing.Short() {
		n = 800
	}
	pts := geom.Dedup(geom.UniformSquare(rng.New(21), n))
	rows := referenceRun(t, pts)

	lv := NewLive(pts)
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			var lastEp uint64
			var lastRound int32 = -1
			for !stop.Load() {
				v, ep := lv.ViewEpoch()
				if ep < lastEp || (ep == lastEp && v.Round() != lastRound && lastRound != -1) {
					report("publication went backwards")
					return
				}
				lastEp = ep
				if v.Round() < lastRound {
					report("round went backwards")
					return
				}
				lastRound = v.Round()
				row, ok := rows[v.Round()]
				if !ok {
					report("observed a round the reference run never committed")
					return
				}
				if v.NumTriangles() != row.tris || v.NumFinal() != row.nFinal || finalSum(v) != row.sum {
					report("observed view diverges from the committed reference prefix")
					return
				}
				// Query load: locations must stay self-consistent, and the
				// face map must know every committed triangle's edges.
				fs := lv.Faces()
				for i := 0; i < 32; i++ {
					q := geom.Point{X: r.Float64(), Y: r.Float64()}
					if id, ok := v.Locate(q); ok {
						if !v.triContains(id, q) {
							report("Locate returned a non-containing triangle")
							fs.Close()
							return
						}
						c := v.Corners(id)
						if _, _, ok := fs.Incident(c[0], c[1]); !ok {
							report("final triangle edge missing from face snapshot")
							fs.Close()
							return
						}
					}
				}
				fs.Close()
			}
		}(uint64(g)*131 + 7)
	}
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !more {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestLiveAwaitFollowsRounds: a reader chaining Await sees a strictly
// increasing epoch sequence ending at the Done view, and cancellation
// unblocks a stuck Await.
func TestLiveAwaitFollowsRounds(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(3), 600))
	lv := NewLive(pts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for {
			v, ep, err := lv.Await(last, nil)
			if err != nil {
				t.Errorf("Await: %v", err)
				return
			}
			if ep <= last {
				t.Errorf("Await epoch went %d -> %d", last, ep)
				return
			}
			last = ep
			if v.Done() {
				return
			}
		}
	}()
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !more {
			break
		}
	}
	<-done

	var c parallel.Canceler
	errc := make(chan error, 1)
	go func() {
		_, _, err := lv.Await(1<<60, &c) // no such epoch: blocks until canceled
		errc <- err
	}()
	c.Cancel()
	if err := <-errc; err == nil {
		t.Fatal("Await ignored cancellation")
	}
}

// TestLiveEdgeCases: empty and single-point inputs publish immediately
// final views; canceled Steps keep the last view current.
func TestLiveEdgeCases(t *testing.T) {
	lv := NewLive(nil)
	v := lv.View()
	if !v.Done() || v.NumFinal() != 1 || v.Round() != 0 {
		t.Fatalf("empty input view: done=%v final=%d round=%d", v.Done(), v.NumFinal(), v.Round())
	}
	if m := lv.Finish(); len(m.Triangles) != 1 {
		t.Fatalf("empty input mesh has %d triangles", len(m.Triangles))
	}

	lv = NewLive([]geom.Point{{X: 0.5, Y: 0.5}})
	if _, err := lv.Run(nil); err != nil {
		t.Fatalf("single-point Run: %v", err)
	}
	if v := lv.View(); !v.Done() || v.NumFinal() != 3 {
		t.Fatalf("single-point final view: done=%v final=%d", v.Done(), v.NumFinal())
	}

	// Cancellation: an already-canceled token fails the Step, and the
	// previously published view stays exactly current.
	lv = NewLive(geom.Dedup(geom.UniformSquare(rng.New(8), 200)))
	var c parallel.Canceler
	c.Cancel()
	before, beforeEp := lv.ViewEpoch()
	if _, err := lv.Step(&c); err == nil {
		t.Fatal("canceled Step returned nil error")
	}
	after, afterEp := lv.ViewEpoch()
	if after != before || afterEp != beforeEp {
		t.Fatal("canceled Step changed the published view")
	}
	// The engine stays resumable: finish the build with a live token.
	if _, err := lv.Run(nil); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if !lv.View().Done() {
		t.Fatal("resumed run did not complete")
	}
}

// TestFaceSnapServing: the face snapshot knows every committed
// triangle's edges, reports hull faces with one side open, and survives
// (torn-free) across the build; Len and Epoch behave.
func TestFaceSnapServing(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(44), 700))
	lv := NewLive(pts)
	if _, err := lv.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := lv.View()
	fs := lv.Faces()
	defer fs.Close()
	if fs.Epoch() == 0 {
		t.Fatal("face snapshot epoch 0 after a full build of boundaries")
	}
	if fs.Len() == 0 {
		t.Fatal("face snapshot empty after build")
	}
	for i := 0; i < v.NumFinal(); i++ {
		c := v.Corners(v.FinalID(i))
		for e := 0; e < 3; e++ {
			t0, _, ok := fs.Incident(c[e], c[(e+1)%3])
			if !ok {
				t.Fatalf("edge (%d,%d) of final triangle missing from face map", c[e], c[(e+1)%3])
			}
			if t0 == NoTri {
				t.Fatalf("edge (%d,%d) has no primary triangle", c[e], c[(e+1)%3])
			}
		}
	}
	if _, _, ok := fs.Incident(0, 0); ok {
		t.Fatal("degenerate edge (0,0) reported present")
	}
}

// TestViewQueryAllocs pins the zero-alloc serve path: Locate, Contains,
// Corners, and FaceSnap.Incident allocate nothing on the float fast
// path (ridtvet pins the same statically via //ridt:noalloc).
func TestViewQueryAllocs(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(61), 1200))
	lv := NewLive(pts)
	if _, err := lv.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := lv.View()
	fs := lv.Faces()
	defer fs.Close()
	r := rng.New(9)
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		q := qs[i%len(qs)]
		i++
		if id, ok := v.Locate(q); ok {
			c := v.Corners(id)
			_, _, _ = fs.Incident(c[0], c[1])
		}
		_ = lv.View()
	}); avg != 0 {
		t.Fatalf("serve-path queries allocate %.2f per op, want 0", avg)
	}
}

package delaunay

// A-B ablations for the round engine's three changes (ISSUE 5): the
// parallel activation filter vs the serial scan, the round-stamp dedup vs
// the sorted merge and the semisort, and the arena-carved round scratch
// vs per-triangle makes. Results are recorded in BENCH_delaunay.json and
// the delaunay families are gated by cmd/benchgate in CI.
//
// Run with:
//
//	go test -run '^$' -bench BenchmarkDelaunayRound -benchmem ./internal/delaunay

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sortutil"
)

// benchEngine builds a finished triangulation's engine: the face map holds
// every face the run ever created, and cand lists all of them — the
// largest activation scan the input can produce (no face fires again, so
// the scan is repeatable).
func benchEngine(n int) *roundEngine {
	pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
	e := newRoundEngine(pts)
	for e.step() {
	}
	var cand []uint64
	e.faces.Range(func(k uint64, v faceEntry) bool {
		cand = append(cand, k)
		return true
	})
	e.cand = cand
	return e
}

// BenchmarkDelaunayRoundActivation compares the shipped parallel blocked
// filter against the serial append loop it replaced, over the same
// candidate list and face map.
func BenchmarkDelaunayRoundActivation(b *testing.B) {
	e := benchEngine(1 << 12)
	s, faces, cand := e.s, e.faces, e.cand
	b.Run(fmt.Sprintf("scheme=serial/faces=%d", len(cand)), func(b *testing.B) {
		fires := make([]fire, 0, len(cand))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fires = fires[:0]
			for _, fk := range cand {
				ent, ok := faces.Load(fk)
				if !ok {
					continue
				}
				if ent.t1 == NoTri && !s.isBoundingEdge(fk) {
					continue
				}
				m0, m1 := s.minE(ent.t0), s.minE(ent.t1)
				switch {
				case m0 < m1:
					fires = append(fires, fire{fk, ent.t0, ent.t1})
				case m1 < m0:
					fires = append(fires, fire{fk, ent.t1, ent.t0})
				}
			}
		}
	})
	b.Run(fmt.Sprintf("scheme=parallel/faces=%d", len(cand)), func(b *testing.B) {
		ar := e.ar
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nc := len(cand)
			ar.evalF = growSlice(ar.evalF, nc)
			ar.evalOK = growSlice(ar.evalOK, nc)
			evalF, evalOK := ar.evalF, ar.evalOK
			parallel.Blocks(0, nc, activationGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					evalOK[i] = false
					ent, ok := faces.Load(cand[i])
					if !ok {
						continue
					}
					if ent.t1 == NoTri && !s.isBoundingEdge(cand[i]) {
						continue
					}
					m0, m1 := s.minE(ent.t0), s.minE(ent.t1)
					switch {
					case m0 < m1:
						evalF[i] = fire{cand[i], ent.t0, ent.t1}
						evalOK[i] = true
					case m1 < m0:
						evalF[i] = fire{cand[i], ent.t1, ent.t0}
						evalOK[i] = true
					}
				}
			})
			ar.fires, ar.counts = parallel.PackInto(ar.fires, evalF,
				func(i int) bool { return evalOK[i] }, ar.counts)
		}
	})
}

// benchDense builds a synthetic round's touched-face stream: 3 slots per
// fire, where each new face appears in two fires' slots with probability
// dup (the both-sides-touched case the dedup exists for).
func benchDense(m int, dup float64) []uint64 {
	r := rng.New(uint64(m))
	dense := make([]uint64, 3*m)
	next := uint64(1)
	for k := 0; k < m; k++ {
		dense[3*k] = next // ripped face: unique
		next++
		for j := 1; j <= 2; j++ {
			if k > 0 && r.Float64() < dup {
				// Duplicate one of the previous fire's new faces.
				dense[3*k+j] = dense[3*(k-1)+1+int(r.Uint64()%2)]
			} else {
				dense[3*k+j] = next
				next++
			}
		}
	}
	return dense
}

// BenchmarkDelaunayRoundDedup compares the candidate dedup schemes over
// the same touched-face stream: the shipped round-stamp flag pass + pack
// (the stamp writes themselves ride the face-attachment updates the round
// performs anyway, so they are prepaid here), the sorted merge the engine
// used before, and the semisort dedup (sortutil.Dedup) as the middle
// ground. This is the ablation that decided what ships — see DESIGN.md.
func BenchmarkDelaunayRoundDedup(b *testing.B) {
	const m = 1 << 13
	dense := benchDense(m, 0.5)
	b.Run(fmt.Sprintf("scheme=sort/m=%d", m), func(b *testing.B) {
		merged := make([]uint64, 0, len(dense))
		for i := 0; i < b.N; i++ {
			merged = append(merged[:0], dense...)
			sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
			out := merged[:0]
			for i, fk := range merged {
				if i == 0 || fk != merged[i-1] {
					out = append(out, fk)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("scheme=semisort/m=%d", m), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortutil.Dedup(dense)
		}
	})
	b.Run(fmt.Sprintf("scheme=stamp/m=%d", m), func(b *testing.B) {
		// Prepare the stamped face map as Phase B leaves it: every touched
		// face carries (round, min toucher slot).
		faces := newTestFaceMap(len(dense) * 2)
		const round = int32(1)
		for i, fk := range dense {
			k := int32(i / 3)
			attachNewFace(faces, fk, k, round, k)
		}
		keep := make([]bool, len(dense))
		var cand []uint64
		counts := make([]int, 0, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			parallel.Blocks(0, len(dense), emissionGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ent, _ := faces.Load(dense[i])
					keep[i] = ent.round == round && ent.claim == int32(i/3)
				}
			})
			cand, counts = parallel.PackInto(cand, dense,
				func(i int) bool { return keep[i] }, counts)
		}
	})
}

// BenchmarkDelaunayRoundArena compares the per-block E-list sub-arena
// against the make-per-triangle allocation it replaced, over a realistic
// size distribution (most encroacher lists are tiny, a few are large).
func BenchmarkDelaunayRoundArena(b *testing.B) {
	const m = 1 << 13
	r := rng.New(5)
	sizes := make([]int, m)
	for i := range sizes {
		sizes[i] = 1 + r.Intn(8)
		if r.Intn(32) == 0 {
			sizes[i] = 64 + r.Intn(256)
		}
	}
	fill := func(buf []int32, n int) []int32 {
		for j := 0; j < n; j++ {
			buf = append(buf, int32(j))
		}
		return buf
	}
	sink := make([][]int32, m)
	b.Run(fmt.Sprintf("scheme=make/m=%d", m), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k, n := range sizes {
				sink[k] = fill(make([]int32, 0, n), n)
			}
		}
	})
	b.Run(fmt.Sprintf("scheme=arena/m=%d", m), func(b *testing.B) {
		var ea i32arena
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ea.reset()
			for k, n := range sizes {
				buf := fill(ea.take(n), n)
				ea.commit(len(buf))
				sink[k] = buf
			}
		}
	})
}

// BenchmarkDelaunayPar is the package-local whole-run macro (the root
// BenchmarkTable1DelaunayPar with allocation tracking): the number to
// watch is allocs/op, which the arena + inline face map hold at a small
// multiple of the round count rather than the triangle count.
func BenchmarkDelaunayPar(b *testing.B) {
	for _, n := range []int{1 << 12} {
		pts := geom.Dedup(geom.UniformSquare(rng.New(uint64(n)), n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ParTriangulate(pts)
			}
		})
	}
}

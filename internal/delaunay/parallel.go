package delaunay

import (
	"sort"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/hashtable"
	"repro/internal/parallel"
)

// faceEntry is a face's up-to-two incident triangles in the concurrent
// face map.
type faceEntry struct {
	t0, t1 int32
}

// fire describes one ReplaceBoundary scheduled for the current round: face
// fk is ripped from the t side (whose earliest encroacher is the new point)
// with to on the other side (NoTri for hull faces of the bounding triangle).
type fire struct {
	fk    uint64
	t, to int32
}

// ParTriangulate runs Algorithm 5 (ParIncrementalDT): in every round, all
// faces f = (to, t) with min(E(t)) < min(E(to)) run
// ReplaceBoundary(to, f, t, min(E(t))) in parallel. By Lemma 4.2 the calls
// are exactly those of the sequential algorithm, so the result is the same
// triangulation; the number of rounds is the triangle dependence depth
// D(G_T(V)) = O(d log n) whp (Theorem 4.3).
func ParTriangulate(pts []geom.Point) *Mesh {
	s := newStore(pts)
	// The face map is the hot path: a lock-free table (see
	// hashtable/DESIGN.md) whose Update is a pure CAS read-modify-write.
	// faceEntry is a value struct, so the update functions below are pure
	// as the lock-free contract requires. The identity hasher suffices:
	// the table applies its own finalizing Mix64 to spread packed face
	// keys. Pre-sizing covers the common case; growth is cooperative if a
	// workload overflows it.
	faces := hashtable.NewLockFree[uint64, faceEntry](8*len(pts)+16,
		func(k uint64) uint64 { return k })
	// Seed the map with the bounding triangle's three faces.
	tb := s.tris[0]
	candidates := make([]uint64, 0, 3)
	for e := 0; e < 3; e++ {
		fk := faceKey(tb.V[e], tb.V[(e+1)%3])
		faces.Store(fk, faceEntry{0, NoTri})
		candidates = append(candidates, fk)
	}

	for {
		// Activation: evaluate each candidate face against the condition of
		// Algorithm 5 line 6. A face with only one triangle so far (and not
		// a hull face of t_b) must wait for its second triangle.
		fires := make([]fire, 0, len(candidates))
		for _, fk := range candidates {
			ent, ok := faces.Load(fk)
			if !ok {
				continue
			}
			t0, t1 := ent.t0, ent.t1
			if t1 == NoTri && !s.isBoundingEdge(fk) {
				continue // waiting for the second incident triangle
			}
			m0, m1 := s.minE(t0), s.minE(t1)
			switch {
			case m0 < m1:
				fires = append(fires, fire{fk, t0, t1})
			case m1 < m0:
				fires = append(fires, fire{fk, t1, t0})
			}
		}
		if len(fires) == 0 {
			break
		}
		s.stats.Rounds++

		// Phase A (parallel, read-only): compute every new triangle's data.
		newTris := make([]Tri, len(fires))
		newDepth := make([]int32, len(fires))
		var tests atomic.Int64
		// Grain 1: each fire is a rip-and-tent retriangulation whose cost
		// varies with local geometry, so let stealing balance them. (The
		// block count tracks the scheduler's chunksPerWorker cap — now
		// 16·P — so big rounds split finer than they used to for free.)
		preds := make([]geom.PredicateStats, parallel.NumBlocks(len(fires), 1))
		parallel.BlocksN(0, len(fires), len(preds), func(bi, lo, hi int) {
			pred := &preds[bi]
			var local int64
			for k := lo; k < hi; k++ {
				f := fires[k]
				v := s.minE(f.t)
				tri, tc := s.newTriData(f.to, f.fk, f.t, v, pred)
				local += tc
				newTris[k] = tri
				d := s.depth[f.t] + 1
				if f.to != NoTri && s.depth[f.to]+1 > d {
					d = s.depth[f.to] + 1
				}
				newDepth[k] = d
			}
			tests.Add(local)
		})
		s.stats.InCircleTests += tests.Load()
		for i := range preds {
			s.pred.Merge(preds[i])
		}

		// Phase B (sequential append, parallel map update): assign ids and
		// install the new triangles into the face map.
		base := int32(len(s.tris))
		s.tris = append(s.tris, newTris...)
		s.depth = append(s.depth, newDepth...)
		s.stats.TrianglesCreated += int64(len(fires))

		nextCand := make([][]uint64, parallel.NumBlocks(len(fires), 1))
		parallel.BlocksN(0, len(fires), len(nextCand), func(ci, lo, hi int) {
			var local []uint64
			for k := lo; k < hi; k++ {
				f := fires[k]
				id := base + int32(k)
				v := newTris[k].V
				// The ripped face now borders the new triangle instead of t.
				faces.Update(f.fk, func(old faceEntry, ok bool) faceEntry {
					if old.t0 == f.t {
						old.t0 = id
					} else {
						old.t1 = id
					}
					return old
				})
				local = append(local, f.fk)
				// Register the two new faces of t'.
				a, b := faceEnds(f.fk)
				apex := v[0] + v[1] + v[2] - a - b
				for _, fk2 := range [2]uint64{faceKey(a, apex), faceKey(b, apex)} {
					faces.Update(fk2, func(old faceEntry, ok bool) faceEntry {
						if !ok {
							return faceEntry{id, NoTri}
						}
						old.t1 = id
						return old
					})
					local = append(local, fk2)
				}
			}
			nextCand[ci] = local
		})
		// Deduplicate candidates (a face may be touched from both sides).
		var merged []uint64
		for _, c := range nextCand {
			merged = append(merged, c...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		candidates = merged[:0]
		for i, fk := range merged {
			if i == 0 || fk != merged[i-1] {
				candidates = append(candidates, fk)
			}
		}
	}
	return s.finish()
}

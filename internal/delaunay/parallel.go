package delaunay

import (
	"repro/internal/geom"
	"repro/internal/hashtable"
)

// This file is the parallel round engine of Algorithm 5 (ParIncrementalDT).
// Each round runs four fully parallel, steady-state-allocation-free phases
// over the arena in arena.go (see DESIGN.md in this directory for the
// correctness arguments):
//
//   Activation  — a parallel blocked filter over the candidate faces
//                 (previously a serial loop): evaluate Algorithm 5's line-6
//                 condition per face into dense scratch, then PackInto the
//                 fire list.
//   Phase A     — read-only: compute every new triangle's corners and
//                 encroacher list (carved from per-block E sub-arenas).
//   Phase B     — install the new triangles into the face map and record
//                 each fire's three touched faces in dense emission slots;
//                 every touch stamps the face with (round, min fire index)
//                 through the same face-map update (the CAS-claimed
//                 round-stamp).
//   Emission    — the sort-free candidate dedup: a face touched from both
//                 sides this round carries the smaller toucher's fire index
//                 in its claim stamp, so exactly the slot of that winner
//                 survives the flag pass, and PackInto yields next round's
//                 candidate list with no sort and no merge. Min over
//                 touchers is schedule-independent, so the candidate order
//                 — and with it triangle ids and the whole output — is
//                 deterministic.

// faceEntry is a face's up-to-two incident triangles plus its dedup stamp
// in the concurrent face map. It encodes into two 64-bit words, so the
// face map is a hashtable.LockFreeInline and winning updates allocate
// nothing.
type faceEntry struct {
	t0, t1 int32 // incident triangles (t1 == NoTri: waiting or hull face)
	round  int32 // last round this face was touched
	claim  int32 // smallest fire index that touched it in that round
}

//
//ridt:noalloc
func encFace(e faceEntry) (uint64, uint64) {
	return uint64(uint32(e.t0))<<32 | uint64(uint32(e.t1)),
		uint64(uint32(e.round))<<32 | uint64(uint32(e.claim))
}

//
//ridt:noalloc
func decFace(a, b uint64) faceEntry {
	return faceEntry{
		t0: int32(uint32(a >> 32)), t1: int32(uint32(a)),
		round: int32(uint32(b >> 32)), claim: int32(uint32(b)),
	}
}

// fire describes one ReplaceBoundary scheduled for the current round: face
// fk is ripped from the t side (whose earliest encroacher is the new point)
// with to on the other side (NoTri for hull faces of the bounding triangle).
type fire struct {
	fk    uint64
	t, to int32
}

// Grains of the cheap per-element phases; the heavy retriangulation phases
// run at grain 1 (each fire's cost varies with local geometry, so the
// stealing scheduler balances them).
const (
	activationGrain = 64 // face-map load + two minE reads per candidate
	emissionGrain   = 64 // face-map load per touched-face slot
)

// ParTriangulate runs Algorithm 5 (ParIncrementalDT): in every round, all
// faces f = (to, t) with min(E(t)) < min(E(to)) run
// ReplaceBoundary(to, f, t, min(E(t))) in parallel. By Lemma 4.2 the calls
// are exactly those of the sequential algorithm, so the result is the same
// triangulation; the number of rounds is the triangle dependence depth
// D(G_T(V)) = O(d log n) whp (Theorem 4.3).
func ParTriangulate(pts []geom.Point) *Mesh {
	e := newRoundEngine(pts)
	for e.step() {
	}
	return e.s.finish()
}

// roundEngine holds the state threaded between rounds. It is a separate
// type (rather than locals in ParTriangulate) so the tests and benchmarks
// can drive and measure single rounds.
type roundEngine struct {
	s     *store
	faces *hashtable.LockFreeInline[uint64, faceEntry]
	ar    *roundArena
	cand  []uint64 // current candidate faces, deduplicated
	round int32
	rb    rollbackState // armed per round; see cancel.go

	// boundaryHook, when set, is called at each round's phase boundaries
	// (the stage* constants in cancel.go). Test-only: the rollback and
	// fault-injection tests use it to cancel or crash at exact points.
	boundaryHook func(stage int)
}

func newRoundEngine(pts []geom.Point) *roundEngine {
	s := newStore(pts)
	// Reserve the triangle log up front: the run creates ~O(n) triangles
	// (Theorem 4.5's accounting), so the append path almost never regrows.
	if cap(s.tris) < 4*s.n+16 {
		tris := make([]Tri, len(s.tris), 4*s.n+16)
		copy(tris, s.tris)
		s.tris = tris
		depth := make([]int32, len(s.depth), 4*s.n+16)
		copy(depth, s.depth)
		s.depth = depth
	}
	// The face map is the hot path: a lock-free table with seqlock inline
	// value slots (see hashtable/DESIGN.md), so the attachment storm of a
	// round performs no allocation. The identity hasher suffices: the
	// table applies its own finalizing Mix64 to spread packed face keys.
	// Pre-sizing covers the common case; growth is cooperative if a
	// workload overflows it.
	faces := hashtable.NewLockFreeInline[uint64, faceEntry](8*len(pts)+16,
		func(k uint64) uint64 { return k }, encFace, decFace)
	e := &roundEngine{s: s, faces: faces, ar: newRoundArena()}
	// Seed the map with the bounding triangle's three faces.
	tb := s.tris[0]
	for i := 0; i < 3; i++ {
		fk := faceKey(tb.V[i], tb.V[(i+1)%3])
		faces.Store(fk, faceEntry{t0: 0, t1: NoTri})
		e.cand = append(e.cand, fk)
	}
	return e
}

// attachNewFace registers triangle id on new face fk2 and stamps the
// face's (round, claim-min) dedup claim through the same update. Of the
// up-to-two fires that touch a face in one round, the face ends up
// carrying the smaller fire index, no matter the interleaving — min is
// commutative — which is what makes the sort-free dedup deterministic.
// Factored out of step so the contention race test can drive it directly.
//
//ridt:noalloc
func attachNewFace(faces *hashtable.LockFreeInline[uint64, faceEntry], fk2 uint64, id, round, k int32) {
	//ridtvet:ignore noalloc the closure does not escape Update and stays on the stack (round allocation pin)
	faces.Update(fk2, func(old faceEntry, ok bool) faceEntry {
		if !ok {
			return faceEntry{t0: id, t1: NoTri, round: round, claim: k}
		}
		old.t1 = id
		if old.round == round {
			if k < old.claim {
				old.claim = k
			}
		} else {
			old.round, old.claim = round, k
		}
		return old
	})
}

// step runs one round; it reports false (and does nothing further) when no
// face activates, i.e. the triangulation is complete. It is stepCancel
// (cancel.go) with the never-canceled token: identical phases, zero
// cancellation cost beyond a nil check per phase boundary.
//
//ridt:noalloc
func (e *roundEngine) step() bool {
	more, _ := e.stepCancel(nil)
	return more
}

package delaunay

import (
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/hashtable"
	"repro/internal/parallel"
)

// This file is the parallel round engine of Algorithm 5 (ParIncrementalDT).
// Each round runs four fully parallel, steady-state-allocation-free phases
// over the arena in arena.go (see DESIGN.md in this directory for the
// correctness arguments):
//
//   Activation  — a parallel blocked filter over the candidate faces
//                 (previously a serial loop): evaluate Algorithm 5's line-6
//                 condition per face into dense scratch, then PackInto the
//                 fire list.
//   Phase A     — read-only: compute every new triangle's corners and
//                 encroacher list (carved from per-block E sub-arenas).
//   Phase B     — install the new triangles into the face map and record
//                 each fire's three touched faces in dense emission slots;
//                 every touch stamps the face with (round, min fire index)
//                 through the same face-map update (the CAS-claimed
//                 round-stamp).
//   Emission    — the sort-free candidate dedup: a face touched from both
//                 sides this round carries the smaller toucher's fire index
//                 in its claim stamp, so exactly the slot of that winner
//                 survives the flag pass, and PackInto yields next round's
//                 candidate list with no sort and no merge. Min over
//                 touchers is schedule-independent, so the candidate order
//                 — and with it triangle ids and the whole output — is
//                 deterministic.

// faceEntry is a face's up-to-two incident triangles plus its dedup stamp
// in the concurrent face map. It encodes into two 64-bit words, so the
// face map is a hashtable.LockFreeInline and winning updates allocate
// nothing.
type faceEntry struct {
	t0, t1 int32 // incident triangles (t1 == NoTri: waiting or hull face)
	round  int32 // last round this face was touched
	claim  int32 // smallest fire index that touched it in that round
}

//
//ridt:noalloc
func encFace(e faceEntry) (uint64, uint64) {
	return uint64(uint32(e.t0))<<32 | uint64(uint32(e.t1)),
		uint64(uint32(e.round))<<32 | uint64(uint32(e.claim))
}

//
//ridt:noalloc
func decFace(a, b uint64) faceEntry {
	return faceEntry{
		t0: int32(uint32(a >> 32)), t1: int32(uint32(a)),
		round: int32(uint32(b >> 32)), claim: int32(uint32(b)),
	}
}

// fire describes one ReplaceBoundary scheduled for the current round: face
// fk is ripped from the t side (whose earliest encroacher is the new point)
// with to on the other side (NoTri for hull faces of the bounding triangle).
type fire struct {
	fk    uint64
	t, to int32
}

// Grains of the cheap per-element phases; the heavy retriangulation phases
// run at grain 1 (each fire's cost varies with local geometry, so the
// stealing scheduler balances them).
const (
	activationGrain = 64 // face-map load + two minE reads per candidate
	emissionGrain   = 64 // face-map load per touched-face slot
)

// ParTriangulate runs Algorithm 5 (ParIncrementalDT): in every round, all
// faces f = (to, t) with min(E(t)) < min(E(to)) run
// ReplaceBoundary(to, f, t, min(E(t))) in parallel. By Lemma 4.2 the calls
// are exactly those of the sequential algorithm, so the result is the same
// triangulation; the number of rounds is the triangle dependence depth
// D(G_T(V)) = O(d log n) whp (Theorem 4.3).
func ParTriangulate(pts []geom.Point) *Mesh {
	e := newRoundEngine(pts)
	for e.step() {
	}
	return e.s.finish()
}

// roundEngine holds the state threaded between rounds. It is a separate
// type (rather than locals in ParTriangulate) so the tests and benchmarks
// can drive and measure single rounds.
type roundEngine struct {
	s     *store
	faces *hashtable.LockFreeInline[uint64, faceEntry]
	ar    *roundArena
	cand  []uint64 // current candidate faces, deduplicated
	round int32
}

func newRoundEngine(pts []geom.Point) *roundEngine {
	s := newStore(pts)
	// Reserve the triangle log up front: the run creates ~O(n) triangles
	// (Theorem 4.5's accounting), so the append path almost never regrows.
	if cap(s.tris) < 4*s.n+16 {
		tris := make([]Tri, len(s.tris), 4*s.n+16)
		copy(tris, s.tris)
		s.tris = tris
		depth := make([]int32, len(s.depth), 4*s.n+16)
		copy(depth, s.depth)
		s.depth = depth
	}
	// The face map is the hot path: a lock-free table with seqlock inline
	// value slots (see hashtable/DESIGN.md), so the attachment storm of a
	// round performs no allocation. The identity hasher suffices: the
	// table applies its own finalizing Mix64 to spread packed face keys.
	// Pre-sizing covers the common case; growth is cooperative if a
	// workload overflows it.
	faces := hashtable.NewLockFreeInline[uint64, faceEntry](8*len(pts)+16,
		func(k uint64) uint64 { return k }, encFace, decFace)
	e := &roundEngine{s: s, faces: faces, ar: newRoundArena()}
	// Seed the map with the bounding triangle's three faces.
	tb := s.tris[0]
	for i := 0; i < 3; i++ {
		fk := faceKey(tb.V[i], tb.V[(i+1)%3])
		faces.Store(fk, faceEntry{t0: 0, t1: NoTri})
		e.cand = append(e.cand, fk)
	}
	return e
}

// attachNewFace registers triangle id on new face fk2 and stamps the
// face's (round, claim-min) dedup claim through the same update. Of the
// up-to-two fires that touch a face in one round, the face ends up
// carrying the smaller fire index, no matter the interleaving — min is
// commutative — which is what makes the sort-free dedup deterministic.
// Factored out of step so the contention race test can drive it directly.
//
//ridt:noalloc
func attachNewFace(faces *hashtable.LockFreeInline[uint64, faceEntry], fk2 uint64, id, round, k int32) {
	//ridtvet:ignore noalloc the closure does not escape Update and stays on the stack (round allocation pin)
	faces.Update(fk2, func(old faceEntry, ok bool) faceEntry {
		if !ok {
			return faceEntry{t0: id, t1: NoTri, round: round, claim: k}
		}
		old.t1 = id
		if old.round == round {
			if k < old.claim {
				old.claim = k
			}
		} else {
			old.round, old.claim = round, k
		}
		return old
	})
}

// step runs one round; it reports false (and does nothing further) when no
// face activates, i.e. the triangulation is complete.
//
//ridt:noalloc
func (e *roundEngine) step() bool {
	s, ar, faces := e.s, e.ar, e.faces

	// Activation: evaluate each candidate face against the condition of
	// Algorithm 5 line 6, in parallel, into dense scratch. A face with
	// only one triangle so far (and not a hull face of t_b) must wait for
	// its second incident triangle.
	nc := len(e.cand)
	ar.evalF = growSlice(ar.evalF, nc)
	ar.evalOK = growSlice(ar.evalOK, nc)
	cand, evalF, evalOK := e.cand, ar.evalF, ar.evalOK
	//ridtvet:ignore noalloc one activation closure per round, O(1) against O(m) work
	parallel.Blocks(0, nc, activationGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			evalOK[i] = false
			ent, ok := faces.Load(cand[i])
			if !ok {
				continue
			}
			if ent.t1 == NoTri && !s.isBoundingEdge(cand[i]) {
				continue // waiting for the second incident triangle
			}
			m0, m1 := s.minE(ent.t0), s.minE(ent.t1)
			switch {
			case m0 < m1:
				evalF[i] = fire{cand[i], ent.t0, ent.t1}
				evalOK[i] = true
			case m1 < m0:
				evalF[i] = fire{cand[i], ent.t1, ent.t0}
				evalOK[i] = true
			}
		}
	})
	ar.fires, ar.counts = parallel.PackInto(ar.fires, evalF,
		//ridtvet:ignore noalloc one pack predicate per round, O(1) against O(m) work
		func(i int) bool { return evalOK[i] }, ar.counts)
	fires := ar.fires
	m := len(fires)
	if m == 0 {
		return false
	}
	e.round++
	round := e.round
	s.stats.Rounds++

	// Phase A (parallel, read-only): compute every new triangle's data.
	// Grain 1: each fire is a rip-and-tent retriangulation whose cost
	// varies with local geometry, so let stealing balance them.
	nb := parallel.NumBlocks(m, 1)
	ar.newTris = growSlice(ar.newTris, m)
	ar.newDepth = growSlice(ar.newDepth, m)
	ar.preds = growSlice(ar.preds, nb)
	for i := range ar.preds {
		ar.preds[i] = geom.PredicateStats{}
	}
	newTris, newDepth, preds := ar.newTris, ar.newDepth, ar.preds
	earenas := ar.eArenas(nb)
	var tests atomic.Int64
	//ridtvet:ignore noalloc one Phase A closure per round, O(1) against O(m) work
	parallel.BlocksN(0, m, nb, func(bi, lo, hi int) {
		pred := &preds[bi]
		ea := earenas[bi]
		var local int64
		for k := lo; k < hi; k++ {
			f := fires[k]
			v := s.minE(f.t)
			need := len(s.tris[f.t].E)
			if f.to != NoTri {
				need += len(s.tris[f.to].E)
			}
			buf := ea.take(need)
			tri, tc := s.newTriData(f.to, f.fk, f.t, v, pred, buf)
			ea.commit(len(tri.E))
			local += tc
			newTris[k] = tri
			d := s.depth[f.t] + 1
			if f.to != NoTri && s.depth[f.to]+1 > d {
				d = s.depth[f.to] + 1
			}
			newDepth[k] = d
		}
		tests.Add(local)
	})
	s.stats.InCircleTests += tests.Load()
	for i := range preds {
		s.pred.Merge(preds[i])
	}

	// Phase B (sequential append, parallel map update): assign ids,
	// install the new triangles into the face map, and record each fire's
	// three touched faces in its dense emission slots. Every update stamps
	// the face with (round, min fire index) — the round-stamp claim that
	// replaces the sorted merge: of the up-to-two fires that touch a face
	// in one round, exactly the one whose index the face ends up carrying
	// emits it as a candidate.
	base := int32(len(s.tris))
	//ridtvet:ignore noalloc the triangle log is reserved to its final size in newRoundEngine; the append almost never regrows
	s.tris = append(s.tris, newTris...)
	//ridtvet:ignore noalloc reserved alongside the triangle log in newRoundEngine
	s.depth = append(s.depth, newDepth...)
	s.stats.TrianglesCreated += int64(m)

	ar.dense = growSlice(ar.dense, 3*m)
	dense := ar.dense
	//ridtvet:ignore noalloc one Phase B closure per round, O(1) against O(m) work
	parallel.BlocksN(0, m, nb, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			f := fires[k]
			id := base + int32(k)
			k32 := int32(k)
			v := newTris[k].V
			// The ripped face now borders the new triangle instead of t.
			// It fired, so it already has both triangles and cannot be
			// touched as a new face this round: this fire is its only
			// toucher and wins its stamp outright.
			//ridtvet:ignore noalloc the closure does not escape Update and stays on the stack (round allocation pin)
			faces.Update(f.fk, func(old faceEntry, ok bool) faceEntry {
				if old.t0 == f.t {
					old.t0 = id
				} else {
					old.t1 = id
				}
				old.round, old.claim = round, k32
				return old
			})
			dense[3*k] = f.fk
			// Register the two new faces of t'. A new face may be touched
			// by the fire on its other side in the same round (created
			// there, attached here, in either order) — the claim-min stamp
			// picks the winner deterministically.
			a, b := faceEnds(f.fk)
			apex := v[0] + v[1] + v[2] - a - b
			nf0, nf1 := faceKey(a, apex), faceKey(b, apex)
			dense[3*k+1], dense[3*k+2] = nf0, nf1
			attachNewFace(faces, nf0, id, round, k32)
			attachNewFace(faces, nf1, id, round, k32)
		}
	})

	// Emission: keep exactly each touched face's winning slot. The flag
	// pass linearizes after Phase B's barrier, so every load observes the
	// face's final (round, claim) stamp for this round.
	ar.keep = growSlice(ar.keep, 3*m)
	keep := ar.keep
	//ridtvet:ignore noalloc one emission closure per round, O(1) against O(m) work
	parallel.Blocks(0, 3*m, emissionGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ent, _ := faces.Load(dense[i])
			keep[i] = ent.round == round && ent.claim == int32(i/3)
		}
	})
	next, counts := parallel.PackInto(ar.cand, dense,
		//ridtvet:ignore noalloc one pack predicate per round, O(1) against O(m) work
		func(i int) bool { return keep[i] }, ar.counts)
	ar.counts = counts
	ar.cand = e.cand // recycle the old candidate buffer
	e.cand = next
	return true
}

package delaunay

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/hashtable"
)

// Checkpoint capture and restore for a live triangulation.
//
// A BuildState is everything the round engine needs to resume insertion
// from a committed round boundary and produce the byte-identical rest of
// the run: the published view's data (points, triangle log with
// encroacher lists, final-id watermark) plus the two pieces of engine
// state that are NOT derivable from the view alone —
//
//   - the candidate face list: the fire set of a round is a pure function
//     of (face map, E lists) over the candidates, but the fire ORDER — and
//     with it every later triangle id — follows candidate order, so the
//     determinism contract requires the exact list, not a reconstruction;
//   - the face map: which up-to-two alive triangles are incident to each
//     face of the current (half-built) triangulation. Aliveness is not
//     recorded in the append-only triangle log (the log keeps ripped
//     triangles forever, by design), so the map is serialized as the face
//     table's epoch snapshot rather than recomputed.
//
// Why a committed round boundary is a sufficient restore point at all is
// the monotone-final invariant (view.go, DESIGN.md): committed triangles
// are immutable, a committed round's effects can never be rolled back, and
// the per-round final sets grow monotonically toward exactly finish()'s
// selection. The boundary state therefore IS a prefix of the one
// deterministic run — resuming from it replays the identical remainder.
//
// CaptureState must be called by the publisher between Step calls (the
// same quiesced point AdvanceEpoch runs at). It copies only what later
// rounds mutate — the face map, the candidate list, the counters — and
// shares the append-only storage (points, triangle-log prefix, depths,
// final ids) with the engine: committed prefixes are immutable, so a
// serializer may read them from another goroutine while the build runs.

// FaceRec is one face-map entry in captured form: the packed face key and
// the entry's two inline value words exactly as the lock-free table
// stores them (incident triangles + dedup stamp). The words are opaque to
// serializers; ResumeLive decodes and validates them.
type FaceRec struct {
	Key    uint64
	W0, W1 uint64
}

// BuildState is a resumable snapshot of a triangulation under
// construction, captured at a committed round boundary. The slice fields
// referencing engine storage (Pts, Tris, Depth, Final) are shared and
// must be treated as immutable; Faces and Cand are copies owned by the
// state.
type BuildState struct {
	Round int32
	Done  bool
	N     int          // input points (excluding the 3 bounding corners)
	Pts   []geom.Point // input points then the 3 bounding corners
	Tris  []Tri        // committed triangle-log prefix
	Depth []int32      // dependence depth per triangle
	Final []int32      // ids of final triangles, ascending
	Faces []FaceRec    // face-map epoch snapshot at the boundary
	Cand  []uint64     // candidate faces for the next round, in order
	Stats Stats
	Pred  geom.PredicateStats
}

// CaptureState snapshots the live build for checkpointing. It must be
// called from the publisher goroutine between Step calls — the committed
// round boundary, where face-map mutators are quiesced. The capture cost
// is O(faces + candidates); the shared slices make the rest O(1).
func (lv *Live) CaptureState() *BuildState {
	e := lv.e
	s := e.s
	st := &BuildState{
		Round: e.round,
		Done:  lv.done,
		N:     s.n,
		Pts:   s.pts[:len(s.pts):len(s.pts)],
		Tris:  s.tris[:len(s.tris):len(s.tris)],
		Depth: s.depth[:len(s.depth):len(s.depth)],
		Final: lv.final[:len(lv.final):len(lv.final)],
		Cand:  append([]uint64(nil), e.cand...),
		Stats: s.stats,
		Pred:  *s.pred,
	}
	snap := e.faces.Snapshot()
	st.Faces = make([]FaceRec, 0, snap.Len())
	snap.Range(func(k uint64, v faceEntry) bool {
		w0, w1 := encFace(v)
		st.Faces = append(st.Faces, FaceRec{Key: k, W0: w0, W1: w1})
		return true
	})
	snap.Close()
	return st
}

// Watermark identifies a committed prefix of the append-only build log:
// the round it was committed at and how far the triangle log and the
// final-id list reached. Because committed storage is append-only and
// immutable, a watermark taken at one boundary remains a valid prefix
// description of every later boundary of the same build — which is what
// lets an incremental checkpoint serialize only the suffix past it.
type Watermark struct {
	Round int32
	Tris  int // committed triangle-log length
	Final int // final-id count
}

// Watermark returns the committed-prefix watermark of a captured state.
func (st *BuildState) Watermark() Watermark {
	return Watermark{Round: st.Round, Tris: len(st.Tris), Final: len(st.Final)}
}

// BuildDelta is the increment between two committed boundaries of ONE
// build: the append-only suffix past Base (triangle log, depths, final
// ids — shared slices, immutable) plus the full mutable remainder (face
// map, candidate list, counters — copies, like BuildState's). Applied to
// a BuildState whose watermark equals Base, it reconstructs the exact
// later state; it carries no points (the base has them) and no prefix.
type BuildDelta struct {
	Round int32
	Done  bool
	N     int       // input points, repeated for structural cross-checks
	Base  Watermark // the committed prefix this delta extends
	Tris  []Tri     // triangle-log suffix past Base.Tris
	Depth []int32   // depth suffix, parallel to Tris
	Final []int32   // final-id suffix; ids in [Base.Tris, Base.Tris+len(Tris))
	Faces []FaceRec // full face-map snapshot at the later boundary
	Cand  []uint64  // full candidate list for the next round
	Stats Stats
	Pred  geom.PredicateStats
}

// DeltaSince slices the increment between since and st out of a captured
// state. Cost: O(1) shares for the append-only suffixes (they are
// sub-slices of st's shared storage), zero copies — the faces and
// candidates are re-shared from st, which already owns them. An encoder
// walking the result touches O(suffix + faces + candidates) data instead
// of the whole build, which is the point of an incremental checkpoint.
func (st *BuildState) DeltaSince(since Watermark) (*BuildDelta, error) {
	if since.Round < 0 || since.Tris < 1 || since.Final < 0 {
		return nil, fmt.Errorf("delaunay: delta base watermark %+v malformed", since)
	}
	if since.Round > st.Round || since.Tris > len(st.Tris) || since.Final > len(st.Final) {
		return nil, fmt.Errorf("delaunay: delta base watermark %+v ahead of state (round %d, %d tris, %d final)",
			since, st.Round, len(st.Tris), len(st.Final))
	}
	d := &BuildDelta{
		Round: st.Round,
		Done:  st.Done,
		N:     st.N,
		Base:  since,
		Tris:  st.Tris[since.Tris:len(st.Tris):len(st.Tris)],
		Depth: st.Depth[since.Tris:len(st.Depth):len(st.Depth)],
		Final: st.Final[since.Final:len(st.Final):len(st.Final)],
		Faces: st.Faces,
		Cand:  st.Cand,
		Stats: st.Stats,
		Pred:  st.Pred,
	}
	return d, d.Validate()
}

// CaptureDelta captures the live build as an increment over since — the
// watermark of the last committed checkpoint generation. Same call-site
// contract as CaptureState (publisher goroutine, between Steps); the cost
// is the mutable remainder (faces + candidates) plus O(1) suffix shares,
// independent of how much of the build lies below the watermark.
func (lv *Live) CaptureDelta(since Watermark) (*BuildDelta, error) {
	return lv.CaptureState().DeltaSince(since)
}

// Validate is the structural check for a delta in isolation (its base is
// not at hand): every constraint that must hold for ANY base matching the
// watermark. Cross-checks against a concrete base are ApplyDelta's job.
func (d *BuildDelta) Validate() error {
	if d.N < 0 || d.Round < 0 {
		return fmt.Errorf("delaunay: delta has negative n (%d) or round (%d)", d.N, d.Round)
	}
	if d.Base.Round < 0 || d.Base.Tris < 1 || d.Base.Final < 0 {
		return fmt.Errorf("delaunay: delta base watermark %+v malformed", d.Base)
	}
	if d.Round < d.Base.Round {
		return fmt.Errorf("delaunay: delta round %d behind its base round %d", d.Round, d.Base.Round)
	}
	if len(d.Depth) != len(d.Tris) {
		return fmt.Errorf("delaunay: %d depths for %d suffix triangles", len(d.Depth), len(d.Tris))
	}
	nt := d.Base.Tris + len(d.Tris)
	npts := int32(d.N + 3)
	for i, t := range d.Tris {
		for _, v := range t.V {
			if v < 0 || v >= npts {
				return fmt.Errorf("delaunay: suffix triangle %d corner %d out of range [0,%d)", i, v, npts)
			}
		}
		prev := int32(-1)
		for _, w := range t.E {
			if w <= prev || int(w) >= d.N {
				return fmt.Errorf("delaunay: suffix triangle %d has non-ascending or out-of-range encroacher %d", i, w)
			}
			prev = w
		}
	}
	// A triangle's final status is fixed at creation (E empty at creation,
	// final forever — the monotone-final invariant), so every final id
	// discovered after the base boundary names a SUFFIX triangle.
	prev := int32(d.Base.Tris) - 1
	for _, id := range d.Final {
		if id <= prev || int(id) >= nt {
			return fmt.Errorf("delaunay: delta final id %d non-ascending or outside the suffix [%d,%d)",
				id, d.Base.Tris, nt)
		}
		prev = id
	}
	for _, f := range d.Faces {
		a, b := faceEnds(f.Key)
		if a < 0 || b < 0 || a >= npts || b >= npts || a > b {
			return fmt.Errorf("delaunay: delta face key %#x has bad endpoints (%d, %d)", f.Key, a, b)
		}
		ent := decFace(f.W0, f.W1)
		if ent.t0 < 0 || int(ent.t0) >= nt {
			return fmt.Errorf("delaunay: delta face %#x references triangle %d out of range", f.Key, ent.t0)
		}
		if ent.t1 != NoTri && (ent.t1 < 0 || int(ent.t1) >= nt) {
			return fmt.Errorf("delaunay: delta face %#x references triangle %d out of range", f.Key, ent.t1)
		}
	}
	for _, k := range d.Cand {
		a, b := faceEnds(k)
		if a < 0 || b < 0 || a >= npts || b >= npts || a > b {
			return fmt.Errorf("delaunay: delta candidate key %#x has bad endpoints (%d, %d)", k, a, b)
		}
	}
	return nil
}

// ApplyDelta reconstructs the later boundary state from a base state and
// the delta captured against it. The base must match the delta's recorded
// watermark exactly; deeper identity (is this REALLY the same build, not
// merely one of the same shape?) is the caller's to verify — the
// checkpoint restorer binds chains with prefix digests and run metadata
// before calling this. The result owns fresh concatenated log arrays and
// shares Pts with the base; base and delta are not mutated.
func ApplyDelta(base *BuildState, d *BuildDelta) (*BuildState, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if base.N != d.N {
		return nil, fmt.Errorf("delaunay: delta for n=%d applied to base with n=%d", d.N, base.N)
	}
	if got := base.Watermark(); got != d.Base {
		return nil, fmt.Errorf("delaunay: delta base watermark %+v does not match base state %+v", d.Base, got)
	}
	if base.Done && len(d.Tris) > 0 {
		return nil, fmt.Errorf("delaunay: delta extends a completed base")
	}
	st := &BuildState{
		Round: d.Round,
		Done:  d.Done,
		N:     base.N,
		Pts:   base.Pts,
		Tris:  append(base.Tris[:len(base.Tris):len(base.Tris)], d.Tris...),
		Depth: append(base.Depth[:len(base.Depth):len(base.Depth)], d.Depth...),
		Final: append(base.Final[:len(base.Final):len(base.Final)], d.Final...),
		Faces: d.Faces,
		Cand:  d.Cand,
		Stats: d.Stats,
		Pred:  d.Pred,
	}
	return st, nil
}

// validate rejects states that cannot have come from a committed round
// boundary: every index must land in range before ResumeLive builds an
// engine around the data. Deep semantic checks (is this face map really
// the boundary face map?) are the determinism suite's job; validate's is
// memory safety and fail-fast on corrupt or adversarial input that got
// past a decoder.
func (st *BuildState) validate() error { return st.Validate() }

// Validate is the exported form of the structural check, for callers (the
// checkpoint restorer) that need to probe a decoded state for corruption
// without paying for a full engine reconstruction attempt.
func (st *BuildState) Validate() error {
	if st.N < 0 || st.Round < 0 {
		return fmt.Errorf("delaunay: state has negative n (%d) or round (%d)", st.N, st.Round)
	}
	if len(st.Pts) != st.N+3 {
		return fmt.Errorf("delaunay: state has %d points, want n+3 = %d", len(st.Pts), st.N+3)
	}
	nt := len(st.Tris)
	if nt < 1 {
		return fmt.Errorf("delaunay: state has no triangles (the bounding triangle always exists)")
	}
	if len(st.Depth) != nt {
		return fmt.Errorf("delaunay: %d depths for %d triangles", len(st.Depth), nt)
	}
	npts := int32(st.N + 3)
	for i, t := range st.Tris {
		for _, v := range t.V {
			if v < 0 || v >= npts {
				return fmt.Errorf("delaunay: triangle %d corner %d out of range [0,%d)", i, v, npts)
			}
		}
		prev := int32(-1)
		for _, w := range t.E {
			if w <= prev || int(w) >= st.N {
				return fmt.Errorf("delaunay: triangle %d has non-ascending or out-of-range encroacher %d", i, w)
			}
			prev = w
		}
	}
	prev := int32(-1)
	for _, id := range st.Final {
		if id <= prev || int(id) >= nt {
			return fmt.Errorf("delaunay: final id %d non-ascending or out of range [0,%d)", id, nt)
		}
		if len(st.Tris[id].E) != 0 {
			return fmt.Errorf("delaunay: final triangle %d has a non-empty encroacher list", id)
		}
		prev = id
	}
	for _, f := range st.Faces {
		a, b := faceEnds(f.Key)
		if a < 0 || b < 0 || a >= npts || b >= npts || a > b {
			return fmt.Errorf("delaunay: face key %#x has bad endpoints (%d, %d)", f.Key, a, b)
		}
		ent := decFace(f.W0, f.W1)
		if ent.t0 < 0 || int(ent.t0) >= nt {
			return fmt.Errorf("delaunay: face %#x references triangle %d out of range", f.Key, ent.t0)
		}
		if ent.t1 != NoTri && (ent.t1 < 0 || int(ent.t1) >= nt) {
			return fmt.Errorf("delaunay: face %#x references triangle %d out of range", f.Key, ent.t1)
		}
	}
	for _, k := range st.Cand {
		a, b := faceEnds(k)
		if a < 0 || b < 0 || a >= npts || b >= npts || a > b {
			return fmt.Errorf("delaunay: candidate key %#x has bad endpoints (%d, %d)", k, a, b)
		}
	}
	return nil
}

// ResumeLive reconstructs a live triangulation from a captured (or
// decoded) state and publishes the restored view. The resumed build steps
// from the checkpointed round and — by the determinism contract — emits
// exactly the triangles the uninterrupted run would have, so the final
// mesh is identical. The restored publication cell continues the
// pre-crash epoch numbering (parallel.Epoch.PublishAt), and the face
// map's table epoch is re-advanced to the restored round so snapshot
// epochs keep matching publication rounds at the boundaries.
//
// ResumeLive copies the state's mutable containers (the triangle log,
// depths, candidates, final ids) into engine-owned storage; Pts and the
// per-triangle E arrays are shared with the state, which must not mutate
// them afterward (a decoded state never does; a captured one is immutable
// by construction).
func ResumeLive(st *BuildState) (*Live, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	s := &store{pts: st.Pts, n: st.N, pred: &geom.PredicateStats{}}
	s.stats = st.Stats
	*s.pred = st.Pred
	resCap := 4*s.n + 16
	if len(st.Tris) > resCap {
		resCap = len(st.Tris)
	}
	s.tris = append(make([]Tri, 0, resCap), st.Tris...)
	s.depth = append(make([]int32, 0, resCap), st.Depth...)

	faces := hashtable.NewLockFreeInline[uint64, faceEntry](8*st.N+16,
		func(k uint64) uint64 { return k }, encFace, decFace)
	for _, f := range st.Faces {
		faces.Store(f.Key, decFace(f.W0, f.W1))
	}
	for faces.Epoch() < uint64(st.Round) {
		faces.AdvanceEpoch()
	}

	e := &roundEngine{
		s:     s,
		faces: faces,
		ar:    newRoundArena(),
		cand:  append([]uint64(nil), st.Cand...),
		round: st.Round,
	}
	lv := &Live{
		e:       e,
		scanned: len(s.tris),
		final:   append([]int32(nil), st.Final...),
		done:    st.Done,
	}
	lv.pub.PublishAt(buildView(s, e.round, lv.final, lv.done), uint64(e.round)+1)
	return lv, nil
}

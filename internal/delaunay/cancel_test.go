package delaunay

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// meshEqual fails the test unless the two meshes are identical in
// triangles and stats — the determinism contract cancellation and
// rollback must preserve.
func meshEqual(t *testing.T, tag string, got, want *Mesh) {
	t.Helper()
	if len(got.Triangles) != len(want.Triangles) {
		t.Fatalf("%s: %d triangles, want %d", tag, len(got.Triangles), len(want.Triangles))
	}
	for i := range want.Triangles {
		if got.Triangles[i].V != want.Triangles[i].V {
			t.Fatalf("%s: triangle %d = %v, want %v", tag, i, got.Triangles[i].V, want.Triangles[i].V)
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", tag, got.Stats, want.Stats)
	}
}

// drive steps the engine to completion with a nil token and returns the
// finished mesh.
func drive(t *testing.T, e *roundEngine) *Mesh {
	t.Helper()
	for {
		more, err := e.stepCancel(nil)
		if err != nil {
			t.Fatalf("nil-token stepCancel = %v", err)
		}
		if !more {
			return e.s.finish()
		}
	}
}

func TestStepCancelCleanAbortAndResume(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(7), 1200))
	want := ParTriangulate(pts)

	e := newRoundEngine(pts)
	for i := 0; i < 3; i++ {
		if more, err := e.stepCancel(nil); err != nil || !more {
			t.Fatalf("warmup round %d: more=%v err=%v", i, more, err)
		}
	}
	var c parallel.Canceler
	c.Cancel()
	roundsBefore, trisBefore := e.round, len(e.s.tris)
	if _, err := e.stepCancel(&c); !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("canceled stepCancel = %v, want ErrCanceled", err)
	}
	if e.round != roundsBefore || len(e.s.tris) != trisBefore {
		t.Fatalf("clean abort mutated state: round %d→%d, tris %d→%d",
			roundsBefore, e.round, trisBefore, len(e.s.tris))
	}
	meshEqual(t, "resume after clean abort", drive(t, e), want)
}

// TestCancelAtBoundariesRollsBackAndResumes cancels at each armed phase
// boundary of a mid-run round. The engine must roll the round back
// entirely (round counter, triangle log, stats) and, resumed, produce the
// identical mesh — the retried round re-derives the same fires.
func TestCancelAtBoundariesRollsBackAndResumes(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(11), 1500))
	want := ParTriangulate(pts)
	for _, stage := range []int{stagePostA, stagePostB} {
		e := newRoundEngine(pts)
		var c parallel.Canceler
		fired := false
		e.boundaryHook = func(st int) {
			if st == stage && e.round == 4 && !fired {
				fired = true
				c.Cancel()
			}
		}
		var err error
		for {
			var more bool
			more, err = e.stepCancel(&c)
			if err != nil || !more {
				break
			}
		}
		if !fired {
			t.Fatalf("stage %d: run ended before round 4", stage)
		}
		if !errors.Is(err, parallel.ErrCanceled) {
			t.Fatalf("stage %d: err = %v, want ErrCanceled", stage, err)
		}
		if e.round != 3 {
			t.Fatalf("stage %d: round = %d after rollback, want 3", stage, e.round)
		}
		if e.rb.dirty {
			t.Fatalf("stage %d: engine still dirty after eager rollback", stage)
		}
		e.boundaryHook = nil
		got := drive(t, e)
		meshEqual(t, "resume after boundary cancel", got, want)
		if err := CheckDelaunay(got); err != nil {
			t.Fatalf("stage %d: resumed mesh invalid: %v", stage, err)
		}
	}
}

// TestPanicMidRoundLazyRollback is the delaunay half of the panic-safety
// satellite: a panic escaping a round (here from the post-B boundary,
// with the face map already mutated) leaves the engine dirty, and the
// next use repairs it — scratch is reset, not poisoned — yielding the
// identical mesh.
func TestPanicMidRoundLazyRollback(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(13), 1500))
	want := ParTriangulate(pts)
	for _, stage := range []int{stageRoundTop, stagePostA, stagePostB} {
		e := newRoundEngine(pts)
		fired := false
		e.boundaryHook = func(st int) {
			if st == stage && e.round >= 2 && !fired {
				fired = true
				panic("injected phase crash")
			}
		}
		func() {
			defer func() {
				if r := recover(); r != "injected phase crash" {
					t.Fatalf("stage %d: recovered %v", stage, r)
				}
			}()
			for {
				if more, err := e.stepCancel(nil); err != nil || !more {
					t.Fatalf("stage %d: run ended (more=%v err=%v) before the hook fired", stage, more, err)
				}
			}
		}()
		if stage != stageRoundTop && !e.rb.dirty {
			t.Fatalf("stage %d: engine not dirty after mid-round panic", stage)
		}
		e.boundaryHook = nil
		got := drive(t, e) // first step repairs lazily, then the run completes
		meshEqual(t, "resume after recovered panic", got, want)
	}
}

// TestCancelRaceResume races an asynchronous cancel against a full run:
// whatever phase the token lands in — including mid-loop with a partial
// fire subset installed — resuming must reach the identical mesh.
func TestCancelRaceResume(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(17), 4000))
	want := ParTriangulate(pts)
	for trial := 0; trial < 8; trial++ {
		e := newRoundEngine(pts)
		var c parallel.Canceler
		go func(d time.Duration) {
			time.Sleep(d)
			c.Cancel()
		}(time.Duration(trial*150) * time.Microsecond)
		var sawCancel bool
		for {
			more, err := e.stepCancel(&c)
			if err != nil {
				sawCancel = true
				break
			}
			if !more {
				break
			}
		}
		_ = sawCancel // timing-dependent; both outcomes must converge below
		meshEqual(t, "resume after racing cancel", drive(t, e), want)
	}
}

func TestParTriangulateCancelAndCtx(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(23), 800))
	want := ParTriangulate(pts)

	if m, err := ParTriangulateCancel(pts, nil); err != nil {
		t.Fatalf("nil-token ParTriangulateCancel err = %v", err)
	} else {
		meshEqual(t, "nil token", m, want)
	}

	var c parallel.Canceler
	c.Cancel()
	if m, err := ParTriangulateCancel(pts, &c); !errors.Is(err, parallel.ErrCanceled) || m != nil {
		t.Fatalf("pre-canceled: mesh=%v err=%v, want nil+ErrCanceled", m, err)
	}

	if m, err := ParTriangulateCtx(context.Background(), pts); err != nil {
		t.Fatalf("background ctx err = %v", err)
	} else {
		meshEqual(t, "background ctx", m, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, err := ParTriangulateCtx(ctx, pts); !errors.Is(err, parallel.ErrCanceled) || m != nil {
		t.Fatalf("done ctx: mesh=%v err=%v, want nil+ErrCanceled", m, err)
	}
}

package delaunay

import (
	"fmt"

	"repro/internal/geom"
)

// CheckDelaunay verifies the Delaunay property by brute force: no input
// point lies strictly inside the circumcircle of any final triangle whose
// corners are all input points. O(T·n); intended for tests.
func CheckDelaunay(m *Mesh) error {
	for _, t := range m.InnerTriangles() {
		a, b, c := m.Points[t.V[0]], m.Points[t.V[1]], m.Points[t.V[2]]
		for i := 0; i < m.N; i++ {
			if int32(i) == t.V[0] || int32(i) == t.V[1] || int32(i) == t.V[2] {
				continue
			}
			if geom.InCircle(a, b, c, m.Points[i]) > 0 {
				return fmt.Errorf("delaunay violated: point %d inside circumcircle of triangle %v", i, t.V)
			}
		}
	}
	return nil
}

// CheckConsistency verifies structural invariants of the final mesh:
//   - exactly 2(n+3) - 5 = 2n+1 triangles (Euler's formula for a
//     triangulation of n+3 points whose convex hull is the 3 bounding
//     corners), for n >= 1;
//   - every edge is incident to exactly two triangles, except the three
//     bounding-triangle edges which have exactly one;
//   - every triangle is counterclockwise.
func CheckConsistency(m *Mesh) error {
	n := m.N
	if n >= 1 {
		want := 2*n + 1
		if len(m.Triangles) != want {
			return fmt.Errorf("triangle count = %d, want %d", len(m.Triangles), want)
		}
	}
	faceCount := make(map[uint64]int)
	for _, t := range m.Triangles {
		if geom.Orient2D(m.Points[t.V[0]], m.Points[t.V[1]], m.Points[t.V[2]]) <= 0 {
			return fmt.Errorf("triangle %v is not counterclockwise", t.V)
		}
		for e := 0; e < 3; e++ {
			faceCount[faceKey(t.V[e], t.V[(e+1)%3])]++
		}
	}
	s := &store{n: n}
	for fk, c := range faceCount {
		isBound := s.isBoundingEdge(fk)
		switch {
		case isBound && c != 1:
			return fmt.Errorf("bounding edge %x has %d incident triangles, want 1", fk, c)
		case !isBound && c != 2:
			a, b := faceEnds(fk)
			return fmt.Errorf("edge (%d,%d) has %d incident triangles, want 2", a, b, c)
		}
	}
	return nil
}

// CheckFact41 verifies Fact 4.1 directly for a ReplaceBoundary instance:
// given CCW triangles t=(f,u) and to=(f,uo) sharing face f, and a point v
// encroaching t but not to, every point of E(t)∩E(to) encroaches t'=(f,v)
// and every point encroaching t' is in E(t)∪E(to). The caller supplies the
// full candidate point set; E sets are computed here by brute force.
func CheckFact41(pts []geom.Point, f [2]geom.Point, u, uo, v geom.Point) error {
	mk := func(apex geom.Point) [3]geom.Point {
		tri := [3]geom.Point{f[0], f[1], apex}
		if geom.Orient2D(tri[0], tri[1], tri[2]) < 0 {
			tri[0], tri[1] = tri[1], tri[0]
		}
		return tri
	}
	t, to, tp := mk(u), mk(uo), mk(v)
	enc := func(tri [3]geom.Point, p geom.Point) bool {
		return geom.InCircle(tri[0], tri[1], tri[2], p) > 0
	}
	if !enc(t, v) || enc(to, v) {
		return fmt.Errorf("precondition violated: v must encroach t but not to")
	}
	for _, p := range pts {
		if p == v {
			continue
		}
		inT, inTo, inTp := enc(t, p), enc(to, p), enc(tp, p)
		if inT && inTo && !inTp {
			return fmt.Errorf("point %v in E(t)∩E(to) but not in E(t')", p)
		}
		if inTp && !(inT || inTo) {
			return fmt.Errorf("point %v in E(t') but not in E(t)∪E(to)", p)
		}
	}
	return nil
}

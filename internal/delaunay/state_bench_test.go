package delaunay

import "testing"

// checkpointCadence mirrors cmd/ridtd's default -checkpoint-every,
// picked by measurement: at cadence 8 the amortized capture cost lands
// just over the 5% overhead budget against BenchmarkSnapshotPublish
// (~5.7% on the dev container), at 16 it is comfortably under (~3%),
// while still bounding replay-on-restore to at most 16 rounds of lost
// work — a small fraction of a build, since rounds grow geometrically.
const checkpointCadence = 16

// BenchmarkCheckpointOverhead prices the publisher loop WITH
// checkpointing at the default cadence: every iteration publishes (the
// BenchmarkSnapshotPublish baseline) and every checkpointCadence-th also
// captures a build state — the only checkpoint work on the publisher's
// critical path. Encoding and file I/O happen on the saver goroutine and
// are priced separately (BenchmarkCheckpointWrite in
// internal/checkpoint). Gate: ns/op here stays within 5% of
// BenchmarkSnapshotPublish.
func BenchmarkCheckpointOverhead(b *testing.B) {
	lv := benchLive(b, 1<<14, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv.publish()
		if i%checkpointCadence == checkpointCadence-1 {
			st := lv.CaptureState()
			_ = st
		}
	}
}

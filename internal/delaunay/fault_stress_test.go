//go:build ridtfault

package delaunay

import (
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/rng"
)

// Round-engine fault stress (ridtfault build): injected panics at the
// phase boundaries (and inside the face map's migrations) kill rounds at
// seeded points; the engine's lazy rollback must repair every death, and
// the survivors' retries must reproduce the exact deterministic mesh.

// stepFaulted runs one stepCancel, translating an injected death into a
// retry signal. Any non-injected panic is a real bug and re-panics.
func stepFaulted(e *roundEngine) (more, died bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.Injected); !ok {
				panic(r)
			}
			more, died = true, true
		}
	}()
	m, _ := e.stepCancel(nil)
	return m, false
}

func runFaultedTriangulation(t *testing.T, pts []geom.Point, cfg fault.Config) (mesh *Mesh, deaths int) {
	t.Helper()
	if err := fault.Enable(cfg); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	e := newRoundEngine(pts)
	for {
		more, died := stepFaulted(e)
		if died {
			deaths++
			if deaths > 10000 {
				t.Fatal("fault schedule never lets the run finish")
			}
			continue
		}
		if !more {
			return e.s.finish(), deaths
		}
	}
}

// TestRoundEngineSurvivesPhasePanics injects deaths at the Delaunay phase
// boundaries only: every recovered death rolls the round back and the
// retry must re-derive the identical round (stale dedup stamps and all —
// see cancel.go's harmlessness argument).
func TestRoundEngineSurvivesPhasePanics(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(31), 1500))
	want := ParTriangulate(pts)
	for _, seed := range []uint64{2, 19, 443} {
		got, deaths := runFaultedTriangulation(t, pts, fault.Config{
			Seed:      seed,
			PanicRate: 0.05,
			DelayRate: 0.1,
			MaxPanics: -1,
			SiteMask:  fault.MaskOf(fault.DelaunayPhase),
		})
		if deaths == 0 {
			t.Fatalf("seed %d: no deaths injected — raise the rate", seed)
		}
		meshEqual(t, "after phase deaths", got, want)
		if err := CheckDelaunay(got); err != nil {
			t.Fatalf("seed %d: mesh invalid after %d deaths: %v", seed, deaths, err)
		}
	}
}

// TestRoundEngineSurvivesAllSites opens every site at once — scheduler
// delays and forced steals, face-map migration deaths, phase deaths — the
// full storm. Migration panics die inside Phase B's parallel loop, so this
// exercises rollback of partially installed rounds specifically.
func TestRoundEngineSurvivesAllSites(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	pts := geom.Dedup(geom.UniformSquare(rng.New(37), 2000))
	want := ParTriangulate(pts)
	got, deaths := runFaultedTriangulation(t, pts, fault.Config{
		Seed:      7,
		PanicRate: 0.01,
		DelayRate: 0.1,
		SkipRate:  0.2,
		MaxPanics: -1,
	})
	t.Logf("survived %d injected deaths", deaths)
	meshEqual(t, "after full-storm faults", got, want)
	if err := CheckDelaunay(got); err != nil {
		t.Fatalf("mesh invalid after storm: %v", err)
	}
	if err := CheckConsistency(got); err != nil {
		t.Fatalf("mesh inconsistent after storm: %v", err)
	}
}

// TestFaultScheduleReplays pins the replay property at the engine level:
// two runs under the same seed inject the same per-(site, hit) schedule,
// so a single-threaded driver sees the identical death sequence.
func TestFaultScheduleReplays(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(1) // single-threaded: hit order is deterministic
	defer runtime.GOMAXPROCS(prev)
	pts := geom.Dedup(geom.UniformSquare(rng.New(41), 800))
	cfg := fault.Config{
		Seed:      97,
		PanicRate: 0.04,
		MaxPanics: -1,
		SiteMask:  fault.MaskOf(fault.DelaunayPhase),
	}
	m1, d1 := runFaultedTriangulation(t, pts, cfg)
	m2, d2 := runFaultedTriangulation(t, pts, cfg)
	if d1 != d2 {
		t.Fatalf("death counts diverge across replays: %d vs %d", d1, d2)
	}
	meshEqual(t, "replay", m2, m1)
}

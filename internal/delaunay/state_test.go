package delaunay

import (
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// liveToEnd steps a Live to completion and returns the final mesh.
func liveToEnd(t *testing.T, lv *Live) *Mesh {
	t.Helper()
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !more {
			return lv.Finish()
		}
	}
}

// TestCaptureResumeEveryBoundary captures the build state at EVERY
// committed round boundary and proves each one is a sufficient restore
// point: the resumed run must produce the byte-identical mesh and stats
// of the uninterrupted reference — the determinism contract that makes a
// checkpoint a prefix of the one true run rather than a fork.
func TestCaptureResumeEveryBoundary(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(61), 900))
	want := ParTriangulate(pts)

	lv := NewLive(pts)
	var states []*BuildState
	states = append(states, lv.CaptureState()) // round 0: bare bounding triangle
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		states = append(states, lv.CaptureState())
		if !more {
			break
		}
	}
	meshEqual(t, "uninterrupted live run", lv.Finish(), want)

	for i, st := range states {
		re, err := ResumeLive(st)
		if err != nil {
			t.Fatalf("ResumeLive(round %d): %v", st.Round, err)
		}
		if v := re.View(); v.Round() != st.Round {
			t.Fatalf("restored view at round %d, want %d", v.Round(), st.Round)
		}
		meshEqual(t, "resumed from boundary", liveToEnd(t, re), want)
		_ = i
	}
}

// TestCaptureResumeEpochContinuity: the restored publication cell resumes
// epoch numbering from the checkpointed round (round+1 is an upper bound
// on any epoch the pre-crash cell reached), so reader Await tokens stay
// monotone across a restore.
func TestCaptureResumeEpochContinuity(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(8), 500))
	lv := NewLive(pts)
	for i := 0; i < 4; i++ {
		if more, err := lv.Step(nil); err != nil || !more {
			t.Fatalf("warmup step %d: more=%v err=%v", i, more, err)
		}
	}
	_, preEpoch := lv.ViewEpoch()
	st := lv.CaptureState()

	re, err := ResumeLive(st)
	if err != nil {
		t.Fatalf("ResumeLive: %v", err)
	}
	_, ep := re.ViewEpoch()
	if ep < preEpoch {
		t.Fatalf("restored epoch %d below pre-crash epoch %d", ep, preEpoch)
	}
	if ep != uint64(st.Round)+1 {
		t.Fatalf("restored epoch %d, want round+1 = %d", ep, st.Round+1)
	}
	// Face-map table epochs keep matching rounds at the boundary.
	fs := re.Faces()
	if fs.Epoch() != uint64(st.Round) {
		t.Fatalf("restored face-map epoch %d, want %d", fs.Epoch(), st.Round)
	}
	fs.Close()
	// Stepping after restore publishes strictly increasing epochs.
	if _, err := re.Step(nil); err != nil {
		t.Fatalf("Step after restore: %v", err)
	}
	if _, ep2 := re.ViewEpoch(); ep2 != ep+1 {
		t.Fatalf("epoch after restored step = %d, want %d", ep2, ep+1)
	}
}

// TestCaptureSharesCommittedStorage: captured states stay valid (and
// identical) while the build keeps running — the property that lets a
// background serializer read them without stalling the publisher.
func TestCaptureSharesCommittedStorage(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(19), 700))
	lv := NewLive(pts)
	for i := 0; i < 3; i++ {
		if _, err := lv.Step(nil); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	st := lv.CaptureState()
	nt, nf := len(st.Tris), len(st.Final)
	sumE := 0
	for _, tri := range st.Tris {
		for _, w := range tri.E {
			sumE += int(w)
		}
	}
	liveToEnd(t, lv) // build right past the capture
	if len(st.Tris) != nt || len(st.Final) != nf {
		t.Fatalf("capture lengths moved under the live build: tris %d->%d final %d->%d",
			nt, len(st.Tris), nf, len(st.Final))
	}
	sumE2 := 0
	for _, tri := range st.Tris {
		for _, w := range tri.E {
			sumE2 += int(w)
		}
	}
	if sumE2 != sumE {
		t.Fatal("captured encroacher contents changed while the build continued")
	}
	re, err := ResumeLive(st)
	if err != nil {
		t.Fatalf("ResumeLive after build finished: %v", err)
	}
	meshEqual(t, "resume from mid-build capture of a finished engine", liveToEnd(t, re), ParTriangulate(pts))
}

// TestResumeRejectsCorruptState: every index class validate guards must
// reject a mutated state with an error, never a panic downstream.
func TestResumeRejectsCorruptState(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(5), 300))
	lv := NewLive(pts)
	var base *BuildState
	for {
		if more, err := lv.Step(nil); err != nil || !more {
			t.Fatalf("build ended before two finals appeared: more=%v err=%v", more, err)
		}
		if base = lv.CaptureState(); len(base.Final) >= 2 {
			break
		}
	}
	if err := base.validate(); err != nil {
		t.Fatalf("genuine capture failed validation: %v", err)
	}

	// own deep-copies the parts each corruption mutates.
	own := func() *BuildState {
		st := *base
		st.Tris = append([]Tri(nil), base.Tris...)
		st.Depth = append([]int32(nil), base.Depth...)
		st.Final = append([]int32(nil), base.Final...)
		st.Faces = append([]FaceRec(nil), base.Faces...)
		st.Cand = append([]uint64(nil), base.Cand...)
		return &st
	}
	for name, corrupt := range map[string]func(*BuildState){
		"negative round":   func(st *BuildState) { st.Round = -1 },
		"points truncated": func(st *BuildState) { st.Pts = st.Pts[:len(st.Pts)-1] },
		"no triangles":     func(st *BuildState) { st.Tris, st.Depth = nil, nil },
		"depth mismatch":   func(st *BuildState) { st.Depth = st.Depth[:len(st.Depth)-1] },
		"corner out of range": func(st *BuildState) {
			st.Tris[0].V[1] = int32(st.N + 3)
		},
		"encroacher out of range": func(st *BuildState) {
			st.Tris[len(st.Tris)-1].E = []int32{int32(st.N)}
		},
		"final descending": func(st *BuildState) {
			st.Final[0], st.Final[1] = st.Final[1], st.Final[0]
		},
		"final not final": func(st *BuildState) {
			for i, tri := range st.Tris {
				if len(tri.E) > 0 {
					st.Final = append([]int32(nil), int32(i))
					return
				}
			}
			t.Fatal("no non-final triangle in a mid-build capture")
		},
		"face triangle out of range": func(st *BuildState) {
			st.Faces[0].W0 = uint64(uint32(int32(len(st.Tris)))) << 32
		},
		"face endpoint out of range": func(st *BuildState) {
			st.Faces[0].Key = uint64(uint32(st.N+5))<<32 | uint64(uint32(st.N+6))
		},
		"candidate endpoint out of range": func(st *BuildState) {
			st.Cand = append(st.Cand, uint64(uint32(st.N+7))<<32|uint64(uint32(st.N+7)))
		},
	} {
		t.Run(name, func(t *testing.T) {
			st := own()
			corrupt(st)
			if _, err := ResumeLive(st); err == nil {
				t.Error("ResumeLive accepted a corrupt state")
			}
		})
	}
}

// TestDeltaApplyEveryBoundary: for every pair of consecutive committed
// boundaries, the delta captured against the earlier boundary's watermark,
// applied to the earlier state, must reconstruct the later state exactly —
// and the reconstruction must resume to the byte-identical reference mesh.
// This is the delaunay-level half of the incremental-checkpoint claim; the
// checkpoint package proves the on-disk half against the same invariant.
func TestDeltaApplyEveryBoundary(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(71), 700))
	want := ParTriangulate(pts)

	lv := NewLive(pts)
	prev := lv.CaptureState()
	for {
		more, err := lv.Step(nil)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		cur := lv.CaptureState()
		d, err := lv.CaptureDelta(prev.Watermark())
		if err != nil {
			t.Fatalf("CaptureDelta(round %d): %v", prev.Round, err)
		}
		if d.Base != prev.Watermark() {
			t.Fatalf("delta base %+v, want %+v", d.Base, prev.Watermark())
		}
		got, err := ApplyDelta(prev, d)
		if err != nil {
			t.Fatalf("ApplyDelta(round %d -> %d): %v", prev.Round, cur.Round, err)
		}
		if !reflect.DeepEqual(got, cur) {
			t.Fatalf("applied delta at round %d does not reconstruct the captured state", cur.Round)
		}
		re, err := ResumeLive(got)
		if err != nil {
			t.Fatalf("ResumeLive(applied, round %d): %v", cur.Round, err)
		}
		meshEqual(t, "resumed from applied delta", liveToEnd(t, re), want)
		prev = cur
		if !more {
			break
		}
	}
}

// TestDeltaSpansMultipleRounds: a watermark is a valid delta base for ANY
// later boundary (append-only storage), not just the next one.
func TestDeltaSpansMultipleRounds(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(73), 600))
	lv := NewLive(pts)
	base := lv.CaptureState()
	for i := 0; i < 4; i++ {
		if more, err := lv.Step(nil); err != nil || !more {
			t.Fatalf("step %d: more=%v err=%v", i, more, err)
		}
	}
	cur := lv.CaptureState()
	d, err := lv.CaptureDelta(base.Watermark())
	if err != nil {
		t.Fatalf("CaptureDelta over 4 rounds: %v", err)
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta over 4 rounds: %v", err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatal("multi-round delta does not reconstruct the captured state")
	}
}

// TestDeltaRejectsMismatch: the watermark and cross-field checks that keep
// a delta from being joined to the wrong base.
func TestDeltaRejectsMismatch(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(79), 500))
	lv := NewLive(pts)
	base := lv.CaptureState()
	if more, err := lv.Step(nil); err != nil || !more {
		t.Fatalf("step: more=%v err=%v", more, err)
	}
	cur := lv.CaptureState()
	d, err := lv.CaptureDelta(base.Watermark())
	if err != nil {
		t.Fatalf("CaptureDelta: %v", err)
	}

	if _, err := cur.DeltaSince(Watermark{Round: cur.Round + 1, Tris: len(cur.Tris), Final: len(cur.Final)}); err == nil {
		t.Error("DeltaSince accepted a watermark ahead of the state")
	}
	if _, err := cur.DeltaSince(Watermark{Round: 0, Tris: 0, Final: 0}); err == nil {
		t.Error("DeltaSince accepted a zero-triangle watermark (no valid base has an empty log)")
	}
	if _, err := ApplyDelta(cur, d); err == nil {
		t.Error("ApplyDelta accepted a base whose watermark does not match")
	}
	other := *base
	other.N++
	if _, err := ApplyDelta(&other, d); err == nil {
		t.Error("ApplyDelta accepted a base with a different point count")
	}
	bad := *d
	bad.Final = append([]int32(nil), int32(0)) // names a prefix triangle
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a suffix final id below the base watermark")
	}
}

//go:build ridtfault

package delaunay

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/rng"
)

// Publication-protocol fault stress (ridtfault build): the EpochPublish
// site fires between a round's commit and its publication — in
// Live.Step directly and inside the face table's AdvanceEpoch — so an
// injected death models the publisher dying with a committed round
// unpublished. The committed state is durable, so a retried Step's
// publication covers every round since the last published one: readers
// observe round gaps, never an inconsistent view.

// liveStepFaulted runs one Live.Step, translating an injected death into
// a retry signal; any other panic is a real bug.
func liveStepFaulted(lv *Live) (more, died bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.Injected); !ok {
				panic(r)
			}
			more, died = true, true
		}
	}()
	m, _ := lv.Step(nil)
	return m, false
}

// TestLiveSurvivesPublishDeaths kills the publisher at the publication
// boundary over and over while concurrent readers verify every view they
// observe against the fault-free reference run, and checks the final
// mesh is the exact deterministic one.
func TestLiveSurvivesPublishDeaths(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(53), 1200))
	want := ParTriangulate(pts)
	rows := referenceRun(t, pts)

	for _, seed := range []uint64{3, 71} {
		if err := fault.Enable(fault.Config{
			Seed:      seed,
			PanicRate: 0.25,
			DelayRate: 0.2,
			MaxPanics: -1,
			SiteMask:  fault.MaskOf(fault.EpochPublish),
		}); err != nil {
			t.Fatal(err)
		}
		lv := NewLive(pts)
		var stop atomic.Bool
		var wg sync.WaitGroup
		fail := make(chan string, 1)
		report := func(msg string) {
			select {
			case fail <- msg:
			default:
			}
		}
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var lastEp uint64
				var lastRound int32 = -1
				for !stop.Load() {
					v, ep := lv.ViewEpoch()
					if ep < lastEp || v.Round() < lastRound {
						report("publication went backwards under faults")
						return
					}
					lastEp, lastRound = ep, v.Round()
					row, ok := rows[v.Round()]
					if !ok {
						report("published a round the reference run never committed")
						return
					}
					if v.NumTriangles() != row.tris || v.NumFinal() != row.nFinal || finalSum(v) != row.sum {
						report("view diverges from committed reference prefix under faults")
						return
					}
				}
			}()
		}
		deaths := 0
		for {
			more, died := liveStepFaulted(lv)
			if died {
				deaths++
				if deaths > 10000 {
					t.Fatal("fault schedule never lets the run finish")
				}
				continue
			}
			if !more {
				break
			}
		}
		stop.Store(true)
		wg.Wait()
		fault.Disable()
		select {
		case msg := <-fail:
			t.Fatalf("seed %d: %s", seed, msg)
		default:
		}
		if deaths == 0 {
			t.Fatalf("seed %d: no deaths injected — raise the rate", seed)
		}
		t.Logf("seed %d: survived %d publisher deaths", seed, deaths)
		if !lv.View().Done() {
			t.Fatalf("seed %d: last view not Done", seed)
		}
		got := lv.Finish()
		meshEqual(t, "after publish deaths", got, want)
		if err := CheckDelaunay(got); err != nil {
			t.Fatalf("seed %d: mesh invalid after %d deaths: %v", seed, deaths, err)
		}
	}
}

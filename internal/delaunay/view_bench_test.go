package delaunay

// BenchmarkSnapshotRead* (mesh side): point location and adjacency
// queries against published views — the ridtd reader hot path. Recorded
// in BENCH_serve.json, gated by the CI bench job, run with -benchmem
// (zero allocs per query is a gated property).

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func benchLive(b *testing.B, n int, rounds int) *Live {
	b.Helper()
	pts := geom.Dedup(geom.UniformSquare(rng.New(2027), n))
	lv := NewLive(pts)
	for i := 0; rounds <= 0 || i < rounds; i++ {
		more, err := lv.Step(nil)
		if err != nil {
			b.Fatal(err)
		}
		if !more {
			break
		}
	}
	return lv
}

func benchQueries(n int) []geom.Point {
	r := rng.New(4242)
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return qs
}

// BenchmarkSnapshotReadLocate queries the completed view's location
// grid: the steady-state serving cost once a build finishes.
func BenchmarkSnapshotReadLocate(b *testing.B) {
	lv := benchLive(b, 1<<14, 0)
	v := lv.View()
	qs := benchQueries(1 << 10)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, ok := v.Locate(q); ok {
				hits++
			}
		}
	}
	_ = hits
}

// BenchmarkSnapshotReadLocateMidBuild queries a half-built view, where
// the final set is sparse and misses dominate (the frontier-probing
// pattern ridtd readers see early in a build).
func BenchmarkSnapshotReadLocateMidBuild(b *testing.B) {
	lv := benchLive(b, 1<<14, 12)
	v := lv.View()
	qs := benchQueries(1 << 10)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, ok := v.Locate(q); ok {
				hits++
			}
		}
	}
	_ = hits
}

// BenchmarkSnapshotReadIncident prices the adjacency side: located
// triangle -> face-map snapshot probe, the ridtd reader's inner loop.
func BenchmarkSnapshotReadIncident(b *testing.B) {
	lv := benchLive(b, 1<<14, 0)
	v := lv.View()
	fs := lv.Faces()
	defer fs.Close()
	qs := benchQueries(1 << 10)
	ids := make([]int32, 0, len(qs))
	for _, q := range qs {
		if id, ok := v.Locate(q); ok {
			ids = append(ids, id)
		}
	}
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			c := v.Corners(id)
			if _, _, ok := fs.Incident(c[0], c[1]); ok {
				found++
			}
		}
	}
	_ = found
}

// BenchmarkSnapshotPublish prices the publisher's per-round overhead in
// isolation: rebuilding and publishing the view for a completed store
// (grid rebuild is the dominant term; see DESIGN.md for the O(final)
// argument).
func BenchmarkSnapshotPublish(b *testing.B) {
	lv := benchLive(b, 1<<14, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv.publish()
	}
}

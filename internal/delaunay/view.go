package delaunay

import (
	"math"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/hashtable"
	"repro/internal/parallel"
)

// Serve-while-building: epoch-published immutable mesh views.
//
// The round engine appends triangles and never mutates a committed one —
// a triangle's corner array and encroacher list are fixed at creation
// (Phase A), and a triangle fires only if its encroacher list is
// non-empty. So a triangle created with an empty E is part of the final
// triangulation *forever*: the per-round final-triangle sets grow
// monotonically toward exactly the set finish() extracts. That is what
// makes a consistent point-in-time view of a half-built triangulation
// cheap: a view is (committed triangle-log prefix, final-id watermark),
// both immutable once the round that produced them commits.
//
// Live wraps the engine and publishes a MeshView at every committed
// round boundary (PR 7's transactional-round commit point) through a
// parallel.Epoch cell. Readers get the latest view wait-free, or block
// for a newer one; a view stays valid forever — it shares the engine's
// append-only storage, and rollback can never truncate below a committed
// boundary. The face map's table epoch is advanced at the same boundary,
// so open table snapshots and mesh views retire in lockstep.

// MeshView is an immutable snapshot of a triangulation under
// construction, published at a committed round boundary. It supports
// point location and containment queries against the final region built
// so far; all query methods are safe for any number of concurrent
// readers and allocate nothing on the exact-predicate float fast path.
type MeshView struct {
	round int32
	done  bool
	pts   []geom.Point
	n     int
	tris  []Tri   // committed triangle-log prefix (shared, immutable)
	final []int32 // ids of final triangles (E empty at creation), ascending

	// Location grid over the final triangles: the input bounding box is
	// binned into ~len(final) cells; each final triangle is listed in
	// every cell its own bounding box overlaps (clamped into the grid the
	// same way queries are, so a triangle containing q is always listed
	// in q's cell). Triangles spanning more than wideSpan cells — the
	// handful of hull triangles reaching the far-away bounding corners —
	// go to the wide list, scanned on every query.
	ox, oy     float64
	invW, invH float64 // cells per unit in x / y
	gw, gh     int
	cellStart  []int32
	cellTris   []int32
	wide       []int32
}

// Round is the committed round this view was published at (0 = the
// initial bounding triangle, before any insertions).
func (v *MeshView) Round() int32 { return v.round }

// Done reports whether construction had completed at this view: every
// input point inserted, the final set exactly finish()'s selection.
func (v *MeshView) Done() bool { return v.done }

// NumTriangles is the committed triangle-log length (alive, final, and
// ripped triangles alike): the monotone progress watermark.
func (v *MeshView) NumTriangles() int { return len(v.tris) }

// NumFinal is the number of triangles known final at this view.
func (v *MeshView) NumFinal() int { return len(v.final) }

// NumPoints is the number of input points (excluding bounding corners).
func (v *MeshView) NumPoints() int { return v.n }

// FinalID returns the i-th final triangle's id in the triangle log;
// ids are ascending in i and stable across all later views.
//
//ridt:noalloc
func (v *MeshView) FinalID(i int) int32 { return v.final[i] }

// Corners returns triangle t's corner point indices (counterclockwise).
//
//ridt:noalloc
func (v *MeshView) Corners(t int32) [3]int32 { return v.tris[t].V }

// Point returns point i's coordinates (input points then the 3 bounding
// corners).
//
//ridt:noalloc
func (v *MeshView) Point(i int32) geom.Point { return v.pts[i] }

// gridCells caps the location grid's side so a huge view cannot make the
// per-publication rebuild quadratic in memory.
const gridCells = 1024

// buildView snapshots the store into an immutable view. Serial, called
// from the publisher at the committed boundary; cost O(final + cells)
// per publication (the honest total over a run is O(n) per round — see
// DESIGN.md for why a rebuilt grid was chosen over shared mutable
// indices).
func buildView(s *store, round int32, final []int32, done bool) *MeshView {
	v := &MeshView{
		round: round,
		done:  done,
		pts:   s.pts,
		n:     s.n,
		tris:  s.tris[:len(s.tris):len(s.tris)],
		final: final[:len(final):len(final)],
	}
	nf := len(v.final)
	if nf == 0 {
		return v
	}
	// Domain: the input bounding box (the bounding corners sit ~50 widths
	// outside and would dilute the grid to uselessness). Queries and
	// triangle bins clamp into it identically.
	dom := v.pts[:v.n]
	if v.n == 0 {
		dom = v.pts
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range dom {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	w, h := maxX-minX, maxY-minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g := int(math.Sqrt(float64(nf))) + 1
	if g > gridCells {
		g = gridCells
	}
	v.gw, v.gh = g, g
	v.ox, v.oy = minX, minY
	v.invW = float64(g) / w
	v.invH = float64(g) / h

	// CSR build: count per cell, prefix-sum, fill.
	wideSpan := int32(v.gw + v.gh)
	counts := make([]int32, v.gw*v.gh+1)
	spanOf := func(id int32) (cx0, cx1, cy0, cy1 int32, wide bool) {
		tv := v.tris[id].V
		a, b, c := v.pts[tv[0]], v.pts[tv[1]], v.pts[tv[2]]
		bx0, bx1 := math.Min(a.X, math.Min(b.X, c.X)), math.Max(a.X, math.Max(b.X, c.X))
		by0, by1 := math.Min(a.Y, math.Min(b.Y, c.Y)), math.Max(a.Y, math.Max(b.Y, c.Y))
		cx0, cy0 = v.cellXY(bx0, by0)
		cx1, cy1 = v.cellXY(bx1, by1)
		wide = (cx1-cx0+1)*(cy1-cy0+1) > wideSpan
		return
	}
	for _, id := range v.final {
		cx0, cx1, cy0, cy1, wide := spanOf(id)
		if wide {
			v.wide = append(v.wide, id)
			continue
		}
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				counts[cy*int32(v.gw)+cx+1]++
			}
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	v.cellStart = counts
	v.cellTris = make([]int32, counts[len(counts)-1])
	next := make([]int32, v.gw*v.gh)
	copy(next, counts[:len(counts)-1])
	for _, id := range v.final {
		cx0, cx1, cy0, cy1, wide := spanOf(id)
		if wide {
			continue
		}
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				c := cy*int32(v.gw) + cx
				v.cellTris[next[c]] = id
				next[c]++
			}
		}
	}
	return v
}

// cellXY maps a coordinate into its (clamped) grid cell.
//
//ridt:noalloc
func (v *MeshView) cellXY(x, y float64) (cx, cy int32) {
	cx = int32((x - v.ox) * v.invW)
	cy = int32((y - v.oy) * v.invH)
	if cx < 0 {
		cx = 0
	} else if cx >= int32(v.gw) {
		cx = int32(v.gw) - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= int32(v.gh) {
		cy = int32(v.gh) - 1
	}
	return
}

// triContains reports whether q lies in triangle id (boundary inclusive;
// corners are CCW by construction). Exact: the float fast path decides
// almost every query with no allocation, the big-rational fallback
// decides degeneracies.
//
//ridt:noalloc
func (v *MeshView) triContains(id int32, q geom.Point) bool {
	tv := v.tris[id].V
	a, b, c := v.pts[tv[0]], v.pts[tv[1]], v.pts[tv[2]]
	return geom.Orient2D(a, b, q) >= 0 &&
		geom.Orient2D(b, c, q) >= 0 &&
		geom.Orient2D(c, a, q) >= 0
}

// Locate returns a final triangle containing q, or (NoTri, false) when q
// lies in a region that is still under construction at this view (or on
// no triangle at all). For q on a shared edge or corner, any one of the
// incident final triangles may be returned. Safe for unbounded
// concurrent readers; allocation-free on the float fast path.
//
//ridt:noalloc
func (v *MeshView) Locate(q geom.Point) (int32, bool) {
	if len(v.final) == 0 {
		return NoTri, false
	}
	if v.gw > 0 {
		cx, cy := v.cellXY(q.X, q.Y)
		c := cy*int32(v.gw) + cx
		for _, id := range v.cellTris[v.cellStart[c]:v.cellStart[c+1]] {
			if v.triContains(id, q) {
				return id, true
			}
		}
	}
	for _, id := range v.wide {
		if v.triContains(id, q) {
			return id, true
		}
	}
	return NoTri, false
}

// Contains reports whether q lies in the finalized region of this view.
//
//ridt:noalloc
func (v *MeshView) Contains(q geom.Point) bool {
	_, ok := v.Locate(q)
	return ok
}

// Live drives a triangulation round by round while publishing an
// immutable MeshView at every committed boundary. One goroutine steps
// (the publisher); any number of goroutines read views concurrently.
type Live struct {
	e       *roundEngine
	pub     parallel.Epoch[MeshView]
	scanned int     // triangle-log prefix already scanned for finals
	final   []int32 // accumulated final ids, ascending
	done    bool
}

// NewLive starts a live triangulation over pts (same input contract as
// ParTriangulate: pre-shuffled, deduplicated) and publishes the round-0
// view (the bare bounding triangle).
func NewLive(pts []geom.Point) *Live {
	lv := &Live{e: newRoundEngine(pts)}
	lv.collect()
	lv.done = len(pts) == 0
	lv.publish()
	return lv
}

// collect extends the final-id watermark over newly committed triangles.
func (lv *Live) collect() {
	s := lv.e.s
	for i := lv.scanned; i < len(s.tris); i++ {
		if len(s.tris[i].E) == 0 {
			lv.final = append(lv.final, int32(i))
		}
	}
	lv.scanned = len(s.tris)
}

// publish builds and publishes the view for the current committed state.
func (lv *Live) publish() {
	lv.pub.Publish(buildView(lv.e.s, lv.e.round, lv.final, lv.done))
}

// Step runs one round and publishes the resulting view; it reports
// whether more rounds remain. On cancellation the round is rolled back
// (round-atomic, as in stepCancel), no view is published, and the last
// published view remains exactly current. Not safe for concurrent Step
// calls — Live has one publisher.
//
// Under -tags ridtfault the EpochPublish site fires between the round's
// commit and its publication: an injected death there models the
// publisher dying with a committed round unpublished. The round's
// effects are durable (the engine is clean), so the next successful Step
// publishes a view covering both rounds — readers see an epoch gap,
// never an inconsistent view.
func (lv *Live) Step(c *parallel.Canceler) (bool, error) {
	more, err := lv.e.stepCancel(c)
	if err != nil {
		return false, err
	}
	if fault.Enabled {
		fault.Inject(fault.EpochPublish)
	}
	// Advance the face map's table epoch at the same boundary: mutators
	// are quiesced here (the phase contract), the root is flattened, and
	// superseded slot arrays no snapshot pins are reclaimed.
	lv.e.faces.AdvanceEpoch()
	lv.collect()
	lv.done = !more
	lv.publish()
	return more, nil
}

// View returns the latest published view (never nil). Wait-free.
//
//ridt:noalloc
func (lv *Live) View() *MeshView {
	v, _ := lv.pub.Current()
	return v
}

// ViewEpoch is View plus the publication epoch, for readers that follow
// publications with Await.
//
//ridt:noalloc
func (lv *Live) ViewEpoch() (*MeshView, uint64) {
	return lv.pub.Current()
}

// Await blocks until a view newer than epoch `after` is published; see
// parallel.Epoch.Await for the cancellation contract.
func (lv *Live) Await(after uint64, c *parallel.Canceler) (*MeshView, uint64, error) {
	return lv.pub.Await(after, c)
}

// Faces opens a snapshot of the face map for adjacency queries; Close it
// when done. The snapshot is O(1) and stays torn-free under the
// publisher's concurrent writes (regular reads — see hashtable.Snap).
func (lv *Live) Faces() FaceSnap {
	return FaceSnap{snap: lv.e.faces.Snapshot()}
}

// Run steps to completion (publishing every round) and returns the final
// mesh. On cancellation the engine stays resumable via Step/Run.
func (lv *Live) Run(c *parallel.Canceler) (*Mesh, error) {
	for {
		more, err := lv.Step(c)
		if err != nil {
			return nil, err
		}
		if !more {
			return lv.e.s.finish(), nil
		}
	}
}

// Finish extracts the final mesh. It must only be called once a Step has
// reported no more rounds (Done on the latest view).
func (lv *Live) Finish() *Mesh {
	if !lv.done {
		panic("delaunay: Live.Finish before construction completed")
	}
	return lv.e.s.finish()
}

// FaceSnap is a read-only snapshot of the live face map: the adjacency
// side of the serving story (which up-to-two triangles share an edge).
// Values written after the snapshot may be visible (regular reads), but
// never torn ones.
type FaceSnap struct {
	snap hashtable.Snap[uint64, faceEntry]
}

// Epoch is the face-map table epoch the snapshot was taken at; it
// matches the publication round when taken at a boundary.
func (fs FaceSnap) Epoch() uint64 { return fs.snap.Epoch() }

// Incident returns the up-to-two triangles incident to edge (a, b), if
// the edge is a face of the current (or snapshot-time) triangulation.
// t1 == NoTri means a hull face or a face awaiting its second triangle.
//
//ridt:noalloc
func (fs FaceSnap) Incident(a, b int32) (t0, t1 int32, ok bool) {
	ent, ok := fs.snap.Load(faceKey(a, b))
	if !ok {
		return NoTri, NoTri, false
	}
	return ent.t0, ent.t1, true
}

// Len counts the faces visible to the snapshot.
func (fs FaceSnap) Len() int { return fs.snap.Len() }

// Close releases the snapshot's pin on retired face-map tables.
func (fs FaceSnap) Close() { fs.snap.Close() }

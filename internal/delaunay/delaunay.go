// Package delaunay implements Section 4 of the paper: randomized
// incremental Delaunay triangulation in the plane via the offline variant
// of Boissonnat and Teillaud's algorithm (Algorithm 4), and its parallel
// version (Algorithm 5, ParIncrementalDT).
//
// Both versions maintain, for every triangle t, the set E(t) of uninserted
// points that encroach on t (lie in its circumcircle), and grow the
// triangulation exclusively through ReplaceBoundary(to, f, t, v): detach t
// from face f and attach the new triangle t' = (f, v), computing E(t') from
// E(t) and E(to) by Fact 4.1. The sequential and parallel versions perform
// exactly the same multiset of ReplaceBoundary calls (Lemma 4.2), so their
// outputs are identical; only the schedule differs.
//
// The bounding "triangle at infinity" t_b is realized as a finite triangle
// far outside the input (geom.BoundingTriangle); with exact predicates this
// yields the true Delaunay triangulation of the input for point sets whose
// Delaunay circumcircles stay within the margin — guaranteed for the
// random workloads used here and verified by CheckDelaunay in tests.
package delaunay

import (
	"sort"

	"repro/internal/geom"
)

// Tri is one d-simplex (triangle) created by the algorithm. Triangles are
// append-only; a triangle is part of the final triangulation iff its
// encroaching set is empty.
type Tri struct {
	V [3]int32 // corner point indices, counterclockwise
	E []int32  // encroaching uninserted points, ascending insertion index
}

// NoTri marks an absent triangle (the outside of a hull face).
const NoTri = int32(-1)

// Stats carries the work and depth counters the Section 4 experiments use.
type Stats struct {
	InCircleTests    int64 // InCircle tests as accounted by Theorem 4.5
	TrianglesCreated int64
	Rounds           int // parallel rounds (0 for the sequential version)
	DepDepth         int // triangle-DAG dependence depth in edges (Theorem 4.3)
}

// store holds the shared state of a triangulation run.
type store struct {
	pts   []geom.Point // input points then the 3 bounding corners
	n     int          // number of real input points
	tris  []Tri
	depth []int32 // dependence depth (in edges) of each triangle's creation
	stats Stats
	pred  *geom.PredicateStats
}

// faceKey packs an undirected edge (two point indices) into a map key.
func faceKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func faceEnds(k uint64) (int32, int32) {
	return int32(k >> 32), int32(uint32(k))
}

// isBoundingEdge reports whether the face joins two bounding-triangle
// corners (such faces have exactly one incident triangle forever).
func (s *store) isBoundingEdge(k uint64) bool {
	a, b := faceEnds(k)
	return int(a) >= s.n && int(b) >= s.n
}

func newStore(pts []geom.Point) *store {
	n := len(pts)
	a, b, c := geom.BoundingTriangle(pts)
	all := make([]geom.Point, n, n+3)
	copy(all, pts)
	all = append(all, a, b, c)
	s := &store{pts: all, n: n, pred: &geom.PredicateStats{}}
	// The bounding triangle t_b encroaches on every input point.
	e := make([]int32, n)
	for i := range e {
		e[i] = int32(i)
	}
	v := [3]int32{int32(n), int32(n + 1), int32(n + 2)}
	if geom.Orient2D(all[v[0]], all[v[1]], all[v[2]]) < 0 {
		v[1], v[2] = v[2], v[1]
	}
	s.tris = append(s.tris, Tri{V: v, E: e})
	s.depth = append(s.depth, 0)
	s.stats.TrianglesCreated++
	return s
}

// minE returns the earliest encroaching point of triangle t, or n+3 (past
// every real point) when E(t) is empty or t is absent.
func (s *store) minE(t int32) int32 {
	if t == NoTri {
		return int32(s.n + 3)
	}
	e := s.tris[t].E
	if len(e) == 0 {
		return int32(s.n + 3)
	}
	return e[0]
}

// newTriData computes the corner array and encroaching set of the triangle
// t' = (f, v) replacing t across f, per Fact 4.1: points in E(t)∩E(to) are
// included without a test; points in the symmetric difference are tested
// with InCircle. The returned test count feeds Theorem 4.5's accounting.
// to == NoTri (hull face of t_b) means all candidates come from E(t).
// out is the destination for the encroacher list; it must be empty with
// capacity at least len(E(t))+len(E(to)) so the appends below never
// reallocate — which is what lets the round engine carve it from a
// per-block arena.
func (s *store) newTriData(to int32, fk uint64, t int32, v int32, pred *geom.PredicateStats, out []int32) (tri Tri, tests int64) {
	a, b := faceEnds(fk)
	corners := [3]int32{a, b, v}
	if geom.Orient2DStats(s.pts[a], s.pts[b], s.pts[v], pred) < 0 {
		corners[0], corners[1] = corners[1], corners[0]
	}
	pa, pb, pc := s.pts[corners[0]], s.pts[corners[1]], s.pts[corners[2]]

	et := s.tris[t].E
	var eo []int32
	if to != NoTri {
		eo = s.tris[to].E
	}
	// Merge the two sorted lists, classifying common vs. exclusive points.
	i, j := 0, 0
	for i < len(et) || j < len(eo) {
		var w int32
		common := false
		switch {
		case j >= len(eo) || (i < len(et) && et[i] < eo[j]):
			w = et[i]
			i++
		case i >= len(et) || eo[j] < et[i]:
			w = eo[j]
			j++
		default:
			w = et[i]
			common = true
			i++
			j++
		}
		if w == v {
			continue
		}
		if common {
			out = append(out, w) // Fact 4.1: no test needed
			continue
		}
		tests++
		if geom.InCircleStats(pa, pb, pc, s.pts[w], pred) > 0 {
			out = append(out, w)
		}
	}
	return Tri{V: corners, E: out}, tests
}

// Mesh is the final result of a triangulation run.
type Mesh struct {
	Points    []geom.Point // input points followed by the 3 bounding corners
	N         int          // number of input points
	Triangles []Tri        // final triangles (E empty), incl. those using bounding corners
	Stats     Stats
}

// InnerTriangles returns the final triangles all of whose corners are input
// points (i.e., the Delaunay triangulation of the input, excluding the
// artificial hull to the bounding corners).
func (m *Mesh) InnerTriangles() []Tri {
	var out []Tri
	for _, t := range m.Triangles {
		if int(t.V[0]) < m.N && int(t.V[1]) < m.N && int(t.V[2]) < m.N {
			out = append(out, t)
		}
	}
	return out
}

// finish extracts the final mesh from a store.
func (s *store) finish() *Mesh {
	var final []Tri
	for i := range s.tris {
		if len(s.tris[i].E) == 0 {
			t := s.tris[i]
			// Drop the E header entirely: a zero-length slice still points
			// at its backing array — here an i32arena chunk — and would pin
			// the run's whole encroacher storage for the Mesh's lifetime.
			t.E = nil
			final = append(final, t)
		}
	}
	maxDepth := int32(0)
	for _, d := range s.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	s.stats.DepDepth = int(maxDepth)
	return &Mesh{Points: s.pts, N: s.n, Triangles: final, Stats: s.stats}
}

// Sequential implementation (Algorithm 4) -------------------------------

// Triangulate runs the sequential incremental algorithm: points are
// inserted in slice order (callers wanting the randomized guarantees pass
// a pre-shuffled slice). Duplicate points must have been removed.
func Triangulate(pts []geom.Point) *Mesh {
	s := newStore(pts)
	n := s.n
	// enc[w] lists triangles whose E contains point w (lazily cleaned).
	enc := make([][]int32, n)
	for _, w := range s.tris[0].E {
		enc[w] = append(enc[w], 0)
	}
	capHint := 4*n + 4
	alive := make([]bool, 1, capHint)
	alive[0] = true
	// faces maps a face to its up-to-two incident triangles.
	faces := make(map[uint64][2]int32, capHint)
	tb := s.tris[0]
	for e := 0; e < 3; e++ {
		faces[faceKey(tb.V[e], tb.V[(e+1)%3])] = [2]int32{0, NoTri}
	}
	inR := make([]int32, 1, capHint) // stamp: iteration when triangle joined R
	for i := range inR {
		inR[i] = -1
	}

	addFace := func(fk uint64, t int32) {
		e, ok := faces[fk]
		if !ok {
			faces[fk] = [2]int32{t, NoTri}
			return
		}
		e[1] = t
		faces[fk] = e
	}
	replaceInFace := func(fk uint64, old, nw int32) {
		e := faces[fk]
		if e[0] == old {
			e[0] = nw
		} else {
			e[1] = nw
		}
		faces[fk] = e
	}

	for v := int32(0); int(v) < n; v++ {
		// R: live triangles encroached by v (each has min(E) == v).
		var r []int32
		for _, t := range enc[v] {
			if alive[t] {
				r = append(r, t)
				inR[t] = v
			}
		}
		// Boundary faces: a face of t in R whose other side is not in R.
		type bf struct {
			fk    uint64
			t, to int32
		}
		var boundary []bf
		for _, t := range r {
			tv := s.tris[t].V
			for e := 0; e < 3; e++ {
				fk := faceKey(tv[e], tv[(e+1)%3])
				ent := faces[fk]
				to := ent[0]
				if to == t {
					to = ent[1]
				}
				if to != NoTri && !alive[to] {
					panic("delaunay: face entry references a detached triangle")
				}
				if to != NoTri && inR[to] == v {
					continue // interior to the cavity
				}
				boundary = append(boundary, bf{fk, t, to})
			}
		}
		// ReplaceBoundary on every boundary face.
		for _, f := range boundary {
			need := len(s.tris[f.t].E)
			if f.to != NoTri {
				need += len(s.tris[f.to].E)
			}
			tri, tests := s.newTriData(f.to, f.fk, f.t, v, s.pred, make([]int32, 0, need))
			s.stats.InCircleTests += tests
			id := int32(len(s.tris))
			s.tris = append(s.tris, tri)
			d := s.depth[f.t] + 1
			if f.to != NoTri && s.depth[f.to]+1 > d {
				d = s.depth[f.to] + 1
			}
			s.depth = append(s.depth, d)
			alive = append(alive, true)
			inR = append(inR, -1)
			s.stats.TrianglesCreated++
			for _, w := range tri.E {
				enc[w] = append(enc[w], id)
			}
			// Update the face map: f now borders t' instead of t; the two
			// new faces of t' gain t' as an incident triangle.
			replaceInFace(f.fk, f.t, id)
			a, b := faceEnds(f.fk)
			addFace(faceKey(a, v), id)
			addFace(faceKey(b, v), id)
		}
		// The cavity triangles die; remove them from interior faces.
		for _, t := range r {
			alive[t] = false
			tv := s.tris[t].V
			for e := 0; e < 3; e++ {
				fk := faceKey(tv[e], tv[(e+1)%3])
				ent, ok := faces[fk]
				if !ok {
					continue
				}
				if ent[0] == t {
					ent[0], ent[1] = ent[1], NoTri
				} else if ent[1] == t {
					ent[1] = NoTri
				}
				if ent[0] == NoTri && ent[1] == NoTri {
					delete(faces, fk)
				} else {
					faces[fk] = ent
				}
			}
			// nil, not [:0:0]: a zero-cap slice still holds its data
			// pointer, so only nil actually frees the encroaching list.
			s.tris[t].E = nil
		}
	}
	// Ripped triangles had their E cleared above, so select final
	// triangles by liveness rather than by empty E.
	var final []Tri
	for i := range s.tris {
		if alive[i] && len(s.tris[i].E) == 0 {
			final = append(final, s.tris[i])
		}
	}
	maxDepth := int32(0)
	for _, d := range s.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	s.stats.DepDepth = int(maxDepth)
	return &Mesh{Points: s.pts, N: s.n, Triangles: final, Stats: s.stats}
}

// SortTriangles returns the triangles' corner triples in a canonical order
// for cross-implementation comparison.
func SortTriangles(tris []Tri) [][3]int32 {
	out := make([][3]int32, len(tris))
	for i, t := range tris {
		v := t.V
		// Canonicalize corner order.
		if v[0] > v[1] {
			v[0], v[1] = v[1], v[0]
		}
		if v[1] > v[2] {
			v[1], v[2] = v[2], v[1]
		}
		if v[0] > v[1] {
			v[0], v[1] = v[1], v[0]
		}
		out[i] = v
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return out
}

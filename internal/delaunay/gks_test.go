package delaunay

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestGKSMatchesBT(t *testing.T) {
	// Under general position the Delaunay triangulation is unique, so GKS
	// and the Boissonnat–Teillaud variant must produce the same triangles.
	for _, n := range []int{1, 2, 3, 10, 100, 600} {
		pts := randPoints(uint64(n)*17+3, n)
		bt := Triangulate(pts)
		gks, _ := GKSTriangulate(pts)
		tb := SortTriangles(bt.Triangles)
		tg := SortTriangles(gks.Triangles)
		if len(tb) != len(tg) {
			t.Fatalf("n=%d: BT %d triangles, GKS %d", n, len(tb), len(tg))
		}
		for i := range tb {
			if tb[i] != tg[i] {
				t.Fatalf("n=%d: triangle %d differs: %v vs %v", n, i, tb[i], tg[i])
			}
		}
	}
}

func TestGKSDelaunayProperty(t *testing.T) {
	pts := randPoints(99, 300)
	m, _ := GKSTriangulate(pts)
	if err := CheckDelaunay(m); err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(m); err != nil {
		t.Fatal(err)
	}
}

func TestGKSWorkNLogN(t *testing.T) {
	// GKS InCircle tests are also O(n log n) expected (the classic
	// analysis gives <= ~9n expected flips-related tests plus location).
	for _, n := range []int{1000, 4000} {
		pts := randPoints(uint64(n), n)
		_, st := GKSTriangulate(pts)
		nlogn := float64(n) * math.Log(float64(n))
		if float64(st.InCircleTests) > 4*nlogn {
			t.Fatalf("n=%d: %d InCircle tests superlinear in n log n", n, st.InCircleTests)
		}
		if float64(st.LocateSteps) > 20*nlogn {
			t.Fatalf("n=%d: %d locate steps superlogarithmic", n, st.LocateSteps)
		}
	}
}

func TestGKSLocateDepthLogarithmic(t *testing.T) {
	n := 4000
	pts := randPoints(7, n)
	_, st := GKSTriangulate(pts)
	if limit := int(12 * math.Log2(float64(n))); st.MaxLocateDepth > limit {
		t.Fatalf("max locate depth %d exceeds %d", st.MaxLocateDepth, limit)
	}
}

func TestGKSCocircular(t *testing.T) {
	// Near-cocircular input exercises exact predicates through the flip
	// cascade; the result must still match BT exactly.
	pts := geom.Dedup(geom.OnCircle(rng.New(3), 50, 1e-9))
	bt := Triangulate(pts)
	gks, _ := GKSTriangulate(pts)
	tb, tg := SortTriangles(bt.Triangles), SortTriangles(gks.Triangles)
	if len(tb) != len(tg) {
		t.Fatalf("cocircular: BT %d vs GKS %d triangles", len(tb), len(tg))
	}
	for i := range tb {
		if tb[i] != tg[i] {
			t.Fatalf("cocircular: triangle %d differs", i)
		}
	}
}

func TestGKSVsBTWorkComparison(t *testing.T) {
	// The Fact 4.1 optimization makes BT's InCircle accounting comparable
	// to GKS's; both should be Θ(n log n) with BT's constant below its
	// Theorem 4.5 bound. This test pins the relationship loosely so a
	// regression in either accounting shows up.
	n := 2000
	pts := randPoints(11, n)
	bt := Triangulate(pts)
	_, gksSt := GKSTriangulate(pts)
	if bt.Stats.InCircleTests == 0 || gksSt.InCircleTests == 0 {
		t.Fatal("zero InCircle counts")
	}
	ratio := float64(bt.Stats.InCircleTests) / float64(gksSt.InCircleTests)
	if ratio < 0.5 || ratio > 50 {
		t.Fatalf("BT/GKS InCircle ratio %.2f outside sanity window", ratio)
	}
}

package delaunay

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randPoints(seed uint64, n int) []geom.Point {
	return geom.UniformSquare(rng.New(seed), n)
}

func TestTriangulateTiny(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	m := Triangulate(pts)
	if err := CheckConsistency(m); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(m); err != nil {
		t.Fatal(err)
	}
	inner := m.InnerTriangles()
	if len(inner) != 1 {
		t.Fatalf("inner triangles = %d, want 1", len(inner))
	}
}

func TestTriangulateSinglePoint(t *testing.T) {
	m := Triangulate([]geom.Point{{X: 0.5, Y: 0.5}})
	if err := CheckConsistency(m); err != nil {
		t.Fatal(err)
	}
	if len(m.Triangles) != 3 {
		t.Fatalf("triangles = %d, want 3", len(m.Triangles))
	}
}

func TestTriangulateEmpty(t *testing.T) {
	m := Triangulate(nil)
	if len(m.Triangles) != 1 {
		t.Fatalf("empty input should leave the bounding triangle, got %d", len(m.Triangles))
	}
}

func TestTriangulateRandomConsistency(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 50, 200} {
		pts := randPoints(uint64(n)*7+1, n)
		m := Triangulate(pts)
		if err := CheckConsistency(m); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := CheckDelaunay(m); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestParTriangulateMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 33, 100, 400} {
		pts := randPoints(uint64(n)*13+5, n)
		ms := Triangulate(pts)
		mp := ParTriangulate(pts)
		ts := SortTriangles(ms.Triangles)
		tp := SortTriangles(mp.Triangles)
		if len(ts) != len(tp) {
			t.Fatalf("n=%d: sequential has %d triangles, parallel %d", n, len(ts), len(tp))
		}
		for i := range ts {
			if ts[i] != tp[i] {
				t.Fatalf("n=%d: triangle %d differs: %v vs %v", n, i, ts[i], tp[i])
			}
		}
		if err := CheckConsistency(mp); err != nil {
			t.Fatalf("n=%d parallel: %v", n, err)
		}
	}
}

func TestParTriangulateSameInCircleCount(t *testing.T) {
	// Lemma 4.2: sequential and parallel perform the same ReplaceBoundary
	// calls, so the InCircle accounting must agree exactly.
	for _, n := range []int{10, 100, 500} {
		pts := randPoints(uint64(n), n)
		ms := Triangulate(pts)
		mp := ParTriangulate(pts)
		if ms.Stats.InCircleTests != mp.Stats.InCircleTests {
			t.Fatalf("n=%d: InCircle tests differ: seq=%d par=%d",
				n, ms.Stats.InCircleTests, mp.Stats.InCircleTests)
		}
		if ms.Stats.TrianglesCreated != mp.Stats.TrianglesCreated {
			t.Fatalf("n=%d: triangles created differ: seq=%d par=%d",
				n, ms.Stats.TrianglesCreated, mp.Stats.TrianglesCreated)
		}
	}
}

func TestDependenceDepthMatches(t *testing.T) {
	// The parallel round count equals the triangle-DAG depth: a triangle
	// created in round r has dependence depth exactly r.
	for _, n := range []int{50, 300} {
		pts := randPoints(uint64(n)+99, n)
		mp := ParTriangulate(pts)
		if mp.Stats.Rounds != mp.Stats.DepDepth {
			t.Fatalf("n=%d: rounds=%d depDepth=%d", n, mp.Stats.Rounds, mp.Stats.DepDepth)
		}
		ms := Triangulate(pts)
		if ms.Stats.DepDepth != mp.Stats.DepDepth {
			t.Fatalf("n=%d: seq depth=%d par depth=%d", n, ms.Stats.DepDepth, mp.Stats.DepDepth)
		}
	}
}

func TestDepthIsLogarithmic(t *testing.T) {
	// Theorem 4.3: dependence depth O(d log n) whp. Check depth/log2(n)
	// stays under a generous constant for growing n.
	for _, n := range []int{100, 1000, 4000} {
		pts := randPoints(uint64(n)*3+7, n)
		m := ParTriangulate(pts)
		ratio := float64(m.Stats.DepDepth) / math.Log2(float64(n))
		if ratio > 12 {
			t.Fatalf("n=%d: depth %d is %.1fx log2(n); dependence structure not shallow",
				n, m.Stats.DepDepth, ratio)
		}
	}
}

func TestInCircleBoundTheorem45(t *testing.T) {
	// Theorem 4.5: expected InCircle tests <= 24 n ln n + O(n).
	n := 2000
	pts := randPoints(123, n)
	m := Triangulate(pts)
	bound := 24*float64(n)*math.Log(float64(n)) + 40*float64(n)
	if float64(m.Stats.InCircleTests) > bound {
		t.Fatalf("InCircle tests %d exceed Theorem 4.5 bound %.0f", m.Stats.InCircleTests, bound)
	}
}

func TestFact41Random(t *testing.T) {
	// Reproduces Figure 1 as a checked invariant: random configurations of
	// two triangles sharing a face plus a point encroaching exactly one.
	r := rng.New(42)
	trials := 0
	for trials < 50 {
		f := [2]geom.Point{{X: r.Float64(), Y: r.Float64()}, {X: r.Float64(), Y: r.Float64()}}
		u := geom.Point{X: r.Float64(), Y: r.Float64()}
		uo := geom.Point{X: r.Float64(), Y: r.Float64()}
		v := geom.Point{X: r.Float64(), Y: r.Float64()}
		// Need u, uo on opposite sides of f and v encroaching t only.
		if geom.Orient2D(f[0], f[1], u)*geom.Orient2D(f[0], f[1], uo) >= 0 {
			continue
		}
		mk := func(apex geom.Point) [3]geom.Point {
			tri := [3]geom.Point{f[0], f[1], apex}
			if geom.Orient2D(tri[0], tri[1], tri[2]) < 0 {
				tri[0], tri[1] = tri[1], tri[0]
			}
			return tri
		}
		tt, tto := mk(u), mk(uo)
		if !(geom.InCircle(tt[0], tt[1], tt[2], v) > 0) || geom.InCircle(tto[0], tto[1], tto[2], v) > 0 {
			continue
		}
		trials++
		cand := geom.UniformSquare(r, 200)
		if err := CheckFact41(cand, f, u, uo, v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCocircularFuzz(t *testing.T) {
	// Near-cocircular points stress the exact-arithmetic fallback.
	r := rng.New(7)
	pts := geom.Dedup(geom.OnCircle(r, 60, 1e-9))
	m := Triangulate(pts)
	if err := CheckConsistency(m); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(m); err != nil {
		t.Fatal(err)
	}
	mp := ParTriangulate(pts)
	sp, pp := SortTriangles(m.Triangles), SortTriangles(mp.Triangles)
	for i := range sp {
		if sp[i] != pp[i] {
			t.Fatalf("triangle %d differs on cocircular input", i)
		}
	}
}

func TestGridPoints(t *testing.T) {
	pts := geom.Dedup(geom.GridJitter(rng.New(5), 100, 0.3))
	perm := rng.New(6).Perm(len(pts))
	shuffled := make([]geom.Point, len(pts))
	for i, p := range perm {
		shuffled[i] = pts[p]
	}
	m := ParTriangulate(shuffled)
	if err := CheckConsistency(m); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(m); err != nil {
		t.Fatal(err)
	}
}

package delaunay

import (
	"repro/internal/geom"
)

// This file holds the round arena: the reusable scratch behind
// ParTriangulate's round engine. Every per-round slice (activation
// scratch, fires, new-triangle staging, per-block predicate counters, the
// dense candidate-emission slots, pack scratch) lives here and is resized
// in place, so steady-state rounds allocate O(1) — only the scheduler's
// per-loop task state and the occasional capacity growth while the
// largest round is still being discovered. The per-triangle encroacher
// lists are carved from per-block chunked sub-arenas (i32arena) instead
// of one make per triangle; those lists outlive the round (a triangle's E
// is read when it is ripped, rounds later), so the E arenas are
// append-only for the run and cost one chunk allocation per ~8K entries
// rather than one per triangle.

// i32chunk is the allocation unit of an i32arena: large enough to
// amortize the make, small enough that a mostly-idle block does not pin
// much memory.
const i32chunk = 1 << 13

// i32arena is a bump allocator for int32 slices, used per block (each
// parallel block owns one, so take/commit need no synchronization).
type i32arena struct {
	chunks [][]int32
	ci     int // chunk the cursor is in
	pos    int // cursor within chunks[ci]
}

// take returns a zero-length slice with capacity n carved at the cursor.
// The caller appends at most n elements, then calls commit with the count
// actually kept; the un-kept tail is reused by the next take.
//
//ridt:noalloc
func (a *i32arena) take(n int) []int32 {
	for {
		if a.ci < len(a.chunks) {
			c := a.chunks[a.ci]
			if len(c)-a.pos >= n {
				return c[a.pos : a.pos : a.pos+n]
			}
			a.ci++
			a.pos = 0
			continue
		}
		size := i32chunk
		if n > size {
			size = n
		}
		//ridtvet:ignore noalloc amortized refill: a new chunk only when the cursor outruns every existing one; steady-state rounds reuse
		a.chunks = append(a.chunks, make([]int32, size))
	}
}

// commit advances the cursor past the first n elements of the last take.
//
//ridt:noalloc
func (a *i32arena) commit(n int) { a.pos += n }

// reset rewinds the cursor, keeping the chunks for reuse. The production
// round engine never resets (E lists outlive rounds); the allocation-pin
// tests and benchmarks use it to demonstrate steady-state reuse.
//
//ridt:noalloc
func (a *i32arena) reset() { a.ci, a.pos = 0, 0 }

// growSlice returns s with length n, reallocating only when the capacity
// is too small. Contents are not preserved.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// roundArena is the reusable scratch of one ParTriangulate run.
type roundArena struct {
	evalF    []fire                // dense activation output, one per candidate
	evalOK   []bool                // activation predicate flags
	fires    []fire                // packed fires of the current round
	newTris  []Tri                 // staged triangles, copied into the store
	newDepth []int32               // staged dependence depths
	preds    []geom.PredicateStats // per-block predicate counters (zeroed per round)
	dense    []uint64              // 3 face-key emission slots per fire
	keep     []bool                // emission winner flags over dense
	cand     []uint64              // double buffer for the candidate list
	counts   []int                 // PackInto block scratch
	earenas  []*i32arena           // per-block encroacher-list sub-arenas
}

func newRoundArena() *roundArena { return &roundArena{} }

// eArenas returns the first nb per-block sub-arenas, creating any missing
// ones (block counts vary round to round; arenas persist for the run).
func (ar *roundArena) eArenas(nb int) []*i32arena {
	for len(ar.earenas) < nb {
		ar.earenas = append(ar.earenas, &i32arena{})
	}
	return ar.earenas[:nb]
}

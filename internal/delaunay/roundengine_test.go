package delaunay

// Tests for the round engine's new machinery: the round-stamp claim dedup
// under forced contention, the determinism it buys, the faceEntry codec,
// the arena allocators, and the steady-state allocation pins. The
// black-box equivalence suite (delaunay_test.go, unmodified) remains the
// primary correctness oracle.

import (
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/hashtable"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func newTestFaceMap(capacity int) *hashtable.LockFreeInline[uint64, faceEntry] {
	return hashtable.NewLockFreeInline[uint64, faceEntry](capacity,
		func(k uint64) uint64 { return k }, encFace, decFace)
}

func TestFaceEntryCodec(t *testing.T) {
	cases := []faceEntry{
		{},
		{t0: 0, t1: NoTri},
		{t0: 1, t1: 2, round: 3, claim: 4},
		{t0: 1<<31 - 1, t1: NoTri, round: 1<<31 - 1, claim: -1},
		{t0: -1, t1: -2, round: -3, claim: -4},
	}
	for _, e := range cases {
		a, b := encFace(e)
		if got := decFace(a, b); got != e {
			t.Fatalf("codec roundtrip: %+v -> %+v", e, got)
		}
	}
}

// TestRoundStampClaimRace forces multi-winner contention on the claim
// stamp: many goroutines touch the same faces in the same round (the
// production engine has at most two touchers per face; here every fire
// index hits every face). After each round's barrier, every face must
// carry the minimum toucher index — i.e. exactly one deterministic winner
// — regardless of interleaving. Run under -race by the CI race job.
func TestRoundStampClaimRace(t *testing.T) {
	const nfaces = 64
	touchers := 4 * runtime.GOMAXPROCS(0)
	if touchers < 8 {
		touchers = 8
	}
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	faces := newTestFaceMap(2 * nfaces)
	for r := int32(1); r <= int32(rounds); r++ {
		// Offset the winning index each round so stale stamps from the
		// previous round would be caught.
		minK := r % 5
		// Grain 1 over the full (face, toucher) cross product: maximal
		// interleaving of same-face updates.
		parallel.ForGrain(0, nfaces*touchers, 1, func(i int) {
			fk := uint64(i%nfaces) + 1
			k := int32(i/nfaces) + minK
			attachNewFace(faces, fk, int32(i), r, k)
		})
		for f := 0; f < nfaces; f++ {
			ent, ok := faces.Load(uint64(f) + 1)
			if !ok {
				t.Fatalf("round %d: face %d missing", r, f)
			}
			if ent.round != r || ent.claim != minK {
				t.Fatalf("round %d: face %d stamp = (round %d, claim %d), want (%d, %d)",
					r, f, ent.round, ent.claim, r, minK)
			}
			// Exactly one winner: the claim equals exactly one toucher's
			// index (indices are distinct), so the emission flag pass keeps
			// exactly one slot per face.
			winners := 0
			for k := int32(0); k < int32(touchers); k++ {
				if ent.claim == k+minK {
					winners++
				}
			}
			if winners != 1 {
				t.Fatalf("round %d: face %d has %d winners", r, f, winners)
			}
		}
	}
}

// TestParTriangulateDeterministic pins the determinism argument of the
// sort-free dedup: two runs must produce bit-identical output, including
// triangle order (which depends on the candidate order the dedup emits).
func TestParTriangulateDeterministic(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(99), 1500))
	m1 := ParTriangulate(pts)
	m2 := ParTriangulate(pts)
	if len(m1.Triangles) != len(m2.Triangles) {
		t.Fatalf("triangle counts differ: %d vs %d", len(m1.Triangles), len(m2.Triangles))
	}
	for i := range m1.Triangles {
		if m1.Triangles[i].V != m2.Triangles[i].V {
			t.Fatalf("triangle %d differs across runs: %v vs %v",
				i, m1.Triangles[i].V, m2.Triangles[i].V)
		}
	}
	if m1.Stats != m2.Stats {
		t.Fatalf("stats differ across runs: %+v vs %+v", m1.Stats, m2.Stats)
	}
}

func TestI32Arena(t *testing.T) {
	var a i32arena
	// take/commit round trips, spilling across chunks.
	total := 0
	var slices [][]int32
	for i := 0; i < 100; i++ {
		n := (i * 37) % 300
		buf := a.take(n)
		if len(buf) != 0 || cap(buf) < n {
			t.Fatalf("take(%d): len=%d cap=%d", n, len(buf), cap(buf))
		}
		for j := 0; j < n; j++ {
			buf = append(buf, int32(i*1000+j))
		}
		a.commit(n)
		total += n
		slices = append(slices, buf)
	}
	// Earlier allocations must be untouched by later ones.
	for i, s := range slices {
		for j, v := range s {
			if v != int32(i*1000+j) {
				t.Fatalf("slice %d[%d] = %d, clobbered", i, j, v)
			}
		}
	}
	// Oversized request gets its own chunk.
	big := a.take(3 * i32chunk)
	if cap(big) < 3*i32chunk {
		t.Fatalf("oversize take cap=%d", cap(big))
	}
	a.commit(0)
	// After reset, chunks are reused: no allocations in steady state.
	a.reset()
	allocs := testing.AllocsPerRun(50, func() {
		a.reset()
		for i := 0; i < 64; i++ {
			buf := a.take(100)
			_ = buf
			a.commit(50)
		}
	})
	if allocs != 0 {
		t.Fatalf("i32arena steady-state allocs = %v, want 0", allocs)
	}
}

// TestFaceMapUpdateNoAlloc pins the inline-slot payoff on the actual face
// map value type: the Phase B updates (rip replacement and new-face
// attachment with the claim stamp) allocate nothing.
func TestFaceMapUpdateNoAlloc(t *testing.T) {
	faces := newTestFaceMap(1024)
	for i := uint64(1); i <= 256; i++ {
		faces.Store(i, faceEntry{t0: int32(i), t1: NoTri})
	}
	allocs := testing.AllocsPerRun(200, func() {
		attachNewFace(faces, 7, 42, 3, 5)
		faces.Update(9, func(old faceEntry, ok bool) faceEntry {
			old.t0 = 11
			old.round, old.claim = 3, 5
			return old
		})
		faces.Load(13)
	})
	if allocs != 0 {
		t.Fatalf("face-map update allocs/op = %v, want 0", allocs)
	}
}

// TestRoundAllocsSteadyState drives the real engine round by round and
// asserts that once capacities have plateaued, a round's allocation count
// is a small constant — independent of how many faces fire — instead of
// the O(m) slices plus O(m) value boxes plus the sorted merge of the old
// round path. The bound covers the scheduler's per-loop task state (a
// handful of loops per round), occasional E-arena chunks, and nothing
// proportional to the round size.
func TestRoundAllocsSteadyState(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(17), 4000))
	e := newRoundEngine(pts)
	var ms runtime.MemStats
	var rounds int
	var worst uint64
	for {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		if !e.step() {
			break
		}
		runtime.ReadMemStats(&ms)
		rounds++
		allocs := ms.Mallocs - before
		fires := len(e.ar.fires)
		// Warmup: the first rounds grow arena capacities and the face map;
		// judge only rounds after the peak sizes have been seen.
		if rounds > 12 && fires >= 64 {
			if allocs > worst {
				worst = allocs
			}
			if allocs > 192 {
				t.Fatalf("round %d (%d fires): %d allocs, want O(1) <= 192",
					rounds, fires, allocs)
			}
		}
	}
	if rounds < 15 {
		t.Fatalf("only %d rounds; steady-state window never reached", rounds)
	}
	t.Logf("rounds=%d worst steady-state allocs/round=%d", rounds, worst)
}

// TestParTriangulateTotalAllocs pins the whole-run allocation budget:
// with the arena, the inline face map, and the chunked E lists, total
// allocations are a small fraction of the triangle count (the old path
// allocated several per triangle).
func TestParTriangulateTotalAllocs(t *testing.T) {
	pts := geom.Dedup(geom.UniformSquare(rng.New(23), 2000))
	ParTriangulate(pts) // warm the scheduler pool
	m := ParTriangulate(pts)
	tris := float64(m.Stats.TrianglesCreated)
	allocs := testing.AllocsPerRun(3, func() {
		ParTriangulate(pts)
	})
	if allocs > tris/2 {
		t.Fatalf("ParTriangulate allocs/run = %.0f for %.0f triangles; want < triangles/2", allocs, tris)
	}
	t.Logf("allocs/run=%.0f triangles=%.0f (%.3f allocs/triangle)", allocs, tris, allocs/tris)
}

package delaunay

import (
	"fmt"

	"repro/internal/geom"
)

// This file implements the Guibas–Knuth–Sharir (GKS) randomized incremental
// Delaunay algorithm — the "standard textbook version" the paper contrasts
// with Boissonnat–Teillaud (Section 4). GKS locates the triangle containing
// each new point through a history DAG of all triangle updates, splits it,
// and restores the Delaunay property with Lawson edge flips.
//
// The paper's point: GKS is inherently sequential — a single iteration's
// flip cascade can have linear depth — whereas the BT variant has
// O(d log n) dependence depth. GKS is provided as the sequential baseline
// for the Section 4 benchmarks and as a cross-validator: under general
// position the Delaunay triangulation is unique, so GKS and BT must produce
// identical triangle sets.

// GKSStats counts the work of a GKS run.
type GKSStats struct {
	InCircleTests    int64
	OrientTests      int64
	Flips            int64
	LocateSteps      int64 // history-DAG nodes visited during location
	MaxLocateDepth   int
	TrianglesCreated int64
}

type gksTri struct {
	v        [3]int32 // CCW corners
	children []int32  // history DAG: triangles that replaced this one
}

type gksState struct {
	pts   []geom.Point
	tris  []gksTri
	faces map[uint64][2]int32
	stats GKSStats
	pred  *geom.PredicateStats
}

// GKSTriangulate runs the GKS incremental algorithm over the points in
// slice order (pre-shuffled by the caller; duplicates removed). The output
// mesh has the same shape as Triangulate's.
func GKSTriangulate(pts []geom.Point) (*Mesh, GKSStats) {
	n := len(pts)
	a, b, c := geom.BoundingTriangle(pts)
	all := make([]geom.Point, n, n+3)
	copy(all, pts)
	all = append(all, a, b, c)
	s := &gksState{
		pts:   all,
		faces: make(map[uint64][2]int32, 4*n+8),
		pred:  &geom.PredicateStats{},
	}
	root := [3]int32{int32(n), int32(n + 1), int32(n + 2)}
	if geom.Orient2DStats(all[root[0]], all[root[1]], all[root[2]], s.pred) < 0 {
		root[1], root[2] = root[2], root[1]
	}
	s.tris = append(s.tris, gksTri{v: root})
	s.stats.TrianglesCreated++
	for e := 0; e < 3; e++ {
		s.faces[faceKey(root[e], root[(e+1)%3])] = [2]int32{0, NoTri}
	}
	for i := 0; i < n; i++ {
		s.insert(int32(i))
	}
	// Collect the live triangles (no children).
	var final []Tri
	for id := range s.tris {
		if s.tris[id].children == nil {
			final = append(final, Tri{V: s.tris[id].v})
		}
	}
	mesh := &Mesh{Points: all, N: n, Triangles: final}
	mesh.Stats.InCircleTests = s.stats.InCircleTests
	mesh.Stats.TrianglesCreated = s.stats.TrianglesCreated
	return mesh, s.stats
}

// contains reports whether p is inside (or on the boundary of) triangle t.
func (s *gksState) contains(t int32, p int32) bool {
	v := s.tris[t].v
	for e := 0; e < 3; e++ {
		s.stats.OrientTests++
		if geom.Orient2DStats(s.pts[v[e]], s.pts[v[(e+1)%3]], s.pts[p], s.pred) < 0 {
			return false
		}
	}
	return true
}

// locate walks the history DAG to a live triangle containing p.
func (s *gksState) locate(p int32) int32 {
	cur := int32(0)
	depth := 0
	for {
		s.stats.LocateSteps++
		depth++
		ch := s.tris[cur].children
		if ch == nil {
			if depth > s.stats.MaxLocateDepth {
				s.stats.MaxLocateDepth = depth
			}
			return cur
		}
		next := NoTri
		for _, child := range ch {
			if s.contains(child, p) {
				next = child
				break
			}
		}
		if next == NoTri {
			panic(fmt.Sprintf("delaunay/gks: point %d lost in history DAG at node %d", p, cur))
		}
		cur = next
	}
}

func (s *gksState) newTri(a, b, c int32) int32 {
	id := int32(len(s.tris))
	s.tris = append(s.tris, gksTri{v: [3]int32{a, b, c}})
	s.stats.TrianglesCreated++
	return id
}

func (s *gksState) replaceFace(fk uint64, old, nw int32) {
	e, ok := s.faces[fk]
	if !ok {
		panic("delaunay/gks: missing face")
	}
	if e[0] == old {
		e[0] = nw
	} else if e[1] == old {
		e[1] = nw
	} else {
		panic("delaunay/gks: face does not reference the old triangle")
	}
	s.faces[fk] = e
}

func (s *gksState) neighborAcross(fk uint64, t int32) int32 {
	e, ok := s.faces[fk]
	if !ok {
		return NoTri
	}
	if e[0] == t {
		return e[1]
	}
	return e[0]
}

// thirdVertex returns the corner of triangle t not on edge (a, b).
func (s *gksState) thirdVertex(t, a, b int32) int32 {
	for _, v := range s.tris[t].v {
		if v != a && v != b {
			return v
		}
	}
	panic("delaunay/gks: degenerate triangle")
}

// insert adds point p: locate, split into three, legalize outward.
func (s *gksState) insert(p int32) {
	t := s.locate(p)
	v := s.tris[t].v
	// Split t into three triangles around p (t's corners are CCW, so each
	// (v[e], v[e+1], p) is CCW for strictly interior p).
	var nt [3]int32
	for e := 0; e < 3; e++ {
		nt[e] = s.newTri(v[e], v[(e+1)%3], p)
	}
	s.tris[t].children = append(s.tris[t].children, nt[0], nt[1], nt[2])
	for e := 0; e < 3; e++ {
		a, b := v[e], v[(e+1)%3]
		s.replaceFace(faceKey(a, b), t, nt[e])
		s.faces[faceKey(a, p)] = addToFacePair(s.faces[faceKey(a, p)], nt[e], faceExists(s.faces, faceKey(a, p)))
		s.faces[faceKey(b, p)] = addToFacePair(s.faces[faceKey(b, p)], nt[e], faceExists(s.faces, faceKey(b, p)))
	}
	for e := 0; e < 3; e++ {
		s.legalize(nt[e], v[e], v[(e+1)%3], p)
	}
}

func faceExists(m map[uint64][2]int32, k uint64) bool {
	_, ok := m[k]
	return ok
}

func addToFacePair(e [2]int32, t int32, existed bool) [2]int32 {
	if !existed {
		return [2]int32{t, NoTri}
	}
	if e[1] != NoTri {
		panic("delaunay/gks: face already has two triangles")
	}
	e[1] = t
	return e
}

// legalize checks edge (a, b) of triangle t (whose apex is p) and flips it
// if the opposite vertex encroaches, recursing on the two exposed edges.
func (s *gksState) legalize(t, a, b, p int32) {
	fk := faceKey(a, b)
	to := s.neighborAcross(fk, t)
	if to == NoTri {
		return // hull edge of the bounding triangle
	}
	d := s.thirdVertex(to, a, b)
	tv := s.tris[t].v
	s.stats.InCircleTests++
	if geom.InCircleStats(s.pts[tv[0]], s.pts[tv[1]], s.pts[tv[2]], s.pts[d], s.pred) <= 0 {
		return // edge is legal
	}
	s.stats.Flips++
	// Flip edge (a,b) -> (p,d). Order the new triangles CCW: t = (a,b,p)
	// CCW means (a,d,p)... derive via orientation tests for safety.
	n1 := s.mkCCW(a, d, p)
	n2 := s.mkCCW(d, b, p)
	s.tris[t].children = append(s.tris[t].children, n1, n2)
	s.tris[to].children = append(s.tris[to].children, n1, n2)
	// Rewire faces: (a,d) and (d,b) belonged to `to`; (a,p) and (p,b)
	// belonged to `t`; edge (a,b) disappears; edge (p,d) is new.
	s.replaceFace(faceKey(a, d), to, n1)
	s.replaceFace(faceKey(d, b), to, n2)
	s.replaceFace(faceKey(a, p), t, n1)
	s.replaceFace(faceKey(b, p), t, n2)
	delete(s.faces, fk)
	s.faces[faceKey(p, d)] = [2]int32{n1, n2}
	// The two edges now opposite p may have become illegal.
	s.legalize(n1, a, d, p)
	s.legalize(n2, d, b, p)
}

// mkCCW creates a triangle with the given corners ordered CCW.
func (s *gksState) mkCCW(a, b, c int32) int32 {
	s.stats.OrientTests++
	if geom.Orient2DStats(s.pts[a], s.pts[b], s.pts[c], s.pred) < 0 {
		b, c = c, b
	}
	return s.newTri(a, b, c)
}

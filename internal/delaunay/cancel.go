package delaunay

import (
	"context"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// Round-atomic cancellation and crash recovery for the parallel round
// engine. A round either commits in full or leaves no trace: stepCancel
// observes the token (and any injected fault) at phase boundaries, and
// when a round is abandoned — by cancellation or by a panic escaping a
// phase — the engine rolls the store, the face map, the encroacher
// arenas, and the stats back to the previous round's boundary. The
// candidate list is only swapped at commit, so a retried round re-derives
// the identical fire set (activation is a pure function of the rolled-back
// state) and produces the identical triangulation: cancellation and
// recovery never perturb determinism, they only decide how many rounds
// run.
//
// Rollback is lazy for panics: step arms a dirty flag before the first
// mutation and clears it at commit; a panic propagates with the flag
// still set, and the next use of the engine repairs state first. This
// avoids a deferred closure on the hot path (the defer would be a
// per-round allocation and a capturing closure inside a //ridt:noalloc
// body). Cancellation repairs eagerly, since stepCancel still owns
// control.
//
// What rollback must undo, by phase:
//
//   - Activation writes only arena scratch — nothing to undo; the round
//     counter and stats are untouched until the engine arms.
//   - Phase A advances the per-block encroacher arenas and the
//     predicate/stat counters: rewind each arena to its armed (ci, pos)
//     mark and restore the stats/pred snapshots. Staged triangle data is
//     scratch.
//   - Phase B appends the staged triangles and touches the face map:
//     truncate the triangle log to its armed length and un-touch the
//     faces fire by fire — conditionally, because a canceled round stops
//     with an arbitrary subset of fires installed. For fire k with new
//     triangle id: the ripped face's t-side is restored to f.t if it was
//     re-pointed to id; each of the two tent faces is deleted if this
//     attach created it (t0 == id) or has its t1 reset to NoTri if this
//     attach joined an existing entry. Un-processed fires match nothing
//     and no-op.
//
// Dedup stamps ((round, claim) pairs) written by an abandoned attempt are
// NOT rolled back, and need not be: the retry re-runs the identical fire
// set under the same round number, every retried touch rewrites its
// face's stamp through the same min-claim update, and the stale claims
// are a subset of the retry's own claim values — the min over the same
// set is unchanged. Stamps on faces the retry never touches cannot exist
// (identical fire set ⇒ identical touched faces). Deleted tent faces are
// value-level tombstones; the retry's attach re-creates them with fresh
// stamps.

// i32mark is a saved (chunk, offset) cursor of an i32arena.
type i32mark struct{ ci, pos int }

// rollbackState is the armed snapshot that makes one round revocable.
type rollbackState struct {
	dirty   bool // a round's mutation section is (or was) in flight
	phaseB  bool // the triangle append / face-map section was entered
	trisLen int  // triangle-log length at arm time
	m       int  // fires staged this round
	stats   Stats
	pred    geom.PredicateStats
	marks   []i32mark // encroacher-arena cursors at arm time
}

// arm snapshots everything the round may mutate. Called once per round,
// before the round counter moves.
func (e *roundEngine) arm(m int) {
	rb := &e.rb
	rb.dirty, rb.phaseB = true, false
	rb.trisLen = len(e.s.tris)
	rb.m = m
	rb.stats = e.s.stats
	rb.pred = *e.s.pred
	rb.marks = growSlice(rb.marks, len(e.ar.earenas))
	for i, a := range e.ar.earenas {
		rb.marks[i] = i32mark{a.ci, a.pos}
	}
}

// rollback repairs the engine to the state armed by the current round.
// Idempotent (a clean engine is untouched) and single-threaded: it runs
// only after the round's parallel loops have returned or panicked out.
func (e *roundEngine) rollback() {
	rb := &e.rb
	if !rb.dirty {
		return
	}
	s, ar := e.s, e.ar
	if rb.phaseB {
		base := int32(rb.trisLen)
		fires := ar.fires[:rb.m]
		for k := range fires {
			f := fires[k]
			id := base + int32(k)
			// Ripped face: this fire's Phase B update re-pointed its t side
			// at the new triangle; point it back. An entry not referencing
			// id means this fire never ran — leave it alone.
			if ent, ok := e.faces.Load(f.fk); ok {
				if ent.t0 == id {
					ent.t0 = f.t
					e.faces.Store(f.fk, ent)
				} else if ent.t1 == id {
					ent.t1 = f.t
					e.faces.Store(f.fk, ent)
				}
			}
			// Tent faces: delete what this attach created, detach what it
			// joined. The other side's fire (if any) erases its own mark;
			// whichever order the loop visits them, the key ends absent or
			// exactly as it was before the round.
			v := ar.newTris[k].V
			a, b := faceEnds(f.fk)
			apex := v[0] + v[1] + v[2] - a - b
			for _, nf := range [2]uint64{faceKey(a, apex), faceKey(b, apex)} {
				ent, ok := e.faces.Load(nf)
				if !ok {
					continue
				}
				if ent.t0 == id {
					e.faces.Delete(nf)
				} else if ent.t1 == id {
					ent.t1 = NoTri
					e.faces.Store(nf, ent)
				}
			}
		}
	}
	s.tris = s.tris[:rb.trisLen]
	s.depth = s.depth[:rb.trisLen]
	s.stats = rb.stats
	*s.pred = rb.pred
	for i, a := range ar.earenas {
		if i < len(rb.marks) {
			a.ci, a.pos = rb.marks[i].ci, rb.marks[i].pos
		} else {
			// Created during the abandoned round: nothing committed yet.
			a.ci, a.pos = 0, 0
		}
	}
	e.round--
	rb.dirty = false
}

// stepCancel runs one round unless c cancels first; see step for the
// phase structure. It reports whether more rounds remain, and ErrCanceled
// when the token was canceled — in which case the engine has been rolled
// back to the last committed round and may be resumed (same or different
// token) or abandoned. A panic escaping a phase (injected or otherwise)
// leaves the engine dirty; the next stepCancel repairs it before doing
// anything else.
//
// Boundary stages passed to a roundEngine's boundaryHook and matching the
// DelaunayPhase fault-site hit points: the top of a round (nothing armed),
// after Phase A (arenas advanced, rollback armed), and after Phase B (face
// map touched).
const (
	stageRoundTop = iota
	stagePostA
	stagePostB
)

//ridt:noalloc
func (e *roundEngine) stepCancel(c *parallel.Canceler) (bool, error) {
	if e.rb.dirty {
		e.rollback()
	}
	if c.Canceled() {
		return false, parallel.ErrCanceled
	}
	if fault.Enabled {
		fault.Inject(fault.DelaunayPhase) // round top: nothing armed yet
	}
	if e.boundaryHook != nil {
		e.boundaryHook(stageRoundTop)
	}
	s, ar, faces := e.s, e.ar, e.faces

	// Activation (scratch-only: safe to discard without rollback).
	nc := len(e.cand)
	ar.evalF = growSlice(ar.evalF, nc)
	ar.evalOK = growSlice(ar.evalOK, nc)
	cand, evalF, evalOK := e.cand, ar.evalF, ar.evalOK
	//ridtvet:ignore noalloc one activation closure per round, O(1) against O(m) work
	parallel.Blocks(0, nc, activationGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			evalOK[i] = false
			ent, ok := faces.Load(cand[i])
			if !ok {
				continue
			}
			if ent.t1 == NoTri && !s.isBoundingEdge(cand[i]) {
				continue // waiting for the second incident triangle
			}
			m0, m1 := s.minE(ent.t0), s.minE(ent.t1)
			switch {
			case m0 < m1:
				evalF[i] = fire{cand[i], ent.t0, ent.t1}
				evalOK[i] = true
			case m1 < m0:
				evalF[i] = fire{cand[i], ent.t1, ent.t0}
				evalOK[i] = true
			}
		}
	})
	ar.fires, ar.counts = parallel.PackInto(ar.fires, evalF,
		//ridtvet:ignore noalloc one pack predicate per round, O(1) against O(m) work
		func(i int) bool { return evalOK[i] }, ar.counts)
	fires := ar.fires
	m := len(fires)
	if m == 0 {
		return false, canceledErr(c)
	}
	if c.Canceled() {
		return false, parallel.ErrCanceled
	}

	// Mutation section: arm the rollback snapshot, then move the round.
	e.arm(m)
	e.round++
	round := e.round
	s.stats.Rounds++

	// Phase A (parallel, read-only on shared state; advances the arenas).
	nb := parallel.NumBlocks(m, 1)
	ar.newTris = growSlice(ar.newTris, m)
	ar.newDepth = growSlice(ar.newDepth, m)
	ar.preds = growSlice(ar.preds, nb)
	for i := range ar.preds {
		ar.preds[i] = geom.PredicateStats{}
	}
	newTris, newDepth, preds := ar.newTris, ar.newDepth, ar.preds
	earenas := ar.eArenas(nb)
	var tests atomic.Int64
	//ridtvet:ignore noalloc one Phase A closure per round, O(1) against O(m) work
	parallel.BlocksNCancel(0, m, nb, c, func(bi, lo, hi int) {
		pred := &preds[bi]
		ea := earenas[bi]
		var local int64
		for k := lo; k < hi; k++ {
			f := fires[k]
			v := s.minE(f.t)
			need := len(s.tris[f.t].E)
			if f.to != NoTri {
				need += len(s.tris[f.to].E)
			}
			buf := ea.take(need)
			tri, tc := s.newTriData(f.to, f.fk, f.t, v, pred, buf)
			ea.commit(len(tri.E))
			local += tc
			newTris[k] = tri
			d := s.depth[f.t] + 1
			if f.to != NoTri && s.depth[f.to]+1 > d {
				d = s.depth[f.to] + 1
			}
			newDepth[k] = d
		}
		tests.Add(local)
	})
	s.stats.InCircleTests += tests.Load()
	for i := range preds {
		s.pred.Merge(preds[i])
	}
	if fault.Enabled {
		fault.Inject(fault.DelaunayPhase) // post-A: arenas advanced, armed
	}
	if e.boundaryHook != nil {
		e.boundaryHook(stagePostA)
	}
	if c.Canceled() {
		e.rollback()
		return false, parallel.ErrCanceled
	}

	// Phase B: the triangle append and the face-map installs.
	e.rb.phaseB = true
	base := int32(len(s.tris))
	//ridtvet:ignore noalloc the triangle log is reserved to its final size in newRoundEngine; the append almost never regrows
	s.tris = append(s.tris, newTris...)
	//ridtvet:ignore noalloc reserved alongside the triangle log in newRoundEngine
	s.depth = append(s.depth, newDepth...)
	s.stats.TrianglesCreated += int64(m)

	ar.dense = growSlice(ar.dense, 3*m)
	dense := ar.dense
	//ridtvet:ignore noalloc one Phase B closure per round, O(1) against O(m) work
	parallel.BlocksNCancel(0, m, nb, c, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			f := fires[k]
			id := base + int32(k)
			k32 := int32(k)
			v := newTris[k].V
			// The ripped face now borders the new triangle instead of t.
			// It fired, so it already has both triangles and cannot be
			// touched as a new face this round: this fire is its only
			// toucher and wins its stamp outright.
			//ridtvet:ignore noalloc the closure does not escape Update and stays on the stack (round allocation pin)
			faces.Update(f.fk, func(old faceEntry, ok bool) faceEntry {
				if old.t0 == f.t {
					old.t0 = id
				} else {
					old.t1 = id
				}
				old.round, old.claim = round, k32
				return old
			})
			dense[3*k] = f.fk
			// Register the two new faces of t'. A new face may be touched
			// by the fire on its other side in the same round (created
			// there, attached here, in either order) — the claim-min stamp
			// picks the winner deterministically.
			a, b := faceEnds(f.fk)
			apex := v[0] + v[1] + v[2] - a - b
			nf0, nf1 := faceKey(a, apex), faceKey(b, apex)
			dense[3*k+1], dense[3*k+2] = nf0, nf1
			attachNewFace(faces, nf0, id, round, k32)
			attachNewFace(faces, nf1, id, round, k32)
		}
	})
	if fault.Enabled {
		fault.Inject(fault.DelaunayPhase) // post-B: face map touched, armed
	}
	if e.boundaryHook != nil {
		e.boundaryHook(stagePostB)
	}
	if c.Canceled() {
		e.rollback()
		return false, parallel.ErrCanceled
	}

	// Emission: keep exactly each touched face's winning slot. The flag
	// pass linearizes after Phase B's barrier, so every load observes the
	// face's final (round, claim) stamp for this round.
	ar.keep = growSlice(ar.keep, 3*m)
	keep := ar.keep
	//ridtvet:ignore noalloc one emission closure per round, O(1) against O(m) work
	parallel.Blocks(0, 3*m, emissionGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ent, _ := faces.Load(dense[i])
			keep[i] = ent.round == round && ent.claim == int32(i/3)
		}
	})
	next, counts := parallel.PackInto(ar.cand, dense,
		//ridtvet:ignore noalloc one pack predicate per round, O(1) against O(m) work
		func(i int) bool { return keep[i] }, ar.counts)
	ar.counts = counts
	ar.cand = e.cand // recycle the old candidate buffer
	e.cand = next
	e.rb.dirty = false // commit: the round is final
	return true, nil
}

// canceledErr mirrors the parallel package's exit contract.
func canceledErr(c *parallel.Canceler) error {
	if c.Canceled() {
		return parallel.ErrCanceled
	}
	return nil
}

// ParTriangulateCancel is ParTriangulate with cooperative cancellation
// observed at round phase boundaries. On cancellation it returns
// parallel.ErrCanceled and a nil mesh: rounds are atomic, so the engine's
// internal state was a valid last-committed-round triangulation, but a
// partial triangulation is not a meaningful output. Deadline-bound
// callers wanting the result must re-run without the token; the
// determinism contract guarantees the identical mesh.
func ParTriangulateCancel(pts []geom.Point, c *parallel.Canceler) (*Mesh, error) {
	e := newRoundEngine(pts)
	for {
		more, err := e.stepCancel(c)
		if err != nil {
			return nil, err
		}
		if !more {
			return e.s.finish(), nil
		}
	}
}

// ParTriangulateCtx is ParTriangulateCancel driven by a context.
func ParTriangulateCtx(ctx context.Context, pts []geom.Point) (*Mesh, error) {
	c, stop := parallel.ContextCanceler(ctx)
	defer stop()
	return ParTriangulateCancel(pts, c)
}

package rng

import (
	"repro/internal/parallel"
)

// SwapTargets returns the Knuth-shuffle swap targets H with H[i] uniform in
// [0, i]. Fixing H makes the resulting permutation a deterministic function,
// so the sequential and parallel shuffles below can be compared exactly.
func SwapTargets(r *RNG, n int) []int {
	h := make([]int, n)
	for i := 1; i < n; i++ {
		h[i] = r.Intn(i + 1)
	}
	return h
}

// SeqShuffleWithTargets applies the Knuth shuffle to [0, n) with the given
// swap targets: for i = 1..n-1, swap(a[i], a[H[i]]).
func SeqShuffleWithTargets(h []int) []int {
	n := len(h)
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	for i := 1; i < n; i++ {
		a[i], a[h[i]] = a[h[i]], a[i]
	}
	return a
}

// ParShuffleWithTargets computes the same permutation as
// SeqShuffleWithTargets but in parallel, using the reservation technique of
// Shun, Gu, Blelloch, Fineman and Gibbons (SODA 2015), the precursor to the
// framework reproduced by this repository. Iterations are processed in
// doubling prefixes; each live iteration i priority-reserves cells i and
// H[i] (smaller iteration index wins) and commits its swap when it holds
// both. The number of sub-rounds per prefix is O(log n) whp.
//
// It returns the permutation and the total number of sub-rounds, the
// empirical "iteration dependence depth" of the shuffle.
func ParShuffleWithTargets(h []int) (perm []int, rounds int) {
	n := len(h)
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	if n <= 1 {
		return a, 0
	}
	reserved := make([]parallel.PriorityCell, n)
	done := make([]bool, n)
	done[0] = true

	for lo := 1; lo < n; lo *= 2 {
		hi := lo * 2
		if hi > n {
			hi = n
		}
		live := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			live = append(live, i)
		}
		for len(live) > 0 {
			rounds++
			// Reserve: each live i offers its index at cells i and h[i].
			// The three phase bodies are cheap and uniform (two priority
			// writes / loads / resets), so a larger grain of 128 cuts
			// claim traffic; balance is a non-issue here.
			parallel.ForGrain(0, len(live), 128, func(k int) {
				i := live[k]
				reserved[i].Write(int64(i))
				reserved[h[i]].Write(int64(i))
			})
			// Commit: i proceeds iff it won both reservations.
			won := make([]bool, len(live))
			parallel.ForGrain(0, len(live), 128, func(k int) {
				i := live[k]
				w1, _ := reserved[i].Load()
				w2, _ := reserved[h[i]].Load()
				if w1 == int64(i) && w2 == int64(i) {
					a[i], a[h[i]] = a[h[i]], a[i]
					won[k] = true
					done[i] = true
				}
			})
			// Clear reservations made this round and drop finished items.
			parallel.ForGrain(0, len(live), 128, func(k int) {
				i := live[k]
				reserved[i].Reset()
				reserved[h[i]].Reset()
			})
			live = parallel.Pack(live, func(k int) bool { return !won[k] })
		}
	}
	return a, rounds
}

// ParPerm returns a uniformly random permutation of [0, n) computed with the
// parallel shuffle, seeded deterministically.
func ParPerm(seed uint64, n int) []int {
	h := SwapTargets(New(seed), n)
	p, _ := ParShuffleWithTargets(h)
	return p
}

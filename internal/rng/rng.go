// Package rng provides the deterministic pseudo-randomness used throughout
// the repository: a splittable SplitMix64 generator, uniformly random
// permutations (sequential Knuth shuffle and a parallel variant), and the
// workload distributions the experiments draw from.
//
// Randomized incremental algorithms are analyzed over uniformly random
// insertion orders, so every experiment takes an explicit seed and derives
// all of its randomness from it; runs are exactly reproducible.
package rng

import "math"

// RNG is a small, fast, deterministic generator (SplitMix64). It is not
// safe for concurrent use; use Split to derive independent streams for
// parallel workers.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is independent of (and
// deterministic given) the parent's current state. The parent advances.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask32
	t = aLo*bHi + m
	lo |= (t & mask32) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second value is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a uniformly random permutation of [0, n) via the Knuth
// (Fisher–Yates) shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ShuffleSlice permutes any slice uniformly at random in place.
func ShuffleSlice[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Exp returns an exponential variate with rate lambda.
func (r *RNG) Exp(lambda float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

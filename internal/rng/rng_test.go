package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-square-ish sanity: each of 10 buckets within 3% of expectation.
	r := New(99)
	const buckets, samples = 10, 1000000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[r.Intn(buckets)]++
	}
	want := samples / buckets
	for b, c := range count {
		if math.Abs(float64(c-want)) > 0.03*float64(want) {
			t.Fatalf("bucket %d: %d vs expected %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// First element of a random permutation of [0,4) should be uniform.
	r := New(5)
	var count [4]int
	const trials = 40000
	for i := 0; i < trials; i++ {
		count[r.Perm(4)[0]]++
	}
	for v, c := range count {
		if math.Abs(float64(c)-trials/4) > 0.05*trials/4 {
			t.Fatalf("value %d first with count %d, expected ~%d", v, c, trials/4)
		}
	}
}

func TestShuffleSlice(t *testing.T) {
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	ShuffleSlice(New(11), xs)
	seen := map[string]bool{}
	for _, s := range xs {
		seen[s] = true
	}
	for _, s := range orig {
		if !seen[s] {
			t.Fatalf("element %q lost in shuffle", s)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	sum, sum2 := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal moments: mean=%v var=%v", mean, variance)
	}
}

func TestParShuffleMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 100, 5000} {
		h := SwapTargets(New(uint64(n)+1), n)
		seq := SeqShuffleWithTargets(h)
		par, _ := ParShuffleWithTargets(h)
		if len(seq) != len(par) {
			t.Fatalf("n=%d: length mismatch", n)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("n=%d: position %d: seq=%d par=%d", n, i, seq[i], par[i])
			}
		}
	}
}

func TestParShuffleRoundsLogarithmic(t *testing.T) {
	// Shun et al.: the shuffle's dependence depth is O(log n) whp; the
	// doubling schedule runs O(log n) prefixes with O(1) expected
	// sub-rounds each, so total sub-rounds should be O(log n) · O(1).
	n := 1 << 15
	h := SwapTargets(New(99), n)
	_, rounds := ParShuffleWithTargets(h)
	if limit := 8 * 15; rounds > limit {
		t.Fatalf("sub-rounds %d exceed %d", rounds, limit)
	}
}

func TestParPermIsPermutation(t *testing.T) {
	p := ParPerm(123, 10000)
	seen := make([]bool, len(p))
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in parallel permutation")
		}
		seen[v] = true
	}
}

// Package depgraph captures iteration dependence graphs (Definition 1 of
// the paper) so experiments can measure their depth and in-degree
// distributions and compare them with the paper's high-probability bounds.
//
// Nodes are created in a topological order (the algorithm's own iteration
// or sub-iteration order), so longest-path depth is a single linear pass.
package depgraph

import "sync"

// DAG is an iteration dependence graph under construction. Node ids are
// dense ints in creation order; every edge must go from a lower id to a
// higher id. Safe for concurrent AddNode/AddEdge through the locked
// variants; the plain methods are for single-threaded capture.
type DAG struct {
	mu    sync.Mutex
	preds [][]int32
}

// New returns an empty DAG with capacity for n nodes.
func New(n int) *DAG {
	return &DAG{preds: make([][]int32, 0, n)}
}

// AddNode appends a node and returns its id.
func (d *DAG) AddNode() int {
	d.preds = append(d.preds, nil)
	return len(d.preds) - 1
}

// AddEdge records a dependence of node `to` on node `from` (from < to).
func (d *DAG) AddEdge(from, to int) {
	if from >= to {
		panic("depgraph: edge must go forward in creation order")
	}
	d.preds[to] = append(d.preds[to], int32(from))
}

// AddNodeLocked is AddNode under the DAG's mutex.
func (d *DAG) AddNodeLocked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.AddNode()
}

// AddEdgeLocked is AddEdge under the DAG's mutex.
func (d *DAG) AddEdgeLocked(from, to int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.AddEdge(from, to)
}

// Len returns the number of nodes.
func (d *DAG) Len() int { return len(d.preds) }

// Edges returns the total number of dependence edges.
func (d *DAG) Edges() int {
	m := 0
	for _, ps := range d.preds {
		m += len(ps)
	}
	return m
}

// Depth returns the length of the longest directed path measured in nodes
// (a single node has depth 1; the empty DAG has depth 0). This is the
// iteration dependence depth D(G) of the paper plus one, since the paper
// counts edges; see DepthEdges.
func (d *DAG) Depth() int {
	depth := make([]int32, len(d.preds))
	best := int32(0)
	for v, ps := range d.preds {
		dv := int32(1)
		for _, u := range ps {
			if depth[u]+1 > dv {
				dv = depth[u] + 1
			}
		}
		depth[v] = dv
		if dv > best {
			best = dv
		}
	}
	return int(best)
}

// DepthEdges returns the longest path measured in edges, matching the
// paper's D(G).
func (d *DAG) DepthEdges() int {
	n := d.Depth()
	if n == 0 {
		return 0
	}
	return n - 1
}

// InDegreeHistogram returns hist where hist[k] counts nodes with in-degree
// k (hist is truncated after the largest occurring degree).
func (d *DAG) InDegreeHistogram() []int {
	maxDeg := 0
	for _, ps := range d.preds {
		if len(ps) > maxDeg {
			maxDeg = len(ps)
		}
	}
	hist := make([]int, maxDeg+1)
	for _, ps := range d.preds {
		hist[len(ps)]++
	}
	return hist
}

// MaxInDegree returns the largest in-degree (0 for the empty DAG).
func (d *DAG) MaxInDegree() int {
	m := 0
	for _, ps := range d.preds {
		if len(ps) > m {
			m = len(ps)
		}
	}
	return m
}

package depgraph

import (
	"testing"

	"repro/internal/parallel"
)

func TestEmptyAndSingle(t *testing.T) {
	d := New(0)
	if d.Depth() != 0 || d.DepthEdges() != 0 || d.Len() != 0 {
		t.Fatal("empty DAG")
	}
	d.AddNode()
	if d.Depth() != 1 || d.DepthEdges() != 0 {
		t.Fatalf("single node: depth=%d edges=%d", d.Depth(), d.DepthEdges())
	}
}

func TestChainDepth(t *testing.T) {
	d := New(10)
	prev := d.AddNode()
	for i := 1; i < 10; i++ {
		cur := d.AddNode()
		d.AddEdge(prev, cur)
		prev = cur
	}
	if d.Depth() != 10 || d.DepthEdges() != 9 {
		t.Fatalf("chain: depth=%d edges=%d", d.Depth(), d.DepthEdges())
	}
	if d.Edges() != 9 {
		t.Fatalf("edge count=%d", d.Edges())
	}
}

func TestDiamond(t *testing.T) {
	d := New(4)
	a := d.AddNode()
	b := d.AddNode()
	c := d.AddNode()
	e := d.AddNode()
	d.AddEdge(a, b)
	d.AddEdge(a, c)
	d.AddEdge(b, e)
	d.AddEdge(c, e)
	if d.Depth() != 3 {
		t.Fatalf("diamond depth=%d want 3", d.Depth())
	}
	if d.MaxInDegree() != 2 {
		t.Fatalf("max in-degree=%d", d.MaxInDegree())
	}
	hist := d.InDegreeHistogram()
	if hist[0] != 1 || hist[1] != 2 || hist[2] != 1 {
		t.Fatalf("hist=%v", hist)
	}
}

func TestBackwardEdgePanics(t *testing.T) {
	d := New(2)
	a := d.AddNode()
	b := d.AddNode()
	defer func() {
		if recover() == nil {
			t.Fatal("backward edge must panic")
		}
	}()
	d.AddEdge(b, a)
}

func TestConcurrentConstruction(t *testing.T) {
	d := New(1000)
	root := d.AddNodeLocked()
	parallel.For(0, 999, func(i int) {
		id := d.AddNodeLocked()
		d.AddEdgeLocked(root, id)
	})
	if d.Len() != 1000 {
		t.Fatalf("len=%d", d.Len())
	}
	if d.Depth() != 2 {
		t.Fatalf("star depth=%d want 2", d.Depth())
	}
	if d.Edges() != 999 {
		t.Fatalf("edges=%d", d.Edges())
	}
}

func TestWideDAGDepth(t *testing.T) {
	// Levels of width 3 with full bipartite edges between adjacent levels.
	const levels, width = 20, 3
	d := New(levels * width)
	var prev []int
	for l := 0; l < levels; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			id := d.AddNode()
			for _, p := range prev {
				d.AddEdge(p, id)
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	if d.Depth() != levels {
		t.Fatalf("depth=%d want %d", d.Depth(), levels)
	}
}

package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func slackFn(r *rng.RNG) func() float64 {
	return func() float64 { return 0.1 * r.Float64() }
}

func TestSolveDMatches2D(t *testing.T) {
	// The d-dimensional solver at d=2 must agree with the planar solver.
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(60)
		cons2 := TangentConstraints(r, n)
		cx, cy := RandomObjective(r)
		consD := make([]ConstraintD, n)
		for i, c := range cons2 {
			consD[i] = ConstraintD{A: []float64{c.Ax, c.Ay}, B: c.B}
		}
		want, _ := Solve(cons2, cx, cy)
		x, feasible, _ := SolveD(consD, []float64{cx, cy})
		if feasible != want.Feasible {
			t.Fatalf("trial %d: feasible=%v want %v", trial, feasible, want.Feasible)
		}
		if feasible {
			got := cx*x[0] + cy*x[1]
			if math.Abs(got-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
				t.Fatalf("trial %d: value %v want %v", trial, got, want.Value)
			}
		}
	}
}

func TestSolveD3MatchesBruteForce(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(18)
		cons := SphereTangentD(r, slackFn(r), n, 3)
		obj := unitObj(r, 3)
		x, feasible, _ := SolveD(cons, obj)
		bx, bFeasible := BruteForceD(cons, obj)
		if feasible != bFeasible {
			t.Fatalf("trial %d: feasible=%v brute=%v", trial, feasible, bFeasible)
		}
		if feasible {
			got, want := dot(obj, x), dot(obj, bx)
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("trial %d n=%d: value %v want %v", trial, n, got, want)
			}
		}
	}
}

func TestParSolveDMatchesSolveD(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		d := 2 + r.Intn(3) // d in {2,3,4}
		n := 5 + r.Intn(200)
		cons := SphereTangentD(r, slackFn(r), n, d)
		obj := unitObj(r, d)
		xs, fs, _ := SolveD(cons, obj)
		xp, fp, _ := ParSolveD(cons, obj)
		if fs != fp {
			t.Fatalf("trial %d d=%d: feasibility differs", trial, d)
		}
		if fs {
			vs, vp := dot(obj, xs), dot(obj, xp)
			if math.Abs(vs-vp) > 1e-8*(1+math.Abs(vs)) {
				t.Fatalf("trial %d d=%d: value seq=%v par=%v", trial, d, vs, vp)
			}
		}
	}
}

func TestSolveDInfeasible(t *testing.T) {
	// x_1 >= 1 and x_1 <= -1 simultaneously.
	cons := []ConstraintD{
		{A: []float64{-1, 0, 0}, B: -1},
		{A: []float64{1, 0, 0}, B: -1},
	}
	if _, feasible, _ := SolveD(cons, []float64{1, 1, 1}); feasible {
		t.Fatal("infeasible 3D program reported feasible")
	}
	if _, feasible, _ := ParSolveD(cons, []float64{1, 1, 1}); feasible {
		t.Fatal("infeasible 3D program reported feasible (parallel)")
	}
}

func TestSolveDUnconstrained(t *testing.T) {
	x, feasible, _ := SolveD(nil, []float64{1, -1, 1})
	if !feasible {
		t.Fatal("box-only program is feasible")
	}
	want := []float64{-Bound, Bound, -Bound}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x=%v want %v", x, want)
		}
	}
}

func TestSolveDWorkNearLinear(t *testing.T) {
	// Expected work is O(d! n) — for fixed d, linear in n.
	r := rng.New(4)
	d := 3
	var works [2]int64
	sizes := []int{2000, 16000}
	for i, n := range sizes {
		cons := SphereTangentD(r, slackFn(r), n, d)
		obj := unitObj(r, d)
		_, _, w := SolveD(cons, obj)
		works[i] = w
	}
	growth := float64(works[1]) / float64(works[0])
	sizeRatio := float64(sizes[1]) / float64(sizes[0])
	if growth > 3*sizeRatio {
		t.Fatalf("work grew %.1fx for a %.0fx size increase; not linear", growth, sizeRatio)
	}
}

func unitObj(r *rng.RNG, d int) []float64 {
	obj := make([]float64, d)
	norm := 0.0
	for i := range obj {
		obj[i] = r.NormFloat64()
		norm += obj[i] * obj[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		obj[0], norm = 1, 1
	}
	for i := range obj {
		obj[i] /= norm
	}
	return obj
}

package lp

import (
	"math"

	"repro/internal/rng"
)

// TangentConstraints returns n constraints whose boundary lines are tangent
// to the unit circle at random angles: a_i = (cos θ, sin θ), b_i = 1. The
// feasible region is a random polygon circumscribing the circle, so many
// constraints are tight during a random-order run — the canonical Seidel
// stress workload. Objective directions should be unit vectors.
func TangentConstraints(r *rng.RNG, n int) []Constraint {
	cons := make([]Constraint, n)
	for i := range cons {
		th := 2 * math.Pi * r.Float64()
		cons[i] = Constraint{Ax: math.Cos(th), Ay: math.Sin(th), B: 1 + 0.1*r.Float64()}
	}
	return cons
}

// LooseConstraints returns n constraints all satisfied by a ball around the
// origin (b_i >= 1), plus slack variation, so very few are ever tight.
func LooseConstraints(r *rng.RNG, n int) []Constraint {
	cons := make([]Constraint, n)
	for i := range cons {
		th := 2 * math.Pi * r.Float64()
		cons[i] = Constraint{Ax: math.Cos(th), Ay: math.Sin(th), B: 1 + 10*r.Float64()}
	}
	return cons
}

// InfeasibleConstraints returns constraints with an empty intersection:
// three halfplanes pointing pairwise away plus random padding.
func InfeasibleConstraints(r *rng.RNG, n int) []Constraint {
	cons := make([]Constraint, 0, n+3)
	// x <= -1, -x <= -1 (x >= 1): already empty; add y padding too.
	cons = append(cons,
		Constraint{1, 0, -1},
		Constraint{-1, 0, -1},
		Constraint{0, 1, -1})
	for len(cons) < n {
		th := 2 * math.Pi * r.Float64()
		cons = append(cons, Constraint{Ax: math.Cos(th), Ay: math.Sin(th), B: 1 + r.Float64()})
	}
	// The certificate constraints must be spread randomly for the random-
	// order analysis to apply.
	rng.ShuffleSlice(r, cons)
	return cons[:n]
}

// RandomObjective returns a uniformly random unit objective direction.
func RandomObjective(r *rng.RNG) (cx, cy float64) {
	th := 2 * math.Pi * r.Float64()
	return math.Cos(th), math.Sin(th)
}

// Package lp implements Section 5.1 of the paper: Seidel's randomized
// incremental algorithm for two-dimensional linear programming, and its
// Type 2 parallelization.
//
// The problem: minimize c·x subject to halfplane constraints a_i·x <= b_i,
// with constraints processed in the given (random) order. The solution is
// kept bounded by an implicit bounding box, so the optimum always exists
// unless the program is infeasible.
//
// An iteration is special when its constraint makes the current optimum
// infeasible (probability <= 2/j by backwards analysis: the optimum is
// defined by at most two constraints). A special iteration solves a
// one-dimensional LP over all earlier constraints along the new
// constraint's line.
package lp

import (
	"math"
)

// Constraint is the halfplane A.X*x + A.Y*y <= B.
type Constraint struct {
	Ax, Ay, B float64
}

// Violates reports whether (x, y) violates the constraint beyond a small
// absolute tolerance (constraints are scaled to unit normals by the
// generators, so an absolute epsilon is meaningful).
func (c Constraint) Violates(x, y float64) bool {
	return c.Ax*x+c.Ay*y > c.B+1e-9
}

// Result is the outcome of a linear program.
type Result struct {
	Feasible bool
	X, Y     float64
	Value    float64 // objective value c·(X, Y)
}

// Stats reports the counters of a run.
type Stats struct {
	Special    int   // special (tight-constraint) iterations
	SideTests  int64 // constraint evaluations at a point (O(1) work units)
	OneDimWork int64 // constraints processed inside 1D LPs
	Rounds     int   // prefix rounds of the parallel schedule (0 sequential)
	SubRounds  int
	MaxProbe   int // widest parallel side-test probe batch (parallel schedule)
	MaxRegular int // largest regular block committed in one batch
}

// Bound is the half-width of the implicit bounding box. Optima are sought
// within [-Bound, Bound]^2; the generators produce programs whose true
// optimum is well inside.
const Bound = 1e6

// solve1D finds, along the line ax*x + ay*y = b (a tight constraint), the
// feasible interval under cons[0:k] intersected with the bounding box, and
// returns the point minimizing (cx, cy), or infeasible. eval is invoked
// once per constraint (the O(i) work of a special iteration).
func solve1D(ax, ay, b float64, cons []Constraint, cx, cy float64, work *int64) (float64, float64, bool) {
	// Parametrize the line as P(t) = p0 + t*d.
	var p0x, p0y, dx, dy float64
	if math.Abs(ay) >= math.Abs(ax) {
		// y = (b - ax*x)/ay; param by x.
		p0x, p0y = 0, b/ay
		dx, dy = 1, -ax/ay
	} else {
		p0x, p0y = b/ax, 0
		dx, dy = -ay/ax, 1
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	clip := func(aAx, aAy, aB float64) bool {
		// Constraint along the line: (aA·d) t <= aB - aA·p0.
		den := aAx*dx + aAy*dy
		num := aB - (aAx*p0x + aAy*p0y)
		const eps = 1e-12
		if math.Abs(den) < eps {
			return num >= -1e-9 // parallel: feasible iff line is inside
		}
		t := num / den
		if den > 0 {
			if t < hi {
				hi = t
			}
		} else {
			if t > lo {
				lo = t
			}
		}
		return lo <= hi+1e-9
	}
	// Bounding box as four clips.
	if !clip(1, 0, Bound) || !clip(-1, 0, Bound) || !clip(0, 1, Bound) || !clip(0, -1, Bound) {
		return 0, 0, false
	}
	for _, c := range cons {
		*work++
		if !clip(c.Ax, c.Ay, c.B) {
			return 0, 0, false
		}
	}
	// Minimize (cx, cy)·P(t) = const + t (c·d).
	slope := cx*dx + cy*dy
	t := lo
	if slope > 0 {
		t = lo
	} else if slope < 0 {
		t = hi
	}
	if math.IsInf(t, 0) {
		return 0, 0, false // unbounded along the line beyond the box (cannot happen after box clips)
	}
	return p0x + t*dx, p0y + t*dy, true
}

// initialOptimum returns the corner of the bounding box minimizing the
// objective; this is the optimum before any constraint is added.
func initialOptimum(cx, cy float64) (float64, float64) {
	x, y := Bound, Bound
	if cx > 0 {
		x = -Bound
	}
	if cy > 0 {
		y = -Bound
	}
	return x, y
}

// Solve runs the sequential incremental algorithm over the constraints in
// slice order, minimizing (cx, cy)·(x, y).
func Solve(cons []Constraint, cx, cy float64) (Result, Stats) {
	var st Stats
	x, y := initialOptimum(cx, cy)
	for i, c := range cons {
		st.SideTests++
		if !c.Violates(x, y) {
			continue
		}
		st.Special++
		nx, ny, ok := solve1D(c.Ax, c.Ay, c.B, cons[:i], cx, cy, &st.OneDimWork)
		if !ok {
			return Result{Feasible: false}, st
		}
		x, y = nx, ny
	}
	return Result{Feasible: true, X: x, Y: y, Value: cx*x + cy*y}, st
}

// BruteForce solves the LP by enumerating all constraint-pair intersections
// plus box corners; O(n^3). Test oracle only.
func BruteForce(cons []Constraint, cx, cy float64) Result {
	feasible := func(x, y float64) bool {
		if math.Abs(x) > Bound+1e-6 || math.Abs(y) > Bound+1e-6 {
			return false
		}
		for _, c := range cons {
			if c.Violates(x, y) {
				return false
			}
		}
		return true
	}
	best := Result{Feasible: false}
	consider := func(x, y float64) {
		if !feasible(x, y) {
			return
		}
		v := cx*x + cy*y
		if !best.Feasible || v < best.Value {
			best = Result{Feasible: true, X: x, Y: y, Value: v}
		}
	}
	// Box corners.
	for _, sx := range []float64{-Bound, Bound} {
		for _, sy := range []float64{-Bound, Bound} {
			consider(sx, sy)
		}
	}
	all := make([]Constraint, 0, len(cons)+4)
	all = append(all, cons...)
	all = append(all,
		Constraint{1, 0, Bound}, Constraint{-1, 0, Bound},
		Constraint{0, 1, Bound}, Constraint{0, -1, Bound})
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			det := a.Ax*b.Ay - a.Ay*b.Ax
			if math.Abs(det) < 1e-15 {
				continue
			}
			x := (a.B*b.Ay - a.Ay*b.B) / det
			y := (a.Ax*b.B - a.B*b.Ax) / det
			consider(x, y)
		}
	}
	return best
}

package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSolveMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(40)
		cons := TangentConstraints(r, n)
		cx, cy := RandomObjective(r)
		got, _ := Solve(cons, cx, cy)
		want := BruteForce(cons, cx, cy)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible=%v want %v", trial, got.Feasible, want.Feasible)
		}
		if got.Feasible && math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
			t.Fatalf("trial %d: value %.9f want %.9f", trial, got.Value, want.Value)
		}
	}
}

func TestParSolveMatchesSequential(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(200)
		cons := TangentConstraints(r, n)
		cx, cy := RandomObjective(r)
		seq, seqSt := Solve(cons, cx, cy)
		par, parSt := ParSolve(cons, cx, cy)
		if seq.Feasible != par.Feasible {
			t.Fatalf("trial %d n=%d: feasible seq=%v par=%v", trial, n, seq.Feasible, par.Feasible)
		}
		if seq.Feasible {
			if math.Abs(seq.Value-par.Value) > 1e-9*(1+math.Abs(seq.Value)) {
				t.Fatalf("trial %d: value seq=%.12f par=%.12f", trial, seq.Value, par.Value)
			}
			if math.Abs(seq.X-par.X) > 1e-6 || math.Abs(seq.Y-par.Y) > 1e-6 {
				t.Fatalf("trial %d: optimum differs: (%g,%g) vs (%g,%g)", trial, seq.X, seq.Y, par.X, par.Y)
			}
		}
		// The parallel schedule must execute exactly the sequential special
		// iterations (it reorders regular ones only).
		if seqSt.Special+1 != parSt.Special && seqSt.Special != parSt.Special {
			// RunFirst counts as special in the schedule even when
			// constraint 0 is loose; allow the off-by-one.
			t.Fatalf("trial %d: special seq=%d par=%d", trial, seqSt.Special, parSt.Special)
		}
	}
}

// TestParSolveBatchedLarge pushes the batched reserve/commit schedule to a
// prefix width where probes fan out on the pool; under -race it checks the
// optimum publication between committing and probing goroutines.
func TestParSolveBatchedLarge(t *testing.T) {
	n := 60000
	if testing.Short() {
		n = 20000
	}
	r := rng.New(8)
	cons := TangentConstraints(r, n)
	cx, cy := RandomObjective(r)
	seq, _ := Solve(cons, cx, cy)
	par, parSt := ParSolve(cons, cx, cy)
	if seq.Feasible != par.Feasible {
		t.Fatalf("feasible seq=%v par=%v", seq.Feasible, par.Feasible)
	}
	if math.Abs(seq.Value-par.Value) > 1e-9*(1+math.Abs(seq.Value)) {
		t.Fatalf("value seq=%.12f par=%.12f", seq.Value, par.Value)
	}
	if parSt.MaxProbe == 0 || parSt.MaxRegular == 0 {
		t.Fatalf("batched schedule recorded no batches: %+v", parSt)
	}
}

func TestInfeasible(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		cons := InfeasibleConstraints(r, 20+r.Intn(100))
		cx, cy := RandomObjective(r)
		seq, _ := Solve(cons, cx, cy)
		par, _ := ParSolve(cons, cx, cy)
		if seq.Feasible || par.Feasible {
			t.Fatalf("trial %d: infeasible program reported feasible (seq=%v par=%v)",
				trial, seq.Feasible, par.Feasible)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	res, _ := Solve(nil, 1, 0)
	if !res.Feasible || res.X != -Bound {
		t.Fatalf("empty program: got %+v", res)
	}
	res, _ = ParSolve(nil, 1, 0)
	if !res.Feasible || res.X != -Bound {
		t.Fatalf("empty parallel program: got %+v", res)
	}
	res, _ = ParSolve([]Constraint{{-1, 0, -2}}, 1, 0) // x >= 2
	if !res.Feasible || math.Abs(res.X-2) > 1e-9 {
		t.Fatalf("single constraint: got %+v", res)
	}
}

func TestSpecialIterationsLogarithmic(t *testing.T) {
	// Theorem 2.2 / Section 5.1: expected number of special iterations is
	// O(log n); check the average over trials stays within a constant of
	// 2 ln n (the backwards-analysis bound Σ 2/j).
	r := rng.New(4)
	n := 4096
	trials := 20
	total := 0
	for trial := 0; trial < trials; trial++ {
		cons := TangentConstraints(r, n)
		cx, cy := RandomObjective(r)
		_, st := Solve(cons, cx, cy)
		total += st.Special
	}
	avg := float64(total) / float64(trials)
	bound := 2*math.Log(float64(n)) + 4
	if avg > bound {
		t.Fatalf("avg special iterations %.2f exceeds 2 ln n + 4 = %.2f", avg, bound)
	}
}

func TestLinearWork(t *testing.T) {
	// Expected total work is O(n): 1D-LP work summed over special
	// iterations should be a small multiple of n.
	r := rng.New(5)
	for _, n := range []int{1000, 4000, 16000} {
		cons := TangentConstraints(r, n)
		cx, cy := RandomObjective(r)
		_, st := Solve(cons, cx, cy)
		if st.OneDimWork > int64(20*n) {
			t.Fatalf("n=%d: 1D work %d is superlinear", n, st.OneDimWork)
		}
	}
}

func TestParallelConstraintToTightLine(t *testing.T) {
	// A constraint whose boundary is parallel to the tight constraint's
	// line exercises the degenerate clip branch (a·d ≈ 0) in both the
	// sequential and the reduction-based 1D solvers.
	cons := []Constraint{
		{Ax: 0, Ay: -1, B: -1}, // y >= 1 (tight at the optimum for c=(0,1))
		{Ax: 0, Ay: -1, B: -2}, // y >= 2, parallel, tighter
		{Ax: 1, Ay: 0, B: 5},   // x <= 5
	}
	seq, _ := Solve(cons, 0, 1)
	par, _ := ParSolve(cons, 0, 1)
	if !seq.Feasible || !par.Feasible {
		t.Fatal("feasible program reported infeasible")
	}
	if math.Abs(seq.Y-2) > 1e-9 || math.Abs(par.Y-2) > 1e-9 {
		t.Fatalf("optimum y: seq=%v par=%v want 2", seq.Y, par.Y)
	}
	// Contradictory parallel constraints: y >= 2 and y <= 1.
	bad := []Constraint{
		{Ax: 0, Ay: -1, B: -2},
		{Ax: 0, Ay: 1, B: 1},
	}
	if res, _ := ParSolve(bad, 0, 1); res.Feasible {
		t.Fatal("contradictory parallel constraints reported feasible")
	}
}

func TestLooseWorkload(t *testing.T) {
	r := rng.New(6)
	cons := LooseConstraints(r, 1000)
	res, st := ParSolve(cons, 1, 0)
	if !res.Feasible {
		t.Fatal("loose workload should be feasible")
	}
	if bound := 2*math.Log(1000) + 4; float64(st.Special) > bound {
		t.Fatalf("special iterations %d exceed 2 ln n + 4 = %.1f", st.Special, bound)
	}
}

package lp

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/linalg"
)

// This file implements the d-dimensional extension the paper sketches in
// Section 5.1: a randomized incremental d-dimensional LP that recursively
// calls a (d-1)-dimensional LP on the boundary of each violated constraint,
// reusing the same random constraint order at every level. Expected work is
// O(d! n); the parallel version applies the Type 2 prefix schedule at every
// recursion level, for O(d! log^{d-1} n) depth whp.

// ConstraintD is the halfplane A·x <= B in len(A) dimensions.
type ConstraintD struct {
	A []float64
	B float64
}

// ViolatesD reports whether x violates the constraint.
func (c ConstraintD) ViolatesD(x []float64) bool {
	return dot(c.A, x) > c.B+1e-9
}

func dot(a, x []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * x[i]
	}
	return s
}

// SolveD minimizes obj·x subject to cons, within the box |x_i| <= Bound,
// processing constraints in slice order (pre-shuffled by the caller).
// It returns the optimum point, feasibility, and the number of constraint
// evaluations performed (the work measure).
func SolveD(cons []ConstraintD, obj []float64) (x []float64, feasible bool, work int64) {
	x, feasible = solveRec(cons, obj, &work, false)
	return x, feasible, work
}

// ParSolveD is SolveD with the Type 2 prefix schedule applied at every
// recursion level: violation checks over a prefix run in parallel and the
// earliest violated constraint recurses. The result matches SolveD.
func ParSolveD(cons []ConstraintD, obj []float64) (x []float64, feasible bool, work int64) {
	x, feasible = solveRec(cons, obj, &work, true)
	return x, feasible, work
}

// boxCorner returns the corner of [-Bound, Bound]^d minimizing obj.
func boxCorner(obj []float64) []float64 {
	x := make([]float64, len(obj))
	for i, c := range obj {
		if c > 0 {
			x[i] = -Bound
		} else {
			x[i] = Bound
		}
	}
	return x
}

func solveRec(cons []ConstraintD, obj []float64, work *int64, par bool) ([]float64, bool) {
	d := len(obj)
	if d == 1 {
		return solve1Dim(cons, obj[0], work)
	}
	x := boxCorner(obj)
	infeasible := false

	handleViolation := func(i int) bool {
		sub, subObj, lift, ok := projectOnto(cons[i], cons[:i], obj)
		if !ok {
			// The tight constraint has a (numerically) zero normal: it is
			// either vacuous or contradictory.
			return cons[i].B >= -1e-9
		}
		y, feasible := solveRec(sub, subObj, work, par)
		if !feasible {
			return false
		}
		x = lift(y)
		return true
	}

	if !par {
		for i := range cons {
			*work++
			if !cons[i].ViolatesD(x) {
				continue
			}
			if !handleViolation(i) {
				return nil, false
			}
		}
		if infeasible {
			return nil, false
		}
		return x, true
	}

	var aWork atomic.Int64
	// The optimum x moves only when a violated constraint commits, so the
	// hooks satisfy the SpecialOnce contract at every recursion level.
	hooks := core.Type2Hooks{
		SpecialOnce: true,
		RunFirst: func() {
			if len(cons) == 0 {
				return
			}
			aWork.Add(1)
			if cons[0].ViolatesD(x) && !handleViolation(0) {
				infeasible = true
			}
		},
		IsSpecial: func(k int) bool {
			if infeasible {
				return false
			}
			return cons[k].ViolatesD(x)
		},
		RunRegular: func(lo, hi int) {},
		RunSpecial: func(k int) {
			if infeasible {
				return
			}
			if !handleViolation(k) {
				infeasible = true
			}
		},
	}
	t2 := core.RunType2(len(cons), hooks)
	// Charge the schedule's deterministic window accounting rather than
	// per-call counts, which reservation pruning makes scheduling-dependent.
	*work += aWork.Load() + t2.Checks
	if infeasible {
		return nil, false
	}
	return x, true
}

// solve1Dim clips the segment [-Bound, Bound] by every constraint and
// returns the endpoint minimizing obj1*x. The clip loop is a parallel
// reduction in spirit; sequential here since d=1 subproblems are tiny.
func solve1Dim(cons []ConstraintD, obj1 float64, work *int64) ([]float64, bool) {
	lo, hi := -Bound, Bound
	for _, c := range cons {
		*work++
		a := c.A[0]
		if math.Abs(a) < 1e-12 {
			if c.B < -1e-9 {
				return nil, false
			}
			continue
		}
		t := c.B / a
		if a > 0 {
			if t < hi {
				hi = t
			}
		} else {
			if t > lo {
				lo = t
			}
		}
	}
	if lo > hi+1e-9 {
		return nil, false
	}
	if obj1 >= 0 {
		return []float64{lo}, true
	}
	return []float64{hi}, true
}

// projectOnto eliminates one variable using the tight constraint t
// (a·x = b), rewriting every earlier constraint, the box constraints of the
// eliminated variable, and the objective in the remaining d-1 variables.
// It returns the subproblem, the reduced objective, and a lift function
// mapping subspace solutions back to R^d.
func projectOnto(t ConstraintD, earlier []ConstraintD, obj []float64) (sub []ConstraintD, subObj []float64, lift func([]float64) []float64, ok bool) {
	d := len(obj)
	// Eliminate the variable with the largest |coefficient| for stability.
	k, best := -1, 0.0
	for j, a := range t.A {
		if math.Abs(a) > best {
			best = math.Abs(a)
			k = j
		}
	}
	if k < 0 || best < 1e-12 {
		return nil, nil, nil, false
	}
	ak := t.A[k]
	// x_k = (t.B - Σ_{j≠k} t.A_j x_j) / ak.
	reduceConstraint := func(a []float64, b float64) ConstraintD {
		na := make([]float64, 0, d-1)
		nb := b - a[k]*t.B/ak
		for j := 0; j < d; j++ {
			if j == k {
				continue
			}
			na = append(na, a[j]-a[k]*t.A[j]/ak)
		}
		return ConstraintD{A: na, B: nb}
	}
	sub = make([]ConstraintD, 0, len(earlier)+2)
	for _, c := range earlier {
		sub = append(sub, reduceConstraint(c.A, c.B))
	}
	// Box constraints of the eliminated variable become real constraints:
	// x_k <= Bound and -x_k <= Bound.
	up := make([]float64, d)
	up[k] = 1
	dn := make([]float64, d)
	dn[k] = -1
	sub = append(sub, reduceConstraint(up, Bound), reduceConstraint(dn, Bound))

	subObj = make([]float64, 0, d-1)
	for j := 0; j < d; j++ {
		if j == k {
			continue
		}
		subObj = append(subObj, obj[j]-obj[k]*t.A[j]/ak)
	}
	lift = func(y []float64) []float64 {
		x := make([]float64, d)
		yi := 0
		for j := 0; j < d; j++ {
			if j == k {
				continue
			}
			x[j] = y[yi]
			yi++
		}
		s := t.B
		for j := 0; j < d; j++ {
			if j != k {
				s -= t.A[j] * x[j]
			}
		}
		x[k] = s / ak
		return x
	}
	return sub, subObj, lift, true
}

// --- workloads and oracle ------------------------------------------------

// SphereTangentD returns n constraints tangent to (scaled spheres around)
// the origin in d dimensions: a = random unit vector, b = 1 + slack. The
// d-dimensional analog of TangentConstraints.
func SphereTangentD(rnd interface{ NormFloat64() float64 }, slack func() float64, n, d int) []ConstraintD {
	cons := make([]ConstraintD, n)
	for i := range cons {
		a := make([]float64, d)
		norm := 0.0
		for j := range a {
			a[j] = rnd.NormFloat64()
			norm += a[j] * a[j]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-9 {
			norm = 1
			a[0] = 1
		}
		for j := range a {
			a[j] /= norm
		}
		cons[i] = ConstraintD{A: a, B: 1 + slack()}
	}
	return cons
}

// BruteForceD solves the LP by enumerating all d-subsets of constraint
// boundaries (plus box faces), solving each d×d linear system, and taking
// the best feasible vertex. O(n^d · d³); test oracle for small n and d.
func BruteForceD(cons []ConstraintD, obj []float64) (x []float64, feasible bool) {
	d := len(obj)
	all := make([]ConstraintD, 0, len(cons)+2*d)
	all = append(all, cons...)
	for j := 0; j < d; j++ {
		up := make([]float64, d)
		up[j] = 1
		dn := make([]float64, d)
		dn[j] = -1
		all = append(all, ConstraintD{A: up, B: Bound}, ConstraintD{A: dn, B: Bound})
	}
	isFeasible := func(p []float64) bool {
		for _, c := range all {
			if c.ViolatesD(p) {
				return false
			}
		}
		return true
	}
	var best []float64
	bestVal := math.Inf(1)
	consider := func(p []float64) {
		if p == nil || !isFeasible(p) {
			return
		}
		if v := dot(obj, p); v < bestVal {
			bestVal = v
			best = p
		}
	}
	idx := make([]int, d)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == d {
			m := make([][]float64, d)
			rhs := make([]float64, d)
			for r, ci := range idx {
				m[r] = append([]float64(nil), all[ci].A...)
				rhs[r] = all[ci].B
			}
			consider(linalg.Solve(m, rhs))
			return
		}
		for ci := start; ci < len(all); ci++ {
			idx[pos] = ci
			rec(pos+1, ci+1)
		}
	}
	rec(0, 0)
	if best == nil {
		return nil, false
	}
	return best, true
}

package lp

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/parallel"
)

// ParSolve runs the Type 2 parallel algorithm (Theorem 5.1): iterations
// are processed in doubling prefixes (Algorithm 1); each sub-round probes
// the live prefix against the current optimum with a parallel reservation
// (doubling windows, earliest violated constraint wins) and runs the
// winner's one-dimensional LP with a parallel min-reduction. The optimum
// moves only at special iterations — regular commits are no-ops — so the
// hooks declare SpecialOnce.
func ParSolve(cons []Constraint, cx, cy float64) (Result, Stats) {
	var st Stats
	n := len(cons)
	x, y := initialOptimum(cx, cy)
	infeasible := false
	var sideTests, oneDim atomic.Int64

	hooks := core.Type2Hooks{
		SpecialOnce: true,
		RunFirst: func() {
			if n == 0 {
				return
			}
			sideTests.Add(1)
			if cons[0].Violates(x, y) {
				var w int64
				nx, ny, ok := solve1D(cons[0].Ax, cons[0].Ay, cons[0].B, nil, cx, cy, &w)
				oneDim.Add(w)
				if !ok {
					infeasible = true
					return
				}
				x, y = nx, ny
			}
		},
		IsSpecial: func(k int) bool {
			if infeasible {
				return false
			}
			return cons[k].Violates(x, y)
		},
		RunRegular: func(lo, hi int) {
			// Regular iterations do no work beyond the O(1) check already
			// performed by IsSpecial: the optimum is unchanged.
		},
		RunSpecial: func(k int) {
			if infeasible {
				return
			}
			// 1D LP over earlier constraints; the sequential clip loop is
			// replaced by a parallel interval reduction.
			nx, ny, ok := solve1DParallel(cons[k].Ax, cons[k].Ay, cons[k].B,
				cons[:k], cx, cy, &oneDim)
			if !ok {
				infeasible = true
				return
			}
			x, y = nx, ny
		},
	}
	t2 := core.RunType2(n, hooks)
	st.Special = t2.Special
	st.Rounds = t2.Rounds
	st.SubRounds = t2.SubRounds
	st.MaxProbe = t2.MaxProbe
	st.MaxRegular = t2.MaxRegular
	// Side tests are charged from the schedule's deterministic window
	// accounting (plus RunFirst's own test); the pooled reservation may
	// prune per-constraint calls, so counting those would be
	// scheduling-dependent.
	st.SideTests = sideTests.Load() + t2.Checks
	st.OneDimWork = oneDim.Load()
	if infeasible {
		return Result{Feasible: false}, st
	}
	return Result{Feasible: true, X: x, Y: y, Value: cx*x + cy*y}, st
}

// interval is a [lo, hi] parameter range plus a feasibility flag, the
// monoid element for the parallel 1D LP reduction.
type interval struct {
	lo, hi   float64
	feasible bool
}

// solve1DParallel mirrors solve1D but clips all constraints with a parallel
// reduction over per-constraint intervals (constant depth on the PRAM, a
// log-depth tree here).
func solve1DParallel(ax, ay, b float64, cons []Constraint, cx, cy float64, work *atomic.Int64) (float64, float64, bool) {
	var p0x, p0y, dx, dy float64
	if abs(ay) >= abs(ax) {
		p0x, p0y = 0, b/ay
		dx, dy = 1, -ax/ay
	} else {
		p0x, p0y = b/ax, 0
		dx, dy = -ay/ax, 1
	}
	clipOne := func(aAx, aAy, aB float64) interval {
		den := aAx*dx + aAy*dy
		num := aB - (aAx*p0x + aAy*p0y)
		const eps = 1e-12
		if abs(den) < eps {
			return interval{negInf, posInf, num >= -1e-9}
		}
		t := num / den
		if den > 0 {
			return interval{negInf, t, true}
		}
		return interval{t, posInf, true}
	}
	combine := func(a, b interval) interval {
		out := interval{max(a.lo, b.lo), min(a.hi, b.hi), a.feasible && b.feasible}
		if out.lo > out.hi+1e-9 {
			out.feasible = false
		}
		return out
	}
	box := combine(combine(clipOne(1, 0, Bound), clipOne(-1, 0, Bound)),
		combine(clipOne(0, 1, Bound), clipOne(0, -1, Bound)))
	work.Add(int64(len(cons)))
	iv := parallel.Reduce(0, len(cons), box,
		func(i int) interval { return clipOne(cons[i].Ax, cons[i].Ay, cons[i].B) },
		combine)
	if !iv.feasible || iv.lo > iv.hi+1e-9 {
		return 0, 0, false
	}
	slope := cx*dx + cy*dy
	t := iv.lo
	if slope < 0 {
		t = iv.hi
	}
	return p0x + t*dx, p0y + t*dy, true
}

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

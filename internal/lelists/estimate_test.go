package lelists

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSizeEstimatorAccuracy(t *testing.T) {
	// On a weighted grid, neighborhood-size estimates from 64 runs should
	// land within ~35% of the truth on average (stderr ≈ 1/sqrt(62) ≈ 13%,
	// so 35% mean relative error would indicate a bug, not noise).
	g := graph.Grid2D(20, 20, true, rng.New(1))
	est := NewSizeEstimator(g, 7, 64)
	var relErrSum float64
	samples := 0
	for _, v := range []int{0, 57, 199, 350} {
		for _, r := range []float64{2, 5, 10} {
			truth := float64(TrueNeighborhoodSize(g, v, r))
			got := est.Estimate(v, r)
			relErrSum += math.Abs(got-truth) / truth
			samples++
		}
	}
	if mean := relErrSum / float64(samples); mean > 0.35 {
		t.Fatalf("mean relative error %.2f too large", mean)
	}
}

func TestSizeEstimatorSelfNeighborhood(t *testing.T) {
	// With r = 0 the neighborhood is {v} (distinct positive weights), so
	// the estimate should be near 1.
	g := graph.Grid2D(10, 10, true, rng.New(2))
	est := NewSizeEstimator(g, 3, 48)
	for _, v := range []int{0, 42, 99} {
		got := est.Estimate(v, 0)
		if got < 0.4 || got > 2.5 {
			t.Fatalf("v=%d: estimate of singleton neighborhood = %.2f", v, got)
		}
	}
}

func TestSizeEstimatorWholeGraph(t *testing.T) {
	// r = infinity covers the whole (connected) component.
	g := graph.Grid2D(12, 12, true, rng.New(3))
	est := NewSizeEstimator(g, 5, 64)
	truth := float64(g.N)
	got := est.Estimate(30, math.Inf(1))
	if math.Abs(got-truth)/truth > 0.4 {
		t.Fatalf("whole-graph estimate %.1f vs %d", got, g.N)
	}
}

func TestSizeEstimatorDisconnected(t *testing.T) {
	// The estimate must not leak across components.
	edges := []graph.Edge{{From: 0, To: 1, W: 1}, {From: 2, To: 3, W: 1}}
	g := graph.Symmetrize(4, edges, true)
	est := NewSizeEstimator(g, 9, 64)
	got := est.Estimate(0, math.Inf(1))
	if got > 4 {
		t.Fatalf("estimate %.2f exceeds component size bound", got)
	}
	if got < 0.8 {
		t.Fatalf("estimate %.2f implausibly small for a 2-vertex component", got)
	}
}

func TestSizeEstimatorPanicsOnFewRuns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ell < 3")
		}
	}()
	NewSizeEstimator(graph.ChainDAG(4), 1, 2)
}

func TestTrueNeighborhoodSize(t *testing.T) {
	// Path 0-1-2-3 with unit weights.
	g := graph.Symmetrize(4, []graph.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}, {From: 2, To: 3, W: 1}}, true)
	if got := TrueNeighborhoodSize(g, 0, 1.5); got != 2 {
		t.Fatalf("N(0,1.5)=%d want 2", got)
	}
	if got := TrueNeighborhoodSize(g, 1, 1); got != 3 {
		t.Fatalf("N(1,1)=%d want 3", got)
	}
}

// Package lelists implements Section 6.1 of the paper: Cohen's incremental
// construction of least-element lists (LE-lists) and its Type 3
// parallelization.
//
// Vertex u appears in vertex v's LE-list iff no earlier vertex (in the
// random priority order) is closer to v than u is. The sequential
// construction (Algorithm 6) runs one pruned SSSP per vertex in priority
// order; the parallel version (Algorithm 2 applied with the separating
// dependences of Lemma 6.1) runs the searches of each doubling round
// concurrently against the distance bounds frozen at the end of the
// previous round, then combines with a semisort per target, keeping for
// each target the entries whose distances strictly decrease in source
// order. The combined state after each round is exactly the sequential
// state, so the resulting lists are identical.
package lelists

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/sortutil"
)

// Entry is one LE-list element: source vertex and its distance.
type Entry struct {
	V    int32
	Dist float64
}

// Lists holds L(u) for every vertex u, in insertion (priority) order —
// distances strictly decrease along each list; the paper's "sorted by
// d(v_i, v_j)" order is the reverse.
type Lists [][]Entry

// Stats reports the counters of a construction run.
type Stats struct {
	SearchWork  int64 // edges relaxed / scanned across all searches
	Visits      int64 // total source-target visits (dependences)
	MaxPerVert  int   // max visits to any single vertex (Theorem 2.6: O(log n) whp)
	Rounds      int   // doubling rounds of the parallel schedule
	CombineWork int64 // entries processed by the combine steps
}

// Sequential builds the LE-lists of g with vertices in index-priority order
// (pre-shuffled ids; vertex 0 has the highest priority).
func Sequential(g *graph.Graph) (Lists, Stats) {
	n := g.N
	var st Stats
	delta := make([]float64, n)
	for i := range delta {
		delta[i] = math.Inf(1)
	}
	lists := make(Lists, n)
	perVert := make([]int32, n)
	for i := 0; i < n; i++ {
		visits, work := graph.PrunedSearch(g, i, func(u int) float64 { return delta[u] })
		st.SearchWork += work
		st.Visits += int64(len(visits))
		for _, v := range visits {
			delta[v.Target] = v.Dist
			lists[v.Target] = append(lists[v.Target], Entry{V: int32(i), Dist: v.Dist})
			perVert[v.Target]++
		}
	}
	for _, c := range perVert {
		if int(c) > st.MaxPerVert {
			st.MaxPerVert = int(c)
		}
	}
	return lists, st
}

// Parallel builds the LE-lists with the Type 3 round schedule. The output
// is identical to Sequential's.
func Parallel(g *graph.Graph) (Lists, Stats) {
	n := g.N
	var st Stats
	delta := make([]float64, n)
	for i := range delta {
		delta[i] = math.Inf(1)
	}
	lists := make(Lists, n)
	perVert := make([]int32, n)

	// Per-round buffers.
	type srcVisits struct {
		src    int32
		visits []graph.Visit
	}
	var roundResults []srcVisits

	runRange := func(lo, hi int) {
		roundResults = make([]srcVisits, hi-lo)
		bound := func(u int) float64 { return delta[u] } // frozen: combine writes later
		works := make([]int64, hi-lo)
		// Grain 1: pruned-search cost collapses as delta tightens, so
		// per-source claims let early heavy searches load-balance.
		parallel.ForGrain(lo, hi, 1, func(k int) {
			visits, work := graph.PrunedSearch(g, k, bound)
			roundResults[k-lo] = srcVisits{src: int32(k), visits: visits}
			works[k-lo] = work
		})
		st.SearchWork += parallel.Sum(works)
	}

	combineRange := func(lo, hi int) {
		// Flatten (src, target, dist) triples.
		type triple struct {
			src    int32
			target int32
			dist   float64
		}
		total := 0
		for _, rr := range roundResults {
			total += len(rr.visits)
		}
		triples := make([]triple, 0, total)
		for _, rr := range roundResults {
			for _, v := range rr.visits {
				triples = append(triples, triple{src: rr.src, target: int32(v.Target), dist: v.Dist})
			}
		}
		st.CombineWork += int64(len(triples))
		groups := sortutil.Semisort(len(triples), func(i int) uint64 {
			return uint64(triples[i].target)
		})
		kept := make([]int64, len(groups))
		// Grain 1: group sizes are skewed (hub targets collect many
		// triples); one group per claim.
		parallel.ForGrain(0, len(groups), 1, func(gi int) {
			grp := groups[gi]
			target := triples[grp.Indices[0]].target
			// Order this target's entries by source priority.
			idxs := grp.Indices
			sortutil.Sort(idxs, func(a, b int) bool { return triples[a].src < triples[b].src })
			m := delta[target]
			for _, ti := range idxs {
				tr := triples[ti]
				if tr.dist < m {
					m = tr.dist
					lists[target] = append(lists[target], Entry{V: tr.src, Dist: tr.dist})
					perVert[target]++
					kept[gi]++
				}
			}
			delta[target] = m
		})
		st.Visits += parallel.Sum(kept) // kept dependences
		roundResults = nil
	}

	hooks := core.Type3Hooks{
		RunFirst: func() {
			runRange(0, 1)
			combineRange(0, 1)
		},
		RunRound: runRange,
		Combine:  combineRange,
	}
	t3 := core.RunType3(n, hooks)
	st.Rounds = t3.Rounds
	for _, c := range perVert {
		if int(c) > st.MaxPerVert {
			st.MaxPerVert = int(c)
		}
	}
	return lists, st
}

// BruteForce builds the LE-lists directly from the definition using one
// full SSSP per vertex; O(n · SSSP). Test oracle.
func BruteForce(g *graph.Graph) Lists {
	n := g.N
	dist := make([][]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = graph.FullSSSP(g, i)
	}
	lists := make(Lists, n)
	for u := 0; u < n; u++ {
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if dist[i][u] < best {
				best = dist[i][u]
				lists[u] = append(lists[u], Entry{V: int32(i), Dist: dist[i][u]})
			}
		}
	}
	return lists
}

// Equal reports whether two list sets are identical.
func Equal(a, b Lists) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for k := range a[u] {
			if a[u][k] != b[u][k] {
				return false
			}
		}
	}
	return true
}

package lelists

import (
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// This file implements Cohen's size-estimation framework — the application
// LE-lists were invented for (Cohen, JCSS 1997; the paper's Section 6.1
// motivation): estimate the neighborhood sizes |N(v, r)| = |{u : d(v,u) <=
// r}| for all v and any r, from a few LE-list constructions, without ever
// materializing the neighborhoods.
//
// Each run assigns every vertex an independent Exp(1) rank and builds
// LE-lists with vertices ordered by increasing rank. The minimum rank
// within N(v, r) is then Exp(|N(v, r)|)-distributed and readable from
// L(v): it is the first list entry (in priority order) with distance <= r.
// Averaging ell runs gives the unbiased estimator (ell-1) / Σ minranks with
// relative standard error ~ 1/sqrt(ell-2).

// SizeEstimator answers approximate neighborhood-size queries.
type SizeEstimator struct {
	n    int
	runs []estRun
	ell  int
}

type estRun struct {
	rankOf []float64 // rank value per relabeled vertex id
	lists  Lists     // LE-lists in the relabeled id space
	newID  []int     // original vertex -> relabeled id
}

// NewSizeEstimator builds an estimator from ell independent LE-list
// constructions over g (ell >= 3). Construction cost is ell times one
// parallel LE-list build.
func NewSizeEstimator(g *graph.Graph, seed uint64, ell int) *SizeEstimator {
	if ell < 3 {
		panic("lelists: need at least 3 runs for the unbiased estimator")
	}
	root := rng.New(seed)
	est := &SizeEstimator{n: g.N, ell: ell}
	est.runs = make([]estRun, ell)
	seeds := make([]uint64, ell)
	for j := range seeds {
		seeds[j] = root.Uint64()
	}
	// Grain 1: each trial builds a full LE-list structure — seconds of
	// work per claim, the heaviest loop body in the repo.
	parallel.ForGrain(0, ell, 1, func(j int) {
		r := rng.New(seeds[j])
		n := g.N
		// Draw Exp(1) ranks and sort vertices by rank: the sorted position
		// is the vertex's priority (index) in the LE-list construction.
		rank := make([]float64, n)
		order := make([]int, n)
		for v := 0; v < n; v++ {
			rank[v] = r.Exp(1)
			order[v] = v
		}
		// Sort vertex ids by rank ascending.
		sortByRank(order, rank)
		newID := make([]int, n)
		rankOf := make([]float64, n)
		for pos, v := range order {
			newID[v] = pos
			rankOf[pos] = rank[v]
		}
		h := graph.Relabel(g, newID)
		lists, _ := Parallel(h)
		est.runs[j] = estRun{rankOf: rankOf, lists: lists, newID: newID}
	})
	return est
}

func sortByRank(order []int, rank []float64) {
	// Simple quicksort specialized to avoid an interface-based sort in the
	// hot construction path.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			p := rank[order[(lo+hi)/2]]
			i, j := lo, hi-1
			for i <= j {
				for rank[order[i]] < p {
					i++
				}
				for rank[order[j]] > p {
					j--
				}
				if i <= j {
					order[i], order[j] = order[j], order[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for k := i; k > lo && rank[order[k]] < rank[order[k-1]]; k-- {
				order[k], order[k-1] = order[k-1], order[k]
			}
		}
	}
	qs(0, len(order))
}

// minRankWithin returns the minimum rank among vertices within distance r
// of v in one run: the first entry of L(v) (priority order) at distance
// <= r. The list always contains v itself at distance 0.
func (run *estRun) minRankWithin(v int, r float64) float64 {
	l := run.lists[run.newID[v]]
	for _, e := range l {
		if e.Dist <= r {
			return run.rankOf[e.V]
		}
	}
	// Unreachable for r >= 0 since (v, 0) is always in the list.
	return math.Inf(1)
}

// Estimate returns the estimated size of N(v, r) = {u : d(v,u) <= r}.
func (e *SizeEstimator) Estimate(v int, r float64) float64 {
	sum := 0.0
	for j := range e.runs {
		sum += e.runs[j].minRankWithin(v, r)
	}
	return float64(e.ell-1) / sum
}

// TrueNeighborhoodSize computes |N(v, r)| exactly with one SSSP; O(m log n).
// Test oracle and accuracy baseline.
func TrueNeighborhoodSize(g *graph.Graph, v int, r float64) int {
	dist := graph.FullSSSP(g, v)
	count := 0
	for _, d := range dist {
		if d <= r {
			count++
		}
	}
	return count
}

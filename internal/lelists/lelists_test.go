package lelists

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSequentialMatchesBruteForceUnweighted(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(60)
		g := graph.GnmUndirected(r, n, 3*n, false)
		got, _ := Sequential(g)
		want := BruteForce(g)
		if !Equal(got, want) {
			t.Fatalf("trial %d n=%d: sequential lists differ from brute force", trial, n)
		}
	}
}

func TestSequentialMatchesBruteForceWeighted(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(60)
		g := graph.GnmUndirected(r, n, 3*n, true)
		got, _ := Sequential(g)
		want := BruteForce(g)
		if !Equal(got, want) {
			t.Fatalf("trial %d n=%d: sequential lists differ from brute force", trial, n)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(300)
		weighted := trial%2 == 0
		g := graph.GnmUndirected(r, n, 4*n, weighted)
		seq, _ := Sequential(g)
		par, parSt := Parallel(g)
		if !Equal(seq, par) {
			t.Fatalf("trial %d n=%d weighted=%v: parallel lists differ", trial, n, weighted)
		}
		if wantRounds := ceilLog2(n); parSt.Rounds != wantRounds {
			t.Fatalf("trial %d: rounds=%d want %d", trial, parSt.Rounds, wantRounds)
		}
	}
}

func ceilLog2(n int) int {
	k, p := 0, 1
	for p < n {
		p *= 2
		k++
	}
	return k
}

func TestDirectedGraph(t *testing.T) {
	r := rng.New(4)
	g := graph.GnmDirected(r, 50, 200, true)
	seq, _ := Sequential(g)
	par, _ := Parallel(g)
	want := BruteForce(g)
	if !Equal(seq, want) || !Equal(par, want) {
		t.Fatal("directed graph lists differ from brute force")
	}
}

func TestGridGraph(t *testing.T) {
	g := graph.Grid2D(12, 12, true, rng.New(5))
	seq, _ := Sequential(g)
	par, _ := Parallel(g)
	if !Equal(seq, par) {
		t.Fatal("grid graph: parallel differs from sequential")
	}
}

func TestRandomOrderMattersOnStructuredInput(t *testing.T) {
	// The O(log n) list bound needs a uniformly random priority order. A
	// row-major grid order is structured and produces much longer lists;
	// random relabeling restores the bound. This is the paper's standing
	// assumption made visible.
	r := rng.New(55)
	grid := graph.Grid2D(30, 30, true, r)
	rowMajor, _ := Sequential(grid)
	shuffledG, _ := graph.RandomRelabel(grid, r)
	shuffled, _ := Sequential(shuffledG)
	longest := func(ls Lists) int {
		m := 0
		for _, l := range ls {
			if len(l) > m {
				m = len(l)
			}
		}
		return m
	}
	structured, random := longest(rowMajor), longest(shuffled)
	if random*2 >= structured {
		t.Fatalf("expected random order to shorten lists substantially: structured=%d random=%d",
			structured, random)
	}
	if bound := int(6*math.Log(900)) + 5; random > bound {
		t.Fatalf("random-order max list %d exceeds O(log n) bound %d", random, bound)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components: lists must never cross components.
	edges := []graph.Edge{{From: 0, To: 1, W: 1}, {From: 2, To: 3, W: 1}}
	g := graph.Symmetrize(4, edges, false)
	lists, _ := Sequential(g)
	for _, e := range lists[3] {
		if e.V == 0 || e.V == 1 {
			t.Fatalf("list of vertex 3 contains cross-component vertex %d", e.V)
		}
	}
	par, _ := Parallel(g)
	if !Equal(lists, par) {
		t.Fatal("disconnected: parallel differs")
	}
}

func TestListLengthLogarithmic(t *testing.T) {
	// Cohen: each LE-list has length O(log n) whp under a random priority
	// order. Also every list starts with its own vertex at distance 0 and
	// has strictly decreasing distances.
	r := rng.New(6)
	n := 2048
	g := graph.GnmUndirected(r, n, 8*n, true)
	lists, st := Sequential(g)
	maxLen := 0
	for u, l := range lists {
		if len(l) == 0 {
			t.Fatalf("vertex %d has an empty LE-list", u)
		}
		if l[len(l)-1].V != int32(u) || l[len(l)-1].Dist != 0 {
			t.Fatalf("vertex %d: last entry should be itself at distance 0, got %+v", u, l[len(l)-1])
		}
		for k := 1; k < len(l); k++ {
			if !(l[k].Dist < l[k-1].Dist) {
				t.Fatalf("vertex %d: distances not strictly decreasing", u)
			}
			if !(l[k].V > l[k-1].V) {
				t.Fatalf("vertex %d: sources not increasing", u)
			}
		}
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	bound := int(6*math.Log(float64(n))) + 5
	if maxLen > bound {
		t.Fatalf("max list length %d exceeds O(log n) bound %d", maxLen, bound)
	}
	if st.MaxPerVert != maxLen {
		t.Fatalf("MaxPerVert=%d but longest list is %d", st.MaxPerVert, maxLen)
	}
}

func TestWorkWithinLogFactor(t *testing.T) {
	// Theorem 6.2: O(W_SP log n) work. The total search work should be at
	// most ~log n times a single full SSSP's work.
	r := rng.New(7)
	n := 1024
	g := graph.GnmUndirected(r, n, 8*n, true)
	_, st := Sequential(g)
	m := float64(g.M())
	logn := math.Log2(float64(n))
	if float64(st.SearchWork) > 4*m*logn {
		t.Fatalf("search work %d exceeds 4 m log n = %.0f", st.SearchWork, 4*m*logn)
	}
}

func TestParallelExtraWorkConstantFactor(t *testing.T) {
	// Theorem 2.6 consequence: running rounds eagerly costs only a
	// constant factor more search work than the sequential schedule.
	r := rng.New(8)
	n := 2048
	g := graph.GnmUndirected(r, n, 6*n, true)
	_, seqSt := Sequential(g)
	_, parSt := Parallel(g)
	ratio := float64(parSt.SearchWork) / float64(seqSt.SearchWork)
	if ratio > 4 {
		t.Fatalf("parallel search work is %.2fx sequential; should be a small constant", ratio)
	}
}

// Package core implements the paper's framework for parallelizing
// randomized incremental algorithms (Blelloch, Gu, Shun, Sun; SPAA 2016).
//
// The paper classifies randomized incremental algorithms by the structure
// of their iteration dependence graph:
//
//   - Type 1: k-bounded (possibly nested) dependences; the dependence DAG is
//     shallow whp (Theorem 2.1) and iterations run as soon as their
//     dependences resolve. Type 1 algorithms (BST sort, Delaunay) carry
//     their own round loops; this package supplies the bound predictions.
//   - Type 2: each iteration is "special" with probability ≤ c/j and depends
//     on everything earlier; regular iterations depend only on the closest
//     earlier special one. RunType2 implements the prefix-doubling schedule
//     of Algorithm 1 with O(n) work and O(d(n) log n) depth (Theorem 2.2).
//   - Type 3: separating dependences; iterations may run eagerly in doubled
//     rounds with a combine step fixing conflicts (Algorithm 2,
//     Theorem 2.6). RunType3 implements the round schedule.
//
// Every runner records the counters the experiments report: rounds
// (dependence-depth proxy), sub-rounds, special-iteration count, and an
// algorithm-supplied work tally.
package core

import "math"

// Hn returns the n-th harmonic number, the scale of the dependence-depth
// bounds in Theorem 2.1.
func Hn(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// Log2Ceil returns ceil(log2(n)) for n >= 1.
func Log2Ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p *= 2
		k++
	}
	return k
}

// Type1DepthBound returns the Theorem 2.1 high-probability bound σ·H_n on
// iteration dependence depth for an algorithm with k-bounded dependences,
// evaluated at the theorem's threshold σ = k·e².
func Type1DepthBound(n, k int) float64 {
	sigma := float64(k) * math.E * math.E
	return sigma * Hn(n)
}

// --- Type 2 -----------------------------------------------------------

// Type2Stats reports what the Algorithm 1 schedule did.
type Type2Stats struct {
	N         int
	Rounds    int   // outer prefix rounds (≈ log2 n)
	SubRounds int   // total sub-rounds across all rounds
	Special   int   // special iterations executed (incl. iteration 0)
	Checks    int64 // total isSpecial evaluations (the O(n) work term)
}

// Type2Hooks supplies the algorithm-specific pieces of Algorithm 1.
//
// The runner preserves the sequential semantics: IsSpecial(k) is evaluated
// against the state after some prefix [0, j) of iterations has fully
// executed, with j <= k; only the smallest k reporting true is acted on
// (its verdict is the sequential one, since no earlier unfinished iteration
// exists). When RunSpecial(k) is called, all iterations < k have executed
// and k is special; RunRegular(lo, hi) may execute its iterations in any
// order or in parallel (none is special given the current state).
type Type2Hooks struct {
	// RunFirst executes iteration 0 (always special: it initializes state).
	RunFirst func()
	// IsSpecial reports whether iteration k is special given current state.
	// Called in parallel over a prefix; must not mutate shared state.
	IsSpecial func(k int) bool
	// RunRegular executes the regular iterations [lo, hi); may parallelize.
	RunRegular func(lo, hi int)
	// RunSpecial executes special iteration k; may touch all earlier state
	// and may parallelize internally (depth d(n) in the theorem).
	RunSpecial func(k int)
}

// RunType2 executes n iterations under the Algorithm 1 prefix-doubling
// schedule and returns its statistics. Iteration indices are 0-based;
// iteration 0 is the distinguished first (special) iteration.
func RunType2(n int, h Type2Hooks) Type2Stats {
	st := Type2Stats{N: n}
	if n == 0 {
		return st
	}
	h.RunFirst()
	st.Special++
	j := 1
	for hi := 2; j < n; hi *= 2 {
		if hi > n {
			hi = n
		}
		st.Rounds++
		for j < hi {
			st.SubRounds++
			// Find the first unfinished special iteration in [j, hi). The
			// PRAM algorithm evaluates IsSpecial over the whole prefix in
			// parallel and takes the minimum true index; we scan with an
			// early break (same result) but charge Checks for the full
			// prefix to match the parallel work accounting.
			l := hi
			for k := j; k < hi; k++ {
				if h.IsSpecial(k) {
					l = k
					break
				}
			}
			st.Checks += int64(hi - j)
			if l > j {
				h.RunRegular(j, l)
			}
			if l < hi {
				h.RunSpecial(l)
				st.Special++
				j = l + 1
			} else {
				j = hi
			}
		}
	}
	return st
}

// --- Type 3 -----------------------------------------------------------

// Type3Stats reports what the Algorithm 2 schedule did.
type Type3Stats struct {
	N      int
	Rounds int // doubling rounds (= ceil(log2 n))
}

// Type3Hooks supplies the algorithm-specific pieces of Algorithm 2.
type Type3Hooks struct {
	// RunFirst executes iteration 0 alone.
	RunFirst func()
	// RunRound executes iterations [lo, hi) in parallel, each as if at
	// position lo, against the state frozen at the end of the previous
	// round.
	RunRound func(lo, hi int)
	// Combine merges the results of [lo, hi) so that earlier iterations
	// take priority; afterwards the state must equal the sequential state
	// after iteration hi-1 (or a refinement that the algorithm accepts).
	Combine func(lo, hi int)
}

// RunType3 executes n iterations under the Algorithm 2 doubling schedule.
func RunType3(n int, h Type3Hooks) Type3Stats {
	st := Type3Stats{N: n}
	if n == 0 {
		return st
	}
	h.RunFirst()
	for lo := 1; lo < n; lo *= 2 {
		hi := lo * 2
		if hi > n {
			hi = n
		}
		st.Rounds++
		h.RunRound(lo, hi)
		h.Combine(lo, hi)
	}
	return st
}

// Package core implements the paper's framework for parallelizing
// randomized incremental algorithms (Blelloch, Gu, Shun, Sun; SPAA 2016).
//
// The paper classifies randomized incremental algorithms by the structure
// of their iteration dependence graph:
//
//   - Type 1: k-bounded (possibly nested) dependences; the dependence DAG is
//     shallow whp (Theorem 2.1) and iterations run as soon as their
//     dependences resolve. Type 1 algorithms (BST sort, Delaunay) carry
//     their own round loops; this package supplies the bound predictions.
//   - Type 2: each iteration is "special" with probability ≤ c/j and depends
//     on everything earlier; regular iterations depend only on the closest
//     earlier special one. RunType2 implements the prefix-doubling schedule
//     of Algorithm 1 with O(n) work and O(d(n) log n) depth (Theorem 2.2).
//   - Type 3: separating dependences; iterations may run eagerly in doubled
//     rounds with a combine step fixing conflicts (Algorithm 2,
//     Theorem 2.6). RunType3 implements the round schedule.
//
// # The Type 2 reserve/commit schedule
//
// RunType2 executes each sub-round as a deterministic reserve/commit step
// in the style of GBBS deterministic reservations (Dhulipala, Blelloch,
// Shun; SPAA 2018). Reserve: every live iteration in the current prefix
// [j, hi) evaluates IsSpecial in parallel and the special ones race to
// reserve a shared priority-write cell, smallest index winning
// (parallel.ReduceMinIndex). Commit: the regular block [j, l) below the
// winning reservation l is committed in one batched RunRegular call —
// never one call per probe — then the special iteration l commits alone,
// and the next sub-round resumes at l+1. A sub-round with no reservation
// commits the whole prefix as regular and ends the round.
//
// Hooks that declare SpecialOnce (state changes only at special
// iterations, so a rendered verdict cannot change until the next special
// commits) get the windowed schedule: the live prefix is probed in
// doubling windows starting at probeWindow0, so a sub-round's probe work
// is proportional to the distance to the next special rather than the
// prefix width. Verdicts from already-probed windows are carried forward
// within the sub-round instead of being re-evaluated, which makes the
// total number of checks O(n) worst-case — each index is probed O(1)
// amortized times per committed special that lands near it — rather than
// O(n) only in expectation. Without the flag the runner conservatively
// re-probes the full live prefix each sub-round (still in parallel), the
// exact accounting of the sequential reference RunType2Seq.
//
// Every runner records the counters the experiments report: rounds
// (dependence-depth proxy), sub-rounds, special-iteration count, charged
// check work, and the wall-parallelism shape of the schedule (widest
// parallel probe batch, batched regular-block sizes).
package core

import (
	"math"

	"repro/internal/fault"
	"repro/internal/parallel"
)

// hnExactCutoff is the largest n for which Hn sums the series directly.
// Above it the asymptotic expansion is used; at the cutoff the expansion's
// truncation error (≈ 1/(120 n⁴)) is below 1.2e-13, smaller than the
// rounding error of the direct sum.
const hnExactCutoff = 512

// eulerGamma is the Euler–Mascheroni constant γ.
const eulerGamma = 0.57721566490153286060651209

// Hn returns the n-th harmonic number, the scale of the dependence-depth
// bounds in Theorem 2.1. Small n are summed exactly; larger n use the
// asymptotic expansion ln n + γ + 1/(2n) − 1/(12n²), so the stats
// reporting that calls this once per run stays O(1) even for n in the
// millions.
func Hn(n int) float64 {
	if n <= hnExactCutoff {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	fn := float64(n)
	return math.Log(fn) + eulerGamma + 1/(2*fn) - 1/(12*fn*fn)
}

// Log2Ceil returns ceil(log2(n)) for n >= 1.
func Log2Ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p *= 2
		k++
	}
	return k
}

// Type1Sigma returns the Theorem 2.1 threshold σ = k·e² for an algorithm
// with k-bounded dependences. It is the single source for the constant the
// experiment tables quote (2e² for BST sort, 6e² for 2D Delaunay).
func Type1Sigma(k int) float64 {
	return float64(k) * math.E * math.E
}

// Type1DepthBound returns the Theorem 2.1 high-probability bound σ·H_n on
// iteration dependence depth for an algorithm with k-bounded dependences,
// evaluated at the theorem's threshold σ = Type1Sigma(k).
func Type1DepthBound(n, k int) float64 {
	return Type1Sigma(k) * Hn(n)
}

// --- Type 2 -----------------------------------------------------------

// Type2Stats reports what the Algorithm 1 schedule did.
type Type2Stats struct {
	N         int
	Committed int   // iterations fully committed: state equals the sequential state after this prefix
	Rounds    int   // outer prefix rounds (≈ log2 n)
	SubRounds int   // total sub-rounds across all rounds
	Special   int   // special iterations executed (incl. iteration 0)
	Checks    int64 // charged isSpecial evaluations (the O(n) work term)

	// Wall-parallelism shape of the schedule.
	MaxProbe       int // widest IsSpecial batch issued as one parallel reduction
	RegularBatches int // batched RunRegular commits (one per non-empty block)
	MaxRegular     int // largest regular block committed in a single call
}

// Type2Hooks supplies the algorithm-specific pieces of Algorithm 1.
//
// The runner preserves the sequential semantics: IsSpecial(k) is evaluated
// against the state after some prefix [0, j) of iterations has fully
// committed, with j <= k; only the smallest k reporting true is acted on
// (its verdict is the sequential one, since no earlier unfinished special
// iteration exists). When RunSpecial(k) is called, all iterations < k have
// committed and k is special; RunRegular(lo, hi) receives each sub-round's
// whole regular block in one call and may execute its iterations in any
// order or in parallel (none is special given the current state).
type Type2Hooks struct {
	// RunFirst executes iteration 0 (always special: it initializes state).
	RunFirst func()
	// IsSpecial reports whether iteration k is special given current state.
	// Called concurrently from pool workers over a probe window, and skipped
	// for indices that cannot win the reservation; it must not mutate shared
	// state (counters must be atomic).
	IsSpecial func(k int) bool
	// RunRegular executes the regular iterations [lo, hi); may parallelize.
	// The runner batches: it is called at most once per sub-round, with the
	// full regular block below the committed special.
	RunRegular func(lo, hi int)
	// RunSpecial executes special iteration k; may touch all earlier state
	// and may parallelize internally (depth d(n) in the theorem).
	RunSpecial func(k int)
	// SpecialOnce declares the verdict-stability contract: all state that
	// IsSpecial observes is written only by RunFirst and RunSpecial —
	// RunRegular commits are no-ops as far as IsSpecial can tell. A verdict
	// rendered for iteration k therefore cannot change until the next
	// special iteration commits, and the runner carries verdicts forward
	// within a sub-round instead of re-evaluating them: the live prefix is
	// probed in doubling windows and each index is checked O(1) amortized
	// times worst-case, not just in expectation. Hooks that leave this
	// false get a full-prefix probe per sub-round.
	SpecialOnce bool
}

// probeWindow0 is the width of the first probe window of a sub-round under
// the SpecialOnce schedule; windows double from here, so the probe work of
// a sub-round is at most ~2× the distance to the committed special plus
// probeWindow0.
const probeWindow0 = 4

// RunType2 executes n iterations under the Algorithm 1 prefix-doubling
// schedule, with each sub-round run as a parallel reserve/commit batch
// (see the package comment), and returns its statistics. Iteration
// indices are 0-based; iteration 0 is the distinguished first (special)
// iteration. The committed special sequence, final state, and the
// Special/Rounds/SubRounds counters are identical to RunType2Seq's;
// Checks and MaxProbe are at most the reference's — smaller under the
// SpecialOnce windowed schedule once a live prefix exceeds the first
// probe window.
func RunType2(n int, h Type2Hooks) Type2Stats {
	st, _ := RunType2Cancel(n, h, nil)
	return st
}

// RunType2Cancel is RunType2 with cooperative cancellation observed at
// sub-round boundaries: when c cancels, the runner stops before starting
// another sub-round and returns parallel.ErrCanceled with the stats of
// the work that committed. Cancellation is prefix-atomic — the returned
// Committed is a j such that iterations [0, j) have fully committed and
// none beyond j ran, exactly the state RunType2Seq leaves after j
// iterations — so hook state is valid for inspection or resumption. A
// sub-round already started runs to completion (its commit is what keeps
// the prefix sequential); a nil canceler makes this exactly RunType2.
func RunType2Cancel(n int, h Type2Hooks, c *parallel.Canceler) (Type2Stats, error) {
	st := Type2Stats{N: n}
	if n == 0 || c.Canceled() {
		return st, canceledErr(c)
	}
	h.RunFirst()
	st.Special++
	st.Committed = 1
	j := 1
	for hi := 2; j < n; hi *= 2 {
		if hi > n {
			hi = n
		}
		st.Rounds++
		for j < hi {
			if c.Canceled() {
				return st, parallel.ErrCanceled
			}
			// The fault site sits where the cancel check does: before any
			// of the sub-round's effects. An injected panic here leaves the
			// hooks at a committed prefix, the same state a cancellation
			// would have returned.
			if fault.Enabled {
				fault.Inject(fault.Type2SubRound)
			}
			st.SubRounds++
			// Reserve: find the earliest special iteration in the live
			// prefix [j, hi) with a parallel priority-write reduction.
			var l int
			if h.SpecialOnce {
				l = probeWindowed(&h, j, hi, &st)
			} else {
				l = probeFull(&h, j, hi, &st)
			}
			// Commit: the whole regular block in one batched call, then
			// the winning special iteration alone.
			if l > j {
				h.RunRegular(j, l)
				st.RegularBatches++
				if l-j > st.MaxRegular {
					st.MaxRegular = l - j
				}
			}
			if l < hi {
				h.RunSpecial(l)
				st.Special++
				j = l + 1
			} else {
				j = hi
			}
			st.Committed = j
		}
	}
	return st, canceledErr(c)
}

// canceledErr is the exit contract shared with the parallel package's
// loop variants: parallel.ErrCanceled iff c is canceled at return.
func canceledErr(c *parallel.Canceler) error {
	if c.Canceled() {
		return parallel.ErrCanceled
	}
	return nil
}

// probeFull evaluates IsSpecial over the whole live prefix [j, hi) in one
// parallel reservation and returns the winning index, or hi if none. The
// full prefix is charged to Checks regardless of reservation pruning, so
// the accounting is deterministic and matches RunType2Seq.
func probeFull(h *Type2Hooks, j, hi int, st *Type2Stats) int {
	st.Checks += int64(hi - j)
	if hi-j > st.MaxProbe {
		st.MaxProbe = hi - j
	}
	if idx, ok := parallel.ReduceMinIndex(j, hi, 0, h.IsSpecial); ok {
		return idx
	}
	return hi
}

// probeWindowed probes [j, hi) in doubling windows under the SpecialOnce
// contract: verdicts in an exhausted window are final for this sub-round
// (no special has committed since they were rendered), so the scan never
// revisits them. Charged checks per sub-round are at most
// min(hi-j, 2(l-j)+probeWindow0) for winning index l — never more than
// probeFull charges — and O(n) worst-case over a whole run.
func probeWindowed(h *Type2Hooks, j, hi int, st *Type2Stats) int {
	idx, ok := parallel.ScanMinIndexWindows(j, hi, probeWindow0, func(width int) {
		st.Checks += int64(width)
		if width > st.MaxProbe {
			st.MaxProbe = width
		}
	}, h.IsSpecial)
	if !ok {
		return hi
	}
	return idx
}

// RunType2Seq is the sequential reference interpreter for the Algorithm 1
// schedule: the same prefix-doubling sub-round structure as RunType2, with
// the special-iteration search run as a serial scan on the calling
// goroutine. It is kept as the equivalence-test oracle (RunType2 must
// commit the identical special sequence and reach the identical final
// state) and as the baseline the BenchmarkType2 family measures the
// batched runner's speedup against. Checks charges the full live prefix
// per sub-round — the parallel work the PRAM schedule would issue — even
// though the scan early-exits, so Checks is an upper bound on RunType2's.
func RunType2Seq(n int, h Type2Hooks) Type2Stats {
	st := Type2Stats{N: n}
	if n == 0 {
		return st
	}
	h.RunFirst()
	st.Special++
	j := 1
	for hi := 2; j < n; hi *= 2 {
		if hi > n {
			hi = n
		}
		st.Rounds++
		for j < hi {
			st.SubRounds++
			l := hi
			for k := j; k < hi; k++ {
				if h.IsSpecial(k) {
					l = k
					break
				}
			}
			st.Checks += int64(hi - j)
			if hi-j > st.MaxProbe {
				st.MaxProbe = hi - j
			}
			if l > j {
				h.RunRegular(j, l)
				st.RegularBatches++
				if l-j > st.MaxRegular {
					st.MaxRegular = l - j
				}
			}
			if l < hi {
				h.RunSpecial(l)
				st.Special++
				j = l + 1
			} else {
				j = hi
			}
			st.Committed = j
		}
	}
	return st
}

// --- Type 3 -----------------------------------------------------------

// Type3Stats reports what the Algorithm 2 schedule did.
type Type3Stats struct {
	N         int
	Committed int // iterations combined into the state: [0, Committed) are final
	Rounds    int // doubling rounds (= ceil(log2 n))
}

// Type3Hooks supplies the algorithm-specific pieces of Algorithm 2.
type Type3Hooks struct {
	// RunFirst executes iteration 0 alone.
	RunFirst func()
	// RunRound executes iterations [lo, hi) in parallel, each as if at
	// position lo, against the state frozen at the end of the previous
	// round.
	RunRound func(lo, hi int)
	// Combine merges the results of [lo, hi) so that earlier iterations
	// take priority; afterwards the state must equal the sequential state
	// after iteration hi-1 (or a refinement that the algorithm accepts).
	Combine func(lo, hi int)
}

// RunType3 executes n iterations under the Algorithm 2 doubling schedule.
func RunType3(n int, h Type3Hooks) Type3Stats {
	st, _ := RunType3Cancel(n, h, nil)
	return st
}

// RunType3Cancel is RunType3 with cooperative cancellation observed at
// round boundaries. Rounds are atomic: a round that starts runs both
// RunRound and Combine — a canceled round may not skip its Combine,
// because the eager round results are only sequentially valid after the
// combine fixes conflicts (dropping it would publish states no
// sequential prefix produces). When c cancels, the runner returns
// parallel.ErrCanceled with Committed = the end of the last combined
// round; the hooks' state equals the sequential state after that prefix
// (or the refinement the algorithm accepts). A nil canceler makes this
// exactly RunType3.
func RunType3Cancel(n int, h Type3Hooks, c *parallel.Canceler) (Type3Stats, error) {
	st := Type3Stats{N: n}
	if n == 0 || c.Canceled() {
		return st, canceledErr(c)
	}
	h.RunFirst()
	st.Committed = 1
	for lo := 1; lo < n; lo *= 2 {
		if c.Canceled() {
			return st, parallel.ErrCanceled
		}
		// Pre-round fault site, mirroring the cancel check: a panic here
		// leaves the state at the last combined round's boundary.
		if fault.Enabled {
			fault.Inject(fault.Type3Round)
		}
		hi := lo * 2
		if hi > n {
			hi = n
		}
		st.Rounds++
		h.RunRound(lo, hi)
		h.Combine(lo, hi)
		st.Committed = hi
	}
	return st, canceledErr(c)
}

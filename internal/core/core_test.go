package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHn(t *testing.T) {
	if Hn(1) != 1 {
		t.Fatal("H_1 = 1")
	}
	if math.Abs(Hn(2)-1.5) > 1e-15 {
		t.Fatal("H_2 = 1.5")
	}
	// H_n ≈ ln n + γ.
	if got := Hn(100000); math.Abs(got-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatalf("H_100000 = %v", got)
	}
}

// TestHnExpansionMatchesExactSum pins the asymptotic fast path to the
// direct sum across the cutoff: the two must agree to near machine
// precision, so no caller can observe which branch ran.
func TestHnExpansionMatchesExactSum(t *testing.T) {
	exact := func(n int) float64 {
		// Sum smallest-first for minimal rounding error.
		h := 0.0
		for i := n; i >= 1; i-- {
			h += 1 / float64(i)
		}
		return h
	}
	for _, n := range []int{hnExactCutoff - 1, hnExactCutoff, hnExactCutoff + 1, 1000, 4096, 100000} {
		got, want := Hn(n), exact(n)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Hn(%d)=%.17g, exact sum %.17g (diff %g)", n, got, want, got-want)
		}
	}
	// Monotone across the cutoff.
	for n := hnExactCutoff - 2; n < hnExactCutoff+3; n++ {
		if Hn(n+1) <= Hn(n) {
			t.Fatalf("Hn not increasing at n=%d: %v then %v", n, Hn(n), Hn(n+1))
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Fatalf("Log2Ceil(%d)=%d want %d", n, got, want)
		}
	}
}

func TestType1DepthBound(t *testing.T) {
	// σ = k e² with k=2 for BST sort: the bound at n=1000 is ~ 2e² H_1000.
	got := Type1DepthBound(1000, 2)
	want := 2 * math.E * math.E * Hn(1000)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound=%v want %v", got, want)
	}
	if s := Type1Sigma(6); math.Abs(s-6*math.E*math.E) > 1e-12 {
		t.Fatalf("Type1Sigma(6)=%v", s)
	}
}

// type2Runners enumerates every schedule the trace tests must satisfy: the
// sequential reference and the batched runner, each with and without the
// SpecialOnce contract (a scripted special-set is trivially verdict-stable,
// so both flag settings are valid).
var type2Runners = []struct {
	name string
	run  func(n int, h Type2Hooks) Type2Stats
	once bool
}{
	{"seq", RunType2Seq, false},
	{"batched", RunType2, false},
	{"batched-once", RunType2, true},
}

// type2Trace runs a Type 2 schedule against a scripted special-set and
// records the execution order, verifying the scheduler's sequential
// semantics. IsSpecial runs concurrently on pool workers, so its
// violations are reported with Errorf (safe off the test goroutine) and
// never Fatalf.
func type2Trace(t *testing.T, n int, specialAt map[int]bool) {
	t.Helper()
	for _, runner := range type2Runners {
		executed := make([]bool, n)
		var order []int
		h := Type2Hooks{
			SpecialOnce: runner.once,
			RunFirst: func() {
				executed[0] = true
				order = append(order, 0)
			},
			IsSpecial: func(k int) bool {
				if executed[k] {
					t.Errorf("%s: IsSpecial(%d) called after execution", runner.name, k)
				}
				return specialAt[k]
			},
			RunRegular: func(lo, hi int) {
				for k := lo; k < hi; k++ {
					if executed[k] {
						t.Fatalf("%s: iteration %d executed twice", runner.name, k)
					}
					if specialAt[k] {
						t.Fatalf("%s: special iteration %d run as regular", runner.name, k)
					}
					executed[k] = true
					//ridtvet:ignore parclosure trace recorder: both runners call RunRegular serially, once per sub-round
					order = append(order, k)
				}
			},
			RunSpecial: func(k int) {
				if !specialAt[k] {
					t.Fatalf("%s: regular iteration %d run as special", runner.name, k)
				}
				// All earlier iterations must be done.
				for j := 0; j < k; j++ {
					if !executed[j] {
						t.Fatalf("%s: special %d ran before iteration %d", runner.name, k, j)
					}
				}
				executed[k] = true
				order = append(order, k)
			},
		}
		st := runner.run(n, h)
		for k := 0; k < n; k++ {
			if !executed[k] {
				t.Fatalf("%s: iteration %d never executed", runner.name, k)
			}
		}
		wantSpecial := 1
		for k := range specialAt {
			if k != 0 && k < n && specialAt[k] {
				wantSpecial++
			}
		}
		if st.Special != wantSpecial {
			t.Fatalf("%s: special=%d want %d", runner.name, st.Special, wantSpecial)
		}
		if st.N != n {
			t.Fatalf("%s: N=%d", runner.name, st.N)
		}
		if st.RegularBatches > st.SubRounds {
			t.Fatalf("%s: %d regular batches exceed %d sub-rounds (not batched)",
				runner.name, st.RegularBatches, st.SubRounds)
		}
	}
}

func TestRunType2NoSpecials(t *testing.T) {
	type2Trace(t, 100, map[int]bool{})
}

func TestRunType2AllSpecials(t *testing.T) {
	all := map[int]bool{}
	for i := 1; i < 33; i++ {
		all[i] = true
	}
	type2Trace(t, 33, all)
}

func TestRunType2ScatteredSpecials(t *testing.T) {
	type2Trace(t, 257, map[int]bool{1: true, 2: true, 7: true, 64: true, 255: true, 256: true})
}

func TestRunType2RandomScripts(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		sp := map[int]bool{}
		for k := 1; k < n; k++ {
			if r.Intn(k+1) == 0 { // ~1/k probability, the Type 2 regime
				sp[k] = true
			}
		}
		type2Trace(t, n, sp)
	}
}

func TestRunType2Empty(t *testing.T) {
	for _, runner := range type2Runners {
		st := runner.run(0, Type2Hooks{
			RunFirst:    func() { t.Fatal("must not run") },
			IsSpecial:   func(int) bool { return false },
			SpecialOnce: runner.once,
		})
		if st.Special != 0 || st.Rounds != 0 {
			t.Fatalf("%s: empty run: %+v", runner.name, st)
		}
	}
}

func TestRunType2ChecksLinear(t *testing.T) {
	// With O(1) expected specials per prefix, total checks are O(n); under
	// the SpecialOnce windowed schedule the bound holds worst-case and is
	// never above the sequential reference's charge.
	r := rng.New(2)
	n := 1 << 14
	sp := map[int]bool{}
	for k := 1; k < n; k++ {
		if r.Intn(k+1) == 0 {
			sp[k] = true
		}
	}
	var seqChecks int64
	for _, runner := range type2Runners {
		done := make([]bool, n)
		st := runner.run(n, Type2Hooks{
			RunFirst:    func() { done[0] = true },
			IsSpecial:   func(k int) bool { return sp[k] },
			RunRegular:  func(lo, hi int) {},
			RunSpecial:  func(k int) {},
			SpecialOnce: runner.once,
		})
		if st.Checks > int64(12*n) {
			t.Fatalf("%s: checks=%d is superlinear for n=%d", runner.name, st.Checks, n)
		}
		if runner.name == "seq" {
			seqChecks = st.Checks
		} else if st.Checks > seqChecks {
			t.Fatalf("%s: checks=%d exceed the sequential reference's %d",
				runner.name, st.Checks, seqChecks)
		}
	}
}

func TestRunType3Schedule(t *testing.T) {
	n := 100
	var rounds [][2]int
	first := 0
	st := RunType3(n, Type3Hooks{
		RunFirst: func() { first++ },
		RunRound: func(lo, hi int) { rounds = append(rounds, [2]int{lo, hi}) },
		Combine: func(lo, hi int) {
			last := rounds[len(rounds)-1]
			if last != [2]int{lo, hi} {
				t.Fatal("combine range must match the round range")
			}
		},
	})
	if first != 1 {
		t.Fatal("RunFirst must run exactly once")
	}
	// Rounds must partition [1, n) in doubling blocks.
	expectLo := 1
	for _, r := range rounds {
		if r[0] != expectLo {
			t.Fatalf("round starts at %d, want %d", r[0], expectLo)
		}
		expectLo = r[1]
	}
	if expectLo != n {
		t.Fatalf("rounds end at %d, want %d", expectLo, n)
	}
	if st.Rounds != len(rounds) || st.Rounds != Log2Ceil(n) {
		t.Fatalf("rounds=%d want %d", st.Rounds, Log2Ceil(n))
	}
}

func TestRunType3SmallN(t *testing.T) {
	for n := 0; n <= 4; n++ {
		count := 0
		RunType3(n, Type3Hooks{
			RunFirst: func() { count++ },
			RunRound: func(lo, hi int) { count += hi - lo },
			Combine:  func(lo, hi int) {},
		})
		if count != n {
			t.Fatalf("n=%d: executed %d iterations", n, count)
		}
	}
}

package core

import (
	"errors"
	"testing"

	"repro/internal/parallel"
)

// prefixHooks builds Type2Hooks over a scripted special-set that record
// which iterations executed; cancelAfter (if > 0) cancels the token once
// that many iterations have run.
func prefixHooks(n int, specialAt map[int]bool, c *parallel.Canceler, cancelAfter int) (Type2Hooks, []bool) {
	executed := make([]bool, n)
	count := 0
	mark := func(k int) {
		executed[k] = true
		count++
		if cancelAfter > 0 && count == cancelAfter {
			c.Cancel()
		}
	}
	h := Type2Hooks{
		RunFirst:  func() { mark(0) },
		IsSpecial: func(k int) bool { return specialAt[k] },
		RunRegular: func(lo, hi int) {
			for k := lo; k < hi; k++ {
				mark(k)
			}
		},
		RunSpecial: func(k int) { mark(k) },
	}
	return h, executed
}

func TestRunType2CancelPrefixAtomic(t *testing.T) {
	const n = 1000
	specialAt := map[int]bool{7: true, 100: true, 101: true, 500: true, 900: true}
	for _, cancelAfter := range []int{1, 5, 50, 300, 999} {
		var c parallel.Canceler
		h, executed := prefixHooks(n, specialAt, &c, cancelAfter)
		st, err := RunType2Cancel(n, h, &c)
		if !errors.Is(err, parallel.ErrCanceled) {
			t.Fatalf("cancelAfter=%d: err = %v, want ErrCanceled", cancelAfter, err)
		}
		// Prefix atomicity: exactly [0, Committed) ran, nothing beyond.
		for k := 0; k < n; k++ {
			if executed[k] != (k < st.Committed) {
				t.Fatalf("cancelAfter=%d: iteration %d executed=%v with Committed=%d",
					cancelAfter, k, executed[k], st.Committed)
			}
		}
		if st.Committed < cancelAfter {
			t.Fatalf("cancelAfter=%d: Committed=%d below the work that ran", cancelAfter, st.Committed)
		}
	}
}

func TestRunType2CancelNilMatchesPlain(t *testing.T) {
	const n = 500
	specialAt := map[int]bool{3: true, 64: true, 65: true, 400: true}
	h1, ex1 := prefixHooks(n, specialAt, nil, 0)
	want := RunType2(n, h1)
	h2, ex2 := prefixHooks(n, specialAt, nil, 0)
	got, err := RunType2Cancel(n, h2, nil)
	if err != nil {
		t.Fatalf("nil-token RunType2Cancel = %v", err)
	}
	if got != want {
		t.Fatalf("stats diverge: %+v vs %+v", got, want)
	}
	if want.Committed != n {
		t.Fatalf("complete run Committed=%d, want %d", want.Committed, n)
	}
	for k := range ex1 {
		if ex1[k] != ex2[k] {
			t.Fatalf("iteration %d execution diverges", k)
		}
	}
}

func TestRunType2CancelPreCanceled(t *testing.T) {
	var c parallel.Canceler
	c.Cancel()
	h, executed := prefixHooks(100, nil, &c, 0)
	st, err := RunType2Cancel(100, h, &c)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st.Committed != 0 || executed[0] {
		t.Fatalf("pre-canceled run committed %d iterations", st.Committed)
	}
}

func TestRunType3CancelRoundAtomic(t *testing.T) {
	const n = 1 << 10
	var c parallel.Canceler
	ran := make([]bool, n)
	combinedTo := 0
	h := Type3Hooks{
		RunFirst: func() { ran[0] = true },
		RunRound: func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ran[k] = true
			}
			if lo >= 16 {
				c.Cancel() // cancel mid-round: the combine must still run
			}
		},
		Combine: func(lo, hi int) { combinedTo = hi },
	}
	st, err := RunType3Cancel(n, h, &c)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Round atomicity: every round that ran was also combined, and
	// Committed is the last combined boundary.
	if st.Committed != combinedTo {
		t.Fatalf("Committed=%d but last combine reached %d", st.Committed, combinedTo)
	}
	if st.Committed != 32 {
		t.Fatalf("Committed=%d, want 32 (the round that canceled mid-flight)", st.Committed)
	}
	for k := 0; k < n; k++ {
		if ran[k] != (k < st.Committed) {
			t.Fatalf("iteration %d ran=%v with Committed=%d", k, ran[k], st.Committed)
		}
	}
}

func TestRunType3CancelNilMatchesPlain(t *testing.T) {
	h := Type3Hooks{RunFirst: func() {}, RunRound: func(int, int) {}, Combine: func(int, int) {}}
	want := RunType3(100, h)
	got, err := RunType3Cancel(100, h, nil)
	if err != nil || got != want {
		t.Fatalf("nil-token RunType3Cancel = %+v, %v; want %+v", got, err, want)
	}
}

// TestRunType2HookPanicLeavesRunnerReusable is the Type 2 half of the
// panic-safety satellite: a hook panic propagates with its value, and a
// fresh run on the same pool afterwards completes normally.
func TestRunType2HookPanicLeavesRunnerReusable(t *testing.T) {
	func() {
		defer func() {
			if r := recover(); r != "hook boom" {
				t.Fatalf("recovered %v, want the hook's panic value", r)
			}
		}()
		RunType2(100, Type2Hooks{
			RunFirst:  func() {},
			IsSpecial: func(k int) bool { return k == 10 },
			RunRegular: func(lo, hi int) {
				if lo <= 5 && 5 < hi {
					panic("hook boom")
				}
			},
			RunSpecial: func(int) {},
		})
		t.Fatal("runner returned past a panicking hook")
	}()
	h, executed := prefixHooks(200, map[int]bool{9: true}, nil, 0)
	if st := RunType2(200, h); st.Committed != 200 {
		t.Fatalf("post-panic run Committed=%d", st.Committed)
	}
	for k, ok := range executed {
		if !ok {
			t.Fatalf("post-panic run skipped iteration %d", k)
		}
	}
}

//go:build ridtfault

package core

import (
	"testing"

	"repro/internal/fault"
)

// Engine fault stress (ridtfault build): injected deaths at the sub-round
// and round boundaries must leave the hooks' state at an exact committed
// boundary — the engines promise prefix (Type 2) and round (Type 3)
// atomicity to panics exactly as to cancellation.

// runToInjectedPanic runs f, reporting whether an injected panic escaped.
func runToInjectedPanic(t *testing.T, f func()) (died bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.Injected); !ok {
				panic(r)
			}
			died = true
		}
	}()
	f()
	return false
}

// TestType2InjectedPanicIsPrefixAtomic: a death at a sub-round top leaves
// every earlier iteration executed and no later one started (the site
// fires before the sub-round's work begins), and a fresh run afterwards is
// equivalent to an uninjected one.
func TestType2InjectedPanicIsPrefixAtomic(t *testing.T) {
	defer fault.Disable()
	const n = 2000
	specials := map[int]bool{3: true, 70: true, 71: true, 800: true, 1500: true}
	for _, seed := range []uint64{1, 33, 501} {
		if err := fault.Enable(fault.Config{
			Seed:      seed,
			PanicRate: 0.4,
			MaxPanics: 1,
			SiteMask:  fault.MaskOf(fault.Type2SubRound),
		}); err != nil {
			t.Fatal(err)
		}
		h, executed := prefixHooks(n, specials, nil, 0)
		died := runToInjectedPanic(t, func() { RunType2(n, h) })
		if !died {
			t.Fatalf("seed %d: schedule never fired — raise the rate", seed)
		}
		// Prefix atomicity across the death: executed is gap-free.
		prefix := 0
		for prefix < n && executed[prefix] {
			prefix++
		}
		for k := prefix; k < n; k++ {
			if executed[k] {
				t.Fatalf("seed %d: iteration %d ran beyond the %d-prefix", seed, k, prefix)
			}
		}
		if prefix == n {
			t.Fatalf("seed %d: all iterations ran despite the death", seed)
		}
		// The runner (a shared pool client) stays fully usable.
		fault.Disable()
		h2, ex2 := prefixHooks(n, specials, nil, 0)
		if st := RunType2(n, h2); st.Committed != n {
			t.Fatalf("seed %d: post-death run Committed=%d", seed, st.Committed)
		}
		for k, ok := range ex2 {
			if !ok {
				t.Fatalf("seed %d: post-death run skipped %d", seed, k)
			}
		}
	}
}

// TestType3InjectedPanicIsRoundAtomic: a death at a round top leaves every
// started round combined — the hooks' state sits at a combine boundary.
func TestType3InjectedPanicIsRoundAtomic(t *testing.T) {
	defer fault.Disable()
	const n = 1 << 12
	for _, seed := range []uint64{4, 29} {
		if err := fault.Enable(fault.Config{
			Seed:      seed,
			PanicRate: 0.3,
			MaxPanics: 1,
			SiteMask:  fault.MaskOf(fault.Type3Round),
		}); err != nil {
			t.Fatal(err)
		}
		ranTo, combinedTo := 0, 0
		h := Type3Hooks{
			RunFirst: func() { ranTo = 1 },
			RunRound: func(lo, hi int) { ranTo = hi },
			Combine:  func(lo, hi int) { combinedTo = hi },
		}
		died := runToInjectedPanic(t, func() { RunType3(n, h) })
		if !died {
			t.Fatalf("seed %d: schedule never fired — raise the rate", seed)
		}
		if ranTo > 1 && combinedTo != ranTo {
			t.Fatalf("seed %d: death left round [%d) run but combined only to %d",
				seed, ranTo, combinedTo)
		}
		if ranTo >= n {
			t.Fatalf("seed %d: all rounds ran despite the death", seed)
		}
	}
}

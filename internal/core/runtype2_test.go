package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

// mix64 is a splitmix64-style finalizer; good enough to act as the model
// algorithm's deterministic verdict oracle.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// modelType2 is a synthetic Type 2 algorithm for replaying one iteration
// stream through both runners. IsSpecial(k) is a deterministic function of
// k and the set of specials committed so far — exactly the information a
// Type 2 hook may consult — with Pr[special] ≈ c/k, the paper's regime.
// State (the signature of committed specials) changes only in RunFirst and
// RunSpecial, so the SpecialOnce contract holds by construction. Regular
// iterations fold a per-index hash into an order-insensitive accumulator,
// so final states compare exactly without constraining commit granularity.
type modelType2 struct {
	salt     uint64
	c        uint64
	sig      atomic.Uint64 // read by concurrent probes, written at commits
	specials []int
	regSum   atomic.Uint64
}

func (m *modelType2) hooks(once bool) Type2Hooks {
	return Type2Hooks{
		SpecialOnce: once,
		RunFirst: func() {
			m.sig.Store(mix64(m.salt))
			m.specials = append(m.specials, 0)
		},
		IsSpecial: func(k int) bool {
			return mix64(m.sig.Load()^mix64(uint64(k)+1))%uint64(k+1) < m.c
		},
		RunRegular: func(lo, hi int) {
			var s uint64
			for k := lo; k < hi; k++ {
				s += mix64(uint64(k) * 0x9e3779b97f4a7c15)
			}
			m.regSum.Add(s)
		},
		RunSpecial: func(k int) {
			m.specials = append(m.specials, k)
			m.sig.Store(mix64(m.sig.Load() ^ mix64(uint64(k)+0xabcd)))
		},
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunType2EquivalenceRandom replays the same iteration stream through
// the sequential reference and the batched runner (with and without
// SpecialOnce) and asserts identical committed special sequences, final
// state, schedule counters, and the O(n) check bound.
func TestRunType2EquivalenceRandom(t *testing.T) {
	r := rng.New(7)
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + r.Intn(6000)
		salt := r.Uint64()
		c := uint64(1 + r.Intn(3))

		ref := &modelType2{salt: salt, c: c}
		refSt := RunType2Seq(n, ref.hooks(false))

		for _, once := range []bool{false, true} {
			m := &modelType2{salt: salt, c: c}
			st := RunType2(n, m.hooks(once))

			if !equalInts(m.specials, ref.specials) {
				t.Fatalf("trial %d n=%d once=%v: special sequence diverged:\nbatched %v\nseq     %v",
					trial, n, once, m.specials, ref.specials)
			}
			if m.regSum.Load() != ref.regSum.Load() {
				t.Fatalf("trial %d n=%d once=%v: final regular state %x != %x",
					trial, n, once, m.regSum.Load(), ref.regSum.Load())
			}
			if st.Special != refSt.Special || st.Rounds != refSt.Rounds || st.SubRounds != refSt.SubRounds {
				t.Fatalf("trial %d once=%v: schedule counters diverged: %+v vs %+v",
					trial, once, st, refSt)
			}
			if st.Checks > refSt.Checks {
				t.Fatalf("trial %d once=%v: batched charged %d checks, reference %d",
					trial, once, st.Checks, refSt.Checks)
			}
			if st.Checks > int64(16*n) {
				t.Fatalf("trial %d once=%v: checks=%d superlinear for n=%d", trial, once, st.Checks, n)
			}
		}
	}
}

// TestRunType2WindowedChecksWorstCase drives the pathological all-special
// stream: the windowed schedule must stay O(n) checks worst-case (every
// sub-round pays at most the first window), where the full-prefix probe
// would charge Θ(n²) on the same stream.
func TestRunType2WindowedChecksWorstCase(t *testing.T) {
	n := 1 << 12
	st := RunType2(n, Type2Hooks{
		SpecialOnce: true,
		RunFirst:    func() {},
		IsSpecial:   func(k int) bool { return true },
		RunRegular:  func(lo, hi int) { t.Errorf("no regular block exists in [%d,%d)", lo, hi) },
		RunSpecial:  func(k int) {},
	})
	if st.Special != n {
		t.Fatalf("special=%d want %d", st.Special, n)
	}
	if st.Checks > int64(probeWindow0*n) {
		t.Fatalf("checks=%d exceeds %d·n on the all-special stream", st.Checks, probeWindow0)
	}
}

// TestRunType2ParallelRace is the race-detector companion of the
// equivalence test: a large stream with concurrent probe fan-out, verdict
// state read from pool workers, and batched regular commits.
func TestRunType2ParallelRace(t *testing.T) {
	n := 1 << 15
	if testing.Short() {
		n = 1 << 13
	}
	ref := &modelType2{salt: 99, c: 2}
	RunType2Seq(n, ref.hooks(false))
	m := &modelType2{salt: 99, c: 2}
	st := RunType2(n, m.hooks(true))
	if !equalInts(m.specials, ref.specials) {
		t.Fatalf("special sequence diverged under the parallel schedule")
	}
	if m.regSum.Load() != ref.regSum.Load() {
		t.Fatalf("final state diverged under the parallel schedule")
	}
	if st.MaxRegular == 0 || st.RegularBatches == 0 {
		t.Fatalf("no batched regular commits recorded: %+v", st)
	}
	if st.MaxProbe == 0 {
		t.Fatalf("no probe width recorded: %+v", st)
	}
}

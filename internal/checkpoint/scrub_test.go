package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chainDir commits a full image and two deltas of one run into a fresh
// directory, returning the writer and the reference digest.
func chainDir(t *testing.T, dir string) (*Writer, *liveRun, Meta) {
	t.Helper()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	run := newLiveRun(t, 67, 700)
	meta := Meta{Seed: 67, Build: 1}
	run.step(t, 1)
	if _, err := w.Save(run.lv.CaptureState(), meta); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for i := 0; i < 2; i++ {
		run.step(t, 1)
		if _, err := w.SaveDelta(run.lv.CaptureState(), meta); err != nil {
			t.Fatalf("SaveDelta %d: %v", i, err)
		}
	}
	return w, run, meta
}

func badFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), badSuffix) {
			bad = append(bad, e.Name())
		}
	}
	return bad
}

// TestScrubCleanPass: a healthy directory scrubs clean — every
// generation verified, nothing quarantined, nothing repaired, and the
// directory is untouched (same files, same restore).
func TestScrubCleanPass(t *testing.T) {
	dir := t.TempDir()
	w, run, _ := chainDir(t, dir)
	before, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore before scrub: %v", err)
	}
	res, err := w.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.Verified != 3 || res.Quarantined != 0 || res.Repaired != 0 || res.Skipped != 0 {
		t.Fatalf("clean pass result %+v, want 3 verified and nothing else", res)
	}
	if !res.NewestOK || res.Newest != 3 {
		t.Fatalf("clean pass newest %016x ok=%v, want generation 3", res.Newest, res.NewestOK)
	}
	if got := badFiles(t, dir); len(got) != 0 {
		t.Fatalf("clean pass quarantined %v", got)
	}
	after, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore after scrub: %v", err)
	}
	if after.Round != before.Round || DigestMesh(finishFrom(t, after)) != DigestMesh(run.ref) {
		t.Fatal("clean scrub changed what restores")
	}
}

// TestScrubQuarantinesAndRepairs: with the chain's middle delta corrupted,
// one pass must (a) quarantine the corrupt file by rename — never delete;
// (b) quarantine the now-orphaned delta above it; (c) promote the
// surviving base to a fresh FULL generation so the directory heals; and
// (d) leave the directory restoring to that base's state.
func TestScrubQuarantinesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	w, run, meta := chainDir(t, dir)

	// Corrupt gen 2 (the middle delta).
	p2 := filepath.Join(dir, ckptName(2))
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := w.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.Quarantined != 2 {
		t.Fatalf("scrub quarantined %d files, want 2 (the corrupt delta and its orphan): %+v", res.Quarantined, res)
	}
	if res.Repaired != 1 {
		t.Fatalf("scrub repaired %d, want 1 promotion of the surviving base: %+v", res.Repaired, res)
	}
	bad := badFiles(t, dir)
	if len(bad) != 2 {
		t.Fatalf("quarantine files %v, want exactly 2", bad)
	}
	for _, name := range []string{ckptName(2) + badSuffix, ckptName(3) + badSuffix} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("expected quarantine file %s: %v", name, err)
		}
	}
	// The repair is a fresh full generation, newest on disk, and the
	// manifest points at it.
	if mg, ok := readManifest(dir); !ok || mg != res.Newest {
		t.Fatalf("manifest (%016x, %v) after repair, want %016x", mg, ok, res.Newest)
	}
	kind, _, err := readImageInfo(filepath.Join(dir, ckptName(res.Newest)))
	if err != nil || kind != KindFull {
		t.Fatalf("promoted generation: kind %v err %v, want a full image", kind, err)
	}
	got, gotMeta, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore after repair: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("restored meta %+v", gotMeta)
	}
	if d := DigestMesh(finishFrom(t, got)); d != DigestMesh(run.ref) {
		t.Fatalf("post-repair resume digest %08x, reference %08x", d, DigestMesh(run.ref))
	}
	// The writer's tip re-rooted on the repair: the next incremental save
	// chains from the promoted full image and restores clean.
	run.step(t, 1)
	if _, err := w.SaveDelta(run.lv.CaptureState(), meta); err != nil {
		t.Fatalf("SaveDelta after repair: %v", err)
	}
	if _, _, err := Restore(dir); err != nil {
		t.Fatalf("Restore through post-repair chain: %v", err)
	}
}

// TestScrubQuarantinesMissingBaseOrphans: when a delta's base FILE is
// gone entirely (lost, not corrupt), the dependent deltas are orphans —
// quarantined, not silently deleted — and with no survivor the pass
// reports nothing restorable rather than inventing a repair.
func TestScrubQuarantinesMissingBaseOrphans(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := chainDir(t, dir)
	if err := os.Remove(filepath.Join(dir, ckptName(1))); err != nil {
		t.Fatal(err)
	}
	res, err := w.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.Quarantined != 2 || res.Verified != 0 {
		t.Fatalf("scrub of orphaned chain: %+v, want both deltas quarantined", res)
	}
	if res.NewestOK || res.Repaired != 0 {
		t.Fatalf("scrub of empty survivor set claimed newest=%016x ok=%v repaired=%d", res.Newest, res.NewestOK, res.Repaired)
	}
	if got := badFiles(t, dir); len(got) != 2 {
		t.Fatalf("quarantine files %v, want both orphans", got)
	}
}

// TestScrubRewritesStaleManifest: a manifest pointing at a generation the
// pass quarantined must be re-pointed at the newest restorable one, even
// when no repair promotion was needed.
func TestScrubRewritesStaleManifest(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := chainDir(t, dir)
	// Corrupt the NEWEST delta (gen 3): gens 1–2 still restore, so no
	// promotion is needed beyond quarantine... but the manifest points at
	// the dead tip.
	p3 := filepath.Join(dir, ckptName(3))
	data, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0xff
	if err := os.WriteFile(p3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := w.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.Quarantined != 1 {
		t.Fatalf("scrub result %+v, want 1 quarantined", res)
	}
	// gen 3 was the newest on disk and it was lost, so the pass promotes
	// the newest survivor (gen 2's resolved state) to a fresh full image.
	if res.Repaired != 1 {
		t.Fatalf("scrub result %+v, want the lost tip repaired by promotion", res)
	}
	if mg, ok := readManifest(dir); !ok || mg != res.Newest {
		t.Fatalf("manifest (%016x, %v), want the promoted generation %016x", mg, ok, res.Newest)
	}
	if _, _, err := Restore(dir); err != nil {
		t.Fatalf("Restore after manifest rewrite: %v", err)
	}
}

package checkpoint

// BenchmarkCheckpoint*: the durability layer's price list, recorded in
// BENCH_checkpoint.json and gated by the CI bench job. Write and Restore
// price the background saver's work (off the build's critical path);
// the synchronous cost a checkpoint adds to the publisher is
// BenchmarkCheckpointOverhead in internal/delaunay, measured against
// BenchmarkSnapshotPublish.

import (
	"os"
	"testing"
)

func BenchmarkCheckpointWrite(b *testing.B) {
	st, _ := midState(b, 77, 1<<13, 6)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(Encode(st, Meta{}))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Save(st, Meta{Seed: 77, Build: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointRestore(b *testing.B) {
	st, _ := midState(b, 77, 1<<13, 6)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	path, err := w.Save(st, Meta{Seed: 77, Build: 1})
	if err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Restore(dir); err != nil {
			b.Fatal(err)
		}
	}
}

package checkpoint

// BenchmarkCheckpoint*: the durability layer's price list, recorded in
// BENCH_checkpoint.json and gated by the CI bench job. Write and Restore
// price the background saver's work (off the build's critical path);
// the synchronous cost a checkpoint adds to the publisher is
// BenchmarkCheckpointOverhead in internal/delaunay, measured against
// BenchmarkSnapshotPublish.

import (
	"os"
	"testing"
)

func BenchmarkCheckpointWrite(b *testing.B) {
	st, _ := midState(b, 77, 1<<13, 6)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(Encode(st, Meta{}))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Save(st, Meta{Seed: 77, Build: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointDeltaWrite prices one incremental save: the same
// state cadence as BenchmarkCheckpointWrite's full image, but serialized
// as a delta over the previous boundary. The writer's chain tip is reset
// to the base before every iteration so each save is the SAME one-round
// delta — this is the number that must sit well below the full-image
// write for the incremental scheme to pay for itself.
func BenchmarkCheckpointDeltaWrite(b *testing.B) {
	st1, _ := midState(b, 77, 1<<13, 6)
	st2, _ := midState(b, 77, 1<<13, 7)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	meta := Meta{Seed: 77, Build: 1}
	if _, err := w.Save(st1, meta); err != nil {
		b.Fatal(err)
	}
	w.mu.Lock()
	tip := *w.tip // chain tip for st1's generation
	w.mu.Unlock()
	path, err := w.SaveDelta(st2, meta)
	if err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.mu.Lock()
		tc := tip
		w.tip = &tc
		w.mu.Unlock()
		if _, err := w.SaveDelta(st2, meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointDeltaRestore prices restoring through a base-plus-
// delta chain (full image + 3 deltas): read + decode + per-link chain
// verification + ApplyDelta joins + final structural validation.
func BenchmarkCheckpointDeltaRestore(b *testing.B) {
	run := newLiveRun(b, 77, 1<<13)
	run.step(b, 4)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	meta := Meta{Seed: 77, Build: 1}
	if _, err := w.Save(run.lv.CaptureState(), meta); err != nil {
		b.Fatal(err)
	}
	var total int64
	for i := 0; i < 3; i++ {
		run.step(b, 1)
		path, err := w.SaveDelta(run.lv.CaptureState(), meta)
		if err != nil {
			b.Fatal(err)
		}
		if fi, err := os.Stat(path); err == nil {
			total += fi.Size()
		}
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Restore(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointRestore(b *testing.B) {
	st, _ := midState(b, 77, 1<<13, 6)
	dir := b.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	path, err := w.Save(st, Meta{Seed: 77, Build: 1})
	if err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Restore(dir); err != nil {
			b.Fatal(err)
		}
	}
}

package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/delaunay"
	"repro/internal/fault"
)

// ScrubResult summarizes one scrub pass over a checkpoint directory.
type ScrubResult struct {
	Verified    int // generations read, decoded, and validated clean
	Skipped     int // generations left unjudged (read error: unverifiable, not provably corrupt)
	Quarantined int // generations renamed to ckpt-<gen>.bad
	Repaired    int // promotions of a resolvable state to a fresh full image
	Newest      uint64
	NewestOK    bool // a restorable generation survived the pass
}

func (r ScrubResult) String() string {
	return fmt.Sprintf("verified=%d skipped=%d quarantined=%d repaired=%d", r.Verified, r.Skipped, r.Quarantined, r.Repaired)
}

// Scrub is the self-healing pass: re-read every committed generation with
// a full decode + structural validation, quarantine what is provably
// corrupt, and repair the chain so the directory restores without help.
//
// Per generation, oldest-first:
//
//   - The file is re-read and decoded in full (the ScrubVerify fault site
//     fires first). A READ error — injected or real — only SKIPS the file
//     this pass: an unreadable file is unverifiable, not provably corrupt,
//     and quarantining it would destroy healthy durability.
//   - A file whose BYTES were read but fail decode or validation is
//     provably corrupt: it is renamed to ckpt-<gen>.bad (never silently
//     deleted — the evidence stays on disk for the operator) and the
//     directory is fsynced.
//   - A delta whose recorded base is missing, quarantined, unverified, or
//     bound to a different content digest is an orphan: equally unable to
//     restore, equally quarantined.
//
// After the walk, if any tip was lost AND a resolvable state survives,
// the newest such state is promoted to a fresh FULL generation (an
// ordinary Save: same atomic-commit protocol, counted as a repair), so
// later deltas chain from an intact base instead of a hole. Finally the
// advisory MANIFEST is rewritten if it points at a generation that no
// longer restores.
//
// Scrub shares the writer's lock with saves: a pass never races a commit.
func (w *Writer) Scrub() (ScrubResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var res ScrubResult

	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return res, fmt.Errorf("checkpoint: scrub scan: %w", err)
	}
	var gens []uint64
	for _, ent := range ents {
		if g, ok := parseGen(ent.Name()); ok {
			gens = append(gens, g)
		}
	}
	if len(gens) == 0 {
		return res, nil
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	newestOnDisk := gens[len(gens)-1]

	// verdicts: what this pass established per generation. A generation
	// missing from the map was skipped — unverifiable this pass, and
	// therefore not usable as a base for judging its dependents either.
	type verdict struct {
		img *Image
		st  *resolved // resolved state (full: itself; delta: joined to base)
	}
	verdicts := make(map[uint64]*verdict, len(gens))

	// lost records generations this pass PROVED unrestorable (moved to
	// quarantine). A skipped file is deliberately absent: unverifiable is
	// not lost, and repairs keyed on it would shadow healthy state.
	lost := make(map[uint64]bool)
	quarantine := func(g uint64) {
		// Rename, never delete: the corrupt bytes are evidence.
		name := ckptName(g)
		if err := os.Rename(filepath.Join(w.dir, name), filepath.Join(w.dir, name+badSuffix)); err == nil {
			syncDir(w.dir)
			res.Quarantined++
			lost[g] = true
		} else {
			// Could not move it aside; leave it for the next pass.
			res.Skipped++
		}
	}

	// Oldest-first: a delta's base is judged before the delta, so one pass
	// settles every chain without revisiting.
	for _, g := range gens {
		if err := fault.InjectErr(fault.ScrubVerify); err != nil {
			res.Skipped++ // injected read failure: unverifiable, not corrupt
			continue
		}
		data, err := os.ReadFile(filepath.Join(w.dir, ckptName(g)))
		if err != nil {
			res.Skipped++
			continue
		}
		img, err := DecodeAny(data)
		if err != nil {
			quarantine(g)
			continue
		}
		v := &verdict{img: img}
		switch img.Kind {
		case KindFull:
			if err := img.State.Validate(); err != nil {
				quarantine(g)
				continue
			}
			v.st = &resolved{st: img.State, meta: img.Meta}
		case KindDelta:
			if img.Chain.BaseGen >= g {
				quarantine(g)
				continue
			}
			bv := verdicts[img.Chain.BaseGen]
			if bv == nil {
				// No verdict for the base this pass. If its file is simply
				// gone (or already moved to quarantine) the delta is a
				// proven orphan; if the file exists but was skipped as
				// unverifiable, the delta stays unjudged too — skipping a
				// base must not cascade into quarantining its children.
				if _, statErr := os.Stat(filepath.Join(w.dir, ckptName(img.Chain.BaseGen))); statErr == nil {
					res.Skipped++
					continue
				}
				quarantine(g)
				continue
			}
			base, bmeta := bv.st.st, bv.st.meta
			if bmeta != img.Meta || base.Watermark() != img.Delta.Base ||
				crcTris(0, base.Tris) != img.Chain.CRCTris || crcFinal(0, base.Final) != img.Chain.CRCFinal {
				quarantine(g)
				continue
			}
			st, err := delaunay.ApplyDelta(base, img.Delta)
			if err == nil {
				err = st.Validate()
			}
			if err != nil {
				quarantine(g)
				continue
			}
			v.st = &resolved{st: st, meta: img.Meta}
		}
		verdicts[g] = v
		res.Verified++
	}

	// Find the newest generation that still restores.
	var newestGood uint64
	var newestState *resolved
	for _, g := range gens {
		if v := verdicts[g]; v != nil && v.st != nil {
			if g >= newestGood {
				newestGood, newestState = g, v.st
			}
		}
	}
	res.Newest, res.NewestOK = newestGood, newestState != nil

	// Repair: if the newest generation on disk was PROVED lost this pass
	// and an older state survives, promote that state to a fresh FULL
	// image so the chain re-roots on an intact base. (A full image also
	// resets the writer's tip, so subsequent deltas bind to the repaired
	// root.) A merely-skipped tip never triggers promotion: writing a
	// newer generation from an older state would shadow healthy progress.
	if newestState != nil && lost[newestOnDisk] {
		if _, err := w.saveFull(newestState.st, newestState.meta); err == nil {
			res.Repaired++
			res.Newest = w.gen - 1
		}
	} else if newestState != nil {
		// Chain intact at the tip; still re-point the advisory manifest if
		// it is missing or names a generation proved unrestorable.
		if mg, ok := readManifest(w.dir); !ok || (mg != newestGood && lost[mg]) {
			_ = w.writeManifest(newestGood)
		}
	}
	return res, nil
}

//go:build ridtfault

package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// Hits per Save at each site, fixed by the commit protocol: one
// CheckpointFrame per frame of the format, one CheckpointCommit per step
// of the commit sequence (data fsync, data rename, dir sync, manifest
// fsync, manifest rename, dir sync). The counts are asserted before use
// so a protocol change updates this table consciously.
const (
	frameHitsPerSave  = numFrames
	commitHitsPerSave = 6
)

// TestCheckpointFaultEveryHit forces a failure at EVERY distinct
// injection point of the save protocol, in both failure modes — a typed
// I/O error and a crash (panic) — and proves the durability claim each
// time: after the failure, Restore still yields a fully valid committed
// generation whose resumed run is byte-equal to the deterministic
// reference, and a post-restart retry commits normally.
func TestCheckpointFaultEveryHit(t *testing.T) {
	st1, _ := midState(t, 31, 400, 2)
	st2, ref := midState(t, 31, 400, 4)
	refDigest := DigestMesh(ref)

	for _, tc := range []struct {
		site fault.Site
		hits int
	}{
		{fault.CheckpointFrame, frameHitsPerSave},
		{fault.CheckpointCommit, commitHitsPerSave},
	} {
		// Assert the hit count before enumerating: a protocol change that
		// adds or removes an injection point must fail loudly here rather
		// than silently skip coverage.
		func() {
			if err := fault.Enable(fault.Config{Seed: 1, SiteMask: fault.MaskOf(tc.site)}); err != nil {
				t.Fatalf("Enable: %v", err)
			}
			defer fault.Disable()
			dir := t.TempDir()
			w, err := NewWriter(dir)
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			if _, err := w.Save(st1, Meta{Build: 1}); err != nil {
				t.Fatalf("Save under zero-rate plan: %v", err)
			}
			if got := fault.Hits(tc.site); got != uint64(tc.hits) {
				t.Fatalf("%v fires %d times per Save, table says %d — update the table and the enumeration",
					tc.site, got, tc.hits)
			}
		}()

		for hit := 0; hit < tc.hits; hit++ {
			for _, mode := range []string{"err", "panic"} {
				t.Run(fmt.Sprintf("%v/hit%d/%s", tc.site, hit, mode), func(t *testing.T) {
					dir := t.TempDir()
					w, err := NewWriter(dir)
					if err != nil {
						t.Fatalf("NewWriter: %v", err)
					}
					// A good older generation first, so a failed newer save
					// always has a committed fallback.
					if _, err := w.Save(st1, Meta{Build: 1}); err != nil {
						t.Fatalf("baseline Save: %v", err)
					}

					cfg := fault.Config{Seed: 7, FirstHit: uint64(hit), SiteMask: fault.MaskOf(tc.site)}
					if mode == "err" {
						cfg.ErrRate, cfg.MaxErrs = 1, 1
					} else {
						cfg.PanicRate, cfg.MaxPanics = 1, 1
					}
					if err := fault.Enable(cfg); err != nil {
						t.Fatalf("Enable: %v", err)
					}
					var saveErr error
					panicked := false
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicked = true
								if _, ok := r.(fault.Injected); !ok {
									panic(r)
								}
							}
						}()
						_, saveErr = w.Save(st2, Meta{Build: 2})
					}()
					fault.Disable()
					switch mode {
					case "err":
						if saveErr == nil {
							t.Fatal("Save succeeded through an injected error")
						}
						var ie fault.InjectedError
						if !errors.As(saveErr, &ie) || ie.Site != tc.site {
							t.Fatalf("Save error %v does not wrap the injected fault", saveErr)
						}
					case "panic":
						if !panicked {
							t.Fatal("Save survived an injected panic")
						}
					}

					// The durability claim: whatever just happened, the
					// directory restores to a committed prefix of the one
					// deterministic run.
					got, meta, err := Restore(dir)
					if err != nil {
						t.Fatalf("Restore after %s at hit %d: %v", mode, hit, err)
					}
					if meta.Build != 1 && meta.Build != 2 {
						t.Fatalf("restored meta %+v is neither generation", meta)
					}
					if d := DigestMesh(finishFrom(t, got)); d != refDigest {
						t.Fatalf("resumed digest %08x, reference %08x", d, refDigest)
					}

					// Restart: a fresh writer cleans any temp litter and the
					// retried save commits and wins.
					w2, err := NewWriter(dir)
					if err != nil {
						t.Fatalf("NewWriter restart: %v", err)
					}
					if _, err := w2.Save(st2, Meta{Build: 2}); err != nil {
						t.Fatalf("retry Save: %v", err)
					}
					got2, meta2, err := Restore(dir)
					if err != nil || meta2.Build != 2 || got2.Round != st2.Round {
						t.Fatalf("post-retry Restore: meta %+v round %v err %v", meta2, got2.Round, err)
					}
				})
			}
		}
	}
}

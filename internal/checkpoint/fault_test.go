//go:build ridtfault

package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// Hits per Save at each site, fixed by the commit protocol: one
// CheckpointFrame per frame of the full format (one DeltaFrame per frame
// of the delta format for SaveDelta), one CheckpointCommit per step of
// the commit sequence (data fsync, data rename, dir sync, manifest
// fsync, manifest rename, dir sync). The counts are asserted before use
// so a protocol change updates this table consciously.
const (
	frameHitsPerSave      = numFrames
	deltaFrameHitsPerSave = numDeltaFrames
	commitHitsPerSave     = 6
)

// TestCheckpointFaultEveryHit forces a failure at EVERY distinct
// injection point of the save protocol, in both failure modes — a typed
// I/O error and a crash (panic) — and proves the durability claim each
// time: after the failure, Restore still yields a fully valid committed
// generation whose resumed run is byte-equal to the deterministic
// reference, and a post-restart retry commits normally.
func TestCheckpointFaultEveryHit(t *testing.T) {
	st1, _ := midState(t, 31, 400, 2)
	st2, ref := midState(t, 31, 400, 4)
	refDigest := DigestMesh(ref)

	// st1 and st2 are boundaries of the SAME deterministic run (midState
	// replays seed 31 from scratch), so st2 can be saved as a delta over
	// the generation holding st1.
	saveSecond := map[fault.Site]func(w *Writer) error{
		fault.CheckpointFrame:  func(w *Writer) error { _, err := w.Save(st2, Meta{Build: 2}); return err },
		fault.CheckpointCommit: func(w *Writer) error { _, err := w.Save(st2, Meta{Build: 2}); return err },
		fault.DeltaFrame:       func(w *Writer) error { _, err := w.SaveDelta(st2, Meta{Build: 1}); return err },
	}
	for _, tc := range []struct {
		site fault.Site
		hits int
	}{
		{fault.CheckpointFrame, frameHitsPerSave},
		{fault.DeltaFrame, deltaFrameHitsPerSave},
		{fault.CheckpointCommit, commitHitsPerSave},
	} {
		// Assert the hit count before enumerating: a protocol change that
		// adds or removes an injection point must fail loudly here rather
		// than silently skip coverage.
		func() {
			if err := fault.Enable(fault.Config{Seed: 1, SiteMask: fault.MaskOf(tc.site)}); err != nil {
				t.Fatalf("Enable: %v", err)
			}
			defer fault.Disable()
			dir := t.TempDir()
			w, err := NewWriter(dir)
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			if _, err := w.Save(st1, Meta{Build: 1}); err != nil {
				t.Fatalf("Save under zero-rate plan: %v", err)
			}
			pre := fault.Hits(tc.site)
			if err := saveSecond[tc.site](w); err != nil {
				t.Fatalf("second save under zero-rate plan: %v", err)
			}
			if got := fault.Hits(tc.site) - pre; got != uint64(tc.hits) {
				t.Fatalf("%v fires %d times per save, table says %d — update the table and the enumeration",
					tc.site, got, tc.hits)
			}
		}()

		for hit := 0; hit < tc.hits; hit++ {
			for _, mode := range []string{"err", "panic"} {
				t.Run(fmt.Sprintf("%v/hit%d/%s", tc.site, hit, mode), func(t *testing.T) {
					dir := t.TempDir()
					w, err := NewWriter(dir)
					if err != nil {
						t.Fatalf("NewWriter: %v", err)
					}
					// A good older generation first, so a failed newer save
					// always has a committed fallback.
					if _, err := w.Save(st1, Meta{Build: 1}); err != nil {
						t.Fatalf("baseline Save: %v", err)
					}

					cfg := fault.Config{Seed: 7, FirstHit: uint64(hit), SiteMask: fault.MaskOf(tc.site)}
					if mode == "err" {
						cfg.ErrRate, cfg.MaxErrs = 1, 1
					} else {
						cfg.PanicRate, cfg.MaxPanics = 1, 1
					}
					if err := fault.Enable(cfg); err != nil {
						t.Fatalf("Enable: %v", err)
					}
					var saveErr error
					panicked := false
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicked = true
								if _, ok := r.(fault.Injected); !ok {
									panic(r)
								}
							}
						}()
						saveErr = saveSecond[tc.site](w)
					}()
					fault.Disable()
					switch mode {
					case "err":
						if saveErr == nil {
							t.Fatal("Save succeeded through an injected error")
						}
						var ie fault.InjectedError
						if !errors.As(saveErr, &ie) || ie.Site != tc.site {
							t.Fatalf("Save error %v does not wrap the injected fault", saveErr)
						}
					case "panic":
						if !panicked {
							t.Fatal("Save survived an injected panic")
						}
					}

					// The durability claim: whatever just happened, the
					// directory restores to a committed prefix of the one
					// deterministic run.
					got, meta, err := Restore(dir)
					if err != nil {
						t.Fatalf("Restore after %s at hit %d: %v", mode, hit, err)
					}
					if meta.Build != 1 && meta.Build != 2 {
						t.Fatalf("restored meta %+v is neither generation", meta)
					}
					if d := DigestMesh(finishFrom(t, got)); d != refDigest {
						t.Fatalf("resumed digest %08x, reference %08x", d, refDigest)
					}

					// Restart: a fresh writer cleans any temp litter and the
					// retried save commits and wins.
					w2, err := NewWriter(dir)
					if err != nil {
						t.Fatalf("NewWriter restart: %v", err)
					}
					if _, err := w2.Save(st2, Meta{Build: 2}); err != nil {
						t.Fatalf("retry Save: %v", err)
					}
					got2, meta2, err := Restore(dir)
					if err != nil || meta2.Build != 2 || got2.Round != st2.Round {
						t.Fatalf("post-retry Restore: meta %+v round %v err %v", meta2, got2.Round, err)
					}
				})
			}
		}
	}
}

// scrubHitsPerPass: ScrubVerify fires exactly once per generation file
// walked, so a chainDir directory (one full image + two deltas) yields
// three hits per pass.
const scrubHitsPerPass = 3

// TestScrubFaultEveryHit forces a failure at EVERY ScrubVerify hit of a
// scrub pass over a healthy chain, in both failure modes. An injected
// READ error must only skip the unverifiable file (and leave its
// dependents unjudged) — never quarantine, never repair, never shadow
// the tip with a bogus promotion. A crash mid-pass must leave the
// directory fully restorable, and the next clean pass must verify
// everything as if the fault never happened.
func TestScrubFaultEveryHit(t *testing.T) {
	// Assert the per-pass hit count under a zero-rate plan first, so a
	// scrubber change that adds or removes an injection point fails
	// loudly instead of silently narrowing the walk below.
	func() {
		if err := fault.Enable(fault.Config{Seed: 1, SiteMask: fault.MaskOf(fault.ScrubVerify)}); err != nil {
			t.Fatalf("Enable: %v", err)
		}
		defer fault.Disable()
		dir := t.TempDir()
		w, _, _ := chainDir(t, dir)
		pre := fault.Hits(fault.ScrubVerify)
		if _, err := w.Scrub(); err != nil {
			t.Fatalf("Scrub under zero-rate plan: %v", err)
		}
		if got := fault.Hits(fault.ScrubVerify) - pre; got != scrubHitsPerPass {
			t.Fatalf("ScrubVerify fires %d times per pass, table says %d — update the table and the walk",
				got, scrubHitsPerPass)
		}
	}()

	for hit := 0; hit < scrubHitsPerPass; hit++ {
		for _, mode := range []string{"err", "panic"} {
			t.Run(fmt.Sprintf("hit%d/%s", hit, mode), func(t *testing.T) {
				dir := t.TempDir()
				w, run, _ := chainDir(t, dir)
				refDigest := DigestMesh(run.ref)

				cfg := fault.Config{Seed: 9, FirstHit: uint64(hit), SiteMask: fault.MaskOf(fault.ScrubVerify)}
				if mode == "err" {
					cfg.ErrRate, cfg.MaxErrs = 1, 1
				} else {
					cfg.PanicRate, cfg.MaxPanics = 1, 1
				}
				if err := fault.Enable(cfg); err != nil {
					t.Fatalf("Enable: %v", err)
				}
				var res ScrubResult
				var scrubErr error
				panicked := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked = true
							if _, ok := r.(fault.Injected); !ok {
								panic(r)
							}
						}
					}()
					res, scrubErr = w.Scrub()
				}()
				fault.Disable()

				switch mode {
				case "err":
					if scrubErr != nil {
						t.Fatalf("Scrub aborted on a read failure: %v (must skip and continue)", scrubErr)
					}
					// The walk is oldest-first and an unjudged base leaves
					// its dependents unjudged too, so a failure at hit k
					// verifies exactly the k generations before it.
					if res.Verified != hit || res.Skipped != scrubHitsPerPass-hit {
						t.Fatalf("scrub under read failure at hit %d: %+v, want verified=%d skipped=%d",
							hit, res, hit, scrubHitsPerPass-hit)
					}
					if res.Quarantined != 0 || res.Repaired != 0 {
						t.Fatalf("an unverifiable file was treated as corrupt: %+v", res)
					}
				case "panic":
					if !panicked {
						t.Fatal("Scrub survived an injected panic")
					}
				}
				if bad := badFiles(t, dir); len(bad) != 0 {
					t.Fatalf("healthy generations quarantined after %s at hit %d: %v", mode, hit, bad)
				}

				// The durability claim: the scrubber dying (or misreading)
				// at any step leaves the chain restorable to the reference.
				got, _, err := Restore(dir)
				if err != nil {
					t.Fatalf("Restore after %s at hit %d: %v", mode, hit, err)
				}
				if d := DigestMesh(finishFrom(t, got)); d != refDigest {
					t.Fatalf("resumed digest %08x, reference %08x", d, refDigest)
				}

				// The next clean pass settles every generation.
				res2, err := w.Scrub()
				if err != nil {
					t.Fatalf("clean pass after fault: %v", err)
				}
				if res2.Verified != scrubHitsPerPass || res2.Skipped != 0 ||
					res2.Quarantined != 0 || res2.Repaired != 0 {
					t.Fatalf("clean pass after fault left work undone: %+v", res2)
				}
			})
		}
	}
}

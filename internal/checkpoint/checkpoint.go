package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/delaunay"
	"repro/internal/fault"
)

const (
	ckptPrefix   = "ckpt-"
	ckptSuffix   = ".ridt"
	badSuffix    = ".bad"
	manifestName = "MANIFEST"
	manifestTag  = "RIDTMAN1"
	tmpPrefix    = ".tmp-"

	// keepGenerations bounds the on-disk history: the newest
	// keepGenerations generations are retained as restore TIPS, plus —
	// chains — every base a retained delta transitively needs. Older tips
	// exist only as fallbacks past a corrupt newest file; three levels
	// survive a crash mid-commit plus one bad generation with room to
	// spare.
	keepGenerations = 3

	// DefaultMaxChain is the delta-chain length cap: after this many
	// deltas since the last full image, SaveAuto writes a full image. The
	// cap bounds both restore work (each link re-digests its base) and the
	// blast radius of a lost base — a chain is only as durable as its
	// oldest link.
	DefaultMaxChain = 8
)

func ckptName(gen uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, gen, ckptSuffix) }

func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 16, 64)
	return g, err == nil
}

// chainTip is the writer's record of its newest committed generation:
// everything a subsequent delta needs to bind to it (identity, watermark,
// running prefix digests) plus the chain length for the SaveAuto policy.
type chainTip struct {
	gen    uint64
	meta   Meta
	wm     delaunay.Watermark
	crcT   uint32 // CRC32C over the committed triangle-corner stream
	crcF   uint32 // CRC32C over the committed final-id stream
	deltas int    // deltas since the last full image
}

// Writer commits checkpoint generations to a directory. Generation
// numbers are monotone across process restarts: a new Writer resumes
// numbering above everything already on disk, so "newest" is always
// well-defined by filename alone.
//
// A Writer serializes its operations internally (Save, SaveDelta,
// SaveAuto, Scrub may be called from different goroutines); the intended
// topology is one saver goroutine fed snapshots by the build's publisher,
// with a scrubber sharing the writer.
type Writer struct {
	mu       sync.Mutex
	dir      string
	gen      uint64 // next generation to write
	maxChain int
	tip      *chainTip
}

// NewWriter opens (creating if needed) dir for checkpoint commits and
// removes any temp files a crashed predecessor left behind. A fresh
// writer has no chain tip: its first incremental save requires a full
// image first (SaveAuto handles this; SaveDelta reports ErrNoBase).
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan dir: %w", err)
	}
	w := &Writer{dir: dir, gen: 1, maxChain: DefaultMaxChain}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, ent.Name())) // crashed mid-write; never committed
			continue
		}
		if g, ok := parseGen(ent.Name()); ok && g >= w.gen {
			w.gen = g + 1
		}
	}
	return w, nil
}

// Dir returns the directory this writer commits to.
func (w *Writer) Dir() string { return w.dir }

// SetMaxChain adjusts the delta-chain length cap. n <= 0 disables
// incremental saves entirely: SaveAuto always writes full images.
func (w *Writer) SetMaxChain(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.maxChain = n
}

// Save encodes st+meta and commits it as the next generation — always a
// FULL image: write-temp, fsync, rename, fsync-dir, then the manifest by
// the same protocol. On any error (including injected ones) the temp
// file is removed and the directory still holds only fully committed
// generations. Returns the committed file path.
//
// Fault sites: CheckpointFrame fires before each frame write,
// CheckpointCommit before each step of the commit sequence — so the
// ridtfault suites can force an I/O error or crash at every distinct
// point of the protocol.
func (w *Writer) Save(st *delaunay.BuildState, meta Meta) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saveFull(st, meta)
}

// SaveDelta commits st as an incremental generation over the writer's
// current chain tip. It reports ErrNoBase when no compatible tip exists —
// fresh writer, a different run's metadata, or a state behind the tip's
// watermark — and the caller falls back to Save. Fault sites: DeltaFrame
// per frame write, CheckpointCommit per commit step.
func (w *Writer) SaveDelta(st *delaunay.BuildState, meta Meta) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saveDelta(st, meta)
}

// SaveAuto commits st as a delta when the chain policy allows it (a
// compatible tip exists and the chain is shorter than the cap) and as a
// full image otherwise, returning the committed path and which kind was
// written. This is the daemon's save entry point.
func (w *Writer) SaveAuto(st *delaunay.BuildState, meta Meta) (string, Kind, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxChain > 0 && w.tip != nil && w.tip.deltas < w.maxChain {
		path, err := w.saveDelta(st, meta)
		if err == nil {
			return path, KindDelta, nil
		}
		if !errors.Is(err, ErrNoBase) {
			return "", 0, err
		}
	}
	path, err := w.saveFull(st, meta)
	return path, KindFull, err
}

func (w *Writer) saveFull(st *delaunay.BuildState, meta Meta) (string, error) {
	gen := w.gen
	final, err := w.commitImage(gen, encodeFrames(st, meta), fault.CheckpointFrame)
	if err != nil {
		return "", err
	}
	w.gen = gen + 1
	w.tip = &chainTip{
		gen:  gen,
		meta: meta,
		wm:   st.Watermark(),
		crcT: crcTris(0, st.Tris),
		crcF: crcFinal(0, st.Final),
	}
	w.prune(gen)
	return final, nil
}

func (w *Writer) saveDelta(st *delaunay.BuildState, meta Meta) (string, error) {
	tip := w.tip
	if tip == nil {
		return "", fmt.Errorf("%w: writer has no committed generation", ErrNoBase)
	}
	if tip.meta != meta {
		return "", fmt.Errorf("%w: tip is run %+v, state is run %+v", ErrNoBase, tip.meta, meta)
	}
	d, err := st.DeltaSince(tip.wm)
	if err != nil {
		// A state behind the tip (a regressed or unrelated build) is a
		// policy miss, not an I/O failure: report it as no-base so the
		// caller falls back to a full image.
		return "", fmt.Errorf("%w: %v", ErrNoBase, err)
	}
	gen := w.gen
	ch := Chain{BaseGen: tip.gen, CRCTris: tip.crcT, CRCFinal: tip.crcF}
	final, err := w.commitImage(gen, encodeDeltaFrames(d, meta, ch), fault.DeltaFrame)
	if err != nil {
		return "", err
	}
	w.gen = gen + 1
	// The tip's running digests extend over just the suffix: O(delta)
	// bookkeeping, matching the O(delta) encode.
	w.tip = &chainTip{
		gen:    gen,
		meta:   meta,
		wm:     st.Watermark(),
		crcT:   crcTris(tip.crcT, d.Tris),
		crcF:   crcFinal(tip.crcF, d.Final),
		deltas: tip.deltas + 1,
	}
	w.prune(gen)
	return final, nil
}

// commitImage runs the atomic-commit protocol for one encoded generation:
// temp write (frameSite fires per frame), fsync, rename, fsync-dir,
// manifest. Returns the committed path.
func (w *Writer) commitImage(gen uint64, frames [][]byte, frameSite fault.Site) (string, error) {
	final := filepath.Join(w.dir, ckptName(gen))
	tmp := filepath.Join(w.dir, tmpPrefix+ckptName(gen))
	if err := writeTemp(tmp, frames, frameSite); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := commitStep(func() error { return os.Rename(tmp, final) }); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: commit rename: %w", err)
	}
	if err := commitStep(func() error { return syncDir(w.dir) }); err != nil {
		return "", fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	if err := w.writeManifest(gen); err != nil {
		return "", err
	}
	return final, nil
}

// writeTemp writes and fsyncs one image to path, frame by frame, firing
// site before each frame write.
func writeTemp(path string, frames [][]byte, site fault.Site) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(preamble()); err != nil {
		return fmt.Errorf("checkpoint: write preamble: %w", err)
	}
	for _, fr := range frames {
		if err := fault.InjectErr(site); err != nil {
			return fmt.Errorf("checkpoint: write frame: %w", err)
		}
		if _, err := f.Write(fr); err != nil {
			return fmt.Errorf("checkpoint: write frame: %w", err)
		}
	}
	if err := commitStep(f.Sync); err != nil {
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	return nil
}

// writeManifest records gen as the newest committed generation, with the
// same temp/fsync/rename/fsync-dir protocol as the data file. The
// manifest is advisory — Restore verifies rather than trusts it — so a
// crash between data commit and manifest commit costs nothing.
func (w *Writer) writeManifest(gen uint64) error {
	tmp := filepath.Join(w.dir, tmpPrefix+manifestName)
	body := fmt.Sprintf("%s %016x\n", manifestTag, gen)
	err := func() error {
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(body); err != nil {
			return err
		}
		if err := commitStep(f.Sync); err != nil {
			return err
		}
		return f.Close()
	}()
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	if err := commitStep(func() error { return os.Rename(tmp, filepath.Join(w.dir, manifestName)) }); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: commit manifest: %w", err)
	}
	if err := commitStep(func() error { return syncDir(w.dir) }); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// commitStep runs one step of the commit sequence behind its fault site.
func commitStep(step func() error) error {
	if err := fault.InjectErr(fault.CheckpointCommit); err != nil {
		return err
	}
	return step()
}

// readImageInfo reads just enough of a committed file to classify it: the
// preamble and the first (CRC-checked) frame. For a delta it returns the
// chain binding; decoding the whole file is not needed to know what it
// depends on, which is what keeps chain-aware pruning cheap.
func readImageInfo(path string) (Kind, Chain, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, Chain{}, err
	}
	defer f.Close()
	buf := make([]byte, 16+5+dhdrLen+4)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, Chain{}, err
	}
	buf = buf[:n]
	if err := checkPreamble(buf); err != nil {
		return 0, Chain{}, err
	}
	if len(buf) < 17 {
		return 0, Chain{}, fmt.Errorf("%w: no frame after the preamble", ErrTruncated)
	}
	d := &decoder{b: buf, off: 16}
	switch buf[16] {
	case fDeltaHeader:
		hdr, err := d.nextFrame(fDeltaHeader)
		if err != nil {
			return 0, Chain{}, err
		}
		if len(hdr) != dhdrLen {
			return 0, Chain{}, fmt.Errorf("%w: delta header frame is %d bytes, want %d", ErrFrameSize, len(hdr), dhdrLen)
		}
		return KindDelta, Chain{
			BaseGen:  binary.LittleEndian.Uint64(hdr[hdrLen : hdrLen+8]),
			CRCTris:  binary.LittleEndian.Uint32(hdr[hdrLen+28 : hdrLen+32]),
			CRCFinal: binary.LittleEndian.Uint32(hdr[hdrLen+32 : hdrLen+36]),
		}, nil
	default:
		if _, err := d.nextFrame(fHeader); err != nil {
			return 0, Chain{}, err
		}
		return KindFull, Chain{}, nil
	}
}

// prune removes generations no longer reachable from a retained tip: the
// newest keepGenerations generations stay as restore tips, and every base
// a retained delta transitively records stays with them — deleting a base
// from under a live delta would orphan the whole chain, which is exactly
// the failure the scrubber exists to repair, not one pruning may cause.
// Best-effort: a prune failure never fails a Save.
func (w *Writer) prune(newest uint64) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return
	}
	var gens []uint64
	for _, ent := range ents {
		if g, ok := parseGen(ent.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	tips := gens
	if len(tips) > keepGenerations {
		tips = tips[:keepGenerations]
	}
	keep := make(map[uint64]bool, len(gens))
	for _, t := range tips {
		g := t
		// The walk is bounded: each hop strictly decreases g, and a hop
		// into an unreadable or full image stops the chain.
		for steps := 0; steps <= len(gens); steps++ {
			if keep[g] {
				break
			}
			keep[g] = true
			kind, ch, err := readImageInfo(filepath.Join(w.dir, ckptName(g)))
			if err != nil || kind != KindDelta || ch.BaseGen >= g {
				break
			}
			g = ch.BaseGen
		}
	}
	for _, g := range gens {
		if !keep[g] {
			os.Remove(filepath.Join(w.dir, ckptName(g)))
		}
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readManifest returns the generation the manifest records, or false if
// the manifest is missing or malformed.
func readManifest(dir string) (uint64, bool) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, false
	}
	s := strings.TrimSpace(string(b))
	rest, ok := strings.CutPrefix(s, manifestTag+" ")
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 16, 64)
	return g, err == nil
}

// resolver memoizes chain resolution across Restore's fallback walk: each
// generation is read, decoded, and (for deltas) joined to its base at
// most once, whether it is visited as a tip or as another delta's base.
type resolver struct {
	dir   string
	cache map[uint64]*resolved
}

type resolved struct {
	st   *delaunay.BuildState
	meta Meta
	err  error
}

func (r *resolver) resolve(g uint64) (*delaunay.BuildState, Meta, error) {
	if c, ok := r.cache[g]; ok {
		return c.st, c.meta, c.err
	}
	// Reserve the slot before recursing: a malformed self-referential
	// chain then fails the baseGen<g check rather than recursing.
	st, meta, err := r.resolveFile(g)
	r.cache[g] = &resolved{st: st, meta: meta, err: err}
	return st, meta, err
}

func (r *resolver) resolveFile(g uint64) (*delaunay.BuildState, Meta, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, ckptName(g)))
	if err != nil {
		return nil, Meta{}, err
	}
	img, err := DecodeAny(data)
	if err != nil {
		return nil, Meta{}, err
	}
	if img.Kind == KindFull {
		if err := img.State.Validate(); err != nil {
			return nil, Meta{}, err
		}
		return img.State, img.Meta, nil
	}
	// A delta: resolve its base, then verify every bond the writer
	// recorded — generation order, run identity, watermark, and the
	// prefix digests that tie the delta to the base's CONTENT.
	if img.Chain.BaseGen >= g {
		return nil, Meta{}, fmt.Errorf("%w: delta %016x names base %016x (not older)", ErrDeltaChain, g, img.Chain.BaseGen)
	}
	base, bmeta, err := r.resolve(img.Chain.BaseGen)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%w: base %016x: %v", ErrDeltaChain, img.Chain.BaseGen, err)
	}
	if bmeta != img.Meta {
		return nil, Meta{}, fmt.Errorf("%w: base %016x is run %+v, delta is run %+v", ErrDeltaChain, img.Chain.BaseGen, bmeta, img.Meta)
	}
	if got := base.Watermark(); got != img.Delta.Base {
		return nil, Meta{}, fmt.Errorf("%w: base %016x watermark %+v, delta recorded %+v", ErrDeltaChain, img.Chain.BaseGen, got, img.Delta.Base)
	}
	if crcTris(0, base.Tris) != img.Chain.CRCTris || crcFinal(0, base.Final) != img.Chain.CRCFinal {
		return nil, Meta{}, fmt.Errorf("%w: base %016x content digest mismatch", ErrDeltaChain, img.Chain.BaseGen)
	}
	st, err := delaunay.ApplyDelta(base, img.Delta)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%w: %v", ErrDeltaChain, err)
	}
	if err := st.Validate(); err != nil {
		return nil, Meta{}, err
	}
	return st, img.Meta, nil
}

// Restore loads the newest fully valid checkpoint from dir: the
// manifest's generation first (it is a hint, verified like any other),
// then every on-disk generation newest-first. A delta generation is
// resolved through its recorded base chain with every link verified
// (decode, structural validation, watermark, run metadata, prefix
// digests); a tip whose chain is broken anywhere is skipped — falling
// back to the next generation, so a corrupt delta never orphans the
// still-valid base below it. Returns ErrNoCheckpoint if the directory
// holds no checkpoint files at all, and a joined error if every
// generation present is corrupt.
func Restore(dir string) (*delaunay.BuildState, Meta, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Meta{}, ErrNoCheckpoint
		}
		return nil, Meta{}, fmt.Errorf("checkpoint: scan dir: %w", err)
	}
	var gens []uint64
	for _, ent := range ents {
		if g, ok := parseGen(ent.Name()); ok {
			gens = append(gens, g)
		}
	}
	if len(gens) == 0 {
		return nil, Meta{}, ErrNoCheckpoint
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	if mg, ok := readManifest(dir); ok {
		// Try the manifest's generation first without disturbing the
		// newest-first fallback order for the rest.
		for i, g := range gens {
			if g == mg && i > 0 {
				copy(gens[1:i+1], gens[:i])
				gens[0] = mg
				break
			}
		}
	}
	res := &resolver{dir: dir, cache: make(map[uint64]*resolved, len(gens))}
	var lastErr error
	for _, g := range gens {
		st, meta, err := res.resolve(g)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", ckptName(g), err)
			continue
		}
		return st, meta, nil
	}
	return nil, Meta{}, fmt.Errorf("checkpoint: all %d generations invalid: %w", len(gens), lastErr)
}

// DigestMesh is a CRC32-C over a mesh's full triangle log and work
// counters: two runs that took the same rounds and produced the same
// triangles in the same order — the determinism contract — digest
// equal. Used by the crash-recovery harness to compare a resumed build
// against an uninterrupted reference across processes.
func DigestMesh(m *delaunay.Mesh) uint32 {
	h := crc32.New(castagnoli)
	var buf []byte
	buf = le64(buf, uint64(m.N))
	buf = le64(buf, uint64(len(m.Triangles)))
	buf = le64(buf, uint64(m.Stats.InCircleTests))
	buf = le64(buf, uint64(m.Stats.TrianglesCreated))
	buf = le64(buf, uint64(int64(m.Stats.Rounds)))
	h.Write(buf)
	for _, t := range m.Triangles {
		buf = buf[:0]
		buf = le32(buf, uint32(t.V[0]))
		buf = le32(buf, uint32(t.V[1]))
		buf = le32(buf, uint32(t.V[2]))
		h.Write(buf)
	}
	return h.Sum32()
}

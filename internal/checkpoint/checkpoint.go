package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/delaunay"
	"repro/internal/fault"
)

const (
	ckptPrefix   = "ckpt-"
	ckptSuffix   = ".ridt"
	manifestName = "MANIFEST"
	manifestTag  = "RIDTMAN1"
	tmpPrefix    = ".tmp-"

	// keepGenerations bounds the on-disk history. Older generations exist
	// only as fallbacks past a corrupt newest file; three levels survive a
	// crash mid-commit plus one bad generation with room to spare.
	keepGenerations = 3
)

func ckptName(gen uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, gen, ckptSuffix) }

func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 16, 64)
	return g, err == nil
}

// Writer commits checkpoint generations to a directory. Generation
// numbers are monotone across process restarts: a new Writer resumes
// numbering above everything already on disk, so "newest" is always
// well-defined by filename alone.
//
// A Writer is not safe for concurrent Save calls; the intended topology
// is one saver goroutine fed snapshots by the build's publisher.
type Writer struct {
	dir string
	gen uint64 // next generation to write
}

// NewWriter opens (creating if needed) dir for checkpoint commits and
// removes any temp files a crashed predecessor left behind.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan dir: %w", err)
	}
	w := &Writer{dir: dir, gen: 1}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, ent.Name())) // crashed mid-write; never committed
			continue
		}
		if g, ok := parseGen(ent.Name()); ok && g >= w.gen {
			w.gen = g + 1
		}
	}
	return w, nil
}

// Dir returns the directory this writer commits to.
func (w *Writer) Dir() string { return w.dir }

// Save encodes st+meta and commits it as the next generation:
// write-temp, fsync, rename, fsync-dir, then the manifest by the same
// protocol. On any error (including injected ones) the temp file is
// removed and the directory still holds only fully committed
// generations. Returns the committed file path.
//
// Fault sites: CheckpointFrame fires before each frame write,
// CheckpointCommit before each step of the commit sequence — so the
// ridtfault suites can force an I/O error or crash at every distinct
// point of the protocol.
func (w *Writer) Save(st *delaunay.BuildState, meta Meta) (string, error) {
	gen := w.gen
	final := filepath.Join(w.dir, ckptName(gen))
	tmp := filepath.Join(w.dir, tmpPrefix+ckptName(gen))
	if err := w.writeTemp(tmp, st, meta); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := commitStep(func() error { return os.Rename(tmp, final) }); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: commit rename: %w", err)
	}
	if err := commitStep(func() error { return syncDir(w.dir) }); err != nil {
		return "", fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	if err := w.writeManifest(gen); err != nil {
		return "", err
	}
	w.gen = gen + 1
	w.prune(gen)
	return final, nil
}

// writeTemp writes and fsyncs the full image to path, frame by frame.
func (w *Writer) writeTemp(path string, st *delaunay.BuildState, meta Meta) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(preamble()); err != nil {
		return fmt.Errorf("checkpoint: write preamble: %w", err)
	}
	for _, fr := range encodeFrames(st, meta) {
		if err := fault.InjectErr(fault.CheckpointFrame); err != nil {
			return fmt.Errorf("checkpoint: write frame: %w", err)
		}
		if _, err := f.Write(fr); err != nil {
			return fmt.Errorf("checkpoint: write frame: %w", err)
		}
	}
	if err := commitStep(f.Sync); err != nil {
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	return nil
}

// writeManifest records gen as the newest committed generation, with the
// same temp/fsync/rename/fsync-dir protocol as the data file. The
// manifest is advisory — Restore verifies rather than trusts it — so a
// crash between data commit and manifest commit costs nothing.
func (w *Writer) writeManifest(gen uint64) error {
	tmp := filepath.Join(w.dir, tmpPrefix+manifestName)
	body := fmt.Sprintf("%s %016x\n", manifestTag, gen)
	err := func() error {
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(body); err != nil {
			return err
		}
		if err := commitStep(f.Sync); err != nil {
			return err
		}
		return f.Close()
	}()
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	if err := commitStep(func() error { return os.Rename(tmp, filepath.Join(w.dir, manifestName)) }); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: commit manifest: %w", err)
	}
	if err := commitStep(func() error { return syncDir(w.dir) }); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// commitStep runs one step of the commit sequence behind its fault site.
func commitStep(step func() error) error {
	if err := fault.InjectErr(fault.CheckpointCommit); err != nil {
		return err
	}
	return step()
}

// prune removes generations older than the newest keepGenerations.
// Best-effort: a prune failure never fails a Save.
func (w *Writer) prune(newest uint64) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if g, ok := parseGen(ent.Name()); ok && g+keepGenerations <= newest {
			os.Remove(filepath.Join(w.dir, ent.Name()))
		}
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readManifest returns the generation the manifest records, or false if
// the manifest is missing or malformed.
func readManifest(dir string) (uint64, bool) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, false
	}
	s := strings.TrimSpace(string(b))
	rest, ok := strings.CutPrefix(s, manifestTag+" ")
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 16, 64)
	return g, err == nil
}

// Restore loads the newest fully valid checkpoint from dir: the
// manifest's generation first (it is a hint, verified like any other),
// then every on-disk generation newest-first, skipping any file that
// fails decode or structural validation. It returns ErrNoCheckpoint if
// the directory holds no checkpoint files at all, and a joined error if
// every generation present is corrupt.
func Restore(dir string) (*delaunay.BuildState, Meta, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Meta{}, ErrNoCheckpoint
		}
		return nil, Meta{}, fmt.Errorf("checkpoint: scan dir: %w", err)
	}
	var gens []uint64
	for _, ent := range ents {
		if g, ok := parseGen(ent.Name()); ok {
			gens = append(gens, g)
		}
	}
	if len(gens) == 0 {
		return nil, Meta{}, ErrNoCheckpoint
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	if mg, ok := readManifest(dir); ok {
		// Try the manifest's generation first without disturbing the
		// newest-first fallback order for the rest.
		for i, g := range gens {
			if g == mg && i > 0 {
				copy(gens[1:i+1], gens[:i])
				gens[0] = mg
				break
			}
		}
	}
	var lastErr error
	for _, g := range gens {
		path := filepath.Join(dir, ckptName(g))
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		st, meta, err := Decode(data)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", ckptName(g), err)
			continue
		}
		if err := st.Validate(); err != nil {
			lastErr = fmt.Errorf("%s: %w", ckptName(g), err)
			continue
		}
		return st, meta, nil
	}
	return nil, Meta{}, fmt.Errorf("checkpoint: all %d generations invalid: %w", len(gens), lastErr)
}

// DigestMesh is a CRC32-C over a mesh's full triangle log and work
// counters: two runs that took the same rounds and produced the same
// triangles in the same order — the determinism contract — digest
// equal. Used by the crash-recovery harness to compare a resumed build
// against an uninterrupted reference across processes.
func DigestMesh(m *delaunay.Mesh) uint32 {
	h := crc32.New(castagnoli)
	var buf []byte
	buf = le64(buf, uint64(m.N))
	buf = le64(buf, uint64(len(m.Triangles)))
	buf = le64(buf, uint64(m.Stats.InCircleTests))
	buf = le64(buf, uint64(m.Stats.TrianglesCreated))
	buf = le64(buf, uint64(int64(m.Stats.Rounds)))
	h.Write(buf)
	for _, t := range m.Triangles {
		buf = buf[:0]
		buf = le32(buf, uint32(t.V[0]))
		buf = le32(buf, uint32(t.V[1]))
		buf = le32(buf, uint32(t.V[2]))
		h.Write(buf)
	}
	return h.Sum32()
}
